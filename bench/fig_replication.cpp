// Board replication bench: follower catch-up over the deterministic loopback
// transport (ROADMAP "Distributed multi-process deployment", first step).
//
// For each segment size, a leader serves a 16-segment bulletin board and a
// cold follower syncs it end to end. Measured per configuration:
//   * catch-up throughput — entries/s and frame messages/s over the wall
//     clock of SyncOnce (verify-then-apply included, that IS the catch-up),
//   * simulated sync lag — LoopbackNetwork's VirtualClock model output
//     (per-message base cost + per-byte cost), a scheduler-noise-free view
//     of how segment size trades message count against bytes on the wire,
//   * verification cost share — FollowerSyncStats' recv/verify/apply split,
//   * peak pinned segment bytes on BOTH sides — the leader streams via a
//     LedgerCursor and the follower appends through the segmented store, so
//     each must stay O(segment), not O(ledger), while the log is 16x the
//     segment size (Require-enforced, same bound as fig_ledger_stream),
//   * an incremental round — half a segment of fresh appends, resynced, to
//     show delta sync costs O(delta) rather than O(log).
//
// The sync protocol is a serial request-response loop (one outstanding
// request per follower), so this bench runs on one thread by construction;
// "threads": 1 is recorded for artifact uniformity with the other benches.
//
// Emits BENCH_replication.json. CI runs a scaled-down sweep via
// VOTEGRAL_REPLICATION_BENCH_SEG=<entries> (single segment size).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/table.h"
#include "src/crypto/drbg.h"
#include "src/crypto/schnorr.h"
#include "src/net/loopback.h"
#include "src/replica/follower.h"
#include "src/replica/leader.h"

namespace votegral {
namespace {

namespace fs = std::filesystem;

// Realistic ballot payload size (matches fig_ledger_stream).
constexpr size_t kPayloadBytes = 330;
// The acceptance drill's log shape: sixteen sealed segments.
constexpr uint64_t kSegmentsPerLog = 16;

struct BenchRow {
  uint64_t segment_entries = 0;
  uint64_t entries = 0;
  double sync_s = 0;              // wall clock of the cold SyncOnce
  double entries_per_s = 0;
  double frames_per_s = 0;
  double simulated_lag_s = 0;     // loopback VirtualClock model output
  uint64_t wire_bytes = 0;        // frame bytes delivered by the transport
  double recv_share = 0;          // fractions of recv+verify+apply time
  double verify_share = 0;
  double apply_share = 0;
  uint64_t leader_pinned = 0;     // peak pinned segment bytes while serving
  uint64_t follower_pinned = 0;   // peak pinned segment bytes while applying
  uint64_t segment_bytes = 0;
  double delta_sync_s = 0;        // incremental half-segment round
  uint64_t delta_entries = 0;
  uint64_t delta_wire_bytes = 0;
};

LedgerStorageConfig FileConfig(const std::string& dir, uint64_t segment_entries) {
  LedgerStorageConfig config;
  config.backend = LedgerStorageConfig::Backend::kFile;
  config.directory = dir;
  config.segment_entries = segment_entries;
  return config;
}

const FileLedgerStore& FileStore(const Ledger& ledger) {
  const auto* store = dynamic_cast<const FileLedgerStore*>(&ledger.store());
  Require(store != nullptr, "replication bench: expected the file backend");
  return *store;
}

// Runs `fn` with a follower-side channel against a served loopback pair.
template <typename Fn>
void WithServedChannel(const ReplicationLeader& leader, LoopbackNetwork& net, Fn&& fn) {
  auto [leader_end, follower_end] = net.CreatePair(/*id_a=*/1, /*id_b=*/2);
  std::thread serve([&leader, ch = std::move(leader_end)]() mutable {
    Status done = leader.Serve(*ch);
    if (!done.ok() && done.code() != StatusCode::kUnavailable) {
      std::fprintf(stderr, "leader serve failed: %s\n", done.ToString().c_str());
      Require(false, "replication bench: leader serve failed");
    }
  });
  fn(*follower_end);
  follower_end->Close();
  serve.join();
}

BenchRow RunOne(uint64_t segment_entries, const std::string& scratch) {
  BenchRow row;
  row.segment_entries = segment_entries;
  row.entries = kSegmentsPerLog * segment_entries;

  const std::string leader_dir = scratch + "/leader";
  const std::string follower_dir = scratch + "/follower";
  fs::remove_all(leader_dir);
  fs::remove_all(follower_dir);

  Ledger board(FileConfig(leader_dir, segment_entries));
  ChaChaRng rng(0xB0A2D + segment_entries);
  for (uint64_t i = 0; i < row.entries; ++i) {
    board.Append("ballot", rng.RandomBytes(kPayloadBytes));
  }

  SchnorrKeyPair key = SchnorrKeyPair::Generate(rng);
  ReplicationLeader leader(board, key, rng);
  LoopbackNetwork net;

  auto follower = ReplicationFollower::Open(
      FileConfig(follower_dir, segment_entries), key.public_bytes(), /*replica_id=*/2);
  Require(follower.ok(), "replication bench: follower open failed");

  // Cold catch-up: the whole 16-segment log in one sync round.
  FollowerSyncStats stats;
  WithServedChannel(leader, net, [&](Channel& ch) {
    WallTimer timer;
    auto outcome = follower->SyncOnce(ch);
    row.sync_s = timer.Seconds();
    if (!outcome.ok()) {
      std::fprintf(stderr, "sync failed: %s\n", outcome.status.ToString().c_str());
      Require(false, "replication bench: sync failed");
    }
    stats = *outcome;
  });
  Require(stats.entries_applied == row.entries, "replication bench: short sync");
  Require(follower->ledger().MerkleRoot() == board.MerkleRoot(),
          "replication bench: roots diverged");

  row.entries_per_s = static_cast<double>(stats.entries_applied) / row.sync_s;
  row.frames_per_s = static_cast<double>(stats.frame_messages) / row.sync_s;
  row.simulated_lag_s = net.SimulatedSeconds();
  row.wire_bytes = net.BytesDelivered();
  const double accounted =
      stats.recv_seconds + stats.verify_seconds + stats.apply_seconds;
  if (accounted > 0) {
    row.recv_share = stats.recv_seconds / accounted;
    row.verify_share = stats.verify_seconds / accounted;
    row.apply_share = stats.apply_seconds / accounted;
  }

  // The O(segment) residency bound, on both ends, after a 16x-segment sync.
  row.leader_pinned = FileStore(board).PeakPinnedBytes();
  row.follower_pinned = FileStore(follower->ledger()).PeakPinnedBytes();
  row.segment_bytes = fs::file_size(FileStore(board).SegmentPath(0));
  Require(row.leader_pinned <= 4 * row.segment_bytes,
          "replication bench: leader resident memory exceeded O(segment size)");
  Require(row.follower_pinned <= 4 * row.segment_bytes,
          "replication bench: follower resident memory exceeded O(segment size)");

  // Incremental round: half a segment of fresh appends, then resync.
  row.delta_entries = segment_entries / 2;
  for (uint64_t i = 0; i < row.delta_entries; ++i) {
    board.Append("ballot", rng.RandomBytes(kPayloadBytes));
  }
  const uint64_t wire_before = net.BytesDelivered();
  WithServedChannel(leader, net, [&](Channel& ch) {
    WallTimer timer;
    auto outcome = follower->SyncOnce(ch);
    row.delta_sync_s = timer.Seconds();
    Require(outcome.ok(), "replication bench: delta sync failed");
    Require(outcome->entries_applied == row.delta_entries &&
                outcome->first_requested_index == row.entries,
            "replication bench: delta sync re-downloaded sealed history");
  });
  row.delta_wire_bytes = net.BytesDelivered() - wire_before;

  fs::remove_all(leader_dir);
  fs::remove_all(follower_dir);
  return row;
}

void RunSweep() {
  std::vector<uint64_t> segment_sizes = {128, 512, 2048};
  if (const char* env = std::getenv("VOTEGRAL_REPLICATION_BENCH_SEG")) {
    long parsed = std::atol(env);
    if (parsed > 0) {
      segment_sizes = {static_cast<uint64_t>(parsed)};
    }
  }

  const std::string scratch =
      (fs::temp_directory_path() / "votegral_replication_bench").string();
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  std::vector<BenchRow> rows;
  for (uint64_t segment : segment_sizes) {
    rows.push_back(RunOne(segment, scratch));
  }
  fs::remove_all(scratch);

  TextTable table("Board replication — follower catch-up over loopback (16-segment log)");
  table.SetHeader({"Seg entries", "Entries", "Sync", "Entries/s", "Frames/s",
                   "Sim lag", "Verify share", "Leader pin", "Follower pin"});
  for (const BenchRow& row : rows) {
    char entries_s[32], frames_s[32], share[32];
    std::snprintf(entries_s, sizeof(entries_s), "%.0f", row.entries_per_s);
    std::snprintf(frames_s, sizeof(frames_s), "%.0f", row.frames_per_s);
    std::snprintf(share, sizeof(share), "%.0f%%", row.verify_share * 100);
    table.AddRow({std::to_string(row.segment_entries), std::to_string(row.entries),
                  FormatSeconds(row.sync_s), entries_s, frames_s,
                  FormatSeconds(row.simulated_lag_s), share,
                  std::to_string(row.leader_pinned / 1024) + " KiB",
                  std::to_string(row.follower_pinned / 1024) + " KiB"});
  }
  std::printf("%s\n", table.Format().c_str());
  std::printf("Peak pinned bytes track the segment size on both ends while the log "
              "is %llux the segment — O(segment), not O(ledger). Incremental rounds "
              "start at the durable size (no sealed-segment re-download).\n\n",
              static_cast<unsigned long long>(kSegmentsPerLog));

  FILE* json = std::fopen("BENCH_replication.json", "w");
  Require(json != nullptr, "replication bench: cannot write BENCH_replication.json");
  std::fprintf(json,
               "{\n  \"bench\": \"replication\",\n  \"payload_bytes\": %zu,\n"
               "  \"segments_per_log\": %llu,\n  \"threads\": 1,\n  \"sweep\": [\n",
               kPayloadBytes, static_cast<unsigned long long>(kSegmentsPerLog));
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    std::fprintf(
        json,
        "    {\"segment_entries\": %llu, \"entries\": %llu, \"sync_s\": %.6f, "
        "\"entries_per_s\": %.1f, \"frames_per_s\": %.1f, "
        "\"simulated_lag_s\": %.6f, \"wire_bytes\": %llu, "
        "\"recv_share\": %.4f, \"verify_share\": %.4f, \"apply_share\": %.4f, "
        "\"leader_peak_pinned_bytes\": %llu, \"follower_peak_pinned_bytes\": %llu, "
        "\"segment_bytes\": %llu, \"delta_entries\": %llu, "
        "\"delta_sync_s\": %.6f, \"delta_wire_bytes\": %llu}%s\n",
        static_cast<unsigned long long>(row.segment_entries),
        static_cast<unsigned long long>(row.entries), row.sync_s, row.entries_per_s,
        row.frames_per_s, row.simulated_lag_s,
        static_cast<unsigned long long>(row.wire_bytes), row.recv_share,
        row.verify_share, row.apply_share,
        static_cast<unsigned long long>(row.leader_pinned),
        static_cast<unsigned long long>(row.follower_pinned),
        static_cast<unsigned long long>(row.segment_bytes),
        static_cast<unsigned long long>(row.delta_entries), row.delta_sync_s,
        static_cast<unsigned long long>(row.delta_wire_bytes),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("Wrote BENCH_replication.json\n");
}

}  // namespace
}  // namespace votegral

int main() {
  votegral::RunSweep();
  return 0;
}
