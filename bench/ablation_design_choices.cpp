// Ablations for the design choices DESIGN.md calls out:
//  1. fixed-base precomputation on/off (MulBase vs generic multiplication),
//  2. RPC mix-pair count vs per-item cheat-escape probability and cost,
//  3. envelope-symbol count vs accidental wrong-symbol picks (the §4.4
//     training mechanism's friction),
//  4. λ_E booth stock floor vs the coercer's count-the-envelopes channel
//     (how much statistical cover D_c retains).
#include <cmath>
#include <cstdio>

#include "src/common/clock.h"
#include "src/common/table.h"
#include "src/crypto/batch.h"
#include "src/crypto/drbg.h"
#include "src/trip/setup.h"
#include "src/votegral/mixnet.h"

namespace votegral {
namespace {

void AblateFixedBase() {
  ChaChaRng rng(0xAB1);
  const int iterations = 200;
  std::vector<Scalar> scalars;
  for (int i = 0; i < iterations; ++i) {
    scalars.push_back(Scalar::Random(rng));
  }
  WallTimer timer;
  for (const Scalar& s : scalars) {
    (void)RistrettoPoint::MulBase(s);
  }
  double with_table = timer.Seconds() / iterations;
  timer.Reset();
  for (const Scalar& s : scalars) {
    (void)RistrettoPoint::MulBaseSlow(s);
  }
  double without_table = timer.Seconds() / iterations;

  TextTable table("Ablation 1 — fixed-base precomputation (radix-16 table)");
  table.SetHeader({"Variant", "Per base-mult", "Speedup"});
  table.AddRow({"precomputed table", FormatSeconds(with_table), "1.0x"});
  table.AddRow({"generic 4-bit window", FormatSeconds(without_table),
                FormatDouble(without_table / with_table, 1) + "x slower"});
  std::printf("%s\n", table.Format().c_str());
}

void AblateMixPairs() {
  ChaChaRng rng(0xAB2);
  Scalar sk = Scalar::Random(rng);
  RistrettoPoint pk = RistrettoPoint::MulBase(sk);
  const size_t n = 64;
  MixBatch batch;
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(MixItem{{ElGamalEncrypt(pk, RistrettoPoint::Base(), rng)}});
  }
  TextTable table("Ablation 2 — RPC mix pairs vs soundness and cost (64 items)");
  table.SetHeader({"Pairs (servers)", "Mix+prove", "Verify",
                   "P[cheat escapes] per item", "for 16 items"});
  for (size_t pairs : {1u, 2u, 4u}) {
    WallTimer timer;
    MixProof proof;
    MixBatch out = RunRpcMixCascade(batch, pk, pairs, rng, &proof);
    double mix_time = timer.Seconds();
    timer.Reset();
    Status ok = VerifyRpcMixCascade(batch, out, proof, pk);
    double verify_time = timer.Seconds();
    Require(ok.ok(), "ablation: mix verify failed");
    double escape = std::pow(0.5, static_cast<double>(pairs));
    table.AddRow({std::to_string(pairs) + " (" + std::to_string(2 * pairs) + ")",
                  FormatSeconds(mix_time), FormatSeconds(verify_time),
                  FormatDouble(escape, 4),
                  FormatDouble(std::pow(escape, 16), 10)});
  }
  std::printf("%s\n", table.Format().c_str());
  std::printf("The paper's configuration (4 shufflers = 2 pairs) catches a 16-item\n");
  std::printf("substitution with probability 1 - 2^-32.\n\n");
}

void AblateSymbols() {
  // More symbols = stronger "wait for the print" training signal, but more
  // envelopes needed per booth for a match to exist. Simulate the stock a
  // booth needs for a 99.9% chance of holding a matching envelope.
  TextTable table("Ablation 3 — envelope symbol count vs booth stock needs");
  table.SetHeader({"Symbols", "P[match] 8 envelopes", "P[match] 16", "Min stock for 99.9%"});
  for (int symbols : {2, 4, 8}) {
    auto p_match = [&](int stock) {
      return 1.0 - std::pow(1.0 - 1.0 / symbols, stock);
    };
    int need = 1;
    while (p_match(need) < 0.999) {
      ++need;
    }
    table.AddRow({std::to_string(symbols), FormatDouble(p_match(8), 4),
                  FormatDouble(p_match(16), 4), std::to_string(need)});
  }
  std::printf("%s\n", table.Format().c_str());
  std::printf("TRIP uses %d symbols; with the default booth floor (lambda_E = 16)\n",
              kNumEnvelopeSymbols);
  std::printf("a matching envelope is present with probability > 0.99.\n\n");
}

void AblateEnvelopeFloor() {
  // Coercion channel (§F.1 change #2): the coercer sees only the aggregate
  // number of revealed challenges. The booth floor λ_E ensures voters cannot
  // be forced to exhaust/count the stock; the residual uncertainty is the
  // honest-voter D_c spread. Report the distinguishing advantage of "target
  // made one extra fake" for increasing honest-voter cover.
  TextTable table("Ablation 4 — honest-voter cover vs coercer's counting channel");
  table.SetHeader({"Honest voters", "Stddev of total fakes", "Advantage bound (~1/(2 stddev))"});
  // D_c from the sec5_1 harness: 0..3 fakes with weights .25/.40/.25/.10.
  double variance_one = 0.25 * 0 + 0.40 * 1 + 0.25 * 4 + 0.10 * 9 -
                        std::pow(0.40 + 0.50 + 0.30, 2);
  for (size_t honest : {10u, 100u, 1000u, 10000u}) {
    double stddev = std::sqrt(variance_one * static_cast<double>(honest));
    table.AddRow({std::to_string(honest), FormatDouble(stddev, 2),
                  FormatDouble(std::min(1.0, 0.5 / stddev), 4)});
  }
  std::printf("%s\n", table.Format().c_str());
}

void AblateBatchVerification() {
  // The universal verifier checks hundreds of signatures/proofs; batching
  // them with random 128-bit weights trades pinpointing for speed.
  ChaChaRng rng(0xAB5);
  const size_t n = 128;
  std::vector<SchnorrBatchEntry> entries;
  for (size_t i = 0; i < n; ++i) {
    auto kp = SchnorrKeyPair::Generate(rng);
    SchnorrBatchEntry entry;
    entry.public_key = kp.public_bytes();
    entry.message = rng.RandomBytes(64);
    entry.signature = kp.Sign(entry.message, rng);
    entries.push_back(std::move(entry));
  }
  WallTimer timer;
  for (const SchnorrBatchEntry& entry : entries) {
    Require(SchnorrVerify(entry.public_key, entry.message, entry.signature).ok(),
            "ablation: signature invalid");
  }
  double individual = timer.Seconds();
  timer.Reset();
  Require(BatchVerifySchnorr(entries, rng).ok(), "ablation: batch invalid");
  double batched = timer.Seconds();

  TextTable table("Ablation 5 — batch signature verification (128 signatures)");
  table.SetHeader({"Variant", "Total", "Per signature", "Speedup"});
  table.AddRow({"individual", FormatSeconds(individual),
                FormatSeconds(individual / n), "1.0x"});
  table.AddRow({"batched (128-bit weights)", FormatSeconds(batched),
                FormatSeconds(batched / n),
                FormatDouble(individual / batched, 1) + "x"});
  std::printf("%s\n", table.Format().c_str());
}

}  // namespace
}  // namespace votegral

int main() {
  std::printf("=== Ablation benches for DESIGN.md design choices ===\n\n");
  votegral::AblateFixedBase();
  votegral::AblateMixPairs();
  votegral::AblateSymbols();
  votegral::AblateEnvelopeFloor();
  votegral::AblateBatchVerification();
  return 0;
}
