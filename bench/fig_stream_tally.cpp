// Streaming large-N tally: the chunk-granular dataflow engine over a
// file-backed segmented ledger, at election scale.
//
// What this measures (and the paper property it backs):
//  * End-to-end tally wall clock at N ballots with ballots *streamed* off a
//    file-backed ledger — peak ledger-resident payload memory must stay
//    O(one segment), not O(N) (the storage-backend contract of the ledger
//    redesign; "1M ballots without 1M ballots of RAM").
//  * Per-stage occupancy of the dataflow scheduler: busy/(wall*threads) per
//    stage, showing stage overlap (a barrier pipeline pins each stage's
//    occupancy to its own span; dataflow lets tag shards run while mix
//    shards of the other chain are still in flight).
//  * Thread-sweep speedups, with the transcript-identity check that makes
//    the sweep meaningful (same bytes at every thread count).
//  * Work-stealing executor counters (tasks, steals, queue depth) per run.
//
// The ballot corpus is forged directly (one synthetic kiosk, per-voter
// credential keys, ballots via the real MakeBallot) rather than through the
// full TRIP registration ceremony: registration costs ~4 signatures + 2
// encryptions per voter and would dominate setup at 10^5..10^6 ballots
// without touching a single tally code path. The tally sees exactly what a
// real election produces: valid kiosk-certified ballots on L_V and active
// registration records on L_R.
//
// Scale knobs: --ballots N (default 2^17; VOTEGRAL_BENCH_BALLOTS env works
// too), --threads 1,2,4 (default 1,2,4,8), --segment E (entries per sealed
// segment, default 1024). Emits BENCH_stream_tally.json next to the model
// curves for VoteAgain / SwissPost at the same N for context.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/baselines/swisspost.h"
#include "src/baselines/voteagain.h"
#include "src/common/clock.h"
#include "src/common/table.h"
#include "src/crypto/drbg.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"
#include "src/ledger/subledgers.h"
#include "src/sim/pipeline.h"
#include "src/trip/messages.h"
#include "src/trip/vsd.h"
#include "src/votegral/ballot.h"
#include "src/votegral/tally.h"

namespace votegral {
namespace {

namespace fs = std::filesystem;

struct Options {
  size_t ballots = size_t{1} << 17;  // 2^17 = 131072
  std::vector<size_t> threads = {1, 2, 4, 8};
  size_t segment_entries = 1024;
  std::string out = "BENCH_stream_tally.json";
};

std::vector<size_t> ParseThreadList(const char* arg) {
  std::vector<size_t> threads;
  for (const char* p = arg; *p != '\0';) {
    char* end = nullptr;
    long value = std::strtol(p, &end, 10);
    if (end == p) {
      break;
    }
    if (value > 0) {
      threads.push_back(static_cast<size_t>(value));
    }
    p = (*end == ',') ? end + 1 : end;
  }
  return threads;
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  if (const char* env = std::getenv("VOTEGRAL_BENCH_BALLOTS")) {
    long parsed = std::atol(env);
    if (parsed > 0) {
      options.ballots = static_cast<size_t>(parsed);
    }
  }
  if (const char* env = std::getenv("VOTEGRAL_BENCH_THREADS")) {
    auto parsed = ParseThreadList(env);
    if (!parsed.empty()) {
      options.threads = parsed;
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    auto next = [&]() -> const char* {
      Require(i + 1 < argc, "fig_stream_tally: flag needs a value");
      return argv[++i];
    };
    if (arg == "--ballots") {
      options.ballots = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--threads") {
      options.threads = ParseThreadList(next());
    } else if (arg == "--segment") {
      options.segment_entries = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--out") {
      options.out = next();
    } else {
      std::fprintf(stderr,
                   "usage: fig_stream_tally [--ballots N] [--threads 1,2,4] "
                   "[--segment E] [--out FILE]\n");
      std::exit(2);
    }
  }
  Require(options.ballots > 0 && !options.threads.empty(),
          "fig_stream_tally: need ballots and a thread list");
  return options;
}

// Forges the election corpus straight onto a file-backed PublicLedger: one
// authorized kiosk, one credential + registration record + ballot per voter.
// Everything the tally validates (kiosk cert, credential signature, roster
// eligibility, c_pc <-> c_pk tag join) is real; only the registration
// *ceremony* (envelopes, activation ZKPs) is skipped.
struct Fixture {
  PublicLedger ledger;
  ElectionAuthority authority;
  TaggingService tagging;
  CandidateList candidates;
  std::set<CompressedRistretto> authorized_kiosks;
  double ingest_seconds = 0.0;
  uint64_t ledger_bytes = 0;  // serialized ballot payload bytes appended

  Fixture(const Options& options, const std::string& dir, Rng& rng)
      : ledger(MakeStorage(options, dir)),
        authority(ElectionAuthority::Create(4, rng)),
        tagging(TaggingService::Create(4, rng)),
        candidates({"Alpha", "Beta", "Gamma"}) {
    SchnorrKeyPair kiosk = SchnorrKeyPair::Generate(rng);
    authorized_kiosks.insert(kiosk.public_bytes());

    WallTimer timer;
    for (size_t i = 0; i < options.ballots; ++i) {
      const std::string voter_id = "voter-" + std::to_string(i);
      ledger.AddEligibleVoter(voter_id);

      SchnorrKeyPair credential = SchnorrKeyPair::Generate(rng);
      ActivatedCredential activated;
      activated.voter_id = voter_id;
      activated.credential_sk = credential.secret();
      activated.credential_pk = credential.public_bytes();
      activated.public_credential =
          ElGamalEncrypt(authority.public_key(), credential.public_point(), rng);
      activated.kiosk_pk = kiosk.public_bytes();
      activated.challenge_response_hash.fill(0);
      activated.kiosk_response_sig = kiosk.Sign(
          ResponseSegment::SignedPayload(activated.credential_pk,
                                         activated.challenge_response_hash),
          rng);

      RegistrationRecord record;
      record.voter_id = voter_id;
      record.public_credential = activated.public_credential;
      record.kiosk_pk = activated.kiosk_pk;
      Require(ledger.PostRegistration(record).ok(),
              "fig_stream_tally: registration rejected");

      Ballot ballot = MakeBallot(activated, candidates, i % candidates.size(),
                                 authority.public_key(), rng);
      Bytes payload = ballot.Serialize();
      ledger_bytes += payload.size();
      ledger.PostBallot(std::move(payload));
    }
    ingest_seconds = timer.Seconds();
  }

  static LedgerStorageConfig MakeStorage(const Options& options,
                                         const std::string& dir) {
    LedgerStorageConfig storage;
    storage.backend = LedgerStorageConfig::Backend::kFile;
    storage.directory = dir;
    storage.segment_entries = options.segment_entries;
    return storage;
  }

  const FileLedgerStore* ballot_store() const {
    return dynamic_cast<const FileLedgerStore*>(&ledger.ballot_log().store());
  }
};

// Scheduling-sensitive transcript digest (forked-DRBG outputs included), the
// cross-thread-count identity check of the sweep.
std::array<uint8_t, 32> Digest(const TallyOutput& output) {
  Sha256 h;
  auto hash_batch = [&](const MixBatch& batch) {
    for (const MixItem& item : batch) {
      for (const ElGamalCiphertext& ct : item.cts) h.Update(ct.Serialize());
      h.Update(item.wire);
    }
  };
  const TallyTranscript& t = output.transcript;
  hash_batch(t.ballot_mix_output);
  hash_batch(t.roster_mix_output);
  for (const MixProof* proof : {&t.ballot_mix_proof, &t.roster_mix_proof}) {
    for (const RpcPairProof& pair : proof->pairs) {
      for (const RpcReveal& reveal : pair.reveals) {
        for (const Scalar& r : reveal.randomness) h.Update(r.ToBytes());
      }
    }
  }
  for (const auto* steps : {&t.ballot_tag_steps, &t.roster_tag_steps}) {
    for (const TaggingStep& step : *steps) {
      for (const DleqTranscript& proof : step.proofs) h.Update(proof.Serialize());
    }
  }
  for (const auto* shares :
       {&t.ballot_tag_shares, &t.roster_tag_shares, &t.vote_shares}) {
    for (const auto& per_ct : *shares) {
      for (const DecryptionShare& share : per_ct) {
        h.Update(share.share.Encode());
        h.Update(share.proof.Serialize());
      }
    }
  }
  for (const auto& tag : t.ballot_tags) h.Update(tag);
  for (const auto& tag : t.roster_tags) h.Update(tag);
  for (uint64_t v : t.counted_indices) {
    uint8_t buf[8];
    StoreLe64(buf, v);
    h.Update(buf);
  }
  return h.Finalize();
}

struct RunRow {
  size_t threads = 0;
  TallyEngine engine = TallyEngine::kDataflow;
  double tally_s = 0.0;
  TallyRunMetrics metrics;
  std::array<uint8_t, 32> digest{};
  uint64_t peak_pinned_bytes = 0;  // over this run alone
};

RunRow RunOnce(const Fixture& fixture, size_t threads, TallyEngine engine) {
  RunRow row;
  row.threads = threads;
  row.engine = engine;
  Executor executor(threads);
  TallyService service(fixture.authority, fixture.tagging, /*mix_pairs=*/2,
                       executor, RetryPolicy(), engine);
  // Same stream every run: the sweep's transcripts must match byte for byte.
  ChaChaRng tally_rng(0x57E1ABAD);
  WallTimer timer;
  TallyOutput output = std::move(*service.Run(
      fixture.ledger, fixture.candidates, fixture.authorized_kiosks, tally_rng,
      &row.metrics));
  row.tally_s = timer.Seconds();
  row.digest = Digest(output);
  Require(output.result.counted == fixture.ledger.BallotCount(),
          "fig_stream_tally: every forged ballot must count");
  return row;
}

void Main(int argc, char** argv) {
  Options options = ParseOptions(argc, argv);

  const fs::path dir =
      fs::temp_directory_path() /
      ("votegral-stream-tally-" + std::to_string(static_cast<unsigned>(getpid())));
  fs::remove_all(dir);

  std::printf("Streaming tally bench — forging %zu ballots onto %s "
              "(segment=%zu entries)...\n",
              options.ballots, dir.c_str(), options.segment_entries);
  ChaChaRng rng(0x57E1AB);
  Fixture fixture(options, dir.string(), rng);
  const FileLedgerStore* store = fixture.ballot_store();
  Require(store != nullptr, "fig_stream_tally: expected the file backend");
  const uint64_t ingest_peak = store->PeakPinnedBytes();
  std::printf("  ingest %.1fs; ballot log: %llu entries, %llu segments, "
              "%.1f MiB payload\n",
              fixture.ingest_seconds,
              static_cast<unsigned long long>(store->Size()),
              static_cast<unsigned long long>(store->SegmentCount()),
              fixture.ledger_bytes / (1024.0 * 1024.0));

  // Thread sweep, dataflow engine. PeakPinnedBytes is monotone over the
  // store's lifetime, so per-run peaks are isolated by reopening the log
  // read-only would be overkill: the first run establishes the peak and the
  // identity check makes later runs' peaks the same bound.
  std::vector<RunRow> rows;
  for (size_t threads : options.threads) {
    std::printf("  tallying at %zu thread%s (dataflow)...\n", threads,
                threads == 1 ? "" : "s");
    rows.push_back(RunOnce(fixture, threads, TallyEngine::kDataflow));
  }
  // One barrier-engine reference run at the largest thread count: the
  // dataflow-vs-barrier wall-clock delta is the overlap win.
  const size_t max_threads = rows.back().threads;
  std::printf("  tallying at %zu threads (barrier reference)...\n", max_threads);
  RunRow barrier = RunOnce(fixture, max_threads, TallyEngine::kBarrier);

  bool identical = barrier.digest == rows[0].digest;
  for (const RunRow& row : rows) {
    identical = identical && row.digest == rows[0].digest;
  }

  const uint64_t peak_pinned = store->PeakPinnedBytes();
  const double segment_payload_bytes =
      static_cast<double>(fixture.ledger_bytes) /
      static_cast<double>(store->SegmentCount());
  // "Streaming" means the tally never holds more than a couple of segment
  // buffers of ledger payload: one per concurrently-scanning validate shard
  // plus the active tail. Compare against total ledger bytes for the claim.
  const double pinned_vs_total =
      static_cast<double>(peak_pinned) / static_cast<double>(fixture.ledger_bytes);

  TextTable table("Streaming dataflow tally — " + std::to_string(options.ballots) +
                  " ballots off " + store->Describe());
  table.SetHeader({"Threads", "Engine", "Tally (s)", "Speedup", "Occupancy",
                   "Tasks", "Steals"});
  auto occupancy = [](const RunRow& row) {
    double busy = 0.0;
    for (const TallyStageBusy& stage : row.metrics.stages) {
      busy += stage.busy_seconds;
    }
    double denom = row.metrics.wall_seconds * static_cast<double>(row.threads);
    return denom > 0 ? busy / denom : 0.0;
  };
  auto add_row = [&](const RunRow& row, double base_s) {
    const ExecutorStats& a = row.metrics.executor_start;
    const ExecutorStats& b = row.metrics.executor_end;
    char speedup[32], occ[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", base_s / row.tally_s);
    std::snprintf(occ, sizeof(occ), "%.0f%%", 100.0 * occupancy(row));
    table.AddRow({std::to_string(row.threads),
                  row.engine == TallyEngine::kDataflow ? "dataflow" : "barrier",
                  FormatSeconds(row.tally_s), speedup, occ,
                  std::to_string(b.tasks_executed - a.tasks_executed),
                  std::to_string(b.steals - a.steals)});
  };
  for (const RunRow& row : rows) {
    add_row(row, rows[0].tally_s);
  }
  add_row(barrier, rows[0].tally_s);
  std::printf("%s", table.Format().c_str());

  std::printf("Transcripts byte-identical across thread counts and engines: %s\n",
              identical ? "yes" : "NO");
  std::printf("Peak pinned ledger payload: %.1f KiB (ingest %.1f KiB) — "
              "%.2f%% of the %.1f MiB ballot log; segment payload ~%.1f KiB\n",
              peak_pinned / 1024.0, ingest_peak / 1024.0, 100.0 * pinned_vs_total,
              fixture.ledger_bytes / (1024.0 * 1024.0),
              segment_payload_bytes / 1024.0);

  // Per-stage occupancy of the *first* dataflow run (deeper sweeps repeat
  // the same graph; one breakdown is representative).
  const RunRow& detail = rows.back();
  TextTable stage_table("Per-stage busy time — dataflow at " +
                        std::to_string(detail.threads) + " threads");
  stage_table.SetHeader({"Stage", "Busy (s)", "Occupancy"});
  for (const TallyStageBusy& stage : detail.metrics.stages) {
    char occ[32];
    double denom =
        detail.metrics.wall_seconds * static_cast<double>(detail.threads);
    std::snprintf(occ, sizeof(occ), "%.0f%%",
                  denom > 0 ? 100.0 * stage.busy_seconds / denom : 0.0);
    stage_table.AddRow({stage.name, FormatSeconds(stage.busy_seconds), occ});
  }
  std::printf("%s", stage_table.Format().c_str());

  // Context curves: what the VoteAgain / SwissPost cost models predict for a
  // tally of the same size (measured small, extrapolated to N — the fig5b
  // methodology).
  double voteagain_s = 0.0, swisspost_s = 0.0;
  {
    ChaChaRng model_rng(0x516B);
    VoteAgainModel voteagain;
    SwissPostModel swisspost;
    for (const ScalingRow& r :
         SweepSystem(voteagain, {100, options.ballots}, 100, model_rng)) {
      if (r.voters == options.ballots) voteagain_s = r.tally_total;
    }
    for (const ScalingRow& r :
         SweepSystem(swisspost, {100, options.ballots}, 100, model_rng)) {
      if (r.voters == options.ballots) swisspost_s = r.tally_total;
    }
  }
  std::printf("Model curves at %zu ballots: VoteAgain %s, SwissPost %s "
              "(extrapolated)\n\n",
              options.ballots, FormatSeconds(voteagain_s).c_str(),
              FormatSeconds(swisspost_s).c_str());

  FILE* json = std::fopen(options.out.c_str(), "w");
  Require(json != nullptr, "fig_stream_tally: cannot write JSON output");
  std::fprintf(json,
               "{\n  \"bench\": \"stream_tally\",\n  \"ballots\": %zu,\n"
               "  \"segment_entries\": %zu,\n  \"segments\": %llu,\n"
               "  \"ledger_payload_bytes\": %llu,\n"
               "  \"peak_pinned_bytes\": %llu,\n"
               "  \"peak_pinned_over_total\": %.6f,\n"
               "  \"ingest_seconds\": %.3f,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"transcripts_identical\": %s,\n"
               "  \"sweep\": [\n",
               options.ballots, options.segment_entries,
               static_cast<unsigned long long>(store->SegmentCount()),
               static_cast<unsigned long long>(fixture.ledger_bytes),
               static_cast<unsigned long long>(peak_pinned), pinned_vs_total,
               fixture.ingest_seconds, std::thread::hardware_concurrency(),
               identical ? "true" : "false");
  auto emit_row = [&](const RunRow& row, bool last) {
    const ExecutorStats& a = row.metrics.executor_start;
    const ExecutorStats& b = row.metrics.executor_end;
    std::fprintf(json,
                 "    {\"threads\": %zu, \"engine\": \"%s\", \"tally_s\": %.6f, "
                 "\"speedup\": %.3f, \"occupancy\": %.4f, \"tasks\": %llu, "
                 "\"steals\": %llu, \"steal_failures\": %llu, "
                 "\"max_queue_depth\": %llu, \"stages\": [",
                 row.threads,
                 row.engine == TallyEngine::kDataflow ? "dataflow" : "barrier",
                 row.tally_s, rows[0].tally_s / row.tally_s, occupancy(row),
                 static_cast<unsigned long long>(b.tasks_executed - a.tasks_executed),
                 static_cast<unsigned long long>(b.steals - a.steals),
                 static_cast<unsigned long long>(b.steal_failures - a.steal_failures),
                 static_cast<unsigned long long>(b.max_queue_depth));
    for (size_t i = 0; i < row.metrics.stages.size(); ++i) {
      const TallyStageBusy& stage = row.metrics.stages[i];
      std::fprintf(json, "%s{\"name\": \"%s\", \"busy_s\": %.6f}",
                   i == 0 ? "" : ", ", stage.name.c_str(), stage.busy_seconds);
    }
    std::fprintf(json, "]}%s\n", last ? "" : ",");
  };
  for (const RunRow& row : rows) {
    emit_row(row, false);
  }
  emit_row(barrier, true);
  std::fprintf(json,
               "  ],\n  \"baselines\": {\"voteagain_tally_s\": %.3f, "
               "\"swisspost_tally_s\": %.3f, \"extrapolated\": true}\n}\n",
               voteagain_s, swisspost_s);
  std::fclose(json);
  std::printf("Wrote %s\n", options.out.c_str());

  fs::remove_all(dir);
  Require(identical, "fig_stream_tally: transcripts differ across runs");
  // The streaming claim, enforced: peak pinned payload stays within a small
  // constant number of segments (scanning shards pin at most one each, but
  // shard count is bounded by kRngShards — allow that bound plus slack).
  const double segment_bound =
      (static_cast<double>(max_threads) + 2.0) * (segment_payload_bytes * 2.0 + 65536.0);
  Require(static_cast<double>(peak_pinned) <= segment_bound,
          "fig_stream_tally: peak pinned bytes not O(segment)");
}

}  // namespace
}  // namespace votegral

int main(int argc, char** argv) {
  votegral::Main(argc, argv);
  return 0;
}
