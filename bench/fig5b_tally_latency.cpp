// Reproduces Fig. 5b: total tally-phase latency (log-log, minutes) versus
// electorate size for Civitas, SwissPost, VoteAgain and Votegral.
//
// The paper's headline numbers at one million ballots: VoteAgain ~3 h,
// Votegral ~14 h, Swiss Post ~27 h, Civitas ~1768 *years* (quadratic,
// extrapolated — by the paper too). We reproduce the growth laws and the
// ordering; '*' marks extrapolated points (see fig5a for methodology).
#include <cmath>
#include <cstdio>
#include <memory>

#include "src/baselines/civitas.h"
#include "src/baselines/swisspost.h"
#include "src/baselines/voteagain.h"
#include "src/baselines/votegral_model.h"
#include "src/common/clock.h"
#include "src/common/table.h"
#include "src/crypto/drbg.h"
#include "src/sim/pipeline.h"
#include "src/votegral/mixnet.h"

namespace votegral {
namespace {

// MSM ablation: mix-proof verification is the group-operation hot path of
// the tally's verifiability story. Times VerifyRpcMixCascade with the
// batched-MSM link check against the per-link (seed) path at growing batch
// sizes, so the amortization that keeps the linear tally *fast* is visible
// in the figure output.
void RunMixVerifyMsmAblation() {
  ChaChaRng rng(0x4D534D);
  Scalar sk = Scalar::Random(rng);
  RistrettoPoint pk = RistrettoPoint::MulBase(sk);

  TextTable table("Fig. 5b addendum — mix-proof verification: per-link vs batched MSM");
  table.SetHeader({"Ballots", "Per-link (s)", "Batched MSM (s)", "Speedup"});
  for (size_t n : {size_t{16}, size_t{256}, size_t{4096}}) {
    MixBatch input(n);
    for (MixItem& item : input) {
      item.cts = {ElGamalEncrypt(pk, RistrettoPoint::Base(), rng),
                  ElGamalEncrypt(pk, RistrettoPoint::Base(), rng)};
    }
    MixProof proof;
    MixBatch output = RunRpcMixCascade(input, pk, 1, rng, &proof);

    WallTimer per_link_timer;
    Status per_link = VerifyRpcMixCascade(input, output, proof, pk, MixLinkCheck::kPerLink);
    double per_link_s = per_link_timer.Seconds();
    WallTimer batched_timer;
    Status batched = VerifyRpcMixCascade(input, output, proof, pk,
                                         MixLinkCheck::kBatchedMsm);
    double batched_s = batched_timer.Seconds();
    Require(per_link.ok() && batched.ok(), "fig5b: mix verification must pass");

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", per_link_s / batched_s);
    table.AddRow({std::to_string(n), FormatSeconds(per_link_s), FormatSeconds(batched_s),
                  speedup});
  }
  std::printf("%s\n", table.Format().c_str());
}

void RunFig5b() {
  const bool full = std::getenv("VOTEGRAL_BENCH_FULL") != nullptr;
  const std::vector<size_t> display_sizes = {100,    1000,    10000,
                                             100000, 1000000};

  struct Plan {
    std::unique_ptr<VotingSystemModel> model;
    std::vector<size_t> sizes;
    size_t max_measured;
  };
  std::vector<Plan> plans;
  plans.push_back({std::make_unique<CivitasModel>(), {24, 100, 1000, 10000, 100000, 1000000},
                   size_t{24}});
  plans.push_back({std::make_unique<SwissPostModel>(), display_sizes,
                   full ? size_t{1000} : size_t{100}});
  plans.push_back({std::make_unique<VoteAgainModel>(), display_sizes,
                   full ? size_t{2000} : size_t{100}});
  plans.push_back({std::make_unique<VotegralModel>(), display_sizes,
                   full ? size_t{1000} : size_t{100}});

  TextTable table("Fig. 5b — Tally-phase wall-clock (minutes; '*' = extrapolated)");
  std::vector<std::string> header = {"System"};
  for (size_t n : display_sizes) {
    header.push_back("10^" + std::to_string(static_cast<int>(std::log10(n))));
  }
  table.SetHeader(header);

  std::map<std::string, std::map<size_t, ScalingRow>> results;
  for (Plan& plan : plans) {
    ChaChaRng rng(0x516B);
    auto rows = SweepSystem(*plan.model, plan.sizes, plan.max_measured, rng);
    for (const ScalingRow& row : rows) {
      results[plan.model->name()][row.voters] = row;
    }
    std::vector<std::string> table_row = {plan.model->name()};
    for (size_t n : display_sizes) {
      const ScalingRow& row = results[plan.model->name()].at(n);
      table_row.push_back(FormatMinutes(row.tally_total, row.extrapolated));
    }
    table.AddRow(table_row);
  }
  std::printf("%s\n", table.Format().c_str());

  // Shape checks at 10^6.
  double civitas = results["Civitas"][1000000].tally_total;
  double votegral = results["TRIP-Core"][1000000].tally_total;
  double swisspost = results["SwissPost"][1000000].tally_total;
  double voteagain = results["VoteAgain"][1000000].tally_total;
  std::printf("At 10^6 ballots (ours, extrapolated):\n");
  std::printf("  VoteAgain  %s   (paper ~3 h; fastest)\n", FormatSeconds(voteagain).c_str());
  std::printf("  Votegral   %s   (paper ~14 h)\n", FormatSeconds(votegral).c_str());
  std::printf("  SwissPost  %s   (paper ~27 h)\n", FormatSeconds(swisspost).c_str());
  std::printf("  Civitas    %s   (paper ~1768 years; impractical)\n",
              FormatSeconds(civitas).c_str());
  std::printf("Shape: VoteAgain fastest: %s; Civitas impractical vs all linear systems: %s\n",
              (voteagain < votegral && voteagain < swisspost) ? "yes" : "NO",
              (civitas > 100 * swisspost) ? "yes" : "NO");
  std::printf("Civitas quadratic blow-up factor from 10^3 to 10^6: %.2e (expected ~1e6)\n",
              results["Civitas"][1000000].tally_total / results["Civitas"][1000].tally_total);
  std::printf("\nCSV:\n%s", table.Csv().c_str());
}

}  // namespace
}  // namespace votegral

int main() {
  votegral::RunFig5b();
  votegral::RunMixVerifyMsmAblation();
  return 0;
}
