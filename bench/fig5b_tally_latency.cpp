// Reproduces Fig. 5b: total tally-phase latency (log-log, minutes) versus
// electorate size for Civitas, SwissPost, VoteAgain and Votegral.
//
// The paper's headline numbers at one million ballots: VoteAgain ~3 h,
// Votegral ~14 h, Swiss Post ~27 h, Civitas ~1768 *years* (quadratic,
// extrapolated — by the paper too). We reproduce the growth laws and the
// ordering; '*' marks extrapolated points (see fig5a for methodology).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <thread>

#include "src/baselines/civitas.h"
#include "src/baselines/swisspost.h"
#include "src/baselines/voteagain.h"
#include "src/baselines/votegral_model.h"
#include "src/common/clock.h"
#include "src/common/table.h"
#include "src/crypto/drbg.h"
#include "src/crypto/sha256.h"
#include "src/sim/pipeline.h"
#include "src/trip/registrar.h"
#include "src/votegral/ballot.h"
#include "src/votegral/mixnet.h"
#include "src/votegral/tally.h"
#include "src/votegral/verifier.h"

namespace votegral {
namespace {

// MSM ablation: mix-proof verification is the group-operation hot path of
// the tally's verifiability story. Times VerifyRpcMixCascade with the
// batched-MSM link check against the per-link (seed) path at growing batch
// sizes, so the amortization that keeps the linear tally *fast* is visible
// in the figure output.
void RunMixVerifyMsmAblation() {
  ChaChaRng rng(0x4D534D);
  Scalar sk = Scalar::Random(rng);
  RistrettoPoint pk = RistrettoPoint::MulBase(sk);

  TextTable table("Fig. 5b addendum — mix-proof verification: per-link vs batched MSM");
  table.SetHeader({"Ballots", "Per-link (s)", "Batched MSM (s)", "Speedup"});
  for (size_t n : {size_t{16}, size_t{256}, size_t{4096}}) {
    MixBatch input(n);
    for (MixItem& item : input) {
      item.cts = {ElGamalEncrypt(pk, RistrettoPoint::Base(), rng),
                  ElGamalEncrypt(pk, RistrettoPoint::Base(), rng)};
    }
    MixProof proof;
    MixBatch output = RunRpcMixCascade(input, pk, 1, rng, &proof);

    WallTimer per_link_timer;
    Status per_link = VerifyRpcMixCascade(input, output, proof, pk, MixLinkCheck::kPerLink);
    double per_link_s = per_link_timer.Seconds();
    WallTimer batched_timer;
    Status batched = VerifyRpcMixCascade(input, output, proof, pk,
                                         MixLinkCheck::kBatchedMsm);
    double batched_s = batched_timer.Seconds();
    Require(per_link.ok() && batched.ok(), "fig5b: mix verification must pass");

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", per_link_s / batched_s);
    table.AddRow({std::to_string(n), FormatSeconds(per_link_s), FormatSeconds(batched_s),
                  speedup});
  }
  std::printf("%s\n", table.Format().c_str());
}

void RunFig5b() {
  const bool full = std::getenv("VOTEGRAL_BENCH_FULL") != nullptr;
  const std::vector<size_t> display_sizes = {100,    1000,    10000,
                                             100000, 1000000};

  struct Plan {
    std::unique_ptr<VotingSystemModel> model;
    std::vector<size_t> sizes;
    size_t max_measured;
  };
  std::vector<Plan> plans;
  plans.push_back({std::make_unique<CivitasModel>(), {24, 100, 1000, 10000, 100000, 1000000},
                   size_t{24}});
  plans.push_back({std::make_unique<SwissPostModel>(), display_sizes,
                   full ? size_t{1000} : size_t{100}});
  plans.push_back({std::make_unique<VoteAgainModel>(), display_sizes,
                   full ? size_t{2000} : size_t{100}});
  plans.push_back({std::make_unique<VotegralModel>(), display_sizes,
                   full ? size_t{1000} : size_t{100}});

  TextTable table("Fig. 5b — Tally-phase wall-clock (minutes; '*' = extrapolated)");
  std::vector<std::string> header = {"System"};
  for (size_t n : display_sizes) {
    header.push_back("10^" + std::to_string(static_cast<int>(std::log10(n))));
  }
  table.SetHeader(header);

  std::map<std::string, std::map<size_t, ScalingRow>> results;
  for (Plan& plan : plans) {
    ChaChaRng rng(0x516B);
    auto rows = SweepSystem(*plan.model, plan.sizes, plan.max_measured, rng);
    for (const ScalingRow& row : rows) {
      results[plan.model->name()][row.voters] = row;
    }
    std::vector<std::string> table_row = {plan.model->name()};
    for (size_t n : display_sizes) {
      const ScalingRow& row = results[plan.model->name()].at(n);
      table_row.push_back(FormatMinutes(row.tally_total, row.extrapolated));
    }
    table.AddRow(table_row);
  }
  std::printf("%s\n", table.Format().c_str());

  // Shape checks at 10^6.
  double civitas = results["Civitas"][1000000].tally_total;
  double votegral = results["TRIP-Core"][1000000].tally_total;
  double swisspost = results["SwissPost"][1000000].tally_total;
  double voteagain = results["VoteAgain"][1000000].tally_total;
  std::printf("At 10^6 ballots (ours, extrapolated):\n");
  std::printf("  VoteAgain  %s   (paper ~3 h; fastest)\n", FormatSeconds(voteagain).c_str());
  std::printf("  Votegral   %s   (paper ~14 h)\n", FormatSeconds(votegral).c_str());
  std::printf("  SwissPost  %s   (paper ~27 h)\n", FormatSeconds(swisspost).c_str());
  std::printf("  Civitas    %s   (paper ~1768 years; impractical)\n",
              FormatSeconds(civitas).c_str());
  std::printf("Shape: VoteAgain fastest: %s; Civitas impractical vs all linear systems: %s\n",
              (voteagain < votegral && voteagain < swisspost) ? "yes" : "NO",
              (civitas > 100 * swisspost) ? "yes" : "NO");
  std::printf("Civitas quadratic blow-up factor from 10^3 to 10^6: %.2e (expected ~1e6)\n",
              results["Civitas"][1000000].tally_total / results["Civitas"][1000].tally_total);
  std::printf("\nCSV:\n%s", table.Csv().c_str());
}

// Thread-count sweep over the *real* staged tally pipeline and universal
// verifier (not the baseline models): one fixed election of N ballots,
// tallied and verified at 1/2/4/8 threads. Emits BENCH_tally_parallel.json
// and checks that every thread count produces the byte-identical transcript
// (the reproducibility contract of the forked-DRBG sharding).
void RunParallelTallySweep(size_t ballots) {

  // Build one election through the real TRIP pipeline (serial, seeded):
  // the sweep below re-tallies the same ledger at each thread count.
  ChaChaRng rng(0x5CA1AB1E);
  TripSystemParams params;
  params.roster.reserve(ballots);
  for (size_t i = 0; i < ballots; ++i) {
    params.roster.push_back("voter-" + std::to_string(i));
  }
  std::printf("Fig. 5b addendum — staged parallel tally: registering %zu voters...\n",
              ballots);
  WallTimer setup_timer;
  TripSystem trip = TripSystem::Create(params, rng);
  TaggingService tagging = TaggingService::Create(4, rng);
  CandidateList candidates({"Alpha", "Beta", "Gamma"});
  Vsd vsd = trip.MakeVsd();
  for (size_t i = 0; i < ballots; ++i) {
    auto voter = RegisterAndActivate(trip, params.roster[i], /*fake_count=*/0, vsd, rng);
    Require(voter.ok(), "tally sweep: registration failed");
    Ballot ballot = MakeBallot(voter->activated[0], candidates, i % candidates.size(),
                               trip.authority_pk(), rng);
    trip.ledger().PostBallot(ballot.Serialize());
  }
  std::printf("  setup %.1fs; sweeping threads {1, 2, 4, 8} "
              "(hardware_concurrency=%u)\n",
              setup_timer.Seconds(), std::thread::hardware_concurrency());

  VerifierParams vparams;
  vparams.authority_pk = trip.authority_pk();
  for (size_t i = 0; i < trip.authority().size(); ++i) {
    vparams.authority_shares.push_back(trip.authority().member(i).public_share);
  }
  vparams.tagging_commitments = tagging.commitments();
  vparams.authorized_kiosks = trip.authorized_kiosks();
  vparams.authorized_officials = trip.authorized_officials();

  // Full transcript digest: must cover every scheduling-sensitive field —
  // in particular the forked-DRBG outputs (mix reveal randomness, tagging
  // proof nonces, decryption-share proofs), not just the tags/points/counts
  // they produce — or a reproducibility regression could slip past with
  // "transcripts_identical": true.
  auto digest = [](const TallyOutput& output) {
    Sha256 h;
    auto hash_batch = [&](const MixBatch& batch) {
      for (const MixItem& item : batch) {
        for (const ElGamalCiphertext& ct : item.cts) h.Update(ct.Serialize());
        h.Update(item.wire);
      }
    };
    auto hash_proof = [&](const MixProof& proof) {
      for (const RpcPairProof& pair : proof.pairs) {
        hash_batch(pair.mid);
        hash_batch(pair.out);
        for (const RpcReveal& reveal : pair.reveals) {
          uint8_t side_and_index[9];
          side_and_index[0] = reveal.side;
          StoreLe64(side_and_index + 1, reveal.source_or_dest);
          h.Update(side_and_index);
          for (const Scalar& r : reveal.randomness) h.Update(r.ToBytes());
        }
      }
    };
    auto hash_steps = [&](const std::vector<TaggingStep>& steps) {
      for (const TaggingStep& step : steps) {
        for (const ElGamalCiphertext& ct : step.output) h.Update(ct.Serialize());
        for (const DleqTranscript& proof : step.proofs) h.Update(proof.Serialize());
      }
    };
    auto hash_shares = [&](const std::vector<std::vector<DecryptionShare>>& shares) {
      for (const auto& per_ct : shares) {
        for (const DecryptionShare& share : per_ct) {
          h.Update(share.share.Encode());
          h.Update(share.proof.Serialize());
        }
      }
    };
    const TallyTranscript& t = output.transcript;
    hash_batch(t.ballot_mix_input);
    hash_batch(t.ballot_mix_output);
    hash_proof(t.ballot_mix_proof);
    hash_batch(t.roster_mix_input);
    hash_batch(t.roster_mix_output);
    hash_proof(t.roster_mix_proof);
    hash_steps(t.ballot_tag_steps);
    hash_steps(t.roster_tag_steps);
    hash_shares(t.ballot_tag_shares);
    hash_shares(t.roster_tag_shares);
    hash_shares(t.vote_shares);
    for (const auto& tag : t.ballot_tags) h.Update(tag);
    for (const auto& tag : t.roster_tags) h.Update(tag);
    for (const auto& point : t.vote_points) h.Update(point);
    for (uint64_t v : t.counted_indices) {
      uint8_t buf[8];
      StoreLe64(buf, v);
      h.Update(buf);
    }
    uint8_t counted[8];
    StoreLe64(counted, output.result.counted);
    h.Update(counted);
    return h.Finalize();
  };

  struct SweepRow {
    size_t threads;
    double tally_s;
    double verify_s;
    std::array<uint8_t, 32> transcript_digest;
  };
  std::vector<SweepRow> rows;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Executor executor(threads);
    TallyService service(trip.authority(), tagging, /*mix_pairs=*/2, executor);
    ChaChaRng tally_rng(0x5CA1AB1F);  // same stream every run: transcripts must match
    WallTimer tally_timer;
    TallyOutput output =
        std::move(*service.Run(trip.ledger(), candidates, trip.authorized_kiosks(), tally_rng));
    double tally_s = tally_timer.Seconds();
    WallTimer verify_timer;
    Status verified = VerifyElection(trip.ledger(), vparams, candidates, output, executor);
    double verify_s = verify_timer.Seconds();
    Require(verified.ok(), "tally sweep: universal verification failed");
    rows.push_back({threads, tally_s, verify_s, digest(output)});
  }

  bool identical = true;
  for (const SweepRow& row : rows) {
    identical = identical && row.transcript_digest == rows[0].transcript_digest;
  }

  TextTable table("Staged parallel tally — thread sweep at " + std::to_string(ballots) +
                  " ballots");
  table.SetHeader({"Threads", "Tally (s)", "Verify (s)", "Tally speedup",
                   "Verify speedup"});
  for (const SweepRow& row : rows) {
    char tally_x[32];
    char verify_x[32];
    std::snprintf(tally_x, sizeof(tally_x), "%.2fx", rows[0].tally_s / row.tally_s);
    std::snprintf(verify_x, sizeof(verify_x), "%.2fx", rows[0].verify_s / row.verify_s);
    table.AddRow({std::to_string(row.threads), FormatSeconds(row.tally_s),
                  FormatSeconds(row.verify_s), tally_x, verify_x});
  }
  std::printf("%s", table.Format().c_str());
  std::printf("Transcripts byte-identical across thread counts: %s\n\n",
              identical ? "yes" : "NO");

  // The JSON is written (with the real `identical` verdict) *before* the
  // hard failure below, so a determinism regression still leaves the
  // timing/digest evidence behind for diagnosis.
  FILE* json = std::fopen("BENCH_tally_parallel.json", "w");
  Require(json != nullptr, "tally sweep: cannot write BENCH_tally_parallel.json");
  std::fprintf(json,
               "{\n  \"bench\": \"tally_parallel\",\n  \"ballots\": %zu,\n"
               "  \"mix_pairs\": 2,\n  \"authority_members\": %zu,\n"
               "  \"tagging_members\": %zu,\n  \"hardware_concurrency\": %u,\n"
               "  \"transcripts_identical\": %s,\n  \"sweep\": [\n",
               ballots, trip.authority().size(), tagging.size(),
               std::thread::hardware_concurrency(), identical ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    std::fprintf(json,
                 "    {\"threads\": %zu, \"tally_s\": %.6f, \"verify_s\": %.6f, "
                 "\"tally_speedup\": %.3f, \"verify_speedup\": %.3f}%s\n",
                 row.threads, row.tally_s, row.verify_s, rows[0].tally_s / row.tally_s,
                 rows[0].verify_s / row.verify_s, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("Wrote BENCH_tally_parallel.json\n");
  Require(identical, "tally sweep: transcripts differ across thread counts");
}

}  // namespace
}  // namespace votegral

int main(int argc, char** argv) {
  // Sweep size precedence: --ballots N > VOTEGRAL_BENCH_BALLOTS >
  // VOTEGRAL_TALLY_SWEEP_N (legacy) > 4096. CI pins the size explicitly so
  // artifact runs are comparable across machines.
  size_t ballots = 4096;
  for (const char* env : {"VOTEGRAL_TALLY_SWEEP_N", "VOTEGRAL_BENCH_BALLOTS"}) {
    if (const char* value = std::getenv(env)) {
      long parsed = std::atol(value);
      if (parsed > 0) {
        ballots = static_cast<size_t>(parsed);
      }
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--ballots" && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed > 0) {
        ballots = static_cast<size_t>(parsed);
      }
    }
  }
  votegral::RunFig5b();
  votegral::RunMixVerifyMsmAblation();
  votegral::RunParallelTallySweep(ballots);
  return 0;
}
