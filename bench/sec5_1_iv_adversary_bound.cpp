// Reproduces the §5.1 individual-verifiability theorem: the integrity
// adversary's success probability against envelope stuffing,
//   max_k E_{n_c~D_c}[ (k/n_E) * C(n_E-k, n_c-1) / C(n_E-1, n_c-1) ],
// swept over booth stock size n_E, duplicate count k, and the voter's
// credential-count distribution D_c — with a Monte-Carlo cross-check through
// the actual stuffed-booth machinery, and the strong-iterative bound p^N.
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/common/table.h"
#include "src/crypto/drbg.h"
#include "src/trip/attacks.h"

namespace votegral {
namespace {

// E over a simple D_c: voter creates 1..4 credentials with the given weights
// (most voters make one or two fakes; cf. §4.1's D_c discussion).
double ExpectedBound(size_t n_envelopes, size_t k) {
  const std::vector<std::pair<size_t, double>> dc = {
      {1, 0.25}, {2, 0.40}, {3, 0.25}, {4, 0.10}};
  double sum = 0.0;
  for (const auto& [credentials, weight] : dc) {
    sum += weight * IvAdversaryBound(n_envelopes, k, credentials);
  }
  return sum;
}

void Run() {
  std::printf("=== Section 5.1: integrity-adversary (envelope stuffing) bound ===\n\n");

  TextTable table("Adversary success probability vs duplicates k (E over D_c)");
  std::vector<size_t> stocks = {16, 32, 64, 128};
  std::vector<std::string> header = {"k duplicates"};
  for (size_t n : stocks) {
    header.push_back("n_E=" + std::to_string(n));
  }
  table.SetHeader(header);
  for (size_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    std::vector<std::string> row = {std::to_string(k)};
    for (size_t n : stocks) {
      row.push_back(k <= n ? FormatDouble(ExpectedBound(n, k), 5) : "-");
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Format().c_str());

  // The adversary's best k for each stock size (the max over k in the
  // theorem) — more duplicates raise the hit probability but also the chance
  // a fake consumes a duplicate and trips the ledger check.
  TextTable best("Adversary's optimal k and success probability");
  best.SetHeader({"n_E", "best k", "max success", "p^50 (50 voters)"});
  for (size_t n : stocks) {
    double best_p = 0.0;
    size_t best_k = 0;
    for (size_t k = 1; k <= n; ++k) {
      double p = ExpectedBound(n, k);
      if (p > best_p) {
        best_p = p;
        best_k = k;
      }
    }
    best.AddRow({std::to_string(n), std::to_string(best_k), FormatDouble(best_p, 5),
                 FormatDouble(std::pow(best_p, 50), 12)});
  }
  std::printf("%s\n", best.Format().c_str());
  std::printf("Strong iterative IV (App. F.3.6): across N target voters the success\n");
  std::printf("probability is p^N -> negligible, as the last column shows.\n\n");

  // Monte-Carlo cross-check at one configuration.
  ChaChaRng rng(0x51B0);
  const size_t n_e = 32;
  const size_t k = 6;
  const size_t n_c = 2;
  const int trials = 30000;
  int wins = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<size_t> pool(n_e);
    for (size_t i = 0; i < n_e; ++i) {
      pool[i] = i;
    }
    bool real_stuffed = false;
    bool fake_stuffed = false;
    for (size_t pick = 0; pick < n_c; ++pick) {
      size_t j = pick + rng.Uniform(pool.size() - pick);
      std::swap(pool[pick], pool[j]);
      bool stuffed = pool[pick] < k;
      if (pick == 0) {
        real_stuffed = stuffed;
      } else {
        fake_stuffed |= stuffed;
      }
    }
    wins += (real_stuffed && !fake_stuffed) ? 1 : 0;
  }
  std::printf("Monte-Carlo cross-check (n_E=%zu, k=%zu, n_c=%zu): simulated %.4f vs bound %.4f\n",
              n_e, k, n_c, static_cast<double>(wins) / trials, IvAdversaryBound(n_e, k, n_c));
}

}  // namespace
}  // namespace votegral

int main() {
  votegral::Run();
  return 0;
}
