// Wire-byte DLEQ Fiat–Shamir bench: the before/after evidence for carrying
// canonical encodings through DleqStatement/DleqTranscript (the ROADMAP's
// "batched canonical encoding in DLEQ Fiat–Shamir hashing" item).
//
// Measures, over tagging-shaped 3-element proofs:
//  * proving with producer-filled statement caches vs the encode-per-point
//    framing (the pre-wire prover cost),
//  * challenge derivation alone, cached vs cacheless,
//  * BatchVerifyDleq with complete caches (SHA-only challenges + the
//    decode-free BatchValidateEncodings commit-cache pass) vs fully stripped
//    entries (the pre-wire verifier), at n = 1024 by default.
// Ristretto Encode/Decode invocation deltas are reported next to wall-clock
// numbers: the cached verify path must show ZERO encodes.
//
// Emits BENCH_dleq_fs.json for the CI artifact (docs/BENCHMARKS.md).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/table.h"
#include "src/crypto/batch.h"
#include "src/crypto/drbg.h"
#include "src/crypto/elgamal.h"

namespace votegral {
namespace {

constexpr std::string_view kDomain = "bench/dleq-fs/v1";

// A tagging-shaped statement: DLEQ over (B, C1, C2) with witness z — the
// 3-element proof the tally's tag chain produces once per ciphertext per
// member (src/votegral/tagging.cpp).
struct TagInstance {
  DleqStatement statement;  // wire-backed
  Scalar witness;
};

TagInstance MakeInstance(const RistrettoPoint& pk, const Scalar& z,
                         const CompressedRistretto& commitment_wire,
                         const RistrettoPoint& commitment, Rng& rng) {
  ElGamalCiphertext input = ElGamalEncrypt(pk, RistrettoPoint::Base(), rng);
  ElGamalCiphertext output = input.ExponentiateBy(z);
  TagInstance inst;
  inst.witness = z;
  inst.statement.bases = {RistrettoPoint::Base(), input.c1, input.c2};
  inst.statement.publics = {commitment, output.c1, output.c2};
  ElGamalWire in_wire = input.Wire();
  ElGamalWire out_wire = output.Wire();
  inst.statement.base_wire = {RistrettoPoint::BaseWire(), ElGamalWireHalf(in_wire, 0),
                              ElGamalWireHalf(in_wire, 1)};
  inst.statement.public_wire = {commitment_wire, ElGamalWireHalf(out_wire, 0),
                                ElGamalWireHalf(out_wire, 1)};
  return inst;
}

DleqStatement Stripped(const DleqStatement& statement) {
  DleqStatement bare = statement;
  bare.base_wire.clear();
  bare.public_wire.clear();
  return bare;
}

struct Row {
  std::string name;
  size_t n = 0;
  double seconds = 0;
  uint64_t encodes = 0;
  uint64_t decodes = 0;
};

Row Measure(const std::string& name, size_t n, const std::function<void()>& body) {
  Row row;
  row.name = name;
  row.n = n;
  uint64_t enc0 = RistrettoEncodeInvocations();
  uint64_t dec0 = RistrettoDecodeInvocations();
  WallTimer timer;
  body();
  row.seconds = timer.Seconds();
  row.encodes = RistrettoEncodeInvocations() - enc0;
  row.decodes = RistrettoDecodeInvocations() - dec0;
  return row;
}

void RunSweep() {
  size_t n = 1024;
  if (const char* env = std::getenv("VOTEGRAL_DLEQ_BENCH_N")) {
    long parsed = std::atol(env);
    if (parsed > 0) {
      n = static_cast<size_t>(parsed);
    }
  }

  ChaChaRng rng(0xD1E9);
  Scalar z = Scalar::Random(rng);
  RistrettoPoint commitment = RistrettoPoint::MulBase(z);
  CompressedRistretto commitment_wire = commitment.Encode();
  RistrettoPoint pk = RistrettoPoint::MulBase(Scalar::Random(rng));

  std::vector<TagInstance> instances;
  instances.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    instances.push_back(MakeInstance(pk, z, commitment_wire, commitment, rng));
  }

  std::vector<Row> rows;

  // Prover: wire-backed statements vs the encode-per-point framing.
  std::vector<DleqTranscript> proofs(n);
  rows.push_back(Measure("prove (wire statements)", n, [&] {
    ChaChaRng prove_rng(1);
    for (size_t i = 0; i < n; ++i) {
      proofs[i] = ProveDleqFs(kDomain, instances[i].statement, instances[i].witness,
                              prove_rng);
    }
  }));
  rows.push_back(Measure("prove (legacy framing)", n, [&] {
    ChaChaRng prove_rng(1);
    for (size_t i = 0; i < n; ++i) {
      DleqTranscript t = ProveDleqFs(kDomain, Stripped(instances[i].statement),
                                     instances[i].witness, prove_rng);
      Require(t.challenge == proofs[i].challenge, "dleq bench: framings diverged");
    }
  }));

  // Challenge derivation alone (the per-proof verifier hash).
  rows.push_back(Measure("challenge (wire)", n, [&] {
    for (size_t i = 0; i < n; ++i) {
      Scalar c = DeriveFsChallenge(kDomain, instances[i].statement, proofs[i].commits,
                                   proofs[i].commit_wire, {});
      Require(c == proofs[i].challenge, "dleq bench: wire challenge mismatch");
    }
  }));
  rows.push_back(Measure("challenge (legacy)", n, [&] {
    for (size_t i = 0; i < n; ++i) {
      Scalar c = DeriveFsChallenge(kDomain, Stripped(instances[i].statement),
                                   proofs[i].commits, {});
      Require(c == proofs[i].challenge, "dleq bench: legacy challenge mismatch");
    }
  }));

  // Batched verification: the universal verifier's hot shape.
  std::vector<DleqBatchEntry> cached(n);
  std::vector<DleqBatchEntry> stripped(n);
  for (size_t i = 0; i < n; ++i) {
    cached[i].domain = std::string(kDomain);
    cached[i].statement = instances[i].statement;
    cached[i].transcript = proofs[i];
    stripped[i].domain = std::string(kDomain);
    stripped[i].statement = Stripped(instances[i].statement);
    stripped[i].transcript = proofs[i];
    stripped[i].transcript.commit_wire.clear();
  }
  Row verify_wire = Measure("batch verify (wire)", n, [&] {
    ChaChaRng weights(2);
    Require(BatchVerifyDleq(cached, weights).ok(), "dleq bench: wire batch rejected");
  });
  Row verify_legacy = Measure("batch verify (legacy)", n, [&] {
    ChaChaRng weights(2);
    Require(BatchVerifyDleq(stripped, weights).ok(), "dleq bench: legacy batch rejected");
  });
  Require(verify_wire.encodes == 0,
          "dleq bench: wire-path verification must perform zero encodes");
  rows.push_back(verify_wire);
  rows.push_back(verify_legacy);

  TextTable table("Wire-byte DLEQ Fiat–Shamir — 3-element tagging-shaped proofs");
  table.SetHeader({"Path", "n", "Total", "Per proof (us)", "Encodes", "Decodes"});
  for (const Row& row : rows) {
    char per_proof[32];
    std::snprintf(per_proof, sizeof(per_proof), "%.1f", row.seconds / row.n * 1e6);
    table.AddRow({row.name, std::to_string(row.n), FormatSeconds(row.seconds), per_proof,
                  std::to_string(row.encodes), std::to_string(row.decodes)});
  }
  std::printf("%s\n", table.Format().c_str());
  std::printf("batch verify speedup (legacy/wire): %.2fx; wire path encodes: %llu "
              "(criterion: 0), decodes: %llu (criterion: 0 — commit caches are "
              "checked by BatchValidateEncodings, no roots)\n\n",
              verify_legacy.seconds / verify_wire.seconds,
              static_cast<unsigned long long>(verify_wire.encodes),
              static_cast<unsigned long long>(verify_wire.decodes));

  FILE* json = std::fopen("BENCH_dleq_fs.json", "w");
  Require(json != nullptr, "dleq bench: cannot write BENCH_dleq_fs.json");
  std::fprintf(json, "{\n  \"bench\": \"dleq_fs_wire\",\n  \"proof_shape\": "
                     "\"tagging-3-element\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(json,
                 "    {\"path\": \"%s\", \"n\": %zu, \"seconds\": %.6f, "
                 "\"encodes\": %llu, \"decodes\": %llu}%s\n",
                 row.name.c_str(), row.n, row.seconds,
                 static_cast<unsigned long long>(row.encodes),
                 static_cast<unsigned long long>(row.decodes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"batch_verify_speedup\": %.3f\n}\n",
               verify_legacy.seconds / verify_wire.seconds);
  std::fclose(json);
  std::printf("Wrote BENCH_dleq_fs.json\n");
}

}  // namespace
}  // namespace votegral

int main() {
  votegral::RunSweep();
  return 0;
}
