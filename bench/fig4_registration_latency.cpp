// Reproduces Fig. 4a (wall-clock median latency per TRIP sub-task and
// component) and Fig. 4b (CPU median latency, user/system split) across the
// four hardware platforms of §7.1, plus the §7.2 headline claims.
//
// Protocol work and QR encode/decode run live (scaled per profile); printer
// and scanner mechanics are modeled — see DESIGN.md §2 and
// src/peripherals/devices.cpp for the calibration against the paper's
// reported component medians.
//
// Workload: 10 scripted registrations of 1 real + 1 fake credential,
// activation of the real credential (the paper's §7.2 script).
#include <cstdio>
#include <vector>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/crypto/drbg.h"
#include "src/sim/registration_sim.h"

namespace votegral {
namespace {

constexpr int kRuns = 10;

struct DeviceResults {
  const DeviceProfile* device;
  // Median per phase/component (seconds).
  std::array<PhaseBreakdown, kRegPhaseCount> median;
  double total_wall = 0.0;
  double total_cpu = 0.0;
  double scan_wall = 0.0;
  double print_wall = 0.0;
  double readwrite_wall = 0.0;
  size_t scans = 7;  // 1 ticket + 2 envelopes + 1 check-out + 3 activation
};

DeviceResults RunDevice(const DeviceProfile& device) {
  ChaChaRng rng(0xF16'4000 + static_cast<uint64_t>(device.code[1]));
  std::vector<std::string> roster;
  for (int i = 0; i < kRuns; ++i) {
    roster.push_back("voter-" + std::to_string(i));
  }
  TripSystemParams params;
  params.roster = roster;
  TripSystem system = TripSystem::Create(params, rng);
  RegistrationSessionSimulator simulator(device);

  std::vector<SessionMeasurement> runs;
  for (int i = 0; i < kRuns; ++i) {
    runs.push_back(simulator.RunOnce(system, roster[static_cast<size_t>(i)], 1, rng));
  }

  DeviceResults results;
  results.device = &device;
  for (size_t p = 0; p < kRegPhaseCount; ++p) {
    for (size_t c = 0; c < kComponentCount; ++c) {
      std::vector<double> wall, user, sys;
      for (const auto& run : runs) {
        wall.push_back(run.phases[p].wall[c]);
        user.push_back(run.phases[p].cpu_user[c]);
        sys.push_back(run.phases[p].cpu_system[c]);
      }
      results.median[p].wall[c] = Median(wall);
      results.median[p].cpu_user[c] = Median(user);
      results.median[p].cpu_system[c] = Median(sys);
    }
  }
  std::vector<double> totals, cpus;
  for (const auto& run : runs) {
    totals.push_back(run.TotalWall());
    cpus.push_back(run.TotalCpu());
  }
  results.total_wall = Median(totals);
  results.total_cpu = Median(cpus);
  for (const auto& phase : results.median) {
    results.scan_wall += phase.wall[static_cast<size_t>(Component::kQrScan)];
    results.print_wall += phase.wall[static_cast<size_t>(Component::kQrPrint)];
    results.readwrite_wall += phase.wall[static_cast<size_t>(Component::kQrReadWrite)];
  }
  return results;
}

}  // namespace
}  // namespace votegral

int main() {
  using namespace votegral;
  std::printf("=== Figure 4: TRIP voter-observable registration latency ===\n");
  std::printf("Workload: %d scripted registrations, 1 real + 1 fake credential,\n", kRuns);
  std::printf("activation of the real credential. Medians reported.\n\n");

  std::vector<DeviceResults> all;
  for (const DeviceProfile* device : DeviceProfile::All()) {
    all.push_back(RunDevice(*device));
  }

  // ---- Fig. 4a: wall-clock per sub-task and component --------------------
  TextTable wall_table("Fig. 4a — Wall-clock median latency per sub-task (seconds)");
  wall_table.SetHeader({"Phase", "Device", "Crypto&Logic", "QR Read/Write", "QR Scan",
                        "QR Print", "Phase total"});
  for (size_t p = 0; p < kRegPhaseCount; ++p) {
    for (const DeviceResults& r : all) {
      const PhaseBreakdown& b = r.median[p];
      wall_table.AddRow({RegPhaseName(static_cast<RegPhase>(p)), r.device->code,
                         FormatDouble(b.wall[0], 4), FormatDouble(b.wall[1], 4),
                         FormatDouble(b.wall[2], 3), FormatDouble(b.wall[3], 3),
                         FormatDouble(b.TotalWall(), 3)});
    }
  }
  std::printf("%s\n", wall_table.Format().c_str());

  // ---- Fig. 4b: CPU per sub-task (user/system) ----------------------------
  TextTable cpu_table("Fig. 4b — CPU median latency per sub-task (seconds)");
  cpu_table.SetHeader({"Phase", "Device", "Crypto (usr/sys)", "QR R/W (usr/sys)",
                       "Scan (usr/sys)", "Print (usr/sys)", "Phase total"});
  for (size_t p = 0; p < kRegPhaseCount; ++p) {
    for (const DeviceResults& r : all) {
      const PhaseBreakdown& b = r.median[p];
      auto pair = [&](size_t c) {
        return FormatDouble(b.cpu_user[c], 4) + "/" + FormatDouble(b.cpu_system[c], 4);
      };
      cpu_table.AddRow({RegPhaseName(static_cast<RegPhase>(p)), r.device->code, pair(0),
                        pair(1), pair(2), pair(3), FormatDouble(b.TotalCpu(), 4)});
    }
  }
  std::printf("%s\n", cpu_table.Format().c_str());

  // ---- §7.2 headline claims ------------------------------------------------
  TextTable summary("Section 7.2 summary vs. paper claims");
  summary.SetHeader({"Metric", "L1", "L2", "H1", "H2", "Paper"});
  std::vector<std::string> total_row = {"Total wall (s)"};
  std::vector<std::string> qr_share_row = {"QR print+scan share"};
  std::vector<std::string> per_scan_row = {"Mean per QR scan (ms)"};
  std::vector<std::string> cpu_row = {"Total CPU (s)"};
  for (const DeviceResults& r : all) {
    total_row.push_back(FormatDouble(r.total_wall, 1));
    double qr_share = (r.print_wall + r.scan_wall) / r.total_wall;
    qr_share_row.push_back(FormatDouble(100.0 * qr_share, 1) + "%");
    per_scan_row.push_back(FormatDouble(1000.0 * r.scan_wall / r.scans, 0));
    cpu_row.push_back(FormatDouble(r.total_cpu, 2));
  }
  total_row.push_back("19.7 (L1) / 15.8 (H1)");
  qr_share_row.push_back(">= 69.5%");
  per_scan_row.push_back("~948");
  cpu_row.push_back("L ~260% of H");
  summary.AddRow(total_row);
  summary.AddRow(qr_share_row);
  summary.AddRow(per_scan_row);
  summary.AddRow(cpu_row);
  std::printf("%s\n", summary.Format().c_str());

  double l1 = all[0].total_wall;
  double h1 = all[2].total_wall;
  std::printf("Shape checks: slowest device is L1 (%.1f s), fastest high-end is H1 (%.1f s);\n",
              l1, h1);
  std::printf("L1 exceeds H1 by %.1f%% (paper: resource-constrained ~16.5%% slower wall).\n\n",
              100.0 * (l1 - h1) / h1);
  std::printf("CSV (Fig. 4a):\n%s\n", wall_table.Csv().c_str());
  return 0;
}
