// Ledger storage-backend streaming bench: the scaling evidence for the
// segmented-log redesign (ROADMAP "Streaming ledger ingestion").
//
// Sweeps ballot-sized entry counts {4096, 16384, 65536} over both backends
// (in-memory deque vs file-backed segmented log) and measures, per backend:
//   * append throughput (hash chain + Merkle frontier + write-through),
//   * a full sequential cursor scan (the tally validate stage's access
//     pattern: zero-copy views, one pinned segment at a time),
//   * MerkleRoot() latency — O(log n) off the incremental frontier,
//   * ProveInclusion() latency — no segment reads,
//   * VerifyChain() (streamed full re-hash, the auditor's integrity pass),
//   * peak pinned segment bytes (file backend) — the O(segment size), not
//     O(ledger size), resident-memory bound.
//
// Emits BENCH_ledger.json for the CI artifact next to the fig5b sweep.
//
// --threads N (or VOTEGRAL_THREADS) sizes a local Executor for the
// thread-safe read paths: the sequential scan becomes per-shard cursors
// (each pinning its own segment) and inclusion-proof *verification* fans
// out. Proof generation stays serial — the commitment tree's hash-invocation
// counter is deliberately unsynchronized.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/executor.h"
#include "src/common/table.h"
#include "src/crypto/drbg.h"
#include "src/ledger/ledger.h"

namespace votegral {
namespace {

namespace fs = std::filesystem;

// Realistic ballot payload size: a serialized Ballot (two ciphertexts, two
// signatures, kiosk certificate) is ~330 bytes.
constexpr size_t kPayloadBytes = 330;

struct BenchRow {
  std::string backend;
  size_t entries = 0;
  double append_s = 0;
  double scan_s = 0;
  double root_us = 0;
  double prove_us = 0;
  double verify_chain_s = 0;
  uint64_t peak_pinned_bytes = 0;
  uint64_t segment_bytes = 0;
};

BenchRow RunOne(const LedgerStorageConfig& config, const std::string& backend,
                size_t entries, Executor& executor) {
  BenchRow row;
  row.backend = backend;
  row.entries = entries;

  Ledger ledger(config);
  ChaChaRng rng(0x1ED6E5);

  WallTimer append_timer;
  for (size_t i = 0; i < entries; ++i) {
    ledger.Append("ballot", rng.RandomBytes(kPayloadBytes));
  }
  row.append_s = append_timer.Seconds();

  // Scan: sum payload bytes through zero-copy views — one cursor per shard,
  // each pinning at most one segment (shard boundaries are thread-count
  // independent; cursors share nothing mutable).
  WallTimer scan_timer;
  const auto shards = Executor::Shards(entries, executor.threads());
  std::atomic<uint64_t> scanned{0};
  executor.ParallelForEach(shards.size(), [&](size_t s) {
    uint64_t local = 0;
    LedgerEntryView view;
    for (LedgerCursor cursor = ledger.Scan(shards[s].first, shards[s].second);
         cursor.Next(&view);) {
      local += view.payload.size();
    }
    scanned.fetch_add(local, std::memory_order_relaxed);
  });
  row.scan_s = scan_timer.Seconds();
  Require(scanned.load() == entries * kPayloadBytes, "ledger bench: scan lost bytes");

  // Commitment queries, averaged over a few calls.
  constexpr int kReps = 64;
  WallTimer root_timer;
  LedgerHash root = {};
  for (int i = 0; i < kReps; ++i) {
    root = ledger.MerkleRoot();
  }
  row.root_us = root_timer.Seconds() / kReps * 1e6;

  // Proof generation is serial (the tree's hash-invocation counter is not
  // synchronized); verification is pure and fans out.
  WallTimer prove_timer;
  std::vector<InclusionProof> proofs;
  proofs.reserve(kReps);
  for (int i = 0; i < kReps; ++i) {
    auto proof = ledger.ProveInclusion((entries / kReps) * i);
    Require(proof.ok(), "ledger bench: proof failed");
    proofs.push_back(std::move(*proof));
  }
  executor.ParallelForEach(proofs.size(), [&](size_t i) {
    Require(
        Ledger::VerifyInclusion(root, ledger.LeafHash(proofs[i].index), proofs[i]).ok(),
        "ledger bench: proof did not verify");
  });
  row.prove_us = prove_timer.Seconds() / kReps * 1e6;

  WallTimer verify_timer;
  Require(ledger.VerifyChain().ok(), "ledger bench: chain verify failed");
  row.verify_chain_s = verify_timer.Seconds();

  if (const auto* file = dynamic_cast<const FileLedgerStore*>(&ledger.store())) {
    row.peak_pinned_bytes = file->PeakPinnedBytes();
    row.segment_bytes = fs::file_size(file->SegmentPath(0));
    Require(row.peak_pinned_bytes <= 4 * row.segment_bytes,
            "ledger bench: resident memory exceeded O(segment size)");
  }
  return row;
}

void RunSweep(size_t threads) {
  std::vector<size_t> sizes = {4096, 16384, 65536};
  if (const char* env = std::getenv("VOTEGRAL_LEDGER_BENCH_N")) {
    long parsed = std::atol(env);
    if (parsed > 0) {
      sizes = {static_cast<size_t>(parsed)};
    }
  }

  Executor executor(threads);
  Executor::Scope scope(executor);
  std::printf("ledger stream bench: %zu thread%s\n", executor.threads(),
              executor.threads() == 1 ? "" : "s");

  const std::string dir =
      (fs::temp_directory_path() / "votegral_ledger_bench").string();
  std::vector<BenchRow> rows;
  for (size_t n : sizes) {
    LedgerStorageConfig memory;
    rows.push_back(RunOne(memory, "memory", n, executor));

    fs::remove_all(dir);
    LedgerStorageConfig file;
    file.backend = LedgerStorageConfig::Backend::kFile;
    file.directory = dir;
    file.segment_entries = 1024;
    rows.push_back(RunOne(file, "file", n, executor));
    fs::remove_all(dir);
  }

  TextTable table("Ledger storage backends — append/stream/commitment sweep");
  table.SetHeader({"Backend", "Entries", "Append (s)", "Scan (s)", "Root (us)",
                   "Prove (us)", "VerifyChain (s)", "Peak pinned"});
  for (const BenchRow& row : rows) {
    char root_us[32], prove_us[32];
    std::snprintf(root_us, sizeof(root_us), "%.1f", row.root_us);
    std::snprintf(prove_us, sizeof(prove_us), "%.1f", row.prove_us);
    table.AddRow({row.backend, std::to_string(row.entries), FormatSeconds(row.append_s),
                  FormatSeconds(row.scan_s), root_us, prove_us,
                  FormatSeconds(row.verify_chain_s),
                  row.backend == "file"
                      ? std::to_string(row.peak_pinned_bytes / 1024) + " KiB"
                      : "(all resident)"});
  }
  std::printf("%s\n", table.Format().c_str());
  std::printf("File backend resident bound: peak pinned stays at one ~%zu-entry "
              "segment while the log grows %zux — O(segment), not O(ledger).\n\n",
              size_t{1024}, sizes.back() / sizes.front());

  FILE* json = std::fopen("BENCH_ledger.json", "w");
  Require(json != nullptr, "ledger bench: cannot write BENCH_ledger.json");
  std::fprintf(json, "{\n  \"bench\": \"ledger_stream\",\n  \"payload_bytes\": %zu,\n"
                     "  \"segment_entries\": 1024,\n  \"threads\": %zu,\n  \"sweep\": [\n",
               kPayloadBytes, executor.threads());
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    std::fprintf(
        json,
        "    {\"backend\": \"%s\", \"entries\": %zu, \"append_s\": %.6f, "
        "\"scan_s\": %.6f, \"merkle_root_us\": %.3f, \"prove_inclusion_us\": %.3f, "
        "\"verify_chain_s\": %.6f, \"peak_pinned_bytes\": %llu, "
        "\"segment_bytes\": %llu}%s\n",
        row.backend.c_str(), row.entries, row.append_s, row.scan_s, row.root_us,
        row.prove_us, row.verify_chain_s,
        static_cast<unsigned long long>(row.peak_pinned_bytes),
        static_cast<unsigned long long>(row.segment_bytes),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("Wrote BENCH_ledger.json\n");
}

// Thread count: --threads N beats VOTEGRAL_THREADS beats
// hardware_concurrency (Executor's `0` default).
size_t ParseThreads(int argc, char** argv) {
  size_t threads = 0;
  if (const char* env = std::getenv("VOTEGRAL_THREADS")) {
    long parsed = std::atol(env);
    if (parsed > 0) {
      threads = static_cast<size_t>(parsed);
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--threads" && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      Require(parsed > 0, "fig_ledger_stream: --threads needs a positive count");
      threads = static_cast<size_t>(parsed);
    } else {
      std::fprintf(stderr, "usage: fig_ledger_stream [--threads N]\n");
      std::exit(2);
    }
  }
  return threads;
}

}  // namespace
}  // namespace votegral

int main(int argc, char** argv) {
  votegral::RunSweep(votegral::ParseThreads(argc, argv));
  return 0;
}
