// Micro-benchmarks (google-benchmark) for the primitives backing every
// figure: ristretto255 point arithmetic, Schnorr, ElGamal, Chaum–Pedersen,
// the 2048-bit Schnorr-group exponentiation (Civitas substrate), hashing,
// and the protocol hot paths (credential issuance, activation, PET).
#include <benchmark/benchmark.h>

#include "src/crypto/dkg.h"
#include "src/crypto/dleq.h"
#include "src/crypto/drbg.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/modp.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"
#include "src/trip/registrar.h"

namespace votegral {
namespace {

void BM_Sha256_1k(benchmark::State& state) {
  ChaChaRng rng(1);
  Bytes data = rng.RandomBytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
}
BENCHMARK(BM_Sha256_1k);

void BM_Sha512_1k(benchmark::State& state) {
  ChaChaRng rng(2);
  Bytes data = rng.RandomBytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Hash(data));
  }
}
BENCHMARK(BM_Sha512_1k);

void BM_RistrettoMulBase(benchmark::State& state) {
  ChaChaRng rng(3);
  Scalar s = Scalar::Random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RistrettoPoint::MulBase(s));
  }
}
BENCHMARK(BM_RistrettoMulBase);

void BM_RistrettoMulBaseSlow(benchmark::State& state) {
  ChaChaRng rng(4);
  Scalar s = Scalar::Random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RistrettoPoint::MulBaseSlow(s));
  }
}
BENCHMARK(BM_RistrettoMulBaseSlow);

void BM_RistrettoVarMul(benchmark::State& state) {
  ChaChaRng rng(5);
  RistrettoPoint p = RistrettoPoint::FromUniformBytes(rng.RandomBytes(64));
  Scalar s = Scalar::Random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s * p);
  }
}
BENCHMARK(BM_RistrettoVarMul);

void BM_RistrettoEncodeDecode(benchmark::State& state) {
  ChaChaRng rng(6);
  RistrettoPoint p = RistrettoPoint::FromUniformBytes(rng.RandomBytes(64));
  for (auto _ : state) {
    auto enc = p.Encode();
    benchmark::DoNotOptimize(RistrettoPoint::Decode(enc));
  }
}
BENCHMARK(BM_RistrettoEncodeDecode);

void BM_SchnorrSign(benchmark::State& state) {
  ChaChaRng rng(7);
  auto kp = SchnorrKeyPair::Generate(rng);
  auto msg = AsBytes("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.Sign(msg, rng));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  ChaChaRng rng(8);
  auto kp = SchnorrKeyPair::Generate(rng);
  auto msg = AsBytes("benchmark message");
  auto sig = kp.Sign(msg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchnorrVerify(kp.public_bytes(), msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_ElGamalEncrypt(benchmark::State& state) {
  ChaChaRng rng(9);
  Scalar sk = Scalar::Random(rng);
  RistrettoPoint pk = RistrettoPoint::MulBase(sk);
  RistrettoPoint msg = RistrettoPoint::FromUniformBytes(rng.RandomBytes(64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalEncrypt(pk, msg, rng));
  }
}
BENCHMARK(BM_ElGamalEncrypt);

void BM_DleqProveFs(benchmark::State& state) {
  ChaChaRng rng(10);
  Scalar x = Scalar::Random(rng);
  RistrettoPoint g2 = RistrettoPoint::FromUniformBytes(rng.RandomBytes(64));
  DleqStatement st = DleqStatement::MakePair(RistrettoPoint::Base(),
                                             RistrettoPoint::MulBase(x), g2, x * g2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProveDleqFs("bench", st, x, rng));
  }
}
BENCHMARK(BM_DleqProveFs);

void BM_DleqVerifyFs(benchmark::State& state) {
  ChaChaRng rng(11);
  Scalar x = Scalar::Random(rng);
  RistrettoPoint g2 = RistrettoPoint::FromUniformBytes(rng.RandomBytes(64));
  DleqStatement st = DleqStatement::MakePair(RistrettoPoint::Base(),
                                             RistrettoPoint::MulBase(x), g2, x * g2);
  auto proof = ProveDleqFs("bench", st, x, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VerifyDleqFs("bench", st, proof));
  }
}
BENCHMARK(BM_DleqVerifyFs);

void BM_ModPExp2048(benchmark::State& state) {
  ChaChaRng rng(12);
  const ModPGroup& group = ModPGroup::Standard();
  QScalar e = group.QRandom(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.ExpG(e));
  }
}
BENCHMARK(BM_ModPExp2048);

void BM_ModPPetSingleTrustee(benchmark::State& state) {
  ChaChaRng rng(13);
  const ModPGroup& group = ModPGroup::Standard();
  QScalar sk = group.QRandom(rng);
  ModPElement pk = group.ExpG(sk);
  ModPElement m = group.ExpG(group.QRandom(rng));
  ModPCiphertext a = ModPEncrypt(group, pk, m, group.QRandom(rng));
  ModPCiphertext b = ModPEncrypt(group, pk, m, group.QRandom(rng));
  QScalar z = group.QRandom(rng);
  ModPElement commitment = group.ExpG(z);
  for (auto _ : state) {
    ModPCiphertext q = ModPQuotient(group, a, b);
    benchmark::DoNotOptimize(PetBlind(group, q, z, commitment, rng));
  }
}
BENCHMARK(BM_ModPPetSingleTrustee);

void BM_TripFullRegistration(benchmark::State& state) {
  // The TRIP-Core per-voter registration crypto path (kiosk + official +
  // activation; 1 real + 1 fake) — the per-voter unit behind Fig. 5a.
  ChaChaRng rng(14);
  std::vector<std::string> roster;
  for (int i = 0; i < 20000; ++i) {
    roster.push_back("v" + std::to_string(i));
  }
  TripSystemParams params;
  params.roster = roster;
  params.envelopes_per_voter = 3;
  TripSystem system = TripSystem::Create(params, rng);
  Vsd vsd = system.MakeVsd();
  size_t next = 0;
  for (auto _ : state) {
    auto voter = RegisterAndActivate(system, roster.at(next++), 1, vsd, rng);
    benchmark::DoNotOptimize(voter.ok());
  }
}
BENCHMARK(BM_TripFullRegistration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace votegral

BENCHMARK_MAIN();
