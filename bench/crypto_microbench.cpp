// Micro-benchmarks (google-benchmark) for the primitives backing every
// figure: ristretto255 point arithmetic, Schnorr, ElGamal, Chaum–Pedersen,
// the 2048-bit Schnorr-group exponentiation (Civitas substrate), hashing,
// and the protocol hot paths (credential issuance, activation, PET).
#include <benchmark/benchmark.h>

#include "src/crypto/batch.h"
#include "src/crypto/dkg.h"
#include "src/crypto/dleq.h"
#include "src/crypto/drbg.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/fe25519_x4.h"
#include "src/crypto/modp.h"
#include "src/crypto/msm.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"
#include "src/trip/registrar.h"

namespace votegral {
namespace {

void BM_Sha256_1k(benchmark::State& state) {
  ChaChaRng rng(1);
  Bytes data = rng.RandomBytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
}
BENCHMARK(BM_Sha256_1k);

void BM_Sha512_1k(benchmark::State& state) {
  ChaChaRng rng(2);
  Bytes data = rng.RandomBytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Hash(data));
  }
}
BENCHMARK(BM_Sha512_1k);

void BM_RistrettoMulBase(benchmark::State& state) {
  ChaChaRng rng(3);
  Scalar s = Scalar::Random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RistrettoPoint::MulBase(s));
  }
}
BENCHMARK(BM_RistrettoMulBase);

void BM_RistrettoMulBaseSlow(benchmark::State& state) {
  ChaChaRng rng(4);
  Scalar s = Scalar::Random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RistrettoPoint::MulBaseSlow(s));
  }
}
BENCHMARK(BM_RistrettoMulBaseSlow);

void BM_RistrettoVarMul(benchmark::State& state) {
  ChaChaRng rng(5);
  RistrettoPoint p = RistrettoPoint::FromUniformBytes(rng.RandomBytes(64));
  Scalar s = Scalar::Random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s * p);
  }
}
BENCHMARK(BM_RistrettoVarMul);

void BM_RistrettoEncodeDecode(benchmark::State& state) {
  ChaChaRng rng(6);
  RistrettoPoint p = RistrettoPoint::FromUniformBytes(rng.RandomBytes(64));
  for (auto _ : state) {
    auto enc = p.Encode();
    benchmark::DoNotOptimize(RistrettoPoint::Decode(enc));
  }
}
BENCHMARK(BM_RistrettoEncodeDecode);

void BM_SchnorrSign(benchmark::State& state) {
  ChaChaRng rng(7);
  auto kp = SchnorrKeyPair::Generate(rng);
  auto msg = AsBytes("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.Sign(msg, rng));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  ChaChaRng rng(8);
  auto kp = SchnorrKeyPair::Generate(rng);
  auto msg = AsBytes("benchmark message");
  auto sig = kp.Sign(msg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchnorrVerify(kp.public_bytes(), msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_ElGamalEncrypt(benchmark::State& state) {
  ChaChaRng rng(9);
  Scalar sk = Scalar::Random(rng);
  RistrettoPoint pk = RistrettoPoint::MulBase(sk);
  RistrettoPoint msg = RistrettoPoint::FromUniformBytes(rng.RandomBytes(64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalEncrypt(pk, msg, rng));
  }
}
BENCHMARK(BM_ElGamalEncrypt);

void BM_DleqProveFs(benchmark::State& state) {
  ChaChaRng rng(10);
  Scalar x = Scalar::Random(rng);
  RistrettoPoint g2 = RistrettoPoint::FromUniformBytes(rng.RandomBytes(64));
  DleqStatement st = DleqStatement::MakePair(RistrettoPoint::Base(),
                                             RistrettoPoint::MulBase(x), g2, x * g2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProveDleqFs("bench", st, x, rng));
  }
}
BENCHMARK(BM_DleqProveFs);

void BM_DleqVerifyFs(benchmark::State& state) {
  ChaChaRng rng(11);
  Scalar x = Scalar::Random(rng);
  RistrettoPoint g2 = RistrettoPoint::FromUniformBytes(rng.RandomBytes(64));
  DleqStatement st = DleqStatement::MakePair(RistrettoPoint::Base(),
                                             RistrettoPoint::MulBase(x), g2, x * g2);
  auto proof = ProveDleqFs("bench", st, x, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VerifyDleqFs("bench", st, proof));
  }
}
BENCHMARK(BM_DleqVerifyFs);

void BM_ModPExp2048(benchmark::State& state) {
  ChaChaRng rng(12);
  const ModPGroup& group = ModPGroup::Standard();
  QScalar e = group.QRandom(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.ExpG(e));
  }
}
BENCHMARK(BM_ModPExp2048);

void BM_ModPPetSingleTrustee(benchmark::State& state) {
  ChaChaRng rng(13);
  const ModPGroup& group = ModPGroup::Standard();
  QScalar sk = group.QRandom(rng);
  ModPElement pk = group.ExpG(sk);
  ModPElement m = group.ExpG(group.QRandom(rng));
  ModPCiphertext a = ModPEncrypt(group, pk, m, group.QRandom(rng));
  ModPCiphertext b = ModPEncrypt(group, pk, m, group.QRandom(rng));
  QScalar z = group.QRandom(rng);
  ModPElement commitment = group.ExpG(z);
  for (auto _ : state) {
    ModPCiphertext q = ModPQuotient(group, a, b);
    benchmark::DoNotOptimize(PetBlind(group, q, z, commitment, rng));
  }
}
BENCHMARK(BM_ModPPetSingleTrustee);

// ---- Multi-scalar multiplication: MSM engine vs per-term evaluation ----

struct MsmFixture {
  std::vector<Scalar> scalars;
  std::vector<RistrettoPoint> points;

  explicit MsmFixture(size_t n, uint64_t seed) {
    ChaChaRng rng(seed);
    scalars.reserve(n);
    points.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      scalars.push_back(Scalar::Random(rng));
      points.push_back(RistrettoPoint::FromUniformBytes(rng.RandomBytes(64)));
    }
  }
};

void BM_MsmNaive(benchmark::State& state) {
  MsmFixture fx(static_cast<size_t>(state.range(0)), 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiScalarMulNaive(fx.scalars, fx.points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MsmNaive)->Arg(16)->Arg(256)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_Msm(benchmark::State& state) {
  MsmFixture fx(static_cast<size_t>(state.range(0)), 20);  // same inputs as naive
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiScalarMul(fx.scalars, fx.points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Msm)->Arg(16)->Arg(256)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_MsmDoubleScalarMulBase(benchmark::State& state) {
  ChaChaRng rng(21);
  Scalar a = Scalar::Random(rng);
  Scalar b = Scalar::Random(rng);
  RistrettoPoint p = RistrettoPoint::FromUniformBytes(rng.RandomBytes(64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RistrettoPoint::DoubleScalarMulBase(a, p, b));
  }
}
BENCHMARK(BM_MsmDoubleScalarMulBase);

// ---- Batched Schnorr verification: seed accumulation vs MSM ----

std::vector<SchnorrBatchEntry> MakeSchnorrBatch(size_t n, uint64_t seed) {
  ChaChaRng rng(seed);
  std::vector<SchnorrBatchEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto kp = SchnorrKeyPair::Generate(rng);
    SchnorrBatchEntry entry;
    entry.public_key = kp.public_bytes();
    entry.message = rng.RandomBytes(32);
    entry.signature = kp.Sign(entry.message, rng);
    entries.push_back(std::move(entry));
  }
  return entries;
}

// The seed's BatchVerifySchnorr hot path, preserved verbatim for the
// perf-trajectory comparison: the combined equation is evaluated with one
// variable-base `operator*` chain per entry (each rebuilding its own window
// table) instead of one flat MSM.
Status BatchVerifySchnorrSeedPath(std::span<const SchnorrBatchEntry> entries, Rng& rng) {
  Scalar combined_s = Scalar::Zero();
  RistrettoPoint accumulator;  // identity
  for (const SchnorrBatchEntry& entry : entries) {
    auto pk = RistrettoPoint::Decode(entry.public_key);
    auto r = RistrettoPoint::Decode(entry.signature.r_bytes);
    if (!pk.has_value() || !r.has_value()) {
      return Status::Error("batch-schnorr: undecodable point");
    }
    Bytes wide(64, 0);
    rng.Fill(std::span<uint8_t>(wide.data(), 16));
    Scalar weight = Scalar::FromBytesWide(wide);
    Scalar challenge = Scalar::FromBytesWide(Sha512::HashParts(
        {AsBytes("votegral/schnorr/challenge/v1"), entry.signature.r_bytes,
         entry.public_key, entry.message}));
    combined_s = combined_s + weight * entry.signature.s;
    accumulator = accumulator + (weight * challenge) * *pk + weight * *r;
  }
  if (!(RistrettoPoint::MulBase(combined_s) == accumulator)) {
    return Status::Error("batch-schnorr: combined verification equation failed");
  }
  return Status::Ok();
}

void BM_BatchVerifySchnorrSeedPath(benchmark::State& state) {
  auto entries = MakeSchnorrBatch(static_cast<size_t>(state.range(0)), 22);
  ChaChaRng rng(23);
  for (auto _ : state) {
    Status s = BatchVerifySchnorrSeedPath(entries, rng);
    Require(s.ok(), "bench: seed-path batch verification must pass");
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchVerifySchnorrSeedPath)
    ->Arg(16)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_BatchVerifySchnorrMsm(benchmark::State& state) {
  auto entries = MakeSchnorrBatch(static_cast<size_t>(state.range(0)), 22);
  ChaChaRng rng(23);
  for (auto _ : state) {
    Status s = BatchVerifySchnorr(entries, rng);
    Require(s.ok(), "bench: MSM batch verification must pass");
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchVerifySchnorrMsm)
    ->Arg(16)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// Accumulation-stage comparison at fixed batch size: identical pre-decoded
// points, weights and challenges; only the evaluation strategy differs.
// This isolates exactly the "per-entry accumulation path vs MSM" question —
// the end-to-end BM_BatchVerifySchnorr* pair above additionally pays the
// (identical on both sides) per-entry decode + hash cost.
struct SchnorrAccumFixture {
  std::vector<RistrettoPoint> pks;
  std::vector<RistrettoPoint> rs;
  std::vector<Scalar> weights;
  std::vector<Scalar> challenges;
  Scalar combined_s = Scalar::Zero();

  explicit SchnorrAccumFixture(size_t n) {
    ChaChaRng rng(25);
    auto entries = MakeSchnorrBatch(n, 22);
    for (const SchnorrBatchEntry& entry : entries) {
      pks.push_back(*RistrettoPoint::Decode(entry.public_key));
      rs.push_back(*RistrettoPoint::Decode(entry.signature.r_bytes));
      Bytes wide(64, 0);
      rng.Fill(std::span<uint8_t>(wide.data(), 16));
      weights.push_back(Scalar::FromBytesWide(wide));
      challenges.push_back(Scalar::FromBytesWide(Sha512::HashParts(
          {AsBytes("votegral/schnorr/challenge/v1"), entry.signature.r_bytes,
           entry.public_key, entry.message})));
      combined_s = combined_s + weights.back() * entry.signature.s;
    }
  }
};

void BM_SchnorrAccumSeedPath(benchmark::State& state) {
  SchnorrAccumFixture fx(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RistrettoPoint accumulator;
    for (size_t i = 0; i < fx.pks.size(); ++i) {
      accumulator = accumulator + (fx.weights[i] * fx.challenges[i]) * fx.pks[i] +
                    fx.weights[i] * fx.rs[i];
    }
    bool ok = RistrettoPoint::MulBase(fx.combined_s) == accumulator;
    Require(ok, "bench: seed accumulation equation must hold");
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchnorrAccumSeedPath)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_SchnorrAccumMsm(benchmark::State& state) {
  SchnorrAccumFixture fx(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<Scalar> scalars;
    std::vector<RistrettoPoint> points;
    scalars.reserve(2 * fx.pks.size());
    points.reserve(2 * fx.pks.size());
    for (size_t i = 0; i < fx.pks.size(); ++i) {
      scalars.push_back(-(fx.weights[i] * fx.challenges[i]));
      points.push_back(fx.pks[i]);
      scalars.push_back(-fx.weights[i]);
      points.push_back(fx.rs[i]);
    }
    bool ok = MultiScalarMulWithBase(fx.combined_s, scalars, points).IsIdentity();
    Require(ok, "bench: MSM accumulation equation must hold");
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchnorrAccumMsm)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_ScalarWideReduction(benchmark::State& state) {
  // Exercises Barrett Reduce512 via the wide-bytes path (one reduction per
  // call, no group operations).
  ChaChaRng rng(24);
  Bytes wide = rng.RandomBytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Scalar::FromBytesWide(wide));
  }
}
BENCHMARK(BM_ScalarWideReduction);

// ---- 4-way field backend: X4 kernels vs 4 scalar calls ----
//
// Each X4 bench runs on whatever backend dispatch picked (scalar on machines
// without AVX2/NEON; force with VOTEGRAL_SIMD=off to measure the portable
// lanes); the *4x baselines do the same work through the scalar layer. The
// BENCH_msm.json ratio of the pair is the vectorization speedup.

// 8 independent X4 vectors (32 field elements) per iteration on both sides,
// so scalar and vector paths expose the same instruction-level parallelism
// and the ratio measures throughput, not one dependency chain's latency.
inline constexpr size_t kFeBenchVecs = 8;

struct FeX4Fixture {
  Fe25519 a[4 * kFeBenchVecs];
  Fe25519 b[4 * kFeBenchVecs];
  Fe25519X4 va[kFeBenchVecs];
  Fe25519X4 vb[kFeBenchVecs];

  FeX4Fixture() {
    ChaChaRng rng(26);
    for (size_t k = 0; k < 4 * kFeBenchVecs; ++k) {
      Bytes bytes = rng.RandomBytes(32);
      bytes[31] &= 0x7f;
      a[k] = FeFromBytes(bytes);
      bytes = rng.RandomBytes(32);
      bytes[31] &= 0x7f;
      b[k] = FeFromBytes(bytes);
    }
    for (size_t v = 0; v < kFeBenchVecs; ++v) {
      va[v] = FeX4FromLanes(&a[4 * v]);
      vb[v] = FeX4FromLanes(&b[4 * v]);
    }
  }
};

void BM_FeMulScalar4x(benchmark::State& state) {
  FeX4Fixture fx;
  for (auto _ : state) {
    for (size_t k = 0; k < 4 * kFeBenchVecs; ++k) {
      fx.a[k] = FeMul(fx.a[k], fx.b[k]);
    }
    benchmark::DoNotOptimize(fx.a);
  }
  state.SetItemsProcessed(state.iterations() * 4 * kFeBenchVecs);
}
BENCHMARK(BM_FeMulScalar4x);

void BM_FeMulX4(benchmark::State& state) {
  FeX4Fixture fx;
  for (auto _ : state) {
    for (size_t v = 0; v < kFeBenchVecs; ++v) {
      FeMulX4(fx.va[v], fx.va[v], fx.vb[v]);
    }
    benchmark::DoNotOptimize(fx.va);
  }
  state.SetItemsProcessed(state.iterations() * 4 * kFeBenchVecs);
  state.SetLabel(FeSimdBackendName(ActiveFeSimdBackend()));
}
BENCHMARK(BM_FeMulX4);

void BM_FeSquareScalar4x(benchmark::State& state) {
  FeX4Fixture fx;
  for (auto _ : state) {
    for (size_t k = 0; k < 4 * kFeBenchVecs; ++k) {
      fx.a[k] = FeSquare(fx.a[k]);
    }
    benchmark::DoNotOptimize(fx.a);
  }
  state.SetItemsProcessed(state.iterations() * 4 * kFeBenchVecs);
}
BENCHMARK(BM_FeSquareScalar4x);

void BM_FeSquareX4(benchmark::State& state) {
  FeX4Fixture fx;
  for (auto _ : state) {
    for (size_t v = 0; v < kFeBenchVecs; ++v) {
      FeSquareX4(fx.va[v], fx.va[v]);
    }
    benchmark::DoNotOptimize(fx.va);
  }
  state.SetItemsProcessed(state.iterations() * 4 * kFeBenchVecs);
  state.SetLabel(FeSimdBackendName(ActiveFeSimdBackend()));
}
BENCHMARK(BM_FeSquareX4);

void BM_FeInvSqrtScalar4x(benchmark::State& state) {
  FeX4Fixture fx;
  for (auto _ : state) {
    for (size_t k = 0; k < 4; ++k) {
      benchmark::DoNotOptimize(FeInvSqrt(fx.a[k]));
    }
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_FeInvSqrtScalar4x);

void BM_FeInvSqrtX4(benchmark::State& state) {
  FeX4Fixture fx;
  SqrtRatioResult out[4];
  // Pin the 4-wide kernel route: this row measures the kernel itself, not
  // the calibration gate's pick (production encodes get whichever is faster).
  const int previous_mode = SetFeInvSqrtX4ModeForTest(1);
  for (auto _ : state) {
    FeInvSqrtX4(fx.a, out);
    benchmark::DoNotOptimize(out);
  }
  SetFeInvSqrtX4ModeForTest(previous_mode);
  state.SetItemsProcessed(state.iterations() * 4);
  state.SetLabel(FeSimdBackendName(ActiveFeSimdBackend()));
}
BENCHMARK(BM_FeInvSqrtX4);

void BM_RistrettoBatchEncode(benchmark::State& state) {
  ChaChaRng rng(27);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<RistrettoPoint> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back(RistrettoPoint::FromUniformBytes(rng.RandomBytes(64)));
  }
  std::vector<CompressedRistretto> out(n);
  for (auto _ : state) {
    BatchEncodePoints(points, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(FeSimdBackendName(ActiveFeSimdBackend()));
}
BENCHMARK(BM_RistrettoBatchEncode)->Arg(256)->Unit(benchmark::kMicrosecond);

// ---- Shared-base MSM: 1024 signatures under ONE key vs distinct keys ----
//
// BM_SchnorrAccumMsm above is the distinct-key baseline (2n+1 MSM terms).
// With every signature under the same public key the shared engine folds the
// pk column into a single term (n+1 terms and a cached table); the ratio of
// the two *SharedKey rows is the collapse win.

std::vector<SchnorrBatchEntry> MakeSchnorrBatchOneKey(size_t n, uint64_t seed) {
  ChaChaRng rng(seed);
  auto kp = SchnorrKeyPair::Generate(rng);
  std::vector<SchnorrBatchEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SchnorrBatchEntry entry;
    entry.public_key = kp.public_bytes();
    entry.message = rng.RandomBytes(32);
    entry.signature = kp.Sign(entry.message, rng);
    entries.push_back(std::move(entry));
  }
  return entries;
}

void BM_BatchVerifySchnorrSharedKeyBaseline(benchmark::State& state) {
  // Same single-signer batch, evaluated WITHOUT the wire-key collapse: one
  // pk term per signature, exactly what BatchVerifySchnorr did before the
  // shared-base engine.
  auto entries = MakeSchnorrBatchOneKey(static_cast<size_t>(state.range(0)), 28);
  ChaChaRng rng(29);
  for (auto _ : state) {
    Status s = BatchVerifySchnorrSeedPath(entries, rng);
    Require(s.ok(), "bench: shared-key baseline must pass");
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchVerifySchnorrSharedKeyBaseline)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_BatchVerifySchnorrSharedKey(benchmark::State& state) {
  auto entries = MakeSchnorrBatchOneKey(static_cast<size_t>(state.range(0)), 28);
  ChaChaRng rng(29);
  ResetSharedMsmForTest();
  for (auto _ : state) {
    Status s = BatchVerifySchnorr(entries, rng);
    Require(s.ok(), "bench: shared-key batch must pass");
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  MsmSharedStats stats = SharedMsmStats();
  state.counters["collapsed_per_call"] = benchmark::Counter(
      static_cast<double>(stats.collapsed_terms) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_BatchVerifySchnorrSharedKey)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_TripFullRegistration(benchmark::State& state) {
  // The TRIP-Core per-voter registration crypto path (kiosk + official +
  // activation; 1 real + 1 fake) — the per-voter unit behind Fig. 5a.
  ChaChaRng rng(14);
  std::vector<std::string> roster;
  for (int i = 0; i < 20000; ++i) {
    roster.push_back("v" + std::to_string(i));
  }
  TripSystemParams params;
  params.roster = roster;
  params.envelopes_per_voter = 3;
  TripSystem system = TripSystem::Create(params, rng);
  Vsd vsd = system.MakeVsd();
  size_t next = 0;
  for (auto _ : state) {
    auto voter = RegisterAndActivate(system, roster.at(next++), 1, vsd, rng);
    benchmark::DoNotOptimize(voter.ok());
  }
}
BENCHMARK(BM_TripFullRegistration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace votegral

BENCHMARK_MAIN();
