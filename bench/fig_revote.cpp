// Deniable-revoting cost: supersession dedup + cover-traffic padding at
// election scale (docs/REVOTING.md, docs/BENCHMARKS.md).
//
// What this measures (and the claims it backs):
//  * The selection kernel differential at 10^5+ items: SelectLastPerTag
//    (quasilinear tag-sort) must match the quadratic last-write-wins
//    reference byte for byte at the headline size — the at-scale leg of the
//    tests/test_revote.cpp differential.
//  * Kernel sweep: selection + padding-plan time across sizes, showing the
//    dedup core is quasilinear and the padded board stays within the cover
//    envelope bound <= 5T + O(log^2 T) items.
//  * Full revote tallies off a file-backed segmented ledger, sweeping
//    revote rate x ballot count: end-to-end wall clock, the dedup stage's
//    busy time, padding overhead (dummy groups/items), and the streaming
//    contract — peak pinned ledger payload stays O(one segment), not O(N),
//    even though the dedup pipeline mixes ~3.3N padded width-3 items.
//  * Supersession accounting: every run cross-checks superseded /
//    unmatched-tag discards against the forged corpus and the published
//    dummy openings, and (while affordable) replays the kept set with the
//    quadratic reference over the published tags and counters.
//
// The corpus is forged directly (per-credential keys, ballots via the real
// MakeRevoteBallot) like bench/fig_stream_tally.cpp: registration ceremony
// costs would dominate setup without touching a tally code path. Revotes
// are extra casts with incremented counters by the first rate*N credentials,
// so the corpus has floor(rate*N) supersessions by construction.
//
// Scale knobs: --ballots N (headline kernel size, default 2^17;
// VOTEGRAL_BENCH_BALLOTS env works too), --tally N1,N2 (full-tally sizes,
// default 2048,8192,32768; VOTEGRAL_BENCH_TALLY env), --rate R (default
// 0.25), --threads T (default 1), --segment E. Emits BENCH_revote.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/common/clock.h"
#include "src/common/table.h"
#include "src/crypto/drbg.h"
#include "src/crypto/schnorr.h"
#include "src/ledger/subledgers.h"
#include "src/trip/vsd.h"
#include "src/votegral/ballot.h"
#include "src/votegral/revote.h"
#include "src/votegral/tally.h"

namespace votegral {
namespace {

namespace fs = std::filesystem;

struct Options {
  size_t ballots = size_t{1} << 17;  // headline kernel-differential size
  std::vector<size_t> tally_ballots = {2048, 8192, 32768};
  double rate = 0.25;
  size_t threads = 1;
  size_t segment_entries = 1024;
  std::string out = "BENCH_revote.json";
};

std::vector<size_t> ParseSizeList(const char* arg) {
  std::vector<size_t> sizes;
  for (const char* p = arg; *p != '\0';) {
    char* end = nullptr;
    long value = std::strtol(p, &end, 10);
    if (end == p) {
      break;
    }
    if (value > 0) {
      sizes.push_back(static_cast<size_t>(value));
    }
    p = (*end == ',') ? end + 1 : end;
  }
  return sizes;
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  if (const char* env = std::getenv("VOTEGRAL_BENCH_BALLOTS")) {
    long parsed = std::atol(env);
    if (parsed > 0) {
      options.ballots = static_cast<size_t>(parsed);
    }
  }
  if (const char* env = std::getenv("VOTEGRAL_BENCH_TALLY")) {
    auto parsed = ParseSizeList(env);
    if (!parsed.empty()) {
      options.tally_ballots = parsed;
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    auto next = [&]() -> const char* {
      Require(i + 1 < argc, "fig_revote: flag needs a value");
      return argv[++i];
    };
    if (arg == "--ballots") {
      options.ballots = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--tally") {
      options.tally_ballots = ParseSizeList(next());
    } else if (arg == "--rate") {
      options.rate = std::atof(next());
    } else if (arg == "--threads") {
      options.threads = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--segment") {
      options.segment_entries = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--out") {
      options.out = next();
    } else {
      std::fprintf(stderr,
                   "usage: fig_revote [--ballots N] [--tally N1,N2] [--rate R] "
                   "[--threads T] [--segment E] [--out FILE]\n");
      std::exit(2);
    }
  }
  Require(options.ballots > 0 && !options.tally_ballots.empty(),
          "fig_revote: need a headline size and a tally size list");
  Require(options.rate >= 0.0 && options.rate < 1.0, "fig_revote: rate in [0, 1)");
  Require(options.threads > 0, "fig_revote: need at least one thread");
  return options;
}

// --- Part 1: selection kernel + padding plan, crypto-free ------------------

// k*B encodings for k = 0..n-1, built incrementally (the counter table).
std::vector<CompressedRistretto> CounterEncodings(size_t n) {
  std::vector<CompressedRistretto> out;
  out.reserve(n);
  RistrettoPoint point;  // identity = 0*B
  for (size_t k = 0; k < n; ++k) {
    out.push_back(point.Encode());
    point = point + RistrettoPoint::Base();
  }
  return out;
}

// A shuffled board of `items` (tag, counter-point) pairs at the given revote
// rate: floor(rate*items) casts are re-casts (counter 1) by the first
// credentials, the rest first casts. Tags are uniform 32-byte strings — the
// selection kernel treats them as opaque sort keys, exactly as it treats
// the real post-mix tag decryptions.
struct KernelBoard {
  std::vector<CompressedRistretto> tags;
  std::vector<CompressedRistretto> counters;
  size_t credentials = 0;
  size_t revotes = 0;
};

KernelBoard MakeKernelBoard(size_t items, double rate,
                            const std::vector<CompressedRistretto>& counter_table,
                            Rng& rng) {
  KernelBoard board;
  board.revotes = static_cast<size_t>(static_cast<double>(items) * rate);
  board.credentials = items - board.revotes;
  Require(board.credentials > 0, "fig_revote: rate leaves no credentials");
  std::vector<CompressedRistretto> credential_tags(board.credentials);
  for (auto& tag : credential_tags) {
    rng.Fill(tag);
  }
  board.tags.reserve(items);
  board.counters.reserve(items);
  for (size_t i = 0; i < board.credentials; ++i) {
    board.tags.push_back(credential_tags[i]);
    board.counters.push_back(counter_table[0]);
  }
  for (size_t i = 0; i < board.revotes; ++i) {
    const size_t credential = i % board.credentials;
    board.tags.push_back(credential_tags[credential]);
    board.counters.push_back(counter_table[1 + i / board.credentials]);
  }
  // Fisher–Yates: the kernel must not benefit from a presorted board.
  for (size_t i = items; i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.Uniform(i));
    std::swap(board.tags[i - 1], board.tags[j]);
    std::swap(board.counters[i - 1], board.counters[j]);
  }
  return board;
}

bool SameSelection(const RevoteSelection& a, const RevoteSelection& b) {
  return a.kept == b.kept && a.superseded == b.superseded &&
         a.duplicate_tag == b.duplicate_tag &&
         a.invalid_structure == b.invalid_structure && a.group_sizes == b.group_sizes;
}

struct KernelRow {
  size_t items = 0;
  size_t groups = 0;
  size_t dummy_items = 0;
  size_t padded_items = 0;
  double select_s = 0.0;
  double plan_s = 0.0;
};

// Envelope item bound: padded board <= 5T + S(S+1)/2 (revote.h).
size_t PaddedItemBound(size_t total) {
  const size_t classes = RevoteCoverClasses(total);
  return 5 * total + classes * (classes + 1) / 2;
}

// --- Part 2: full revote tallies off a file-backed ledger ------------------

// Forges the revote corpus straight onto a file-backed PublicLedger: one
// credential + registration record per voter, a counter-0 cast each, then
// floor(rate*N) counter-1 re-casts by the first credentials. No kiosk: under
// revoting, eligibility is the tag join and validity the binding proof.
struct Fixture {
  PublicLedger ledger;
  ElectionAuthority authority;
  TaggingService tagging;
  CandidateList candidates;
  size_t credentials = 0;
  size_t revotes = 0;
  double ingest_seconds = 0.0;
  uint64_t ledger_bytes = 0;

  Fixture(size_t ballots, double rate, size_t segment_entries, const std::string& dir,
          Rng& rng)
      : ledger(MakeStorage(segment_entries, dir)),
        authority(ElectionAuthority::Create(4, rng)),
        tagging(TaggingService::Create(4, rng)),
        candidates({"Alpha", "Beta", "Gamma"}) {
    revotes = static_cast<size_t>(static_cast<double>(ballots) * rate);
    credentials = ballots - revotes;
    Require(credentials > 0, "fig_revote: rate leaves no credentials");

    WallTimer timer;
    std::vector<ActivatedCredential> activated(credentials);
    for (size_t i = 0; i < credentials; ++i) {
      const std::string voter_id = "voter-" + std::to_string(i);
      ledger.AddEligibleVoter(voter_id);

      SchnorrKeyPair credential = SchnorrKeyPair::Generate(rng);
      activated[i].voter_id = voter_id;
      activated[i].credential_sk = credential.secret();
      activated[i].credential_pk = credential.public_bytes();
      activated[i].public_credential =
          ElGamalEncrypt(authority.public_key(), credential.public_point(), rng);

      RegistrationRecord record;
      record.voter_id = voter_id;
      record.public_credential = activated[i].public_credential;
      Require(ledger.PostRegistration(record).ok(), "fig_revote: registration rejected");

      Post(MakeRevoteBallot(activated[i], candidates, i % candidates.size(),
                            authority.public_key(), /*counter=*/0, rng));
    }
    for (size_t i = 0; i < revotes; ++i) {
      const size_t credential = i % credentials;
      Post(MakeRevoteBallot(activated[credential], candidates,
                            (credential + 1) % candidates.size(), authority.public_key(),
                            /*counter=*/1 + i / credentials, rng));
    }
    ingest_seconds = timer.Seconds();
  }

  void Post(const RevoteBallot& ballot) {
    Bytes payload = ballot.Serialize();
    ledger_bytes += payload.size();
    ledger.PostBallot(std::move(payload));
  }

  static LedgerStorageConfig MakeStorage(size_t segment_entries, const std::string& dir) {
    LedgerStorageConfig storage;
    storage.backend = LedgerStorageConfig::Backend::kFile;
    storage.directory = dir;
    storage.segment_entries = segment_entries;
    return storage;
  }

  const FileLedgerStore* ballot_store() const {
    return dynamic_cast<const FileLedgerStore*>(&ledger.ballot_log().store());
  }
};

struct TallyRow {
  size_t ballots = 0;
  double rate = 0.0;
  size_t credentials = 0;
  size_t accepted = 0;
  size_t padded_items = 0;
  size_t dummy_groups = 0;
  size_t dummy_items = 0;
  size_t superseded = 0;
  size_t unmatched_tag = 0;
  size_t counted = 0;
  double ingest_s = 0.0;
  double tally_s = 0.0;
  double dedup_stage_s = 0.0;
  uint64_t peak_pinned_bytes = 0;
  uint64_t segments = 0;
  uint64_t ledger_payload_bytes = 0;
  bool kept_replayed = false;
};

// Replaying the quadratic reference over the published tags/counters is
// affordable up to roughly this many padded items on one core.
constexpr size_t kKeptReplayLimit = 140000;

TallyRow RunTally(size_t ballots, double rate, const Options& options, size_t index) {
  const fs::path dir = fs::temp_directory_path() /
                       ("votegral-revote-" + std::to_string(static_cast<unsigned>(getpid())) +
                        "-" + std::to_string(index));
  fs::remove_all(dir);
  ChaChaRng rng(0x2EF07E000 + index);
  Fixture fixture(ballots, rate, options.segment_entries, dir.string(), rng);
  const FileLedgerStore* store = fixture.ballot_store();
  Require(store != nullptr, "fig_revote: expected the file backend");

  TallyRow row;
  row.ballots = ballots;
  row.rate = rate;
  row.credentials = fixture.credentials;
  row.ingest_s = fixture.ingest_seconds;
  row.ledger_payload_bytes = fixture.ledger_bytes;

  Executor executor(options.threads);
  TallyService service(fixture.authority, fixture.tagging, /*mix_pairs=*/2, executor,
                       RetryPolicy(), TallyEngine::kDataflow,
                       /*revoting=*/true, /*revote_padding=*/true);
  TallyRunMetrics metrics;
  ChaChaRng tally_rng(0x57E1ABAD);
  WallTimer timer;
  TallyOutput output = std::move(*service.Run(fixture.ledger, fixture.candidates,
                                              /*authorized_kiosks=*/{}, tally_rng, &metrics));
  row.tally_s = timer.Seconds();
  for (const TallyStageBusy& stage : metrics.stages) {
    if (stage.name == std::string("dedup")) {
      row.dedup_stage_s = stage.busy_seconds;
    }
  }

  const RevoteTranscript& rt = output.transcript.revote;
  row.accepted = rt.accepted.size();
  row.padded_items = rt.mix_input.size();
  row.dummy_groups = rt.dummies.size();
  for (const RevoteDummyGroup& group : rt.dummies) {
    row.dummy_items += group.size;
  }
  row.superseded = output.result.discards.superseded;
  row.unmatched_tag = output.result.discards.unmatched_tag;
  row.counted = output.result.counted;
  row.peak_pinned_bytes = store->PeakPinnedBytes();
  row.segments = store->SegmentCount();

  // Supersession accounting against the forged corpus and the published
  // dummy openings: every re-cast supersedes one real ballot, every dummy
  // group contributes size-1 superseded members and one unmatched tag.
  Require(row.accepted == ballots, "fig_revote: every forged ballot must be accepted");
  Require(row.counted == fixture.credentials,
          "fig_revote: every credential's last cast must count");
  size_t dummy_superseded = 0;
  for (const RevoteDummyGroup& group : rt.dummies) {
    Require(group.size >= 1, "fig_revote: empty dummy group");
    dummy_superseded += static_cast<size_t>(group.size) - 1;
  }
  Require(row.superseded == fixture.revotes + dummy_superseded,
          "fig_revote: superseded discards do not match the corpus + dummies");
  Require(row.unmatched_tag == row.dummy_groups,
          "fig_revote: each dummy group must drop as exactly one unmatched tag");
  Require(row.padded_items == row.accepted + row.dummy_items,
          "fig_revote: padded board must be accepted + dummy items");
  Require(row.padded_items <= PaddedItemBound(row.accepted),
          "fig_revote: padded board exceeds the cover envelope bound");

  // Replay the selection with the quadratic reference over the *published*
  // tags and counter points (what any auditor sees) while affordable.
  if (row.padded_items <= kKeptReplayLimit) {
    RevoteSelection fast = SelectLastPerTag(rt.tags, rt.counter_points);
    RevoteSelection reference = SelectLastPerTagQuadratic(rt.tags, rt.counter_points);
    Require(SameSelection(fast, reference),
            "fig_revote: quadratic replay diverged from the tally's selection");
    Require(fast.kept == rt.kept_indices,
            "fig_revote: published kept set differs from the replayed selection");
    row.kept_replayed = true;
  }

  fs::remove_all(dir);
  return row;
}

void Main(int argc, char** argv) {
  Options options = ParseOptions(argc, argv);

  // ---- Part 1: kernel sweep + the 10^5 differential -----------------------
  const std::vector<CompressedRistretto> counter_table =
      CounterEncodings(kRevoteCounterLimit);
  std::vector<size_t> kernel_sizes;
  for (size_t n = std::max<size_t>(options.ballots / 16, 1024); n < options.ballots;
       n *= 2) {
    kernel_sizes.push_back(n);
  }
  kernel_sizes.push_back(options.ballots);

  std::printf("Revote dedup kernel sweep (rate %.2f)...\n", options.rate);
  std::vector<KernelRow> kernel_rows;
  double quadratic_s = 0.0;
  bool differential_ok = false;
  for (size_t n : kernel_sizes) {
    ChaChaRng rng(0x2EF07E00 + static_cast<uint64_t>(n));
    KernelBoard board = MakeKernelBoard(n, options.rate, counter_table, rng);

    KernelRow row;
    row.items = n;
    WallTimer select_timer;
    RevoteSelection selection = SelectLastPerTag(board.tags, board.counters);
    row.select_s = select_timer.Seconds();
    Require(selection.kept.size() == board.credentials,
            "fig_revote: kernel selection must keep one item per credential");

    WallTimer plan_timer;
    std::vector<uint64_t> plan = RevotePaddingPlan(n, selection.group_sizes);
    row.plan_s = plan_timer.Seconds();
    for (uint64_t size : plan) {
      row.dummy_items += static_cast<size_t>(size);
    }
    row.padded_items = n + row.dummy_items;
    Require(row.padded_items <= PaddedItemBound(n),
            "fig_revote: kernel padding exceeds the cover envelope bound");
    for (const auto& [group_size, count] : selection.group_sizes) {
      row.groups += count;
    }
    kernel_rows.push_back(row);

    if (n == options.ballots) {
      // The headline differential: quadratic last-write-wins reference,
      // byte for byte, at 10^5+ items.
      std::printf("  quadratic reference at %zu items...\n", n);
      WallTimer quad_timer;
      RevoteSelection reference = SelectLastPerTagQuadratic(board.tags, board.counters);
      quadratic_s = quad_timer.Seconds();
      differential_ok = SameSelection(selection, reference);
      Require(differential_ok,
              "fig_revote: quasilinear selection diverged from the quadratic reference");
    }
  }

  TextTable kernel_table("Selection kernel + padding plan — rate " +
                         std::to_string(options.rate));
  kernel_table.SetHeader({"Items", "Groups", "Padded", "Pad ratio", "Select", "Plan"});
  for (const KernelRow& row : kernel_rows) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  static_cast<double>(row.padded_items) / static_cast<double>(row.items));
    kernel_table.AddRow({std::to_string(row.items), std::to_string(row.groups),
                         std::to_string(row.padded_items), ratio,
                         FormatSeconds(row.select_s), FormatSeconds(row.plan_s)});
  }
  std::printf("%s", kernel_table.Format().c_str());
  std::printf("Differential at %zu items: quasilinear %s vs quadratic %s — %s\n\n",
              options.ballots, FormatSeconds(kernel_rows.back().select_s).c_str(),
              FormatSeconds(quadratic_s).c_str(),
              differential_ok ? "byte-identical" : "DIVERGED");

  // ---- Part 2: full revote tallies off the file ledger --------------------
  // Sweep rate x ballots: both rates at every size but the largest (the
  // padded board is a pure function of the accepted count, so the rate-0
  // control shows cost is driven by N, not by who revoted).
  std::vector<std::pair<size_t, double>> sweep;
  for (size_t i = 0; i < options.tally_ballots.size(); ++i) {
    if (i + 1 < options.tally_ballots.size()) {
      sweep.emplace_back(options.tally_ballots[i], 0.0);
    }
    sweep.emplace_back(options.tally_ballots[i], options.rate);
  }

  std::vector<TallyRow> tally_rows;
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::printf("Full revote tally: %zu ballots at rate %.2f (%zu threads)...\n",
                sweep[i].first, sweep[i].second, options.threads);
    tally_rows.push_back(RunTally(sweep[i].first, sweep[i].second, options, i));
    const TallyRow& row = tally_rows.back();
    std::printf("  ingest %.1fs; tally %.1fs (dedup stage %.1fs); padded %zu "
                "(%zu dummy groups); peak pinned %.1f KiB over %llu segments\n",
                row.ingest_s, row.tally_s, row.dedup_stage_s, row.padded_items,
                row.dummy_groups, row.peak_pinned_bytes / 1024.0,
                static_cast<unsigned long long>(row.segments));
  }

  TextTable tally_table("Full revote tallies — file-backed ledger, dataflow engine");
  tally_table.SetHeader({"Ballots", "Rate", "Padded", "Tally (s)", "Dedup (s)",
                         "Superseded", "Pinned KiB", "Replayed"});
  for (const TallyRow& row : tally_rows) {
    char rate[16], pinned[32];
    std::snprintf(rate, sizeof(rate), "%.2f", row.rate);
    std::snprintf(pinned, sizeof(pinned), "%.1f", row.peak_pinned_bytes / 1024.0);
    tally_table.AddRow({std::to_string(row.ballots), rate, std::to_string(row.padded_items),
                        FormatSeconds(row.tally_s), FormatSeconds(row.dedup_stage_s),
                        std::to_string(row.superseded), pinned,
                        row.kept_replayed ? "quadratic" : "skipped"});
  }
  std::printf("%s\n", tally_table.Format().c_str());

  // ---- JSON ---------------------------------------------------------------
  FILE* json = std::fopen(options.out.c_str(), "w");
  Require(json != nullptr, "fig_revote: cannot write JSON output");
  std::fprintf(json,
               "{\n  \"bench\": \"revote\",\n  \"rate\": %.4f,\n"
               "  \"threads\": %zu,\n  \"segment_entries\": %zu,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"kernel_differential\": {\"items\": %zu, \"select_s\": %.6f, "
               "\"quadratic_s\": %.6f, \"identical\": %s},\n"
               "  \"kernel_sweep\": [\n",
               options.rate, options.threads, options.segment_entries,
               std::thread::hardware_concurrency(), options.ballots,
               kernel_rows.back().select_s, quadratic_s,
               differential_ok ? "true" : "false");
  for (size_t i = 0; i < kernel_rows.size(); ++i) {
    const KernelRow& row = kernel_rows[i];
    std::fprintf(json,
                 "    {\"items\": %zu, \"groups\": %zu, \"dummy_items\": %zu, "
                 "\"padded_items\": %zu, \"padded_over_items\": %.4f, "
                 "\"select_s\": %.6f, \"plan_s\": %.6f}%s\n",
                 row.items, row.groups, row.dummy_items, row.padded_items,
                 static_cast<double>(row.padded_items) / static_cast<double>(row.items),
                 row.select_s, row.plan_s, i + 1 == kernel_rows.size() ? "" : ",");
  }
  std::fprintf(json, "  ],\n  \"tally_sweep\": [\n");
  for (size_t i = 0; i < tally_rows.size(); ++i) {
    const TallyRow& row = tally_rows[i];
    std::fprintf(
        json,
        "    {\"ballots\": %zu, \"rate\": %.4f, \"credentials\": %zu, "
        "\"accepted\": %zu, \"padded_items\": %zu, \"dummy_groups\": %zu, "
        "\"dummy_items\": %zu, \"superseded\": %zu, \"unmatched_tag\": %zu, "
        "\"counted\": %zu, \"ingest_s\": %.3f, \"tally_s\": %.6f, "
        "\"dedup_stage_s\": %.6f, \"peak_pinned_bytes\": %llu, "
        "\"segments\": %llu, \"ledger_payload_bytes\": %llu, "
        "\"kept_replayed\": %s}%s\n",
        row.ballots, row.rate, row.credentials, row.accepted, row.padded_items,
        row.dummy_groups, row.dummy_items, row.superseded, row.unmatched_tag, row.counted,
        row.ingest_s, row.tally_s, row.dedup_stage_s,
        static_cast<unsigned long long>(row.peak_pinned_bytes),
        static_cast<unsigned long long>(row.segments),
        static_cast<unsigned long long>(row.ledger_payload_bytes),
        row.kept_replayed ? "true" : "false", i + 1 == tally_rows.size() ? "" : ",");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("Wrote %s\n", options.out.c_str());

  // The streaming claim under revoting: even with the padded width-3 dedup
  // mix in flight, peak pinned ledger payload stays O(one segment) — the
  // dedup pipeline works on parsed ballots, never on pinned segments.
  for (const TallyRow& row : tally_rows) {
    const double segment_payload_bytes = static_cast<double>(row.ledger_payload_bytes) /
                                         static_cast<double>(row.segments);
    const double segment_bound = (static_cast<double>(options.threads) + 2.0) *
                                 (segment_payload_bytes * 2.0 + 65536.0);
    Require(static_cast<double>(row.peak_pinned_bytes) <= segment_bound,
            "fig_revote: peak pinned bytes not O(segment)");
  }
}

}  // namespace
}  // namespace votegral

int main(int argc, char** argv) {
  votegral::Main(argc, argv);
  return 0;
}
