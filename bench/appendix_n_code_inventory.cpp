// Reproduces Appendix N ("Prototype implementation code size") for *this*
// repository: a per-module line inventory comparable to the paper's
// breakdown of its 9,182-line Go prototype (TRIP: 2,633 lines; rest of
// Votegral: 1,816; plus harnesses). Counts are computed live from the
// source tree so the table never goes stale.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/common/table.h"

namespace votegral {
namespace {

namespace fs = std::filesystem;

struct Counts {
  size_t files = 0;
  size_t lines = 0;
  size_t code_lines = 0;  // non-blank, non-pure-comment
};

Counts CountDir(const fs::path& dir) {
  Counts counts;
  if (!fs::exists(dir)) {
    return counts;
  }
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    auto ext = entry.path().extension();
    if (ext != ".cpp" && ext != ".h") {
      continue;
    }
    ++counts.files;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      ++counts.lines;
      size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos) {
        continue;  // blank
      }
      if (line.compare(first, 2, "//") == 0) {
        continue;  // comment-only
      }
      ++counts.code_lines;
    }
  }
  return counts;
}

fs::path FindRepoRoot() {
  // Walk up from the CWD until DESIGN.md is found (benches run from the
  // build tree or the repo root).
  fs::path current = fs::current_path();
  for (int i = 0; i < 6; ++i) {
    if (fs::exists(current / "DESIGN.md") && fs::exists(current / "src")) {
      return current;
    }
    current = current.parent_path();
  }
  return fs::current_path();
}

}  // namespace
}  // namespace votegral

int main() {
  using namespace votegral;
  fs::path root = FindRepoRoot();
  std::printf("=== Appendix N analogue: repository code inventory ===\n");
  std::printf("(paper's prototype: 9,182 lines of Go total; TRIP 2,633)\n\n");

  const std::vector<std::pair<std::string, fs::path>> modules = {
      {"common utilities", root / "src/common"},
      {"crypto (ristretto, sigs, ElGamal, DLEQ, DKG, modp)", root / "src/crypto"},
      {"tamper-evident ledger", root / "src/ledger"},
      {"peripheral models (QR, printer, scanner)", root / "src/peripherals"},
      {"TRIP registration protocol", root / "src/trip"},
      {"Votegral pipeline (mix, tag, tally, verify, ext.)", root / "src/votegral"},
      {"baselines (Civitas, SwissPost, VoteAgain)", root / "src/baselines"},
      {"experiment harness cores", root / "src/sim"},
      {"tests", root / "tests"},
      {"benchmarks", root / "bench"},
      {"examples", root / "examples"},
  };

  TextTable table("Lines by module");
  table.SetHeader({"Module", "Files", "Lines", "Code lines"});
  Counts total;
  for (const auto& [name, dir] : modules) {
    Counts c = CountDir(dir);
    table.AddRow({name, std::to_string(c.files), std::to_string(c.lines),
                  std::to_string(c.code_lines)});
    total.files += c.files;
    total.lines += c.lines;
    total.code_lines += c.code_lines;
  }
  table.AddRow({"TOTAL", std::to_string(total.files), std::to_string(total.lines),
                std::to_string(total.code_lines)});
  std::printf("%s\n", table.Format().c_str());
  std::printf("CSV:\n%s", table.Csv().c_str());
  return 0;
}
