// Reproduces the quantitative security consequences of the §7.5 usability
// study: with per-voter malicious-kiosk detection probabilities measured on
// 150 participants (47% with security education, 10% without), a compromised
// kiosk's survival probability collapses exponentially in the number of
// voters — under 1% after 50 voters at p=0.10, and ~1/2^152 after 1000.
//
// Both the closed form (1-p)^N and a Monte-Carlo campaign through the actual
// CredentialStealingKiosk voter-observation model are reported.
#include <cstdio>

#include "src/common/table.h"
#include "src/crypto/drbg.h"
#include "src/sim/usability.h"
#include "src/trip/attacks.h"

namespace votegral {
namespace {

void Run() {
  std::printf("=== Section 7.5: usability-derived malicious-kiosk detection ===\n\n");
  std::printf("Study inputs (from the paper's 150-participant user study):\n");
  std::printf("  registration success rate: 83%% | SUS score: 70.4 (human-subject\n");
  std::printf("  results; not reproducible computationally — see EXPERIMENTS.md)\n");
  std::printf("  detection of a misbehaving kiosk: %.0f%% with security education,\n",
              VoterBehavior::kDetectWithEducation * 100);
  std::printf("  %.0f%% without.\n\n", VoterBehavior::kDetectWithoutEducation * 100);

  TextTable table("Kiosk survival probability (1-p)^N");
  table.SetHeader({"Voters N", "p=0.10 survival", "log2", "p=0.47 survival", "log2"});
  for (size_t n : {1u, 10u, 50u, 100u, 500u, 1000u}) {
    table.AddRow({std::to_string(n),
                  FormatDouble(KioskSurvivalProbability(0.10, n), 6),
                  FormatDouble(KioskSurvivalLog2(0.10, n), 1),
                  FormatDouble(KioskSurvivalProbability(0.47, n), 6),
                  FormatDouble(KioskSurvivalLog2(0.47, n), 1)});
  }
  std::printf("%s\n", table.Format().c_str());

  double p50 = KioskSurvivalProbability(0.10, 50);
  double log2_1000 = KioskSurvivalLog2(0.10, 1000);
  std::printf("Paper claims vs computed:\n");
  std::printf("  'tricking 50 voters without detection is under 1%%': %.3f%% -> %s\n",
              100 * p50, p50 < 0.01 ? "HOLDS" : "FAILS");
  std::printf("  'for 1000 voters, ~1/2^152': 2^%.1f -> %s\n", log2_1000,
              (log2_1000 < -150 && log2_1000 > -156) ? "HOLDS" : "FAILS");

  // Monte-Carlo through the actual attack model (uneducated population).
  ChaChaRng rng(0x7575);
  TextTable mc("Monte-Carlo campaign (10000 trials, voter-observation model)");
  mc.SetHeader({"Voters", "Educated", "Simulated survival", "Closed form"});
  for (size_t n : {10u, 50u}) {
    for (double educated : {0.0, 1.0}) {
      double p = educated > 0.5 ? 0.47 : 0.10;
      double simulated = SimulateKioskCampaign(10000, n, educated, rng);
      mc.AddRow({std::to_string(n), educated > 0.5 ? "yes" : "no",
                 FormatDouble(simulated, 4), FormatDouble(KioskSurvivalProbability(p, n), 4)});
    }
  }
  std::printf("\n%s", mc.Format().c_str());
  std::printf("\nExpected voters until first detection: %.1f (p=0.10), %.1f (p=0.47)\n",
              ExpectedVotersUntilDetection(0.10), ExpectedVotersUntilDetection(0.47));
}

}  // namespace
}  // namespace votegral

int main() {
  votegral::Run();
  return 0;
}
