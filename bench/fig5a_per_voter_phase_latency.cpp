// Reproduces Fig. 5a: per-voter wall-clock latency of the Registration,
// Voting and Tally phases for SwissPost, VoteAgain, TRIP-Core and Civitas,
// from 10^2 to 10^6 voters.
//
// Methodology (DESIGN.md §3): every system's cryptographic path runs for
// real at sizes feasible on this machine; larger sizes are extrapolated
// along each phase's complexity and flagged with '*' — the paper itself
// extrapolates Civitas beyond 10^4. Absolute numbers differ from the paper's
// (different hardware and implementation language); the reproduced *shape*
// is the per-phase ordering and the growth laws.
#include <cstdio>
#include <memory>

#include "src/baselines/civitas.h"
#include "src/baselines/swisspost.h"
#include "src/baselines/voteagain.h"
#include "src/baselines/votegral_model.h"
#include "src/common/table.h"
#include "src/crypto/drbg.h"
#include "src/sim/pipeline.h"

namespace votegral {
namespace {

struct SystemPlan {
  std::unique_ptr<VotingSystemModel> model;
  std::vector<size_t> sizes;
  size_t max_measured;
};

void RunFig5a() {
  const bool full = std::getenv("VOTEGRAL_BENCH_FULL") != nullptr;
  const std::vector<size_t> display_sizes = {100, 1000, 10000, 100000, 1000000};

  std::vector<SystemPlan> plans;
  plans.push_back({std::make_unique<SwissPostModel>(), display_sizes,
                   full ? size_t{1000} : size_t{100}});
  plans.push_back({std::make_unique<VoteAgainModel>(), display_sizes,
                   full ? size_t{2000} : size_t{100}});
  plans.push_back({std::make_unique<VotegralModel>(), display_sizes,
                   full ? size_t{1000} : size_t{100}});
  // Civitas' quadratic tally forces a small measured anchor (the paper
  // extrapolates beyond 10^4 on a 128-core testbed; we anchor at 24).
  std::vector<size_t> civitas_sizes = {24};
  civitas_sizes.insert(civitas_sizes.end(), display_sizes.begin(), display_sizes.end());
  plans.push_back({std::make_unique<CivitasModel>(), civitas_sizes, size_t{24}});

  TextTable table("Fig. 5a — Per-voter wall-clock latency by phase ('*' = extrapolated)");
  table.SetHeader({"Voters", "System", "Registration/voter", "Voting/voter", "Tally/voter"});

  std::map<size_t, std::map<std::string, ScalingRow>> by_size;
  for (SystemPlan& plan : plans) {
    ChaChaRng rng(0x516A);
    auto rows = SweepSystem(*plan.model, plan.sizes, plan.max_measured, rng);
    for (const ScalingRow& row : rows) {
      by_size[row.voters][plan.model->name()] = row;
    }
  }
  for (size_t n : display_sizes) {
    for (const char* system : {"SwissPost", "VoteAgain", "TRIP-Core", "Civitas"}) {
      auto it = by_size[n].find(system);
      if (it == by_size[n].end()) {
        continue;
      }
      const ScalingRow& row = it->second;
      const char* star = row.extrapolated ? "*" : "";
      table.AddRow({std::to_string(n), system,
                    FormatSeconds(row.registration_per_voter) + star,
                    FormatSeconds(row.voting_per_voter) + star,
                    FormatSeconds(row.tally_total / static_cast<double>(n)) + star});
    }
  }
  std::printf("%s\n", table.Format().c_str());

  // Shape checks mirroring §7.3/§7.4 at the 10^6 column.
  const auto& million = by_size[1000000];
  double reg_trip = million.at("TRIP-Core").registration_per_voter;
  double reg_sp = million.at("SwissPost").registration_per_voter;
  double reg_va = million.at("VoteAgain").registration_per_voter;
  double reg_civ = million.at("Civitas").registration_per_voter;
  std::printf("Registration shape (paper: VoteAgain < TRIP < SwissPost << Civitas):\n");
  std::printf("  VoteAgain %.3f ms | TRIP-Core %.3f ms | SwissPost %.3f ms | Civitas %.1f ms\n",
              reg_va * 1e3, reg_trip * 1e3, reg_sp * 1e3, reg_civ * 1e3);
  std::printf("  TRIP vs Civitas factor: %.0fx (paper: ~2 orders of magnitude)\n",
              reg_civ / reg_trip);
  std::printf("  TRIP vs SwissPost: %.1fx faster (paper: ~1 order)\n", reg_sp / reg_trip);
  std::printf("  TRIP vs VoteAgain: %.1fx slower (paper: ~1 order)\n\n", reg_trip / reg_va);
  double vote_trip = million.at("TRIP-Core").voting_per_voter;
  std::printf("Voting shape (paper: TRIP ~1ms < SwissPost ~ VoteAgain ~10ms << Civitas):\n");
  std::printf("  TRIP-Core %.2f ms | SwissPost %.2f ms | VoteAgain %.2f ms | Civitas %.2f ms\n",
              vote_trip * 1e3, million.at("SwissPost").voting_per_voter * 1e3,
              million.at("VoteAgain").voting_per_voter * 1e3,
              million.at("Civitas").voting_per_voter * 1e3);
  std::printf("\nCSV:\n%s", table.Csv().c_str());
}

}  // namespace
}  // namespace votegral

int main() {
  votegral::RunFig5a();
  return 0;
}
