// Offline audit: universal verifiability without ever touching the live
// system. The election happens on one "machine"; the public ledger is
// written to a file; an auditor loads that file elsewhere (integrity is
// re-verified hash-by-hash on load) and re-checks the entire tally —
// mixing, tagging, decryption proofs, the tag join and the counts — from
// public data and the published transcript alone.
//
//   $ ./offline_audit
#include <cstdio>

#include "src/crypto/drbg.h"
#include "src/ledger/persistence.h"
#include "src/votegral/election.h"

using namespace votegral;

int main() {
  ChaChaRng rng(777);

  // --- Election side ---------------------------------------------------
  ElectionConfig config;
  for (int i = 0; i < 12; ++i) {
    config.roster.push_back("voter-" + std::to_string(i));
  }
  config.candidates = {"Option Alpha", "Option Beta"};
  Election election(config, rng);
  Vsd vsd = election.trip().MakeVsd();
  for (int i = 0; i < 12; ++i) {
    auto voter = election.Register(config.roster[static_cast<size_t>(i)], 1, vsd, rng);
    if (!voter.ok()) {
      std::printf("registration failed: %s\n", voter.status.reason().c_str());
      return 1;
    }
    (void)election.Cast(voter->activated[0], i % 3 == 0 ? "Option Beta" : "Option Alpha",
                        rng);
    (void)election.Cast(voter->activated[1], "Option Beta", rng);  // decoys
  }
  TallyOutput output = election.Tally(rng);
  std::printf("Published result: Alpha=%zu Beta=%zu (counted=%zu, fakes discarded=%zu)\n",
              output.result.counts.at("Option Alpha"),
              output.result.counts.at("Option Beta"), output.result.counted,
              output.result.discards.unmatched_tag);

  const std::string path = "/tmp/votegral_offline_audit.ledger";
  if (Status s = SavePublicLedger(election.ledger(), path); !s.ok()) {
    std::printf("save failed: %s\n", s.reason().c_str());
    return 1;
  }
  std::printf("Ledger written to %s\n\n", path.c_str());

  // --- Auditor side ------------------------------------------------------
  auto restored = LoadPublicLedger(path);
  if (!restored.ok()) {
    std::printf("auditor: load failed: %s\n", restored.status.reason().c_str());
    return 1;
  }
  std::printf("Auditor loaded ledger: %zu registrations, %zu ballots, chains intact\n",
              restored->ActiveRegistrations().size(), restored->AllBallots().size());

  Status verdict = VerifyElection(*restored, election.verifier_params(),
                                  election.candidates(), output);
  std::printf("Auditor verdict: %s\n", verdict.ok() ? "ELECTION VERIFIES" :
                                                      verdict.reason().c_str());

  // Demonstrate tamper-evidence at rest: flip one byte of the file.
  {
    Bytes bytes = SerializePublicLedger(election.ledger());
    bytes[bytes.size() / 2] ^= 1;
    auto tampered = ParsePublicLedger(bytes);
    std::printf("Tampered file rejected on load: %s\n",
                tampered.ok() ? "NO (bad!)" : tampered.status.reason().c_str());
  }
  std::remove(path.c_str());
  return verdict.ok() ? 0 : 1;
}
