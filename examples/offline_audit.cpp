// Offline audit: universal verifiability without ever touching the live
// system — now against the file-backed segmented ledger.
//
// The election runs with its public ledger on disk (fixed-size sealed
// segments, hash-chained entries, incremental Merkle commitments), so the
// tally streams ballots off segments instead of holding the log in RAM.
// The auditor then re-checks the entire tally two independent ways:
//   1. by recovering the segment directory itself (crash-safe open:
//      per-segment hash re-verification, derived indices rebuilt), and
//   2. by downloading a serialized snapshot and importing it (every entry
//      frame re-hashed and compared on load).
// Either path ends in the same universal verification of the published
// transcript — mixing, tagging, decryption proofs, the tag join and the
// counts — from public data alone.
//
//   $ ./offline_audit
#include <cstdio>
#include <filesystem>

#include "src/crypto/drbg.h"
#include "src/ledger/persistence.h"
#include "src/votegral/election.h"

using namespace votegral;

int main() {
  ChaChaRng rng(777);
  const std::string ledger_dir = "/tmp/votegral_offline_audit.ledgerd";
  std::filesystem::remove_all(ledger_dir);

  // --- Election side, on a segmented on-disk ledger ----------------------
  ElectionConfig config;
  for (int i = 0; i < 12; ++i) {
    config.roster.push_back("voter-" + std::to_string(i));
  }
  config.candidates = {"Option Alpha", "Option Beta"};
  config.storage.backend = LedgerStorageConfig::Backend::kFile;
  config.storage.directory = ledger_dir;
  config.storage.segment_entries = 16;  // small segments so the demo seals a few
  Election election(config, rng);
  Vsd vsd = election.trip().MakeVsd();
  for (int i = 0; i < 12; ++i) {
    auto voter = election.Register(config.roster[static_cast<size_t>(i)], 1, vsd, rng);
    if (!voter.ok()) {
      std::printf("registration failed: %s\n", voter.status.reason().c_str());
      return 1;
    }
    (void)election.Cast(voter->activated[0], i % 3 == 0 ? "Option Beta" : "Option Alpha",
                        rng);
    (void)election.Cast(voter->activated[1], "Option Beta", rng);  // decoys
  }
  TallyOutput output = election.Tally(rng);
  std::printf("Published result: Alpha=%zu Beta=%zu (counted=%zu, fakes discarded=%zu)\n",
              output.result.counts.at("Option Alpha"),
              output.result.counts.at("Option Beta"), output.result.counted,
              output.result.discards.unmatched_tag);
  std::printf("Ledger lives in %s (%llu ballot-log segments, backend \"%s\")\n",
              ledger_dir.c_str(),
              static_cast<unsigned long long>(
                  election.ledger().ballot_log().store().SegmentCount()),
              election.ledger().ballot_log().store().Describe().c_str());

  // --- Auditor path 1: recover the segment directory directly ------------
  {
    auto recovered = PublicLedger::Open(config.storage);
    if (!recovered.ok()) {
      std::printf("auditor: segment recovery failed: %s\n",
                  recovered.status.reason().c_str());
      return 1;
    }
    Status verdict = VerifyElection(*recovered, election.verifier_params(),
                                    election.candidates(), output);
    std::printf("Auditor (segment recovery): %s\n",
                verdict.ok() ? "ELECTION VERIFIES" : verdict.reason().c_str());
    if (!verdict.ok()) {
      return 1;
    }
  }

  // --- Auditor path 2: serialized snapshot download -----------------------
  const std::string snapshot = "/tmp/votegral_offline_audit.ledger";
  if (Status s = SavePublicLedger(election.ledger(), snapshot); !s.ok()) {
    std::printf("save failed: %s\n", s.reason().c_str());
    return 1;
  }
  auto restored = LoadPublicLedger(snapshot);
  if (!restored.ok()) {
    std::printf("auditor: load failed: %s\n", restored.status.reason().c_str());
    return 1;
  }
  std::printf("Auditor loaded snapshot: %zu registrations, %zu ballots, chains intact\n",
              restored->ActiveRegistrations().size(), restored->AllBallots().size());
  Status verdict = VerifyElection(*restored, election.verifier_params(),
                                  election.candidates(), output);
  std::printf("Auditor (snapshot): %s\n", verdict.ok() ? "ELECTION VERIFIES" :
                                                         verdict.reason().c_str());

  // Demonstrate tamper-evidence at rest: flip one byte of the snapshot.
  {
    Bytes bytes = SerializePublicLedger(election.ledger());
    bytes[bytes.size() / 2] ^= 1;
    auto tampered = ParsePublicLedger(bytes);
    std::printf("Tampered snapshot rejected on load: %s\n",
                tampered.ok() ? "NO (bad!)" : tampered.status.reason().c_str());
  }
  std::remove(snapshot.c_str());
  std::filesystem::remove_all(ledger_dir);
  return verdict.ok() ? 0 : 1;
}
