// Coercion scenario walk-through (the paper's Fig. 3 story).
//
// Alice is coerced: the coercer demands a credential and watches her vote.
// She hands over a *fake* credential and complies under observation; later,
// in private, she casts her true vote with the real one. The tally counts
// only her real vote, and nothing the coercer can see — the credential, its
// proof transcript, the ledger, or the results — reveals the deception.
//
//   $ ./coerced_voter
#include <cstdio>

#include "src/crypto/drbg.h"
#include "src/votegral/election.h"

using namespace votegral;

int main() {
  Rng& rng = SystemRng();

  ElectionConfig config;
  config.roster = {"alice", "bob", "carol", "dave"};
  config.candidates = {"Reform Party", "Coercer's Party"};
  Election election(config, rng);

  // Honest background voters (their behavior gives Alice statistical cover).
  Vsd bob_device = election.trip().MakeVsd();
  Vsd carol_device = election.trip().MakeVsd();
  Vsd dave_device = election.trip().MakeVsd();
  auto bob = election.Register("bob", 1, bob_device, rng);
  auto carol = election.Register("carol", 2, carol_device, rng);
  auto dave = election.Register("dave", 0, dave_device, rng);
  if (!bob.ok() || !carol.ok() || !dave.ok()) {
    std::printf("background registration failed\n");
    return 1;
  }
  (void)election.Cast(bob->activated[0], "Reform Party", rng);
  (void)election.Cast(carol->activated[0], "Coercer's Party", rng);
  // Dave abstains.

  // Alice registers; she expects coercion, so she makes an extra fake.
  Vsd alice_device = election.trip().MakeVsd();
  auto alice = election.Register("alice", 2, alice_device, rng);
  if (!alice.ok()) {
    std::printf("alice registration failed: %s\n", alice.status.reason().c_str());
    return 1;
  }
  std::printf("Alice holds 3 paper credentials; only she knows '%s' is real.\n",
              alice->paper.real.voter_marking.c_str());

  // The coercer takes one credential ("give me your voting credential!").
  const ActivatedCredential& surrendered = alice->activated[1];  // a fake
  std::printf("Coercer receives a credential and checks it:\n");
  std::printf("  - ledger has a registration record for alice: %s\n",
              election.ledger().ActiveRegistration("alice") ? "yes" : "no");
  std::printf("  - its c_pc matches the credential's printed c_pc: %s\n",
              election.ledger().ActiveRegistration("alice")->public_credential ==
                      surrendered.public_credential
                  ? "yes"
                  : "no");
  std::printf("  - proof transcript on the receipt is structurally valid: yes (by design)\n");
  std::printf("The coercer cannot do better: real and fake transcripts are\n");
  std::printf("indistinguishable outside the booth (Section 4.3).\n\n");

  // Coercer votes with the surrendered credential, watching Alice's screen.
  (void)election.Cast(surrendered, "Coercer's Party", rng);
  std::printf("Coercer casts 'Coercer's Party' with the surrendered credential.\n");

  // Later, privately, Alice votes her conscience with the real credential.
  (void)election.Cast(alice->activated[0], "Reform Party", rng);
  std::printf("Alice privately casts 'Reform Party' with her real credential.\n\n");

  TallyOutput output = election.Tally(rng);
  std::printf("Final tally:\n");
  for (const auto& [candidate, count] : output.result.counts) {
    std::printf("  %-16s %zu\n", candidate.c_str(), count);
  }
  std::printf("(ballots silently discarded as fake: %zu — the coercer cannot tell\n",
              output.result.discards.unmatched_tag);
  std::printf(" which discarded ballot was theirs, or whether any was)\n\n");

  Status verified = election.Verify(output);
  std::printf("Universal verification: %s\n", verified.ok() ? "PASS" : "FAIL");
  bool alice_counted = output.result.counts.at("Reform Party") == 2;  // bob + alice
  std::printf("Alice's true vote counted: %s\n", alice_counted ? "yes" : "NO");
  return verified.ok() && alice_counted ? 0 : 1;
}
