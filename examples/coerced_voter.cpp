// Coercion scenario walk-through (the paper's Fig. 3 story).
//
// Act 1 — fake credentials: Alice is coerced: the coercer demands a
// credential and watches her vote. She hands over a *fake* credential and
// complies under observation; later, in private, she casts her true vote
// with the real one. The tally counts only her real vote, and nothing the
// coercer can see — the credential, its proof transcript, the ledger, or
// the results — reveals the deception.
//
// Act 2 — deniable revoting (docs/REVOTING.md): a second election runs with
// ElectionConfig::revoting. This time the coercer is stronger — Alice must
// surrender her REAL credential. The coercer votes with it at a counter of
// their choosing; Alice privately casts once more with a higher counter and
// her ballot supersedes. Cover-traffic padding lifts the board's revealed
// group-size multiset to a pure function of the ballot count, so the
// coercer cannot even see THAT someone revoted.
//
//   $ ./coerced_voter
#include <cstdio>

#include "src/crypto/drbg.h"
#include "src/votegral/election.h"

using namespace votegral;

int main() {
  Rng& rng = SystemRng();

  ElectionConfig config;
  config.roster = {"alice", "bob", "carol", "dave"};
  config.candidates = {"Reform Party", "Coercer's Party"};
  Election election(config, rng);

  // Honest background voters (their behavior gives Alice statistical cover).
  Vsd bob_device = election.trip().MakeVsd();
  Vsd carol_device = election.trip().MakeVsd();
  Vsd dave_device = election.trip().MakeVsd();
  auto bob = election.Register("bob", 1, bob_device, rng);
  auto carol = election.Register("carol", 2, carol_device, rng);
  auto dave = election.Register("dave", 0, dave_device, rng);
  if (!bob.ok() || !carol.ok() || !dave.ok()) {
    std::printf("background registration failed\n");
    return 1;
  }
  (void)election.Cast(bob->activated[0], "Reform Party", rng);
  (void)election.Cast(carol->activated[0], "Coercer's Party", rng);
  // Dave abstains.

  // Alice registers; she expects coercion, so she makes an extra fake.
  Vsd alice_device = election.trip().MakeVsd();
  auto alice = election.Register("alice", 2, alice_device, rng);
  if (!alice.ok()) {
    std::printf("alice registration failed: %s\n", alice.status.reason().c_str());
    return 1;
  }
  std::printf("Alice holds 3 paper credentials; only she knows '%s' is real.\n",
              alice->paper.real.voter_marking.c_str());

  // The coercer takes one credential ("give me your voting credential!").
  const ActivatedCredential& surrendered = alice->activated[1];  // a fake
  std::printf("Coercer receives a credential and checks it:\n");
  std::printf("  - ledger has a registration record for alice: %s\n",
              election.ledger().ActiveRegistration("alice") ? "yes" : "no");
  std::printf("  - its c_pc matches the credential's printed c_pc: %s\n",
              election.ledger().ActiveRegistration("alice")->public_credential ==
                      surrendered.public_credential
                  ? "yes"
                  : "no");
  std::printf("  - proof transcript on the receipt is structurally valid: yes (by design)\n");
  std::printf("The coercer cannot do better: real and fake transcripts are\n");
  std::printf("indistinguishable outside the booth (Section 4.3).\n\n");

  // Coercer votes with the surrendered credential, watching Alice's screen.
  (void)election.Cast(surrendered, "Coercer's Party", rng);
  std::printf("Coercer casts 'Coercer's Party' with the surrendered credential.\n");

  // Later, privately, Alice votes her conscience with the real credential.
  (void)election.Cast(alice->activated[0], "Reform Party", rng);
  std::printf("Alice privately casts 'Reform Party' with her real credential.\n\n");

  TallyOutput output = election.Tally(rng);
  std::printf("Final tally:\n");
  for (const auto& [candidate, count] : output.result.counts) {
    std::printf("  %-16s %zu\n", candidate.c_str(), count);
  }
  std::printf("(ballots silently discarded as fake: %zu — the coercer cannot tell\n",
              output.result.discards.unmatched_tag);
  std::printf(" which discarded ballot was theirs, or whether any was)\n\n");

  Status verified = election.Verify(output);
  std::printf("Universal verification: %s\n", verified.ok() ? "PASS" : "FAIL");
  bool alice_counted = output.result.counts.at("Reform Party") == 2;  // bob + alice
  std::printf("Alice's true vote counted: %s\n\n", alice_counted ? "yes" : "NO");
  if (!verified.ok() || !alice_counted) {
    return 1;
  }

  // ---- Act 2: the coercer demands the REAL credential -----------------------
  std::printf("=== Act 2: deniable revoting ===\n");
  ElectionConfig revote_config;
  revote_config.roster = {"alice", "bob"};
  revote_config.candidates = {"Reform Party", "Coercer's Party"};
  revote_config.revoting = true;
  Election revote_election(revote_config, rng);
  Vsd alice2_device = revote_election.trip().MakeVsd();
  Vsd bob2_device = revote_election.trip().MakeVsd();
  auto alice2 = revote_election.Register("alice", 1, alice2_device, rng);
  auto bob2 = revote_election.Register("bob", 1, bob2_device, rng);
  if (!alice2.ok() || !bob2.ok()) {
    std::printf("revote registration failed\n");
    return 1;
  }
  // This coercer knows about fakes and demands proof-of-real (say, watching
  // the activation). Alice surrenders the real credential.
  std::printf("Alice surrenders her REAL credential.\n");
  (void)revote_election.CastRevote(alice2->activated[0], "Coercer's Party", 0, rng);
  std::printf("Coercer casts 'Coercer's Party' with it (cast counter 0).\n");
  // Privately, Alice outbids the surrendered counter.
  (void)revote_election.CastRevote(alice2->activated[0], "Reform Party", 1, rng);
  std::printf("Alice privately revotes 'Reform Party' (cast counter 1).\n");
  (void)revote_election.Cast(bob2->activated[0], "Reform Party", rng);

  TallyOutput revote_output = revote_election.Tally(rng);
  std::printf("Final tally:\n");
  for (const auto& [candidate, count] : revote_output.result.counts) {
    std::printf("  %-16s %zu\n", candidate.c_str(), count);
  }
  std::printf("(superseded ballots: %zu — cover-traffic dummies revote too, so the\n",
              revote_output.result.discards.superseded);
  std::printf(" count does not reveal whether ALICE did; the padded board's group\n");
  std::printf(" sizes are a pure function of the ballot count)\n");
  Status revote_verified = revote_election.Verify(revote_output);
  std::printf("Universal verification: %s\n", revote_verified.ok() ? "PASS" : "FAIL");
  bool revote_counted = revote_output.result.counts.at("Reform Party") == 2;
  std::printf("Alice's revote counted over the coercer's: %s\n",
              revote_counted ? "yes" : "NO");
  return revote_verified.ok() && revote_counted ? 0 : 1;
}
