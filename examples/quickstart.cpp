// Quickstart: the smallest complete Votegral election.
//
// One voter registers in person with TRIP (receiving one real and one fake
// paper credential), activates both on her device, votes with the real one,
// and the election tallies and verifies end-to-end.
//
//   $ ./quickstart
#include <cstdio>

#include "src/crypto/drbg.h"
#include "src/votegral/election.h"

using namespace votegral;

int main() {
  Rng& rng = SystemRng();

  // 1. Election setup: 4-member authority, 4 tagging talliers, 4 shufflers.
  ElectionConfig config;
  config.roster = {"alice"};
  config.candidates = {"Proposal YES", "Proposal NO"};
  // Serial escape hatch: one voter doesn't need the work pool, and the
  // transcript (and so this program's output) is identical at any thread
  // count — the parallel pipeline is byte-reproducible by construction.
  config.threads = 1;
  Election election(config, rng);
  std::printf("Setup: authority of %zu members, %zu envelopes committed on-ledger\n",
              election.trip().authority().size(),
              election.ledger().envelope_commitment_count());

  // 2. In-person registration: 1 real + 1 fake credential; activation on
  //    Alice's device runs every Fig. 11 check.
  Vsd device = election.trip().MakeVsd();
  auto alice = election.Register("alice", /*fake_count=*/1, device, rng);
  if (!alice.ok()) {
    std::printf("registration failed: %s\n", alice.status.reason().c_str());
    return 1;
  }
  std::printf("Registered alice: real credential marked '%s', fake marked '%s'\n",
              alice->paper.real.voter_marking.c_str(),
              alice->paper.fakes[0].voter_marking.c_str());
  std::printf("Both activated: %zu credentials on device (indistinguishable to anyone\n"
              "but alice — same ledger record, same check-out ticket)\n",
              device.credentials().size());

  // 3. Voting: the real credential carries her true choice; the fake one can
  //    be handed to a coercer — its votes silently never count.
  Status cast = election.Cast(alice->activated[0], "Proposal YES", rng);
  if (!cast.ok()) {
    std::printf("cast failed: %s\n", cast.reason().c_str());
    return 1;
  }
  std::printf("Ballot cast with the real credential\n");

  // 4. Tally: mix, tag, filter, decrypt — all verifiably.
  TallyOutput output = election.Tally(rng);
  std::printf("\nResults:\n");
  for (const auto& [candidate, count] : output.result.counts) {
    std::printf("  %-14s %zu\n", candidate.c_str(), count);
  }
  std::printf("counted=%zu, fake/unmatched discarded=%zu\n", output.result.counted,
              output.result.discards.unmatched_tag);

  // 5. Universal verification from public data only.
  Status verified = election.Verify(output);
  std::printf("\nUniversal verification: %s\n",
              verified.ok() ? "PASS" : verified.reason().c_str());
  return verified.ok() ? 0 : 1;
}
