// A realistic small election: 60 voters with heterogeneous behavior
// (fake-credential distribution D_c, vote distribution D_v, re-voting,
// abstention, some coerced voters), followed by the full verifiable tally
// and a public audit — the end-to-end pipeline of Fig. 3 at population
// scale.
//
//   $ ./election_night
#include <cstdio>
#include <vector>

#include "src/crypto/drbg.h"
#include "src/votegral/election.h"

using namespace votegral;

int main() {
  ChaChaRng rng(20260610);  // deterministic for a reproducible demo

  const size_t kVoters = 60;
  ElectionConfig config;
  for (size_t i = 0; i < kVoters; ++i) {
    config.roster.push_back("voter-" + std::to_string(i));
  }
  config.candidates = {"North Bridge", "South Tunnel", "No Project"};
  Election election(config, rng);

  std::printf("=== Registration week ===\n");
  Vsd shared_device = election.trip().MakeVsd();  // voters' devices, modeled jointly
  std::vector<RegisteredVoter> voters;
  size_t total_fakes = 0;
  for (size_t i = 0; i < kVoters; ++i) {
    // D_c: most voters make 0-2 fakes; a few cautious ones make 3.
    size_t fakes = rng.Uniform(100) < 25   ? 0
                   : rng.Uniform(100) < 60 ? 1
                   : rng.Uniform(100) < 80 ? 2
                                           : 3;
    auto voter = election.Register(config.roster[i], fakes, shared_device, rng);
    if (!voter.ok()) {
      std::printf("registration failed for %s: %s\n", config.roster[i].c_str(),
                  voter.status.reason().c_str());
      return 1;
    }
    total_fakes += fakes;
    voters.push_back(std::move(*voter));
  }
  std::printf("%zu voters registered, %zu fake credentials created in total\n", kVoters,
              total_fakes);
  std::printf("envelope challenges revealed on L_E: %zu (aggregate only — this is all\n",
              election.ledger().revealed_challenge_count());
  std::printf("a coercer learns about everyone's fake-credential count)\n\n");

  std::printf("=== Election day ===\n");
  size_t cast = 0;
  size_t decoy = 0;
  size_t revotes = 0;
  for (size_t i = 0; i < kVoters; ++i) {
    // D_v over candidates; 10% abstain.
    if (rng.Uniform(10) == 0) {
      continue;
    }
    const char* choice = rng.Uniform(10) < 5   ? "North Bridge"
                         : rng.Uniform(10) < 7 ? "South Tunnel"
                                               : "No Project";
    (void)election.Cast(voters[i].activated[0], choice, rng);
    ++cast;
    // Some voters change their mind and re-vote (last ballot counts).
    if (rng.Uniform(10) == 0) {
      (void)election.Cast(voters[i].activated[0], "No Project", rng);
      ++revotes;
    }
    // Coerced voters also cast decoys with fake credentials.
    if (voters[i].activated.size() > 1 && rng.Uniform(4) == 0) {
      (void)election.Cast(voters[i].activated[1], "South Tunnel", rng);
      ++decoy;
    }
  }
  std::printf("%zu real ballots (+%zu re-votes), %zu decoy ballots via fakes\n\n", cast,
              revotes, decoy);

  std::printf("=== Tally night ===\n");
  TallyOutput output = election.Tally(rng);
  for (const auto& [candidate, count] : output.result.counts) {
    std::printf("  %-14s %zu\n", candidate.c_str(), count);
  }
  const TallyDiscards& d = output.result.discards;
  std::printf("counted=%zu | superseded re-votes=%zu | fake/unmatched=%zu | bad sigs=%zu\n\n",
              output.result.counted, d.superseded, d.unmatched_tag, d.invalid_signature);

  std::printf("=== Public audit ===\n");
  Status ledger_ok = election.ledger().VerifyChains();
  Status verified = election.Verify(output);
  std::printf("ledger hash chains: %s\n", ledger_ok.ok() ? "intact" : "TAMPERED");
  std::printf("mix + tagging + decryption proofs, join, counts: %s\n",
              verified.ok() ? "ALL VERIFIED" : verified.reason().c_str());
  bool counts_sane = output.result.counted == cast;
  std::printf("every non-superseded real ballot counted: %s\n", counts_sane ? "yes" : "NO");
  return (ledger_ok.ok() && verified.ok() && counts_sane) ? 0 : 1;
}
