// Security drill: a compromised kiosk tries to steal a voter's real
// credential by inverting the printing order (envelope before commit) and
// simulating the "realness" proof over a credential that actually encrypts
// the attacker's key (§5.1 integrity adversary; §7.5 detection study).
//
// The drill shows all three layers of TRIP's defense:
//   1. the stolen credential passes every cryptographic activation check —
//      transcripts alone cannot expose the theft (that's by design),
//   2. a process-trained voter notices the inverted step order with the
//      study's measured probability; campaigns die exponentially,
//   3. envelope stuffing (the other way to fake "realness" soundly) trips
//      the ledger's duplicate-challenge check.
//
//   $ ./malicious_kiosk_drill
#include <cstdio>

#include "src/crypto/drbg.h"
#include "src/sim/usability.h"
#include "src/trip/attacks.h"
#include "src/trip/registrar.h"

using namespace votegral;

int main() {
  ChaChaRng rng(42);

  TripSystemParams params;
  for (int i = 0; i < 30; ++i) {
    params.roster.push_back("voter-" + std::to_string(i));
  }
  TripSystem system = TripSystem::Create(params, rng);

  std::printf("=== Act 1: the attack works cryptographically ===\n");
  auto evil = std::make_unique<CredentialStealingKiosk>(
      SchnorrKeyPair::Generate(rng), system.shared_mac_key(), system.authority_pk());
  CredentialStealingKiosk* evil_ptr = evil.get();
  system.ReplaceKiosk(0, std::move(evil));

  auto ticket = system.official().CheckIn("voter-0", system.ledger());
  (void)system.kiosk().StartSession(*ticket);
  std::printf("kiosk: \"please scan an envelope to begin\"  <-- WRONG ORDER\n");
  auto envelope = system.booth_envelopes().TakeAny(rng);
  auto stolen_cred = system.kiosk().FinishRealCredential(*envelope, rng);
  (void)system.kiosk().EndSession();
  (void)system.official().CheckOut(stolen_cred->checkout, system.authorized_kiosks(),
                                   system.ledger(), rng);
  Vsd device = system.MakeVsd();
  auto activated = device.Activate(*stolen_cred, system.ledger());
  std::printf("victim's device activates the credential: %s (all checks pass!)\n",
              activated.ok() ? "OK" : "rejected");
  RistrettoPoint registered = system.authority().Decrypt(stolen_cred->checkout.public_credential);
  bool stolen = registered == evil_ptr->stolen_keys()[0].public_point();
  std::printf("...but the ledger record actually encrypts the ATTACKER's key: %s\n\n",
              stolen ? "yes" : "no");

  std::printf("=== Act 2: trained voters catch the order inversion ===\n");
  const auto& actions = system.kiosk().session_actions();
  std::printf("booth action log shows sound order: %s\n",
              ActionsShowSoundRealOrder(actions) ? "yes" : "no (envelope demanded first)");
  std::printf("per-voter detection (study, §7.5): 47%% educated / 10%% uneducated\n");
  for (size_t n : {10u, 50u, 1000u}) {
    std::printf("  kiosk survives %4zu uneducated voters with prob %.3g (2^%.1f)\n", n,
                KioskSurvivalProbability(0.10, n), KioskSurvivalLog2(0.10, n));
  }
  ChaChaRng mc_rng(43);
  double survived = SimulateKioskCampaign(5000, 50, /*educated_fraction=*/0.0, mc_rng);
  std::printf("Monte-Carlo, 5000 campaigns x 50 voters: survival %.4f (paper: <1%%)\n\n",
              survived);

  std::printf("=== Act 3: envelope stuffing trips the duplicate check ===\n");
  Scalar known_challenge = Scalar::Random(rng);
  EnvelopeSupply stuffed = BuildStuffedSupply(system.envelope_printer(), system.ledger(),
                                              8, 8, known_challenge, rng);
  // Two honest sessions both consume stuffed envelopes; the second
  // activation reveals the same challenge and is rejected.
  auto run_session = [&](const std::string& voter) -> Outcome<PaperCredential> {
    auto t = system.official().CheckIn(voter, system.ledger());
    (void)system.kiosk().StartSession(*t);
    (void)system.kiosk().BeginRealCredential(rng);  // malicious kiosk ignores this
    auto env = stuffed.TakeAny(rng);
    auto cred = system.kiosk().FinishRealCredential(*env, rng);
    (void)system.kiosk().EndSession();
    (void)system.official().CheckOut(cred->checkout, system.authorized_kiosks(),
                                     system.ledger(), rng);
    return cred;
  };
  auto cred1 = run_session("voter-1");
  auto cred2 = run_session("voter-2");
  auto first = device.Activate(*cred1, system.ledger());
  auto second = device.Activate(*cred2, system.ledger());
  std::printf("first stuffed credential activates: %s\n", first.ok() ? "yes" : "no");
  std::printf("second is rejected: %s\n",
              second.ok() ? "NO (bad!)" : second.status.reason().c_str());
  return (stolen && !ActionsShowSoundRealOrder(actions) && first.ok() && !second.ok()) ? 0 : 1;
}
