#include "src/sim/pipeline.h"

#include <cmath>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace votegral {

ScalingRow MeasureSystemAt(VotingSystemModel& model, size_t voters, Rng& rng) {
  ScalingRow row;
  row.voters = voters;
  model.Setup(voters, rng);

  WallTimer timer;
  model.RegisterAll(rng);
  row.registration_per_voter = timer.Seconds() / static_cast<double>(voters);

  timer.Reset();
  model.VoteAll(rng);
  row.voting_per_voter = timer.Seconds() / static_cast<double>(voters);

  timer.Reset();
  model.TallyAll(rng);
  row.tally_total = timer.Seconds();

  Require(model.OutcomeLooksCorrect(), "pipeline: system produced a wrong outcome");
  return row;
}

std::vector<ScalingRow> SweepSystem(VotingSystemModel& model, const std::vector<size_t>& sizes,
                                    size_t max_measured, Rng& rng) {
  std::vector<ScalingRow> rows;
  ScalingRow last_measured;
  bool have_measured = false;
  for (size_t n : sizes) {
    if (n <= max_measured) {
      last_measured = MeasureSystemAt(model, n, rng);
      rows.push_back(last_measured);
      have_measured = true;
    } else {
      Require(have_measured, "pipeline: no measured point to extrapolate from");
      ScalingRow row;
      row.voters = n;
      row.extrapolated = true;
      row.registration_per_voter = last_measured.registration_per_voter;
      row.voting_per_voter = last_measured.voting_per_voter;
      double ratio = static_cast<double>(n) / static_cast<double>(last_measured.voters);
      row.tally_total = last_measured.tally_total * std::pow(ratio, model.tally_exponent());
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace votegral
