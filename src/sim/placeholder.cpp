// Placeholder translation unit; replaced as the sim module is implemented.
namespace votegral {
const char* Placeholder_sim() { return "sim"; }
}  // namespace votegral
