#include "src/sim/usability.h"

#include <cmath>

#include "src/common/status.h"
#include "src/trip/attacks.h"

namespace votegral {

double KioskSurvivalProbability(double detect_probability, size_t voters) {
  Require(detect_probability >= 0.0 && detect_probability <= 1.0,
          "usability: probability out of range");
  return std::pow(1.0 - detect_probability, static_cast<double>(voters));
}

double KioskSurvivalLog2(double detect_probability, size_t voters) {
  return static_cast<double>(voters) * std::log2(1.0 - detect_probability);
}

double SimulateKioskCampaign(size_t trials, size_t voters_per_trial, double educated_fraction,
                             Rng& rng) {
  Require(trials > 0, "usability: need at least one trial");
  // The malicious order every victim observes: envelope demanded before any
  // commit is printed (see CredentialStealingKiosk).
  const std::vector<KioskAction> malicious_order = {
      KioskAction::kSessionStarted, KioskAction::kScannedEnvelope,
      KioskAction::kPrintedFullReceipt};
  size_t survived = 0;
  for (size_t t = 0; t < trials; ++t) {
    bool detected = false;
    for (size_t v = 0; v < voters_per_trial && !detected; ++v) {
      bool educated = rng.Uniform(1000000) <
                      static_cast<uint64_t>(educated_fraction * 1000000.0);
      VoterBehavior behavior{.security_educated = educated};
      detected = behavior.DetectsMisbehavior(malicious_order, rng);
    }
    if (!detected) {
      ++survived;
    }
  }
  return static_cast<double>(survived) / static_cast<double>(trials);
}

double ExpectedVotersUntilDetection(double detect_probability) {
  Require(detect_probability > 0.0, "usability: zero detection probability");
  return 1.0 / detect_probability;
}

}  // namespace votegral
