// The Fig. 4 experiment harness: a scripted TRIP registration (one real and
// one fake credential, no human) instrumented per sub-task and component,
// run against a hardware device profile.
//
// Components follow the paper exactly:
//  * "Crypto & Logic" — real protocol computation, measured live on the host
//    and scaled by the profile's CPU factor,
//  * "QR Read/Write" — symbol encode/decode, measured live and scaled,
//  * "QR Scan" / "QR Print" — mechanical peripherals, modeled on a virtual
//    clock (DESIGN.md §2 substitution; constants in src/peripherals).
#ifndef SRC_SIM_REGISTRATION_SIM_H_
#define SRC_SIM_REGISTRATION_SIM_H_

#include <array>
#include <map>
#include <string>

#include "src/peripherals/devices.h"
#include "src/trip/registrar.h"

namespace votegral {

// The six sub-tasks of Fig. 4.
enum class RegPhase {
  kCheckIn = 0,
  kAuthorization,
  kRealToken,
  kFakeToken,
  kCheckOut,
  kActivation,
};
inline constexpr size_t kRegPhaseCount = 6;
const char* RegPhaseName(RegPhase phase);

// The four components of Fig. 4.
enum class Component {
  kCryptoLogic = 0,
  kQrReadWrite,
  kQrScan,
  kQrPrint,
};
inline constexpr size_t kComponentCount = 4;
const char* ComponentName(Component component);

// Wall and CPU (user/system) seconds for one phase, per component.
struct PhaseBreakdown {
  std::array<double, kComponentCount> wall{};
  std::array<double, kComponentCount> cpu_user{};
  std::array<double, kComponentCount> cpu_system{};

  double TotalWall() const;
  double TotalCpu() const;
};

// One full scripted registration session's measurements.
struct SessionMeasurement {
  std::array<PhaseBreakdown, kRegPhaseCount> phases{};

  double TotalWall() const;
  double TotalCpu() const;
  double WallForComponent(Component component) const;
};

// Runs instrumented registrations on a device profile.
class RegistrationSessionSimulator {
 public:
  explicit RegistrationSessionSimulator(const DeviceProfile& device) : device_(device) {}

  // Runs one scripted session (1 real + `fakes` fake credentials, activation
  // of the real credential) for `voter_id` against `system`.
  SessionMeasurement RunOnce(TripSystem& system, const std::string& voter_id, size_t fakes,
                             Rng& rng);

 private:
  // Records scaled crypto time for `phase`.
  template <typename F>
  auto TimedCrypto(SessionMeasurement& m, RegPhase phase, F&& f);

  void RecordPrint(SessionMeasurement& m, RegPhase phase,
                   const std::vector<QrSymbol>& symbols);
  // Scans + decodes a symbol, charging scan and read/write time.
  Bytes RecordScan(SessionMeasurement& m, RegPhase phase, const QrSymbol& symbol);
  QrSymbol RecordEncode(SessionMeasurement& m, RegPhase phase,
                        std::span<const uint8_t> payload, Symbology symbology);
  void ChargeCpu(PhaseBreakdown& breakdown, Component component, double cpu_seconds);

  const DeviceProfile& device_;
};

}  // namespace votegral

#endif  // SRC_SIM_REGISTRATION_SIM_H_
