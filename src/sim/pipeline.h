// The Fig. 5 experiment harness: measures each system model's phases at
// feasible electorate sizes and extrapolates larger sizes along each phase's
// complexity — exactly as the paper extrapolates Civitas beyond 10^4 voters
// (Fig. 5 caption). Extrapolated rows are always flagged.
#ifndef SRC_SIM_PIPELINE_H_
#define SRC_SIM_PIPELINE_H_

#include <vector>

#include "src/baselines/model.h"
#include "src/common/rng.h"

namespace votegral {

// Measured (or extrapolated) phase latencies for one electorate size.
struct ScalingRow {
  size_t voters = 0;
  double registration_per_voter = 0.0;  // seconds
  double voting_per_voter = 0.0;        // seconds
  double tally_total = 0.0;             // seconds
  bool extrapolated = false;
};

// Measures one size directly (runs the full pipeline).
ScalingRow MeasureSystemAt(VotingSystemModel& model, size_t voters, Rng& rng);

// Sweeps `sizes`; sizes above `max_measured` are extrapolated from the
// largest measured size: registration/voting per-voter stay constant, tally
// scales as (N/N0)^tally_exponent.
std::vector<ScalingRow> SweepSystem(VotingSystemModel& model, const std::vector<size_t>& sizes,
                                    size_t max_measured, Rng& rng);

}  // namespace votegral

#endif  // SRC_SIM_PIPELINE_H_
