// The §7.5 usability-derived security model: per-voter malicious-kiosk
// detection probabilities from the paper's 150-participant study, and the
// survival probability of a compromised kiosk across many registrations.
#ifndef SRC_SIM_USABILITY_H_
#define SRC_SIM_USABILITY_H_

#include <cstddef>

#include "src/common/rng.h"

namespace votegral {

// (1 - p)^n: probability that a malicious kiosk tricks n voters in a row
// without a single report.
double KioskSurvivalProbability(double detect_probability, size_t voters);

// log2 of the survival probability (the paper quotes 1/2^152 at n = 1000).
double KioskSurvivalLog2(double detect_probability, size_t voters);

// Monte-Carlo estimate of the same quantity via the voter-behavior model
// driving an actual credential-stealing kiosk session: fraction of `trials`
// in which none of `voters_per_trial` voters reports the kiosk.
// `educated_fraction` voters received security education.
double SimulateKioskCampaign(size_t trials, size_t voters_per_trial, double educated_fraction,
                             Rng& rng);

// Expected number of voters until first detection (geometric mean 1/p).
double ExpectedVotersUntilDetection(double detect_probability);

}  // namespace votegral

#endif  // SRC_SIM_USABILITY_H_
