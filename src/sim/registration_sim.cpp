#include "src/sim/registration_sim.h"

#include "src/common/clock.h"

namespace votegral {

const char* RegPhaseName(RegPhase phase) {
  switch (phase) {
    case RegPhase::kCheckIn:
      return "CheckIn";
    case RegPhase::kAuthorization:
      return "Authorization";
    case RegPhase::kRealToken:
      return "RealToken";
    case RegPhase::kFakeToken:
      return "FakeToken";
    case RegPhase::kCheckOut:
      return "CheckOut";
    case RegPhase::kActivation:
      return "Activation";
  }
  return "?";
}

const char* ComponentName(Component component) {
  switch (component) {
    case Component::kCryptoLogic:
      return "Crypto & Logic";
    case Component::kQrReadWrite:
      return "QR Read/Write";
    case Component::kQrScan:
      return "QR Scan";
    case Component::kQrPrint:
      return "QR Print";
  }
  return "?";
}

double PhaseBreakdown::TotalWall() const {
  double sum = 0.0;
  for (double w : wall) {
    sum += w;
  }
  return sum;
}

double PhaseBreakdown::TotalCpu() const {
  double sum = 0.0;
  for (size_t i = 0; i < kComponentCount; ++i) {
    sum += cpu_user[i] + cpu_system[i];
  }
  return sum;
}

double SessionMeasurement::TotalWall() const {
  double sum = 0.0;
  for (const PhaseBreakdown& phase : phases) {
    sum += phase.TotalWall();
  }
  return sum;
}

double SessionMeasurement::TotalCpu() const {
  double sum = 0.0;
  for (const PhaseBreakdown& phase : phases) {
    sum += phase.TotalCpu();
  }
  return sum;
}

double SessionMeasurement::WallForComponent(Component component) const {
  double sum = 0.0;
  for (const PhaseBreakdown& phase : phases) {
    sum += phase.wall[static_cast<size_t>(component)];
  }
  return sum;
}

void RegistrationSessionSimulator::ChargeCpu(PhaseBreakdown& breakdown, Component component,
                                             double cpu_seconds) {
  size_t c = static_cast<size_t>(component);
  breakdown.cpu_user[c] += cpu_seconds * (1.0 - device_.system_cpu_fraction);
  breakdown.cpu_system[c] += cpu_seconds * device_.system_cpu_fraction;
}

template <typename F>
auto RegistrationSessionSimulator::TimedCrypto(SessionMeasurement& m, RegPhase phase, F&& f) {
  // Crypto is single-threaded and CPU-bound; high-resolution wall time of
  // the host run stands in for CPU time (getrusage granularity is too
  // coarse for millisecond phases), then both are scaled per profile.
  WallTimer timer;
  auto result = f();
  double host_seconds = timer.Seconds();
  PhaseBreakdown& breakdown = m.phases[static_cast<size_t>(phase)];
  size_t c = static_cast<size_t>(Component::kCryptoLogic);
  breakdown.wall[c] += host_seconds * device_.crypto_scale;
  ChargeCpu(breakdown, Component::kCryptoLogic, host_seconds * device_.cpu_scale);
  return result;
}

void RegistrationSessionSimulator::RecordPrint(SessionMeasurement& m, RegPhase phase,
                                               const std::vector<QrSymbol>& symbols) {
  PhaseBreakdown& breakdown = m.phases[static_cast<size_t>(phase)];
  VirtualClock clock;
  double cpu = ModelPrintJob(device_, symbols, clock);
  breakdown.wall[static_cast<size_t>(Component::kQrPrint)] += clock.Seconds();
  ChargeCpu(breakdown, Component::kQrPrint, cpu);
}

QrSymbol RegistrationSessionSimulator::RecordEncode(SessionMeasurement& m, RegPhase phase,
                                                    std::span<const uint8_t> payload,
                                                    Symbology symbology) {
  PhaseBreakdown& breakdown = m.phases[static_cast<size_t>(phase)];
  WallTimer timer;
  QrSymbol symbol = QrCodec::Encode(payload, symbology);
  double host_seconds = timer.Seconds();
  breakdown.wall[static_cast<size_t>(Component::kQrReadWrite)] +=
      host_seconds * device_.crypto_scale;
  ChargeCpu(breakdown, Component::kQrReadWrite, host_seconds * device_.cpu_scale);
  return symbol;
}

Bytes RegistrationSessionSimulator::RecordScan(SessionMeasurement& m, RegPhase phase,
                                               const QrSymbol& symbol) {
  PhaseBreakdown& breakdown = m.phases[static_cast<size_t>(phase)];
  VirtualClock clock;
  double scan_cpu = ModelScan(device_, symbol, clock);
  breakdown.wall[static_cast<size_t>(Component::kQrScan)] += clock.Seconds();
  ChargeCpu(breakdown, Component::kQrScan, scan_cpu);

  WallTimer timer;
  auto payload = QrCodec::Decode(symbol);
  Require(payload.has_value(), "sim: scanned symbol failed integrity check");
  double host_seconds = timer.Seconds();
  breakdown.wall[static_cast<size_t>(Component::kQrReadWrite)] +=
      host_seconds * device_.crypto_scale;
  ChargeCpu(breakdown, Component::kQrReadWrite, host_seconds * device_.cpu_scale);
  return *payload;
}

SessionMeasurement RegistrationSessionSimulator::RunOnce(TripSystem& system,
                                                         const std::string& voter_id,
                                                         size_t fakes, Rng& rng) {
  SessionMeasurement m;
  Official& official = system.official();
  Kiosk& kiosk = system.kiosk();
  EnvelopeSupply& booth = system.booth_envelopes();

  // --- CheckIn: official verifies eligibility, prints the barcode ticket.
  auto ticket = TimedCrypto(m, RegPhase::kCheckIn, [&] {
    auto result = official.CheckIn(voter_id, system.ledger());
    Require(result.ok(), "sim: check-in failed");
    return *result;
  });
  QrSymbol ticket_symbol =
      RecordEncode(m, RegPhase::kCheckIn, ticket.Serialize(), Symbology::kBarcode128);
  RecordPrint(m, RegPhase::kCheckIn, {ticket_symbol});

  // --- Authorization: kiosk scans the ticket and validates the MAC.
  Bytes ticket_payload = RecordScan(m, RegPhase::kAuthorization, ticket_symbol);
  TimedCrypto(m, RegPhase::kAuthorization, [&] {
    auto parsed = CheckInTicket::Parse(ticket_payload);
    Require(parsed.has_value(), "sim: ticket parse failed");
    Status s = kiosk.StartSession(*parsed);
    Require(s.ok(), "sim: authorization failed");
    return 0;
  });

  // --- RealToken: commit print -> envelope scan -> completion print.
  auto printed = TimedCrypto(m, RegPhase::kRealToken, [&] {
    auto result = kiosk.BeginRealCredential(rng);
    Require(result.ok(), "sim: real credential begin failed");
    return *result;
  });
  QrSymbol commit_symbol = RecordEncode(m, RegPhase::kRealToken,
                                        printed.commit.Serialize(), Symbology::kQrCode);
  RecordPrint(m, RegPhase::kRealToken, {commit_symbol});

  auto envelope = booth.TakeWithSymbol(printed.symbol, rng);
  Require(envelope.ok(), "sim: no matching envelope");
  QrSymbol envelope_symbol =
      QrCodec::Encode(envelope->Serialize(), Symbology::kQrCode);  // pre-printed
  Bytes envelope_payload = RecordScan(m, RegPhase::kRealToken, envelope_symbol);

  auto real = TimedCrypto(m, RegPhase::kRealToken, [&] {
    auto parsed = Envelope::Parse(envelope_payload);
    Require(parsed.has_value(), "sim: envelope parse failed");
    auto result = kiosk.FinishRealCredential(*parsed, rng);
    Require(result.ok(), "sim: real credential finish failed");
    return *result;
  });
  QrSymbol checkout_symbol = RecordEncode(m, RegPhase::kRealToken,
                                          real.checkout.Serialize(), Symbology::kQrCode);
  QrSymbol response_symbol = RecordEncode(m, RegPhase::kRealToken,
                                          real.response.Serialize(), Symbology::kQrCode);
  RecordPrint(m, RegPhase::kRealToken, {checkout_symbol, response_symbol});

  // --- FakeToken: envelope scan -> full receipt print, per fake credential.
  for (size_t f = 0; f < fakes; ++f) {
    auto fake_envelope = booth.TakeAny(rng);
    Require(fake_envelope.ok(), "sim: booth out of envelopes");
    QrSymbol fake_env_symbol = QrCodec::Encode(fake_envelope->Serialize(), Symbology::kQrCode);
    Bytes fake_env_payload = RecordScan(m, RegPhase::kFakeToken, fake_env_symbol);
    auto fake = TimedCrypto(m, RegPhase::kFakeToken, [&] {
      auto parsed = Envelope::Parse(fake_env_payload);
      Require(parsed.has_value(), "sim: envelope parse failed");
      auto result = kiosk.CreateFakeCredential(*parsed, rng);
      Require(result.ok(), "sim: fake credential failed");
      return *result;
    });
    QrSymbol fc = RecordEncode(m, RegPhase::kFakeToken, fake.commit.Serialize(),
                               Symbology::kQrCode);
    QrSymbol ft = RecordEncode(m, RegPhase::kFakeToken, fake.checkout.Serialize(),
                               Symbology::kQrCode);
    QrSymbol fr = RecordEncode(m, RegPhase::kFakeToken, fake.response.Serialize(),
                               Symbology::kQrCode);
    RecordPrint(m, RegPhase::kFakeToken, {fc, ft, fr});
  }
  TimedCrypto(m, RegPhase::kFakeToken, [&] {
    Status s = kiosk.EndSession();
    Require(s.ok(), "sim: end session failed");
    return 0;
  });

  // --- CheckOut: official scans t_ot through the envelope window.
  Bytes checkout_payload = RecordScan(m, RegPhase::kCheckOut, checkout_symbol);
  TimedCrypto(m, RegPhase::kCheckOut, [&] {
    auto parsed = CheckOutSegment::Parse(checkout_payload);
    Require(parsed.has_value(), "sim: check-out parse failed");
    Status s = official.CheckOut(*parsed, system.authorized_kiosks(), system.ledger(), rng);
    Require(s.ok(), "sim: check-out failed");
    return 0;
  });

  // --- Activation: the VSD scans the three visible QRs of the real
  // credential and runs all Fig. 11 checks.
  Bytes commit_payload = RecordScan(m, RegPhase::kActivation, commit_symbol);
  Bytes response_payload = RecordScan(m, RegPhase::kActivation, response_symbol);
  Bytes env_payload = RecordScan(m, RegPhase::kActivation, envelope_symbol);
  TimedCrypto(m, RegPhase::kActivation, [&] {
    PaperCredential credential;
    auto commit = CommitSegment::Parse(commit_payload);
    auto response = ResponseSegment::Parse(response_payload);
    auto env = Envelope::Parse(env_payload);
    Require(commit && response && env, "sim: activation parse failed");
    credential.commit = *commit;
    credential.checkout = real.checkout;
    credential.response = *response;
    credential.envelope = *env;
    Vsd vsd = system.MakeVsd();
    auto activated = vsd.Activate(credential, system.ledger());
    Require(activated.ok(), "sim: activation failed");
    return 0;
  });

  return m;
}

}  // namespace votegral
