#include "src/net/loopback.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "src/common/faults.h"

namespace votegral {

namespace {
struct Pending {
  Bytes frame;
  double extra_delay_seconds = 0.0;
};
}  // namespace

// One lock covers queues, clock and counters: replication traffic is strictly
// request-response, so there is no contention worth finer granularity, and a
// single monitor keeps the VirtualClock advances totally ordered (which is
// what makes SimulatedSeconds() reproducible).
struct LoopbackNetwork::Shared {
  std::mutex mu;
  std::condition_variable cv;
  LoopbackLinkModel model;
  VirtualClock clock;
  uint64_t bytes_delivered = 0;
  uint64_t recv_deadline_ms = 5000;
};

namespace {

struct PairState {
  std::deque<Pending> queue[2];  // queue[i] holds frames addressed to side i
  bool closed = false;
  uint64_t send_seq[2] = {0, 0};
  uint64_t recv_seq[2] = {0, 0};
};

class LoopbackChannel final : public Channel {
 public:
  LoopbackChannel(std::shared_ptr<LoopbackNetwork::Shared> shared,
                  std::shared_ptr<PairState> pair, int side, uint64_t id)
      : shared_(std::move(shared)), pair_(std::move(pair)), side_(side), id_(id) {}

  ~LoopbackChannel() override { Close(); }

  Status Send(const WireMessage& msg) override {
    Bytes frame = EncodeFrame(msg);
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (pair_->closed) {
      return Status::Error(StatusCode::kUnavailable, Name() + ": send on closed channel");
    }
    const uint64_t seq = pair_->send_seq[side_]++;
    Pending pending{std::move(frame), 0.0};
    const FaultDecision fault = ProbeFaultPoint(faults::kNetSend, id_, seq);
    switch (fault.kind) {
      case FaultKind::kCrash:
        // The link itself dies: both directions fail from here on.
        pair_->closed = true;
        shared_->cv.notify_all();
        return Status::Error(StatusCode::kUnavailable,
                             Name() + ": link dropped (crash injected at " +
                                 std::string(faults::kNetSend) + ", message " +
                                 std::to_string(seq) + ")");
      case FaultKind::kTimeout:
        // The message is lost in flight; the sender learns nothing arrived.
        return Status::Error(StatusCode::kTimeout,
                             Name() + ": message " + std::to_string(seq) +
                                 " lost (timeout injected at " +
                                 std::string(faults::kNetSend) + ")");
      case FaultKind::kCorrupt:
        pending.frame[seq % pending.frame.size()] ^= 0x01;
        break;
      case FaultKind::kDelay:
        pending.extra_delay_seconds = static_cast<double>(fault.delay_ms) / 1e3;
        break;
      case FaultKind::kNone:
        break;
    }
    pair_->queue[1 - side_].push_back(std::move(pending));
    shared_->cv.notify_all();
    return Status::Ok();
  }

  Outcome<WireMessage> Recv() override {
    using Out = Outcome<WireMessage>;
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(shared_->mu);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(shared_->recv_deadline_ms);
      while (pair_->queue[side_].empty() && !pair_->closed) {
        if (shared_->cv.wait_until(lock, deadline) == std::cv_status::timeout) {
          break;
        }
      }
      if (pair_->queue[side_].empty()) {
        if (pair_->closed) {
          return Out::Fail(StatusCode::kUnavailable, Name() + ": channel closed");
        }
        return Out::Fail(StatusCode::kTimeout,
                         Name() + ": no message within the receive deadline");
      }
      pending = std::move(pair_->queue[side_].front());
      pair_->queue[side_].pop_front();

      const uint64_t seq = pair_->recv_seq[side_]++;
      const FaultDecision fault = ProbeFaultPoint(faults::kNetRecv, id_, seq);
      switch (fault.kind) {
        case FaultKind::kCrash:
          pair_->closed = true;
          shared_->cv.notify_all();
          return Out::Fail(StatusCode::kUnavailable,
                           Name() + ": link dropped (crash injected at " +
                               std::string(faults::kNetRecv) + ", message " +
                               std::to_string(seq) + ")");
        case FaultKind::kTimeout:
          // Delivered by the wire, dropped by the receiving stack.
          return Out::Fail(StatusCode::kTimeout,
                           Name() + ": message " + std::to_string(seq) +
                               " lost (timeout injected at " +
                               std::string(faults::kNetRecv) + ")");
        case FaultKind::kCorrupt:
          pending.frame[seq % pending.frame.size()] ^= 0x01;
          break;
        case FaultKind::kDelay:
          pending.extra_delay_seconds += static_cast<double>(fault.delay_ms) / 1e3;
          break;
        case FaultKind::kNone:
          break;
      }
      shared_->clock.Advance(shared_->model.base_seconds +
                             shared_->model.seconds_per_byte *
                                 static_cast<double>(pending.frame.size()) +
                             pending.extra_delay_seconds);
      shared_->bytes_delivered += pending.frame.size();
    }
    return DecodeFrame(pending.frame);
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    pair_->closed = true;
    shared_->cv.notify_all();
  }

  std::string Describe() const override { return Name(); }

 private:
  std::string Name() const { return "loopback:" + std::to_string(id_); }

  std::shared_ptr<LoopbackNetwork::Shared> shared_;
  std::shared_ptr<PairState> pair_;
  int side_;
  uint64_t id_;
};

}  // namespace

LoopbackNetwork::LoopbackNetwork(LoopbackLinkModel model)
    : shared_(std::make_shared<Shared>()) {
  shared_->model = model;
}

LoopbackNetwork::~LoopbackNetwork() = default;

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
LoopbackNetwork::CreatePair(uint64_t id_a, uint64_t id_b) {
  auto pair = std::make_shared<PairState>();
  return {std::make_unique<LoopbackChannel>(shared_, pair, 0, id_a),
          std::make_unique<LoopbackChannel>(shared_, pair, 1, id_b)};
}

double LoopbackNetwork::SimulatedSeconds() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->clock.Seconds();
}

uint64_t LoopbackNetwork::BytesDelivered() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->bytes_delivered;
}

void LoopbackNetwork::SetRecvDeadlineMillis(uint64_t ms) {
  std::lock_guard<std::mutex> lock(shared_->mu);
  shared_->recv_deadline_ms = ms;
}

}  // namespace votegral
