// Message transport for the replicated bulletin board: length-prefixed
// framing over an abstract bidirectional channel.
//
// Wire frame (little-endian, docs/REPLICATION.md "Wire framing"):
//
//   u32 frame_len | u16 type | payload (frame_len - 2 bytes)
//
// frame_len counts everything after the length word, so a reader can pull a
// whole message with two exact reads. Frames are capped at kMaxFrameBytes —
// a peer announcing a larger frame is rejected before any allocation it
// names (the same attacker-length rule the ledger frame parser follows).
//
// Two backends implement Channel:
//  * LoopbackNetwork (src/net/loopback.h) — deterministic in-process pairs:
//    byte-reproducible queues, VirtualClock latency modeling, and the
//    faults::kNetSend / faults::kNetRecv fault points for drop/corrupt/delay
//    drills. Replication tests and the fig_replication bench run on this.
//  * SocketChannel/SocketListener (src/net/socket.h) — blocking POSIX
//    AF_UNIX stream sockets for real multi-process deployments.
//
// Error contract: transport failures are Status values with transport codes —
// kUnavailable (peer gone/channel closed), kTimeout (nothing arrived in
// time), kCorrupted (undecodable frame) — never exceptions, so replication
// retry logic can branch on the class (DESIGN.md §4 convention).
#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/common/bytes.h"
#include "src/common/outcome.h"
#include "src/common/status.h"

namespace votegral {

// One framed message: a type tag (protocol-defined, see
// src/replica/messages.h) and an opaque payload.
struct WireMessage {
  uint16_t type = 0;
  Bytes payload;
};

// Hard upper bound on one frame's encoded size (length word excluded). Large
// enough for a full segment of ballot frames plus headroom; small enough
// that a malicious length cannot balloon a reader's allocation.
inline constexpr size_t kMaxFrameBytes = 8u << 20;  // 8 MiB

// Encodes `msg` as one wire frame (length word included). Require()s the
// payload fits kMaxFrameBytes.
Bytes EncodeFrame(const WireMessage& msg);

// Decodes one complete frame (exactly as produced by EncodeFrame). Fails
// with kCorrupted on truncation, trailing bytes, or an implausible length.
Outcome<WireMessage> DecodeFrame(std::span<const uint8_t> frame);

// A bidirectional, ordered, reliable-unless-faulted message channel. Send
// and Recv may be called from different threads; neither is reentrant.
class Channel {
 public:
  virtual ~Channel() = default;

  // Queues/writes one message. Fails kUnavailable once the channel is
  // closed (either side), kTimeout when an injected fault ate the message.
  virtual Status Send(const WireMessage& msg) = 0;

  // Blocks for the next message. Fails kUnavailable on close, kTimeout when
  // nothing arrived within the backend's receive deadline, kCorrupted when
  // the arriving frame does not decode.
  virtual Outcome<WireMessage> Recv() = 0;

  // Closes both directions; pending and future Recv()s fail kUnavailable.
  virtual void Close() = 0;

  // Human-readable endpoint description ("loopback:3", "unix:/tmp/...").
  virtual std::string Describe() const = 0;
};

}  // namespace votegral

#endif  // SRC_NET_TRANSPORT_H_
