#include "src/net/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace votegral {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Writes all of `data`, retrying short writes and EINTR.
Status WriteAll(int fd, std::span<const uint8_t> data, const std::string& name) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Error(StatusCode::kUnavailable, name + ": peer closed during write");
      }
      return Status::Error(StatusCode::kUnavailable, Errno(name + ": write failed"));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Reads exactly data.size() bytes, retrying EINTR. Distinguishes a clean EOF
// on the first byte (peer closed between messages → kUnavailable) from a
// timeout (SO_RCVTIMEO fired → kTimeout) and a mid-frame EOF (→ kCorrupted:
// the peer died with half a frame on the wire).
Status ReadExact(int fd, std::span<uint8_t> data, const std::string& name) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::read(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Error(StatusCode::kTimeout,
                             name + ": no message within the receive deadline");
      }
      return Status::Error(StatusCode::kUnavailable, Errno(name + ": read failed"));
    }
    if (n == 0) {
      if (off == 0) {
        return Status::Error(StatusCode::kUnavailable, name + ": channel closed");
      }
      return Status::Error(StatusCode::kCorrupted,
                           name + ": peer closed mid-frame after " +
                               std::to_string(off) + " bytes");
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

void SetRecvTimeout(int fd, uint64_t ms) {
  if (ms == 0) {
    return;
  }
  timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

Status FillUnixAddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::Error(StatusCode::kFailed, "socket: unix path too long: " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

class SocketChannel final : public Channel {
 public:
  SocketChannel(int fd, std::string name) : fd_(fd), name_(std::move(name)) {}
  ~SocketChannel() override { Close(); }

  Status Send(const WireMessage& msg) override {
    if (fd_ < 0) {
      return Status::Error(StatusCode::kUnavailable, name_ + ": send on closed channel");
    }
    return WriteAll(fd_, EncodeFrame(msg), name_);
  }

  Outcome<WireMessage> Recv() override {
    using Out = Outcome<WireMessage>;
    if (fd_ < 0) {
      return Out::Fail(StatusCode::kUnavailable, name_ + ": channel closed");
    }
    Bytes frame(4);
    if (Status s = ReadExact(fd_, frame, name_); !s.ok()) {
      return Out::Fail(s.code(), s.reason());
    }
    const uint32_t frame_len = LoadLe32(frame.data());
    if (frame_len < 2 || frame_len > kMaxFrameBytes) {
      // Reject the announced length before allocating what it names.
      return Out::Fail(StatusCode::kCorrupted, name_ + ": implausible frame length " +
                                                   std::to_string(frame_len));
    }
    frame.resize(size_t{4} + frame_len);
    if (Status s = ReadExact(fd_, std::span<uint8_t>(frame).subspan(4), name_); !s.ok()) {
      return Out::Fail(s.code(), s.reason());
    }
    return DecodeFrame(frame);
  }

  void Close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::string Describe() const override { return name_; }

 private:
  int fd_;
  std::string name_;
};

}  // namespace

Outcome<std::unique_ptr<Channel>> ConnectUnixSocket(const std::string& path,
                                                    uint64_t recv_timeout_ms) {
  using Out = Outcome<std::unique_ptr<Channel>>;
  sockaddr_un addr;
  if (Status s = FillUnixAddr(path, &addr); !s.ok()) {
    return Out::Fail(s.code(), s.reason());
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Out::Fail(StatusCode::kUnavailable, Errno("socket: socket() failed"));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = Errno("socket: connect to " + path + " failed");
    ::close(fd);
    return Out::Fail(StatusCode::kUnavailable, reason);
  }
  SetRecvTimeout(fd, recv_timeout_ms);
  return Out::Ok(std::make_unique<SocketChannel>(fd, "unix:" + path));
}

Outcome<std::unique_ptr<SocketListener>> SocketListener::Bind(const std::string& path,
                                                              uint64_t recv_timeout_ms) {
  using Out = Outcome<std::unique_ptr<SocketListener>>;
  sockaddr_un addr;
  if (Status s = FillUnixAddr(path, &addr); !s.ok()) {
    return Out::Fail(s.code(), s.reason());
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Out::Fail(StatusCode::kUnavailable, Errno("socket: socket() failed"));
  }
  ::unlink(path.c_str());  // stale path from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = Errno("socket: bind to " + path + " failed");
    ::close(fd);
    return Out::Fail(StatusCode::kUnavailable, reason);
  }
  if (::listen(fd, 8) != 0) {
    const std::string reason = Errno("socket: listen on " + path + " failed");
    ::close(fd);
    return Out::Fail(StatusCode::kUnavailable, reason);
  }
  return Out::Ok(std::unique_ptr<SocketListener>(
      new SocketListener(fd, path, recv_timeout_ms)));
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  ::unlink(path_.c_str());
}

Outcome<std::unique_ptr<Channel>> SocketListener::Accept() {
  using Out = Outcome<std::unique_ptr<Channel>>;
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      SetRecvTimeout(fd, recv_timeout_ms_);
      return Out::Ok(std::make_unique<SocketChannel>(fd, "unix:" + path_ + "#accepted"));
    }
    if (errno == EINTR) {
      continue;
    }
    return Out::Fail(StatusCode::kUnavailable, Errno("socket: accept failed"));
  }
}

}  // namespace votegral
