#include "src/net/transport.h"

#include "src/common/serde.h"

namespace votegral {

Bytes EncodeFrame(const WireMessage& msg) {
  Require(msg.payload.size() + 2 <= kMaxFrameBytes,
          "net: frame payload exceeds kMaxFrameBytes");
  Bytes out;
  out.resize(4 + 2 + msg.payload.size());
  StoreLe32(out.data(), static_cast<uint32_t>(2 + msg.payload.size()));
  StoreLe16(out.data() + 4, msg.type);
  std::copy(msg.payload.begin(), msg.payload.end(), out.begin() + 6);
  return out;
}

Outcome<WireMessage> DecodeFrame(std::span<const uint8_t> frame) {
  using Out = Outcome<WireMessage>;
  if (frame.size() < 6) {
    return Out::Fail(StatusCode::kCorrupted, "net: frame shorter than its header");
  }
  const uint32_t frame_len = LoadLe32(frame.data());
  if (frame_len < 2 || frame_len > kMaxFrameBytes) {
    return Out::Fail(StatusCode::kCorrupted, "net: implausible frame length " +
                                                 std::to_string(frame_len));
  }
  if (frame.size() != size_t{4} + frame_len) {
    return Out::Fail(StatusCode::kCorrupted,
                     "net: frame length word does not match the received bytes");
  }
  WireMessage msg;
  msg.type = LoadLe16(frame.data() + 4);
  msg.payload.assign(frame.begin() + 6, frame.end());
  return Out::Ok(std::move(msg));
}

}  // namespace votegral
