// Deterministic in-process transport for replication tests and benches.
//
// A LoopbackNetwork hands out connected Channel pairs backed by per-direction
// byte queues. Everything observable is reproducible:
//  * The bytes a receiver sees are exactly the frames the sender encoded (or
//    a deterministic corruption of them) — no timing-dependent coalescing.
//  * Simulated latency comes from a VirtualClock advanced on delivery by a
//    LoopbackLinkModel (per-message base cost + per-byte cost + injected
//    delay), never from real sleeping, so the fig_replication sync-lag
//    numbers are model outputs, not scheduler noise.
//  * Misbehavior is injected through the faults::kNetSend / faults::kNetRecv
//    fault points, probed with scope = the endpoint's stable id and key = the
//    per-endpoint message sequence number — a pure PRF schedule, independent
//    of thread interleaving (src/common/faults.h contract):
//      - kCrash    the link drops; both sides fail kUnavailable from then on.
//      - kTimeout  the message is lost; the faulted operation fails kTimeout.
//      - kCorrupt  one deterministic byte of the frame flips in flight.
//      - kDelay    delivery works but charges extra simulated milliseconds.
//
// Blocking: Recv waits on a condition variable with a configurable *real*
// deadline (default 5 s) so a drill whose message was eaten by a fault fails
// kTimeout instead of hanging the test binary; in fault-free runs the
// deadline never fires and adds nothing to the clock model.
#ifndef SRC_NET_LOOPBACK_H_
#define SRC_NET_LOOPBACK_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "src/common/clock.h"
#include "src/net/transport.h"

namespace votegral {

// Simulated link cost, charged to the shared VirtualClock per delivery.
struct LoopbackLinkModel {
  double base_seconds = 200e-6;           // per-message overhead (~LAN RTT share)
  double seconds_per_byte = 1.0 / 117e6;  // ~937 Mbit/s effective gigabit
};

class LoopbackNetwork {
 public:
  explicit LoopbackNetwork(LoopbackLinkModel model = {});
  ~LoopbackNetwork();

  // Creates a connected pair. The first channel probes fault points with
  // scope `id_a`, the second with scope `id_b`; ids also label Describe().
  // Ids must be stable per logical endpoint so fault plans can target "the
  // follower side" across reconnects.
  std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>> CreatePair(
      uint64_t id_a, uint64_t id_b);

  // Simulated time consumed by deliveries so far (shared by all pairs).
  double SimulatedSeconds() const;

  // Total frame bytes successfully delivered (post-fault) across all pairs.
  uint64_t BytesDelivered() const;

  // Real-time receive deadline; lost-message drills lower this so a fault
  // surfaces as kTimeout quickly.
  void SetRecvDeadlineMillis(uint64_t ms);

  // Implementation state; public so the channel implementation in the .cpp
  // can name it, opaque to everyone else.
  struct Shared;

 private:
  std::shared_ptr<Shared> shared_;
};

}  // namespace votegral

#endif  // SRC_NET_LOOPBACK_H_
