// Blocking AF_UNIX stream-socket backend for the replication transport.
//
// This is the "real processes" counterpart of LoopbackNetwork: the same wire
// frames (src/net/transport.h), carried over a POSIX stream socket, so a
// leader and follower in separate processes interoperate byte-for-byte with
// the in-process test rig. Unix-domain paths keep the backend dependency-free
// and sandbox-friendly (no name resolution, no ports); the framing itself is
// address-family agnostic.
//
// Blocking model: Send writes the whole frame (retrying short writes and
// EINTR); Recv reads exactly one frame under a per-socket receive timeout
// (SO_RCVTIMEO) so a dead peer surfaces as kTimeout, not a hang. No fault
// points are probed here — deterministic misbehavior drills belong to the
// loopback backend; real sockets fail for real reasons.
#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <memory>
#include <string>

#include "src/net/transport.h"

namespace votegral {

// Client side: connects to a listening unix-domain socket.
// `recv_timeout_ms` bounds each Recv (0 = block forever).
Outcome<std::unique_ptr<Channel>> ConnectUnixSocket(const std::string& path,
                                                    uint64_t recv_timeout_ms = 5000);

// Server side: binds + listens on a unix-domain path. The destructor closes
// the listening socket and unlinks the path.
class SocketListener {
 public:
  static Outcome<std::unique_ptr<SocketListener>> Bind(const std::string& path,
                                                       uint64_t recv_timeout_ms = 5000);
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  // Blocks for one inbound connection.
  Outcome<std::unique_ptr<Channel>> Accept();

  const std::string& path() const { return path_; }

 private:
  SocketListener(int fd, std::string path, uint64_t recv_timeout_ms)
      : fd_(fd), path_(std::move(path)), recv_timeout_ms_(recv_timeout_ms) {}

  int fd_;
  std::string path_;
  uint64_t recv_timeout_ms_;
};

}  // namespace votegral

#endif  // SRC_NET_SOCKET_H_
