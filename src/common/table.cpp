#include "src/common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/status.h"

namespace votegral {

void TextTable::SetHeader(std::vector<std::string> header) {
  Require(rows_.empty(), "TextTable::SetHeader: rows already added");
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  Require(row.size() == header_.size(), "TextTable::AddRow: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::Format() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  if (!title_.empty()) {
    out << "== " << title_ << " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string TextTable::Csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out << ",";
      }
      out << row[c];
    }
    out << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  double abs = std::fabs(seconds);
  if (abs < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (abs < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (abs < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (abs < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (abs < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (abs < 86400.0 * 3) {
    std::snprintf(buf, sizeof(buf), "%.1f h", seconds / 3600.0);
  } else if (abs < 86400.0 * 365 * 2) {
    std::snprintf(buf, sizeof(buf), "%.1f days", seconds / 86400.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f years", seconds / (86400.0 * 365.0));
  }
  return buf;
}

std::string FormatMinutes(double seconds, bool extrapolated) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g%s", seconds / 60.0, extrapolated ? "*" : "");
  return buf;
}

}  // namespace votegral
