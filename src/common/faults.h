// Deterministic fault injection: named fault points + seeded fault plans.
//
// Failure is a first-class, testable input to the pipeline (the paper's
// trust model is threshold — a minority of authorities may crash, stall or
// lie — and the ledger must survive torn writes). Production code declares
// *fault points*: named sites (`faults::kAuthorityComputeShare`,
// `faults::kLedgerAppend`, ...) that probe the process-wide FaultInjector.
// A test arms a FaultPlan — a seeded, deterministic schedule of
// crash / timeout / corrupt-output / delayed-response injections — and the
// probed sites misbehave exactly as scheduled.
//
// Design constraints, in order:
//  1. *Zero cost when disarmed.* The probe is one relaxed atomic load of a
//     process-wide flag; no plan, no hashing, no locks. The points are
//     compiled in always (release builds drill the same code tests do).
//  2. *Determinism at any thread count.* A decision is a pure function
//     PRF(plan seed, point, scope, key) of stable identifiers — the acting
//     entity (`scope`: authority index, segment number) and the operation
//     instance (`key`: ciphertext index, attempt counter, entry index) —
//     never of wall-clock time, scheduling or global call order. The same
//     plan over the same data yields the same faults whether the tally runs
//     on 1 thread or 64, which is what lets the fault-soak suite assert
//     byte-identical degraded transcripts across thread counts (composing
//     with the ForkRngSeeds reproducibility contract; a plan never touches
//     any protocol Rng stream).
//  3. *Localized blame.* Every injected fault is observable: sites translate
//     decisions into coded Status values naming the point, or throw
//     InjectedCrash for process-death simulations; the injector counts
//     injections per point for tests.
//
// See docs/ROBUSTNESS.md for the fault-point catalog and degradation rules.
#ifndef SRC_COMMON_FAULTS_H_
#define SRC_COMMON_FAULTS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace votegral {

// Thrown by fault points whose injected failure models process death (torn
// ledger writes, partial seals). Deliberately NOT a ProtocolError: a drill
// harness catches exactly this type, "reboots", and resumes off recovered
// state; real invariant violations still propagate.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& what) : std::runtime_error(what) {}
};

// What a fault point injects.
enum class FaultKind : uint8_t {
  kNone = 0,
  kCrash,    // the site dies: authority permanently down / torn write + throw
  kTimeout,  // the request consumes its full per-attempt budget and fails
  kCorrupt,  // the site responds, but its output is tampered
  kDelay,    // the response arrives late (consumes simulated deadline budget)
};

const char* FaultKindName(FaultKind kind);

// The catalog of named fault points. A point name is part of the observable
// blame surface ("authority 3: crash injected at authority.compute_share"),
// so names are stable identifiers, listed in docs/ROBUSTNESS.md.
namespace faults {
inline constexpr std::string_view kAuthorityComputeShare = "authority.compute_share";
inline constexpr std::string_view kLedgerAppend = "ledger.append";
inline constexpr std::string_view kLedgerSeal = "ledger.seal";
inline constexpr std::string_view kMixShuffle = "mix.shuffle";
inline constexpr std::string_view kTagApply = "tag.apply";
// Supersession dedup (src/votegral/revote.cpp and the legacy dedup stage):
// scope 0, probed once per tally run before the grouping/padding kernel.
inline constexpr std::string_view kTallyDedup = "tally.dedup";
// Replication transport + apply path (src/net, src/replica). net.*: scope =
// the probing endpoint's id, key = the per-endpoint message sequence number.
// replica.apply: scope = the entry's segment, key = the entry index (the
// kLedgerAppend convention, so crash rules land mid-sync on PRF-chosen
// segments).
inline constexpr std::string_view kNetSend = "net.send";
inline constexpr std::string_view kNetRecv = "net.recv";
inline constexpr std::string_view kReplicaApply = "replica.apply";
}  // namespace faults

// Every registered fault point name (the docs/tests cross-check this list).
std::span<const std::string_view> RegisteredFaultPoints();

// The outcome of probing a fault point.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  uint64_t delay_ms = 0;  // meaningful for kDelay

  bool none() const { return kind == FaultKind::kNone; }
};

// Matches any scope (rule applies to every acting entity at the point).
inline constexpr uint64_t kAnyScope = ~uint64_t{0};

// One scheduled misbehavior: at `point`, entities matching `scope` fail with
// `kind` at rate `rate` per probed (scope, key) pair. rate = 1.0 pins a
// deterministic always-fault (the acceptance drills use this to take down
// exactly n-t named authorities).
struct FaultRule {
  std::string point;
  FaultKind kind = FaultKind::kCrash;
  double rate = 0.0;
  uint64_t scope = kAnyScope;
  // kDelay: injected latency. Sampled deterministically in
  // [delay_ms_min, delay_ms_max] from the decision PRF.
  uint64_t delay_ms_min = 0;
  uint64_t delay_ms_max = 0;
};

// A deterministic, seeded schedule of fault injections for one run.
//
// Decision semantics:
//  * kCrash is evaluated on (point, scope) only — a crashed entity is down
//    for the whole run, regardless of which operation observes it first, so
//    no cross-thread ordering can leak into the schedule.
//  * kTimeout / kCorrupt / kDelay are evaluated per (point, scope, key) —
//    independent per operation instance (and per retry attempt when the
//    caller folds the attempt counter into `key`), so a timed-out request
//    can succeed on retry.
// The first matching rule in insertion order wins.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(uint64_t seed) : seed_(seed) {}

  uint64_t seed() const { return seed_; }
  bool empty() const { return rules_.empty(); }

  FaultPlan& Add(FaultRule rule);

  // Convenience builders (chainable).
  FaultPlan& Crash(std::string_view point, double rate, uint64_t scope = kAnyScope);
  FaultPlan& Timeout(std::string_view point, double rate, uint64_t scope = kAnyScope);
  FaultPlan& Corrupt(std::string_view point, double rate, uint64_t scope = kAnyScope);
  FaultPlan& Delay(std::string_view point, double rate, uint64_t delay_ms_min,
                   uint64_t delay_ms_max, uint64_t scope = kAnyScope);

  // Pure decision function (thread-safe, no state).
  FaultDecision Decide(std::string_view point, uint64_t scope, uint64_t key) const;

 private:
  uint64_t seed_ = 0;
  std::vector<FaultRule> rules_;
};

// Process-wide injector. Disarmed by default; tests arm a plan for the
// duration of one run (ArmedFaults below is the RAII form).
class FaultInjector {
 public:
  static FaultInjector& Instance();

  // True when a plan is armed. One relaxed atomic load: the only cost a
  // fault point pays in a normal (no-plan) run.
  static bool Armed() { return armed_.load(std::memory_order_acquire); }

  void Arm(FaultPlan plan);
  void Disarm();

  // Probes with a plan known to be armed (call through ProbeFaultPoint).
  FaultDecision ProbeArmed(std::string_view point, uint64_t scope, uint64_t key);

  // Number of non-kNone decisions handed out at `point` since Arm().
  uint64_t InjectionCount(std::string_view point) const;
  // Total across all points.
  uint64_t TotalInjections() const;

 private:
  FaultInjector() = default;

  static std::atomic<bool> armed_;

  FaultPlan plan_;
  // Per-point injection counters, fixed at Arm() time (one slot per
  // registered point), so concurrent probes never mutate the map shape.
  std::map<std::string, std::array<std::atomic<uint64_t>, 5>, std::less<>> counters_;
};

// The probe every fault point calls. Zero-cost when disarmed.
inline FaultDecision ProbeFaultPoint(std::string_view point, uint64_t scope,
                                     uint64_t key) {
  if (!FaultInjector::Armed()) {
    return {};
  }
  return FaultInjector::Instance().ProbeArmed(point, scope, key);
}

// RAII arming for tests: arms `plan` on construction, disarms on scope exit
// (including when an InjectedCrash unwinds through the drill).
class ArmedFaults {
 public:
  explicit ArmedFaults(FaultPlan plan) { FaultInjector::Instance().Arm(std::move(plan)); }
  ~ArmedFaults() { FaultInjector::Instance().Disarm(); }

  ArmedFaults(const ArmedFaults&) = delete;
  ArmedFaults& operator=(const ArmedFaults&) = delete;
};

}  // namespace votegral

#endif  // SRC_COMMON_FAULTS_H_
