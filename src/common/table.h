// Plain-text table rendering for the figure/table benchmark harnesses. Each
// bench binary prints the same rows/series the paper's figure reports, plus a
// CSV block that downstream plotting could consume.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace votegral {

// Column-aligned text table with an optional title.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  // Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  // Adds a data row; must match the header width.
  void AddRow(std::vector<std::string> row);

  // Renders the aligned table.
  std::string Format() const;

  // Renders the table as CSV (header + rows).
  std::string Csv() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` significant decimal places.
std::string FormatDouble(double v, int digits = 3);

// Formats seconds with an adaptive unit (ns/us/ms/s/min/h) for readability.
std::string FormatSeconds(double seconds);

// Formats seconds as the paper's Fig. 5b does (minutes on a log axis), while
// flagging extrapolated values with a trailing '*'.
std::string FormatMinutes(double seconds, bool extrapolated);

}  // namespace votegral

#endif  // SRC_COMMON_TABLE_H_
