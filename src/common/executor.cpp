#include "src/common/executor.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "src/common/status.h"

namespace votegral {

namespace {

// Innermost Scope-bound executor on this thread (set while chunk bodies and
// graph nodes run on pool threads, too, so nested kernels inherit the right
// pool).
thread_local Executor* tls_current_executor = nullptr;

// The deque slot this thread owns, valid while tls_worker_pool matches the
// executor being asked. Workers of other pools and external threads share
// slot 0 of whichever pool they submit to.
thread_local Executor* tls_worker_pool = nullptr;
thread_local size_t tls_worker_slot = 0;

}  // namespace

// One ParallelFor invocation: chunks are claimed by atomic increment, so a
// chunk runs on whichever thread gets to it first while results stay
// position-addressed and deterministic.
struct Executor::Job {
  Executor* owner = nullptr;
  size_t n = 0;
  size_t chunk = 1;
  const std::function<void(size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next{0};        // next unclaimed chunk start
  std::atomic<bool> failed{false};    // first exception recorded; skip rest
  std::atomic<bool> done{false};      // completed == n (set under mutex)

  std::mutex mutex;
  size_t completed = 0;               // completed indices, guarded by mutex
  std::exception_ptr error;           // first chunk exception, guarded by mutex
};

Executor::Executor(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  thread_count_ = threads;
  deques_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<WorkDeque>());
  }
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    // Worker i owns deque slot i + 1; slot 0 belongs to submitters.
    workers_.emplace_back([this, slot = i + 1] { WorkerLoop(slot); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

size_t Executor::HomeSlot() const {
  return tls_worker_pool == this ? tls_worker_slot : 0;
}

void Executor::PushItem(WorkItem item) {
  Require(!stopping_.load(std::memory_order_acquire), "executor: submit after shutdown");
  const size_t slot = HomeSlot();
  uint64_t depth;
  {
    std::lock_guard<std::mutex> lock(deques_[slot]->mutex);
    // LIFO push: nested work lands at the owner's hot end; thieves take the
    // back, which holds the oldest (outermost, coarsest) items.
    deques_[slot]->items.push_front(std::move(item));
    depth = deques_[slot]->items.size();
  }
  uint64_t seen = stat_max_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !stat_max_depth_.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
  pending_.fetch_add(1, std::memory_order_release);
  NotifyAll();
}

std::optional<Executor::WorkItem> Executor::TryAcquire(size_t slot) {
  {
    std::lock_guard<std::mutex> lock(deques_[slot]->mutex);
    if (!deques_[slot]->items.empty()) {
      WorkItem item = std::move(deques_[slot]->items.front());
      deques_[slot]->items.pop_front();
      pending_.fetch_sub(1, std::memory_order_release);
      return item;
    }
  }
  // Steal sweep: round-robin from the next slot, taking the back (FIFO).
  for (size_t k = 1; k < deques_.size(); ++k) {
    size_t victim = (slot + k) % deques_.size();
    std::lock_guard<std::mutex> lock(deques_[victim]->mutex);
    if (!deques_[victim]->items.empty()) {
      WorkItem item = std::move(deques_[victim]->items.back());
      deques_[victim]->items.pop_back();
      pending_.fetch_sub(1, std::memory_order_release);
      stat_steals_.fetch_add(1, std::memory_order_relaxed);
      return item;
    }
  }
  if (deques_.size() > 1) {
    stat_steal_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::nullopt;
}

void Executor::Execute(WorkItem& item) {
  stat_tasks_.fetch_add(1, std::memory_order_relaxed);
  if (item.job != nullptr) {
    // Chunk runner: claim chunks of the shared job until it is exhausted.
    while (RunOneChunk(*item.job)) {
    }
    return;
  }
  item.task();
}

bool Executor::HelpOnce() {
  std::optional<WorkItem> item = TryAcquire(HomeSlot());
  if (!item.has_value()) {
    return false;
  }
  Execute(*item);
  return true;
}

void Executor::NotifyAll() {
  // The empty critical section orders this notify after any concurrent
  // sleeper's predicate check, so a wakeup cannot be lost between a
  // predicate miss and the wait.
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  sleep_cv_.notify_all();
}

ExecutorStats Executor::Stats() const {
  ExecutorStats stats;
  stats.tasks_executed = stat_tasks_.load(std::memory_order_relaxed);
  stats.steals = stat_steals_.load(std::memory_order_relaxed);
  stats.steal_failures = stat_steal_failures_.load(std::memory_order_relaxed);
  stats.max_queue_depth = stat_max_depth_.load(std::memory_order_relaxed);
  return stats;
}

bool Executor::RunOneChunk(Job& job) {
  size_t begin = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
  if (begin >= job.n) {
    return false;
  }
  size_t end = std::min(job.n, begin + job.chunk);
  if (!job.failed.load(std::memory_order_relaxed)) {
    // The body runs with its owning executor as Current(): nested parallel
    // kernels (MSM window passes, batch accumulators) stay on the same pool
    // whether this thread is a worker or the participating submitter.
    Executor* previous = tls_current_executor;
    tls_current_executor = job.owner;
    try {
      (*job.body)(begin, end);
      tls_current_executor = previous;
    } catch (...) {
      tls_current_executor = previous;
      std::lock_guard<std::mutex> lock(job.mutex);
      if (!job.error) {
        job.error = std::current_exception();
      }
      job.failed.store(true, std::memory_order_relaxed);
    }
  }
  bool became_done = false;
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    job.completed += end - begin;
    if (job.completed == job.n) {
      job.done.store(true, std::memory_order_release);
      became_done = true;
    }
  }
  if (became_done) {
    // Submitters park on the pool's sleep condition (so they can also be
    // woken to help with new work); completion must signal it.
    job.owner->NotifyAll();
  }
  return true;
}

void Executor::WorkerLoop(size_t slot) {
  tls_worker_pool = this;
  tls_worker_slot = slot;
  for (;;) {
    if (std::optional<WorkItem> item = TryAcquire(slot)) {
      Execute(*item);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_.load(std::memory_order_acquire)) {
      // ParallelFor and TaskGraph::Wait both block their submitters, so no
      // unfinished work can be queued by the time the destructor runs.
      return;
    }
  }
}

void Executor::ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) {
    return;
  }
  // Serial executor, tiny loops, or no workers: run inline. Chunk boundaries
  // are invisible to callers, so this changes nothing observable.
  if (thread_count_ <= 1 || n == 1) {
    body(0, n);
    return;
  }

  auto job = std::make_shared<Job>();
  job->owner = this;
  job->n = n;
  // Over-decompose ~4x relative to the worker count so chunks of uneven cost
  // balance, but keep chunks whole for cache locality.
  job->chunk = std::max<size_t>(1, n / (thread_count_ * 4));
  job->body = &body;

  // One chunk runner per thread that could help (capped by the chunk count);
  // the submitting thread is its own runner below. A runner that arrives
  // after the job is exhausted claims nothing and retires immediately.
  const size_t chunks = (n + job->chunk - 1) / job->chunk;
  const size_t runners = std::min(thread_count_ - 1, chunks);
  for (size_t r = 0; r < runners; ++r) {
    PushItem(WorkItem{job, nullptr});
  }

  // The submitting thread drains its own job; nesting therefore always makes
  // progress even when every worker is busy elsewhere.
  while (RunOneChunk(*job)) {
  }
  // Help-first join: while stragglers finish our chunks, run other queued
  // work (their nested children, or sibling tasks of the same pool) instead
  // of idling a thread on a bare wait.
  HelpWhile([&] { return job->done.load(std::memory_order_acquire); });
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    if (job->error) {
      std::rethrow_exception(job->error);
    }
  }
}

Executor::Scope::Scope(Executor& executor) : previous_(tls_current_executor) {
  tls_current_executor = &executor;
}

Executor::Scope::~Scope() { tls_current_executor = previous_; }

Executor& Executor::Current() {
  return tls_current_executor != nullptr ? *tls_current_executor : Global();
}

Executor& Executor::Global() {
  static Executor* global = [] {
    size_t threads = 0;
    if (const char* env = std::getenv("VOTEGRAL_THREADS")) {
      long parsed = std::atol(env);
      if (parsed > 0) {
        threads = static_cast<size_t>(parsed);
      }
    }
    return new Executor(threads);
  }();
  return *global;
}

std::vector<std::pair<size_t, size_t>> Executor::Shards(size_t n, size_t max_shards) {
  std::vector<std::pair<size_t, size_t>> shards;
  if (n == 0) {
    return shards;
  }
  size_t count = std::min(n, std::max<size_t>(1, max_shards));
  shards.reserve(count);
  size_t base = n / count;
  size_t extra = n % count;  // first `extra` shards get one more element
  size_t begin = 0;
  for (size_t s = 0; s < count; ++s) {
    size_t end = begin + base + (s < extra ? 1 : 0);
    shards.emplace_back(begin, end);
    begin = end;
  }
  return shards;
}

TaskGraph::~TaskGraph() {
  // A graph abandoned without Wait() must not leave nodes referencing a
  // destroyed *this on the queues.
  Wait();
}

TaskGraph::NodeId TaskGraph::Submit(std::function<void()> task,
                                    std::span<const NodeId> deps) {
  NodeId id;
  bool ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = nodes_.size();
    nodes_.emplace_back();
    Node& node = nodes_.back();
    node.task = std::move(task);
    for (NodeId dep : deps) {
      Require(dep < id, "taskgraph: dependency on a later node");
      Node& d = nodes_[dep];
      if (!d.completed) {
        d.dependents.push_back(id);
        ++node.pending;
      } else if (d.failed) {
        node.skip = true;
      }
    }
    remaining_.fetch_add(1, std::memory_order_release);
    ready = node.pending == 0;
  }
  if (ready) {
    Schedule(id);
  }
  return id;
}

void TaskGraph::Schedule(NodeId id) {
  executor_.PushItem(Executor::WorkItem{nullptr, [this, id] { RunNode(id); }});
}

void TaskGraph::RunNode(NodeId id) {
  bool skip;
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Node& node = nodes_[id];
    skip = node.skip;
    task = std::move(node.task);
    node.task = nullptr;
  }
  bool ok = !skip;
  if (!skip) {
    // Bind the owning pool as Current() so nested kernels in the body
    // (ParallelFor, MSM passes) fan out on it, exactly as chunk bodies do.
    Executor* previous = tls_current_executor;
    tls_current_executor = &executor_;
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      // Lowest node id wins: submission order, not completion order, so the
      // rethrown failure is deterministic under any steal schedule.
      if (!first_error_ || id < first_error_id_) {
        first_error_ = std::current_exception();
        first_error_id_ = id;
      }
      ok = false;
    }
    tls_current_executor = previous;
  }

  std::vector<NodeId> ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Node& node = nodes_[id];
    node.completed = true;
    node.failed = !ok;
    for (NodeId dep_id : node.dependents) {
      Node& dependent = nodes_[dep_id];
      if (!ok) {
        dependent.skip = true;  // cascades: a skipped node also "fails"
      }
      if (--dependent.pending == 0) {
        ready.push_back(dep_id);
      }
    }
    node.dependents.clear();
  }
  for (NodeId dep_id : ready) {
    Schedule(dep_id);
  }
  // The decrement may release a Wait()er that then destroys the graph, so
  // it must be the last access of *this; notify through a local reference.
  Executor& pool = executor_;
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    pool.NotifyAll();
  }
}

void TaskGraph::Wait() {
  executor_.HelpWhile([&] { return remaining_.load(std::memory_order_acquire) == 0; });
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = first_error_;
    first_error_ = nullptr;
    first_error_id_ = SIZE_MAX;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

std::optional<size_t> FirstMarked(std::span<const uint8_t> flags) {
  for (size_t i = 0; i < flags.size(); ++i) {
    if (flags[i]) {
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace votegral
