#include "src/common/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "src/common/status.h"

namespace votegral {

namespace {

// Innermost Scope-bound executor on this thread (set while chunk bodies run
// on pool threads, too, so nested kernels inherit the right pool).
thread_local Executor* tls_current_executor = nullptr;

}  // namespace

// One ParallelFor invocation: chunks are claimed by atomic increment, so a
// chunk runs on whichever thread gets to it first while results stay
// position-addressed and deterministic.
struct Executor::Job {
  Executor* owner = nullptr;
  size_t n = 0;
  size_t chunk = 1;
  const std::function<void(size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next{0};        // next unclaimed chunk start
  std::atomic<bool> failed{false};    // first exception recorded; skip rest
  std::atomic<bool> done{false};      // completed == n (set under mutex)

  std::mutex mutex;
  size_t completed = 0;               // completed indices, guarded by mutex
  std::exception_ptr error;           // first chunk exception, guarded by mutex
};

Executor::Executor(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  thread_count_ = threads;
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool Executor::RunOneChunk(Job& job) {
  size_t begin = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
  if (begin >= job.n) {
    return false;
  }
  size_t end = std::min(job.n, begin + job.chunk);
  if (!job.failed.load(std::memory_order_relaxed)) {
    // The body runs with its owning executor as Current(): nested parallel
    // kernels (MSM window passes, batch accumulators) stay on the same pool
    // whether this thread is a worker or the participating submitter.
    Executor* previous = tls_current_executor;
    tls_current_executor = job.owner;
    try {
      (*job.body)(begin, end);
      tls_current_executor = previous;
    } catch (...) {
      tls_current_executor = previous;
      std::lock_guard<std::mutex> lock(job.mutex);
      if (!job.error) {
        job.error = std::current_exception();
      }
      job.failed.store(true, std::memory_order_relaxed);
    }
  }
  bool became_done = false;
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    job.completed += end - begin;
    if (job.completed == job.n) {
      job.done.store(true, std::memory_order_release);
      became_done = true;
    }
  }
  if (became_done) {
    // Submitters park on the owner's queue condition (so they can also be
    // woken to help with new jobs); completion must signal it.
    job.owner->queue_cv_.notify_all();
  }
  return true;
}

void Executor::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) {
        return;
      }
      job = queue_.front();
    }
    if (!RunOneChunk(*job)) {
      // Exhausted: retire the job from the queue if it is still enqueued.
      std::lock_guard<std::mutex> lock(queue_mutex_);
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->get() == job.get()) {
          queue_.erase(it);
          break;
        }
      }
    }
  }
}

void Executor::ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) {
    return;
  }
  // Serial executor, tiny loops, or no workers: run inline. Chunk boundaries
  // are invisible to callers, so this changes nothing observable.
  if (thread_count_ <= 1 || n == 1) {
    body(0, n);
    return;
  }

  auto job = std::make_shared<Job>();
  job->owner = this;
  job->n = n;
  // Over-decompose ~4x relative to the worker count so chunks of uneven cost
  // balance, but keep chunks whole for cache locality.
  job->chunk = std::max<size_t>(1, n / (thread_count_ * 4));
  job->body = &body;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    Require(!stopping_, "executor: submit after shutdown");
    // LIFO: nested jobs go to the front so idle workers help the deepest
    // (and therefore blocking) submission first.
    queue_.push_front(job);
  }
  queue_cv_.notify_all();

  // The submitting thread drains its own job; nesting therefore always makes
  // progress even when every worker is busy elsewhere.
  while (RunOneChunk(*job)) {
  }
  {
    // Drop the job from the queue (the submitter usually exhausts it first).
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->get() == job.get()) {
        queue_.erase(it);
        break;
      }
    }
  }
  // Help-first join: while stragglers finish our chunks, run chunks of other
  // queued jobs (their nested children, or sibling tasks of the same pool)
  // instead of idling a thread on a bare wait.
  while (!job->done.load(std::memory_order_acquire)) {
    std::shared_ptr<Job> other;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      if (queue_.empty()) {
        queue_cv_.wait(lock, [&] {
          return !queue_.empty() || job->done.load(std::memory_order_acquire);
        });
        continue;
      }
      other = queue_.front();
    }
    if (!RunOneChunk(*other)) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->get() == other.get()) {
          queue_.erase(it);
          break;
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    if (job->error) {
      std::rethrow_exception(job->error);
    }
  }
}

Executor::Scope::Scope(Executor& executor) : previous_(tls_current_executor) {
  tls_current_executor = &executor;
}

Executor::Scope::~Scope() { tls_current_executor = previous_; }

Executor& Executor::Current() {
  return tls_current_executor != nullptr ? *tls_current_executor : Global();
}

Executor& Executor::Global() {
  static Executor* global = [] {
    size_t threads = 0;
    if (const char* env = std::getenv("VOTEGRAL_THREADS")) {
      long parsed = std::atol(env);
      if (parsed > 0) {
        threads = static_cast<size_t>(parsed);
      }
    }
    return new Executor(threads);
  }();
  return *global;
}

std::vector<std::pair<size_t, size_t>> Executor::Shards(size_t n, size_t max_shards) {
  std::vector<std::pair<size_t, size_t>> shards;
  if (n == 0) {
    return shards;
  }
  size_t count = std::min(n, std::max<size_t>(1, max_shards));
  shards.reserve(count);
  size_t base = n / count;
  size_t extra = n % count;  // first `extra` shards get one more element
  size_t begin = 0;
  for (size_t s = 0; s < count; ++s) {
    size_t end = begin + base + (s < extra ? 1 : 0);
    shards.emplace_back(begin, end);
    begin = end;
  }
  return shards;
}

std::optional<size_t> FirstMarked(std::span<const uint8_t> flags) {
  for (size_t i = 0; i < flags.size(); ++i) {
    if (flags[i]) {
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace votegral
