#include "src/common/faults.h"

#include <cmath>
#include <cstring>

#include "src/common/bytes.h"
#include "src/crypto/sha256.h"

namespace votegral {

namespace {

constexpr std::string_view kAllPoints[] = {
    faults::kAuthorityComputeShare, faults::kLedgerAppend, faults::kLedgerSeal,
    faults::kMixShuffle,            faults::kTagApply,     faults::kTallyDedup,
    faults::kNetSend,               faults::kNetRecv,      faults::kReplicaApply,
};

// PRF(seed, point, kind, scope, key) -> uniform uint64. SHA-256 with a fixed
// domain separator, so decisions are stable identifiers of their inputs and
// independent of call order, thread count, or any protocol Rng stream.
uint64_t DecisionWord(uint64_t seed, std::string_view point, FaultKind kind,
                      uint64_t scope, uint64_t key) {
  Sha256 h;
  h.Update(AsBytes(std::string_view("votegral/faults/decision/v1")));
  uint8_t buf[8];
  StoreLe64(buf, seed);
  h.Update(buf);
  StoreLe64(buf, point.size());
  h.Update(buf);
  h.Update(AsBytes(point));
  const uint8_t kind_byte = static_cast<uint8_t>(kind);
  h.Update({&kind_byte, 1});
  StoreLe64(buf, scope);
  h.Update(buf);
  StoreLe64(buf, key);
  h.Update(buf);
  const auto digest = h.Finalize();
  uint64_t word = 0;
  std::memcpy(&word, digest.data(), sizeof(word));
  return word;
}

// rate in [0,1] -> threshold on a uniform 64-bit word.
uint64_t RateThreshold(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return ~uint64_t{0};
  const long double scaled =
      static_cast<long double>(rate) * static_cast<long double>(~uint64_t{0});
  return static_cast<uint64_t>(scaled);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDelay: return "delay";
  }
  return "unknown";
}

std::span<const std::string_view> RegisteredFaultPoints() {
  return kAllPoints;
}

FaultPlan& FaultPlan::Add(FaultRule rule) {
  Require(!rule.point.empty(), "FaultPlan::Add: empty point name");
  Require(rule.kind != FaultKind::kNone, "FaultPlan::Add: kNone is not injectable");
  Require(rule.rate >= 0.0 && rule.rate <= 1.0, "FaultPlan::Add: rate out of [0,1]");
  Require(rule.delay_ms_min <= rule.delay_ms_max,
          "FaultPlan::Add: delay_ms_min > delay_ms_max");
  rules_.push_back(std::move(rule));
  return *this;
}

FaultPlan& FaultPlan::Crash(std::string_view point, double rate, uint64_t scope) {
  return Add({std::string(point), FaultKind::kCrash, rate, scope, 0, 0});
}

FaultPlan& FaultPlan::Timeout(std::string_view point, double rate, uint64_t scope) {
  return Add({std::string(point), FaultKind::kTimeout, rate, scope, 0, 0});
}

FaultPlan& FaultPlan::Corrupt(std::string_view point, double rate, uint64_t scope) {
  return Add({std::string(point), FaultKind::kCorrupt, rate, scope, 0, 0});
}

FaultPlan& FaultPlan::Delay(std::string_view point, double rate,
                            uint64_t delay_ms_min, uint64_t delay_ms_max,
                            uint64_t scope) {
  return Add({std::string(point), FaultKind::kDelay, rate, scope, delay_ms_min,
              delay_ms_max});
}

FaultDecision FaultPlan::Decide(std::string_view point, uint64_t scope,
                                uint64_t key) const {
  for (const FaultRule& rule : rules_) {
    if (rule.point != point) continue;
    if (rule.scope != kAnyScope && rule.scope != scope) continue;
    // Crashes are permanent per (point, scope): drop the operation key so
    // every operation observing a crashed entity agrees it is down.
    const uint64_t decision_key = rule.kind == FaultKind::kCrash ? 0 : key;
    const uint64_t word =
        DecisionWord(seed_, rule.point, rule.kind, scope, decision_key);
    if (word <= RateThreshold(rule.rate) && rule.rate > 0.0) {
      FaultDecision decision{rule.kind, 0};
      if (rule.kind == FaultKind::kDelay) {
        const uint64_t span = rule.delay_ms_max - rule.delay_ms_min + 1;
        // Second PRF draw for the latency so it is independent of the
        // fire/no-fire decision bit.
        const uint64_t latency_word =
            DecisionWord(seed_ ^ 0x9E3779B97F4A7C15ull, rule.point, rule.kind,
                         scope, key);
        decision.delay_ms = rule.delay_ms_min + latency_word % span;
      }
      return decision;
    }
  }
  return {};
}

std::atomic<bool> FaultInjector::armed_{false};

FaultInjector& FaultInjector::Instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(FaultPlan plan) {
  Require(!Armed(), "FaultInjector::Arm: a plan is already armed");
  plan_ = std::move(plan);
  counters_.clear();
  for (std::string_view point : kAllPoints) {
    // Value-initialize the atomics in place; map nodes never move afterwards.
    counters_.emplace(std::piecewise_construct,
                      std::forward_as_tuple(point), std::forward_as_tuple());
    for (auto& slot : counters_.find(point)->second) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_release);
  plan_ = FaultPlan();
}

FaultDecision FaultInjector::ProbeArmed(std::string_view point, uint64_t scope,
                                        uint64_t key) {
  const FaultDecision decision = plan_.Decide(point, scope, key);
  if (!decision.none()) {
    auto it = counters_.find(point);
    if (it != counters_.end()) {
      it->second[static_cast<size_t>(decision.kind)].fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  return decision;
}

uint64_t FaultInjector::InjectionCount(std::string_view point) const {
  auto it = counters_.find(point);
  if (it == counters_.end()) return 0;
  uint64_t total = 0;
  for (const auto& slot : it->second) {
    total += slot.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FaultInjector::TotalInjections() const {
  uint64_t total = 0;
  for (const auto& [point, slots] : counters_) {
    for (const auto& slot : slots) {
      total += slot.load(std::memory_order_relaxed);
    }
  }
  return total;
}

}  // namespace votegral
