#include "src/common/clock.h"

#include <sys/resource.h>

#include "src/common/status.h"

namespace votegral {

namespace {

double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
}

}  // namespace

CpuSample CpuTimer::Now() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return {TimevalSeconds(usage.ru_utime), TimevalSeconds(usage.ru_stime)};
}

void VirtualClock::Advance(double seconds) {
  Require(seconds >= 0.0, "VirtualClock::Advance: negative duration");
  seconds_ += seconds;
}

}  // namespace votegral
