// Minimal framing for protocol messages: length-prefixed fields with bounds
// checking. Every TRIP/Votegral message (tickets, receipts, ballots, ledger
// entries) serializes through these so that byte layouts are explicit and the
// QR-code payload sizes used by the peripheral model are realistic.
#ifndef SRC_COMMON_SERDE_H_
#define SRC_COMMON_SERDE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace votegral {

// Appends primitive values to an owned buffer. All integers little-endian.
class ByteWriter {
 public:
  ByteWriter() = default;

  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);

  // Raw bytes without a length prefix (for fixed-size fields like 32-byte
  // group elements whose size is part of the schema).
  void Fixed(std::span<const uint8_t> data);

  // Length-prefixed (u32) variable-size field.
  void Var(std::span<const uint8_t> data);

  // Length-prefixed UTF-8 string.
  void Str(std::string_view s);

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

// Reads primitive values back out, throwing ProtocolError on truncation.
// Deserialization of attacker-supplied bytes is wrapped by callers that
// convert ProtocolError into a Status (see e.g. trip::Vsd::Activate).
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();

  // Reads exactly `n` bytes.
  Bytes Fixed(size_t n);

  // Reads a u32-length-prefixed field.
  Bytes Var();

  // Reads a u32-length-prefixed string.
  std::string Str();

  // True when the whole buffer was consumed; messages must be exact.
  bool AtEnd() const { return pos_ == data_.size(); }

  // Throws unless the buffer was fully consumed.
  void ExpectEnd() const { Require(AtEnd(), "ByteReader: trailing bytes"); }

 private:
  std::span<const uint8_t> Need(size_t n);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace votegral

#endif  // SRC_COMMON_SERDE_H_
