#include "src/common/rng.h"

#include "src/common/status.h"

namespace votegral {

std::vector<std::array<uint8_t, 32>> ForkRngSeeds(Rng& parent, size_t count) {
  std::vector<std::array<uint8_t, 32>> seeds(count);
  for (auto& seed : seeds) {
    parent.Fill(seed);
  }
  return seeds;
}

uint64_t Rng::Uniform(uint64_t bound) {
  Require(bound > 0, "Rng::Uniform: bound must be positive");
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  uint8_t buf[8];
  for (;;) {
    Fill(buf);
    uint64_t v = LoadLe64(buf);
    if (v < limit || limit == 0) {
      return v % bound;
    }
  }
}

}  // namespace votegral
