// Work-pool executor for the staged parallel tally pipeline.
//
// Design constraints, in order:
//  1. *Determinism*: parallel protocol stages must be byte-reproducible
//     regardless of thread count. The executor therefore never makes
//     scheduling visible to callers — ParallelFor/ParallelMap write results
//     at fixed positions, and stages that consume randomness partition their
//     work into `Shards` whose boundaries depend only on the input size
//     (never on the thread count) and give each shard a forked DRBG stream
//     (see ForkRngSeeds in src/common/rng.h).
//  2. *Nested-submit safety*: MSM bucket passes run inside mixnet shard
//     tasks which run inside tally stages. A thread that waits for a job it
//     submitted keeps executing chunks of that job itself, so nesting can
//     never deadlock and a 1-thread executor degrades to plain loops.
//  3. *Exception transparency*: the first exception thrown by any chunk is
//     rethrown from the submitting call (ProtocolError propagation).
#ifndef SRC_COMMON_EXECUTOR_H_
#define SRC_COMMON_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

namespace votegral {

class Executor {
 public:
  // `threads` is the total parallelism including the submitting thread;
  // 0 selects std::thread::hardware_concurrency(). An Executor(1) runs
  // everything inline and spawns no workers.
  explicit Executor(size_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t threads() const { return thread_count_; }

  // Runs body(begin, end) over a partition of [0, n). Blocks until every
  // chunk has completed; rethrows the first chunk exception. The submitting
  // thread participates, so this is safe to call from inside another
  // ParallelFor body.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body);

  // Per-index convenience over ParallelFor.
  template <typename F>
  void ParallelForEach(size_t n, F&& f) {
    ParallelFor(n, [&f](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        f(i);
      }
    });
  }

  // result[i] = f(i), with result order fixed by index (deterministic
  // regardless of which thread computed which entry). R must be default
  // constructible.
  template <typename R, typename F>
  std::vector<R> ParallelMap(size_t n, F&& f) {
    std::vector<R> result(n);
    ParallelForEach(n, [&](size_t i) { result[i] = f(i); });
    return result;
  }

  // Process-wide pool, sized from hardware_concurrency (override with the
  // VOTEGRAL_THREADS environment variable, read once). Protocol entry points
  // default to this instance; tests construct local executors to pin the
  // thread count.
  static Executor& Global();

  // Scoped binding of "the executor parallel kernels below this frame should
  // use". Layers that cannot take an Executor parameter without contaminating
  // their API (the MSM engine, batch verification) read Current(); protocol
  // entry points that accept an injected executor bind it for their duration,
  // so `threads=1` really means serial all the way down and a dedicated pool
  // never oversubscribes against the global one. Bodies running on pool
  // threads automatically see their owning executor as Current().
  class Scope {
   public:
    explicit Scope(Executor& executor);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Executor* previous_;
  };

  // The innermost bound executor on this thread; Global() when none.
  static Executor& Current();

  // Partitions [0, n) into at most `max_shards` contiguous, balanced
  // [begin, end) ranges. The partition depends only on n and max_shards —
  // never on the thread count — so per-shard forked DRBG streams consume
  // identical bytes under any parallelism (the reproducibility contract of
  // the tally pipeline).
  static std::vector<std::pair<size_t, size_t>> Shards(size_t n, size_t max_shards);

  // Default shard count for randomness-consuming pipeline stages: enough
  // slack for any realistic worker count without fragmenting small batches.
  static constexpr size_t kRngShards = 64;

 private:
  struct Job;

  void WorkerLoop();

  // Claims and runs one chunk of `job`. Returns false when the job has no
  // unclaimed chunks left.
  static bool RunOneChunk(Job& job);

  size_t thread_count_ = 1;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;  // active jobs with unclaimed chunks
  bool stopping_ = false;
};

// Deterministic localization helper for parallel verification passes: scans
// positional failure flags written by pool workers and returns the lowest
// marked index, so "first failure" is identical at any thread count.
std::optional<size_t> FirstMarked(std::span<const uint8_t> flags);

// The canonical parallel-check-then-localize shape: runs ok(i) for every
// i in [0, n) on the executor and returns the lowest index whose check
// failed. Callers re-derive the exact error at that index serially, keeping
// reason strings identical at any thread count.
template <typename F>
std::optional<size_t> ParallelFirstFailure(Executor& executor, size_t n, F&& ok) {
  std::vector<uint8_t> bad(n, 0);
  executor.ParallelForEach(n, [&](size_t i) {
    if (!ok(i)) {
      bad[i] = 1;
    }
  });
  return FirstMarked(bad);
}

}  // namespace votegral

#endif  // SRC_COMMON_EXECUTOR_H_
