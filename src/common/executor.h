// Work-stealing executor and dependency-counting task graph for the
// dataflow tally pipeline.
//
// Design constraints, in order:
//  1. *Determinism*: parallel protocol stages must be byte-reproducible
//     regardless of thread count. The executor therefore never makes
//     scheduling visible to callers — ParallelFor/ParallelMap write results
//     at fixed positions, TaskGraph nodes commit their outputs positionally,
//     and stages that consume randomness partition their work into `Shards`
//     whose boundaries depend only on the input size (never on the thread
//     count) and give each shard a forked DRBG stream (see ForkRngSeeds in
//     src/common/rng.h).
//  2. *Nested-submit safety*: MSM bucket passes run inside mixnet shard
//     tasks which run inside tally graph nodes. A thread that waits for
//     work it submitted keeps executing queued work itself (help-first
//     joining), so nesting can never deadlock and a 1-thread executor
//     degrades to plain loops.
//  3. *Exception transparency*: the first exception thrown by any chunk is
//     rethrown from the submitting call (ProtocolError propagation); a task
//     graph rethrows the failed node with the lowest id and skips its
//     dependents.
//
// Scheduling: every thread owns a deque. Owners push and pop at the front
// (LIFO — the nested, cache-hot end); idle threads steal from the back of
// other deques (FIFO — the oldest, coarsest work). External submitters share
// deque 0. Steal/execution counters are exposed read-only via Stats() for
// the occupancy reporting of bench/fig_stream_tally.
#ifndef SRC_COMMON_EXECUTOR_H_
#define SRC_COMMON_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

namespace votegral {

class TaskGraph;

// Read-only scheduler counters (monotonic since construction; relaxed
// atomics, so a snapshot taken while work is in flight is approximate).
struct ExecutorStats {
  uint64_t tasks_executed = 0;   // queue items run (chunk runners + graph nodes)
  uint64_t steals = 0;           // items taken from another thread's deque
  uint64_t steal_failures = 0;   // full victim sweeps that found nothing
  uint64_t max_queue_depth = 0;  // deepest any single deque has been
};

class Executor {
 public:
  // `threads` is the total parallelism including the submitting thread;
  // 0 selects std::thread::hardware_concurrency(). An Executor(1) runs
  // everything inline and spawns no workers.
  explicit Executor(size_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t threads() const { return thread_count_; }

  // Runs body(begin, end) over a partition of [0, n). Blocks until every
  // chunk has completed; rethrows the first chunk exception. The submitting
  // thread participates, so this is safe to call from inside another
  // ParallelFor body or a TaskGraph node.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body);

  // Per-index convenience over ParallelFor.
  template <typename F>
  void ParallelForEach(size_t n, F&& f) {
    ParallelFor(n, [&f](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        f(i);
      }
    });
  }

  // result[i] = f(i), with result order fixed by index (deterministic
  // regardless of which thread computed which entry). R must be default
  // constructible.
  template <typename R, typename F>
  std::vector<R> ParallelMap(size_t n, F&& f) {
    std::vector<R> result(n);
    ParallelForEach(n, [&](size_t i) { result[i] = f(i); });
    return result;
  }

  // Snapshot of the scheduler counters.
  ExecutorStats Stats() const;

  // Process-wide pool, sized from hardware_concurrency (override with the
  // VOTEGRAL_THREADS environment variable, read once). Protocol entry points
  // default to this instance; tests construct local executors to pin the
  // thread count.
  static Executor& Global();

  // Scoped binding of "the executor parallel kernels below this frame should
  // use". Layers that cannot take an Executor parameter without contaminating
  // their API (the MSM engine, batch verification) read Current(); protocol
  // entry points that accept an injected executor bind it for their duration,
  // so `threads=1` really means serial all the way down and a dedicated pool
  // never oversubscribes against the global one. Bodies running on pool
  // threads automatically see their owning executor as Current().
  class Scope {
   public:
    explicit Scope(Executor& executor);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Executor* previous_;
  };

  // The innermost bound executor on this thread; Global() when none.
  static Executor& Current();

  // Partitions [0, n) into at most `max_shards` contiguous, balanced
  // [begin, end) ranges. The partition depends only on n and max_shards —
  // never on the thread count — so per-shard forked DRBG streams consume
  // identical bytes under any parallelism (the reproducibility contract of
  // the tally pipeline).
  static std::vector<std::pair<size_t, size_t>> Shards(size_t n, size_t max_shards);

  // Default shard count for randomness-consuming pipeline stages: enough
  // slack for any realistic worker count without fragmenting small batches.
  static constexpr size_t kRngShards = 64;

 private:
  friend class TaskGraph;

  struct Job;

  // One queue entry: either a chunk runner for a ParallelFor job (runs
  // chunks until the job is exhausted) or a plain task (a TaskGraph node).
  struct WorkItem {
    std::shared_ptr<Job> job;
    std::function<void()> task;
  };

  // A mutex-guarded per-thread deque. Lock-free deques buy nothing here —
  // item bodies (re-encryptions, share requests) dwarf the lock, and the
  // mutex keeps the scheduler trivially TSan-clean.
  struct WorkDeque {
    std::mutex mutex;
    std::deque<WorkItem> items;
  };

  void WorkerLoop(size_t slot);

  // The calling thread's own deque slot: its worker slot on this pool, or
  // the shared slot 0 for external submitters and other pools' workers.
  size_t HomeSlot() const;

  // Pushes to the front of the caller's home deque and wakes sleepers.
  void PushItem(WorkItem item);

  // Pop own front, else steal another deque's back. nullopt when every
  // deque is empty.
  std::optional<WorkItem> TryAcquire(size_t slot);

  // Runs one queue item (with stats accounting).
  void Execute(WorkItem& item);

  // Acquire-and-execute one item; false when nothing was queued.
  bool HelpOnce();

  // Help-first join: execute queued work until done() holds, sleeping only
  // when the queues are empty. Callers must arrange that completion of the
  // awaited condition calls NotifyAll().
  template <typename DonePredicate>
  void HelpWhile(const DonePredicate& done) {
    const size_t slot = HomeSlot();
    while (!done()) {
      if (std::optional<WorkItem> item = TryAcquire(slot)) {
        Execute(*item);
        continue;
      }
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      sleep_cv_.wait(lock, [&] {
        return done() || pending_.load(std::memory_order_acquire) > 0;
      });
    }
  }

  // Wakes every sleeping worker/waiter (new work or a completion).
  void NotifyAll();

  // Claims and runs one chunk of `job`. Returns false when the job has no
  // unclaimed chunks left.
  static bool RunOneChunk(Job& job);

  size_t thread_count_ = 1;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkDeque>> deques_;  // [0] shared, [1..] workers

  // Queued-item count (not chunks): the sleep predicate. Pushes increment,
  // successful acquires decrement; the empty-queue sleep below is guarded by
  // sleep_mutex_ so a push between check and wait cannot be lost.
  std::atomic<size_t> pending_{0};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stopping_{false};

  // Stats (relaxed; monotonic).
  std::atomic<uint64_t> stat_tasks_{0};
  std::atomic<uint64_t> stat_steals_{0};
  std::atomic<uint64_t> stat_steal_failures_{0};
  std::atomic<uint64_t> stat_max_depth_{0};
};

// A dependency-counting task graph on an Executor: Submit() wires a node
// under its dependencies and schedules it the moment the last one finishes,
// so independent flows overlap at chunk granularity instead of meeting at
// stage-wide barriers (the dataflow tally pipeline sits on this, with
// ParallelFor-based kernels free to run inside node bodies).
//
// Determinism: the graph never decides *what* runs, only *when* — node
// bodies write results positionally and take any randomness from seeds
// assigned at graph-build time, so outputs are byte-identical at any thread
// count and under any steal order.
//
// Failure: a node that throws marks the graph failed; its transitive
// dependents are skipped (their bodies never run — a failed dependency's
// outputs are unusable garbage). Wait() rethrows the failed node with the
// lowest id, which is deterministic because node ids follow submission
// order.
//
// Thread-safety: Submit() and Wait() may be called from any thread,
// including from inside node bodies; Wait() helps execute queued work while
// waiting (no idle blocking, no deadlock under nesting).
class TaskGraph {
 public:
  using NodeId = size_t;

  explicit TaskGraph(Executor& executor) : executor_(executor) {}
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  // Adds a node that runs `task` once every dependency has completed
  // successfully. Dependencies must be earlier node ids. Returns the new
  // node's id (submission order: 0, 1, 2, ...).
  NodeId Submit(std::function<void()> task, std::span<const NodeId> deps = {});
  NodeId Submit(std::function<void()> task, std::initializer_list<NodeId> deps) {
    return Submit(std::move(task), std::span<const NodeId>(deps.begin(), deps.end()));
  }

  // Blocks until every submitted node has completed or been skipped,
  // executing queued work while waiting. Rethrows the lowest-id failed
  // node's exception, if any. The graph may be reused (more Submits) after
  // a successful Wait.
  void Wait();

 private:
  struct Node {
    std::function<void()> task;
    size_t pending = 0;             // incomplete dependencies
    bool completed = false;
    bool failed = false;            // threw, or skipped via a failed dependency
    bool skip = false;              // do not run the body
    std::vector<NodeId> dependents;
  };

  void Schedule(NodeId id);
  void RunNode(NodeId id);

  Executor& executor_;
  std::mutex mutex_;                // guards nodes_ and error bookkeeping
  std::deque<Node> nodes_;
  std::atomic<size_t> remaining_{0};
  std::exception_ptr first_error_;
  NodeId first_error_id_ = SIZE_MAX;
};

// Deterministic localization helper for parallel verification passes: scans
// positional failure flags written by pool workers and returns the lowest
// marked index, so "first failure" is identical at any thread count.
std::optional<size_t> FirstMarked(std::span<const uint8_t> flags);

// The canonical parallel-check-then-localize shape: runs ok(i) for every
// i in [0, n) on the executor and returns the lowest index whose check
// failed. Callers re-derive the exact error at that index serially, keeping
// reason strings identical at any thread count.
template <typename F>
std::optional<size_t> ParallelFirstFailure(Executor& executor, size_t n, F&& ok) {
  std::vector<uint8_t> bad(n, 0);
  executor.ParallelForEach(n, [&](size_t i) {
    if (!ok(i)) {
      bad[i] = 1;
    }
  });
  return FirstMarked(bad);
}

}  // namespace votegral

#endif  // SRC_COMMON_EXECUTOR_H_
