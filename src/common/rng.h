// Randomness interface. Every protocol component takes an `Rng&` so tests and
// benchmarks are reproducible (seeded ChaCha20 DRBG) while examples can use a
// system-entropy-seeded instance. Implementations live in src/crypto/drbg.h.
//
// Parallel stages fork per-shard child streams with ForkRngSeeds: the parent
// stream is consumed *sequentially* (one 32-byte draw per shard, in shard
// order) and each shard's work then runs on its own ChaChaRng(seed), so the
// bytes any shard sees are independent of how shards are scheduled across
// threads. Combined with thread-count-independent shard boundaries
// (Executor::Shards), this keeps mixing, tagging and decryption
// byte-reproducible under any parallelism.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/bytes.h"

namespace votegral {

// Abstract byte-stream randomness source.
class Rng {
 public:
  virtual ~Rng() = default;

  // Fills `out` with random bytes.
  virtual void Fill(std::span<uint8_t> out) = 0;

  // Convenience: returns `n` random bytes.
  Bytes RandomBytes(size_t n) {
    Bytes out(n);
    Fill(out);
    return out;
  }

  // Uniform integer in [0, bound) via rejection sampling. `bound` must be >0.
  uint64_t Uniform(uint64_t bound);
};

// Draws `count` independent 32-byte child seeds from `parent` in one
// sequential pass. Feed each seed to a ChaChaRng to get the forked child
// streams described in the header comment. The parent's stream position
// advances by exactly 32*count bytes regardless of what the children are
// later used for.
std::vector<std::array<uint8_t, 32>> ForkRngSeeds(Rng& parent, size_t count);

}  // namespace votegral

#endif  // SRC_COMMON_RNG_H_
