// Randomness interface. Every protocol component takes an `Rng&` so tests and
// benchmarks are reproducible (seeded ChaCha20 DRBG) while examples can use a
// system-entropy-seeded instance. Implementations live in src/crypto/drbg.h.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace votegral {

// Abstract byte-stream randomness source.
class Rng {
 public:
  virtual ~Rng() = default;

  // Fills `out` with random bytes.
  virtual void Fill(std::span<uint8_t> out) = 0;

  // Convenience: returns `n` random bytes.
  Bytes RandomBytes(size_t n) {
    Bytes out(n);
    Fill(out);
    return out;
  }

  // Uniform integer in [0, bound) via rejection sampling. `bound` must be >0.
  uint64_t Uniform(uint64_t bound);
};

}  // namespace votegral

#endif  // SRC_COMMON_RNG_H_
