// Outcome<T>: a Status plus a value present exactly when the status is OK.
// Used by protocol actors whose failures are expected values (bad MAC, wrong
// envelope symbol, tampered receipt) that callers and tests branch on.
#ifndef SRC_COMMON_OUTCOME_H_
#define SRC_COMMON_OUTCOME_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/status.h"

namespace votegral {

template <typename T>
struct Outcome {
  Status status = Status::Ok();
  std::optional<T> value;

  static Outcome Ok(T v) { return Outcome{Status::Ok(), std::move(v)}; }
  static Outcome Fail(std::string reason) {
    return Outcome{Status::Error(std::move(reason)), std::nullopt};
  }
  static Outcome Fail(StatusCode code, std::string reason) {
    return Outcome{Status::Error(code, std::move(reason)), std::nullopt};
  }
  static Outcome Fail(Status failed) {
    if (failed.ok()) {
      throw ProtocolError("Outcome::Fail: status is OK");
    }
    return Outcome{std::move(failed), std::nullopt};
  }

  bool ok() const { return status.ok(); }

  // Value access; misuse (access on failure) is a programming error. The
  // thrown diagnostic carries the underlying failure so a crashed caller
  // reports *why* the outcome failed, not just that it was dereferenced.
  T& operator*() {
    RequireHasValue();
    return *value;
  }
  const T& operator*() const {
    RequireHasValue();
    return *value;
  }
  T* operator->() { return &**this; }
  const T* operator->() const { return &**this; }

 private:
  void RequireHasValue() const {
    if (!value.has_value()) {
      throw ProtocolError("Outcome: dereference of failed outcome: [" +
                          std::string(StatusCodeName(status.code())) + "] " +
                          status.reason());
    }
  }
};

}  // namespace votegral

#endif  // SRC_COMMON_OUTCOME_H_
