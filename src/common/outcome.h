// Outcome<T>: a Status plus a value present exactly when the status is OK.
// Used by protocol actors whose failures are expected values (bad MAC, wrong
// envelope symbol, tampered receipt) that callers and tests branch on.
#ifndef SRC_COMMON_OUTCOME_H_
#define SRC_COMMON_OUTCOME_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/status.h"

namespace votegral {

template <typename T>
struct Outcome {
  Status status = Status::Ok();
  std::optional<T> value;

  static Outcome Ok(T v) { return Outcome{Status::Ok(), std::move(v)}; }
  static Outcome Fail(std::string reason) {
    return Outcome{Status::Error(std::move(reason)), std::nullopt};
  }

  bool ok() const { return status.ok(); }

  // Value access; misuse (access on failure) is a programming error.
  T& operator*() {
    Require(value.has_value(), "Outcome: dereference of failed outcome");
    return *value;
  }
  const T& operator*() const {
    Require(value.has_value(), "Outcome: dereference of failed outcome");
    return *value;
  }
  T* operator->() { return &**this; }
  const T* operator->() const { return &**this; }
};

}  // namespace votegral

#endif  // SRC_COMMON_OUTCOME_H_
