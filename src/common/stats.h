// Descriptive statistics for benchmark reporting (the paper reports medians
// over 10 registration runs; Fig. 4 uses per-component medians).
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace votegral {

// Summary of a sample of measurements (seconds, operations, ...).
struct StatSummary {
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

// Median of `values` (average of middle two for even sizes). Empty input is a
// programming error.
double Median(std::vector<double> values);

// p-th percentile (0 <= p <= 100) using linear interpolation.
double Percentile(std::vector<double> values, double p);

// Computes a full summary of `values`.
StatSummary Summarize(const std::vector<double>& values);

}  // namespace votegral

#endif  // SRC_COMMON_STATS_H_
