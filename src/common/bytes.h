// Byte-buffer helpers: hex encoding, constant-time comparison, little-endian
// integer packing. These are the lowest-level utilities in the repository and
// must stay dependency-free.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace votegral {

// The repository-wide owned byte buffer type.
using Bytes = std::vector<uint8_t>;

// Encodes `data` as lowercase hex.
std::string HexEncode(std::span<const uint8_t> data);

// Decodes a hex string (case-insensitive, even length). Throws ProtocolError
// on malformed input — hex literals in this codebase are programmer-supplied.
Bytes HexDecode(std::string_view hex);

// Constant-time equality. Returns false on length mismatch (length is public
// in every use in this codebase).
bool ConstantTimeEqual(std::span<const uint8_t> a, std::span<const uint8_t> b);

// Little-endian integer packing used by the crypto layer and serializers.
uint16_t LoadLe16(const uint8_t* p);
void StoreLe16(uint8_t* p, uint16_t v);
uint32_t LoadLe32(const uint8_t* p);
uint64_t LoadLe64(const uint8_t* p);
void StoreLe32(uint8_t* p, uint32_t v);
void StoreLe64(uint8_t* p, uint64_t v);

// Big-endian loads/stores (SHA-2 message schedule uses big-endian words).
uint32_t LoadBe32(const uint8_t* p);
uint64_t LoadBe64(const uint8_t* p);
void StoreBe32(uint8_t* p, uint32_t v);
void StoreBe64(uint8_t* p, uint64_t v);

// Concatenates byte spans (convenience for building signed/hashed payloads).
Bytes Concat(std::initializer_list<std::span<const uint8_t>> parts);

// Returns the bytes of a string_view (for hashing ASCII domain separators).
inline std::span<const uint8_t> AsBytes(std::string_view s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

}  // namespace votegral

#endif  // SRC_COMMON_BYTES_H_
