// Timing utilities for the benchmark harnesses.
//
// Three distinct notions of time appear in the evaluation (paper §7):
//  * wall-clock time of real computation (WallTimer),
//  * CPU time of real computation, split user/system (CpuTimer),
//  * *simulated* time of mechanical peripherals — printing and scanning QR
//    codes on kiosk hardware we do not have (VirtualClock; see
//    src/peripherals and DESIGN.md §2 for the substitution rationale).
#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace votegral {

// Measures elapsed wall-clock time in seconds.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  // Seconds since construction or last Reset().
  double Seconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Process CPU time split into user and system components (getrusage).
struct CpuSample {
  double user_seconds = 0.0;
  double system_seconds = 0.0;

  double Total() const { return user_seconds + system_seconds; }

  CpuSample operator-(const CpuSample& other) const {
    return {user_seconds - other.user_seconds, system_seconds - other.system_seconds};
  }
};

// Measures CPU time consumed by the current process.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}

  void Reset() { start_ = Now(); }

  // CPU seconds (user+system breakdown) since construction or Reset().
  CpuSample Elapsed() const { return Now() - start_; }

  // Reads the current process CPU usage.
  static CpuSample Now();

 private:
  CpuSample start_;
};

// Deterministic simulated clock for peripheral latency models. Components
// that model mechanical hardware (receipt printer feed, Bluetooth QR scanner
// transfer) advance this clock instead of sleeping, so a full simulated
// registration session runs in microseconds of real time while reporting
// seconds of modeled voter-observable latency.
class VirtualClock {
 public:
  // Advances simulated time; negative durations are a programming error.
  void Advance(double seconds);

  // Total simulated seconds elapsed.
  double Seconds() const { return seconds_; }

  void Reset() { seconds_ = 0.0; }

 private:
  double seconds_ = 0.0;
};

}  // namespace votegral

#endif  // SRC_COMMON_CLOCK_H_
