// Status/error types used across the Votegral codebase.
//
// Convention (see DESIGN.md §4): *verification failures are values*, because
// rejecting a forged proof or a tampered ledger entry is expected behaviour
// that callers must branch on. Programming errors and protocol misuse (e.g.
// deserializing a truncated receipt where the caller promised a full one)
// throw ProtocolError.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

namespace votegral {

// Thrown on API misuse and unrecoverable internal invariant violations.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

// Throws ProtocolError when `condition` is false. Used for internal
// invariants and argument validation, never for crypto verification results.
inline void Require(bool condition, const char* message) {
  if (!condition) {
    throw ProtocolError(message);
  }
}

// Stable failure category. The reason string localizes a failure ("which
// authority, which segment, which proof"); the code classifies it, so tests
// and retry/degradation logic branch on the class instead of string-matching:
//  * kFailed        — uncategorized failure (the pre-StatusCode default).
//  * kInvalidProof  — a cryptographic check rejected (forged/corrupt proof,
//                     bad signature, stale wire cache, hash mismatch caught
//                     by a proof-style check).
//  * kUnavailable   — a required party or resource is down (crashed
//                     authority, fewer than t live trustees, missing file).
//  * kTimeout       — a deadline elapsed before a response arrived.
//  * kCorrupted     — stored or transported data failed an integrity check
//                     (torn sealed segment, chain break, malformed frame).
//  * kExhausted     — a bounded retry/attempt budget ran out.
//  * kEquivocation  — a party presented two validly-signed commitments that
//                     cannot both belong to one append-only history (e.g. a
//                     replication leader signing incompatible checkpoint
//                     roots — the split-view attack the board must detect).
enum class StatusCode : uint8_t {
  kOk = 0,
  kFailed,
  kInvalidProof,
  kUnavailable,
  kTimeout,
  kCorrupted,
  kExhausted,
  kEquivocation,
};

// Stable lowercase name ("ok", "invalid_proof", ...) for logs and tests.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kFailed: return "failed";
    case StatusCode::kInvalidProof: return "invalid_proof";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kCorrupted: return "corrupted";
    case StatusCode::kExhausted: return "exhausted";
    case StatusCode::kEquivocation: return "equivocation";
  }
  return "unknown";
}

// Result of a fallible operation that callers must inspect.
//
// A Status is either OK or a failure carrying a category code and a
// human-readable reason. The reason strings are stable enough to assert on
// in tests ("which check rejected this credential?") and are surfaced to
// voters/auditors by the examples; the code is what degradation logic and
// tests branch on.
class Status {
 public:
  // Successful status.
  static Status Ok() { return Status(StatusCode::kOk, ""); }

  // Failed status with a reason. `reason` should name the check that failed,
  // e.g. "activation: kiosk commit signature invalid". Uncategorized
  // (StatusCode::kFailed); prefer the two-argument overload in new code.
  static Status Error(std::string reason) {
    return Status(StatusCode::kFailed, std::move(reason));
  }

  // Failed status with an explicit category. `code` must not be kOk.
  static Status Error(StatusCode code, std::string reason) {
    if (code == StatusCode::kOk) {
      throw ProtocolError("Status::Error: kOk is not a failure code");
    }
    return Status(code, std::move(reason));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& reason() const { return reason_; }

  explicit operator bool() const { return ok(); }

  // Returns the first failure among `this` and `other` (error short-circuit).
  Status And(const Status& other) const { return ok() ? other : *this; }

  // "ok" for success, "[code_name] reason" otherwise — the code name leads so
  // coded failures (replication drills, fault soaks) read unambiguously in
  // test logs even when two checks share similar reason text.
  std::string ToString() const {
    if (ok()) {
      return "ok";
    }
    return "[" + std::string(StatusCodeName(code_)) + "] " + reason_;
  }

 private:
  Status(StatusCode code, std::string reason)
      : code_(code), reason_(std::move(reason)) {}

  StatusCode code_;
  std::string reason_;
};

// Streams Status::ToString(); picked up by gtest's value printers, so
// `ASSERT_TRUE(status.ok()) << status` logs the category with the reason.
inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace votegral

#endif  // SRC_COMMON_STATUS_H_
