// Status/error types used across the Votegral codebase.
//
// Convention (see DESIGN.md §4): *verification failures are values*, because
// rejecting a forged proof or a tampered ledger entry is expected behaviour
// that callers must branch on. Programming errors and protocol misuse (e.g.
// deserializing a truncated receipt where the caller promised a full one)
// throw ProtocolError.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <stdexcept>
#include <string>
#include <utility>

namespace votegral {

// Thrown on API misuse and unrecoverable internal invariant violations.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

// Throws ProtocolError when `condition` is false. Used for internal
// invariants and argument validation, never for crypto verification results.
inline void Require(bool condition, const char* message) {
  if (!condition) {
    throw ProtocolError(message);
  }
}

// Result of a fallible operation that callers must inspect.
//
// A Status is either OK or a failure carrying a human-readable reason. The
// reason strings are stable enough to assert on in tests ("which check
// rejected this credential?") and are surfaced to voters/auditors by the
// examples.
class Status {
 public:
  // Successful status.
  static Status Ok() { return Status(true, ""); }

  // Failed status with a reason. `reason` should name the check that failed,
  // e.g. "activation: kiosk commit signature invalid".
  static Status Error(std::string reason) { return Status(false, std::move(reason)); }

  bool ok() const { return ok_; }
  const std::string& reason() const { return reason_; }

  explicit operator bool() const { return ok_; }

  // Returns the first failure among `this` and `other` (error short-circuit).
  Status And(const Status& other) const { return ok_ ? other : *this; }

 private:
  Status(bool ok, std::string reason) : ok_(ok), reason_(std::move(reason)) {}

  bool ok_;
  std::string reason_;
};

}  // namespace votegral

#endif  // SRC_COMMON_STATUS_H_
