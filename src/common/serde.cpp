#include "src/common/serde.h"

namespace votegral {

void ByteWriter::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::U32(uint32_t v) {
  uint8_t tmp[4];
  StoreLe32(tmp, v);
  buf_.insert(buf_.end(), tmp, tmp + 4);
}

void ByteWriter::U64(uint64_t v) {
  uint8_t tmp[8];
  StoreLe64(tmp, v);
  buf_.insert(buf_.end(), tmp, tmp + 8);
}

void ByteWriter::Fixed(std::span<const uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::Var(std::span<const uint8_t> data) {
  Require(data.size() <= UINT32_MAX, "ByteWriter::Var: field too large");
  U32(static_cast<uint32_t>(data.size()));
  Fixed(data);
}

void ByteWriter::Str(std::string_view s) { Var(AsBytes(s)); }

std::span<const uint8_t> ByteReader::Need(size_t n) {
  Require(pos_ + n <= data_.size(), "ByteReader: truncated message");
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

uint8_t ByteReader::U8() { return Need(1)[0]; }

uint16_t ByteReader::U16() {
  auto s = Need(2);
  return static_cast<uint16_t>(s[0] | (s[1] << 8));
}

uint32_t ByteReader::U32() {
  auto s = Need(4);
  return LoadLe32(s.data());
}

uint64_t ByteReader::U64() {
  auto s = Need(8);
  return LoadLe64(s.data());
}

Bytes ByteReader::Fixed(size_t n) {
  auto s = Need(n);
  return Bytes(s.begin(), s.end());
}

Bytes ByteReader::Var() {
  uint32_t n = U32();
  return Fixed(n);
}

std::string ByteReader::Str() {
  Bytes b = Var();
  return std::string(b.begin(), b.end());
}

}  // namespace votegral
