#include "src/common/bytes.h"

#include "src/common/status.h"

namespace votegral {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string HexEncode(std::span<const uint8_t> data) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes HexDecode(std::string_view hex) {
  Require(hex.size() % 2 == 0, "HexDecode: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    Require(hi >= 0 && lo >= 0, "HexDecode: non-hex character");
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEqual(std::span<const uint8_t> a, std::span<const uint8_t> b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

uint16_t LoadLe16(const uint8_t* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                               (static_cast<uint16_t>(p[1]) << 8));
}

void StoreLe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t LoadLe64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLe32(p)) | (static_cast<uint64_t>(LoadLe32(p + 4)) << 32);
}

void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void StoreLe64(uint8_t* p, uint64_t v) {
  StoreLe32(p, static_cast<uint32_t>(v));
  StoreLe32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t LoadBe64(const uint8_t* p) {
  return (static_cast<uint64_t>(LoadBe32(p)) << 32) | static_cast<uint64_t>(LoadBe32(p + 4));
}

void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

void StoreBe64(uint8_t* p, uint64_t v) {
  StoreBe32(p, static_cast<uint32_t>(v >> 32));
  StoreBe32(p + 4, static_cast<uint32_t>(v));
}

Bytes Concat(std::initializer_list<std::span<const uint8_t>> parts) {
  size_t total = 0;
  for (const auto& part : parts) {
    total += part.size();
  }
  Bytes out;
  out.reserve(total);
  for (const auto& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace votegral
