#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace votegral {

double Median(std::vector<double> values) { return Percentile(std::move(values), 50.0); }

double Percentile(std::vector<double> values, double p) {
  Require(!values.empty(), "Percentile: empty sample");
  Require(p >= 0.0 && p <= 100.0, "Percentile: p out of range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

StatSummary Summarize(const std::vector<double>& values) {
  Require(!values.empty(), "Summarize: empty sample");
  StatSummary s;
  s.count = values.size();
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  s.median = Median(values);
  double var = 0.0;
  for (double v : values) {
    var += (v - s.mean) * (v - s.mean);
  }
  s.stddev = values.size() > 1 ? std::sqrt(var / static_cast<double>(values.size() - 1)) : 0.0;
  return s;
}

}  // namespace votegral
