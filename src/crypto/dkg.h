// Election-authority key generation and verifiable threshold decryption.
//
// The paper's trust model (§D.1/§D.2) requires that decryption be impossible
// unless *all* authority members collude, and that every decryption step be
// publicly verifiable. We implement the standard additive n-of-n DKG: each
// member holds x_i with public share X_i = x_i*B (plus a Schnorr
// proof-of-possession to prevent rogue-key attacks), and the election key is
// A_pk = ΣX_i. A ciphertext (C1, C2) is decrypted by combining verifiable
// partial decryptions S_i = x_i*C1, each carrying a Chaum–Pedersen proof of
// consistency with X_i.
//
// CreateThreshold additionally offers the t-of-n degradation mode (the
// paper's threshold trust assumption made operational): a dealerless
// sum-of-dealers Shamir DKG in which each member deals a degree-(t-1)
// polynomial, member j's key becomes x_j = Σ_i f_i(j+1), the Feldman
// commitment vectors sum coefficient-wise, and A_pk = C_0. Per-member share
// proofs are *identical* to the additive mode (DLEQ((B, X_j), (C1, x_j*C1))
// under the same domain), so the wire format and verifier code path do not
// fork; only CombineShares changes — any ≥ t distinct verified shares are
// Lagrange-recombined over the evaluation points (member_index + 1), which
// is what lets the tally proceed when up to n−t authorities crash, stall or
// return forged shares.
#ifndef SRC_CRYPTO_DKG_H_
#define SRC_CRYPTO_DKG_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/dleq.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/shamir.h"

namespace votegral {

// Fiat–Shamir domain for decryption-share DLEQ proofs. Shared by the
// authority (proving), the universal verifier and the tally's batched
// self-check (verifying); a single definition keeps the three in sync.
inline constexpr std::string_view kDecryptionShareDomain =
    "votegral/authority/decryption-share/v1";

// One election-authority member's share.
struct AuthorityMember {
  Scalar secret;
  RistrettoPoint public_share;
  // Canonical encoding of public_share, filled at Create (the DKG encodes it
  // for the proof of possession anyway). Every decryption-share statement
  // hashes X_i, so this one cache spares an inverse sqrt per share proved or
  // verified against this member.
  CompressedRistretto public_share_wire{};
  SchnorrSignature proof_of_possession;  // Schnorr signature of own share
};

// A verifiable partial decryption of some ciphertext's C1.
struct DecryptionShare {
  size_t member_index = 0;
  RistrettoPoint share;    // x_i * C1
  DleqTranscript proof;    // DLEQ((B, X_i), (C1, share))
};

// The distributed election authority A = {A_1, ..., A_n}.
class ElectionAuthority {
 public:
  // Runs the additive n-of-n DKG among `n` members (threshold() == n, and
  // CombineShares requires every member: the seed configuration).
  static ElectionAuthority Create(size_t n, Rng& rng);

  // Runs the dealerless sum-of-dealers Shamir DKG: any `threshold` of `n`
  // members can decrypt; fewer learn nothing. 1 <= threshold <= n.
  static ElectionAuthority CreateThreshold(size_t threshold, size_t n, Rng& rng);

  // The collective public key A_pk = sum of public shares.
  const RistrettoPoint& public_key() const { return public_key_; }
  size_t size() const { return members_.size(); }
  const AuthorityMember& member(size_t i) const { return members_.at(i); }

  // Shares needed to decrypt: n for the additive mode, t for CreateThreshold.
  size_t threshold() const { return threshold_; }
  // True when shares recombine with Lagrange weights (CreateThreshold) rather
  // than a plain sum.
  bool is_threshold() const { return shamir_mode_; }
  // Summed Feldman commitments (threshold mode only; empty for additive).
  // Public: lets the verifier re-derive every member's share commitment.
  const FeldmanCommitments& feldman_commitments() const { return feldman_; }

  // Verifies every member's proof of possession against the collective key,
  // and in threshold mode each public share against the Feldman commitments.
  Status VerifySetup() const;

  // Member `i` produces its verifiable share for `ct`. When the caller
  // already holds C1's canonical bytes (tagging output wire, mix column
  // wire), passing them via `c1_wire` makes the proof statement fully
  // wire-backed; otherwise C1 is encoded here once. The proof bytes are
  // identical either way.
  DecryptionShare ComputeShare(size_t i, const ElGamalCiphertext& ct, Rng& rng,
                               const CompressedRistretto* c1_wire = nullptr) const;

  // Anyone can check a share against the member's public share.
  Status VerifyShare(const ElGamalCiphertext& ct, const DecryptionShare& share) const;

  // Combines verified shares into the decryption M. Additive mode: requires
  // exactly one share per member (n-of-n), M = C2 - Σ S_i. Threshold mode:
  // requires >= threshold() distinct shares (any valid subset — callers
  // exclude faulty authorities first), M = C2 - Σ λ_j S_j with Lagrange
  // weights over the participating members' evaluation points. Misuse (too
  // few / duplicate shares) throws; share *validity* is the caller's check
  // (VerifyShare) — combining never inspects proofs.
  RistrettoPoint CombineShares(const ElGamalCiphertext& ct,
                               const std::vector<DecryptionShare>& shares) const;

  // Test/bench convenience: full decryption using all members' secrets.
  RistrettoPoint Decrypt(const ElGamalCiphertext& ct) const;

  // Test/bench convenience: the combined secret key (sum of member secrets).
  Scalar CombinedSecret() const;

 private:
  std::vector<AuthorityMember> members_;
  RistrettoPoint public_key_;
  size_t threshold_ = 0;
  bool shamir_mode_ = false;
  FeldmanCommitments feldman_;  // summed dealer commitments (threshold mode)
};

}  // namespace votegral

#endif  // SRC_CRYPTO_DKG_H_
