#include "src/crypto/orproof.h"

#include "src/crypto/sha512.h"

namespace votegral {

namespace {

// Fiat–Shamir master challenge over the statement and all branch commits.
Scalar MasterChallenge(const ElGamalCiphertext& ct, const RistrettoPoint& pk,
                       std::span<const RistrettoPoint> candidates,
                       const std::vector<OrProofBranch>& branches, std::string_view domain) {
  Sha512 h;
  h.Update(AsBytes(domain));
  uint8_t sep = 0;
  h.Update({&sep, 1});
  h.Update(ct.Serialize());
  h.Update(pk.Encode());
  for (const RistrettoPoint& candidate : candidates) {
    h.Update(candidate.Encode());
  }
  for (const OrProofBranch& branch : branches) {
    h.Update(branch.commit_1.Encode());
    h.Update(branch.commit_2.Encode());
  }
  return Scalar::FromBytesWide(h.Finalize());
}

}  // namespace

EncryptionOrProof ProveEncryptsOneOf(const ElGamalCiphertext& ct, const RistrettoPoint& pk,
                                     std::span<const RistrettoPoint> candidates,
                                     size_t true_index, const Scalar& randomness,
                                     std::string_view domain, Rng& rng) {
  Require(true_index < candidates.size(), "orproof: true index out of range");
  const size_t n = candidates.size();
  EncryptionOrProof proof;
  proof.branches.resize(n);

  // Simulate every false branch with pre-chosen challenge and response.
  Scalar simulated_sum = Scalar::Zero();
  for (size_t j = 0; j < n; ++j) {
    if (j == true_index) {
      continue;
    }
    OrProofBranch& branch = proof.branches[j];
    branch.challenge = Scalar::Random(rng);
    branch.response = Scalar::Random(rng);
    simulated_sum = simulated_sum + branch.challenge;
    RistrettoPoint diff = ct.c2 - candidates[j];
    branch.commit_1 = RistrettoPoint::MulBase(branch.response) + branch.challenge * ct.c1;
    branch.commit_2 = branch.response * pk + branch.challenge * diff;
  }

  // Real commitment on the true branch.
  Scalar y = Scalar::Random(rng);
  proof.branches[true_index].commit_1 = RistrettoPoint::MulBase(y);
  proof.branches[true_index].commit_2 = y * pk;

  // Split the master challenge.
  Scalar master = MasterChallenge(ct, pk, candidates, proof.branches, domain);
  Scalar e_true = master - simulated_sum;
  proof.branches[true_index].challenge = e_true;
  proof.branches[true_index].response = y - e_true * randomness;
  return proof;
}

Status VerifyEncryptsOneOf(const ElGamalCiphertext& ct, const RistrettoPoint& pk,
                           std::span<const RistrettoPoint> candidates,
                           const EncryptionOrProof& proof, std::string_view domain) {
  if (proof.branches.size() != candidates.size() || candidates.empty()) {
    return Status::Error("orproof: branch count mismatch");
  }
  Scalar sum = Scalar::Zero();
  for (const OrProofBranch& branch : proof.branches) {
    sum = sum + branch.challenge;
  }
  if (sum != MasterChallenge(ct, pk, candidates, proof.branches, domain)) {
    return Status::Error("orproof: challenge split does not match master challenge");
  }
  for (size_t j = 0; j < candidates.size(); ++j) {
    const OrProofBranch& branch = proof.branches[j];
    RistrettoPoint diff = ct.c2 - candidates[j];
    RistrettoPoint lhs1 =
        RistrettoPoint::MulBase(branch.response) + branch.challenge * ct.c1;
    if (!(lhs1 == branch.commit_1)) {
      return Status::Error("orproof: branch " + std::to_string(j) + " first equation failed");
    }
    RistrettoPoint lhs2 = branch.response * pk + branch.challenge * diff;
    if (!(lhs2 == branch.commit_2)) {
      return Status::Error("orproof: branch " + std::to_string(j) +
                           " second equation failed");
    }
  }
  return Status::Ok();
}

}  // namespace votegral
