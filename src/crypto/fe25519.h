// Arithmetic in GF(2^255 - 19), the curve25519 base field, using the
// standard 5×51-bit unsigned radix with 128-bit intermediate products.
//
// Representation invariant: after every public operation each limb is
// "loosely reduced" (< 2^51 + 2^13), which keeps all intermediate products
// within 128 bits. ToBytes performs full canonical reduction.
//
// This implementation favours clarity and testability over raw speed and is
// not hardened against timing side channels; the paper's threat model
// explicitly places side-channel attacks out of scope (Appendix L).
#ifndef SRC_CRYPTO_FE25519_H_
#define SRC_CRYPTO_FE25519_H_

#include <array>
#include <cstdint>
#include <span>

namespace votegral {

// A field element in GF(2^255 - 19).
struct Fe25519 {
  uint64_t limb[5];
};

// Constants.
Fe25519 FeZero();
Fe25519 FeOne();
// Constructs a field element from a small integer.
Fe25519 FeFromU64(uint64_t value);

// Parses 32 little-endian bytes; the top bit (2^255) is ignored, matching
// the edwards25519/ristretto conventions.
Fe25519 FeFromBytes(std::span<const uint8_t> bytes32);

// Serializes to the canonical 32-byte little-endian representation in
// [0, 2^255 - 19).
std::array<uint8_t, 32> FeToBytes(const Fe25519& f);

// True when `bytes32` is the canonical encoding of a field element (i.e. it
// round-trips). Ristretto decoding requires this check.
bool FeBytesAreCanonical(std::span<const uint8_t> bytes32);

Fe25519 FeAdd(const Fe25519& a, const Fe25519& b);
Fe25519 FeSub(const Fe25519& a, const Fe25519& b);
Fe25519 FeNeg(const Fe25519& a);
Fe25519 FeMul(const Fe25519& a, const Fe25519& b);
Fe25519 FeSquare(const Fe25519& a);
// Multiplies by a small scalar (e.g. 2, 121666).
Fe25519 FeMulSmall(const Fe25519& a, uint32_t small);

// f^e where `exponent32` is a 32-byte little-endian constant. Used with the
// fixed exponents below; not constant-time in the exponent (exponents here
// are public constants).
Fe25519 FePow(const Fe25519& f, std::span<const uint8_t> exponent32);

// f^(p-2): multiplicative inverse (0 maps to 0).
Fe25519 FeInvert(const Fe25519& f);

// f^((p-5)/8): the core of the combined square-root/inverse-square-root.
Fe25519 FePow2523(const Fe25519& f);

// Canonical-sign helpers ("negative" = canonical encoding has lsb 1, per the
// ristretto255 spec).
bool FeIsNegative(const Fe25519& f);
bool FeIsZero(const Fe25519& f);
bool FeEqual(const Fe25519& a, const Fe25519& b);

// |f|: f if non-negative, -f otherwise.
Fe25519 FeAbs(const Fe25519& f);

// Returns `b ? t : f` (value select).
Fe25519 FeSelect(const Fe25519& f, const Fe25519& t, bool b);

// Computes (was_square, r) with r = sqrt(u/v) when u/v is a square, else
// r = sqrt(SQRT_M1 * u/v); r is always non-negative. This is the
// SQRT_RATIO_M1 routine from the ristretto255 spec (RFC 9496 §4.2).
struct SqrtRatioResult {
  bool was_square;
  Fe25519 root;
};
SqrtRatioResult FeSqrtRatioM1(const Fe25519& u, const Fe25519& v);

// FeSqrtRatioM1 specialized to u = 1: (was_square, 1/sqrt(v)) — the form
// every ristretto encode and decode actually needs. Identical outputs to
// FeSqrtRatioM1(FeOne(), v) (including v = 0 -> (false, 0)) while skipping
// the two u-multiplications of the general routine. The ~250-squaring
// exponentiation inside is inherently per-input: it cannot be shared across
// a batch the way Montgomery's trick shares inversions, because the
// individual roots are not rational functions of the inputs and a combined
// root (see docs/TRANSCRIPTS.md, "Why wire bytes instead of batched
// roots") — which is exactly why the DLEQ layer caches encodings instead of
// recomputing them.
SqrtRatioResult FeInvSqrt(const Fe25519& v);

// sqrt(-1) mod p (computed once at startup as 2^((p-1)/4)).
const Fe25519& FeSqrtM1();

// The edwards25519 curve constant d = -121665/121666.
const Fe25519& FeEdwardsD();

}  // namespace votegral

#endif  // SRC_CRYPTO_FE25519_H_
