// ChaCha20 stream cipher (RFC 8439 block function) and the deterministic
// random-bit generator built on it. ChaChaRng is the repository's only
// randomness implementation: tests and benches seed it explicitly for
// reproducibility; SystemRng seeds it from OS entropy for the examples.
#ifndef SRC_CRYPTO_DRBG_H_
#define SRC_CRYPTO_DRBG_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/rng.h"

namespace votegral {

// Computes one 64-byte ChaCha20 keystream block (RFC 8439 §2.3).
void ChaCha20Block(const std::array<uint8_t, 32>& key, const std::array<uint8_t, 12>& nonce,
                   uint32_t counter, std::array<uint8_t, 64>& out);

// XORs `data` in place with the ChaCha20 keystream (counter starts at
// `initial_counter`). Exposed for the RFC test vector and for completeness.
void ChaCha20Xor(const std::array<uint8_t, 32>& key, const std::array<uint8_t, 12>& nonce,
                 uint32_t initial_counter, std::span<uint8_t> data);

// Deterministic RNG: ChaCha20 keystream under a seed-derived key.
class ChaChaRng : public Rng {
 public:
  // Seeds from an arbitrary byte string (hashed to a key).
  explicit ChaChaRng(std::span<const uint8_t> seed);

  // Seeds from a test-friendly integer.
  explicit ChaChaRng(uint64_t seed);

  void Fill(std::span<uint8_t> out) override;

 private:
  void Refill();

  std::array<uint8_t, 32> key_;
  std::array<uint8_t, 12> nonce_{};
  uint32_t counter_ = 0;
  std::array<uint8_t, 64> block_{};
  size_t available_ = 0;
};

// Returns a process-wide RNG seeded once from std::random_device. Intended
// for examples/CLI use; protocol code always receives an injected Rng&.
Rng& SystemRng();

}  // namespace votegral

#endif  // SRC_CRYPTO_DRBG_H_
