// A 2048-bit Schnorr group (order-q subgroup of Z_p*, |q| = 256) with
// Montgomery arithmetic, plus ElGamal, Chaum–Pedersen DLEQ proofs and
// plaintext-equivalence tests (PET) over it.
//
// This is the large-modulus substrate for the Civitas/JCJ baseline: the
// paper attributes part of Civitas' two-orders-of-magnitude registration and
// tally gap to its classic DSA-style group (§7.3), so the baseline must pay
// real big-integer exponentiation costs, not a fudge factor. Parameters
// (p = 2kq + 1) were generated offline by a seeded Miller–Rabin search; the
// test suite re-checks primality and subgroup order.
#ifndef SRC_CRYPTO_MODP_H_
#define SRC_CRYPTO_MODP_H_

#include <array>
#include <optional>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace votegral {

// Number of 64-bit limbs in a group element (2048 bits).
inline constexpr size_t kModPLimbs = 32;

// A group element (canonical residue mod p, little-endian limbs).
struct ModPElement {
  std::array<uint64_t, kModPLimbs> limb{};

  bool operator==(const ModPElement& other) const { return limb == other.limb; }
  bool operator!=(const ModPElement& other) const { return !(*this == other); }

  Bytes Serialize() const;  // 256 bytes little-endian
};

// An exponent modulo the subgroup order q (256 bits).
struct QScalar {
  std::array<uint64_t, 4> limb{};

  bool operator==(const QScalar& other) const { return limb == other.limb; }
  bool IsZero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }

  Bytes Serialize() const;  // 32 bytes little-endian
};

// The group context: parameters plus Montgomery machinery.
class ModPGroup {
 public:
  // The standard generated parameters (see file comment).
  static const ModPGroup& Standard();

  const ModPElement& generator() const { return generator_; }
  ModPElement One() const;

  // Multiplication, exponentiation and inversion in the subgroup.
  ModPElement Mul(const ModPElement& a, const ModPElement& b) const;
  ModPElement Exp(const ModPElement& base, const QScalar& exponent) const;
  // Inverse of a subgroup element: a^(q-1).
  ModPElement Inverse(const ModPElement& a) const;
  // g^e for the standard generator.
  ModPElement ExpG(const QScalar& exponent) const;

  bool IsOne(const ModPElement& a) const;

  // Subgroup-order scalar arithmetic.
  QScalar QAdd(const QScalar& a, const QScalar& b) const;
  QScalar QSub(const QScalar& a, const QScalar& b) const;
  QScalar QMul(const QScalar& a, const QScalar& b) const;
  QScalar QNeg(const QScalar& a) const;
  QScalar QRandom(Rng& rng) const;
  // Uniform scalar from a 64-byte hash (Fiat–Shamir challenges).
  QScalar QFromWide(std::span<const uint8_t> bytes64) const;

  // Miller–Rabin primality of p and q plus g^q == 1 (used by tests).
  Status CheckParameters(Rng& rng) const;

  // Raw parameter access for serialization/tests.
  const std::array<uint64_t, kModPLimbs>& p_limbs() const { return p_; }
  const std::array<uint64_t, 4>& q_limbs() const { return q_; }

 private:
  ModPGroup(std::string_view p_hex_le, std::string_view q_hex_le, std::string_view g_hex_le);

  // Montgomery core (operates on kModPLimbs-limb arrays).
  void MontMul(const uint64_t* a, const uint64_t* b, uint64_t* out) const;
  void ToMont(const ModPElement& a, uint64_t* out) const;
  ModPElement FromMont(const uint64_t* a) const;
  bool MillerRabinP(Rng& rng, int rounds) const;

  std::array<uint64_t, kModPLimbs> p_{};
  std::array<uint64_t, 4> q_{};
  ModPElement generator_;
  std::array<uint64_t, kModPLimbs> rr_{};  // R^2 mod p
  uint64_t n0inv_ = 0;                     // -p^{-1} mod 2^64
};

// ElGamal over the Schnorr group (multiplicative notation).
struct ModPCiphertext {
  ModPElement c1;
  ModPElement c2;

  bool operator==(const ModPCiphertext& other) const {
    return c1 == other.c1 && c2 == other.c2;
  }
};

ModPCiphertext ModPEncrypt(const ModPGroup& group, const ModPElement& pk,
                           const ModPElement& message, const QScalar& randomness);
ModPElement ModPDecrypt(const ModPGroup& group, const QScalar& sk, const ModPCiphertext& ct);
ModPCiphertext ModPReRandomize(const ModPGroup& group, const ModPElement& pk,
                               const ModPCiphertext& ct, const QScalar& randomness);
// Componentwise quotient ct1 / ct2 (the PET prelude).
ModPCiphertext ModPQuotient(const ModPGroup& group, const ModPCiphertext& a,
                            const ModPCiphertext& b);

// Chaum–Pedersen DLEQ over the Schnorr group (Fiat–Shamir).
struct ModPDleqProof {
  ModPElement commit_1;
  ModPElement commit_2;
  QScalar challenge;
  QScalar response;
};

ModPDleqProof ModPProveDleq(const ModPGroup& group, std::string_view domain,
                            const ModPElement& g1, const ModPElement& p1,
                            const ModPElement& g2, const ModPElement& p2, const QScalar& x,
                            Rng& rng);
Status ModPVerifyDleq(const ModPGroup& group, std::string_view domain, const ModPElement& g1,
                      const ModPElement& p1, const ModPElement& g2, const ModPElement& p2,
                      const ModPDleqProof& proof);

// One trustee's contribution to a plaintext-equivalence test [71]: the
// quotient ciphertext raised to a secret blinding exponent, with proof.
struct PetShare {
  ModPCiphertext blinded;
  ModPDleqProof proof;
};

PetShare PetBlind(const ModPGroup& group, const ModPCiphertext& quotient, const QScalar& z,
                  const ModPElement& commitment, Rng& rng);
Status PetVerifyShare(const ModPGroup& group, const ModPCiphertext& quotient,
                      const PetShare& share, const ModPElement& commitment);

}  // namespace votegral

#endif  // SRC_CRYPTO_MODP_H_
