#include "src/crypto/drbg.h"

#include <random>

#include "src/common/bytes.h"
#include "src/crypto/sha256.h"

namespace votegral {

namespace {

uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = Rotl(d, 16);
  c += d;
  b ^= c;
  b = Rotl(b, 12);
  a += b;
  d ^= a;
  d = Rotl(d, 8);
  c += d;
  b ^= c;
  b = Rotl(b, 7);
}

}  // namespace

void ChaCha20Block(const std::array<uint8_t, 32>& key, const std::array<uint8_t, 12>& nonce,
                   uint32_t counter, std::array<uint8_t, 64>& out) {
  uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = LoadLe32(key.data() + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = LoadLe32(nonce.data() + 4 * i);
  }
  uint32_t working[16];
  std::copy(std::begin(state), std::end(state), std::begin(working));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(working[0], working[4], working[8], working[12]);
    QuarterRound(working[1], working[5], working[9], working[13]);
    QuarterRound(working[2], working[6], working[10], working[14]);
    QuarterRound(working[3], working[7], working[11], working[15]);
    QuarterRound(working[0], working[5], working[10], working[15]);
    QuarterRound(working[1], working[6], working[11], working[12]);
    QuarterRound(working[2], working[7], working[8], working[13]);
    QuarterRound(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    StoreLe32(out.data() + 4 * i, working[i] + state[i]);
  }
}

void ChaCha20Xor(const std::array<uint8_t, 32>& key, const std::array<uint8_t, 12>& nonce,
                 uint32_t initial_counter, std::span<uint8_t> data) {
  std::array<uint8_t, 64> block;
  uint32_t counter = initial_counter;
  size_t offset = 0;
  while (offset < data.size()) {
    ChaCha20Block(key, nonce, counter++, block);
    size_t take = std::min<size_t>(64, data.size() - offset);
    for (size_t i = 0; i < take; ++i) {
      data[offset + i] ^= block[i];
    }
    offset += take;
  }
}

ChaChaRng::ChaChaRng(std::span<const uint8_t> seed) { key_ = Sha256::Hash(seed); }

ChaChaRng::ChaChaRng(uint64_t seed) {
  uint8_t buf[8];
  StoreLe64(buf, seed);
  key_ = Sha256::Hash(buf);
}

void ChaChaRng::Refill() {
  ChaCha20Block(key_, nonce_, counter_++, block_);
  available_ = block_.size();
}

void ChaChaRng::Fill(std::span<uint8_t> out) {
  size_t offset = 0;
  while (offset < out.size()) {
    if (available_ == 0) {
      Refill();
    }
    size_t take = std::min(available_, out.size() - offset);
    std::copy(block_.end() - static_cast<ptrdiff_t>(available_),
              block_.end() - static_cast<ptrdiff_t>(available_ - take),
              out.begin() + static_cast<ptrdiff_t>(offset));
    available_ -= take;
    offset += take;
  }
}

Rng& SystemRng() {
  static ChaChaRng* rng = [] {
    std::random_device device;
    Bytes seed(32);
    for (size_t i = 0; i < seed.size(); i += 4) {
      StoreLe32(seed.data() + i, device());
    }
    return new ChaChaRng(seed);
  }();
  return *rng;
}

}  // namespace votegral
