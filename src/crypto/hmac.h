// HMAC-SHA-256 (RFC 2104). TRIP uses it as the MAC scheme authorizing
// check-in tickets between registration officials and kiosks (§E.3: the
// OSD/kiosk shared secret s_rk; a barcode fits a MAC tag but not a
// signature, per the paper's footnote 7).
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include <array>
#include <span>

#include "src/common/bytes.h"
#include "src/crypto/sha256.h"

namespace votegral {

// Computes HMAC-SHA-256(key, message).
std::array<uint8_t, Sha256::kDigestSize> HmacSha256(std::span<const uint8_t> key,
                                                    std::span<const uint8_t> message);

// Constant-time verification of an HMAC tag.
bool HmacSha256Verify(std::span<const uint8_t> key, std::span<const uint8_t> message,
                      std::span<const uint8_t> tag);

}  // namespace votegral

#endif  // SRC_CRYPTO_HMAC_H_
