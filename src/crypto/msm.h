// Multi-scalar multiplication (MSM): sum_i s_i * P_i in one pass.
//
// Every verification equation in the stack — batched Schnorr, batched DLEQ,
// RPC mixnet link checks, decryption-share checks — is a random linear
// combination that must equal a known point. Evaluating it as n independent
// `operator*` calls costs n * (252 doublings + window additions); an MSM
// shares the doublings across all terms (Straus) or amortizes additions into
// buckets (Pippenger), making the per-term cost drop toward a handful of
// additions as n grows. This is the amortization that turns the linear-time
// tally of Fig. 5b into a *fast* linear-time tally.
//
// All entry points are variable-time: they act on public data (signatures,
// proofs, transcripts), never on secrets. Secret-dependent multiplications
// must keep using the fixed-window paths in ristretto.h.
#ifndef SRC_CRYPTO_MSM_H_
#define SRC_CRYPTO_MSM_H_

#include <span>

#include "src/crypto/ristretto.h"
#include "src/crypto/scalar.h"

namespace votegral {

// Computes sum_i scalars[i] * points[i]. Dispatches on n:
//   n == 0        -> identity,
//   n <  kPippengerThreshold -> Straus interleaved width-5 wNAF windows with
//                    shared doublings,
//   n >= kPippengerThreshold -> Pippenger bucket accumulation with window
//                    size ~log2(n) and the running-suffix bucket sum.
// Throws ProtocolError when the spans disagree in length (API misuse, per
// the repository Status convention).
RistrettoPoint MultiScalarMul(std::span<const Scalar> scalars,
                              std::span<const RistrettoPoint> points);

// Computes base_scalar * B + sum_i scalars[i] * points[i], merging the
// fixed-base term into the shared-doubling loop via a precomputed width-8
// wNAF table of odd basepoint multiples (the fixed base gets the widest
// window because its table is built once per process).
RistrettoPoint MultiScalarMulWithBase(const Scalar& base_scalar,
                                      std::span<const Scalar> scalars,
                                      std::span<const RistrettoPoint> points);

// Term-by-term reference evaluation (n independent `operator*` calls plus
// n additions). Kept as the differential-testing and benchmarking baseline —
// this is exactly the seed's per-entry accumulation pattern.
RistrettoPoint MultiScalarMulNaive(std::span<const Scalar> scalars,
                                   std::span<const RistrettoPoint> points);

// --- Shared-base MSM --------------------------------------------------------
//
// Verification batches repeat base points heavily: every Schnorr entry under
// the same authority key contributes a term on that key, every DLEQ pair on
// the ElGamal public key repeats it, and the group generator appears in all
// of them. Because the group has prime order, w1*P + w2*P == (w1+w2)*P, so
// repeated terms can be summed in scalar space — O(1) field additions —
// before any group work happens.
//
// Repetition is detected by *wire bytes*, not by group comparison: keys[i]
// must be the canonical encoding of points[i] whenever key_present[i] is
// nonzero. Callers always have these bytes at hand (they just decoded the
// points from them, or they carry validated wire caches); an equal-encoding
// pair is equal in the group by canonicality. Keys are trusted the same way
// the decoded points are — a wrong key merges the wrong terms, which is the
// caller handing the MSM a different equation, not a soundness leak in here.
//
// Entries whose key equals RistrettoPoint::BaseWire() fold into
// `base_scalar` and ride the width-8 fixed-base table. Other repeated keys
// collapse into the first occurrence (deterministic first-seen order). In
// the Straus regime, collapsed keyed terms additionally fetch their
// odd-multiple tables from a process-wide LRU cache keyed by the same wire
// bytes, so a verifier that batches per producer pays each table once per
// election, not once per batch.
RistrettoPoint MultiScalarMulShared(const Scalar& base_scalar,
                                    std::span<const Scalar> scalars,
                                    std::span<const RistrettoPoint> points,
                                    std::span<const CompressedRistretto> keys,
                                    std::span<const uint8_t> key_present);

// Counters for the collapse and the table cache (process-wide, relaxed
// atomics; read after the measured region joins).
struct MsmSharedStats {
  uint64_t collapsed_terms = 0;   // input terms merged into an earlier term or the base
  uint64_t table_hits = 0;        // Straus tables served from the cache
  uint64_t table_misses = 0;      // Straus tables built and inserted
  uint64_t table_evictions = 0;   // LRU evictions (capacity kFixedBaseTableCacheCapacity)
};
MsmSharedStats SharedMsmStats();

// Clears the table cache and zeroes the counters (test/bench isolation).
void ResetSharedMsmForTest();

// LRU capacity of the shared-base table cache, in tables (each table holds
// the 8 odd multiples P, 3P, ..., 15P — 1 KiB of points). Sized for the
// distinct recurring bases of one election: authority keys, per-authority
// share commitments, tagging bases.
inline constexpr size_t kFixedBaseTableCacheCapacity = 256;

// Below this size Straus wins (per-point table setup amortizes poorly into
// Pippenger buckets); at and above it Pippenger wins. Exposed for benches.
inline constexpr size_t kPippengerThreshold = 192;

}  // namespace votegral

#endif  // SRC_CRYPTO_MSM_H_
