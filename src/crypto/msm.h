// Multi-scalar multiplication (MSM): sum_i s_i * P_i in one pass.
//
// Every verification equation in the stack — batched Schnorr, batched DLEQ,
// RPC mixnet link checks, decryption-share checks — is a random linear
// combination that must equal a known point. Evaluating it as n independent
// `operator*` calls costs n * (252 doublings + window additions); an MSM
// shares the doublings across all terms (Straus) or amortizes additions into
// buckets (Pippenger), making the per-term cost drop toward a handful of
// additions as n grows. This is the amortization that turns the linear-time
// tally of Fig. 5b into a *fast* linear-time tally.
//
// All entry points are variable-time: they act on public data (signatures,
// proofs, transcripts), never on secrets. Secret-dependent multiplications
// must keep using the fixed-window paths in ristretto.h.
#ifndef SRC_CRYPTO_MSM_H_
#define SRC_CRYPTO_MSM_H_

#include <span>

#include "src/crypto/ristretto.h"
#include "src/crypto/scalar.h"

namespace votegral {

// Computes sum_i scalars[i] * points[i]. Dispatches on n:
//   n == 0        -> identity,
//   n <  kPippengerThreshold -> Straus interleaved width-5 wNAF windows with
//                    shared doublings,
//   n >= kPippengerThreshold -> Pippenger bucket accumulation with window
//                    size ~log2(n) and the running-suffix bucket sum.
// Throws ProtocolError when the spans disagree in length (API misuse, per
// the repository Status convention).
RistrettoPoint MultiScalarMul(std::span<const Scalar> scalars,
                              std::span<const RistrettoPoint> points);

// Computes base_scalar * B + sum_i scalars[i] * points[i], merging the
// fixed-base term into the shared-doubling loop via a precomputed width-8
// wNAF table of odd basepoint multiples (the fixed base gets the widest
// window because its table is built once per process).
RistrettoPoint MultiScalarMulWithBase(const Scalar& base_scalar,
                                      std::span<const Scalar> scalars,
                                      std::span<const RistrettoPoint> points);

// Term-by-term reference evaluation (n independent `operator*` calls plus
// n additions). Kept as the differential-testing and benchmarking baseline —
// this is exactly the seed's per-entry accumulation pattern.
RistrettoPoint MultiScalarMulNaive(std::span<const Scalar> scalars,
                                   std::span<const RistrettoPoint> points);

// Below this size Straus wins (per-point table setup amortizes poorly into
// Pippenger buckets); at and above it Pippenger wins. Exposed for benches.
inline constexpr size_t kPippengerThreshold = 192;

}  // namespace votegral

#endif  // SRC_CRYPTO_MSM_H_
