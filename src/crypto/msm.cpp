#include "src/crypto/msm.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/executor.h"
#include "src/common/status.h"

namespace votegral {

namespace {

// Signed width-w NAF digits of a scalar, least significant first. Digits are
// odd with |d| < 2^(w-1), and any w consecutive positions hold at most one
// nonzero digit, so an interleaved ladder pays ~256/(w+1) additions per term.
using NafDigits = std::array<int8_t, 256>;

// Computes the width-w NAF of `s` and returns the number of digit positions
// actually used (index of the highest nonzero digit, plus one). Scalars are
// canonical (< ℓ < 2^253); negative-digit corrections can carry at most a few
// bits past the top, so 256 positions always suffice for w <= 8.
size_t ComputeWnaf(const Scalar& s, int w, NafDigits& naf) {
  naf.fill(0);
  std::array<uint64_t, 5> k{};
  auto bytes = s.ToBytes();
  for (int i = 0; i < 4; ++i) {
    k[static_cast<size_t>(i)] = LoadLe64(bytes.data() + 8 * i);
  }
  const uint64_t window = uint64_t{1} << w;
  const uint64_t half = window >> 1;
  size_t used = 0;
  for (size_t pos = 0; pos < 256; ++pos) {
    if ((k[0] | k[1] | k[2] | k[3] | k[4]) == 0) {
      break;
    }
    if (k[0] & 1) {
      uint64_t d = k[0] & (window - 1);
      if (d < half) {
        naf[pos] = static_cast<int8_t>(d);
        k[0] -= d;  // low w bits of k equal d: no borrow
      } else {
        naf[pos] = static_cast<int8_t>(static_cast<int64_t>(d) -
                                       static_cast<int64_t>(window));
        uint64_t carry = window - d;  // k += 2^w - d
        for (size_t i = 0; i < 5 && carry != 0; ++i) {
          uint64_t prev = k[i];
          k[i] += carry;
          carry = (k[i] < prev) ? 1 : 0;
        }
      }
      used = pos + 1;
    }
    for (size_t i = 0; i < 4; ++i) {
      k[i] = (k[i] >> 1) | (k[i + 1] << 63);
    }
    k[4] >>= 1;
  }
  return used;
}

// Odd multiples P, 3P, 5P, ..., (2*Count - 1)P.
template <size_t Count>
std::array<RistrettoPoint, Count> OddMultiples(const RistrettoPoint& p) {
  std::array<RistrettoPoint, Count> table;
  table[0] = p;
  const RistrettoPoint p2 = p.Double();
  for (size_t i = 1; i < Count; ++i) {
    table[i] = table[i - 1] + p2;
  }
  return table;
}

// The per-point Straus table: odd multiples P, 3P, ..., 15P.
using OddTable = std::array<RistrettoPoint, 8>;

// Builds the odd-multiple tables of four points in lock-step: each table row
// advances with one 4-way addition instead of four scalar ones.
void OddMultiplesX4(const RistrettoPoint* p, OddTable* const out[4]) {
  RistrettoPoint p2[4];
  for (int k = 0; k < 4; ++k) {
    (*out[k])[0] = p[k];
    p2[k] = p[k].Double();
  }
  RistrettoPoint row[4];
  for (size_t i = 1; i < 8; ++i) {
    for (int k = 0; k < 4; ++k) {
      row[k] = (*out[k])[i - 1];
    }
    RistrettoPoint::AddX4(row, p2, row);
    for (int k = 0; k < 4; ++k) {
      (*out[k])[i] = row[k];
    }
  }
}

// Fills `tables` with pointers to odd-multiple tables for every point whose
// slot is still null, building four at a time into `storage` (which must
// already be sized so the pointers stay stable).
void BuildMissingTables(std::span<const RistrettoPoint> points,
                        std::vector<const OddTable*>& tables,
                        std::vector<OddTable>& storage) {
  std::vector<size_t> missing;
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i] == nullptr) {
      missing.push_back(i);
    }
  }
  storage.resize(missing.size());
  size_t j = 0;
  for (; j + 4 <= missing.size(); j += 4) {
    RistrettoPoint p[4];
    OddTable* outs[4];
    for (int k = 0; k < 4; ++k) {
      p[k] = points[missing[j + static_cast<size_t>(k)]];
      outs[k] = &storage[j + static_cast<size_t>(k)];
    }
    OddMultiplesX4(p, outs);
    for (int k = 0; k < 4; ++k) {
      tables[missing[j + static_cast<size_t>(k)]] = outs[k];
    }
  }
  for (; j < missing.size(); ++j) {
    storage[j] = OddMultiples<8>(points[missing[j]]);
    tables[missing[j]] = &storage[j];
  }
}

// Precomputed odd multiples of the basepoint for the width-8 fixed-base NAF:
// B, 3B, ..., 127B. Built once per process.
const std::array<RistrettoPoint, 64>& BaseOddMultiples() {
  static const std::array<RistrettoPoint, 64> kTable =
      OddMultiples<64>(RistrettoPoint::Base());
  return kTable;
}

// Adds the digit contribution d * (table of odd multiples) into `acc`.
template <size_t Count>
void AddNafDigit(RistrettoPoint& acc, const std::array<RistrettoPoint, Count>& table,
                 int8_t d) {
  if (d > 0) {
    acc = acc + table[static_cast<size_t>(d >> 1)];
  } else if (d < 0) {
    acc = acc - table[static_cast<size_t>((-d) >> 1)];
  }
}

// Straus interleaved ladder over prebuilt odd-multiple tables: one shared
// doubling chain, width-5 wNAF per variable point, width-8 wNAF for the
// optional fixed-base term.
RistrettoPoint StrausLadder(const Scalar* base_scalar, std::span<const Scalar> scalars,
                            std::span<const OddTable* const> tables) {
  const size_t n = scalars.size();
  std::vector<NafDigits> nafs(n);
  size_t height = 0;
  for (size_t i = 0; i < n; ++i) {
    height = std::max(height, ComputeWnaf(scalars[i], 5, nafs[i]));
  }
  NafDigits base_naf{};
  if (base_scalar != nullptr) {
    height = std::max(height, ComputeWnaf(*base_scalar, 8, base_naf));
  }

  RistrettoPoint acc;  // identity
  for (size_t pos = height; pos-- > 0;) {
    acc = acc.Double();
    for (size_t i = 0; i < n; ++i) {
      AddNafDigit(acc, *tables[i], nafs[i][pos]);
    }
    if (base_scalar != nullptr) {
      AddNafDigit(acc, BaseOddMultiples(), base_naf[pos]);
    }
  }
  return acc;
}

RistrettoPoint StrausMsm(const Scalar* base_scalar, std::span<const Scalar> scalars,
                         std::span<const RistrettoPoint> points) {
  std::vector<const OddTable*> tables(points.size(), nullptr);
  std::vector<OddTable> storage;
  BuildMissingTables(points, tables, storage);
  return StrausLadder(base_scalar, scalars, tables);
}

// Window width for Pippenger as a function of term count; roughly log2(n),
// chosen to minimize ceil(253/w)*(n + 2^w) with signed digits (which halve
// the bucket count relative to unsigned radix-2^w).
int PippengerWindow(size_t n) {
  if (n < 400) return 6;
  if (n < 900) return 7;
  if (n < 2500) return 8;
  if (n < 10000) return 9;
  if (n < 40000) return 10;
  if (n < 150000) return 11;
  return 12;
}

// Reads the w-bit window starting at `bit` from a 32-byte little-endian
// scalar encoding (w <= 12, so at most three bytes contribute). Windows
// beyond bit 255 read as zero.
uint32_t ExtractWindow(const std::array<uint8_t, 32>& bytes, size_t bit, int w) {
  if (bit >= 256) {
    return 0;
  }
  size_t byte = bit / 8;
  int shift = static_cast<int>(bit % 8);
  uint32_t v = static_cast<uint32_t>(bytes[byte]) >> shift;
  int got = 8 - shift;
  for (size_t k = byte + 1; got < w && k < 32; ++k, got += 8) {
    v |= static_cast<uint32_t>(bytes[k]) << got;
  }
  return v & ((uint32_t{1} << w) - 1);
}

// One window's bucket pass of Pippenger with *signed* radix-2^w digits
// (signed recoding halves the bucket count; negative digits contribute the
// negated point — negation is two field negations, essentially free). Terms
// are sorted into buckets by |digit| with one addition per term, then the
// buckets collapse with the running-suffix trick:
//   sum_d d * bucket[d] = sum over suffixes of (bucket[max] + ... + bucket[d]),
// i.e. two additions per bucket instead of a multiplication per bucket.
// Returns whether any digit was nonzero.
bool PippengerWindowPass(std::span<const RistrettoPoint> points,
                         std::span<const int16_t> digits, size_t win, size_t nwindows,
                         size_t nbuckets, RistrettoPoint* window_total) {
  const size_t n = points.size();
  std::vector<RistrettoPoint> buckets(nbuckets);
  bool any = false;
  // Bucket additions batch four at a time through AddX4 as long as the four
  // pending terms target distinct buckets; a conflict (or the tail) flushes
  // the partial batch with scalar additions. Additions into one bucket keep
  // their term order (a conflicting term always flushes first), and the
  // batching decision depends only on the digits, so the pass stays
  // deterministic at any thread count.
  size_t pending_bucket[4];
  RistrettoPoint pending_add[4];
  size_t npending = 0;
  auto flush = [&]() {
    if (npending == 4) {
      RistrettoPoint current[4];
      for (int k = 0; k < 4; ++k) {
        current[k] = buckets[pending_bucket[k]];
      }
      RistrettoPoint::AddX4(current, pending_add, current);
      for (int k = 0; k < 4; ++k) {
        buckets[pending_bucket[k]] = current[k];
      }
    } else {
      for (size_t k = 0; k < npending; ++k) {
        buckets[pending_bucket[k]] = buckets[pending_bucket[k]] + pending_add[k];
      }
    }
    npending = 0;
  };
  for (size_t i = 0; i < n; ++i) {
    int16_t digit = digits[i * nwindows + win];
    if (digit == 0) {
      continue;
    }
    const size_t b = static_cast<size_t>(digit > 0 ? digit : -digit) - 1;
    for (size_t k = 0; k < npending; ++k) {
      if (pending_bucket[k] == b) {
        flush();
        break;
      }
    }
    pending_bucket[npending] = b;
    pending_add[npending] = digit > 0 ? points[i] : -points[i];
    ++npending;
    any = true;
    if (npending == 4) {
      flush();
    }
  }
  flush();
  *window_total = RistrettoPoint::Identity();
  if (any) {
    RistrettoPoint running;  // bucket suffix sum
    for (size_t b = nbuckets; b-- > 0;) {
      running = running + buckets[b];
      *window_total = *window_total + running;
    }
  }
  return any;
}

RistrettoPoint PippengerMsm(std::span<const Scalar> scalars,
                            std::span<const RistrettoPoint> points) {
  const size_t n = scalars.size();
  const int w = PippengerWindow(n);
  const size_t nbuckets = size_t{1} << (w - 1);
  // One extra window absorbs the recoding carry out of the top bits.
  const size_t nwindows = (256 + static_cast<size_t>(w) - 1) / static_cast<size_t>(w) + 1;
  // Scope-bound executor: inherits the caller's pool (or its serial
  // Executor(1)) instead of unconditionally waking the global one.
  Executor& executor = Executor::Current();

  // Signed-digit recoding, all scalars up front (cache-friendly window pass).
  std::vector<int16_t> digits(n * nwindows);
  const int32_t half = int32_t{1} << (w - 1);
  const int32_t full = int32_t{1} << w;
  executor.ParallelForEach(n, [&](size_t i) {
    auto bytes = scalars[i].ToBytes();
    int32_t carry = 0;
    for (size_t win = 0; win < nwindows; ++win) {
      int32_t d = static_cast<int32_t>(ExtractWindow(
                      bytes, win * static_cast<size_t>(w), w)) +
                  carry;
      if (d > half) {
        d -= full;
        carry = 1;
      } else {
        carry = 0;
      }
      digits[i * nwindows + win] = static_cast<int16_t>(d);
    }
    // Canonical scalars are < 2^253 < 2^(w*(nwindows-1)), so the recoding
    // carry always terminates inside the extra window.
  });

  // Window bucket passes are mutually independent: run them on the pool,
  // one per-window total each, then fold the totals with the shared doubling
  // chain. The fold costs ~256 doublings regardless of n, so all the O(n)
  // work parallelizes. Group addition is exact, and each window keeps the
  // seed's term order, so the result is bit-identical at any thread count.
  std::vector<RistrettoPoint> window_totals(nwindows);
  std::vector<uint8_t> window_any(nwindows, 0);
  executor.ParallelForEach(nwindows, [&](size_t win) {
    window_any[win] = PippengerWindowPass(points, digits, win, nwindows, nbuckets,
                                          &window_totals[win])
                          ? 1
                          : 0;
  });

  RistrettoPoint acc;  // identity
  bool started = false;
  for (size_t win = nwindows; win-- > 0;) {
    if (started) {
      for (int d = 0; d < w; ++d) {
        acc = acc.Double();
      }
    }
    if (window_any[win]) {
      acc = acc + window_totals[win];
      started = true;
    }
  }
  return acc;
}

// --- Shared-base support -----------------------------------------------------

std::atomic<uint64_t> g_collapsed_terms{0};
std::atomic<uint64_t> g_table_hits{0};
std::atomic<uint64_t> g_table_misses{0};
std::atomic<uint64_t> g_table_evictions{0};

// Wire keys are canonical ristretto encodings — statistically uniform bytes —
// so the low 8 bytes are already a good hash.
struct WireKeyHash {
  size_t operator()(const CompressedRistretto& key) const {
    return static_cast<size_t>(LoadLe64(key.data()));
  }
};

// Mutex-guarded LRU of odd-multiple tables keyed by wire bytes. Lookups and
// insertions take the lock; the 7-addition table build happens outside it.
// Entries are handed out as shared_ptr so an eviction never invalidates a
// table an in-flight MSM still walks.
class FixedBaseTableCache {
 public:
  std::shared_ptr<const OddTable> Find(const CompressedRistretto& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  // Inserts `table` for `key` unless a concurrent builder won the race, in
  // which case the already-cached table is returned (both are tables of the
  // same point, but returning one canonical winner keeps behavior tidy).
  std::shared_ptr<const OddTable> Insert(const CompressedRistretto& key,
                                         std::shared_ptr<const OddTable> table) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    lru_.emplace_front(key, std::move(table));
    map_[key] = lru_.begin();
    if (lru_.size() > kFixedBaseTableCacheCapacity) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      g_table_evictions.fetch_add(1, std::memory_order_relaxed);
    }
    return lru_.front().second;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
  }

 private:
  std::mutex mu_;
  std::list<std::pair<CompressedRistretto, std::shared_ptr<const OddTable>>> lru_;
  std::unordered_map<CompressedRistretto, decltype(lru_)::iterator, WireKeyHash> map_;
};

FixedBaseTableCache& TableCache() {
  static FixedBaseTableCache* cache = new FixedBaseTableCache();
  return *cache;
}

}  // namespace

RistrettoPoint MultiScalarMulShared(const Scalar& base_scalar,
                                    std::span<const Scalar> scalars,
                                    std::span<const RistrettoPoint> points,
                                    std::span<const CompressedRistretto> keys,
                                    std::span<const uint8_t> key_present) {
  const size_t n = scalars.size();
  Require(points.size() == n && keys.size() == n && key_present.size() == n,
          "msm: shared batch size mismatch");

  // Collapse pass: first-seen order, scalar sums for repeated keys, basepoint
  // terms folded into the fixed-base coefficient.
  Scalar base_acc = base_scalar;
  std::vector<Scalar> term_scalars;
  std::vector<RistrettoPoint> term_points;
  std::vector<const CompressedRistretto*> term_keys;  // nullptr for unkeyed terms
  std::vector<uint32_t> term_uses;                    // key occurrence count per term
  term_scalars.reserve(n);
  term_points.reserve(n);
  term_keys.reserve(n);
  term_uses.reserve(n);
  std::unordered_map<CompressedRistretto, size_t, WireKeyHash> first_seen;
  const CompressedRistretto& base_wire = RistrettoPoint::BaseWire();
  uint64_t collapsed = 0;
  for (size_t i = 0; i < n; ++i) {
    if (key_present[i]) {
      if (keys[i] == base_wire) {
        base_acc = base_acc + scalars[i];
        ++collapsed;
        continue;
      }
      auto [it, inserted] = first_seen.try_emplace(keys[i], term_scalars.size());
      if (!inserted) {
        term_scalars[it->second] = term_scalars[it->second] + scalars[i];
        ++term_uses[it->second];
        ++collapsed;
        continue;
      }
      term_keys.push_back(&keys[i]);
    } else {
      term_keys.push_back(nullptr);
    }
    term_scalars.push_back(scalars[i]);
    term_points.push_back(points[i]);
    term_uses.push_back(1);
  }
  if (collapsed != 0) {
    g_collapsed_terms.fetch_add(collapsed, std::memory_order_relaxed);
  }

  const size_t m = term_scalars.size();
  if (m >= kPippengerThreshold) {
    // Bucket accumulation has no per-term tables to reuse; the collapse above
    // already shrank n, which is the whole win at this scale.
    return PippengerMsm(term_scalars, term_points) + RistrettoPoint::MulBase(base_acc);
  }

  // Straus regime: recurring keyed terms resolve their odd-multiple tables
  // through the process-wide cache; everything else builds throwaway tables
  // four at a time. "Recurring" means the key appeared more than once in this
  // batch (or is already cached) — one-shot keyed terms such as proof
  // commitments would only churn the LRU.
  std::vector<std::shared_ptr<const OddTable>> held(m);
  std::vector<const OddTable*> tables(m, nullptr);
  for (size_t i = 0; i < m; ++i) {
    if (term_keys[i] == nullptr) {
      continue;
    }
    if (term_uses[i] < 2) {
      held[i] = TableCache().Find(*term_keys[i]);
      if (held[i] != nullptr) {
        g_table_hits.fetch_add(1, std::memory_order_relaxed);
        tables[i] = held[i].get();
      }
      continue;
    }
    held[i] = TableCache().Find(*term_keys[i]);
    if (held[i] == nullptr) {
      held[i] = TableCache().Insert(
          *term_keys[i], std::make_shared<OddTable>(OddMultiples<8>(term_points[i])));
      g_table_misses.fetch_add(1, std::memory_order_relaxed);
    } else {
      g_table_hits.fetch_add(1, std::memory_order_relaxed);
    }
    tables[i] = held[i].get();
  }
  std::vector<OddTable> storage;
  BuildMissingTables(term_points, tables, storage);
  return StrausLadder(&base_acc, term_scalars, tables);
}

MsmSharedStats SharedMsmStats() {
  MsmSharedStats stats;
  stats.collapsed_terms = g_collapsed_terms.load(std::memory_order_relaxed);
  stats.table_hits = g_table_hits.load(std::memory_order_relaxed);
  stats.table_misses = g_table_misses.load(std::memory_order_relaxed);
  stats.table_evictions = g_table_evictions.load(std::memory_order_relaxed);
  return stats;
}

void ResetSharedMsmForTest() {
  TableCache().Clear();
  g_collapsed_terms.store(0, std::memory_order_relaxed);
  g_table_hits.store(0, std::memory_order_relaxed);
  g_table_misses.store(0, std::memory_order_relaxed);
  g_table_evictions.store(0, std::memory_order_relaxed);
}

RistrettoPoint MultiScalarMul(std::span<const Scalar> scalars,
                              std::span<const RistrettoPoint> points) {
  Require(scalars.size() == points.size(), "msm: scalar/point count mismatch");
  if (scalars.empty()) {
    return RistrettoPoint::Identity();
  }
  if (scalars.size() < kPippengerThreshold) {
    return StrausMsm(nullptr, scalars, points);
  }
  return PippengerMsm(scalars, points);
}

RistrettoPoint MultiScalarMulWithBase(const Scalar& base_scalar,
                                      std::span<const Scalar> scalars,
                                      std::span<const RistrettoPoint> points) {
  Require(scalars.size() == points.size(), "msm: scalar/point count mismatch");
  if (scalars.size() < kPippengerThreshold) {
    return StrausMsm(&base_scalar, scalars, points);
  }
  // At Pippenger scale the fixed-base term is one of thousands; the
  // precomputed-table MulBase (64 additions) is cheaper than widening the
  // bucket pass by one term.
  return PippengerMsm(scalars, points) + RistrettoPoint::MulBase(base_scalar);
}

RistrettoPoint MultiScalarMulNaive(std::span<const Scalar> scalars,
                                   std::span<const RistrettoPoint> points) {
  Require(scalars.size() == points.size(), "msm: scalar/point count mismatch");
  RistrettoPoint acc;
  for (size_t i = 0; i < scalars.size(); ++i) {
    acc = acc + scalars[i] * points[i];
  }
  return acc;
}

// Defined here rather than in ristretto.cpp so the Schnorr verification
// workhorse rides the shared-doubling ladder with the wide fixed-base table.
RistrettoPoint RistrettoPoint::DoubleScalarMulBase(const Scalar& a, const RistrettoPoint& p,
                                                   const Scalar& b) {
  return MultiScalarMulWithBase(b, std::span<const Scalar>(&a, 1),
                                std::span<const RistrettoPoint>(&p, 1));
}

}  // namespace votegral
