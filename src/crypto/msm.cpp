#include "src/crypto/msm.h"

#include <algorithm>
#include <array>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/executor.h"
#include "src/common/status.h"

namespace votegral {

namespace {

// Signed width-w NAF digits of a scalar, least significant first. Digits are
// odd with |d| < 2^(w-1), and any w consecutive positions hold at most one
// nonzero digit, so an interleaved ladder pays ~256/(w+1) additions per term.
using NafDigits = std::array<int8_t, 256>;

// Computes the width-w NAF of `s` and returns the number of digit positions
// actually used (index of the highest nonzero digit, plus one). Scalars are
// canonical (< ℓ < 2^253); negative-digit corrections can carry at most a few
// bits past the top, so 256 positions always suffice for w <= 8.
size_t ComputeWnaf(const Scalar& s, int w, NafDigits& naf) {
  naf.fill(0);
  std::array<uint64_t, 5> k{};
  auto bytes = s.ToBytes();
  for (int i = 0; i < 4; ++i) {
    k[static_cast<size_t>(i)] = LoadLe64(bytes.data() + 8 * i);
  }
  const uint64_t window = uint64_t{1} << w;
  const uint64_t half = window >> 1;
  size_t used = 0;
  for (size_t pos = 0; pos < 256; ++pos) {
    if ((k[0] | k[1] | k[2] | k[3] | k[4]) == 0) {
      break;
    }
    if (k[0] & 1) {
      uint64_t d = k[0] & (window - 1);
      if (d < half) {
        naf[pos] = static_cast<int8_t>(d);
        k[0] -= d;  // low w bits of k equal d: no borrow
      } else {
        naf[pos] = static_cast<int8_t>(static_cast<int64_t>(d) -
                                       static_cast<int64_t>(window));
        uint64_t carry = window - d;  // k += 2^w - d
        for (size_t i = 0; i < 5 && carry != 0; ++i) {
          uint64_t prev = k[i];
          k[i] += carry;
          carry = (k[i] < prev) ? 1 : 0;
        }
      }
      used = pos + 1;
    }
    for (size_t i = 0; i < 4; ++i) {
      k[i] = (k[i] >> 1) | (k[i + 1] << 63);
    }
    k[4] >>= 1;
  }
  return used;
}

// Odd multiples P, 3P, 5P, ..., (2*Count - 1)P.
template <size_t Count>
std::array<RistrettoPoint, Count> OddMultiples(const RistrettoPoint& p) {
  std::array<RistrettoPoint, Count> table;
  table[0] = p;
  const RistrettoPoint p2 = p.Double();
  for (size_t i = 1; i < Count; ++i) {
    table[i] = table[i - 1] + p2;
  }
  return table;
}

// Precomputed odd multiples of the basepoint for the width-8 fixed-base NAF:
// B, 3B, ..., 127B. Built once per process.
const std::array<RistrettoPoint, 64>& BaseOddMultiples() {
  static const std::array<RistrettoPoint, 64> kTable =
      OddMultiples<64>(RistrettoPoint::Base());
  return kTable;
}

// Adds the digit contribution d * (table of odd multiples) into `acc`.
template <size_t Count>
void AddNafDigit(RistrettoPoint& acc, const std::array<RistrettoPoint, Count>& table,
                 int8_t d) {
  if (d > 0) {
    acc = acc + table[static_cast<size_t>(d >> 1)];
  } else if (d < 0) {
    acc = acc - table[static_cast<size_t>((-d) >> 1)];
  }
}

// Straus interleaved ladder: one shared doubling chain, width-5 wNAF per
// variable point, width-8 wNAF for the optional fixed-base term.
RistrettoPoint StrausMsm(const Scalar* base_scalar, std::span<const Scalar> scalars,
                         std::span<const RistrettoPoint> points) {
  const size_t n = scalars.size();
  std::vector<std::array<RistrettoPoint, 8>> tables;
  tables.reserve(n);
  std::vector<NafDigits> nafs(n);
  size_t height = 0;
  for (size_t i = 0; i < n; ++i) {
    height = std::max(height, ComputeWnaf(scalars[i], 5, nafs[i]));
    tables.push_back(OddMultiples<8>(points[i]));
  }
  NafDigits base_naf{};
  if (base_scalar != nullptr) {
    height = std::max(height, ComputeWnaf(*base_scalar, 8, base_naf));
  }

  RistrettoPoint acc;  // identity
  for (size_t pos = height; pos-- > 0;) {
    acc = acc.Double();
    for (size_t i = 0; i < n; ++i) {
      AddNafDigit(acc, tables[i], nafs[i][pos]);
    }
    if (base_scalar != nullptr) {
      AddNafDigit(acc, BaseOddMultiples(), base_naf[pos]);
    }
  }
  return acc;
}

// Window width for Pippenger as a function of term count; roughly log2(n),
// chosen to minimize ceil(253/w)*(n + 2^w) with signed digits (which halve
// the bucket count relative to unsigned radix-2^w).
int PippengerWindow(size_t n) {
  if (n < 400) return 6;
  if (n < 900) return 7;
  if (n < 2500) return 8;
  if (n < 10000) return 9;
  if (n < 40000) return 10;
  if (n < 150000) return 11;
  return 12;
}

// Reads the w-bit window starting at `bit` from a 32-byte little-endian
// scalar encoding (w <= 12, so at most three bytes contribute). Windows
// beyond bit 255 read as zero.
uint32_t ExtractWindow(const std::array<uint8_t, 32>& bytes, size_t bit, int w) {
  if (bit >= 256) {
    return 0;
  }
  size_t byte = bit / 8;
  int shift = static_cast<int>(bit % 8);
  uint32_t v = static_cast<uint32_t>(bytes[byte]) >> shift;
  int got = 8 - shift;
  for (size_t k = byte + 1; got < w && k < 32; ++k, got += 8) {
    v |= static_cast<uint32_t>(bytes[k]) << got;
  }
  return v & ((uint32_t{1} << w) - 1);
}

// One window's bucket pass of Pippenger with *signed* radix-2^w digits
// (signed recoding halves the bucket count; negative digits contribute the
// negated point — negation is two field negations, essentially free). Terms
// are sorted into buckets by |digit| with one addition per term, then the
// buckets collapse with the running-suffix trick:
//   sum_d d * bucket[d] = sum over suffixes of (bucket[max] + ... + bucket[d]),
// i.e. two additions per bucket instead of a multiplication per bucket.
// Returns whether any digit was nonzero.
bool PippengerWindowPass(std::span<const RistrettoPoint> points,
                         std::span<const int16_t> digits, size_t win, size_t nwindows,
                         size_t nbuckets, RistrettoPoint* window_total) {
  const size_t n = points.size();
  std::vector<RistrettoPoint> buckets(nbuckets);
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    int16_t digit = digits[i * nwindows + win];
    if (digit > 0) {
      buckets[static_cast<size_t>(digit) - 1] =
          buckets[static_cast<size_t>(digit) - 1] + points[i];
      any = true;
    } else if (digit < 0) {
      buckets[static_cast<size_t>(-digit) - 1] =
          buckets[static_cast<size_t>(-digit) - 1] + (-points[i]);
      any = true;
    }
  }
  *window_total = RistrettoPoint::Identity();
  if (any) {
    RistrettoPoint running;  // bucket suffix sum
    for (size_t b = nbuckets; b-- > 0;) {
      running = running + buckets[b];
      *window_total = *window_total + running;
    }
  }
  return any;
}

RistrettoPoint PippengerMsm(std::span<const Scalar> scalars,
                            std::span<const RistrettoPoint> points) {
  const size_t n = scalars.size();
  const int w = PippengerWindow(n);
  const size_t nbuckets = size_t{1} << (w - 1);
  // One extra window absorbs the recoding carry out of the top bits.
  const size_t nwindows = (256 + static_cast<size_t>(w) - 1) / static_cast<size_t>(w) + 1;
  // Scope-bound executor: inherits the caller's pool (or its serial
  // Executor(1)) instead of unconditionally waking the global one.
  Executor& executor = Executor::Current();

  // Signed-digit recoding, all scalars up front (cache-friendly window pass).
  std::vector<int16_t> digits(n * nwindows);
  const int32_t half = int32_t{1} << (w - 1);
  const int32_t full = int32_t{1} << w;
  executor.ParallelForEach(n, [&](size_t i) {
    auto bytes = scalars[i].ToBytes();
    int32_t carry = 0;
    for (size_t win = 0; win < nwindows; ++win) {
      int32_t d = static_cast<int32_t>(ExtractWindow(
                      bytes, win * static_cast<size_t>(w), w)) +
                  carry;
      if (d > half) {
        d -= full;
        carry = 1;
      } else {
        carry = 0;
      }
      digits[i * nwindows + win] = static_cast<int16_t>(d);
    }
    // Canonical scalars are < 2^253 < 2^(w*(nwindows-1)), so the recoding
    // carry always terminates inside the extra window.
  });

  // Window bucket passes are mutually independent: run them on the pool,
  // one per-window total each, then fold the totals with the shared doubling
  // chain. The fold costs ~256 doublings regardless of n, so all the O(n)
  // work parallelizes. Group addition is exact, and each window keeps the
  // seed's term order, so the result is bit-identical at any thread count.
  std::vector<RistrettoPoint> window_totals(nwindows);
  std::vector<uint8_t> window_any(nwindows, 0);
  executor.ParallelForEach(nwindows, [&](size_t win) {
    window_any[win] = PippengerWindowPass(points, digits, win, nwindows, nbuckets,
                                          &window_totals[win])
                          ? 1
                          : 0;
  });

  RistrettoPoint acc;  // identity
  bool started = false;
  for (size_t win = nwindows; win-- > 0;) {
    if (started) {
      for (int d = 0; d < w; ++d) {
        acc = acc.Double();
      }
    }
    if (window_any[win]) {
      acc = acc + window_totals[win];
      started = true;
    }
  }
  return acc;
}

}  // namespace

RistrettoPoint MultiScalarMul(std::span<const Scalar> scalars,
                              std::span<const RistrettoPoint> points) {
  Require(scalars.size() == points.size(), "msm: scalar/point count mismatch");
  if (scalars.empty()) {
    return RistrettoPoint::Identity();
  }
  if (scalars.size() < kPippengerThreshold) {
    return StrausMsm(nullptr, scalars, points);
  }
  return PippengerMsm(scalars, points);
}

RistrettoPoint MultiScalarMulWithBase(const Scalar& base_scalar,
                                      std::span<const Scalar> scalars,
                                      std::span<const RistrettoPoint> points) {
  Require(scalars.size() == points.size(), "msm: scalar/point count mismatch");
  if (scalars.size() < kPippengerThreshold) {
    return StrausMsm(&base_scalar, scalars, points);
  }
  // At Pippenger scale the fixed-base term is one of thousands; the
  // precomputed-table MulBase (64 additions) is cheaper than widening the
  // bucket pass by one term.
  return PippengerMsm(scalars, points) + RistrettoPoint::MulBase(base_scalar);
}

RistrettoPoint MultiScalarMulNaive(std::span<const Scalar> scalars,
                                   std::span<const RistrettoPoint> points) {
  Require(scalars.size() == points.size(), "msm: scalar/point count mismatch");
  RistrettoPoint acc;
  for (size_t i = 0; i < scalars.size(); ++i) {
    acc = acc + scalars[i] * points[i];
  }
  return acc;
}

// Defined here rather than in ristretto.cpp so the Schnorr verification
// workhorse rides the shared-doubling ladder with the wide fixed-base table.
RistrettoPoint RistrettoPoint::DoubleScalarMulBase(const Scalar& a, const RistrettoPoint& p,
                                                   const Scalar& b) {
  return MultiScalarMulWithBase(b, std::span<const Scalar>(&a, 1),
                                std::span<const RistrettoPoint>(&p, 1));
}

}  // namespace votegral
