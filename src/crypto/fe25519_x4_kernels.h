// Internal: the one 10-limb radix-2^25.5 algorithm behind every Fe25519X4
// backend, written against a tiny 4-lane vector policy `V` so the portable,
// AVX2 and NEON translation units instantiate literally the same code.
// Backends therefore agree limb for limb, not just mod p — the differential
// tests compare raw limbs across backends.
//
// Bounds contract (unsigned, per lane):
//   inputs  : even limbs <= 2^26 + 2^12, odd limbs <= 2^25 + 2^12
//   outputs : even limbs <= 2^26, odd limbs < 2^25 + 2^14 (limb 1 < 2^25)
// Worst-case multiply accumulator: 10 terms of at most
// 38 * (2^26.01)^2 < 2^60.8, comfortably inside u64 — which is the whole
// point of the 25.5-bit radix: partial products and carries stay in 64-bit
// lanes, so 4-lane integer SIMD covers the entire kernel.
//
// The vector policy V must provide:
//   static V Load(const uint64_t p[4]);
//   void Store(uint64_t p[4]) const;
//   static V Splat(uint64_t v);
//   V operator+(V) const; V operator-(V) const;
//   static V Mul32(V a, V b);      // (a mod 2^32) * (b mod 2^32), per lane
//   V Shr(int k) const;            // logical >> k, per lane
//   V AndMask(uint64_t mask) const;
//   V Shl(int k) const;            // logical << k, per lane (19*c folding)
#ifndef SRC_CRYPTO_FE25519_X4_KERNELS_H_
#define SRC_CRYPTO_FE25519_X4_KERNELS_H_

#include <cstdint>
#include <type_traits>
#include <utility>

#include "src/crypto/fe25519_x4.h"

namespace votegral {
namespace fe_x4_detail {

inline constexpr uint64_t kMask26 = (uint64_t{1} << 26) - 1;
inline constexpr uint64_t kMask25 = (uint64_t{1} << 25) - 1;

// Limbs of 2p in radix 2^25.5 (limb 0 holds the -2*19): subtraction computes
// a + 2p - b so no lane underflows for in-contract inputs.
inline constexpr uint64_t kTwoP_0 = 2 * (kMask26 + 1 - 19);  // 2^27 - 38
inline constexpr uint64_t kTwoP_even = 2 * kMask26;          // 2^27 - 2
inline constexpr uint64_t kTwoP_odd = 2 * kMask25;           // 2^26 - 2

// Compile-time 0..N-1 loop: hands the body std::integral_constant indices so
// per-index conditionals fold away instead of branching.
template <std::size_t N, typename Body>
inline void ForEachIndex(Body&& body) {
  [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    (body(std::integral_constant<std::size_t, Is>{}), ...);
  }(std::make_index_sequence<N>{});
}

template <typename V>
struct Kernels {
  // One full carry pass 0->9 with the 19*c wrap, plus two finishing steps so
  // the output contract (limb 1 < 2^25, even limbs <= 2^26) holds — tight
  // enough that FeX4ToLanes lands inside the scalar layer's loose bound.
  static inline void CarryChain(V h[10]) {
    V c = h[0].Shr(26);
    h[0] = h[0].AndMask(kMask26);
    h[1] = h[1] + c;
    c = h[1].Shr(25);
    h[1] = h[1].AndMask(kMask25);
    h[2] = h[2] + c;
    c = h[2].Shr(26);
    h[2] = h[2].AndMask(kMask26);
    h[3] = h[3] + c;
    c = h[3].Shr(25);
    h[3] = h[3].AndMask(kMask25);
    h[4] = h[4] + c;
    c = h[4].Shr(26);
    h[4] = h[4].AndMask(kMask26);
    h[5] = h[5] + c;
    c = h[5].Shr(25);
    h[5] = h[5].AndMask(kMask25);
    h[6] = h[6] + c;
    c = h[6].Shr(26);
    h[6] = h[6].AndMask(kMask26);
    h[7] = h[7] + c;
    c = h[7].Shr(25);
    h[7] = h[7].AndMask(kMask25);
    h[8] = h[8] + c;
    c = h[8].Shr(26);
    h[8] = h[8].AndMask(kMask26);
    h[9] = h[9] + c;
    c = h[9].Shr(25);
    h[9] = h[9].AndMask(kMask25);
    // h[0] += 19 * c, as shifts: carries here are < 2^36, so 19*c < 2^41.
    h[0] = h[0] + c.Shl(4) + c.Shl(1) + c;
    c = h[0].Shr(26);
    h[0] = h[0].AndMask(kMask26);
    h[1] = h[1] + c;
    c = h[1].Shr(25);
    h[1] = h[1].AndMask(kMask25);
    h[2] = h[2] + c;
  }

  static void Mul(Fe25519X4& out, const Fe25519X4& a, const Fe25519X4& b) {
    // ref10 fe_mul partial products: h_k = sum over i+j == k (mod 10) of
    // f_i * g_j, times 19 when the product wraps past limb 9, times 2 when
    // i and j are both odd (2^25.5 alignment).
    //
    // Accumulated row-by-row (f_0 through f_9) rather than column-by-column:
    // only the 10 accumulators plus one f row need registers at a time, so
    // the SIMD instantiations stop spilling half their state to the stack.
    // Unsigned 64-bit addition is exact here (each h_k sums 10 terms
    // < 2^60.8), so regrouping the same partial products cannot change a
    // limb: backends stay bit-identical to the portable order.
    V g[10], g19[10];
    for (int j = 0; j < 10; ++j) {
      g[j] = V::Load(b.limb[j]);
    }
    // 19*g_j (j >= 1, the wrapped partial products) stays below 2^32, so
    // Mul32 is exact on it.
    for (int j = 1; j < 10; ++j) {
      g19[j] = g[j].Shl(4) + g[j].Shl(1) + g[j];
    }
    V h[10];
    ForEachIndex<10>([&](auto i_const) {
      constexpr int kI = static_cast<int>(decltype(i_const)::value);
      const V fi = V::Load(a.limb[kI]);
      const V fi2 = (kI & 1) != 0 ? fi + fi : fi;  // odd*odd doubling operand
      ForEachIndex<10>([&](auto j_const) {
        constexpr int kJ = static_cast<int>(decltype(j_const)::value);
        constexpr int kK = (kI + kJ) % 10;
        const V& gv = kI + kJ >= 10 ? g19[kJ] : g[kJ];
        const V& fv = (kI & 1) != 0 && (kJ & 1) != 0 ? fi2 : fi;
        if constexpr (kI == 0) {
          h[kK] = V::Mul32(fv, gv);
        } else {
          h[kK] = h[kK] + V::Mul32(fv, gv);
        }
      });
    });

    CarryChain(h);
    for (int i = 0; i < 10; ++i) {
      h[i].Store(out.limb[i]);
    }
  }

  static void Square(Fe25519X4& out, const Fe25519X4& a) {
    V f[10];
    for (int i = 0; i < 10; ++i) {
      f[i] = V::Load(a.limb[i]);
    }
    // ref10 fe_sq folding: each unordered pair {i, j} with i != j carries
    // coefficient 2 (symmetry), times 2 again when both indices are odd,
    // times 19 when the product wraps past 2^255. The doublings live in
    // f2[i] = 2*f_i, the wrap factors in f9_38 = 38*f9, f8_19 = 19*f8, etc.
    V f2[8];
    for (int i = 0; i < 8; ++i) {
      f2[i] = f[i] + f[i];
    }
    const V f5_38 = (f[5] + f[5]).Shl(4) + (f[5] + f[5]).Shl(1) + f[5] + f[5];
    const V f6_19 = f[6].Shl(4) + f[6].Shl(1) + f[6];
    const V f7_38 = (f[7] + f[7]).Shl(4) + (f[7] + f[7]).Shl(1) + f[7] + f[7];
    const V f8_19 = f[8].Shl(4) + f[8].Shl(1) + f[8];
    const V f9_38 = (f[9] + f[9]).Shl(4) + (f[9] + f[9]).Shl(1) + f[9] + f[9];

    V h[10];
    h[0] = V::Mul32(f[0], f[0]) + V::Mul32(f2[1], f9_38) + V::Mul32(f2[2], f8_19) +
           V::Mul32(f2[3], f7_38) + V::Mul32(f2[4], f6_19) + V::Mul32(f[5], f5_38);
    h[1] = V::Mul32(f2[0], f[1]) + V::Mul32(f[2], f9_38) + V::Mul32(f2[3], f8_19) +
           V::Mul32(f[4], f7_38) + V::Mul32(f2[5], f6_19);
    h[2] = V::Mul32(f2[0], f[2]) + V::Mul32(f2[1], f[1]) + V::Mul32(f2[3], f9_38) +
           V::Mul32(f2[4], f8_19) + V::Mul32(f2[5], f7_38) + V::Mul32(f[6], f6_19);
    h[3] = V::Mul32(f2[0], f[3]) + V::Mul32(f2[1], f[2]) + V::Mul32(f[4], f9_38) +
           V::Mul32(f2[5], f8_19) + V::Mul32(f[6], f7_38);
    h[4] = V::Mul32(f2[0], f[4]) + V::Mul32(f2[1], f2[3]) + V::Mul32(f[2], f[2]) +
           V::Mul32(f2[5], f9_38) + V::Mul32(f2[6], f8_19) + V::Mul32(f[7], f7_38);
    h[5] = V::Mul32(f2[0], f[5]) + V::Mul32(f2[1], f[4]) + V::Mul32(f2[2], f[3]) +
           V::Mul32(f[6], f9_38) + V::Mul32(f2[7], f8_19);
    h[6] = V::Mul32(f2[0], f[6]) + V::Mul32(f2[1], f2[5]) + V::Mul32(f2[2], f[4]) +
           V::Mul32(f2[3], f[3]) + V::Mul32(f2[7], f9_38) + V::Mul32(f[8], f8_19);
    h[7] = V::Mul32(f2[0], f[7]) + V::Mul32(f2[1], f[6]) + V::Mul32(f2[2], f[5]) +
           V::Mul32(f2[3], f[4]) + V::Mul32(f[8], f9_38);
    h[8] = V::Mul32(f2[0], f[8]) + V::Mul32(f2[1], f2[7]) + V::Mul32(f2[2], f[6]) +
           V::Mul32(f2[3], f2[5]) + V::Mul32(f[4], f[4]) + V::Mul32(f[9], f9_38);
    h[9] = V::Mul32(f2[0], f[9]) + V::Mul32(f2[1], f[8]) + V::Mul32(f2[2], f[7]) +
           V::Mul32(f2[3], f[6]) + V::Mul32(f2[4], f[5]);

    CarryChain(h);
    for (int i = 0; i < 10; ++i) {
      h[i].Store(out.limb[i]);
    }
  }

  static void Add(Fe25519X4& out, const Fe25519X4& a, const Fe25519X4& b) {
    V h[10];
    for (int i = 0; i < 10; ++i) {
      h[i] = V::Load(a.limb[i]) + V::Load(b.limb[i]);
    }
    CarryChain(h);
    for (int i = 0; i < 10; ++i) {
      h[i].Store(out.limb[i]);
    }
  }

  static void Sub(Fe25519X4& out, const Fe25519X4& a, const Fe25519X4& b) {
    V h[10];
    h[0] = V::Load(a.limb[0]) + V::Splat(kTwoP_0) - V::Load(b.limb[0]);
    for (int i = 1; i < 10; ++i) {
      const uint64_t twop = (i & 1) != 0 ? kTwoP_odd : kTwoP_even;
      h[i] = V::Load(a.limb[i]) + V::Splat(twop) - V::Load(b.limb[i]);
    }
    CarryChain(h);
    for (int i = 0; i < 10; ++i) {
      h[i].Store(out.limb[i]);
    }
  }
};

// The function-pointer table dispatch hands out (one per backend).
struct FeX4Kernels {
  void (*mul)(Fe25519X4&, const Fe25519X4&, const Fe25519X4&);
  void (*square)(Fe25519X4&, const Fe25519X4&);
  void (*add)(Fe25519X4&, const Fe25519X4&, const Fe25519X4&);
  void (*sub)(Fe25519X4&, const Fe25519X4&, const Fe25519X4&);
};

// Implemented by the backend translation units that are compiled in; null
// semantics are handled by the dispatcher (fe25519_x4.cpp).
const FeX4Kernels* PortableKernels();
#if defined(VOTEGRAL_HAVE_AVX2)
const FeX4Kernels* Avx2Kernels();
#endif
#if defined(VOTEGRAL_HAVE_NEON)
const FeX4Kernels* NeonKernels();
#endif

}  // namespace fe_x4_detail
}  // namespace votegral

#endif  // SRC_CRYPTO_FE25519_X4_KERNELS_H_
