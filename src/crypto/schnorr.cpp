#include "src/crypto/schnorr.h"

#include "src/common/bytes.h"
#include "src/crypto/sha512.h"

namespace votegral {

namespace {

constexpr std::string_view kNonceDomain = "votegral/schnorr/nonce/v1";
constexpr std::string_view kChallengeDomain = "votegral/schnorr/challenge/v1";

Scalar Challenge(const CompressedRistretto& r_bytes, const CompressedRistretto& pk_bytes,
                 std::span<const uint8_t> message) {
  auto digest = Sha512::HashParts({AsBytes(kChallengeDomain), r_bytes, pk_bytes, message});
  return Scalar::FromBytesWide(digest);
}

}  // namespace

Bytes SchnorrSignature::Serialize() const {
  Bytes out(r_bytes.begin(), r_bytes.end());
  auto s_bytes = s.ToBytes();
  out.insert(out.end(), s_bytes.begin(), s_bytes.end());
  return out;
}

std::optional<SchnorrSignature> SchnorrSignature::Parse(std::span<const uint8_t> bytes) {
  if (bytes.size() != 64) {
    return std::nullopt;
  }
  SchnorrSignature sig;
  std::copy(bytes.begin(), bytes.begin() + 32, sig.r_bytes.begin());
  auto s = Scalar::FromCanonicalBytes(bytes.subspan(32, 32));
  if (!s.has_value()) {
    return std::nullopt;
  }
  sig.s = *s;
  return sig;
}

SchnorrKeyPair SchnorrKeyPair::Generate(Rng& rng) {
  Scalar sk = Scalar::Random(rng);
  return SchnorrKeyPair(sk, RistrettoPoint::MulBase(sk));
}

SchnorrKeyPair SchnorrKeyPair::FromSecret(const Scalar& sk) {
  return SchnorrKeyPair(sk, RistrettoPoint::MulBase(sk));
}

SchnorrSignature SchnorrKeyPair::Sign(std::span<const uint8_t> message, Rng& rng) const {
  Bytes hedge = rng.RandomBytes(32);
  auto sk_bytes = sk_.ToBytes();
  auto nonce_digest = Sha512::HashParts({AsBytes(kNonceDomain), sk_bytes, hedge, message});
  Scalar k = Scalar::FromBytesWide(nonce_digest);

  SchnorrSignature sig;
  sig.r_bytes = RistrettoPoint::MulBase(k).Encode();
  Scalar c = Challenge(sig.r_bytes, pk_bytes_, message);
  sig.s = k + c * sk_;
  return sig;
}

Status SchnorrVerify(const CompressedRistretto& pk_bytes, std::span<const uint8_t> message,
                     const SchnorrSignature& sig) {
  auto pk = RistrettoPoint::Decode(pk_bytes);
  if (!pk.has_value()) {
    return Status::Error("schnorr: invalid public key encoding");
  }
  Scalar c = Challenge(sig.r_bytes, pk_bytes, message);
  // Check s*B == R + c*P  <=>  R == s*B - c*P.
  RistrettoPoint r = RistrettoPoint::DoubleScalarMulBase(-c, *pk, sig.s);
  if (!ConstantTimeEqual(r.Encode(), sig.r_bytes)) {
    return Status::Error("schnorr: signature verification failed");
  }
  return Status::Ok();
}

}  // namespace votegral
