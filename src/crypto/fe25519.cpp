#include "src/crypto/fe25519.h"

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace votegral {

namespace {

using u128 = unsigned __int128;

constexpr uint64_t kMask51 = (uint64_t{1} << 51) - 1;

// Limbs of 2p in radix 2^51: subtracting b from a computes a + 2p - b so no
// limb underflows for loosely reduced inputs.
constexpr uint64_t kTwoP0 = 0xFFFFFFFFFFFDAULL;  // 2*(2^51 - 19)
constexpr uint64_t kTwoP1234 = 0xFFFFFFFFFFFFEULL;  // 2*(2^51 - 1)

// One pass of carry propagation; leaves each limb < 2^51 + 2^13 for any
// input whose limbs are < 2^63.
Fe25519 Carry(Fe25519 f) {
  uint64_t c;
  c = f.limb[0] >> 51;
  f.limb[0] &= kMask51;
  f.limb[1] += c;
  c = f.limb[1] >> 51;
  f.limb[1] &= kMask51;
  f.limb[2] += c;
  c = f.limb[2] >> 51;
  f.limb[2] &= kMask51;
  f.limb[3] += c;
  c = f.limb[3] >> 51;
  f.limb[3] &= kMask51;
  f.limb[4] += c;
  c = f.limb[4] >> 51;
  f.limb[4] &= kMask51;
  f.limb[0] += 19 * c;
  c = f.limb[0] >> 51;
  f.limb[0] &= kMask51;
  f.limb[1] += c;
  return f;
}

// The exponent p - 2 = 2^255 - 21 as 32 little-endian bytes (for inversion).
constexpr uint8_t kExpPMinus2[32] = {
    0xeb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0x7f};

// The exponent (p - 5) / 8 = 2^252 - 3.
constexpr uint8_t kExpP58[32] = {
    0xfd, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0x0f};

// The exponent (p - 1) / 4 = 2^253 - 5 (sqrt(-1) = 2^((p-1)/4) since 2 is a
// quadratic non-residue mod p).
constexpr uint8_t kExpP14[32] = {
    0xfb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0x1f};

}  // namespace

Fe25519 FeZero() { return Fe25519{{0, 0, 0, 0, 0}}; }

Fe25519 FeOne() { return Fe25519{{1, 0, 0, 0, 0}}; }

Fe25519 FeFromU64(uint64_t value) {
  Fe25519 f{{value & kMask51, value >> 51, 0, 0, 0}};
  return f;
}

Fe25519 FeFromBytes(std::span<const uint8_t> bytes32) {
  Require(bytes32.size() == 32, "FeFromBytes: need 32 bytes");
  const uint8_t* s = bytes32.data();
  Fe25519 f;
  f.limb[0] = LoadLe64(s) & kMask51;
  f.limb[1] = (LoadLe64(s + 6) >> 3) & kMask51;
  f.limb[2] = (LoadLe64(s + 12) >> 6) & kMask51;
  f.limb[3] = (LoadLe64(s + 19) >> 1) & kMask51;
  f.limb[4] = (LoadLe64(s + 24) >> 12) & kMask51;
  return f;
}

std::array<uint8_t, 32> FeToBytes(const Fe25519& f) {
  Fe25519 t = Carry(Carry(f));
  // Compute q = 1 iff t >= p, by propagating the carry of (t + 19) past bit
  // 255, then subtract q*p by adding 19*q and masking bit 255.
  uint64_t q = (t.limb[0] + 19) >> 51;
  q = (t.limb[1] + q) >> 51;
  q = (t.limb[2] + q) >> 51;
  q = (t.limb[3] + q) >> 51;
  q = (t.limb[4] + q) >> 51;
  t.limb[0] += 19 * q;
  t.limb[1] += t.limb[0] >> 51;
  t.limb[0] &= kMask51;
  t.limb[2] += t.limb[1] >> 51;
  t.limb[1] &= kMask51;
  t.limb[3] += t.limb[2] >> 51;
  t.limb[2] &= kMask51;
  t.limb[4] += t.limb[3] >> 51;
  t.limb[3] &= kMask51;
  t.limb[4] &= kMask51;

  std::array<uint8_t, 32> out;
  uint64_t w0 = t.limb[0] | (t.limb[1] << 51);
  uint64_t w1 = (t.limb[1] >> 13) | (t.limb[2] << 38);
  uint64_t w2 = (t.limb[2] >> 26) | (t.limb[3] << 25);
  uint64_t w3 = (t.limb[3] >> 39) | (t.limb[4] << 12);
  StoreLe64(out.data(), w0);
  StoreLe64(out.data() + 8, w1);
  StoreLe64(out.data() + 16, w2);
  StoreLe64(out.data() + 24, w3);
  return out;
}

bool FeBytesAreCanonical(std::span<const uint8_t> bytes32) {
  if (bytes32.size() != 32) {
    return false;
  }
  auto round_trip = FeToBytes(FeFromBytes(bytes32));
  return ConstantTimeEqual(round_trip, bytes32);
}

Fe25519 FeAdd(const Fe25519& a, const Fe25519& b) {
  Fe25519 r;
  for (int i = 0; i < 5; ++i) {
    r.limb[i] = a.limb[i] + b.limb[i];
  }
  return Carry(r);
}

Fe25519 FeSub(const Fe25519& a, const Fe25519& b) {
  Fe25519 r;
  r.limb[0] = a.limb[0] + kTwoP0 - b.limb[0];
  r.limb[1] = a.limb[1] + kTwoP1234 - b.limb[1];
  r.limb[2] = a.limb[2] + kTwoP1234 - b.limb[2];
  r.limb[3] = a.limb[3] + kTwoP1234 - b.limb[3];
  r.limb[4] = a.limb[4] + kTwoP1234 - b.limb[4];
  return Carry(r);
}

Fe25519 FeNeg(const Fe25519& a) { return FeSub(FeZero(), a); }

Fe25519 FeMul(const Fe25519& a, const Fe25519& b) {
  const uint64_t f0 = a.limb[0], f1 = a.limb[1], f2 = a.limb[2], f3 = a.limb[3], f4 = a.limb[4];
  const uint64_t g0 = b.limb[0], g1 = b.limb[1], g2 = b.limb[2], g3 = b.limb[3], g4 = b.limb[4];

  u128 t0 = (u128)f0 * g0 +
            (u128)19 * ((u128)f1 * g4 + (u128)f2 * g3 + (u128)f3 * g2 + (u128)f4 * g1);
  u128 t1 = (u128)f0 * g1 + (u128)f1 * g0 +
            (u128)19 * ((u128)f2 * g4 + (u128)f3 * g3 + (u128)f4 * g2);
  u128 t2 = (u128)f0 * g2 + (u128)f1 * g1 + (u128)f2 * g0 +
            (u128)19 * ((u128)f3 * g4 + (u128)f4 * g3);
  u128 t3 = (u128)f0 * g3 + (u128)f1 * g2 + (u128)f2 * g1 + (u128)f3 * g0 +
            (u128)19 * ((u128)f4 * g4);
  u128 t4 = (u128)f0 * g4 + (u128)f1 * g3 + (u128)f2 * g2 + (u128)f3 * g1 + (u128)f4 * g0;

  Fe25519 r;
  u128 c;
  c = t0 >> 51;
  r.limb[0] = (uint64_t)t0 & kMask51;
  t1 += c;
  c = t1 >> 51;
  r.limb[1] = (uint64_t)t1 & kMask51;
  t2 += c;
  c = t2 >> 51;
  r.limb[2] = (uint64_t)t2 & kMask51;
  t3 += c;
  c = t3 >> 51;
  r.limb[3] = (uint64_t)t3 & kMask51;
  t4 += c;
  c = t4 >> 51;
  r.limb[4] = (uint64_t)t4 & kMask51;
  r.limb[0] += (uint64_t)c * 19;
  r.limb[1] += r.limb[0] >> 51;
  r.limb[0] &= kMask51;
  return r;
}

Fe25519 FeSquare(const Fe25519& a) {
  // Dedicated squaring: the 25 cross products of FeMul collapse to 15 by
  // symmetry (f_i*f_j appears twice for i != j). Squarings dominate every
  // doubling chain and every fixed-exponent power, so this is one of the
  // highest-leverage field operations in the codebase.
  const uint64_t f0 = a.limb[0], f1 = a.limb[1], f2 = a.limb[2], f3 = a.limb[3], f4 = a.limb[4];
  const uint64_t d0 = 2 * f0;
  const uint64_t d1 = 2 * f1;
  const uint64_t f3_19 = 19 * f3;
  const uint64_t f4_19 = 19 * f4;

  u128 t0 = (u128)f0 * f0 + (u128)d1 * f4_19 + (u128)(2 * f2) * f3_19;
  u128 t1 = (u128)d0 * f1 + (u128)(2 * f2) * f4_19 + (u128)f3 * f3_19;
  u128 t2 = (u128)d0 * f2 + (u128)f1 * f1 + (u128)(2 * f3) * f4_19;
  u128 t3 = (u128)d0 * f3 + (u128)d1 * f2 + (u128)f4 * f4_19;
  u128 t4 = (u128)d0 * f4 + (u128)d1 * f3 + (u128)f2 * f2;

  Fe25519 r;
  u128 c;
  c = t0 >> 51;
  r.limb[0] = (uint64_t)t0 & kMask51;
  t1 += c;
  c = t1 >> 51;
  r.limb[1] = (uint64_t)t1 & kMask51;
  t2 += c;
  c = t2 >> 51;
  r.limb[2] = (uint64_t)t2 & kMask51;
  t3 += c;
  c = t3 >> 51;
  r.limb[3] = (uint64_t)t3 & kMask51;
  t4 += c;
  c = t4 >> 51;
  r.limb[4] = (uint64_t)t4 & kMask51;
  r.limb[0] += (uint64_t)c * 19;
  r.limb[1] += r.limb[0] >> 51;
  r.limb[0] &= kMask51;
  return r;
}

Fe25519 FeMulSmall(const Fe25519& a, uint32_t small) {
  Fe25519 r;
  u128 c = 0;
  for (int i = 0; i < 5; ++i) {
    u128 t = (u128)a.limb[i] * small + c;
    r.limb[i] = (uint64_t)t & kMask51;
    c = t >> 51;
  }
  r.limb[0] += (uint64_t)c * 19;
  return Carry(r);
}

Fe25519 FePow(const Fe25519& f, std::span<const uint8_t> exponent32) {
  Require(exponent32.size() == 32, "FePow: need 32-byte exponent");
  Fe25519 result = FeOne();
  bool started = false;
  for (int i = 255; i >= 0; --i) {
    if (started) {
      result = FeSquare(result);
    }
    int bit = (exponent32[static_cast<size_t>(i / 8)] >> (i % 8)) & 1;
    if (bit != 0) {
      result = started ? FeMul(result, f) : f;
      started = true;
    }
  }
  return started ? result : FeOne();
}

namespace {

// f^(2^k) by k successive squarings.
Fe25519 Pow2k(Fe25519 f, int k) {
  while (k-- > 0) {
    f = FeSquare(f);
  }
  return f;
}

// z^(2^250 - 1), the shared prefix of the p-2 and (p-5)/8 addition chains
// (the classic ref10 chain: 254 squarings and 11 multiplications total,
// against ~250 multiplications for square-and-multiply on these nearly
// all-ones exponents). Also emits z^11 for the inversion tail.
Fe25519 PowChain250(const Fe25519& z, Fe25519* z11_out) {
  Fe25519 z2 = FeSquare(z);                      // 2
  Fe25519 z9 = FeMul(z, Pow2k(z2, 2));           // 9
  Fe25519 z11 = FeMul(z2, z9);                   // 11
  Fe25519 z31 = FeMul(z9, FeSquare(z11));        // 2^5 - 1
  Fe25519 t10 = FeMul(z31, Pow2k(z31, 5));       // 2^10 - 1
  Fe25519 t20 = FeMul(t10, Pow2k(t10, 10));      // 2^20 - 1
  Fe25519 t40 = FeMul(t20, Pow2k(t20, 20));      // 2^40 - 1
  Fe25519 t50 = FeMul(t10, Pow2k(t40, 10));      // 2^50 - 1
  Fe25519 t100 = FeMul(t50, Pow2k(t50, 50));     // 2^100 - 1
  Fe25519 t200 = FeMul(t100, Pow2k(t100, 100));  // 2^200 - 1
  Fe25519 t = FeMul(t50, Pow2k(t200, 50));       // 2^250 - 1
  if (z11_out != nullptr) {
    *z11_out = z11;
  }
  return t;
}

}  // namespace

Fe25519 FeInvert(const Fe25519& f) {
  // f^(p-2) = f^((2^250-1)*2^5 + 11).
  Fe25519 z11;
  Fe25519 t = PowChain250(f, &z11);
  return FeMul(Pow2k(t, 5), z11);
}

Fe25519 FePow2523(const Fe25519& f) {
  // f^((p-5)/8) = f^((2^250-1)*2^2 + 1).
  return FeMul(Pow2k(PowChain250(f, nullptr), 2), f);
}

bool FeIsNegative(const Fe25519& f) { return (FeToBytes(f)[0] & 1) != 0; }

bool FeIsZero(const Fe25519& f) {
  auto bytes = FeToBytes(f);
  uint8_t acc = 0;
  for (uint8_t b : bytes) {
    acc |= b;
  }
  return acc == 0;
}

bool FeEqual(const Fe25519& a, const Fe25519& b) {
  return ConstantTimeEqual(FeToBytes(a), FeToBytes(b));
}

Fe25519 FeAbs(const Fe25519& f) { return FeIsNegative(f) ? FeNeg(f) : f; }

Fe25519 FeSelect(const Fe25519& f, const Fe25519& t, bool b) { return b ? t : f; }

const Fe25519& FeSqrtM1() {
  static const Fe25519 kSqrtM1 = FePow(FeFromU64(2), kExpP14);
  return kSqrtM1;
}

const Fe25519& FeEdwardsD() {
  static const Fe25519 kD = FeNeg(FeMul(FeFromU64(121665), FeInvert(FeFromU64(121666))));
  return kD;
}

SqrtRatioResult FeSqrtRatioM1(const Fe25519& u, const Fe25519& v) {
  // RFC 9496 §4.2 (SQRT_RATIO_M1).
  Fe25519 v3 = FeMul(FeSquare(v), v);
  Fe25519 v7 = FeMul(FeSquare(v3), v);
  Fe25519 r = FeMul(FeMul(u, v3), FePow2523(FeMul(u, v7)));
  Fe25519 check = FeMul(v, FeSquare(r));

  bool correct_sign_sqrt = FeEqual(check, u);
  Fe25519 u_neg = FeNeg(u);
  bool flipped_sign_sqrt = FeEqual(check, u_neg);
  bool flipped_sign_sqrt_i = FeEqual(check, FeMul(u_neg, FeSqrtM1()));

  Fe25519 r_prime = FeMul(r, FeSqrtM1());
  r = FeSelect(r, r_prime, flipped_sign_sqrt || flipped_sign_sqrt_i);
  r = FeAbs(r);

  return SqrtRatioResult{correct_sign_sqrt || flipped_sign_sqrt, r};
}

SqrtRatioResult FeInvSqrt(const Fe25519& v) {
  // SQRT_RATIO_M1 with u = 1: r = v^3 * (v^7)^((p-5)/8), then the same
  // fourth-root-of-unity correction and sign canonicalization.
  Fe25519 v3 = FeMul(FeSquare(v), v);
  Fe25519 v7 = FeMul(FeSquare(v3), v);
  Fe25519 r = FeMul(v3, FePow2523(v7));
  Fe25519 check = FeMul(v, FeSquare(r));

  Fe25519 one = FeOne();
  bool correct_sign_sqrt = FeEqual(check, one);
  Fe25519 minus_one = FeNeg(one);
  bool flipped_sign_sqrt = FeEqual(check, minus_one);
  bool flipped_sign_sqrt_i = FeEqual(check, FeMul(minus_one, FeSqrtM1()));

  Fe25519 r_prime = FeMul(r, FeSqrtM1());
  r = FeSelect(r, r_prime, flipped_sign_sqrt || flipped_sign_sqrt_i);
  r = FeAbs(r);

  return SqrtRatioResult{correct_sign_sqrt || flipped_sign_sqrt, r};
}

}  // namespace votegral
