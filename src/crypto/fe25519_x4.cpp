#include "src/crypto/fe25519_x4.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "src/common/status.h"
#include "src/crypto/fe25519_x4_kernels.h"

namespace votegral {

namespace fe_x4_detail {

namespace {

// Portable 4-lane vector: plain u64 loops the compiler may (or may not)
// auto-vectorize. Runs the identical Kernels<> algorithm as the SIMD
// backends, so its limbs match theirs bit for bit.
struct ScalarVec {
  uint64_t l[4];

  static ScalarVec Load(const uint64_t p[4]) {
    ScalarVec v;
    for (int k = 0; k < 4; ++k) {
      v.l[k] = p[k];
    }
    return v;
  }
  void Store(uint64_t p[4]) const {
    for (int k = 0; k < 4; ++k) {
      p[k] = l[k];
    }
  }
  static ScalarVec Splat(uint64_t value) {
    ScalarVec v;
    for (int k = 0; k < 4; ++k) {
      v.l[k] = value;
    }
    return v;
  }
  ScalarVec operator+(const ScalarVec& o) const {
    ScalarVec v;
    for (int k = 0; k < 4; ++k) {
      v.l[k] = l[k] + o.l[k];
    }
    return v;
  }
  ScalarVec operator-(const ScalarVec& o) const {
    ScalarVec v;
    for (int k = 0; k < 4; ++k) {
      v.l[k] = l[k] - o.l[k];
    }
    return v;
  }
  static ScalarVec Mul32(const ScalarVec& a, const ScalarVec& b) {
    ScalarVec v;
    for (int k = 0; k < 4; ++k) {
      v.l[k] = static_cast<uint64_t>(static_cast<uint32_t>(a.l[k])) *
               static_cast<uint64_t>(static_cast<uint32_t>(b.l[k]));
    }
    return v;
  }
  ScalarVec Shr(int s) const {
    ScalarVec v;
    for (int k = 0; k < 4; ++k) {
      v.l[k] = l[k] >> s;
    }
    return v;
  }
  ScalarVec Shl(int s) const {
    ScalarVec v;
    for (int k = 0; k < 4; ++k) {
      v.l[k] = l[k] << s;
    }
    return v;
  }
  ScalarVec AndMask(uint64_t mask) const {
    ScalarVec v;
    for (int k = 0; k < 4; ++k) {
      v.l[k] = l[k] & mask;
    }
    return v;
  }
};

}  // namespace

const FeX4Kernels* PortableKernels() {
  static const FeX4Kernels kPortable = {
      &Kernels<ScalarVec>::Mul,
      &Kernels<ScalarVec>::Square,
      &Kernels<ScalarVec>::Add,
      &Kernels<ScalarVec>::Sub,
  };
  return &kPortable;
}

namespace {

// True when the running CPU can execute the AVX2 kernels (the compile-time
// half is the VOTEGRAL_HAVE_AVX2 guard around Avx2Kernels()).
bool CpuHasAvx2() {
#if defined(VOTEGRAL_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const FeX4Kernels* KernelsFor(FeSimdBackend backend) {
  switch (backend) {
    case FeSimdBackend::kScalar:
      return PortableKernels();
    case FeSimdBackend::kAvx2:
#if defined(VOTEGRAL_HAVE_AVX2)
      return CpuHasAvx2() ? Avx2Kernels() : nullptr;
#else
      return nullptr;
#endif
    case FeSimdBackend::kNeon:
#if defined(VOTEGRAL_HAVE_NEON)
      return NeonKernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

FeSimdBackend PickBackend() {
  if (const char* env = std::getenv("VOTEGRAL_SIMD"); env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "scalar") == 0) {
      return FeSimdBackend::kScalar;
    }
    if (std::strcmp(env, "avx2") == 0 && KernelsFor(FeSimdBackend::kAvx2) != nullptr) {
      return FeSimdBackend::kAvx2;
    }
    if (std::strcmp(env, "neon") == 0 && KernelsFor(FeSimdBackend::kNeon) != nullptr) {
      return FeSimdBackend::kNeon;
    }
    // Unknown or unavailable request: fall through to auto-detection rather
    // than failing — the portable backend is always a correct answer.
  }
  if (KernelsFor(FeSimdBackend::kAvx2) != nullptr) {
    return FeSimdBackend::kAvx2;
  }
  if (KernelsFor(FeSimdBackend::kNeon) != nullptr) {
    return FeSimdBackend::kNeon;
  }
  return FeSimdBackend::kScalar;
}

struct Dispatch {
  std::atomic<const FeX4Kernels*> kernels;
  std::atomic<FeSimdBackend> backend;

  Dispatch() {
    FeSimdBackend chosen = PickBackend();
    backend.store(chosen, std::memory_order_relaxed);
    kernels.store(KernelsFor(chosen), std::memory_order_relaxed);
  }
};

Dispatch& GetDispatch() {
  static Dispatch dispatch;
  return dispatch;
}

inline const FeX4Kernels& Active() {
  return *GetDispatch().kernels.load(std::memory_order_relaxed);
}

}  // namespace

}  // namespace fe_x4_detail

const char* FeSimdBackendName(FeSimdBackend backend) {
  switch (backend) {
    case FeSimdBackend::kScalar:
      return "scalar";
    case FeSimdBackend::kAvx2:
      return "avx2";
    case FeSimdBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

bool FeSimdBackendAvailable(FeSimdBackend backend) {
  return fe_x4_detail::KernelsFor(backend) != nullptr;
}

FeSimdBackend ActiveFeSimdBackend() {
  return fe_x4_detail::GetDispatch().backend.load(std::memory_order_relaxed);
}

FeSimdBackend SetFeSimdBackendForTest(FeSimdBackend backend) {
  const fe_x4_detail::FeX4Kernels* kernels = fe_x4_detail::KernelsFor(backend);
  Require(kernels != nullptr, "SetFeSimdBackendForTest: backend not available");
  fe_x4_detail::Dispatch& dispatch = fe_x4_detail::GetDispatch();
  FeSimdBackend previous = dispatch.backend.exchange(backend, std::memory_order_relaxed);
  dispatch.kernels.store(kernels, std::memory_order_relaxed);
  return previous;
}

Fe25519X4 FeX4FromLanes(const Fe25519 lanes[4]) {
  // Split each 51-bit limb into a 26-bit low half and a 25(+)-bit high half.
  // For loosely reduced inputs (limbs < 2^51 + 2^13) the high half is at
  // most 2^25, inside the kernel input contract with no carry pass needed.
  constexpr uint64_t kMask26 = (uint64_t{1} << 26) - 1;
  Fe25519X4 v;
  for (int k = 0; k < 4; ++k) {
    for (int j = 0; j < 5; ++j) {
      v.limb[2 * j][k] = lanes[k].limb[j] & kMask26;
      v.limb[2 * j + 1][k] = lanes[k].limb[j] >> 26;
    }
  }
  return v;
}

void FeX4ToLanes(const Fe25519X4& v, Fe25519 lanes[4]) {
  // Under the kernel output contract (limb 1 < 2^25, limb 2 <= 2^26, all
  // other limbs strictly below their 26/25-bit mask bound) every
  // reassembled 51-bit limb is at most 2^26 + (2^25 - 1) * 2^26 = 2^51 —
  // inside the scalar layer's loose-reduction invariant. The two finishing
  // carry steps in CarryChain exist precisely so this holds.
  for (int k = 0; k < 4; ++k) {
    for (int j = 0; j < 5; ++j) {
      lanes[k].limb[j] = v.limb[2 * j][k] + (v.limb[2 * j + 1][k] << 26);
    }
  }
}

Fe25519X4 FeX4Splat(const Fe25519& f) {
  const Fe25519 lanes[4] = {f, f, f, f};
  return FeX4FromLanes(lanes);
}

void FeMulX4(Fe25519X4& out, const Fe25519X4& a, const Fe25519X4& b) {
  fe_x4_detail::Active().mul(out, a, b);
}

void FeSquareX4(Fe25519X4& out, const Fe25519X4& a) { fe_x4_detail::Active().square(out, a); }

void FeAddX4(Fe25519X4& out, const Fe25519X4& a, const Fe25519X4& b) {
  fe_x4_detail::Active().add(out, a, b);
}

void FeSubX4(Fe25519X4& out, const Fe25519X4& a, const Fe25519X4& b) {
  fe_x4_detail::Active().sub(out, a, b);
}

namespace {

// t = t^(2^k), lane-parallel.
void Pow2kX4(Fe25519X4& t, int k) {
  while (k-- > 0) {
    FeSquareX4(t, t);
  }
}

// z^(2^250 - 1), the lane-parallel port of fe25519.cpp's PowChain250 (the
// shared prefix of the p-2 and (p-5)/8 chains; 254 squarings, 11 multiplies
// — all of them 4 lanes wide).
Fe25519X4 PowChain250X4(const Fe25519X4& z) {
  Fe25519X4 z2, z9, z11, z31, t10, t20, t40, t50, t100, t200, t, tmp;
  FeSquareX4(z2, z);              // 2
  tmp = z2;
  Pow2kX4(tmp, 2);
  FeMulX4(z9, z, tmp);            // 9
  FeMulX4(z11, z2, z9);           // 11
  FeSquareX4(tmp, z11);
  FeMulX4(z31, z9, tmp);          // 2^5 - 1
  tmp = z31;
  Pow2kX4(tmp, 5);
  FeMulX4(t10, z31, tmp);         // 2^10 - 1
  tmp = t10;
  Pow2kX4(tmp, 10);
  FeMulX4(t20, t10, tmp);         // 2^20 - 1
  tmp = t20;
  Pow2kX4(tmp, 20);
  FeMulX4(t40, t20, tmp);         // 2^40 - 1
  tmp = t40;
  Pow2kX4(tmp, 10);
  FeMulX4(t50, t10, tmp);         // 2^50 - 1
  tmp = t50;
  Pow2kX4(tmp, 50);
  FeMulX4(t100, t50, tmp);        // 2^100 - 1
  tmp = t100;
  Pow2kX4(tmp, 100);
  FeMulX4(t200, t100, tmp);       // 2^200 - 1
  tmp = t200;
  Pow2kX4(tmp, 50);
  FeMulX4(t, t50, tmp);           // 2^250 - 1
  return t;
}

// f^((p-5)/8) = f^((2^250-1)*2^2 + 1), lane-parallel FePow2523.
Fe25519X4 Pow2523X4(const Fe25519X4& f) {
  Fe25519X4 t = PowChain250X4(f);
  Pow2kX4(t, 2);
  Fe25519X4 r;
  FeMulX4(r, t, f);
  return r;
}

}  // namespace

namespace {

// FeInvSqrtX4 route override: -1 auto (calibrate at first use), 0 four
// scalar FeInvSqrt calls, 1 the 4-wide kernel chain.
std::atomic<int> g_invsqrt_mode{-1};

void FeInvSqrtX4Kernels(const Fe25519 v[4], SqrtRatioResult out[4]);

// One-shot calibration, same shape as RistrettoPoint::AddX4's: the 4-wide
// exponentiation chain is one serial dependency chain of X4 squarings,
// while four scalar calls give the scheduler four independent radix-51
// chains to interleave — on wide-mulx x86-64 the latter often wins, on
// 4-lane NEON units the former does. Both routes are bit-identical, so the
// choice is unobservable beyond timing. `VOTEGRAL_X4_ROOTS=on|off`
// overrides the measurement.
bool MeasureInvSqrtX4Wins() {
  if (const char* env = std::getenv("VOTEGRAL_X4_ROOTS")) {
    const std::string_view val(env);
    if (val == "on" || val == "1") {
      return true;
    }
    if (val == "off" || val == "0") {
      return false;
    }
  }
  Fe25519 v[4];
  for (uint64_t k = 0; k < 4; ++k) {
    uint8_t bytes[32] = {};
    bytes[0] = static_cast<uint8_t>(9 + 2 * k);
    v[k] = FeFromBytes(bytes);
  }
  auto best_of = [](auto&& body) {
    uint64_t best = ~uint64_t{0};
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      body();
      const auto t1 = std::chrono::steady_clock::now();
      const auto ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
      best = ns < best ? ns : best;
    }
    return best;
  };
  constexpr int kIters = 4;
  SqrtRatioResult out[4];
  const uint64_t scalar_ns = best_of([&] {
    for (int i = 0; i < kIters; ++i) {
      for (int k = 0; k < 4; ++k) {
        out[k] = FeInvSqrt(v[k]);
      }
      asm volatile("" : : "r"(out) : "memory");
    }
  });
  const uint64_t x4_ns = best_of([&] {
    for (int i = 0; i < kIters; ++i) {
      FeInvSqrtX4Kernels(v, out);
      asm volatile("" : : "r"(out) : "memory");
    }
  });
  return x4_ns < scalar_ns;
}

}  // namespace

int SetFeInvSqrtX4ModeForTest(int mode) { return g_invsqrt_mode.exchange(mode); }

void FeInvSqrtX4(const Fe25519 v[4], SqrtRatioResult out[4]) {
  const int mode = g_invsqrt_mode.load(std::memory_order_relaxed);
  bool use_kernels;
  if (mode >= 0) {
    use_kernels = mode != 0;
  } else {
    static const bool kMeasuredWin = MeasureInvSqrtX4Wins();
    use_kernels = kMeasuredWin;
  }
  if (!use_kernels) {
    for (int k = 0; k < 4; ++k) {
      out[k] = FeInvSqrt(v[k]);
    }
    return;
  }
  FeInvSqrtX4Kernels(v, out);
}

namespace {

void FeInvSqrtX4Kernels(const Fe25519 v[4], SqrtRatioResult out[4]) {
  // The heavy exponentiation runs 4 lanes wide; everything value-bearing
  // afterwards (the fourth-root-of-unity correction, sign canonicalization)
  // replays fe25519.cpp's FeInvSqrt per lane on the scalar layer, so each
  // out[k] is the scalar result by construction.
  Fe25519X4 vv = FeX4FromLanes(v);
  Fe25519X4 v3, v7, r, tmp;
  FeSquareX4(tmp, vv);
  FeMulX4(v3, tmp, vv);  // v^3
  FeSquareX4(tmp, v3);
  FeMulX4(v7, tmp, vv);  // v^7
  FeMulX4(r, v3, Pow2523X4(v7));

  Fe25519 r_lanes[4];
  FeX4ToLanes(r, r_lanes);
  for (int k = 0; k < 4; ++k) {
    Fe25519 rk = r_lanes[k];
    Fe25519 check = FeMul(v[k], FeSquare(rk));

    Fe25519 one = FeOne();
    bool correct_sign_sqrt = FeEqual(check, one);
    Fe25519 minus_one = FeNeg(one);
    bool flipped_sign_sqrt = FeEqual(check, minus_one);
    bool flipped_sign_sqrt_i = FeEqual(check, FeMul(minus_one, FeSqrtM1()));

    Fe25519 r_prime = FeMul(rk, FeSqrtM1());
    rk = FeSelect(rk, r_prime, flipped_sign_sqrt || flipped_sign_sqrt_i);
    rk = FeAbs(rk);

    out[k] = SqrtRatioResult{correct_sign_sqrt || flipped_sign_sqrt, rk};
  }
}

}  // namespace

}  // namespace votegral
