// AVX2 backend for Fe25519X4: the lane-major limbs map 1:1 onto __m256i
// (four 64-bit lanes), and every 32x32->64 partial product in the shared
// kernel becomes one VPMULUDQ. This translation unit is the only one built
// with -mavx2 (see CMakeLists.txt); runtime dispatch never selects it unless
// the CPU reports AVX2, so the rest of the binary stays baseline-ISA clean.
#if defined(VOTEGRAL_HAVE_AVX2)

#include <immintrin.h>

#include "src/crypto/fe25519_x4_kernels.h"

namespace votegral {
namespace fe_x4_detail {

namespace {

struct Avx2Vec {
  __m256i v;

  static Avx2Vec Load(const uint64_t p[4]) {
    return Avx2Vec{_mm256_load_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void Store(uint64_t p[4]) const { _mm256_store_si256(reinterpret_cast<__m256i*>(p), v); }
  static Avx2Vec Splat(uint64_t value) {
    return Avx2Vec{_mm256_set1_epi64x(static_cast<long long>(value))};
  }
  Avx2Vec operator+(const Avx2Vec& o) const { return Avx2Vec{_mm256_add_epi64(v, o.v)}; }
  Avx2Vec operator-(const Avx2Vec& o) const { return Avx2Vec{_mm256_sub_epi64(v, o.v)}; }
  static Avx2Vec Mul32(const Avx2Vec& a, const Avx2Vec& b) {
    return Avx2Vec{_mm256_mul_epu32(a.v, b.v)};
  }
  Avx2Vec Shr(int s) const { return Avx2Vec{_mm256_srli_epi64(v, s)}; }
  Avx2Vec Shl(int s) const { return Avx2Vec{_mm256_slli_epi64(v, s)}; }
  Avx2Vec AndMask(uint64_t mask) const {
    return Avx2Vec{_mm256_and_si256(v, _mm256_set1_epi64x(static_cast<long long>(mask)))};
  }
};

}  // namespace

const FeX4Kernels* Avx2Kernels() {
  static const FeX4Kernels kAvx2 = {
      &Kernels<Avx2Vec>::Mul,
      &Kernels<Avx2Vec>::Square,
      &Kernels<Avx2Vec>::Add,
      &Kernels<Avx2Vec>::Sub,
  };
  return &kAvx2;
}

}  // namespace fe_x4_detail
}  // namespace votegral

#endif  // VOTEGRAL_HAVE_AVX2
