#include "src/crypto/batch.h"

#include <array>
#include <vector>

#include "src/common/executor.h"
#include "src/crypto/msm.h"
#include "src/crypto/sha512.h"

namespace votegral {

namespace {

Scalar SchnorrChallenge(const CompressedRistretto& r_bytes,
                        const CompressedRistretto& pk_bytes,
                        std::span<const uint8_t> message) {
  // Must match src/crypto/schnorr.cpp.
  auto digest = Sha512::HashParts(
      {AsBytes("votegral/schnorr/challenge/v1"), r_bytes, pk_bytes, message});
  return Scalar::FromBytesWide(digest);
}

// Reports the lowest failed entry index, or OK. Per-entry failure flags are
// written positionally by parallel workers, so the report is deterministic.
Status FirstFailure(std::span<const uint8_t> failed, const char* what) {
  if (auto i = FirstMarked(failed); i.has_value()) {
    return Status::Error(std::string(what) + " at entry " + std::to_string(*i));
  }
  return Status::Ok();
}

}  // namespace

Status BatchVerifySchnorr(std::span<const SchnorrBatchEntry> entries, Rng& rng) {
  // Each signature satisfies: s_i*B - c_i*P_i - R_i == 0.
  // Combined: (sum_i w_i*s_i)*B - sum_i (w_i*c_i)*P_i - sum_i w_i*R_i == 0.
  // All weighted terms are collected into one flat multi-scalar
  // multiplication; the shared-doubling/bucket engine amortizes the group
  // work to a few additions per signature.
  //
  // Entry preparation splits into two pooled passes: the (pk, R) bytes of
  // every entry go through one batched ristretto decode — the per-entry
  // inverse-square-root cost, fanned out with fixed positions — and a second
  // pass hashes challenges and writes the weighted terms, with each shard
  // accumulating a partial of the fixed-base coefficient merged in shard
  // order. Weights are drawn from `rng` up front, sequentially, so the
  // weight stream is independent of scheduling.
  const size_t n = entries.size();
  std::vector<Scalar> weights(n);
  for (Scalar& w : weights) {
    w = RandomRlcWeight(rng);
  }

  std::vector<CompressedRistretto> raw(2 * n);
  for (size_t i = 0; i < n; ++i) {
    raw[2 * i] = entries[i].public_key;
    raw[2 * i + 1] = entries[i].signature.r_bytes;
  }
  std::vector<RistrettoPoint> decoded(2 * n);
  std::vector<uint8_t> decode_ok(2 * n, 0);
  BatchDecodePoints(raw, decoded, decode_ok);

  std::vector<Scalar> scalars(2 * n);
  std::vector<RistrettoPoint> points(2 * n);
  std::vector<uint8_t> bad(n, 0);
  Executor& executor = Executor::Current();
  auto shards = Executor::Shards(n, Executor::kRngShards);
  std::vector<Scalar> partial = executor.ParallelMap<Scalar>(shards.size(), [&](size_t s) {
    Scalar sum = Scalar::Zero();
    for (size_t i = shards[s].first; i < shards[s].second; ++i) {
      const SchnorrBatchEntry& entry = entries[i];
      if (!decode_ok[2 * i] || !decode_ok[2 * i + 1]) {
        bad[i] = 1;
        continue;
      }
      Scalar challenge = SchnorrChallenge(entry.signature.r_bytes, entry.public_key,
                                          entry.message);
      sum = sum + weights[i] * entry.signature.s;
      scalars[2 * i] = -(weights[i] * challenge);
      points[2 * i] = decoded[2 * i];
      scalars[2 * i + 1] = -weights[i];
      points[2 * i + 1] = decoded[2 * i + 1];
    }
    return sum;
  });
  if (Status s = FirstFailure(bad, "batch-schnorr: undecodable point"); !s.ok()) {
    return s;
  }
  Scalar combined_s = Scalar::Zero();
  for (const Scalar& p : partial) {
    combined_s = combined_s + p;
  }
  // Every term's wire bytes are in hand (`raw` is what the points were
  // decoded from), so the shared-base MSM can sum the weights of repeated
  // public keys — one term per distinct signer instead of one per signature.
  std::vector<uint8_t> keyed(2 * n, 1);
  if (!MultiScalarMulShared(combined_s, scalars, points, raw, keyed).IsIdentity()) {
    return Status::Error("batch-schnorr: combined verification equation failed");
  }
  return Status::Ok();
}

std::array<uint8_t, 64> DleqBatchWeightSeed(std::string_view domain,
                                            std::span<const DleqBatchEntry> entries) {
  Sha512 h;
  h.Update(AsBytes(domain));
  for (const DleqBatchEntry& entry : entries) {
    h.Update(entry.transcript.challenge.ToBytes());
    h.Update(entry.transcript.response.ToBytes());
  }
  return h.Finalize();
}

Status BatchVerifyDleq(std::span<const DleqBatchEntry> entries, Rng& rng) {
  // Each proof satisfies, for every pair j:
  //   r_i*G_ij + e_i*P_ij - Y_ij == 0.
  // All pairs of all proofs are combined with independent weights into a
  // single multi-scalar multiplication that must evaluate to the identity.
  //
  // Wire-byte path (docs/TRANSCRIPTS.md §DLEQ): statements built by the
  // caller carry producer-local encodings, and transcripts carry the
  // prover's commit encodings — but the latter are attacker data, so before
  // any cached byte may bind challenge bits, every present commit cache is
  // decoded back and recompared against the commit points in one batched
  // ristretto decode pass (the PR 2 MixItem rule; a stale or forged cache is
  // a localized failure). Challenge recomputation is then SHA-only for fully
  // cached entries; entries without caches fall back to encode-per-point,
  // which also keeps the pre-wire framing benchable.
  const size_t n = entries.size();
  std::vector<size_t> offset(n + 1, 0);  // term offset (3 per pair)
  for (size_t i = 0; i < n; ++i) {
    const DleqStatement& st = entries[i].statement;
    const DleqTranscript& t = entries[i].transcript;
    if (st.bases.size() != st.publics.size() || t.commits.size() != st.bases.size()) {
      return Status::Error("batch-dleq: malformed entry");
    }
    offset[i + 1] = offset[i] + st.bases.size();
  }
  const size_t total_pairs = offset[n];
  std::vector<Scalar> weights(total_pairs);
  for (Scalar& w : weights) {
    w = RandomRlcWeight(rng);
  }

  // Commit-cache validation: gather every cached commit byte string (flat,
  // entry order) and check each against its commit point in one accumulator
  // pass — BatchValidateEncodings amortizes the field inversions across the
  // whole producer batch and never pays a per-commit decode (~8 field
  // multiplications per commit instead of an inverse square root).
  {
    std::vector<uint8_t> bad_cache(n, 0);
    std::vector<CompressedRistretto> cache_bytes;
    std::vector<RistrettoPoint> cache_points;
    std::vector<size_t> cache_entry;  // flat slot -> entry
    cache_bytes.reserve(total_pairs);
    cache_points.reserve(total_pairs);
    cache_entry.reserve(total_pairs);
    for (size_t i = 0; i < n; ++i) {
      const DleqTranscript& t = entries[i].transcript;
      if (t.commit_wire.empty()) {
        continue;  // cacheless entry: legal, hashes encode fresh below
      }
      if (t.commit_wire.size() != t.commits.size()) {
        bad_cache[i] = 1;
        continue;
      }
      for (size_t j = 0; j < t.commit_wire.size(); ++j) {
        cache_bytes.push_back(t.commit_wire[j]);
        cache_points.push_back(t.commits[j]);
        cache_entry.push_back(i);
      }
    }
    std::vector<uint8_t> cache_ok(cache_bytes.size(), 0);
    size_t mismatches = BatchValidateEncodings(cache_points, cache_bytes, cache_ok);
    if (mismatches != 0) {
      // Fold per-slot flags sequentially: two slots of one entry can come
      // from different shards, so the parallel pass never writes entry bytes.
      for (size_t k = 0; k < cache_ok.size(); ++k) {
        if (!cache_ok[k]) {
          bad_cache[cache_entry[k]] = 1;
        }
      }
    }
    if (Status s = FirstFailure(bad_cache, "batch-dleq: commit wire cache does not match commits");
        !s.ok()) {
      return s;
    }
  }

  std::vector<Scalar> scalars(3 * total_pairs);
  std::vector<RistrettoPoint> points(3 * total_pairs);
  std::vector<CompressedRistretto> keys(3 * total_pairs);
  std::vector<uint8_t> keyed(3 * total_pairs, 0);
  std::vector<uint8_t> bad(n, 0);
  Executor::Current().ParallelForEach(n, [&](size_t i) {
    const DleqBatchEntry& entry = entries[i];
    const DleqStatement& st = entry.statement;
    const DleqTranscript& t = entry.transcript;
    // The Fiat–Shamir challenge must still bind per proof. SHA-only when the
    // caches (validated above) are complete.
    Scalar expected =
        DeriveFsChallenge(entry.domain, st, t.commits, t.commit_wire, entry.extra);
    if (expected != t.challenge) {
      bad[i] = 1;
      return;
    }
    // Wire bytes become shared-MSM keys where available: statement caches are
    // producer-local (verifiers build their own statements), and commit
    // caches were validated against the commit points above. A batch over one
    // producer repeats its bases and public keys in every entry, so the
    // keyed collapse folds those columns into one term each.
    const bool st_wire = st.HasWire();
    const bool commit_wire = t.commit_wire.size() == t.commits.size();
    for (size_t j = 0; j < st.bases.size(); ++j) {
      const Scalar& weight = weights[offset[i] + j];
      size_t at = 3 * (offset[i] + j);
      scalars[at] = weight * t.response;
      points[at] = st.bases[j];
      scalars[at + 1] = weight * t.challenge;
      points[at + 1] = st.publics[j];
      scalars[at + 2] = -weight;
      points[at + 2] = t.commits[j];
      if (st_wire) {
        keys[at] = st.base_wire[j];
        keyed[at] = 1;
        keys[at + 1] = st.public_wire[j];
        keyed[at + 1] = 1;
      }
      if (commit_wire) {
        keys[at + 2] = t.commit_wire[j];
        keyed[at + 2] = 1;
      }
    }
  });
  if (Status s = FirstFailure(bad, "batch-dleq: challenge mismatch"); !s.ok()) {
    return s;
  }
  if (!MultiScalarMulShared(Scalar::Zero(), scalars, points, keys, keyed).IsIdentity()) {
    return Status::Error("batch-dleq: combined verification equation failed");
  }
  return Status::Ok();
}

}  // namespace votegral
