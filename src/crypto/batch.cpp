#include "src/crypto/batch.h"

#include <array>
#include <vector>

#include "src/crypto/msm.h"
#include "src/crypto/sha512.h"

namespace votegral {

namespace {

Scalar SchnorrChallenge(const CompressedRistretto& r_bytes,
                        const CompressedRistretto& pk_bytes,
                        std::span<const uint8_t> message) {
  // Must match src/crypto/schnorr.cpp.
  auto digest = Sha512::HashParts(
      {AsBytes("votegral/schnorr/challenge/v1"), r_bytes, pk_bytes, message});
  return Scalar::FromBytesWide(digest);
}

}  // namespace

Status BatchVerifySchnorr(std::span<const SchnorrBatchEntry> entries, Rng& rng) {
  // Each signature satisfies: s_i*B - c_i*P_i - R_i == 0.
  // Combined: (sum_i w_i*s_i)*B - sum_i (w_i*c_i)*P_i - sum_i w_i*R_i == 0.
  // All weighted terms are collected into one flat multi-scalar
  // multiplication; the shared-doubling/bucket engine amortizes the group
  // work to a few additions per signature.
  Scalar combined_s = Scalar::Zero();
  std::vector<Scalar> scalars;
  std::vector<RistrettoPoint> points;
  scalars.reserve(2 * entries.size());
  points.reserve(2 * entries.size());
  for (const SchnorrBatchEntry& entry : entries) {
    auto pk = RistrettoPoint::Decode(entry.public_key);
    auto r = RistrettoPoint::Decode(entry.signature.r_bytes);
    if (!pk.has_value() || !r.has_value()) {
      return Status::Error("batch-schnorr: undecodable point");
    }
    Scalar weight = RandomRlcWeight(rng);
    Scalar challenge = SchnorrChallenge(entry.signature.r_bytes, entry.public_key,
                                        entry.message);
    combined_s = combined_s + weight * entry.signature.s;
    scalars.push_back(-(weight * challenge));
    points.push_back(*pk);
    scalars.push_back(-weight);
    points.push_back(*r);
  }
  if (!MultiScalarMulWithBase(combined_s, scalars, points).IsIdentity()) {
    return Status::Error("batch-schnorr: combined verification equation failed");
  }
  return Status::Ok();
}

Status BatchVerifyDleq(std::span<const DleqBatchEntry> entries, Rng& rng) {
  // Each proof satisfies, for every pair j:
  //   r_i*G_ij + e_i*P_ij - Y_ij == 0.
  // All pairs of all proofs are combined with independent weights into a
  // single multi-scalar multiplication that must evaluate to the identity.
  std::vector<Scalar> scalars;
  std::vector<RistrettoPoint> points;
  for (const DleqBatchEntry& entry : entries) {
    const DleqStatement& st = entry.statement;
    const DleqTranscript& t = entry.transcript;
    if (st.bases.size() != st.publics.size() || t.commits.size() != st.bases.size()) {
      return Status::Error("batch-dleq: malformed entry");
    }
    // The Fiat–Shamir challenge must still bind per proof.
    Scalar expected = DeriveFsChallenge(entry.domain, st, t.commits, entry.extra);
    if (expected != t.challenge) {
      return Status::Error("batch-dleq: challenge mismatch");
    }
    for (size_t j = 0; j < st.bases.size(); ++j) {
      Scalar weight = RandomRlcWeight(rng);
      scalars.push_back(weight * t.response);
      points.push_back(st.bases[j]);
      scalars.push_back(weight * t.challenge);
      points.push_back(st.publics[j]);
      scalars.push_back(-weight);
      points.push_back(t.commits[j]);
    }
  }
  if (!MultiScalarMul(scalars, points).IsIdentity()) {
    return Status::Error("batch-dleq: combined verification equation failed");
  }
  return Status::Ok();
}

}  // namespace votegral
