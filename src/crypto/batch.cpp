#include "src/crypto/batch.h"

#include <array>
#include <vector>

#include "src/common/executor.h"
#include "src/crypto/msm.h"
#include "src/crypto/sha512.h"

namespace votegral {

namespace {

Scalar SchnorrChallenge(const CompressedRistretto& r_bytes,
                        const CompressedRistretto& pk_bytes,
                        std::span<const uint8_t> message) {
  // Must match src/crypto/schnorr.cpp.
  auto digest = Sha512::HashParts(
      {AsBytes("votegral/schnorr/challenge/v1"), r_bytes, pk_bytes, message});
  return Scalar::FromBytesWide(digest);
}

// Reports the lowest failed entry index, or OK. Per-entry failure flags are
// written positionally by parallel workers, so the report is deterministic.
Status FirstFailure(std::span<const uint8_t> failed, const char* what) {
  if (auto i = FirstMarked(failed); i.has_value()) {
    return Status::Error(std::string(what) + " at entry " + std::to_string(*i));
  }
  return Status::Ok();
}

}  // namespace

Status BatchVerifySchnorr(std::span<const SchnorrBatchEntry> entries, Rng& rng) {
  // Each signature satisfies: s_i*B - c_i*P_i - R_i == 0.
  // Combined: (sum_i w_i*s_i)*B - sum_i (w_i*c_i)*P_i - sum_i w_i*R_i == 0.
  // All weighted terms are collected into one flat multi-scalar
  // multiplication; the shared-doubling/bucket engine amortizes the group
  // work to a few additions per signature.
  //
  // Entry preparation — point decode (one inverse sqrt per point) and
  // challenge hashing — dominates at large n, so it fans out across the
  // pool: every entry writes its two weighted terms at fixed positions and
  // each worker shard accumulates a partial of the fixed-base coefficient,
  // merged in shard order at the end. Weights are drawn from `rng` up front,
  // sequentially, so the weight stream is independent of scheduling.
  const size_t n = entries.size();
  std::vector<Scalar> weights(n);
  for (Scalar& w : weights) {
    w = RandomRlcWeight(rng);
  }

  std::vector<Scalar> scalars(2 * n);
  std::vector<RistrettoPoint> points(2 * n);
  std::vector<uint8_t> bad(n, 0);
  Executor& executor = Executor::Current();
  auto shards = Executor::Shards(n, Executor::kRngShards);
  std::vector<Scalar> partial = executor.ParallelMap<Scalar>(shards.size(), [&](size_t s) {
    Scalar sum = Scalar::Zero();
    for (size_t i = shards[s].first; i < shards[s].second; ++i) {
      const SchnorrBatchEntry& entry = entries[i];
      auto pk = RistrettoPoint::Decode(entry.public_key);
      auto r = RistrettoPoint::Decode(entry.signature.r_bytes);
      if (!pk.has_value() || !r.has_value()) {
        bad[i] = 1;
        continue;
      }
      Scalar challenge = SchnorrChallenge(entry.signature.r_bytes, entry.public_key,
                                          entry.message);
      sum = sum + weights[i] * entry.signature.s;
      scalars[2 * i] = -(weights[i] * challenge);
      points[2 * i] = *pk;
      scalars[2 * i + 1] = -weights[i];
      points[2 * i + 1] = *r;
    }
    return sum;
  });
  if (Status s = FirstFailure(bad, "batch-schnorr: undecodable point"); !s.ok()) {
    return s;
  }
  Scalar combined_s = Scalar::Zero();
  for (const Scalar& p : partial) {
    combined_s = combined_s + p;
  }
  if (!MultiScalarMulWithBase(combined_s, scalars, points).IsIdentity()) {
    return Status::Error("batch-schnorr: combined verification equation failed");
  }
  return Status::Ok();
}

std::array<uint8_t, 64> DleqBatchWeightSeed(std::string_view domain,
                                            std::span<const DleqBatchEntry> entries) {
  Sha512 h;
  h.Update(AsBytes(domain));
  for (const DleqBatchEntry& entry : entries) {
    h.Update(entry.transcript.challenge.ToBytes());
    h.Update(entry.transcript.response.ToBytes());
  }
  return h.Finalize();
}

Status BatchVerifyDleq(std::span<const DleqBatchEntry> entries, Rng& rng) {
  // Each proof satisfies, for every pair j:
  //   r_i*G_ij + e_i*P_ij - Y_ij == 0.
  // All pairs of all proofs are combined with independent weights into a
  // single multi-scalar multiplication that must evaluate to the identity.
  //
  // The per-entry Fiat–Shamir challenge recomputation re-encodes every
  // statement point (an inverse sqrt each) — the dominant non-MSM cost —
  // so entries are processed in parallel, writing their weighted terms at
  // offsets fixed by a prefix sum over pair counts. Weights are pre-drawn
  // sequentially in pair order, matching the seed's stream.
  const size_t n = entries.size();
  std::vector<size_t> offset(n + 1, 0);  // term offset (3 per pair)
  for (size_t i = 0; i < n; ++i) {
    const DleqStatement& st = entries[i].statement;
    const DleqTranscript& t = entries[i].transcript;
    if (st.bases.size() != st.publics.size() || t.commits.size() != st.bases.size()) {
      return Status::Error("batch-dleq: malformed entry");
    }
    offset[i + 1] = offset[i] + st.bases.size();
  }
  const size_t total_pairs = offset[n];
  std::vector<Scalar> weights(total_pairs);
  for (Scalar& w : weights) {
    w = RandomRlcWeight(rng);
  }

  std::vector<Scalar> scalars(3 * total_pairs);
  std::vector<RistrettoPoint> points(3 * total_pairs);
  std::vector<uint8_t> bad(n, 0);
  Executor::Current().ParallelForEach(n, [&](size_t i) {
    const DleqBatchEntry& entry = entries[i];
    const DleqStatement& st = entry.statement;
    const DleqTranscript& t = entry.transcript;
    // The Fiat–Shamir challenge must still bind per proof.
    Scalar expected = DeriveFsChallenge(entry.domain, st, t.commits, entry.extra);
    if (expected != t.challenge) {
      bad[i] = 1;
      return;
    }
    for (size_t j = 0; j < st.bases.size(); ++j) {
      const Scalar& weight = weights[offset[i] + j];
      size_t at = 3 * (offset[i] + j);
      scalars[at] = weight * t.response;
      points[at] = st.bases[j];
      scalars[at + 1] = weight * t.challenge;
      points[at + 1] = st.publics[j];
      scalars[at + 2] = -weight;
      points[at + 2] = t.commits[j];
    }
  });
  if (Status s = FirstFailure(bad, "batch-dleq: challenge mismatch"); !s.ok()) {
    return s;
  }
  if (!MultiScalarMul(scalars, points).IsIdentity()) {
    return Status::Error("batch-dleq: combined verification equation failed");
  }
  return Status::Ok();
}

}  // namespace votegral
