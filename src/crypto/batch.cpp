#include "src/crypto/batch.h"

#include "src/crypto/sha512.h"

namespace votegral {

namespace {

// 128-bit random weight (sufficient for 2^-128 soundness, half the scalar
// multiplication cost of full-width weights).
Scalar RandomWeight(Rng& rng) {
  Bytes wide(64, 0);
  rng.Fill(std::span<uint8_t>(wide.data(), 16));
  return Scalar::FromBytesWide(wide);
}

Scalar SchnorrChallenge(const CompressedRistretto& r_bytes,
                        const CompressedRistretto& pk_bytes,
                        std::span<const uint8_t> message) {
  // Must match src/crypto/schnorr.cpp.
  auto digest = Sha512::HashParts(
      {AsBytes("votegral/schnorr/challenge/v1"), r_bytes, pk_bytes, message});
  return Scalar::FromBytesWide(digest);
}

}  // namespace

Status BatchVerifySchnorr(std::span<const SchnorrBatchEntry> entries, Rng& rng) {
  // Each signature satisfies: s_i*B - c_i*P_i - R_i == 0.
  // Combined: (sum_i w_i*s_i)*B - sum_i (w_i*c_i)*P_i - sum_i w_i*R_i == 0.
  Scalar combined_s = Scalar::Zero();
  RistrettoPoint accumulator;  // identity
  for (const SchnorrBatchEntry& entry : entries) {
    auto pk = RistrettoPoint::Decode(entry.public_key);
    auto r = RistrettoPoint::Decode(entry.signature.r_bytes);
    if (!pk.has_value() || !r.has_value()) {
      return Status::Error("batch-schnorr: undecodable point");
    }
    Scalar weight = RandomWeight(rng);
    Scalar challenge = SchnorrChallenge(entry.signature.r_bytes, entry.public_key,
                                        entry.message);
    combined_s = combined_s + weight * entry.signature.s;
    accumulator = accumulator + (weight * challenge) * *pk + weight * *r;
  }
  if (!(RistrettoPoint::MulBase(combined_s) == accumulator)) {
    return Status::Error("batch-schnorr: combined verification equation failed");
  }
  return Status::Ok();
}

Status BatchVerifyDleq(std::span<const DleqBatchEntry> entries, Rng& rng) {
  // Each proof satisfies, for every pair j:
  //   r_i*G_ij + e_i*P_ij - Y_ij == 0.
  // All pairs of all proofs are combined with independent weights. Scalars
  // multiplying the same base B never arise here (bases are arbitrary), so
  // we accumulate a single point sum that must be the identity.
  RistrettoPoint accumulator;  // identity
  for (const DleqBatchEntry& entry : entries) {
    const DleqStatement& st = entry.statement;
    const DleqTranscript& t = entry.transcript;
    if (st.bases.size() != st.publics.size() || t.commits.size() != st.bases.size()) {
      return Status::Error("batch-dleq: malformed entry");
    }
    // The Fiat–Shamir challenge must still bind per proof.
    Scalar expected = DeriveFsChallenge(entry.domain, st, t.commits, entry.extra);
    if (expected != t.challenge) {
      return Status::Error("batch-dleq: challenge mismatch");
    }
    for (size_t j = 0; j < st.bases.size(); ++j) {
      Scalar weight = RandomWeight(rng);
      accumulator = accumulator + (weight * t.response) * st.bases[j] +
                    (weight * t.challenge) * st.publics[j] - weight * t.commits[j];
    }
  }
  if (!accumulator.IsIdentity()) {
    return Status::Error("batch-dleq: combined verification equation failed");
  }
  return Status::Ok();
}

}  // namespace votegral
