// ElGamal over ristretto255 (additive notation): Enc(pk, M; r) =
// (r*B, r*pk + M). This is the encryption scheme EG of §E.1, used for the
// public credential c_pc (an encryption of the real credential's public key)
// and for ballot contents. The tally pipeline additionally relies on:
//  * re-randomization (mixnet re-encryption),
//  * componentwise scalar exponentiation, which maps Enc(M) to Enc(z*M)
//    under the same key — the core of deterministic tagging (§4.2, [153]).
#ifndef SRC_CRYPTO_ELGAMAL_H_
#define SRC_CRYPTO_ELGAMAL_H_

#include <array>
#include <optional>
#include <span>

#include "src/common/rng.h"
#include "src/crypto/ristretto.h"
#include "src/crypto/scalar.h"

namespace votegral {

// An ElGamal ciphertext (C1, C2).
struct ElGamalCiphertext {
  RistrettoPoint c1;
  RistrettoPoint c2;

  // Homomorphic addition: Enc(M1) + Enc(M2) = Enc(M1 + M2).
  ElGamalCiphertext operator+(const ElGamalCiphertext& other) const;

  // Re-encryption: adds an encryption of the identity with randomness r.
  ElGamalCiphertext ReRandomize(const RistrettoPoint& pk, const Scalar& r) const;

  // Componentwise scalar multiplication: Enc(M; r) -> Enc(z*M; z*r).
  ElGamalCiphertext ExponentiateBy(const Scalar& z) const;

  bool operator==(const ElGamalCiphertext& other) const;
  bool operator!=(const ElGamalCiphertext& other) const { return !(*this == other); }

  // 64-byte wire format: C1 || C2.
  Bytes Serialize() const;
  static std::optional<ElGamalCiphertext> Parse(std::span<const uint8_t> bytes);

  // Serialize() as a fixed array (same bytes, no allocation) — the unit the
  // wire-byte DLEQ layer threads between mix, tagging and decryption stages.
  std::array<uint8_t, 64> Wire() const;
};

// Canonical 64-byte encoding of one ciphertext, as threaded through the
// tagging chain and decryption-share statements (docs/TRANSCRIPTS.md).
using ElGamalWire = std::array<uint8_t, 64>;

// One component's 32-byte point encoding out of a ciphertext wire
// (half 0 = C1, half 1 = C2). The single place the C1‖C2 layout is sliced.
std::array<uint8_t, 32> ElGamalWireHalf(const ElGamalWire& wire, size_t half);

// Encrypts the group element `message` under `pk` with explicit randomness.
ElGamalCiphertext ElGamalEncrypt(const RistrettoPoint& pk, const RistrettoPoint& message,
                                 const Scalar& r);

// Encrypts with fresh randomness; optionally returns the randomness used
// (TRIP's kiosk needs it as the DLEQ witness).
ElGamalCiphertext ElGamalEncrypt(const RistrettoPoint& pk, const RistrettoPoint& message,
                                 Rng& rng, Scalar* randomness_out = nullptr);

// Wraps a public group element as a ciphertext with zero randomness
// (Enc(M; 0) = (identity, M)); the first mix layer re-randomizes it. Used to
// feed ballot credential keys into the mix cascade.
ElGamalCiphertext ElGamalTrivialEncrypt(const RistrettoPoint& message);

// Decrypts with the full secret key.
RistrettoPoint ElGamalDecrypt(const Scalar& sk, const ElGamalCiphertext& ct);

}  // namespace votegral

#endif  // SRC_CRYPTO_ELGAMAL_H_
