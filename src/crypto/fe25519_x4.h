// Four-way batch arithmetic over GF(2^255 - 19).
//
// The scalar field layer (src/crypto/fe25519.h) works in radix 2^51 with
// 64x64->128 products — a shape no 4-lane integer SIMD unit can express.
// This layer re-represents four independent field elements in the classic
// ref10 radix-2^25.5 form (ten limbs alternating 26 and 25 bits) laid out
// limb-major, so that one 32x32->64 vector multiply (`_mm256_mul_epu32`,
// NEON `vmull_u32`) advances the same partial product in all four lanes at
// once. Every backend — portable scalar loops, AVX2, NEON — runs the exact
// same limb algorithm, so their outputs are bit-identical by construction;
// the differential tests in tests/test_fe25519_x4.cpp pin this.
//
// Agreement with the scalar layer is canonical, not representational: a lane
// of FeMulX4 and the matching FeMul compute the same residue mod p but may
// hold it in different loose-limb forms. That distinction can never reach a
// transcript — every published byte goes through FeToBytes (canonical) and
// every comparison through FeEqual (canonical) — which is why flipping
// VOTEGRAL_SIMD cannot move a single transcript byte.
//
// Backend selection happens once, at first use: AVX2 when the CPU has it
// (x86-64), NEON on aarch64, portable otherwise. `VOTEGRAL_SIMD=off` (or
// `scalar`) in the environment forces the portable backend;
// `VOTEGRAL_SIMD=avx2` / `neon` force a specific SIMD backend when compiled
// in. Tests may override per-process via SetFeSimdBackendForTest.
#ifndef SRC_CRYPTO_FE25519_X4_H_
#define SRC_CRYPTO_FE25519_X4_H_

#include <cstdint>

#include "src/crypto/fe25519.h"

namespace votegral {

// Four field elements in limb-major (structure-of-arrays) layout:
// limb[i][k] is limb i of lane k. Limb i carries 26 - (i & 1) bits plus the
// usual loose-reduction slack; every public operation returns limbs with
// even limbs <= 2^26 and odd limbs < 2^25 + 2^14 (safe inputs for the next
// multiply without an intermediate carry).
struct Fe25519X4 {
  alignas(32) uint64_t limb[10][4];
};

enum class FeSimdBackend : uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

// Name for logs/benches ("scalar", "avx2", "neon").
const char* FeSimdBackendName(FeSimdBackend backend);

// True when the backend's kernels are compiled in AND the running CPU can
// execute them. kScalar is always available.
bool FeSimdBackendAvailable(FeSimdBackend backend);

// The backend in use (chosen once at first use; see header comment).
FeSimdBackend ActiveFeSimdBackend();

// Test hook: force a backend for the rest of the process (must be
// available); returns the previously active backend. Not thread-safe
// against concurrent X4 calls — call only from test setup between parallel
// regions.
FeSimdBackend SetFeSimdBackendForTest(FeSimdBackend backend);

// Pack four loosely reduced 5x51 elements into interleaved 10x25.5 lanes.
// Accepts any limbs within the scalar layer's loose bound (< 2^51 + 2^13).
Fe25519X4 FeX4FromLanes(const Fe25519 lanes[4]);

// Unpack back to 5x51; outputs satisfy the scalar loose-reduction invariant
// (every limb < 2^51 + 2^13). FeX4ToLanes(FeX4FromLanes(x)) == x bit for bit.
void FeX4ToLanes(const Fe25519X4& v, Fe25519 lanes[4]);

// out[k] = a[k] * b[k] mod p, all four lanes. Aliasing among out/a/b is fine.
void FeMulX4(Fe25519X4& out, const Fe25519X4& a, const Fe25519X4& b);

// out[k] = a[k]^2 mod p.
void FeSquareX4(Fe25519X4& out, const Fe25519X4& a);

// out[k] = a[k] + b[k] mod p.
void FeAddX4(Fe25519X4& out, const Fe25519X4& a, const Fe25519X4& b);

// out[k] = a[k] - b[k] mod p (adds 2p before subtracting, like FeSub).
void FeSubX4(Fe25519X4& out, const Fe25519X4& a, const Fe25519X4& b);

// Splats one scalar-layer element across all four lanes (constants).
Fe25519X4 FeX4Splat(const Fe25519& f);

// Four independent inverse square roots: out[k] is bit-identical (both the
// was_square flag and the canonical value of the root) to FeInvSqrt(v[k]).
// The ~254-squaring exponentiation chain runs lane-parallel; the
// fourth-root-of-unity correction and sign canonicalization finish per lane
// in the scalar layer, so the result is the scalar result by construction.
//
// Whether the chain actually runs 4-wide or as four scalar FeInvSqrt calls
// is decided once per process by a micro-calibration (the 4-wide chain is
// one serial X4 dependency chain; four scalar calls interleave on wide-mulx
// cores and can win there). `VOTEGRAL_X4_ROOTS=on|off` overrides. Either
// route returns the identical bits.
void FeInvSqrtX4(const Fe25519 v[4], SqrtRatioResult out[4]);

// Test hook pinning FeInvSqrtX4's route: 1 = force the 4-wide kernel chain,
// 0 = force four scalar FeInvSqrt calls, -1 = auto (calibrate). Returns the
// previous mode. Not thread-safe against concurrent FeInvSqrtX4 calls.
int SetFeInvSqrtX4ModeForTest(int mode);

}  // namespace votegral

#endif  // SRC_CRYPTO_FE25519_X4_H_
