// Disjunctive ("OR") Chaum–Pedersen proofs of ballot well-formedness: given
// an ElGamal ciphertext, prove it encrypts *one of* a public candidate set
// without revealing which (CDS composition: the true branch runs the real
// Σ-protocol, every other branch is simulated, and the branch challenges
// must sum to the Fiat–Shamir hash).
//
// This is the standard validity proof of secret-ballot systems (the Swiss
// Post baseline uses it here). Votegral's own pipeline does not need it —
// invalid votes are caught after verifiable decryption — but an auditor
// gains earlier rejection when ballots carry one.
#ifndef SRC_CRYPTO_ORPROOF_H_
#define SRC_CRYPTO_ORPROOF_H_

#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/elgamal.h"

namespace votegral {

// One branch of the disjunction.
struct OrProofBranch {
  RistrettoPoint commit_1;  // Y1 = r*B + e*C1 (or y*B on the true branch)
  RistrettoPoint commit_2;  // Y2 = r*pk + e*(C2 - M_j)
  Scalar challenge;
  Scalar response;
};

// Proof that a ciphertext encrypts one element of a candidate list.
struct EncryptionOrProof {
  std::vector<OrProofBranch> branches;  // one per candidate, in list order
};

// Proves that `ct` = Enc(pk, candidates[true_index]; randomness).
EncryptionOrProof ProveEncryptsOneOf(const ElGamalCiphertext& ct, const RistrettoPoint& pk,
                                     std::span<const RistrettoPoint> candidates,
                                     size_t true_index, const Scalar& randomness,
                                     std::string_view domain, Rng& rng);

// Verifies the disjunction; rejects when the ciphertext encrypts anything
// outside the candidate set (or the proof was built for different data).
Status VerifyEncryptsOneOf(const ElGamalCiphertext& ct, const RistrettoPoint& pk,
                           std::span<const RistrettoPoint> candidates,
                           const EncryptionOrProof& proof, std::string_view domain);

}  // namespace votegral

#endif  // SRC_CRYPTO_ORPROOF_H_
