// Chaum–Pedersen proofs of discrete-log equality (the paper's ZKPoE, §E.1):
// given pairs (G_i, P_i), prove knowledge of x with P_i = x*G_i for all i.
//
// This single Σ-protocol underpins the whole system:
//  * TRIP real credentials: the kiosk proves interactively that the public
//    credential c_pc = (C1, X·c_pk) satisfies C1 = g^x ∧ X = A^x — executed
//    in the sound commit→challenge→response order (§E.4),
//  * TRIP fake credentials: the same transcript *simulated* from a known
//    challenge (§E.5) — structurally valid, proves nothing,
//  * verifiable decryption shares and deterministic tagging: non-interactive
//    (Fiat–Shamir) variants over 2- and 3-element statements.
//
// The transcript deliberately does not record which order was used: that is
// the "voter's-eyes-only" bit at the heart of TRIP's coercion resistance
// (§4.3). VerifyDleqTranscript accepts both.
#ifndef SRC_CRYPTO_DLEQ_H_
#define SRC_CRYPTO_DLEQ_H_

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/ristretto.h"
#include "src/crypto/scalar.h"

namespace votegral {

// The statement: P_i = x * G_i for every (base, public) pair.
struct DleqStatement {
  std::vector<RistrettoPoint> bases;
  std::vector<RistrettoPoint> publics;

  // Two-pair convenience (the common TRIP/decryption case).
  static DleqStatement MakePair(const RistrettoPoint& g1, const RistrettoPoint& p1,
                                const RistrettoPoint& g2, const RistrettoPoint& p2);
};

// A (possibly simulated) transcript: commits Y_i, challenge e, response r.
// Valid iff r*G_i + e*P_i == Y_i for all i.
struct DleqTranscript {
  std::vector<RistrettoPoint> commits;
  Scalar challenge;
  Scalar response;

  Bytes Serialize() const;
  static std::optional<DleqTranscript> Parse(std::span<const uint8_t> bytes);
};

// Interactive prover running the *sound* order: the commitment is fixed
// before the verifier's challenge is known. TRIP's kiosk uses this for real
// credentials; the printed receipt bears the commits before the voter picks
// an envelope.
class DleqProver {
 public:
  // Starts a proof of `statement` with witness `x`; draws the commitment
  // nonce from `rng`.
  DleqProver(DleqStatement statement, const Scalar& x, Rng& rng);

  // The commits Y_i = y*G_i, available before any challenge exists.
  const std::vector<RistrettoPoint>& commits() const { return commits_; }

  // Completes the transcript for the verifier-chosen challenge.
  DleqTranscript Respond(const Scalar& challenge) const;

 private:
  DleqStatement statement_;
  Scalar x_;
  Scalar y_;
  std::vector<RistrettoPoint> commits_;
};

// Simulates a structurally valid transcript for an arbitrary statement given
// a challenge known *in advance* — the unsound order used for fake
// credentials. Works for statements with no witness at all.
DleqTranscript SimulateDleq(const DleqStatement& statement, const Scalar& challenge, Rng& rng);

// Checks r*G_i + e*P_i == Y_i for all pairs. Accepts sound and simulated
// transcripts alike (by design; see header comment).
Status VerifyDleqTranscript(const DleqStatement& statement, const DleqTranscript& transcript);

// Derives a Fiat–Shamir challenge binding the domain, statement, commits and
// optional extra context.
Scalar DeriveFsChallenge(std::string_view domain, const DleqStatement& statement,
                         std::span<const RistrettoPoint> commits,
                         std::span<const uint8_t> extra);

// Non-interactive (Fiat–Shamir) proof; sound in the random-oracle model.
DleqTranscript ProveDleqFs(std::string_view domain, const DleqStatement& statement,
                           const Scalar& x, Rng& rng, std::span<const uint8_t> extra = {});

// Verifies a Fiat–Shamir proof (recomputes and checks the challenge).
Status VerifyDleqFs(std::string_view domain, const DleqStatement& statement,
                    const DleqTranscript& transcript, std::span<const uint8_t> extra = {});

}  // namespace votegral

#endif  // SRC_CRYPTO_DLEQ_H_
