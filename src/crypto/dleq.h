// Chaum–Pedersen proofs of discrete-log equality (the paper's ZKPoE, §E.1):
// given pairs (G_i, P_i), prove knowledge of x with P_i = x*G_i for all i.
//
// This single Σ-protocol underpins the whole system:
//  * TRIP real credentials: the kiosk proves interactively that the public
//    credential c_pc = (C1, X·c_pk) satisfies C1 = g^x ∧ X = A^x — executed
//    in the sound commit→challenge→response order (§E.4),
//  * TRIP fake credentials: the same transcript *simulated* from a known
//    challenge (§E.5) — structurally valid, proves nothing,
//  * verifiable decryption shares and deterministic tagging: non-interactive
//    (Fiat–Shamir) variants over 2- and 3-element statements.
//
// The transcript deliberately does not record which order was used: that is
// the "voter's-eyes-only" bit at the heart of TRIP's coercion resistance
// (§4.3). VerifyDleqTranscript accepts both.
//
// Wire-byte transcripts (docs/TRANSCRIPTS.md §DLEQ): statements and
// transcripts carry optional cached canonical encodings of their points, so
// Fiat–Shamir challenge derivation is SHA-only when the caches are complete —
// the hash input is byte-for-byte the encode-per-point stream, so proofs are
// identical either way. Trust model, mirroring PR 2's MixItem rule:
//  * STATEMENT caches are producer-local: whoever fills base_wire/public_wire
//    asserts the bytes came from its own Encode() calls or from wire data it
//    already validated (mix-batch caches checked by VerifyRpcMixCascade,
//    tagging output wires checked by VerifyChain, parsed ledger bytes).
//    Verifiers construct their statements themselves, so these caches never
//    cross a trust boundary; ValidateWire() exists for the rare path that
//    must accept statement bytes from elsewhere.
//  * TRANSCRIPT commit caches are attacker data on the verify side:
//    VerifyDleqFs and BatchVerifyDleq decode and recompare them against the
//    commit points before the bytes may bind challenge bits, and a mismatch
//    is a localized verification failure — otherwise a cheating prover could
//    grind the hashed bytes independently of the checked group elements.
#ifndef SRC_CRYPTO_DLEQ_H_
#define SRC_CRYPTO_DLEQ_H_

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/ristretto.h"
#include "src/crypto/scalar.h"

namespace votegral {

// The statement: P_i = x * G_i for every (base, public) pair.
struct DleqStatement {
  std::vector<RistrettoPoint> bases;
  std::vector<RistrettoPoint> publics;

  // Cached canonical encodings parallel to bases/publics: either empty or
  // full-size (per-section). Producer-local — see the header trust model.
  // Excluded from semantic identity: a cache is a performance artifact whose
  // invariant (wire[i] == point[i].Encode()) the filling party vouches for.
  std::vector<CompressedRistretto> base_wire;
  std::vector<CompressedRistretto> public_wire;

  // True when both sections carry complete caches.
  bool HasWire() const {
    return !bases.empty() && base_wire.size() == bases.size() &&
           public_wire.size() == publics.size();
  }

  // Fills any missing cache section by encoding its points (batched on the
  // current executor). The encode cost equals what one cacheless challenge
  // derivation would have paid; every later hash of this statement is then
  // SHA-only.
  void EnsureWire();

  // Decode-and-recompare check for statement bytes that did NOT come from a
  // trusted producer. Names the first mismatching section/index.
  Status ValidateWire() const;

  // Two-pair convenience (the common TRIP/decryption case).
  static DleqStatement MakePair(const RistrettoPoint& g1, const RistrettoPoint& p1,
                                const RistrettoPoint& g2, const RistrettoPoint& p2);

  // Wire-carrying construction: the same pair plus caller-supplied canonical
  // encodings (producer-local trust; see header).
  static DleqStatement MakePairWire(const RistrettoPoint& g1, const CompressedRistretto& g1_wire,
                                    const RistrettoPoint& p1, const CompressedRistretto& p1_wire,
                                    const RistrettoPoint& g2, const CompressedRistretto& g2_wire,
                                    const RistrettoPoint& p2, const CompressedRistretto& p2_wire);
};

// A (possibly simulated) transcript: commits Y_i, challenge e, response r.
// Valid iff r*G_i + e*P_i == Y_i for all i.
struct DleqTranscript {
  std::vector<RistrettoPoint> commits;
  Scalar challenge;
  Scalar response;

  // Cached canonical encodings of `commits` (empty or full-size). Filled by
  // provers at proving time and by Parse from the consumed wire bytes;
  // treated as attacker data by every verifier (decode + recompare before
  // hashing — see header trust model). Not part of the serialized format:
  // Serialize() emits the same bytes with or without the cache.
  std::vector<CompressedRistretto> commit_wire;

  bool HasWire() const {
    return !commits.empty() && commit_wire.size() == commits.size();
  }

  // Fills commit_wire by encoding the commits (prover-side use).
  void EnsureWire();

  // Decode-and-recompare of commit_wire against commits; names the first
  // mismatching index. The verify entry points call this before the cache
  // may bind challenge bits.
  Status ValidateWire() const;

  Bytes Serialize() const;
  static std::optional<DleqTranscript> Parse(std::span<const uint8_t> bytes);
};

// Interactive prover running the *sound* order: the commitment is fixed
// before the verifier's challenge is known. TRIP's kiosk uses this for real
// credentials; the printed receipt bears the commits before the voter picks
// an envelope.
class DleqProver {
 public:
  // Starts a proof of `statement` with witness `x`; draws the commitment
  // nonce from `rng`. The commits' canonical encodings are computed here,
  // once — the cost every later challenge hash or receipt print reuses.
  DleqProver(DleqStatement statement, const Scalar& x, Rng& rng);

  // The commits Y_i = y*G_i, available before any challenge exists.
  const std::vector<RistrettoPoint>& commits() const { return commits_; }

  // Canonical encodings of commits(), parallel to it.
  const std::vector<CompressedRistretto>& commit_wire() const { return commit_wire_; }

  // Completes the transcript (carrying the commit wire cache) for the
  // verifier-chosen challenge.
  DleqTranscript Respond(const Scalar& challenge) const;

 private:
  DleqStatement statement_;
  Scalar x_;
  Scalar y_;
  std::vector<RistrettoPoint> commits_;
  std::vector<CompressedRistretto> commit_wire_;
};

// Simulates a structurally valid transcript for an arbitrary statement given
// a challenge known *in advance* — the unsound order used for fake
// credentials. Works for statements with no witness at all. The returned
// transcript carries its commit wire cache, exactly like a sound one (a
// byte-level difference would break the voter's-eyes-only property).
DleqTranscript SimulateDleq(const DleqStatement& statement, const Scalar& challenge, Rng& rng);

// Checks r*G_i + e*P_i == Y_i for all pairs. Accepts sound and simulated
// transcripts alike (by design; see header comment).
Status VerifyDleqTranscript(const DleqStatement& statement, const DleqTranscript& transcript);

// Derives a Fiat–Shamir challenge binding the domain, statement, commits and
// optional extra context. Uses the statement's wire caches per section when
// complete (trusted, producer-local); encodes fresh otherwise. The hashed
// byte stream is identical either way.
Scalar DeriveFsChallenge(std::string_view domain, const DleqStatement& statement,
                         std::span<const RistrettoPoint> commits,
                         std::span<const uint8_t> extra);

// Wire-aware challenge derivation: like the overload above, but hashes
// `commit_wire` for the commit section when its size matches `commits`
// (falling back to encoding otherwise). With complete statement and commit
// caches this performs ZERO point encodings — the property the
// invocation-counting test in tests/test_dleq_wire.cpp pins down. Callers
// must have validated attacker-supplied commit bytes first (the Verify*
// entry points below do).
Scalar DeriveFsChallenge(std::string_view domain, const DleqStatement& statement,
                         std::span<const RistrettoPoint> commits,
                         std::span<const CompressedRistretto> commit_wire,
                         std::span<const uint8_t> extra);

// Non-interactive (Fiat–Shamir) proof; sound in the random-oracle model.
// The returned transcript carries its commit wire cache.
DleqTranscript ProveDleqFs(std::string_view domain, const DleqStatement& statement,
                           const Scalar& x, Rng& rng, std::span<const uint8_t> extra = {});

// Verifies a Fiat–Shamir proof (recomputes and checks the challenge). When
// the transcript carries a commit wire cache it is validated (decode +
// recompare) before its bytes bind the challenge; a stale or forged cache is
// a localized verification failure, not a silent fallback.
Status VerifyDleqFs(std::string_view domain, const DleqStatement& statement,
                    const DleqTranscript& transcript, std::span<const uint8_t> extra = {});

}  // namespace votegral

#endif  // SRC_CRYPTO_DLEQ_H_
