#include "src/crypto/hmac.h"

namespace votegral {

std::array<uint8_t, Sha256::kDigestSize> HmacSha256(std::span<const uint8_t> key,
                                                    std::span<const uint8_t> message) {
  std::array<uint8_t, Sha256::kBlockSize> key_block{};
  if (key.size() > Sha256::kBlockSize) {
    auto digest = Sha256::Hash(key);
    std::copy(digest.begin(), digest.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }
  std::array<uint8_t, Sha256::kBlockSize> ipad;
  std::array<uint8_t, Sha256::kBlockSize> opad;
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = static_cast<uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<uint8_t>(key_block[i] ^ 0x5c);
  }
  auto inner = Sha256::HashParts({ipad, message});
  return Sha256::HashParts({opad, inner});
}

bool HmacSha256Verify(std::span<const uint8_t> key, std::span<const uint8_t> message,
                      std::span<const uint8_t> tag) {
  auto expected = HmacSha256(key, message);
  return ConstantTimeEqual(expected, tag);
}

}  // namespace votegral
