#include "src/crypto/modp.h"

#include "src/common/bytes.h"
#include "src/crypto/sha512.h"

namespace votegral {

namespace {

using u128 = unsigned __int128;

// Parameters generated offline (seeded search; see DESIGN.md §2 and
// tests/test_modp.cpp which re-verifies primality and subgroup order).
constexpr std::string_view kPHexLe =
    "332250433a5863ef6b9682a4d2a18b06e2bf48320683637768c5552518b8238984a15f3342a25657492fcb1c"
    "d209551ca78cd0ac55e4a3c80b56281bd4181492293d700d5436bcbf04bdb65509fbdcffad13e55c0b596e31"
    "706008cd1210f4b37cbcf073fc6f0a245e1297e760710b514d1d90d5e3d3605228cc39299da3a8459c6fb816"
    "0ecc426cb359fb0e96c5f4efcaf2f919ccb923c73ab7da185017525ac4b7a7f915851181f5c369ba5ba63931"
    "81eacb52307431460dcadac7a78658ad0cafe6fbc9d7c9f1a666101a303d17b61dc3fa991d7f61407ecfdc0a"
    "decdc6e12df3fa403a8b56975f58bdacb08b346005be6f6fe2d816c4ec094f4b88daacf5";
constexpr std::string_view kQHexLe =
    "f5e309d850e00ce363dfddfefd5fc6e8de2115b433958beb1188a2f2739311ff";
constexpr std::string_view kGHexLe =
    "0a8cbcf1a04b9728de8bd904c505a4bb0099caeea1d4479a591514ed8b3aac913fbfa71dcdacfbf097683a2b"
    "c00ae81e857274db717e10808fc9141f58ddc958c5fba8eaaa9e1edffd50b45632609ed18b20aed24fa176a4"
    "9aa47e4d8822feb0ea9fbb178c7c5d98a6059722ecd48aa3173194b347a2fd2e58c2f1dcfd97d21ac9047187"
    "bd7bf0697ebb5e7066c2dffe3897015456417e00f6c30c02329bd825fe24697b1abb6d83d89d199bc8d7bb02"
    "1869947a6d0f40c5d49b932bca010e343bebbefd4a9fdaa1ee1ab25eaf3fe210aad76f13c2ee7e8a13caa21d"
    "2d9b7fd96319b683a7026f85d561bf5365adf82021d741266d11f13d557d8ef56a976b94";

template <size_t N>
std::array<uint64_t, N> LimbsFromHexLe(std::string_view hex) {
  Bytes bytes = HexDecode(hex);
  Require(bytes.size() == N * 8, "modp: parameter hex has wrong length");
  std::array<uint64_t, N> out{};
  for (size_t i = 0; i < N; ++i) {
    out[i] = LoadLe64(bytes.data() + 8 * i);
  }
  return out;
}

template <size_t N>
int CompareLimbs(const std::array<uint64_t, N>& a, const std::array<uint64_t, N>& b) {
  for (size_t i = N; i-- > 0;) {
    if (a[i] != b[i]) {
      return a[i] < b[i] ? -1 : 1;
    }
  }
  return 0;
}

template <size_t N>
uint64_t SubLimbs(std::array<uint64_t, N>& a, const std::array<uint64_t, N>& b) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < N; ++i) {
    u128 d = (u128)a[i] - b[i] - borrow;
    a[i] = (uint64_t)d;
    borrow = (uint64_t)(d >> 64) & 1;
  }
  return borrow;
}

template <size_t N>
uint64_t AddLimbs(std::array<uint64_t, N>& a, const std::array<uint64_t, N>& b) {
  uint64_t carry = 0;
  for (size_t i = 0; i < N; ++i) {
    u128 s = (u128)a[i] + b[i] + carry;
    a[i] = (uint64_t)s;
    carry = (uint64_t)(s >> 64);
  }
  return carry;
}

// Reduces a 2N-limb value modulo a N-limb modulus via binary long division.
// Slow (bit-at-a-time) but only used off the hot path (hash-to-scalar,
// randomness reduction); exponentiation uses Montgomery.
template <size_t N>
std::array<uint64_t, N> ReduceWide(const std::vector<uint64_t>& wide,
                                   const std::array<uint64_t, N>& modulus) {
  std::array<uint64_t, N> rem{};
  uint64_t rem_top = 0;
  for (size_t bit_index = wide.size() * 64; bit_index-- > 0;) {
    size_t limb = bit_index / 64;
    uint64_t bit = (wide[limb] >> (bit_index % 64)) & 1;
    rem_top = (rem_top << 1) | (rem[N - 1] >> 63);
    for (size_t i = N - 1; i > 0; --i) {
      rem[i] = (rem[i] << 1) | (rem[i - 1] >> 63);
    }
    rem[0] = (rem[0] << 1) | bit;
    if (rem_top != 0 || CompareLimbs<N>(rem, modulus) >= 0) {
      uint64_t borrow = SubLimbs<N>(rem, modulus);
      rem_top -= borrow;
    }
  }
  return rem;
}

constexpr std::string_view kQHashDomain = "votegral/modp/q-from-wide/v1";

}  // namespace

Bytes ModPElement::Serialize() const {
  Bytes out(kModPLimbs * 8);
  for (size_t i = 0; i < kModPLimbs; ++i) {
    StoreLe64(out.data() + 8 * i, limb[i]);
  }
  return out;
}

Bytes QScalar::Serialize() const {
  Bytes out(32);
  for (size_t i = 0; i < 4; ++i) {
    StoreLe64(out.data() + 8 * i, limb[i]);
  }
  return out;
}

ModPGroup::ModPGroup(std::string_view p_hex_le, std::string_view q_hex_le,
                     std::string_view g_hex_le) {
  p_ = LimbsFromHexLe<kModPLimbs>(p_hex_le);
  q_ = LimbsFromHexLe<4>(q_hex_le);
  generator_.limb = LimbsFromHexLe<kModPLimbs>(g_hex_le);

  // n0inv = -p^{-1} mod 2^64 via Newton iteration.
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - p_[0] * inv;
  }
  n0inv_ = ~inv + 1;  // negate mod 2^64

  // rr = R^2 mod p, R = 2^(64*kModPLimbs): start from R mod p = 2^2048 - p
  // (p has its top bit set, so 2^2048 < 2p) and double 2048 times.
  std::array<uint64_t, kModPLimbs> r{};
  // r = 2^2048 - p (two's complement negate).
  uint64_t borrow = 0;
  for (size_t i = 0; i < kModPLimbs; ++i) {
    u128 d = (u128)0 - p_[i] - borrow;
    r[i] = (uint64_t)d;
    borrow = (uint64_t)(d >> 64) & 1;
  }
  for (int i = 0; i < 64 * static_cast<int>(kModPLimbs); ++i) {
    uint64_t carry = AddLimbs<kModPLimbs>(r, r);
    if (carry != 0 || CompareLimbs<kModPLimbs>(r, p_) >= 0) {
      SubLimbs<kModPLimbs>(r, p_);
    }
  }
  rr_ = r;
}

const ModPGroup& ModPGroup::Standard() {
  static const ModPGroup kGroup(kPHexLe, kQHexLe, kGHexLe);
  return kGroup;
}

void ModPGroup::MontMul(const uint64_t* a, const uint64_t* b, uint64_t* out) const {
  constexpr size_t n = kModPLimbs;
  uint64_t t[n + 2] = {0};
  for (size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    u128 carry = 0;
    for (size_t j = 0; j < n; ++j) {
      u128 cur = (u128)t[j] + (u128)a[i] * b[j] + carry;
      t[j] = (uint64_t)cur;
      carry = cur >> 64;
    }
    u128 cur = (u128)t[n] + carry;
    t[n] = (uint64_t)cur;
    t[n + 1] += (uint64_t)(cur >> 64);

    // Montgomery reduction step.
    uint64_t m_i = t[0] * n0inv_;
    u128 cur0 = (u128)t[0] + (u128)m_i * p_[0];
    carry = cur0 >> 64;
    for (size_t j = 1; j < n; ++j) {
      u128 c2 = (u128)t[j] + (u128)m_i * p_[j] + carry;
      t[j - 1] = (uint64_t)c2;
      carry = c2 >> 64;
    }
    u128 curn = (u128)t[n] + carry;
    t[n - 1] = (uint64_t)curn;
    t[n] = t[n + 1] + (uint64_t)(curn >> 64);
    t[n + 1] = 0;
  }
  // Copy and reduce below p.
  std::array<uint64_t, kModPLimbs> result;
  std::copy(t, t + n, result.begin());
  while (t[n] != 0 || CompareLimbs<kModPLimbs>(result, p_) >= 0) {
    uint64_t borrow = SubLimbs<kModPLimbs>(result, p_);
    t[n] -= borrow;
  }
  std::copy(result.begin(), result.end(), out);
}

void ModPGroup::ToMont(const ModPElement& a, uint64_t* out) const {
  MontMul(a.limb.data(), rr_.data(), out);
}

ModPElement ModPGroup::FromMont(const uint64_t* a) const {
  uint64_t one[kModPLimbs] = {1};
  ModPElement out;
  MontMul(a, one, out.limb.data());
  return out;
}

ModPElement ModPGroup::One() const {
  ModPElement one;
  one.limb[0] = 1;
  return one;
}

ModPElement ModPGroup::Mul(const ModPElement& a, const ModPElement& b) const {
  uint64_t am[kModPLimbs];
  uint64_t bm[kModPLimbs];
  uint64_t prod[kModPLimbs];
  ToMont(a, am);
  ToMont(b, bm);
  MontMul(am, bm, prod);
  return FromMont(prod);
}

ModPElement ModPGroup::Exp(const ModPElement& base, const QScalar& exponent) const {
  uint64_t base_m[kModPLimbs];
  ToMont(base, base_m);
  // acc = R mod p (Montgomery one).
  uint64_t acc[kModPLimbs];
  {
    ModPElement one = One();
    ToMont(one, acc);
  }
  bool started = false;
  for (int i = 255; i >= 0; --i) {
    if (started) {
      MontMul(acc, acc, acc);
    }
    uint64_t bit = (exponent.limb[static_cast<size_t>(i / 64)] >> (i % 64)) & 1;
    if (bit != 0) {
      MontMul(acc, base_m, acc);
      started = true;
    }
  }
  return FromMont(acc);
}

ModPElement ModPGroup::ExpG(const QScalar& exponent) const { return Exp(generator_, exponent); }

ModPElement ModPGroup::Inverse(const ModPElement& a) const {
  // Subgroup elements have order q: a^{-1} = a^{q-1}.
  QScalar q_minus_1;
  q_minus_1.limb = q_;
  q_minus_1.limb[0] -= 1;  // q is odd, no borrow
  return Exp(a, q_minus_1);
}

bool ModPGroup::IsOne(const ModPElement& a) const { return a == One(); }

QScalar ModPGroup::QAdd(const QScalar& a, const QScalar& b) const {
  QScalar r = a;
  uint64_t carry = AddLimbs<4>(r.limb, b.limb);
  if (carry != 0 || CompareLimbs<4>(r.limb, q_) >= 0) {
    SubLimbs<4>(r.limb, q_);
  }
  return r;
}

QScalar ModPGroup::QSub(const QScalar& a, const QScalar& b) const {
  QScalar r = a;
  uint64_t borrow = SubLimbs<4>(r.limb, b.limb);
  if (borrow != 0) {
    AddLimbs<4>(r.limb, q_);
  }
  return r;
}

QScalar ModPGroup::QMul(const QScalar& a, const QScalar& b) const {
  std::vector<uint64_t> wide(8, 0);
  for (size_t i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (size_t j = 0; j < 4; ++j) {
      u128 cur = (u128)a.limb[i] * b.limb[j] + wide[i + j] + carry;
      wide[i + j] = (uint64_t)cur;
      carry = cur >> 64;
    }
    wide[i + 4] = (uint64_t)carry;
  }
  QScalar r;
  r.limb = ReduceWide<4>(wide, q_);
  return r;
}

QScalar ModPGroup::QNeg(const QScalar& a) const { return QSub(QScalar{}, a); }

QScalar ModPGroup::QRandom(Rng& rng) const {
  Bytes wide = rng.RandomBytes(64);
  return QFromWide(wide);
}

QScalar ModPGroup::QFromWide(std::span<const uint8_t> bytes64) const {
  Require(bytes64.size() == 64, "modp: QFromWide needs 64 bytes");
  std::vector<uint64_t> wide(8);
  for (size_t i = 0; i < 8; ++i) {
    wide[i] = LoadLe64(bytes64.data() + 8 * i);
  }
  QScalar r;
  r.limb = ReduceWide<4>(wide, q_);
  return r;
}

bool ModPGroup::MillerRabinP(Rng& rng, int rounds) const {
  // p - 1 = 2^s * d with d odd. Since p = 2kq+1 and q odd, s >= 1.
  std::array<uint64_t, kModPLimbs> d = p_;
  d[0] -= 1;
  int s = 0;
  while ((d[0] & 1) == 0) {
    // d >>= 1
    for (size_t i = 0; i + 1 < kModPLimbs; ++i) {
      d[i] = (d[i] >> 1) | (d[i + 1] << 63);
    }
    d[kModPLimbs - 1] >>= 1;
    ++s;
  }
  // Witness exponentiation uses a full-width exponent, so run a local
  // square-and-multiply over the 2048-bit d.
  auto exp_wide = [&](const ModPElement& base, const std::array<uint64_t, kModPLimbs>& e) {
    uint64_t base_m[kModPLimbs];
    ToMont(base, base_m);
    uint64_t acc[kModPLimbs];
    ModPElement one = One();
    ToMont(one, acc);
    for (int i = 64 * static_cast<int>(kModPLimbs) - 1; i >= 0; --i) {
      MontMul(acc, acc, acc);
      if (((e[static_cast<size_t>(i / 64)] >> (i % 64)) & 1) != 0) {
        MontMul(acc, base_m, acc);
      }
    }
    return FromMont(acc);
  };
  ModPElement p_minus_1;
  p_minus_1.limb = p_;
  p_minus_1.limb[0] -= 1;

  for (int round = 0; round < rounds; ++round) {
    // Random witness in [2, p-2]: a random residue is fine statistically.
    Bytes wide = rng.RandomBytes(kModPLimbs * 8 * 2);
    std::vector<uint64_t> w(kModPLimbs * 2);
    for (size_t i = 0; i < w.size(); ++i) {
      w[i] = LoadLe64(wide.data() + 8 * i);
    }
    ModPElement a;
    a.limb = ReduceWide<kModPLimbs>(w, p_);
    if (a == One() || a.limb == std::array<uint64_t, kModPLimbs>{} || a == p_minus_1) {
      continue;
    }
    ModPElement x = exp_wide(a, d);
    if (x == One() || x == p_minus_1) {
      continue;
    }
    bool witness = true;
    for (int r = 0; r < s - 1; ++r) {
      x = Mul(x, x);
      if (x == p_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) {
      return false;
    }
  }
  return true;
}

Status ModPGroup::CheckParameters(Rng& rng) const {
  if (!MillerRabinP(rng, 8)) {
    return Status::Error("modp: p failed Miller-Rabin");
  }
  // q primality: reuse generic small MR via python-free approach — check
  // g^q == 1 and g != 1 (subgroup order divides q; q prime was verified at
  // generation; here we at least confirm order-q behaviour).
  QScalar q_as_scalar;  // q mod q == 0 — instead exponentiate by q directly:
  (void)q_as_scalar;
  // Compute g^q via wide exponent path (q has 256 bits; QScalar holds values
  // < q, so build the exponent manually).
  uint64_t base_m[kModPLimbs];
  ToMont(generator_, base_m);
  uint64_t acc[kModPLimbs];
  ModPElement one = One();
  ToMont(one, acc);
  for (int i = 255; i >= 0; --i) {
    MontMul(acc, acc, acc);
    if (((q_[static_cast<size_t>(i / 64)] >> (i % 64)) & 1) != 0) {
      MontMul(acc, base_m, acc);
    }
  }
  if (!(FromMont(acc) == One())) {
    return Status::Error("modp: generator order is not q");
  }
  if (generator_ == One()) {
    return Status::Error("modp: generator is the identity");
  }
  return Status::Ok();
}

ModPCiphertext ModPEncrypt(const ModPGroup& group, const ModPElement& pk,
                           const ModPElement& message, const QScalar& randomness) {
  return {group.ExpG(randomness), group.Mul(group.Exp(pk, randomness), message)};
}

ModPElement ModPDecrypt(const ModPGroup& group, const QScalar& sk, const ModPCiphertext& ct) {
  return group.Mul(ct.c2, group.Inverse(group.Exp(ct.c1, sk)));
}

ModPCiphertext ModPReRandomize(const ModPGroup& group, const ModPElement& pk,
                               const ModPCiphertext& ct, const QScalar& randomness) {
  return {group.Mul(ct.c1, group.ExpG(randomness)),
          group.Mul(ct.c2, group.Exp(pk, randomness))};
}

ModPCiphertext ModPQuotient(const ModPGroup& group, const ModPCiphertext& a,
                            const ModPCiphertext& b) {
  return {group.Mul(a.c1, group.Inverse(b.c1)), group.Mul(a.c2, group.Inverse(b.c2))};
}

namespace {

QScalar DleqChallenge(const ModPGroup& group, std::string_view domain, const ModPElement& g1,
                      const ModPElement& p1, const ModPElement& g2, const ModPElement& p2,
                      const ModPElement& y1, const ModPElement& y2) {
  Sha512 h;
  h.Update(AsBytes(domain));
  uint8_t sep = 0;
  h.Update({&sep, 1});
  h.Update(g1.Serialize());
  h.Update(p1.Serialize());
  h.Update(g2.Serialize());
  h.Update(p2.Serialize());
  h.Update(y1.Serialize());
  h.Update(y2.Serialize());
  return group.QFromWide(h.Finalize());
}

}  // namespace

ModPDleqProof ModPProveDleq(const ModPGroup& group, std::string_view domain,
                            const ModPElement& g1, const ModPElement& p1,
                            const ModPElement& g2, const ModPElement& p2, const QScalar& x,
                            Rng& rng) {
  QScalar y = group.QRandom(rng);
  ModPDleqProof proof;
  proof.commit_1 = group.Exp(g1, y);
  proof.commit_2 = group.Exp(g2, y);
  proof.challenge =
      DleqChallenge(group, domain, g1, p1, g2, p2, proof.commit_1, proof.commit_2);
  proof.response = group.QSub(y, group.QMul(proof.challenge, x));
  return proof;
}

Status ModPVerifyDleq(const ModPGroup& group, std::string_view domain, const ModPElement& g1,
                      const ModPElement& p1, const ModPElement& g2, const ModPElement& p2,
                      const ModPDleqProof& proof) {
  QScalar expected =
      DleqChallenge(group, domain, g1, p1, g2, p2, proof.commit_1, proof.commit_2);
  if (!(expected == proof.challenge)) {
    return Status::Error("modp-dleq: challenge mismatch");
  }
  ModPElement lhs1 =
      group.Mul(group.Exp(g1, proof.response), group.Exp(p1, proof.challenge));
  if (!(lhs1 == proof.commit_1)) {
    return Status::Error("modp-dleq: first equation failed");
  }
  ModPElement lhs2 =
      group.Mul(group.Exp(g2, proof.response), group.Exp(p2, proof.challenge));
  if (!(lhs2 == proof.commit_2)) {
    return Status::Error("modp-dleq: second equation failed");
  }
  return Status::Ok();
}

PetShare PetBlind(const ModPGroup& group, const ModPCiphertext& quotient, const QScalar& z,
                  const ModPElement& commitment, Rng& rng) {
  PetShare share;
  share.blinded.c1 = group.Exp(quotient.c1, z);
  share.blinded.c2 = group.Exp(quotient.c2, z);
  // Prove same exponent on (g, commitment) and (c1, blinded c1); the c2
  // component is bound through a second equation via the product trick:
  // prove DLEQ on (c1*c2... ) — for clarity we prove on c1 and verify c2
  // with a second proof in the same share.
  share.proof = ModPProveDleq(group, "votegral/modp/pet-share/v1", group.generator(),
                              commitment, quotient.c1, share.blinded.c1, z, rng);
  return share;
}

Status PetVerifyShare(const ModPGroup& group, const ModPCiphertext& quotient,
                      const PetShare& share, const ModPElement& commitment) {
  return ModPVerifyDleq(group, "votegral/modp/pet-share/v1", group.generator(), commitment,
                        quotient.c1, share.blinded.c1, share.proof);
}

}  // namespace votegral
