// SHA-256 (FIPS 180-4), implemented from scratch. Used by TRIP for check-in
// ticket MACs (HMAC-SHA-256) and for ledger hash chaining.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace votegral {

// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  // Absorbs more input.
  Sha256& Update(std::span<const uint8_t> data);

  // Finalizes and returns the digest. The hasher must not be reused after.
  std::array<uint8_t, kDigestSize> Finalize();

  // One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(std::span<const uint8_t> data);

  // One-shot over the concatenation of several parts (avoids copies).
  static std::array<uint8_t, kDigestSize> HashParts(
      std::initializer_list<std::span<const uint8_t>> parts);

 private:
  void Compress(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffered_ = 0;
  uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

}  // namespace votegral

#endif  // SRC_CRYPTO_SHA256_H_
