// Arithmetic modulo ℓ = 2^252 + 27742317777372353535851937790883648493, the
// prime order of the ristretto255 group. Values are kept canonical (< ℓ) as
// four 64-bit little-endian limbs.
//
// Reduction of the 512-bit product uses Barrett reduction (HAC 14.42) with
// μ = floor(2^512/ℓ) derived at startup: scalar products feed every batch
// weight on the MSM verification path, so reduction is no longer allowed to
// cost 512 shift-and-subtract iterations as it did in the seed.
#ifndef SRC_CRYPTO_SCALAR_H_
#define SRC_CRYPTO_SCALAR_H_

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "src/common/rng.h"

namespace votegral {

// A scalar in Z_ℓ, always canonically reduced.
class Scalar {
 public:
  // Zero scalar.
  Scalar() : limb_{0, 0, 0, 0} {}

  static Scalar Zero() { return Scalar(); }
  static Scalar One();
  static Scalar FromU64(uint64_t v);

  // Interprets 32 little-endian bytes modulo ℓ.
  static Scalar FromBytesModL(std::span<const uint8_t> bytes32);

  // Interprets 64 little-endian bytes modulo ℓ (the uniform path used for
  // hash-derived scalars, per the usual "wide reduction" construction).
  static Scalar FromBytesWide(std::span<const uint8_t> bytes64);

  // Parses bytes that must already be canonical (< ℓ); returns nullopt
  // otherwise. Used when deserializing signatures/proofs.
  static std::optional<Scalar> FromCanonicalBytes(std::span<const uint8_t> bytes32);

  // Uniformly random scalar.
  static Scalar Random(Rng& rng);

  std::array<uint8_t, 32> ToBytes() const;

  Scalar operator+(const Scalar& other) const;
  Scalar operator-(const Scalar& other) const;
  Scalar operator*(const Scalar& other) const;
  Scalar operator-() const;

  // Multiplicative inverse; `this` must be nonzero.
  Scalar Invert() const;

  bool IsZero() const;
  bool operator==(const Scalar& other) const;
  bool operator!=(const Scalar& other) const { return !(*this == other); }

  // Raw limb access for the benchmark harness and tests.
  const std::array<uint64_t, 4>& limbs() const { return limb_; }

 private:
  explicit Scalar(const std::array<uint64_t, 4>& limbs) : limb_(limbs) {}

  // Reduces a 512-bit little-endian value modulo ℓ.
  static Scalar Reduce512(const std::array<uint64_t, 8>& wide);

  std::array<uint64_t, 4> limb_;
};

}  // namespace votegral

#endif  // SRC_CRYPTO_SCALAR_H_
