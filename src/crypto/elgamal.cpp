#include "src/crypto/elgamal.h"

#include <algorithm>

namespace votegral {

ElGamalCiphertext ElGamalCiphertext::operator+(const ElGamalCiphertext& other) const {
  return {c1 + other.c1, c2 + other.c2};
}

ElGamalCiphertext ElGamalCiphertext::ReRandomize(const RistrettoPoint& pk,
                                                 const Scalar& r) const {
  return {c1 + RistrettoPoint::MulBase(r), c2 + r * pk};
}

ElGamalCiphertext ElGamalCiphertext::ExponentiateBy(const Scalar& z) const {
  return {z * c1, z * c2};
}

bool ElGamalCiphertext::operator==(const ElGamalCiphertext& other) const {
  return c1 == other.c1 && c2 == other.c2;
}

Bytes ElGamalCiphertext::Serialize() const {
  auto a = c1.Encode();
  auto b = c2.Encode();
  return Concat({a, b});
}

std::array<uint8_t, 64> ElGamalCiphertext::Wire() const {
  std::array<uint8_t, 64> wire;
  auto a = c1.Encode();
  auto b = c2.Encode();
  std::copy(a.begin(), a.end(), wire.begin());
  std::copy(b.begin(), b.end(), wire.begin() + 32);
  return wire;
}

std::array<uint8_t, 32> ElGamalWireHalf(const ElGamalWire& wire, size_t half) {
  std::array<uint8_t, 32> out;
  std::copy(wire.begin() + static_cast<ptrdiff_t>(32 * half),
            wire.begin() + static_cast<ptrdiff_t>(32 * (half + 1)), out.begin());
  return out;
}

std::optional<ElGamalCiphertext> ElGamalCiphertext::Parse(std::span<const uint8_t> bytes) {
  if (bytes.size() != 64) {
    return std::nullopt;
  }
  auto c1 = RistrettoPoint::Decode(bytes.subspan(0, 32));
  auto c2 = RistrettoPoint::Decode(bytes.subspan(32, 32));
  if (!c1.has_value() || !c2.has_value()) {
    return std::nullopt;
  }
  return ElGamalCiphertext{*c1, *c2};
}

ElGamalCiphertext ElGamalEncrypt(const RistrettoPoint& pk, const RistrettoPoint& message,
                                 const Scalar& r) {
  return {RistrettoPoint::MulBase(r), r * pk + message};
}

ElGamalCiphertext ElGamalEncrypt(const RistrettoPoint& pk, const RistrettoPoint& message,
                                 Rng& rng, Scalar* randomness_out) {
  Scalar r = Scalar::Random(rng);
  if (randomness_out != nullptr) {
    *randomness_out = r;
  }
  return ElGamalEncrypt(pk, message, r);
}

ElGamalCiphertext ElGamalTrivialEncrypt(const RistrettoPoint& message) {
  return {RistrettoPoint::Identity(), message};
}

RistrettoPoint ElGamalDecrypt(const Scalar& sk, const ElGamalCiphertext& ct) {
  return ct.c2 - sk * ct.c1;
}

}  // namespace votegral
