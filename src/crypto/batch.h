// Batch verification via random linear combination.
//
// The universal verifier checks thousands of Schnorr signatures and
// Chaum–Pedersen proofs per election. Both have linear verification
// equations, so n checks can be merged into one multi-term equation with
// random 128-bit weights: if any single check fails, the combined equation
// holds with probability at most 2^-128 (Schwartz–Zippel over Z_ℓ).
//
// Used by auditors who only need an accept/reject verdict for a whole
// transcript section; the per-item paths remain for pinpointing failures.
#ifndef SRC_CRYPTO_BATCH_H_
#define SRC_CRYPTO_BATCH_H_

#include <array>
#include <span>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/dleq.h"
#include "src/crypto/schnorr.h"

namespace votegral {

// 128-bit random-linear-combination weight (sufficient for 2^-128 soundness,
// half the scalar-multiplication cost of full-width weights). Shared by every
// batched check in the stack — one definition keeps the weight convention in
// sync. Stack-allocated: a weight is drawn per batch term, and a heap
// round-trip per weight showed up in the batch-verification profile.
inline Scalar RandomRlcWeight(Rng& rng) {
  std::array<uint8_t, 64> wide{};
  rng.Fill(std::span<uint8_t>(wide.data(), 16));
  return Scalar::FromBytesWide(wide);
}

// One Schnorr verification instance.
struct SchnorrBatchEntry {
  CompressedRistretto public_key{};
  Bytes message;
  SchnorrSignature signature;
};

// Verifies all entries at once. Empty batches verify trivially. On failure
// the batch only reports *that* something failed; callers fall back to the
// per-item path to locate it.
Status BatchVerifySchnorr(std::span<const SchnorrBatchEntry> entries, Rng& rng);

// One Fiat–Shamir DLEQ verification instance. Statements should carry their
// producer-local wire caches (see src/crypto/dleq.h trust model) so challenge
// recomputation is SHA-only; transcript commit caches are validated by
// BatchVerifyDleq before use.
struct DleqBatchEntry {
  std::string domain;
  DleqStatement statement;
  DleqTranscript transcript;
  Bytes extra;
};

// Verifies all DLEQ proofs at once (challenge recomputation stays per-item;
// the group equations are combined). Present transcript commit caches are
// decoded back and recompared in one batched pass before they may bind
// challenge bits; a stale or forged cache is a localized per-entry failure.
Status BatchVerifyDleq(std::span<const DleqBatchEntry> entries, Rng& rng);

// Deterministic weight seed for auditor-reproducible BatchVerifyDleq calls:
// binds every entry's Fiat–Shamir challenge and response under `domain`.
// The challenge itself already binds the proof domain, statement and
// commitments (collision resistance of the FS hash), so hashing the
// (challenge, response) pairs binds the entire batch without re-encoding
// any points — entries are only accepted by BatchVerifyDleq if their
// recomputed challenge matches, which ties the weights to the statements.
std::array<uint8_t, 64> DleqBatchWeightSeed(std::string_view domain,
                                            std::span<const DleqBatchEntry> entries);

}  // namespace votegral

#endif  // SRC_CRYPTO_BATCH_H_
