#include "src/crypto/dkg.h"

namespace votegral {

namespace {

constexpr std::string_view kShareDomain = kDecryptionShareDomain;

}  // namespace

ElectionAuthority ElectionAuthority::Create(size_t n, Rng& rng) {
  Require(n >= 1, "ElectionAuthority::Create: need at least one member");
  ElectionAuthority authority;
  authority.public_key_ = RistrettoPoint::Identity();
  authority.members_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    AuthorityMember m;
    m.secret = Scalar::Random(rng);
    m.public_share = RistrettoPoint::MulBase(m.secret);
    // Proof of possession: sign the share encoding with the share's key.
    // The encoding is retained as the member's wire cache.
    m.public_share_wire = m.public_share.Encode();
    SchnorrKeyPair kp = SchnorrKeyPair::FromSecret(m.secret);
    m.proof_of_possession = kp.Sign(m.public_share_wire, rng);
    authority.public_key_ = authority.public_key_ + m.public_share;
    authority.members_.push_back(std::move(m));
  }
  return authority;
}

Status ElectionAuthority::VerifySetup() const {
  for (const auto& m : members_) {
    Status status =
        SchnorrVerify(m.public_share_wire, m.public_share_wire, m.proof_of_possession);
    if (!status.ok()) {
      return Status::Error("dkg: proof of possession invalid: " + status.reason());
    }
  }
  return Status::Ok();
}

DecryptionShare ElectionAuthority::ComputeShare(size_t i, const ElGamalCiphertext& ct,
                                                Rng& rng,
                                                const CompressedRistretto* c1_wire) const {
  const AuthorityMember& m = members_.at(i);
  DecryptionShare share;
  share.member_index = i;
  share.share = m.secret * ct.c1;
  // Statement DLEQ((B, X_i), (C1, S_i)), fully wire-backed: B and X_i from
  // standing caches, C1 from the caller or one encode, S_i fresh (it was
  // just computed; its encode is the cost the old path also paid inside the
  // challenge hash).
  DleqStatement statement = DleqStatement::MakePairWire(
      RistrettoPoint::Base(), RistrettoPoint::BaseWire(), m.public_share,
      m.public_share_wire, ct.c1, c1_wire != nullptr ? *c1_wire : ct.c1.Encode(),
      share.share, share.share.Encode());
  share.proof = ProveDleqFs(kShareDomain, statement, m.secret, rng);
  return share;
}

Status ElectionAuthority::VerifyShare(const ElGamalCiphertext& ct,
                                      const DecryptionShare& share) const {
  if (share.member_index >= members_.size()) {
    return Status::Error("dkg: share from unknown member");
  }
  const AuthorityMember& m = members_[share.member_index];
  DleqStatement statement = DleqStatement::MakePairWire(
      RistrettoPoint::Base(), RistrettoPoint::BaseWire(), m.public_share,
      m.public_share_wire, ct.c1, ct.c1.Encode(), share.share, share.share.Encode());
  Status status = VerifyDleqFs(kShareDomain, statement, share.proof);
  if (!status.ok()) {
    return Status::Error("dkg: decryption share proof invalid: " + status.reason());
  }
  return Status::Ok();
}

RistrettoPoint ElectionAuthority::CombineShares(const ElGamalCiphertext& ct,
                                                const std::vector<DecryptionShare>& shares) const {
  Require(shares.size() == members_.size(), "dkg: need one share per member (n-of-n)");
  std::vector<bool> seen(members_.size(), false);
  RistrettoPoint sum;
  for (const auto& share : shares) {
    Require(share.member_index < members_.size(), "dkg: share index out of range");
    Require(!seen[share.member_index], "dkg: duplicate share");
    seen[share.member_index] = true;
    sum = sum + share.share;
  }
  return ct.c2 - sum;
}

RistrettoPoint ElectionAuthority::Decrypt(const ElGamalCiphertext& ct) const {
  return ElGamalDecrypt(CombinedSecret(), ct);
}

Scalar ElectionAuthority::CombinedSecret() const {
  Scalar sum = Scalar::Zero();
  for (const auto& m : members_) {
    sum = sum + m.secret;
  }
  return sum;
}

}  // namespace votegral
