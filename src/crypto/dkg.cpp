#include "src/crypto/dkg.h"

namespace votegral {

namespace {

constexpr std::string_view kShareDomain = kDecryptionShareDomain;

}  // namespace

ElectionAuthority ElectionAuthority::Create(size_t n, Rng& rng) {
  Require(n >= 1, "ElectionAuthority::Create: need at least one member");
  ElectionAuthority authority;
  authority.threshold_ = n;
  authority.public_key_ = RistrettoPoint::Identity();
  authority.members_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    AuthorityMember m;
    m.secret = Scalar::Random(rng);
    m.public_share = RistrettoPoint::MulBase(m.secret);
    // Proof of possession: sign the share encoding with the share's key.
    // The encoding is retained as the member's wire cache.
    m.public_share_wire = m.public_share.Encode();
    SchnorrKeyPair kp = SchnorrKeyPair::FromSecret(m.secret);
    m.proof_of_possession = kp.Sign(m.public_share_wire, rng);
    authority.public_key_ = authority.public_key_ + m.public_share;
    authority.members_.push_back(std::move(m));
  }
  return authority;
}

ElectionAuthority ElectionAuthority::CreateThreshold(size_t threshold, size_t n,
                                                     Rng& rng) {
  Require(n >= 1, "ElectionAuthority::CreateThreshold: need at least one member");
  Require(threshold >= 1 && threshold <= n,
          "ElectionAuthority::CreateThreshold: invalid threshold");
  ElectionAuthority authority;
  authority.threshold_ = threshold;
  authority.shamir_mode_ = true;
  // Dealerless sum-of-dealers DKG: every member deals an independent random
  // secret over a degree-(t-1) polynomial; member j's key is the sum of all
  // dealers' evaluations at x = j+1, i.e. F(j+1) for the summed polynomial
  // F = Σ_i f_i, whose commitments are the coefficient-wise sums. No single
  // party ever holds F(0); any t members can reconstruct it, t-1 learn
  // nothing beyond their shares (standard Feldman argument).
  std::vector<Scalar> secrets(n, Scalar::Zero());
  FeldmanCommitments summed(threshold, RistrettoPoint::Identity());
  for (size_t dealer = 0; dealer < n; ++dealer) {
    FeldmanCommitments dealt;
    const std::vector<ShamirShare> shares =
        ShamirSplit(Scalar::Random(rng), threshold, n, rng, &dealt);
    for (size_t j = 0; j < n; ++j) {
      secrets[j] = secrets[j] + shares[j].value;
    }
    for (size_t c = 0; c < threshold; ++c) {
      summed[c] = summed[c] + dealt[c];
    }
  }
  authority.feldman_ = std::move(summed);
  authority.public_key_ = authority.feldman_[0];  // C_0 = F(0) * B
  authority.members_.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    AuthorityMember m;
    m.secret = secrets[j];
    m.public_share = RistrettoPoint::MulBase(m.secret);
    m.public_share_wire = m.public_share.Encode();
    SchnorrKeyPair kp = SchnorrKeyPair::FromSecret(m.secret);
    m.proof_of_possession = kp.Sign(m.public_share_wire, rng);
    authority.members_.push_back(std::move(m));
  }
  return authority;
}

Status ElectionAuthority::VerifySetup() const {
  for (const auto& m : members_) {
    Status status =
        SchnorrVerify(m.public_share_wire, m.public_share_wire, m.proof_of_possession);
    if (!status.ok()) {
      return Status::Error(StatusCode::kInvalidProof,
                           "dkg: proof of possession invalid: " + status.reason());
    }
  }
  if (shamir_mode_) {
    // Feldman consistency: each published key share must be the summed
    // polynomial's evaluation in the exponent, or Lagrange recombination
    // over a subset would silently decrypt to garbage.
    for (size_t j = 0; j < members_.size(); ++j) {
      if (!(members_[j].public_share == EvalFeldman(feldman_, j + 1))) {
        return Status::Error(StatusCode::kInvalidProof,
                             "dkg: member " + std::to_string(j) +
                                 " public share inconsistent with Feldman commitments");
      }
    }
  }
  return Status::Ok();
}

DecryptionShare ElectionAuthority::ComputeShare(size_t i, const ElGamalCiphertext& ct,
                                                Rng& rng,
                                                const CompressedRistretto* c1_wire) const {
  const AuthorityMember& m = members_.at(i);
  DecryptionShare share;
  share.member_index = i;
  share.share = m.secret * ct.c1;
  // Statement DLEQ((B, X_i), (C1, S_i)), fully wire-backed: B and X_i from
  // standing caches, C1 from the caller or one encode, S_i fresh (it was
  // just computed; its encode is the cost the old path also paid inside the
  // challenge hash).
  DleqStatement statement = DleqStatement::MakePairWire(
      RistrettoPoint::Base(), RistrettoPoint::BaseWire(), m.public_share,
      m.public_share_wire, ct.c1, c1_wire != nullptr ? *c1_wire : ct.c1.Encode(),
      share.share, share.share.Encode());
  share.proof = ProveDleqFs(kShareDomain, statement, m.secret, rng);
  return share;
}

Status ElectionAuthority::VerifyShare(const ElGamalCiphertext& ct,
                                      const DecryptionShare& share) const {
  if (share.member_index >= members_.size()) {
    return Status::Error(StatusCode::kInvalidProof, "dkg: share from unknown member");
  }
  const AuthorityMember& m = members_[share.member_index];
  DleqStatement statement = DleqStatement::MakePairWire(
      RistrettoPoint::Base(), RistrettoPoint::BaseWire(), m.public_share,
      m.public_share_wire, ct.c1, ct.c1.Encode(), share.share, share.share.Encode());
  Status status = VerifyDleqFs(kShareDomain, statement, share.proof);
  if (!status.ok()) {
    return Status::Error(StatusCode::kInvalidProof,
                         "dkg: decryption share proof invalid: " + status.reason());
  }
  return Status::Ok();
}

RistrettoPoint ElectionAuthority::CombineShares(const ElGamalCiphertext& ct,
                                                const std::vector<DecryptionShare>& shares) const {
  if (shamir_mode_) {
    Require(shares.size() >= threshold_,
            "dkg: fewer shares than the decryption threshold");
    std::vector<size_t> points;
    points.reserve(shares.size());
    for (const auto& share : shares) {
      Require(share.member_index < members_.size(), "dkg: share index out of range");
      const size_t point = share.member_index + 1;
      for (size_t seen : points) {
        Require(seen != point, "dkg: duplicate share");
      }
      points.push_back(point);
    }
    RistrettoPoint blinding;  // Σ λ_j * S_j = F(0) * C1
    for (const auto& share : shares) {
      blinding = blinding +
                 LagrangeAtZero(points, share.member_index + 1) * share.share;
    }
    return ct.c2 - blinding;
  }
  Require(shares.size() == members_.size(), "dkg: need one share per member (n-of-n)");
  std::vector<bool> seen(members_.size(), false);
  RistrettoPoint sum;
  for (const auto& share : shares) {
    Require(share.member_index < members_.size(), "dkg: share index out of range");
    Require(!seen[share.member_index], "dkg: duplicate share");
    seen[share.member_index] = true;
    sum = sum + share.share;
  }
  return ct.c2 - sum;
}

RistrettoPoint ElectionAuthority::Decrypt(const ElGamalCiphertext& ct) const {
  return ElGamalDecrypt(CombinedSecret(), ct);
}

Scalar ElectionAuthority::CombinedSecret() const {
  if (shamir_mode_) {
    std::vector<ShamirShare> shares;
    shares.reserve(threshold_);
    for (size_t j = 0; j < threshold_; ++j) {
      shares.push_back(ShamirShare{j + 1, members_[j].secret});
    }
    return ShamirReconstruct(shares);
  }
  Scalar sum = Scalar::Zero();
  for (const auto& m : members_) {
    sum = sum + m.secret;
  }
  return sum;
}

}  // namespace votegral
