#include "src/crypto/shamir.h"

namespace votegral {

namespace {

constexpr std::string_view kThresholdShareDomain = "votegral/threshold/decryption-share/v1";

}  // namespace

// Evaluates sum_j x^j * points[j] (Horner over the group).
RistrettoPoint EvalFeldman(const FeldmanCommitments& commitments, size_t x) {
  Scalar x_scalar = Scalar::FromU64(static_cast<uint64_t>(x));
  RistrettoPoint acc;  // identity
  for (size_t j = commitments.size(); j-- > 0;) {
    acc = x_scalar * acc + commitments[j];
  }
  return acc;
}

std::vector<ShamirShare> ShamirSplit(const Scalar& secret, size_t threshold, size_t n,
                                     Rng& rng, FeldmanCommitments* commitments) {
  Require(threshold >= 1 && threshold <= n, "shamir: invalid threshold");
  // f(x) = secret + a_1 x + ... + a_{t-1} x^{t-1}.
  std::vector<Scalar> coefficients = {secret};
  for (size_t j = 1; j < threshold; ++j) {
    coefficients.push_back(Scalar::Random(rng));
  }
  if (commitments != nullptr) {
    commitments->clear();
    for (const Scalar& a : coefficients) {
      commitments->push_back(RistrettoPoint::MulBase(a));
    }
  }
  std::vector<ShamirShare> shares;
  shares.reserve(n);
  for (size_t i = 1; i <= n; ++i) {
    Scalar x = Scalar::FromU64(static_cast<uint64_t>(i));
    // Horner evaluation.
    Scalar value = Scalar::Zero();
    for (size_t j = coefficients.size(); j-- > 0;) {
      value = value * x + coefficients[j];
    }
    shares.push_back(ShamirShare{i, value});
  }
  return shares;
}

Status VerifyShamirShare(const ShamirShare& share, const FeldmanCommitments& commitments) {
  if (share.index == 0 || commitments.empty()) {
    return Status::Error("shamir: malformed share or commitments");
  }
  RistrettoPoint expected = EvalFeldman(commitments, share.index);
  if (!(RistrettoPoint::MulBase(share.value) == expected)) {
    return Status::Error("shamir: share does not match Feldman commitments");
  }
  return Status::Ok();
}

Scalar LagrangeAtZero(const std::vector<size_t>& indices, size_t index) {
  Scalar numerator = Scalar::One();
  Scalar denominator = Scalar::One();
  Scalar x_i = Scalar::FromU64(static_cast<uint64_t>(index));
  bool found = false;
  for (size_t other : indices) {
    if (other == index) {
      found = true;
      continue;
    }
    Scalar x_j = Scalar::FromU64(static_cast<uint64_t>(other));
    numerator = numerator * (Scalar::Zero() - x_j);
    denominator = denominator * (x_i - x_j);
  }
  Require(found, "shamir: index not in interpolation set");
  return numerator * denominator.Invert();
}

Scalar ShamirReconstruct(std::span<const ShamirShare> shares) {
  Require(!shares.empty(), "shamir: no shares");
  std::vector<size_t> indices;
  for (const ShamirShare& share : shares) {
    for (size_t seen : indices) {
      Require(seen != share.index, "shamir: duplicate share index");
    }
    indices.push_back(share.index);
  }
  Scalar secret = Scalar::Zero();
  for (const ShamirShare& share : shares) {
    secret = secret + LagrangeAtZero(indices, share.index) * share.value;
  }
  return secret;
}

ThresholdAuthority ThresholdAuthority::Create(size_t threshold, size_t n, Rng& rng) {
  ThresholdAuthority authority;
  authority.threshold_ = threshold;
  Scalar secret = Scalar::Random(rng);
  authority.shares_ = ShamirSplit(secret, threshold, n, rng, &authority.commitments_);
  authority.public_key_ = authority.commitments_.at(0);  // C_0 = secret * B
  return authority;
}

RistrettoPoint ThresholdAuthority::ShareCommitment(size_t index) const {
  return EvalFeldman(commitments_, index);
}

ThresholdDecryptionShare ThresholdAuthority::ComputeShare(size_t index,
                                                          const ElGamalCiphertext& ct,
                                                          Rng& rng) const {
  Require(index >= 1 && index <= shares_.size(), "threshold: index out of range");
  const ShamirShare& share = shares_[index - 1];
  ThresholdDecryptionShare out;
  out.index = index;
  out.partial = share.value * ct.c1;
  // Wire-carrying statement: every point here is freshly computed or the
  // generator, so the caches are one Encode each — the cost the challenge
  // hash paid anyway, now paid once and retained through the proof.
  DleqStatement statement = DleqStatement::MakePair(
      RistrettoPoint::Base(), RistrettoPoint::MulBase(share.value), ct.c1, out.partial);
  statement.base_wire = {RistrettoPoint::BaseWire(), statement.bases[1].Encode()};
  statement.public_wire = {statement.publics[0].Encode(), statement.publics[1].Encode()};
  out.proof = ProveDleqFs(kThresholdShareDomain, statement, share.value, rng);
  return out;
}

Status ThresholdAuthority::VerifyShare(const ElGamalCiphertext& ct,
                                       const ThresholdDecryptionShare& share) const {
  if (share.index == 0 || share.index > shares_.size()) {
    return Status::Error("threshold: share from unknown trustee");
  }
  DleqStatement statement = DleqStatement::MakePair(
      RistrettoPoint::Base(), ShareCommitment(share.index), ct.c1, share.partial);
  statement.base_wire = {RistrettoPoint::BaseWire(), statement.bases[1].Encode()};
  statement.public_wire = {statement.publics[0].Encode(), statement.publics[1].Encode()};
  return VerifyDleqFs(kThresholdShareDomain, statement, share.proof);
}

Outcome<RistrettoPoint> ThresholdAuthority::Combine(
    const ElGamalCiphertext& ct, std::span<const ThresholdDecryptionShare> shares) const {
  if (shares.size() < threshold_) {
    return Outcome<RistrettoPoint>::Fail("threshold: not enough shares");
  }
  std::vector<size_t> indices;
  for (const ThresholdDecryptionShare& share : shares) {
    for (size_t seen : indices) {
      if (seen == share.index) {
        return Outcome<RistrettoPoint>::Fail("threshold: duplicate share");
      }
    }
    if (Status ok = VerifyShare(ct, share); !ok.ok()) {
      return Outcome<RistrettoPoint>::Fail(ok.reason());
    }
    indices.push_back(share.index);
  }
  RistrettoPoint blinding;  // sum λ_i * partial_i = secret * C1
  for (const ThresholdDecryptionShare& share : shares) {
    blinding = blinding + LagrangeAtZero(indices, share.index) * share.partial;
  }
  return Outcome<RistrettoPoint>::Ok(ct.c2 - blinding);
}

}  // namespace votegral
