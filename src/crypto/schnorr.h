// Schnorr signatures over ristretto255 with SHA-512 challenges — the
// EUF-CMA signature scheme Sig of the paper's §E.1. Used by kiosks (receipt
// signatures σ_kc, σ_kot, σ_kr), officials (check-out approval σ_o), envelope
// printers (σ_p), and voter credentials (ballot authentication).
#ifndef SRC_CRYPTO_SCHNORR_H_
#define SRC_CRYPTO_SCHNORR_H_

#include <array>
#include <optional>
#include <span>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/ristretto.h"
#include "src/crypto/scalar.h"

namespace votegral {

// A Schnorr signature (R, s): R = k*B, s = k + H(R, pk, m)*sk.
struct SchnorrSignature {
  CompressedRistretto r_bytes{};
  Scalar s;

  // 64-byte wire format: R || s.
  Bytes Serialize() const;
  static std::optional<SchnorrSignature> Parse(std::span<const uint8_t> bytes);
};

// A signing key pair.
class SchnorrKeyPair {
 public:
  // Generates a fresh key pair.
  static SchnorrKeyPair Generate(Rng& rng);

  // Reconstructs a key pair from a stored secret key.
  static SchnorrKeyPair FromSecret(const Scalar& sk);

  const Scalar& secret() const { return sk_; }
  const RistrettoPoint& public_point() const { return pk_; }
  const CompressedRistretto& public_bytes() const { return pk_bytes_; }

  // Signs `message`. Nonces are hedged: derived from the secret key, the
  // message, and fresh randomness.
  SchnorrSignature Sign(std::span<const uint8_t> message, Rng& rng) const;

 private:
  SchnorrKeyPair(const Scalar& sk, const RistrettoPoint& pk)
      : sk_(sk), pk_(pk), pk_bytes_(pk.Encode()) {}

  Scalar sk_;
  RistrettoPoint pk_;
  CompressedRistretto pk_bytes_;
};

// Verifies `sig` on `message` under the public key encoded by `pk_bytes`.
// Returns a descriptive error Status on failure.
Status SchnorrVerify(const CompressedRistretto& pk_bytes, std::span<const uint8_t> message,
                     const SchnorrSignature& sig);

}  // namespace votegral

#endif  // SRC_CRYPTO_SCHNORR_H_
