// NEON backend for Fe25519X4 (aarch64, where Advanced SIMD is baseline —
// no extra compile flags needed). A 4-lane u64 vector is two uint64x2_t
// halves; the 32x32->64 partial products use VMULL on the narrowed low
// words. Same shared kernel as the portable and AVX2 backends, so limbs
// agree bit for bit across all three.
#if defined(VOTEGRAL_HAVE_NEON)

#include <arm_neon.h>

#include "src/crypto/fe25519_x4_kernels.h"

namespace votegral {
namespace fe_x4_detail {

namespace {

struct NeonVec {
  uint64x2_t lo;
  uint64x2_t hi;

  static NeonVec Load(const uint64_t p[4]) { return NeonVec{vld1q_u64(p), vld1q_u64(p + 2)}; }
  void Store(uint64_t p[4]) const {
    vst1q_u64(p, lo);
    vst1q_u64(p + 2, hi);
  }
  static NeonVec Splat(uint64_t value) { return NeonVec{vdupq_n_u64(value), vdupq_n_u64(value)}; }
  NeonVec operator+(const NeonVec& o) const {
    return NeonVec{vaddq_u64(lo, o.lo), vaddq_u64(hi, o.hi)};
  }
  NeonVec operator-(const NeonVec& o) const {
    return NeonVec{vsubq_u64(lo, o.lo), vsubq_u64(hi, o.hi)};
  }
  static NeonVec Mul32(const NeonVec& a, const NeonVec& b) {
    // Narrow each 64-bit lane to its low 32 bits, then widening-multiply.
    return NeonVec{vmull_u32(vmovn_u64(a.lo), vmovn_u64(b.lo)),
                   vmull_u32(vmovn_u64(a.hi), vmovn_u64(b.hi))};
  }
  NeonVec Shr(int s) const {
    // Intrinsic shift counts must be immediates on some toolchains; the
    // kernel only ever shifts by 26, 25 or the 19*c folding amounts.
    return NeonVec{vshlq_u64(lo, vdupq_n_s64(-s)), vshlq_u64(hi, vdupq_n_s64(-s))};
  }
  NeonVec Shl(int s) const {
    return NeonVec{vshlq_u64(lo, vdupq_n_s64(s)), vshlq_u64(hi, vdupq_n_s64(s))};
  }
  NeonVec AndMask(uint64_t mask) const {
    uint64x2_t m = vdupq_n_u64(mask);
    return NeonVec{vandq_u64(lo, m), vandq_u64(hi, m)};
  }
};

}  // namespace

const FeX4Kernels* NeonKernels() {
  static const FeX4Kernels kNeon = {
      &Kernels<NeonVec>::Mul,
      &Kernels<NeonVec>::Square,
      &Kernels<NeonVec>::Add,
      &Kernels<NeonVec>::Sub,
  };
  return &kNeon;
}

}  // namespace fe_x4_detail
}  // namespace votegral

#endif  // VOTEGRAL_HAVE_NEON
