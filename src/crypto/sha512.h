// SHA-512 (FIPS 180-4), implemented from scratch. The wide (64-byte) output
// feeds uniform scalar derivation (Schnorr nonces/challenges, Fiat–Shamir)
// and ristretto255 hash-to-group.
#ifndef SRC_CRYPTO_SHA512_H_
#define SRC_CRYPTO_SHA512_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace votegral {

// Incremental SHA-512 hasher.
class Sha512 {
 public:
  static constexpr size_t kDigestSize = 64;
  static constexpr size_t kBlockSize = 128;

  Sha512();

  // Absorbs more input.
  Sha512& Update(std::span<const uint8_t> data);

  // Finalizes and returns the digest. The hasher must not be reused after.
  std::array<uint8_t, kDigestSize> Finalize();

  // One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(std::span<const uint8_t> data);

  // One-shot over the concatenation of several parts.
  static std::array<uint8_t, kDigestSize> HashParts(
      std::initializer_list<std::span<const uint8_t>> parts);

 private:
  void Compress(const uint8_t* block);

  std::array<uint64_t, 8> state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffered_ = 0;
  uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

}  // namespace votegral

#endif  // SRC_CRYPTO_SHA512_H_
