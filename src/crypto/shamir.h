// Shamir secret sharing with Feldman verifiability, and t-of-n threshold
// ElGamal decryption built on it.
//
// The base system uses the paper's n-of-n additive authority (all members
// must cooperate; §D.2's privacy adversary compromises up to n-1). This
// module provides the standard t-of-n generalization from the JCJ lineage —
// tolerating unavailable trustees at tally time — as an alternative
// authority backend:
//  * a dealer (or each member, in the additive-of-dealers pattern) splits
//    its secret over a degree-(t-1) polynomial,
//  * Feldman commitments make every share publicly checkable,
//  * decryption combines any t verifiable shares with Lagrange weights.
#ifndef SRC_CRYPTO_SHAMIR_H_
#define SRC_CRYPTO_SHAMIR_H_

#include <vector>

#include "src/common/outcome.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/dleq.h"
#include "src/crypto/elgamal.h"

namespace votegral {

// One participant's share of a secret (1-based evaluation points).
struct ShamirShare {
  size_t index = 0;  // x-coordinate, in [1, n]
  Scalar value;      // f(index)
};

// Feldman commitments to the sharing polynomial: C_j = a_j * B.
using FeldmanCommitments = std::vector<RistrettoPoint>;

// Splits `secret` into n shares with reconstruction threshold t; also
// returns the Feldman commitments (C_0 commits to the secret itself).
std::vector<ShamirShare> ShamirSplit(const Scalar& secret, size_t threshold, size_t n,
                                     Rng& rng, FeldmanCommitments* commitments);

// Verifies one share against the commitments: f(i)*B == sum_j i^j * C_j.
Status VerifyShamirShare(const ShamirShare& share, const FeldmanCommitments& commitments);

// Evaluates the committed polynomial in the exponent at x:
// sum_j x^j * C_j = f(x) * B. Public: anyone holding the commitments can
// derive any participant's share commitment (the dealerless DKG and the
// universal verifier both use this to check shares of excluded-authority
// subsets).
RistrettoPoint EvalFeldman(const FeldmanCommitments& commitments, size_t x);

// Lagrange coefficient λ_i(0) for interpolating f(0) from the given
// x-coordinates. `indices` must be distinct and contain `index`.
Scalar LagrangeAtZero(const std::vector<size_t>& indices, size_t index);

// Reconstructs the secret from any >= t distinct shares.
Scalar ShamirReconstruct(std::span<const ShamirShare> shares);

// ---------------------------------------------------------------------------
// Threshold ElGamal authority
// ---------------------------------------------------------------------------

// A partial decryption by one trustee, verifiable against its Feldman-derived
// share commitment.
struct ThresholdDecryptionShare {
  size_t index = 0;        // trustee x-coordinate
  RistrettoPoint partial;  // s_i * C1
  DleqTranscript proof;    // DLEQ((B, s_i*B), (C1, partial))
};

// Dealer-based t-of-n ElGamal authority (the dealerless variant composes n
// of these additively; tests exercise that composition too).
class ThresholdAuthority {
 public:
  static ThresholdAuthority Create(size_t threshold, size_t n, Rng& rng);

  const RistrettoPoint& public_key() const { return public_key_; }
  size_t threshold() const { return threshold_; }
  size_t size() const { return shares_.size(); }
  const FeldmanCommitments& commitments() const { return commitments_; }

  // Trustee `index` (1-based) produces its verifiable partial decryption.
  ThresholdDecryptionShare ComputeShare(size_t index, const ElGamalCiphertext& ct,
                                        Rng& rng) const;

  // Public verification of a partial decryption.
  Status VerifyShare(const ElGamalCiphertext& ct,
                     const ThresholdDecryptionShare& share) const;

  // Combines any >= threshold verified shares: M = C2 - sum λ_i * partial_i.
  Outcome<RistrettoPoint> Combine(const ElGamalCiphertext& ct,
                                  std::span<const ThresholdDecryptionShare> shares) const;

  // The share commitment s_i * B derived publicly from the Feldman vector.
  RistrettoPoint ShareCommitment(size_t index) const;

 private:
  size_t threshold_ = 0;
  std::vector<ShamirShare> shares_;
  FeldmanCommitments commitments_;
  RistrettoPoint public_key_;
};

}  // namespace votegral

#endif  // SRC_CRYPTO_SHAMIR_H_
