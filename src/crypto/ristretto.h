// ristretto255 (RFC 9496): a prime-order group built on edwards25519,
// implemented from scratch on top of src/crypto/fe25519.
//
// Votegral/TRIP needs a prime-order group with canonical encodings for
// ElGamal credentials, Schnorr signatures, Chaum–Pedersen proofs and
// deterministic tagging; ristretto removes the cofactor pitfalls of raw
// edwards25519 that a from-scratch protocol stack would otherwise have to
// handle case by case.
//
// Internal representation: extended Edwards coordinates (X:Y:Z:T) with
// x = X/Z, y = Y/Z, x*y = T/Z on the a=-1 twisted Edwards curve.
#ifndef SRC_CRYPTO_RISTRETTO_H_
#define SRC_CRYPTO_RISTRETTO_H_

#include <array>
#include <optional>
#include <span>
#include <string_view>

#include "src/crypto/fe25519.h"
#include "src/crypto/scalar.h"

namespace votegral {

// An element of the ristretto255 group.
class RistrettoPoint {
 public:
  // The identity element.
  RistrettoPoint();

  static RistrettoPoint Identity() { return RistrettoPoint(); }

  // The canonical generator (the edwards25519 basepoint's coset).
  static const RistrettoPoint& Base();

  // Decodes a canonical 32-byte encoding; rejects non-canonical field
  // encodings, negative s, and off-curve inputs (RFC 9496 §4.3.1).
  static std::optional<RistrettoPoint> Decode(std::span<const uint8_t> bytes32);

  // Canonical 32-byte encoding (RFC 9496 §4.3.2).
  std::array<uint8_t, 32> Encode() const;

  // Canonical encoding of Base(), computed once at startup. The wire-byte
  // DLEQ layer (src/crypto/dleq.h) hashes this constant instead of paying a
  // fresh inverse square root for the generator in every statement.
  static const std::array<uint8_t, 32>& BaseWire();

  // Maps 64 uniform bytes to a group element (two Elligator evaluations,
  // RFC 9496 §4.3.4). The basis of HashToGroup.
  static RistrettoPoint FromUniformBytes(std::span<const uint8_t> bytes64);

  // Domain-separated hash-to-group via SHA-512.
  static RistrettoPoint HashToGroup(std::string_view domain, std::span<const uint8_t> data);

  // Four independent additions in lock-step: out[k] = a[k] + b[k]. Same
  // complete add-2008-hwcd-3 formula as operator+, so the resulting group
  // elements are equal (the internal projective representative may differ,
  // which no encoding or comparison can observe). This is the MSM engine's
  // bucket-accumulation and table-build primitive; out may alias a or b.
  //
  // Whether the four additions run through the 4-way field kernels
  // (src/crypto/fe25519_x4.h) or as four scalar additions is decided once
  // per process by a ~100 µs micro-calibration: the X4 route trades 32
  // radix-51 multiplications for 8 X4 multiplications plus 12 layout
  // conversions, which wins on NEON-class cores but loses on wide-mulx
  // x86-64 where a radix-51 multiply already saturates the multiplier.
  // `VOTEGRAL_X4_POINTS=on|off` overrides the measurement. The choice can
  // never reach a transcript — both routes compute the same residues mod p.
  static void AddX4(const RistrettoPoint* a, const RistrettoPoint* b, RistrettoPoint* out);

  // Test hook pinning AddX4's route: 1 = force X4 kernels, 0 = force scalar
  // additions, -1 = auto (calibrate). Returns the previous mode. Not
  // thread-safe against concurrent AddX4 calls.
  static int SetAddX4ModeForTest(int mode);

  // Group operations.
  RistrettoPoint operator+(const RistrettoPoint& other) const;
  RistrettoPoint operator-(const RistrettoPoint& other) const;
  RistrettoPoint operator-() const;
  RistrettoPoint Double() const;

  // Variable-base scalar multiplication (4-bit window).
  friend RistrettoPoint operator*(const Scalar& s, const RistrettoPoint& p);

  // Fixed-base scalar multiplication s*B using a precomputed radix-16 table
  // (~16x faster than the variable-base path; an ablation bench quantifies
  // this, see bench/ablation_design_choices).
  static RistrettoPoint MulBase(const Scalar& s);

  // Fixed-base multiplication without the precomputed table (ablation only).
  static RistrettoPoint MulBaseSlow(const Scalar& s);

  // a*P + b*Base, the Schnorr verification workhorse. Implemented on the MSM
  // engine (src/crypto/msm.h): one shared-doubling wNAF ladder with a
  // precomputed width-8 NAF table for the fixed base. Variable-time; only
  // ever applied to public verification data.
  static RistrettoPoint DoubleScalarMulBase(const Scalar& a, const RistrettoPoint& p,
                                            const Scalar& b);

  // Ristretto equality (coset-aware; does not require encoding).
  bool operator==(const RistrettoPoint& other) const;
  bool operator!=(const RistrettoPoint& other) const { return !(*this == other); }

  bool IsIdentity() const { return *this == RistrettoPoint(); }

 private:
  RistrettoPoint(const Fe25519& x, const Fe25519& y, const Fe25519& z, const Fe25519& t)
      : x_(x), y_(y), z_(z), t_(t) {}

  // One Elligator 2 evaluation (MAP of RFC 9496 §4.3.4).
  static RistrettoPoint ElligatorMap(const Fe25519& t);

  // AddX4's 4-way-kernel route, taken unconditionally (no calibration).
  static void AddX4Kernels(const RistrettoPoint* a, const RistrettoPoint* b,
                           RistrettoPoint* out);

  // Encode() split around its inverse square root: Prepare returns the
  // invsqrt input u1*u2^2 (writing u1, u2), Finish runs the closing
  // arithmetic once the root is known. EncodeX4 drives four lanes through
  // FeInvSqrtX4 between the two halves; outputs are byte-identical to four
  // scalar Encode() calls because the X4 root is bit-identical.
  Fe25519 EncodePrepare(Fe25519& u1, Fe25519& u2) const;
  std::array<uint8_t, 32> EncodeFinish(const Fe25519& u1, const Fe25519& u2,
                                       const Fe25519& inv_root) const;
  static void EncodeX4(const RistrettoPoint* points, std::array<uint8_t, 32>* out);

  // Decode() split the same way. Prepare performs the pre-root rejections
  // (length, canonicality, negative s) and derives the invsqrt input; Finish
  // applies the root and the post-root rejections. DecodeX4 substitutes a
  // benign input for lanes Prepare already rejected so the other lanes still
  // share the vectorized exponentiation.
  static bool DecodePrepare(std::span<const uint8_t> bytes32, Fe25519& s, Fe25519& u1,
                            Fe25519& u2, Fe25519& v, Fe25519& input);
  static std::optional<RistrettoPoint> DecodeFinish(const Fe25519& s, const Fe25519& u1,
                                                    const Fe25519& u2, const Fe25519& v,
                                                    const SqrtRatioResult& inv);
  static size_t DecodeX4(const std::array<uint8_t, 32>* bytes, RistrettoPoint* out,
                         uint8_t* ok);

  friend void BatchEncodePoints(std::span<const RistrettoPoint> points,
                                std::span<std::array<uint8_t, 32>> out);
  friend size_t BatchDecodePoints(std::span<const std::array<uint8_t, 32>> bytes,
                                  std::span<RistrettoPoint> out, std::span<uint8_t> ok);
  friend size_t BatchValidateEncodings(std::span<const RistrettoPoint> points,
                                       std::span<const std::array<uint8_t, 32>> bytes,
                                       std::span<uint8_t> ok);

  Fe25519 x_;
  Fe25519 y_;
  Fe25519 z_;
  Fe25519 t_;
};

// Convenience alias used by protocol signatures.
using CompressedRistretto = std::array<uint8_t, 32>;

// --- Batched canonical encode/decode ---------------------------------------
//
// Both routines fan fixed-position shards out on Executor::Current() (the
// pool bound by the enclosing protocol stage; serial under threads=1) and
// run four elements at a time through the 4-way field backend
// (src/crypto/fe25519_x4.h): the dominant cost — the ~250-squaring
// inverse-square-root exponentiation — proceeds in lock-step across four
// lanes, with per-element heads and tails kept scalar. The individual
// inverse-square roots remain per-point — a Montgomery-style shared tree
// recovers only the product of the roots, never the individual canonical
// roots, and any "validation" built naively on a shared tree would accept
// the encoding of -P for P (re-opening the challenge-grinding attack
// wire-cache validation exists to stop; see docs/TRANSCRIPTS.md). The X4
// root is bit-identical to FeInvSqrt per lane, so batched outputs are
// byte-identical to element-wise Encode()/Decode() regardless of backend.

// out[i] = points[i].Encode(). out.size() must equal points.size().
void BatchEncodePoints(std::span<const RistrettoPoint> points,
                       std::span<CompressedRistretto> out);

// Decodes bytes[i] into out[i]; ok[i] = 1 on success, 0 on any rejection
// (non-canonical field encoding, negative s, off-curve input). Returns the
// number of failures. All spans must have equal sizes.
size_t BatchDecodePoints(std::span<const CompressedRistretto> bytes,
                         std::span<RistrettoPoint> out, std::span<uint8_t> ok);

// Checks bytes[i] == points[i].Encode() without computing any inverse square
// roots: one Montgomery-batched field inversion per shard recovers affine
// coordinates, then each element costs ~8 field multiplications. Sound and
// complete: ok[i] = 1 exactly when bytes[i] is the canonical encoding of
// points[i] — unlike a naive shared-root scheme this can never accept the
// encoding of -P, because the claimed s is checked against the unique
// canonical coset representative (selected by the same rotation/sign rules
// Encode applies) and s^2 = (1-y)/(1+y) has a unique non-negative root.
// Identity-coset points (affine x or y zero) compare against the all-zero
// encoding directly. Returns the number of failures; this is the verify-side
// workhorse for wire-cache validation (mixnet hashing, DLEQ commit caches).
size_t BatchValidateEncodings(std::span<const RistrettoPoint> points,
                              std::span<const CompressedRistretto> bytes,
                              std::span<uint8_t> ok);

// Process-wide Encode()/Decode() invocation counters (relaxed atomics) — the
// group-layer analogue of MerkleCommitmentTree::hash_invocations(). Tests
// assert "challenge derivation is SHA-only" as a zero Encode delta across a
// verification call instead of trusting comments; benches report the deltas
// as evidence next to wall-clock numbers.
uint64_t RistrettoEncodeInvocations();
uint64_t RistrettoDecodeInvocations();

}  // namespace votegral

#endif  // SRC_CRYPTO_RISTRETTO_H_
