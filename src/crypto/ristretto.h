// ristretto255 (RFC 9496): a prime-order group built on edwards25519,
// implemented from scratch on top of src/crypto/fe25519.
//
// Votegral/TRIP needs a prime-order group with canonical encodings for
// ElGamal credentials, Schnorr signatures, Chaum–Pedersen proofs and
// deterministic tagging; ristretto removes the cofactor pitfalls of raw
// edwards25519 that a from-scratch protocol stack would otherwise have to
// handle case by case.
//
// Internal representation: extended Edwards coordinates (X:Y:Z:T) with
// x = X/Z, y = Y/Z, x*y = T/Z on the a=-1 twisted Edwards curve.
#ifndef SRC_CRYPTO_RISTRETTO_H_
#define SRC_CRYPTO_RISTRETTO_H_

#include <array>
#include <optional>
#include <span>
#include <string_view>

#include "src/crypto/fe25519.h"
#include "src/crypto/scalar.h"

namespace votegral {

// An element of the ristretto255 group.
class RistrettoPoint {
 public:
  // The identity element.
  RistrettoPoint();

  static RistrettoPoint Identity() { return RistrettoPoint(); }

  // The canonical generator (the edwards25519 basepoint's coset).
  static const RistrettoPoint& Base();

  // Decodes a canonical 32-byte encoding; rejects non-canonical field
  // encodings, negative s, and off-curve inputs (RFC 9496 §4.3.1).
  static std::optional<RistrettoPoint> Decode(std::span<const uint8_t> bytes32);

  // Canonical 32-byte encoding (RFC 9496 §4.3.2).
  std::array<uint8_t, 32> Encode() const;

  // Canonical encoding of Base(), computed once at startup. The wire-byte
  // DLEQ layer (src/crypto/dleq.h) hashes this constant instead of paying a
  // fresh inverse square root for the generator in every statement.
  static const std::array<uint8_t, 32>& BaseWire();

  // Maps 64 uniform bytes to a group element (two Elligator evaluations,
  // RFC 9496 §4.3.4). The basis of HashToGroup.
  static RistrettoPoint FromUniformBytes(std::span<const uint8_t> bytes64);

  // Domain-separated hash-to-group via SHA-512.
  static RistrettoPoint HashToGroup(std::string_view domain, std::span<const uint8_t> data);

  // Group operations.
  RistrettoPoint operator+(const RistrettoPoint& other) const;
  RistrettoPoint operator-(const RistrettoPoint& other) const;
  RistrettoPoint operator-() const;
  RistrettoPoint Double() const;

  // Variable-base scalar multiplication (4-bit window).
  friend RistrettoPoint operator*(const Scalar& s, const RistrettoPoint& p);

  // Fixed-base scalar multiplication s*B using a precomputed radix-16 table
  // (~16x faster than the variable-base path; an ablation bench quantifies
  // this, see bench/ablation_design_choices).
  static RistrettoPoint MulBase(const Scalar& s);

  // Fixed-base multiplication without the precomputed table (ablation only).
  static RistrettoPoint MulBaseSlow(const Scalar& s);

  // a*P + b*Base, the Schnorr verification workhorse. Implemented on the MSM
  // engine (src/crypto/msm.h): one shared-doubling wNAF ladder with a
  // precomputed width-8 NAF table for the fixed base. Variable-time; only
  // ever applied to public verification data.
  static RistrettoPoint DoubleScalarMulBase(const Scalar& a, const RistrettoPoint& p,
                                            const Scalar& b);

  // Ristretto equality (coset-aware; does not require encoding).
  bool operator==(const RistrettoPoint& other) const;
  bool operator!=(const RistrettoPoint& other) const { return !(*this == other); }

  bool IsIdentity() const { return *this == RistrettoPoint(); }

 private:
  RistrettoPoint(const Fe25519& x, const Fe25519& y, const Fe25519& z, const Fe25519& t)
      : x_(x), y_(y), z_(z), t_(t) {}

  // One Elligator 2 evaluation (MAP of RFC 9496 §4.3.4).
  static RistrettoPoint ElligatorMap(const Fe25519& t);

  Fe25519 x_;
  Fe25519 y_;
  Fe25519 z_;
  Fe25519 t_;
};

// Convenience alias used by protocol signatures.
using CompressedRistretto = std::array<uint8_t, 32>;

// --- Batched canonical encode/decode ---------------------------------------
//
// Both routines fan fixed-position shards out on Executor::Current() (the
// pool bound by the enclosing protocol stage; serial under threads=1) and run
// the specialized FeInvSqrt core per element. The inverse-square-root
// exponentiation itself is inherently per-point — a Montgomery-style shared
// tree recovers only the product of the roots, never the individual canonical
// roots, and any "validation" built on a shared tree would accept the
// encoding of -P for P (re-opening the challenge-grinding attack wire-cache
// validation exists to stop; see docs/TRANSCRIPTS.md). The batched API
// therefore amortizes scheduling and scaffolding, and the higher layers
// amortize the roots themselves by caching encodings (src/crypto/dleq.h).

// out[i] = points[i].Encode(). out.size() must equal points.size().
void BatchEncodePoints(std::span<const RistrettoPoint> points,
                       std::span<CompressedRistretto> out);

// Decodes bytes[i] into out[i]; ok[i] = 1 on success, 0 on any rejection
// (non-canonical field encoding, negative s, off-curve input). Returns the
// number of failures. All spans must have equal sizes.
size_t BatchDecodePoints(std::span<const CompressedRistretto> bytes,
                         std::span<RistrettoPoint> out, std::span<uint8_t> ok);

// Process-wide Encode()/Decode() invocation counters (relaxed atomics) — the
// group-layer analogue of MerkleCommitmentTree::hash_invocations(). Tests
// assert "challenge derivation is SHA-only" as a zero Encode delta across a
// verification call instead of trusting comments; benches report the deltas
// as evidence next to wall-clock numbers.
uint64_t RistrettoEncodeInvocations();
uint64_t RistrettoDecodeInvocations();

}  // namespace votegral

#endif  // SRC_CRYPTO_RISTRETTO_H_
