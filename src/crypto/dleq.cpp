#include "src/crypto/dleq.h"

#include <string>

#include "src/common/bytes.h"
#include "src/common/serde.h"
#include "src/crypto/sha512.h"

namespace votegral {

namespace {

// Hashes one statement/commit section: the cached bytes when the cache is
// complete, a fresh canonical encoding otherwise. Both paths feed the hash
// the exact same byte stream — the cache invariant wire[i] == Encode(p[i]) —
// so proofs do not depend on which path ran.
void HashSection(Sha512& h, std::span<const RistrettoPoint> points,
                 std::span<const CompressedRistretto> wire) {
  if (wire.size() == points.size()) {
    for (const CompressedRistretto& bytes : wire) {
      h.Update(bytes);
    }
    return;
  }
  for (const RistrettoPoint& point : points) {
    h.Update(point.Encode());
  }
}

// Decode-and-recompare of one cache section (the PR 2 MixItem rule): the
// bytes are parsed back into a group element and compared coset-aware
// against the claimed point, so a byte string can never bind challenge bits
// for a point it does not encode.
Status ValidateSection(std::span<const RistrettoPoint> points,
                       std::span<const CompressedRistretto> wire, const char* what) {
  if (wire.empty()) {
    return Status::Ok();
  }
  if (wire.size() != points.size()) {
    return Status::Error(std::string("dleq: ") + what + " wire cache size mismatch");
  }
  for (size_t i = 0; i < wire.size(); ++i) {
    auto decoded = RistrettoPoint::Decode(wire[i]);
    if (!decoded.has_value() || !(*decoded == points[i])) {
      return Status::Error(std::string("dleq: ") + what +
                           " wire cache does not match point at index " + std::to_string(i));
    }
  }
  return Status::Ok();
}

}  // namespace

DleqStatement DleqStatement::MakePair(const RistrettoPoint& g1, const RistrettoPoint& p1,
                                      const RistrettoPoint& g2, const RistrettoPoint& p2) {
  DleqStatement s;
  s.bases = {g1, g2};
  s.publics = {p1, p2};
  return s;
}

DleqStatement DleqStatement::MakePairWire(
    const RistrettoPoint& g1, const CompressedRistretto& g1_wire, const RistrettoPoint& p1,
    const CompressedRistretto& p1_wire, const RistrettoPoint& g2,
    const CompressedRistretto& g2_wire, const RistrettoPoint& p2,
    const CompressedRistretto& p2_wire) {
  DleqStatement s;
  s.bases = {g1, g2};
  s.publics = {p1, p2};
  s.base_wire = {g1_wire, g2_wire};
  s.public_wire = {p1_wire, p2_wire};
  return s;
}

void DleqStatement::EnsureWire() {
  if (base_wire.size() != bases.size()) {
    base_wire.resize(bases.size());
    BatchEncodePoints(bases, base_wire);
  }
  if (public_wire.size() != publics.size()) {
    public_wire.resize(publics.size());
    BatchEncodePoints(publics, public_wire);
  }
}

Status DleqStatement::ValidateWire() const {
  if (Status s = ValidateSection(bases, base_wire, "base"); !s.ok()) {
    return s;
  }
  return ValidateSection(publics, public_wire, "public");
}

void DleqTranscript::EnsureWire() {
  if (commit_wire.size() != commits.size()) {
    commit_wire.resize(commits.size());
    BatchEncodePoints(commits, commit_wire);
  }
}

Status DleqTranscript::ValidateWire() const {
  return ValidateSection(commits, commit_wire, "commit");
}

Bytes DleqTranscript::Serialize() const {
  // Byte-identical with or without the cache: wire[i] == commits[i].Encode()
  // is the producer invariant, so the cache only spares the inverse sqrt.
  const bool cached = commit_wire.size() == commits.size();
  ByteWriter w;
  w.U32(static_cast<uint32_t>(commits.size()));
  for (size_t i = 0; i < commits.size(); ++i) {
    w.Fixed(cached ? commit_wire[i] : commits[i].Encode());
  }
  w.Fixed(challenge.ToBytes());
  w.Fixed(response.ToBytes());
  return w.Take();
}

std::optional<DleqTranscript> DleqTranscript::Parse(std::span<const uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    uint32_t n = r.U32();
    if (n > 1024) {
      return std::nullopt;
    }
    DleqTranscript t;
    t.commits.reserve(n);
    t.commit_wire.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Bytes raw = r.Fixed(32);
      auto point = RistrettoPoint::Decode(raw);
      if (!point.has_value()) {
        return std::nullopt;
      }
      t.commits.push_back(*point);
      // Decode accepts only canonical encodings, so the consumed bytes ARE
      // the commit's unique wire form — retain them as the cache.
      CompressedRistretto wire;
      std::copy(raw.begin(), raw.end(), wire.begin());
      t.commit_wire.push_back(wire);
    }
    auto challenge = Scalar::FromCanonicalBytes(r.Fixed(32));
    auto response = Scalar::FromCanonicalBytes(r.Fixed(32));
    r.ExpectEnd();
    if (!challenge.has_value() || !response.has_value()) {
      return std::nullopt;
    }
    t.challenge = *challenge;
    t.response = *response;
    return t;
  } catch (const ProtocolError&) {
    return std::nullopt;
  }
}

DleqProver::DleqProver(DleqStatement statement, const Scalar& x, Rng& rng)
    : statement_(std::move(statement)), x_(x), y_(Scalar::Random(rng)) {
  Require(statement_.bases.size() == statement_.publics.size() && !statement_.bases.empty(),
          "DleqProver: malformed statement");
  commits_.reserve(statement_.bases.size());
  commit_wire_.reserve(statement_.bases.size());
  for (const auto& base : statement_.bases) {
    commits_.push_back(y_ * base);
    commit_wire_.push_back(commits_.back().Encode());
  }
}

DleqTranscript DleqProver::Respond(const Scalar& challenge) const {
  DleqTranscript t;
  t.commits = commits_;
  t.commit_wire = commit_wire_;
  t.challenge = challenge;
  t.response = y_ - challenge * x_;
  return t;
}

DleqTranscript SimulateDleq(const DleqStatement& statement, const Scalar& challenge, Rng& rng) {
  Require(statement.bases.size() == statement.publics.size() && !statement.bases.empty(),
          "SimulateDleq: malformed statement");
  DleqTranscript t;
  t.challenge = challenge;
  t.response = Scalar::Random(rng);
  t.commits.reserve(statement.bases.size());
  t.commit_wire.reserve(statement.bases.size());
  for (size_t i = 0; i < statement.bases.size(); ++i) {
    // Y_i = r*G_i + e*P_i makes the verification equation hold by
    // construction — without any witness.
    t.commits.push_back(t.response * statement.bases[i] + challenge * statement.publics[i]);
    t.commit_wire.push_back(t.commits.back().Encode());
  }
  return t;
}

Status VerifyDleqTranscript(const DleqStatement& statement, const DleqTranscript& transcript) {
  if (statement.bases.size() != statement.publics.size() || statement.bases.empty()) {
    return Status::Error("dleq: malformed statement");
  }
  if (transcript.commits.size() != statement.bases.size()) {
    return Status::Error("dleq: commit count mismatch");
  }
  for (size_t i = 0; i < statement.bases.size(); ++i) {
    RistrettoPoint expected =
        transcript.response * statement.bases[i] + transcript.challenge * statement.publics[i];
    if (!(expected == transcript.commits[i])) {
      return Status::Error("dleq: verification equation failed");
    }
  }
  return Status::Ok();
}

Scalar DeriveFsChallenge(std::string_view domain, const DleqStatement& statement,
                         std::span<const RistrettoPoint> commits,
                         std::span<const uint8_t> extra) {
  return DeriveFsChallenge(domain, statement, commits, {}, extra);
}

Scalar DeriveFsChallenge(std::string_view domain, const DleqStatement& statement,
                         std::span<const RistrettoPoint> commits,
                         std::span<const CompressedRistretto> commit_wire,
                         std::span<const uint8_t> extra) {
  Sha512 h;
  h.Update(AsBytes(domain));
  uint8_t sep = 0;
  h.Update({&sep, 1});
  HashSection(h, statement.bases, statement.base_wire);
  HashSection(h, statement.publics, statement.public_wire);
  HashSection(h, commits, commit_wire);
  h.Update(extra);
  return Scalar::FromBytesWide(h.Finalize());
}

DleqTranscript ProveDleqFs(std::string_view domain, const DleqStatement& statement,
                           const Scalar& x, Rng& rng, std::span<const uint8_t> extra) {
  DleqProver prover(statement, x, rng);
  Scalar challenge =
      DeriveFsChallenge(domain, statement, prover.commits(), prover.commit_wire(), extra);
  return prover.Respond(challenge);
}

Status VerifyDleqFs(std::string_view domain, const DleqStatement& statement,
                    const DleqTranscript& transcript, std::span<const uint8_t> extra) {
  // Attacker-cache rule: commit bytes may bind challenge bits only after
  // they decode back to the claimed commit points.
  if (Status s = transcript.ValidateWire(); !s.ok()) {
    return s;
  }
  Scalar expected = DeriveFsChallenge(domain, statement, transcript.commits,
                                      transcript.commit_wire, extra);
  if (expected != transcript.challenge) {
    return Status::Error("dleq-fs: challenge mismatch");
  }
  return VerifyDleqTranscript(statement, transcript);
}

}  // namespace votegral
