#include "src/crypto/dleq.h"

#include "src/common/bytes.h"
#include "src/common/serde.h"
#include "src/crypto/sha512.h"

namespace votegral {

DleqStatement DleqStatement::MakePair(const RistrettoPoint& g1, const RistrettoPoint& p1,
                                      const RistrettoPoint& g2, const RistrettoPoint& p2) {
  DleqStatement s;
  s.bases = {g1, g2};
  s.publics = {p1, p2};
  return s;
}

Bytes DleqTranscript::Serialize() const {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(commits.size()));
  for (const auto& c : commits) {
    w.Fixed(c.Encode());
  }
  w.Fixed(challenge.ToBytes());
  w.Fixed(response.ToBytes());
  return w.Take();
}

std::optional<DleqTranscript> DleqTranscript::Parse(std::span<const uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    uint32_t n = r.U32();
    if (n > 1024) {
      return std::nullopt;
    }
    DleqTranscript t;
    t.commits.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      auto point = RistrettoPoint::Decode(r.Fixed(32));
      if (!point.has_value()) {
        return std::nullopt;
      }
      t.commits.push_back(*point);
    }
    auto challenge = Scalar::FromCanonicalBytes(r.Fixed(32));
    auto response = Scalar::FromCanonicalBytes(r.Fixed(32));
    r.ExpectEnd();
    if (!challenge.has_value() || !response.has_value()) {
      return std::nullopt;
    }
    t.challenge = *challenge;
    t.response = *response;
    return t;
  } catch (const ProtocolError&) {
    return std::nullopt;
  }
}

DleqProver::DleqProver(DleqStatement statement, const Scalar& x, Rng& rng)
    : statement_(std::move(statement)), x_(x), y_(Scalar::Random(rng)) {
  Require(statement_.bases.size() == statement_.publics.size() && !statement_.bases.empty(),
          "DleqProver: malformed statement");
  commits_.reserve(statement_.bases.size());
  for (const auto& base : statement_.bases) {
    commits_.push_back(y_ * base);
  }
}

DleqTranscript DleqProver::Respond(const Scalar& challenge) const {
  DleqTranscript t;
  t.commits = commits_;
  t.challenge = challenge;
  t.response = y_ - challenge * x_;
  return t;
}

DleqTranscript SimulateDleq(const DleqStatement& statement, const Scalar& challenge, Rng& rng) {
  Require(statement.bases.size() == statement.publics.size() && !statement.bases.empty(),
          "SimulateDleq: malformed statement");
  DleqTranscript t;
  t.challenge = challenge;
  t.response = Scalar::Random(rng);
  t.commits.reserve(statement.bases.size());
  for (size_t i = 0; i < statement.bases.size(); ++i) {
    // Y_i = r*G_i + e*P_i makes the verification equation hold by
    // construction — without any witness.
    t.commits.push_back(t.response * statement.bases[i] + challenge * statement.publics[i]);
  }
  return t;
}

Status VerifyDleqTranscript(const DleqStatement& statement, const DleqTranscript& transcript) {
  if (statement.bases.size() != statement.publics.size() || statement.bases.empty()) {
    return Status::Error("dleq: malformed statement");
  }
  if (transcript.commits.size() != statement.bases.size()) {
    return Status::Error("dleq: commit count mismatch");
  }
  for (size_t i = 0; i < statement.bases.size(); ++i) {
    RistrettoPoint expected =
        transcript.response * statement.bases[i] + transcript.challenge * statement.publics[i];
    if (!(expected == transcript.commits[i])) {
      return Status::Error("dleq: verification equation failed");
    }
  }
  return Status::Ok();
}

Scalar DeriveFsChallenge(std::string_view domain, const DleqStatement& statement,
                         std::span<const RistrettoPoint> commits,
                         std::span<const uint8_t> extra) {
  Sha512 h;
  h.Update(AsBytes(domain));
  uint8_t sep = 0;
  h.Update({&sep, 1});
  for (const auto& base : statement.bases) {
    h.Update(base.Encode());
  }
  for (const auto& pub : statement.publics) {
    h.Update(pub.Encode());
  }
  for (const auto& commit : commits) {
    h.Update(commit.Encode());
  }
  h.Update(extra);
  return Scalar::FromBytesWide(h.Finalize());
}

DleqTranscript ProveDleqFs(std::string_view domain, const DleqStatement& statement,
                           const Scalar& x, Rng& rng, std::span<const uint8_t> extra) {
  DleqProver prover(statement, x, rng);
  Scalar challenge = DeriveFsChallenge(domain, statement, prover.commits(), extra);
  return prover.Respond(challenge);
}

Status VerifyDleqFs(std::string_view domain, const DleqStatement& statement,
                    const DleqTranscript& transcript, std::span<const uint8_t> extra) {
  Scalar expected = DeriveFsChallenge(domain, statement, transcript.commits, extra);
  if (expected != transcript.challenge) {
    return Status::Error("dleq-fs: challenge mismatch");
  }
  return VerifyDleqTranscript(statement, transcript);
}

}  // namespace votegral
