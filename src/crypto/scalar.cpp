#include "src/crypto/scalar.h"

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace votegral {

namespace {

using u128 = unsigned __int128;

// ℓ = 2^252 + 27742317777372353535851937790883648493, little-endian limbs.
constexpr std::array<uint64_t, 4> kL = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL,
                                        0x0000000000000000ULL, 0x1000000000000000ULL};

// ℓ - 2, the inversion exponent.
constexpr std::array<uint64_t, 4> kLMinus2 = {0x5812631a5cf5d3ebULL, 0x14def9dea2f79cd6ULL,
                                              0x0000000000000000ULL, 0x1000000000000000ULL};

// Compares two 4-limb values; returns -1, 0, or 1.
int Compare4(const std::array<uint64_t, 4>& a, const std::array<uint64_t, 4>& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[static_cast<size_t>(i)] != b[static_cast<size_t>(i)]) {
      return a[static_cast<size_t>(i)] < b[static_cast<size_t>(i)] ? -1 : 1;
    }
  }
  return 0;
}

// ℓ widened to 5 limbs for the Barrett remainder arithmetic.
constexpr std::array<uint64_t, 5> kL5 = {kL[0], kL[1], kL[2], kL[3], 0};

int Compare5(const std::array<uint64_t, 5>& a, const std::array<uint64_t, 5>& b) {
  for (int i = 4; i >= 0; --i) {
    if (a[static_cast<size_t>(i)] != b[static_cast<size_t>(i)]) {
      return a[static_cast<size_t>(i)] < b[static_cast<size_t>(i)] ? -1 : 1;
    }
  }
  return 0;
}

// a -= b over 5 limbs (wrapping; callers ensure or exploit the wrap).
void SubWrap5(std::array<uint64_t, 5>& a, const std::array<uint64_t, 5>& b) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < 5; ++i) {
    u128 d = (u128)a[i] - b[i] - borrow;
    a[i] = (uint64_t)d;
    borrow = (uint64_t)(d >> 64) & 1;
  }
}

// Barrett reduction constant μ = floor(2^512 / ℓ), a 261-bit value. Derived
// at startup by binary long division (same ethos as ristretto.cpp: constants
// are computed from first principles, not transcribed).
struct BarrettMu {
  std::array<uint64_t, 5> mu{};

  BarrettMu() {
    std::array<uint64_t, 5> rem{};
    for (int bit = 512; bit >= 0; --bit) {
      // rem = (rem << 1) | numerator_bit; the numerator 2^512 has exactly
      // bit 512 set. rem stays < 2ℓ < 2^254, so the shift never overflows.
      for (int i = 4; i > 0; --i) {
        rem[static_cast<size_t>(i)] =
            (rem[static_cast<size_t>(i)] << 1) | (rem[static_cast<size_t>(i) - 1] >> 63);
      }
      rem[0] = (rem[0] << 1) | (bit == 512 ? 1 : 0);
      if (Compare5(rem, kL5) >= 0) {
        SubWrap5(rem, kL5);
        mu[static_cast<size_t>(bit) / 64] |= uint64_t{1} << (bit % 64);
      }
    }
  }
};

const std::array<uint64_t, 5>& Mu() {
  static const BarrettMu kMu;
  return kMu.mu;
}

// a -= b, returns borrow (a, b are 4-limb).
uint64_t SubBorrow4(std::array<uint64_t, 4>& a, const std::array<uint64_t, 4>& b) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 d = (u128)a[static_cast<size_t>(i)] - b[static_cast<size_t>(i)] - borrow;
    a[static_cast<size_t>(i)] = (uint64_t)d;
    borrow = (uint64_t)(d >> 64) & 1;
  }
  return borrow;
}

// a += b, returns carry.
uint64_t AddCarry4(std::array<uint64_t, 4>& a, const std::array<uint64_t, 4>& b) {
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 s = (u128)a[static_cast<size_t>(i)] + b[static_cast<size_t>(i)] + carry;
    a[static_cast<size_t>(i)] = (uint64_t)s;
    carry = (uint64_t)(s >> 64);
  }
  return carry;
}

}  // namespace

Scalar Scalar::One() { return Scalar(std::array<uint64_t, 4>{1, 0, 0, 0}); }

Scalar Scalar::FromU64(uint64_t v) { return Scalar(std::array<uint64_t, 4>{v, 0, 0, 0}); }

Scalar Scalar::Reduce512(const std::array<uint64_t, 8>& wide) {
  // Barrett reduction (HAC algorithm 14.42 with b = 2^64, k = 4): estimate
  // q ≈ floor(x/ℓ) from the precomputed μ = floor(2^512/ℓ), subtract q·ℓ,
  // and fix up with at most two conditional subtractions. Replaces the
  // seed's 512-iteration shift-and-subtract loop — scalar products sit on
  // the MSM critical path (every batch weight is multiplied by a challenge
  // or response), so reduction cost is no longer micro-irrelevant.
  const std::array<uint64_t, 5>& mu = Mu();

  // q1 = floor(x / 2^192): limbs 3..7 of x.
  std::array<uint64_t, 5> q1;
  for (size_t i = 0; i < 5; ++i) {
    q1[i] = wide[i + 3];
  }

  // q2 = q1 * μ (5×5 limbs → 10 limbs).
  std::array<uint64_t, 10> q2{};
  for (size_t i = 0; i < 5; ++i) {
    u128 carry = 0;
    for (size_t j = 0; j < 5; ++j) {
      u128 t = (u128)q1[i] * mu[j] + q2[i + j] + carry;
      q2[i + j] = (uint64_t)t;
      carry = t >> 64;
    }
    q2[i + 5] = (uint64_t)carry;
  }

  // q3 = floor(q2 / 2^320): limbs 5..9.
  // r2 = q3 * ℓ mod 2^320 (only the low 5 limbs of the product matter).
  std::array<uint64_t, 5> r2{};
  for (size_t i = 0; i < 5; ++i) {
    u128 carry = 0;
    for (size_t j = 0; i + j < 5; ++j) {
      u128 t = (u128)q2[i + 5] * (j < 4 ? kL[j] : 0) + r2[i + j] + carry;
      r2[i + j] = (uint64_t)t;
      carry = t >> 64;
    }
  }

  // r = (x mod 2^320) - r2, wrapping mod 2^320 (the wrap implements the
  // "+ b^(k+1) if negative" step); the true value is < 3ℓ < 2^255.
  std::array<uint64_t, 5> r;
  for (size_t i = 0; i < 5; ++i) {
    r[i] = wide[i];
  }
  SubWrap5(r, r2);

  // At most two corrective subtractions by HAC's bound q ≤ q3 + 2.
  while (Compare5(r, kL5) >= 0) {
    SubWrap5(r, kL5);
  }
  return Scalar({r[0], r[1], r[2], r[3]});
}

Scalar Scalar::FromBytesModL(std::span<const uint8_t> bytes32) {
  Require(bytes32.size() == 32, "Scalar::FromBytesModL: need 32 bytes");
  std::array<uint64_t, 8> wide{};
  for (int i = 0; i < 4; ++i) {
    wide[static_cast<size_t>(i)] = LoadLe64(bytes32.data() + 8 * i);
  }
  return Reduce512(wide);
}

Scalar Scalar::FromBytesWide(std::span<const uint8_t> bytes64) {
  Require(bytes64.size() == 64, "Scalar::FromBytesWide: need 64 bytes");
  std::array<uint64_t, 8> wide{};
  for (int i = 0; i < 8; ++i) {
    wide[static_cast<size_t>(i)] = LoadLe64(bytes64.data() + 8 * i);
  }
  return Reduce512(wide);
}

std::optional<Scalar> Scalar::FromCanonicalBytes(std::span<const uint8_t> bytes32) {
  if (bytes32.size() != 32) {
    return std::nullopt;
  }
  std::array<uint64_t, 4> limbs;
  for (int i = 0; i < 4; ++i) {
    limbs[static_cast<size_t>(i)] = LoadLe64(bytes32.data() + 8 * i);
  }
  if (Compare4(limbs, kL) >= 0) {
    return std::nullopt;
  }
  return Scalar(limbs);
}

Scalar Scalar::Random(Rng& rng) {
  Bytes wide = rng.RandomBytes(64);
  return FromBytesWide(wide);
}

std::array<uint8_t, 32> Scalar::ToBytes() const {
  std::array<uint8_t, 32> out;
  for (int i = 0; i < 4; ++i) {
    StoreLe64(out.data() + 8 * i, limb_[static_cast<size_t>(i)]);
  }
  return out;
}

Scalar Scalar::operator+(const Scalar& other) const {
  std::array<uint64_t, 4> r = limb_;
  uint64_t carry = AddCarry4(r, other.limb_);
  if (carry != 0 || Compare4(r, kL) >= 0) {
    SubBorrow4(r, kL);
  }
  return Scalar(r);
}

Scalar Scalar::operator-(const Scalar& other) const {
  std::array<uint64_t, 4> r = limb_;
  uint64_t borrow = SubBorrow4(r, other.limb_);
  if (borrow != 0) {
    AddCarry4(r, kL);
  }
  return Scalar(r);
}

Scalar Scalar::operator*(const Scalar& other) const {
  std::array<uint64_t, 8> wide{};
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 t = (u128)limb_[static_cast<size_t>(i)] * other.limb_[static_cast<size_t>(j)] +
               wide[static_cast<size_t>(i + j)] + carry;
      wide[static_cast<size_t>(i + j)] = (uint64_t)t;
      carry = t >> 64;
    }
    wide[static_cast<size_t>(i + 4)] = (uint64_t)carry;
  }
  return Reduce512(wide);
}

Scalar Scalar::operator-() const { return Scalar::Zero() - *this; }

Scalar Scalar::Invert() const {
  Require(!IsZero(), "Scalar::Invert: zero has no inverse");
  // Square-and-multiply with the fixed public exponent ℓ - 2.
  Scalar result = Scalar::One();
  bool started = false;
  for (int i = 255; i >= 0; --i) {
    if (started) {
      result = result * result;
    }
    uint64_t bit = (kLMinus2[static_cast<size_t>(i / 64)] >> (i % 64)) & 1;
    if (bit != 0) {
      result = started ? result * *this : *this;
      started = true;
    }
  }
  return result;
}

bool Scalar::IsZero() const {
  return (limb_[0] | limb_[1] | limb_[2] | limb_[3]) == 0;
}

bool Scalar::operator==(const Scalar& other) const { return limb_ == other.limb_; }

}  // namespace votegral
