#include "src/crypto/scalar.h"

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace votegral {

namespace {

using u128 = unsigned __int128;

// ℓ = 2^252 + 27742317777372353535851937790883648493, little-endian limbs.
constexpr std::array<uint64_t, 4> kL = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL,
                                        0x0000000000000000ULL, 0x1000000000000000ULL};

// ℓ - 2, the inversion exponent.
constexpr std::array<uint64_t, 4> kLMinus2 = {0x5812631a5cf5d3ebULL, 0x14def9dea2f79cd6ULL,
                                              0x0000000000000000ULL, 0x1000000000000000ULL};

// Compares two 4-limb values; returns -1, 0, or 1.
int Compare4(const std::array<uint64_t, 4>& a, const std::array<uint64_t, 4>& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[static_cast<size_t>(i)] != b[static_cast<size_t>(i)]) {
      return a[static_cast<size_t>(i)] < b[static_cast<size_t>(i)] ? -1 : 1;
    }
  }
  return 0;
}

// a -= b, returns borrow (a, b are 4-limb).
uint64_t SubBorrow4(std::array<uint64_t, 4>& a, const std::array<uint64_t, 4>& b) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 d = (u128)a[static_cast<size_t>(i)] - b[static_cast<size_t>(i)] - borrow;
    a[static_cast<size_t>(i)] = (uint64_t)d;
    borrow = (uint64_t)(d >> 64) & 1;
  }
  return borrow;
}

// a += b, returns carry.
uint64_t AddCarry4(std::array<uint64_t, 4>& a, const std::array<uint64_t, 4>& b) {
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 s = (u128)a[static_cast<size_t>(i)] + b[static_cast<size_t>(i)] + carry;
    a[static_cast<size_t>(i)] = (uint64_t)s;
    carry = (uint64_t)(s >> 64);
  }
  return carry;
}

}  // namespace

Scalar Scalar::One() { return Scalar(std::array<uint64_t, 4>{1, 0, 0, 0}); }

Scalar Scalar::FromU64(uint64_t v) { return Scalar(std::array<uint64_t, 4>{v, 0, 0, 0}); }

Scalar Scalar::Reduce512(const std::array<uint64_t, 8>& wide) {
  // Binary long division: shift bits of `wide` (MSB first) into a 5-limb
  // remainder, conditionally subtracting ℓ.
  std::array<uint64_t, 4> rem = {0, 0, 0, 0};
  uint64_t rem_top = 0;  // 5th limb: remainder can briefly reach 2^256..2ℓ.
  int top = 511;
  while (top >= 0) {
    size_t limb = static_cast<size_t>(top / 64);
    if (wide[limb] == 0 && rem_top == 0 && rem == std::array<uint64_t, 4>{0, 0, 0, 0} &&
        top % 64 == 63) {
      top -= 64;  // skip whole zero limbs while the remainder is zero
      continue;
    }
    uint64_t bit = (wide[limb] >> (top % 64)) & 1;
    // rem = (rem << 1) | bit
    rem_top = (rem_top << 1) | (rem[3] >> 63);
    for (int i = 3; i > 0; --i) {
      rem[static_cast<size_t>(i)] =
          (rem[static_cast<size_t>(i)] << 1) | (rem[static_cast<size_t>(i) - 1] >> 63);
    }
    rem[0] = (rem[0] << 1) | bit;
    // if rem >= ℓ: rem -= ℓ  (rem < 2ℓ here because rem was < ℓ before the
    // shift, so the shifted value is < 2ℓ + 1 < 2^253.1; rem_top can only be
    // nonzero transiently when rem[3]'s top bit was set, which cannot happen
    // for rem < ℓ since ℓ < 2^253).
    if (rem_top != 0 || Compare4(rem, kL) >= 0) {
      uint64_t borrow = SubBorrow4(rem, kL);
      rem_top -= borrow;
    }
    --top;
  }
  return Scalar(rem);
}

Scalar Scalar::FromBytesModL(std::span<const uint8_t> bytes32) {
  Require(bytes32.size() == 32, "Scalar::FromBytesModL: need 32 bytes");
  std::array<uint64_t, 8> wide{};
  for (int i = 0; i < 4; ++i) {
    wide[static_cast<size_t>(i)] = LoadLe64(bytes32.data() + 8 * i);
  }
  return Reduce512(wide);
}

Scalar Scalar::FromBytesWide(std::span<const uint8_t> bytes64) {
  Require(bytes64.size() == 64, "Scalar::FromBytesWide: need 64 bytes");
  std::array<uint64_t, 8> wide{};
  for (int i = 0; i < 8; ++i) {
    wide[static_cast<size_t>(i)] = LoadLe64(bytes64.data() + 8 * i);
  }
  return Reduce512(wide);
}

std::optional<Scalar> Scalar::FromCanonicalBytes(std::span<const uint8_t> bytes32) {
  if (bytes32.size() != 32) {
    return std::nullopt;
  }
  std::array<uint64_t, 4> limbs;
  for (int i = 0; i < 4; ++i) {
    limbs[static_cast<size_t>(i)] = LoadLe64(bytes32.data() + 8 * i);
  }
  if (Compare4(limbs, kL) >= 0) {
    return std::nullopt;
  }
  return Scalar(limbs);
}

Scalar Scalar::Random(Rng& rng) {
  Bytes wide = rng.RandomBytes(64);
  return FromBytesWide(wide);
}

std::array<uint8_t, 32> Scalar::ToBytes() const {
  std::array<uint8_t, 32> out;
  for (int i = 0; i < 4; ++i) {
    StoreLe64(out.data() + 8 * i, limb_[static_cast<size_t>(i)]);
  }
  return out;
}

Scalar Scalar::operator+(const Scalar& other) const {
  std::array<uint64_t, 4> r = limb_;
  uint64_t carry = AddCarry4(r, other.limb_);
  if (carry != 0 || Compare4(r, kL) >= 0) {
    SubBorrow4(r, kL);
  }
  return Scalar(r);
}

Scalar Scalar::operator-(const Scalar& other) const {
  std::array<uint64_t, 4> r = limb_;
  uint64_t borrow = SubBorrow4(r, other.limb_);
  if (borrow != 0) {
    AddCarry4(r, kL);
  }
  return Scalar(r);
}

Scalar Scalar::operator*(const Scalar& other) const {
  std::array<uint64_t, 8> wide{};
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 t = (u128)limb_[static_cast<size_t>(i)] * other.limb_[static_cast<size_t>(j)] +
               wide[static_cast<size_t>(i + j)] + carry;
      wide[static_cast<size_t>(i + j)] = (uint64_t)t;
      carry = t >> 64;
    }
    wide[static_cast<size_t>(i + 4)] = (uint64_t)carry;
  }
  return Reduce512(wide);
}

Scalar Scalar::operator-() const { return Scalar::Zero() - *this; }

Scalar Scalar::Invert() const {
  Require(!IsZero(), "Scalar::Invert: zero has no inverse");
  // Square-and-multiply with the fixed public exponent ℓ - 2.
  Scalar result = Scalar::One();
  bool started = false;
  for (int i = 255; i >= 0; --i) {
    if (started) {
      result = result * result;
    }
    uint64_t bit = (kLMinus2[static_cast<size_t>(i / 64)] >> (i % 64)) & 1;
    if (bit != 0) {
      result = started ? result * *this : *this;
      started = true;
    }
  }
  return result;
}

bool Scalar::IsZero() const {
  return (limb_[0] | limb_[1] | limb_[2] | limb_[3]) == 0;
}

bool Scalar::operator==(const Scalar& other) const { return limb_ == other.limb_; }

}  // namespace votegral
