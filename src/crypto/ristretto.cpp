#include "src/crypto/ristretto.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/executor.h"
#include "src/common/status.h"
#include "src/crypto/fe25519_x4.h"
#include "src/crypto/sha512.h"

namespace votegral {

namespace {

// Encode/Decode invocation counters. Relaxed is enough: tests and benches
// only ever read deltas after the parallel region they measure has joined.
std::atomic<uint64_t> g_encode_invocations{0};
std::atomic<uint64_t> g_decode_invocations{0};

// Derived curve constants, computed once at startup from first principles
// rather than transcribed, so that a typo cannot silently corrupt the group.
struct RistrettoConstants {
  Fe25519 d;                   // edwards25519 d = -121665/121666
  Fe25519 d2;                  // 2*d
  Fe25519 sqrt_m1;             // sqrt(-1)
  Fe25519 invsqrt_a_minus_d;   // 1/sqrt(a-d), a = -1
  Fe25519 sqrt_ad_minus_one;   // sqrt(a*d - 1)
  Fe25519 one_minus_d_sq;      // 1 - d^2
  Fe25519 d_minus_one_sq;      // (d - 1)^2
  Fe25519 base_x;              // basepoint x with sign chosen non-negative
  Fe25519 base_y;              // basepoint y = 4/5

  RistrettoConstants() {
    d = FeEdwardsD();
    d2 = FeAdd(d, d);
    sqrt_m1 = FeSqrtM1();

    // a - d = -1 - d.
    Fe25519 a_minus_d = FeSub(FeNeg(FeOne()), d);
    SqrtRatioResult inv_sqrt = FeSqrtRatioM1(FeOne(), a_minus_d);
    Require(inv_sqrt.was_square, "ristretto constants: a-d must be square");
    invsqrt_a_minus_d = inv_sqrt.root;

    // a*d - 1 = -d - 1.
    Fe25519 ad_minus_one = FeSub(FeNeg(d), FeOne());
    SqrtRatioResult sqrt_ad = FeSqrtRatioM1(ad_minus_one, FeOne());
    Require(sqrt_ad.was_square, "ristretto constants: ad-1 must be square");
    sqrt_ad_minus_one = sqrt_ad.root;

    one_minus_d_sq = FeSub(FeOne(), FeSquare(d));
    d_minus_one_sq = FeSquare(FeSub(d, FeOne()));

    // Basepoint: y = 4/5; x = sqrt((y^2-1)/(d*y^2+1)) with the even root.
    base_y = FeMul(FeFromU64(4), FeInvert(FeFromU64(5)));
    Fe25519 y2 = FeSquare(base_y);
    SqrtRatioResult x = FeSqrtRatioM1(FeSub(y2, FeOne()), FeAdd(FeMul(d, y2), FeOne()));
    Require(x.was_square, "ristretto constants: basepoint x must exist");
    base_x = x.root;  // FeSqrtRatioM1 returns the non-negative root.
  }
};

const RistrettoConstants& Consts() {
  static const RistrettoConstants kConstants;
  return kConstants;
}

}  // namespace

RistrettoPoint::RistrettoPoint() : x_(FeZero()), y_(FeOne()), z_(FeOne()), t_(FeZero()) {}

const RistrettoPoint& RistrettoPoint::Base() {
  static const RistrettoPoint kBase = [] {
    const RistrettoConstants& c = Consts();
    return RistrettoPoint(c.base_x, c.base_y, FeOne(), FeMul(c.base_x, c.base_y));
  }();
  return kBase;
}

bool RistrettoPoint::DecodePrepare(std::span<const uint8_t> bytes32, Fe25519& s, Fe25519& u1,
                                   Fe25519& u2, Fe25519& v, Fe25519& input) {
  if (bytes32.size() != 32 || !FeBytesAreCanonical(bytes32)) {
    return false;
  }
  s = FeFromBytes(bytes32);
  if (FeIsNegative(s)) {
    return false;
  }
  Fe25519 ss = FeSquare(s);
  u1 = FeSub(FeOne(), ss);   // 1 - s^2
  u2 = FeAdd(FeOne(), ss);   // 1 + s^2
  Fe25519 u2_sqr = FeSquare(u2);

  // v = -(d * u1^2) - u2^2
  v = FeSub(FeNeg(FeMul(Consts().d, FeSquare(u1))), u2_sqr);
  input = FeMul(v, u2_sqr);
  return true;
}

std::optional<RistrettoPoint> RistrettoPoint::DecodeFinish(const Fe25519& s, const Fe25519& u1,
                                                           const Fe25519& u2, const Fe25519& v,
                                                           const SqrtRatioResult& inv) {
  if (!inv.was_square) {
    return std::nullopt;
  }
  Fe25519 den_x = FeMul(inv.root, u2);
  Fe25519 den_y = FeMul(FeMul(inv.root, den_x), v);

  Fe25519 x = FeAbs(FeMul(FeAdd(s, s), den_x));
  Fe25519 y = FeMul(u1, den_y);
  Fe25519 t = FeMul(x, y);

  if (FeIsNegative(t) || FeIsZero(y)) {
    return std::nullopt;
  }
  return RistrettoPoint(x, y, FeOne(), t);
}

std::optional<RistrettoPoint> RistrettoPoint::Decode(std::span<const uint8_t> bytes32) {
  g_decode_invocations.fetch_add(1, std::memory_order_relaxed);
  Fe25519 s, u1, u2, v, input;
  if (!DecodePrepare(bytes32, s, u1, u2, v, input)) {
    return std::nullopt;
  }
  return DecodeFinish(s, u1, u2, v, FeInvSqrt(input));
}

size_t RistrettoPoint::DecodeX4(const std::array<uint8_t, 32>* bytes, RistrettoPoint* out,
                                uint8_t* ok) {
  g_decode_invocations.fetch_add(4, std::memory_order_relaxed);
  Fe25519 s[4], u1[4], u2[4], v[4], input[4];
  bool prepared[4];
  for (int k = 0; k < 4; ++k) {
    prepared[k] = DecodePrepare(bytes[k], s[k], u1[k], u2[k], v[k], input[k]);
    if (!prepared[k]) {
      input[k] = FeOne();  // benign filler so the other lanes still batch
    }
  }
  SqrtRatioResult inv[4];
  FeInvSqrtX4(input, inv);
  size_t failures = 0;
  for (int k = 0; k < 4; ++k) {
    std::optional<RistrettoPoint> point =
        prepared[k] ? DecodeFinish(s[k], u1[k], u2[k], v[k], inv[k]) : std::nullopt;
    if (point.has_value()) {
      out[k] = *point;
      ok[k] = 1;
    } else {
      out[k] = RistrettoPoint::Identity();
      ok[k] = 0;
      ++failures;
    }
  }
  return failures;
}

Fe25519 RistrettoPoint::EncodePrepare(Fe25519& u1, Fe25519& u2) const {
  u1 = FeMul(FeAdd(z_, y_), FeSub(z_, y_));  // (Z+Y)(Z-Y)
  u2 = FeMul(x_, y_);
  return FeMul(u1, FeSquare(u2));
}

std::array<uint8_t, 32> RistrettoPoint::EncodeFinish(const Fe25519& u1, const Fe25519& u2,
                                                     const Fe25519& inv_root) const {
  const RistrettoConstants& c = Consts();
  Fe25519 den1 = FeMul(inv_root, u1);
  Fe25519 den2 = FeMul(inv_root, u2);
  Fe25519 z_inv = FeMul(FeMul(den1, den2), t_);

  Fe25519 ix = FeMul(x_, c.sqrt_m1);
  Fe25519 iy = FeMul(y_, c.sqrt_m1);
  Fe25519 enchanted_denominator = FeMul(den1, c.invsqrt_a_minus_d);

  bool rotate = FeIsNegative(FeMul(t_, z_inv));

  Fe25519 x = FeSelect(x_, iy, rotate);
  Fe25519 y = FeSelect(y_, ix, rotate);
  Fe25519 den_inv = FeSelect(den2, enchanted_denominator, rotate);

  if (FeIsNegative(FeMul(x, z_inv))) {
    y = FeNeg(y);
  }
  Fe25519 s = FeAbs(FeMul(den_inv, FeSub(z_, y)));
  return FeToBytes(s);
}

std::array<uint8_t, 32> RistrettoPoint::Encode() const {
  g_encode_invocations.fetch_add(1, std::memory_order_relaxed);
  Fe25519 u1, u2;
  Fe25519 input = EncodePrepare(u1, u2);
  // Every valid group element makes this input square-or-zero; was_square is
  // deliberately ignored, matching the scalar SQRT_RATIO_M1 formulation.
  return EncodeFinish(u1, u2, FeInvSqrt(input).root);
}

void RistrettoPoint::EncodeX4(const RistrettoPoint* points, std::array<uint8_t, 32>* out) {
  g_encode_invocations.fetch_add(4, std::memory_order_relaxed);
  Fe25519 u1[4], u2[4], input[4];
  for (int k = 0; k < 4; ++k) {
    input[k] = points[k].EncodePrepare(u1[k], u2[k]);
  }
  SqrtRatioResult inv[4];
  FeInvSqrtX4(input, inv);
  for (int k = 0; k < 4; ++k) {
    out[k] = points[k].EncodeFinish(u1[k], u2[k], inv[k].root);
  }
}

RistrettoPoint RistrettoPoint::ElligatorMap(const Fe25519& t) {
  const RistrettoConstants& c = Consts();

  Fe25519 r = FeMul(c.sqrt_m1, FeSquare(t));
  Fe25519 u = FeMul(FeAdd(r, FeOne()), c.one_minus_d_sq);
  Fe25519 minus_one = FeNeg(FeOne());
  // v = (-1 - r*d) * (r + d)
  Fe25519 v = FeMul(FeSub(minus_one, FeMul(r, c.d)), FeAdd(r, c.d));

  SqrtRatioResult sq = FeSqrtRatioM1(u, v);
  Fe25519 s = sq.root;
  Fe25519 s_prime = FeNeg(FeAbs(FeMul(s, t)));
  s = FeSelect(s_prime, s, sq.was_square);
  Fe25519 c_sel = FeSelect(r, minus_one, sq.was_square);

  // N = c * (r - 1) * (d - 1)^2 - v
  Fe25519 n = FeSub(FeMul(FeMul(c_sel, FeSub(r, FeOne())), c.d_minus_one_sq), v);

  Fe25519 s_sq = FeSquare(s);
  Fe25519 w0 = FeMul(FeAdd(s, s), v);
  Fe25519 w1 = FeMul(n, c.sqrt_ad_minus_one);
  Fe25519 w2 = FeSub(FeOne(), s_sq);
  Fe25519 w3 = FeAdd(FeOne(), s_sq);

  return RistrettoPoint(FeMul(w0, w3), FeMul(w2, w1), FeMul(w1, w3), FeMul(w0, w2));
}

RistrettoPoint RistrettoPoint::FromUniformBytes(std::span<const uint8_t> bytes64) {
  Require(bytes64.size() == 64, "FromUniformBytes: need 64 bytes");
  Fe25519 r0 = FeFromBytes(bytes64.subspan(0, 32));
  Fe25519 r1 = FeFromBytes(bytes64.subspan(32, 32));
  return ElligatorMap(r0) + ElligatorMap(r1);
}

RistrettoPoint RistrettoPoint::HashToGroup(std::string_view domain,
                                           std::span<const uint8_t> data) {
  const uint8_t separator = 0;
  auto digest = Sha512::HashParts({AsBytes(domain), {&separator, 1}, data});
  return FromUniformBytes(digest);
}

RistrettoPoint RistrettoPoint::operator+(const RistrettoPoint& other) const {
  // add-2008-hwcd-3 for a = -1 twisted Edwards curves.
  const Fe25519 a = FeMul(FeSub(y_, x_), FeSub(other.y_, other.x_));
  const Fe25519 b = FeMul(FeAdd(y_, x_), FeAdd(other.y_, other.x_));
  const Fe25519 cc = FeMul(FeMul(t_, Consts().d2), other.t_);
  const Fe25519 dd = FeMul(FeAdd(z_, z_), other.z_);
  const Fe25519 e = FeSub(b, a);
  const Fe25519 f = FeSub(dd, cc);
  const Fe25519 g = FeAdd(dd, cc);
  const Fe25519 h = FeAdd(b, a);
  return RistrettoPoint(FeMul(e, f), FeMul(g, h), FeMul(f, g), FeMul(e, h));
}

namespace {

// AddX4 route override: -1 auto (calibrate at first use), 0 scalar, 1 X4.
std::atomic<int> g_addx4_mode{-1};

// One-shot calibration: times kIters rounds of "four scalar additions"
// against kIters rounds of one AddX4Kernels call on the same inputs and
// keeps the faster route. The X4 route's 8 batched multiplications tie or
// lose to 32 radix-51 ones on wide-mulx x86-64 cores (and its 12 layout
// conversions are then pure overhead), while 4-lane NEON units come out
// ahead — a property of the CPU, not the workload, so measuring once is
// enough. Both routes compute identical residues mod p, so the choice is
// unobservable beyond timing.
bool MeasureAddX4Wins(void (*kernels)(const RistrettoPoint*, const RistrettoPoint*,
                                      RistrettoPoint*)) {
  if (const char* env = std::getenv("VOTEGRAL_X4_POINTS")) {
    const std::string_view v(env);
    if (v == "on" || v == "1") {
      return true;
    }
    if (v == "off" || v == "0") {
      return false;
    }
  }
  RistrettoPoint a[4], b[4];
  RistrettoPoint p = RistrettoPoint::Base();
  for (int k = 0; k < 4; ++k) {
    a[k] = p;
    p = p.Double();
    b[k] = p + RistrettoPoint::Base();
  }
  constexpr int kIters = 32;
  auto best_of = [](auto&& body) {
    uint64_t best = ~uint64_t{0};
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      body();
      const auto t1 = std::chrono::steady_clock::now();
      const auto ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
      best = ns < best ? ns : best;
    }
    return best;
  };
  const uint64_t scalar_ns = best_of([&] {
    RistrettoPoint c[4] = {a[0], a[1], a[2], a[3]};
    for (int i = 0; i < kIters; ++i) {
      for (int k = 0; k < 4; ++k) {
        c[k] = c[k] + b[k];
      }
    }
    asm volatile("" : : "r"(c) : "memory");
  });
  const uint64_t x4_ns = best_of([&] {
    RistrettoPoint c[4] = {a[0], a[1], a[2], a[3]};
    for (int i = 0; i < kIters; ++i) {
      kernels(c, b, c);
    }
    asm volatile("" : : "r"(c) : "memory");
  });
  return x4_ns < scalar_ns;
}

}  // namespace

int RistrettoPoint::SetAddX4ModeForTest(int mode) {
  return g_addx4_mode.exchange(mode);
}

void RistrettoPoint::AddX4(const RistrettoPoint* a, const RistrettoPoint* b,
                           RistrettoPoint* out) {
  const int mode = g_addx4_mode.load(std::memory_order_relaxed);
  bool use_kernels;
  if (mode >= 0) {
    use_kernels = mode != 0;
  } else {
    static const bool kMeasuredWin = MeasureAddX4Wins(&RistrettoPoint::AddX4Kernels);
    use_kernels = kMeasuredWin;
  }
  if (!use_kernels) {
    for (int k = 0; k < 4; ++k) {
      out[k] = a[k] + b[k];
    }
    return;
  }
  AddX4Kernels(a, b, out);
}

void RistrettoPoint::AddX4Kernels(const RistrettoPoint* a, const RistrettoPoint* b,
                                  RistrettoPoint* out) {
  // add-2008-hwcd-3 across four lanes. Coordinates are gathered
  // structure-of-arrays so every field operation is one X4 kernel call:
  // 8 X4 multiplications replace 32 scalar ones.
  Fe25519 lanes[4];
  auto gather = [&lanes](const RistrettoPoint* p, Fe25519 RistrettoPoint::*coord) {
    for (int k = 0; k < 4; ++k) {
      lanes[k] = p[k].*coord;
    }
    return FeX4FromLanes(lanes);
  };
  const Fe25519X4 x1 = gather(a, &RistrettoPoint::x_);
  const Fe25519X4 y1 = gather(a, &RistrettoPoint::y_);
  const Fe25519X4 z1 = gather(a, &RistrettoPoint::z_);
  const Fe25519X4 t1 = gather(a, &RistrettoPoint::t_);
  const Fe25519X4 x2 = gather(b, &RistrettoPoint::x_);
  const Fe25519X4 y2 = gather(b, &RistrettoPoint::y_);
  const Fe25519X4 z2 = gather(b, &RistrettoPoint::z_);
  const Fe25519X4 t2 = gather(b, &RistrettoPoint::t_);
  const Fe25519X4 d2 = FeX4Splat(Consts().d2);

  Fe25519X4 va, vb, vc, vd, tmp;
  FeSubX4(va, y1, x1);
  FeSubX4(tmp, y2, x2);
  FeMulX4(va, va, tmp);  // A = (Y1-X1)(Y2-X2)
  FeAddX4(vb, y1, x1);
  FeAddX4(tmp, y2, x2);
  FeMulX4(vb, vb, tmp);  // B = (Y1+X1)(Y2+X2)
  FeMulX4(vc, t1, d2);
  FeMulX4(vc, vc, t2);  // C = T1*d2*T2
  FeAddX4(vd, z1, z1);
  FeMulX4(vd, vd, z2);  // D = 2*Z1*Z2

  Fe25519X4 e, f, g, h;
  FeSubX4(e, vb, va);
  FeSubX4(f, vd, vc);
  FeAddX4(g, vd, vc);
  FeAddX4(h, vb, va);

  Fe25519X4 x3, y3, z3, t3;
  FeMulX4(x3, e, f);
  FeMulX4(y3, g, h);
  FeMulX4(z3, f, g);
  FeMulX4(t3, e, h);

  Fe25519 ox[4], oy[4], oz[4], ot[4];
  FeX4ToLanes(x3, ox);
  FeX4ToLanes(y3, oy);
  FeX4ToLanes(z3, oz);
  FeX4ToLanes(t3, ot);
  for (int k = 0; k < 4; ++k) {
    out[k] = RistrettoPoint(ox[k], oy[k], oz[k], ot[k]);
  }
}

RistrettoPoint RistrettoPoint::operator-() const {
  return RistrettoPoint(FeNeg(x_), y_, z_, FeNeg(t_));
}

RistrettoPoint RistrettoPoint::operator-(const RistrettoPoint& other) const {
  return *this + (-other);
}

RistrettoPoint RistrettoPoint::Double() const {
  // dbl-2008-hwcd for a = -1.
  const Fe25519 a = FeSquare(x_);
  const Fe25519 b = FeSquare(y_);
  const Fe25519 c = FeMulSmall(FeSquare(z_), 2);
  const Fe25519 neg_a = FeNeg(a);  // D = a*A with a = -1
  const Fe25519 e = FeSub(FeSub(FeSquare(FeAdd(x_, y_)), a), b);
  const Fe25519 g = FeAdd(neg_a, b);
  const Fe25519 f = FeSub(g, c);
  const Fe25519 h = FeSub(neg_a, b);
  return RistrettoPoint(FeMul(e, f), FeMul(g, h), FeMul(f, g), FeMul(e, h));
}

RistrettoPoint operator*(const Scalar& s, const RistrettoPoint& p) {
  // 4-bit fixed-window multiplication.
  RistrettoPoint table[16];
  table[0] = RistrettoPoint::Identity();
  table[1] = p;
  for (int i = 2; i < 16; ++i) {
    table[i] = table[i - 1] + p;
  }
  auto bytes = s.ToBytes();
  RistrettoPoint acc;
  bool started = false;
  for (int i = 63; i >= 0; --i) {
    if (started) {
      acc = acc.Double().Double().Double().Double();
    }
    uint8_t byte = bytes[static_cast<size_t>(i / 2)];
    uint8_t nibble = (i % 2 == 1) ? (byte >> 4) : (byte & 0x0f);
    if (nibble != 0) {
      acc = started ? acc + table[nibble] : table[nibble];
      started = true;
    }
  }
  return started ? acc : RistrettoPoint::Identity();
}

namespace {

// Precomputed fixed-base table: kBaseTable[i][j] = j * 16^i * B, so that
// s*B = sum_i kBaseTable[i][nibble_i(s)] costs 64 additions and no doublings.
struct BaseTable {
  RistrettoPoint entry[64][16];

  BaseTable() {
    RistrettoPoint power = RistrettoPoint::Base();  // 16^i * B
    for (int i = 0; i < 64; ++i) {
      entry[i][0] = RistrettoPoint::Identity();
      for (int j = 1; j < 16; ++j) {
        entry[i][j] = entry[i][j - 1] + power;
      }
      if (i + 1 < 64) {
        power = entry[i][8].Double();  // 16^(i+1) * B = 2 * (8 * 16^i * B)
      }
    }
  }
};

const BaseTable& GetBaseTable() {
  static const BaseTable kTable;
  return kTable;
}

}  // namespace

RistrettoPoint RistrettoPoint::MulBase(const Scalar& s) {
  const BaseTable& table = GetBaseTable();
  auto bytes = s.ToBytes();
  RistrettoPoint acc;
  for (int i = 0; i < 64; ++i) {
    uint8_t byte = bytes[static_cast<size_t>(i / 2)];
    uint8_t nibble = (i % 2 == 1) ? (byte >> 4) : (byte & 0x0f);
    if (nibble != 0) {
      acc = acc + table.entry[i][nibble];
    }
  }
  return acc;
}

RistrettoPoint RistrettoPoint::MulBaseSlow(const Scalar& s) { return s * Base(); }

// DoubleScalarMulBase is defined in src/crypto/msm.cpp on top of the
// multi-scalar multiplication engine (shared-doubling wNAF ladder).

const std::array<uint8_t, 32>& RistrettoPoint::BaseWire() {
  static const std::array<uint8_t, 32> kBaseWire = Base().Encode();
  return kBaseWire;
}

void BatchEncodePoints(std::span<const RistrettoPoint> points,
                       std::span<CompressedRistretto> out) {
  Require(points.size() == out.size(), "BatchEncodePoints: size mismatch");
  Executor::Current().ParallelFor(points.size(), [&](size_t begin, size_t end) {
    size_t i = begin;
    for (; i + 4 <= end; i += 4) {
      RistrettoPoint::EncodeX4(&points[i], &out[i]);
    }
    for (; i < end; ++i) {
      out[i] = points[i].Encode();
    }
  });
}

size_t BatchDecodePoints(std::span<const CompressedRistretto> bytes,
                         std::span<RistrettoPoint> out, std::span<uint8_t> ok) {
  Require(bytes.size() == out.size() && bytes.size() == ok.size(),
          "BatchDecodePoints: size mismatch");
  std::atomic<size_t> failures{0};
  Executor::Current().ParallelFor(bytes.size(), [&](size_t begin, size_t end) {
    size_t chunk_failures = 0;
    size_t i = begin;
    for (; i + 4 <= end; i += 4) {
      chunk_failures += RistrettoPoint::DecodeX4(&bytes[i], &out[i], &ok[i]);
    }
    for (; i < end; ++i) {
      auto point = RistrettoPoint::Decode(bytes[i]);
      if (point.has_value()) {
        out[i] = *point;
        ok[i] = 1;
      } else {
        out[i] = RistrettoPoint::Identity();
        ok[i] = 0;
        ++chunk_failures;
      }
    }
    if (chunk_failures != 0) {
      failures.fetch_add(chunk_failures, std::memory_order_relaxed);
    }
  });
  return failures.load(std::memory_order_relaxed);
}

size_t BatchValidateEncodings(std::span<const RistrettoPoint> points,
                              std::span<const CompressedRistretto> bytes,
                              std::span<uint8_t> ok) {
  Require(points.size() == bytes.size() && points.size() == ok.size(),
          "BatchValidateEncodings: size mismatch");
  std::atomic<size_t> failures{0};
  Executor::Current().ParallelFor(points.size(), [&](size_t begin, size_t end) {
    const size_t n = end - begin;
    // Montgomery batch inversion of the Z coordinates: one FeInvert for the
    // whole chunk. Z is never zero for a group element, so the combined
    // product is invertible.
    std::vector<Fe25519> prefix(n);  // prefix[j] = Z_begin * ... * Z_{begin+j-1}
    Fe25519 acc = FeOne();
    for (size_t j = 0; j < n; ++j) {
      prefix[j] = acc;
      acc = FeMul(acc, points[begin + j].z_);
    }
    Fe25519 inv_suffix = FeInvert(acc);  // (Z_begin * ... * Z_{end-1})^-1

    size_t chunk_failures = 0;
    for (size_t j = n; j-- > 0;) {
      const size_t i = begin + j;
      Fe25519 z_inv = FeMul(inv_suffix, prefix[j]);
      inv_suffix = FeMul(inv_suffix, points[i].z_);

      const Fe25519 x = FeMul(points[i].x_, z_inv);
      const Fe25519 y = FeMul(points[i].y_, z_inv);

      bool valid;
      if (FeIsZero(x) || FeIsZero(y)) {
        // Identity coset {(0,±1), (±i,0)}: the canonical encoding is the
        // all-zero string, and no other bytes decode into this coset.
        valid = true;
        for (uint8_t b : bytes[i]) {
          valid &= (b == 0);
        }
      } else if (!FeBytesAreCanonical(bytes[i])) {
        valid = false;
      } else {
        const Fe25519 s = FeFromBytes(bytes[i]);
        if (FeIsNegative(s)) {
          valid = false;
        } else {
          // Select the canonical coset representative (x_c, y_c): of the four
          // reps {(x,y), (-x,-y), (iy,ix), (-iy,-ix)} exactly one has both a
          // non-negative t = x_c*y_c (fixing the pair) and a non-negative x_c
          // (fixing the sign) — the rep Decode(Encode(P)) produces. Then s is
          // the encoding of P iff s^2 = (1-y_c)/(1+y_c): decoded y determines
          // s up to sign and the non-negativity checks above fix the sign, so
          // the encoding of -P (whose canonical rep has a different y_c) can
          // never pass.
          Fe25519 y_c;
          if (FeIsNegative(FeMul(x, y))) {  // rotate: pair (±iy, ±ix)
            const Fe25519 ix = FeMul(FeSqrtM1(), x);
            const Fe25519 iy = FeMul(FeSqrtM1(), y);
            y_c = FeIsNegative(iy) ? FeNeg(ix) : ix;
          } else {  // pair (±x, ±y)
            y_c = FeIsNegative(x) ? FeNeg(y) : y;
          }
          const Fe25519 ss = FeSquare(s);
          valid = FeEqual(FeMul(ss, FeAdd(FeOne(), y_c)), FeSub(FeOne(), y_c));
        }
      }
      ok[i] = valid ? 1 : 0;
      if (!valid) {
        ++chunk_failures;
      }
    }
    if (chunk_failures != 0) {
      failures.fetch_add(chunk_failures, std::memory_order_relaxed);
    }
  });
  return failures.load(std::memory_order_relaxed);
}

uint64_t RistrettoEncodeInvocations() {
  return g_encode_invocations.load(std::memory_order_relaxed);
}

uint64_t RistrettoDecodeInvocations() {
  return g_decode_invocations.load(std::memory_order_relaxed);
}

bool RistrettoPoint::operator==(const RistrettoPoint& other) const {
  // Ristretto equality: P == Q iff X1*Y2 == Y1*X2 or X1*X2 == Y1*Y2
  // (both conditions identify the same 4-torsion coset).
  Fe25519 x1y2 = FeMul(x_, other.y_);
  Fe25519 y1x2 = FeMul(y_, other.x_);
  if (FeEqual(x1y2, y1x2)) {
    return true;
  }
  Fe25519 x1x2 = FeMul(x_, other.x_);
  Fe25519 y1y2 = FeMul(y_, other.y_);
  return FeEqual(x1x2, y1y2);
}

}  // namespace votegral
