#include "src/crypto/ristretto.h"

#include <atomic>

#include "src/common/bytes.h"
#include "src/common/executor.h"
#include "src/common/status.h"
#include "src/crypto/sha512.h"

namespace votegral {

namespace {

// Encode/Decode invocation counters. Relaxed is enough: tests and benches
// only ever read deltas after the parallel region they measure has joined.
std::atomic<uint64_t> g_encode_invocations{0};
std::atomic<uint64_t> g_decode_invocations{0};

// Derived curve constants, computed once at startup from first principles
// rather than transcribed, so that a typo cannot silently corrupt the group.
struct RistrettoConstants {
  Fe25519 d;                   // edwards25519 d = -121665/121666
  Fe25519 d2;                  // 2*d
  Fe25519 sqrt_m1;             // sqrt(-1)
  Fe25519 invsqrt_a_minus_d;   // 1/sqrt(a-d), a = -1
  Fe25519 sqrt_ad_minus_one;   // sqrt(a*d - 1)
  Fe25519 one_minus_d_sq;      // 1 - d^2
  Fe25519 d_minus_one_sq;      // (d - 1)^2
  Fe25519 base_x;              // basepoint x with sign chosen non-negative
  Fe25519 base_y;              // basepoint y = 4/5

  RistrettoConstants() {
    d = FeEdwardsD();
    d2 = FeAdd(d, d);
    sqrt_m1 = FeSqrtM1();

    // a - d = -1 - d.
    Fe25519 a_minus_d = FeSub(FeNeg(FeOne()), d);
    SqrtRatioResult inv_sqrt = FeSqrtRatioM1(FeOne(), a_minus_d);
    Require(inv_sqrt.was_square, "ristretto constants: a-d must be square");
    invsqrt_a_minus_d = inv_sqrt.root;

    // a*d - 1 = -d - 1.
    Fe25519 ad_minus_one = FeSub(FeNeg(d), FeOne());
    SqrtRatioResult sqrt_ad = FeSqrtRatioM1(ad_minus_one, FeOne());
    Require(sqrt_ad.was_square, "ristretto constants: ad-1 must be square");
    sqrt_ad_minus_one = sqrt_ad.root;

    one_minus_d_sq = FeSub(FeOne(), FeSquare(d));
    d_minus_one_sq = FeSquare(FeSub(d, FeOne()));

    // Basepoint: y = 4/5; x = sqrt((y^2-1)/(d*y^2+1)) with the even root.
    base_y = FeMul(FeFromU64(4), FeInvert(FeFromU64(5)));
    Fe25519 y2 = FeSquare(base_y);
    SqrtRatioResult x = FeSqrtRatioM1(FeSub(y2, FeOne()), FeAdd(FeMul(d, y2), FeOne()));
    Require(x.was_square, "ristretto constants: basepoint x must exist");
    base_x = x.root;  // FeSqrtRatioM1 returns the non-negative root.
  }
};

const RistrettoConstants& Consts() {
  static const RistrettoConstants kConstants;
  return kConstants;
}

}  // namespace

RistrettoPoint::RistrettoPoint() : x_(FeZero()), y_(FeOne()), z_(FeOne()), t_(FeZero()) {}

const RistrettoPoint& RistrettoPoint::Base() {
  static const RistrettoPoint kBase = [] {
    const RistrettoConstants& c = Consts();
    return RistrettoPoint(c.base_x, c.base_y, FeOne(), FeMul(c.base_x, c.base_y));
  }();
  return kBase;
}

std::optional<RistrettoPoint> RistrettoPoint::Decode(std::span<const uint8_t> bytes32) {
  g_decode_invocations.fetch_add(1, std::memory_order_relaxed);
  if (bytes32.size() != 32 || !FeBytesAreCanonical(bytes32)) {
    return std::nullopt;
  }
  Fe25519 s = FeFromBytes(bytes32);
  if (FeIsNegative(s)) {
    return std::nullopt;
  }
  const RistrettoConstants& c = Consts();

  Fe25519 ss = FeSquare(s);
  Fe25519 u1 = FeSub(FeOne(), ss);   // 1 - s^2
  Fe25519 u2 = FeAdd(FeOne(), ss);   // 1 + s^2
  Fe25519 u2_sqr = FeSquare(u2);

  // v = -(d * u1^2) - u2^2
  Fe25519 v = FeSub(FeNeg(FeMul(c.d, FeSquare(u1))), u2_sqr);

  SqrtRatioResult inv = FeInvSqrt(FeMul(v, u2_sqr));
  if (!inv.was_square) {
    return std::nullopt;
  }
  Fe25519 den_x = FeMul(inv.root, u2);
  Fe25519 den_y = FeMul(FeMul(inv.root, den_x), v);

  Fe25519 x = FeAbs(FeMul(FeAdd(s, s), den_x));
  Fe25519 y = FeMul(u1, den_y);
  Fe25519 t = FeMul(x, y);

  if (FeIsNegative(t) || FeIsZero(y)) {
    return std::nullopt;
  }
  return RistrettoPoint(x, y, FeOne(), t);
}

std::array<uint8_t, 32> RistrettoPoint::Encode() const {
  g_encode_invocations.fetch_add(1, std::memory_order_relaxed);
  const RistrettoConstants& c = Consts();

  Fe25519 u1 = FeMul(FeAdd(z_, y_), FeSub(z_, y_));  // (Z+Y)(Z-Y)
  Fe25519 u2 = FeMul(x_, y_);
  // Every valid group element makes this input square-or-zero; was_square is
  // deliberately ignored, matching the scalar SQRT_RATIO_M1 formulation.
  SqrtRatioResult inv = FeInvSqrt(FeMul(u1, FeSquare(u2)));
  Fe25519 den1 = FeMul(inv.root, u1);
  Fe25519 den2 = FeMul(inv.root, u2);
  Fe25519 z_inv = FeMul(FeMul(den1, den2), t_);

  Fe25519 ix = FeMul(x_, c.sqrt_m1);
  Fe25519 iy = FeMul(y_, c.sqrt_m1);
  Fe25519 enchanted_denominator = FeMul(den1, c.invsqrt_a_minus_d);

  bool rotate = FeIsNegative(FeMul(t_, z_inv));

  Fe25519 x = FeSelect(x_, iy, rotate);
  Fe25519 y = FeSelect(y_, ix, rotate);
  Fe25519 den_inv = FeSelect(den2, enchanted_denominator, rotate);

  if (FeIsNegative(FeMul(x, z_inv))) {
    y = FeNeg(y);
  }
  Fe25519 s = FeAbs(FeMul(den_inv, FeSub(z_, y)));
  return FeToBytes(s);
}

RistrettoPoint RistrettoPoint::ElligatorMap(const Fe25519& t) {
  const RistrettoConstants& c = Consts();

  Fe25519 r = FeMul(c.sqrt_m1, FeSquare(t));
  Fe25519 u = FeMul(FeAdd(r, FeOne()), c.one_minus_d_sq);
  Fe25519 minus_one = FeNeg(FeOne());
  // v = (-1 - r*d) * (r + d)
  Fe25519 v = FeMul(FeSub(minus_one, FeMul(r, c.d)), FeAdd(r, c.d));

  SqrtRatioResult sq = FeSqrtRatioM1(u, v);
  Fe25519 s = sq.root;
  Fe25519 s_prime = FeNeg(FeAbs(FeMul(s, t)));
  s = FeSelect(s_prime, s, sq.was_square);
  Fe25519 c_sel = FeSelect(r, minus_one, sq.was_square);

  // N = c * (r - 1) * (d - 1)^2 - v
  Fe25519 n = FeSub(FeMul(FeMul(c_sel, FeSub(r, FeOne())), c.d_minus_one_sq), v);

  Fe25519 s_sq = FeSquare(s);
  Fe25519 w0 = FeMul(FeAdd(s, s), v);
  Fe25519 w1 = FeMul(n, c.sqrt_ad_minus_one);
  Fe25519 w2 = FeSub(FeOne(), s_sq);
  Fe25519 w3 = FeAdd(FeOne(), s_sq);

  return RistrettoPoint(FeMul(w0, w3), FeMul(w2, w1), FeMul(w1, w3), FeMul(w0, w2));
}

RistrettoPoint RistrettoPoint::FromUniformBytes(std::span<const uint8_t> bytes64) {
  Require(bytes64.size() == 64, "FromUniformBytes: need 64 bytes");
  Fe25519 r0 = FeFromBytes(bytes64.subspan(0, 32));
  Fe25519 r1 = FeFromBytes(bytes64.subspan(32, 32));
  return ElligatorMap(r0) + ElligatorMap(r1);
}

RistrettoPoint RistrettoPoint::HashToGroup(std::string_view domain,
                                           std::span<const uint8_t> data) {
  const uint8_t separator = 0;
  auto digest = Sha512::HashParts({AsBytes(domain), {&separator, 1}, data});
  return FromUniformBytes(digest);
}

RistrettoPoint RistrettoPoint::operator+(const RistrettoPoint& other) const {
  // add-2008-hwcd-3 for a = -1 twisted Edwards curves.
  const Fe25519 a = FeMul(FeSub(y_, x_), FeSub(other.y_, other.x_));
  const Fe25519 b = FeMul(FeAdd(y_, x_), FeAdd(other.y_, other.x_));
  const Fe25519 cc = FeMul(FeMul(t_, Consts().d2), other.t_);
  const Fe25519 dd = FeMul(FeAdd(z_, z_), other.z_);
  const Fe25519 e = FeSub(b, a);
  const Fe25519 f = FeSub(dd, cc);
  const Fe25519 g = FeAdd(dd, cc);
  const Fe25519 h = FeAdd(b, a);
  return RistrettoPoint(FeMul(e, f), FeMul(g, h), FeMul(f, g), FeMul(e, h));
}

RistrettoPoint RistrettoPoint::operator-() const {
  return RistrettoPoint(FeNeg(x_), y_, z_, FeNeg(t_));
}

RistrettoPoint RistrettoPoint::operator-(const RistrettoPoint& other) const {
  return *this + (-other);
}

RistrettoPoint RistrettoPoint::Double() const {
  // dbl-2008-hwcd for a = -1.
  const Fe25519 a = FeSquare(x_);
  const Fe25519 b = FeSquare(y_);
  const Fe25519 c = FeMulSmall(FeSquare(z_), 2);
  const Fe25519 neg_a = FeNeg(a);  // D = a*A with a = -1
  const Fe25519 e = FeSub(FeSub(FeSquare(FeAdd(x_, y_)), a), b);
  const Fe25519 g = FeAdd(neg_a, b);
  const Fe25519 f = FeSub(g, c);
  const Fe25519 h = FeSub(neg_a, b);
  return RistrettoPoint(FeMul(e, f), FeMul(g, h), FeMul(f, g), FeMul(e, h));
}

RistrettoPoint operator*(const Scalar& s, const RistrettoPoint& p) {
  // 4-bit fixed-window multiplication.
  RistrettoPoint table[16];
  table[0] = RistrettoPoint::Identity();
  table[1] = p;
  for (int i = 2; i < 16; ++i) {
    table[i] = table[i - 1] + p;
  }
  auto bytes = s.ToBytes();
  RistrettoPoint acc;
  bool started = false;
  for (int i = 63; i >= 0; --i) {
    if (started) {
      acc = acc.Double().Double().Double().Double();
    }
    uint8_t byte = bytes[static_cast<size_t>(i / 2)];
    uint8_t nibble = (i % 2 == 1) ? (byte >> 4) : (byte & 0x0f);
    if (nibble != 0) {
      acc = started ? acc + table[nibble] : table[nibble];
      started = true;
    }
  }
  return started ? acc : RistrettoPoint::Identity();
}

namespace {

// Precomputed fixed-base table: kBaseTable[i][j] = j * 16^i * B, so that
// s*B = sum_i kBaseTable[i][nibble_i(s)] costs 64 additions and no doublings.
struct BaseTable {
  RistrettoPoint entry[64][16];

  BaseTable() {
    RistrettoPoint power = RistrettoPoint::Base();  // 16^i * B
    for (int i = 0; i < 64; ++i) {
      entry[i][0] = RistrettoPoint::Identity();
      for (int j = 1; j < 16; ++j) {
        entry[i][j] = entry[i][j - 1] + power;
      }
      if (i + 1 < 64) {
        power = entry[i][8].Double();  // 16^(i+1) * B = 2 * (8 * 16^i * B)
      }
    }
  }
};

const BaseTable& GetBaseTable() {
  static const BaseTable kTable;
  return kTable;
}

}  // namespace

RistrettoPoint RistrettoPoint::MulBase(const Scalar& s) {
  const BaseTable& table = GetBaseTable();
  auto bytes = s.ToBytes();
  RistrettoPoint acc;
  for (int i = 0; i < 64; ++i) {
    uint8_t byte = bytes[static_cast<size_t>(i / 2)];
    uint8_t nibble = (i % 2 == 1) ? (byte >> 4) : (byte & 0x0f);
    if (nibble != 0) {
      acc = acc + table.entry[i][nibble];
    }
  }
  return acc;
}

RistrettoPoint RistrettoPoint::MulBaseSlow(const Scalar& s) { return s * Base(); }

// DoubleScalarMulBase is defined in src/crypto/msm.cpp on top of the
// multi-scalar multiplication engine (shared-doubling wNAF ladder).

const std::array<uint8_t, 32>& RistrettoPoint::BaseWire() {
  static const std::array<uint8_t, 32> kBaseWire = Base().Encode();
  return kBaseWire;
}

void BatchEncodePoints(std::span<const RistrettoPoint> points,
                       std::span<CompressedRistretto> out) {
  Require(points.size() == out.size(), "BatchEncodePoints: size mismatch");
  Executor::Current().ParallelForEach(points.size(),
                                      [&](size_t i) { out[i] = points[i].Encode(); });
}

size_t BatchDecodePoints(std::span<const CompressedRistretto> bytes,
                         std::span<RistrettoPoint> out, std::span<uint8_t> ok) {
  Require(bytes.size() == out.size() && bytes.size() == ok.size(),
          "BatchDecodePoints: size mismatch");
  std::atomic<size_t> failures{0};
  Executor::Current().ParallelForEach(bytes.size(), [&](size_t i) {
    auto point = RistrettoPoint::Decode(bytes[i]);
    if (point.has_value()) {
      out[i] = *point;
      ok[i] = 1;
    } else {
      out[i] = RistrettoPoint::Identity();
      ok[i] = 0;
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  return failures.load(std::memory_order_relaxed);
}

uint64_t RistrettoEncodeInvocations() {
  return g_encode_invocations.load(std::memory_order_relaxed);
}

uint64_t RistrettoDecodeInvocations() {
  return g_decode_invocations.load(std::memory_order_relaxed);
}

bool RistrettoPoint::operator==(const RistrettoPoint& other) const {
  // Ristretto equality: P == Q iff X1*Y2 == Y1*X2 or X1*X2 == Y1*Y2
  // (both conditions identify the same 4-torsion coset).
  Fe25519 x1y2 = FeMul(x_, other.y_);
  Fe25519 y1x2 = FeMul(y_, other.x_);
  if (FeEqual(x1y2, y1x2)) {
    return true;
  }
  Fe25519 x1x2 = FeMul(x_, other.x_);
  Fe25519 y1y2 = FeMul(y_, other.y_);
  return FeEqual(x1x2, y1y2);
}

}  // namespace votegral
