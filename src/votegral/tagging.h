// Distributed deterministic tagging (Fig. 3 "blinded credential tags";
// Weber et al. [153], Koenig et al. [82]).
//
// After mixing, each tallier t applies its secret exponent z_t to every
// credential ciphertext on both lists (roster tags and ballot credentials),
// proving consistency with its public commitment Z_t = z_t·B via a 3-element
// Chaum–Pedersen proof per ciphertext. After all talliers, a ciphertext that
// encrypted M encrypts (Πz_t)·M; verifiable decryption then yields blinded
// tags that match iff the underlying plaintexts matched — the linear-time
// filter that replaces JCJ/Civitas' quadratic pairwise PETs (§7.4).
//
// Parallel architecture: talliers are inherently sequential (each consumes
// the previous output), but within one tallier's pass every ciphertext is
// independent, so Apply shards the list across the executor under forked
// per-shard DRBG streams (proof nonces), keeping the step byte-identical at
// any thread count. Chain verification folds every step's Chaum–Pedersen
// proofs into one batched multi-scalar multiplication with deterministic
// Fiat–Shamir weights, falling back to the per-item path to localize the
// offending step and index on rejection.
#ifndef SRC_VOTEGRAL_TAGGING_H_
#define SRC_VOTEGRAL_TAGGING_H_

#include <vector>

#include "src/common/executor.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/dleq.h"
#include "src/crypto/elgamal.h"

namespace votegral {

// One tallier's pass over a ciphertext list.
struct TaggingStep {
  size_t member_index = 0;
  std::vector<ElGamalCiphertext> output;
  std::vector<DleqTranscript> proofs;  // one per ciphertext

  // Canonical wire bytes of `output`, filled by the prover in the same
  // parallel pass that computed the points (each proof's challenge hashes
  // them anyway, so they are free to retain). Attacker data on the verify
  // side: VerifyChain decodes and recompares them before they may enter any
  // statement cache — exactly the MixItem rule. Empty on legacy transcripts.
  std::vector<ElGamalWire> output_wire;

  bool HasWire() const { return !output.empty() && output_wire.size() == output.size(); }
};

// The tagging committee. In deployment these secrets live on the same
// servers as the authority's decryption shares; they are separate keys with
// separate proofs.
class TaggingService {
 public:
  static TaggingService Create(size_t members, Rng& rng);

  size_t size() const { return secrets_.size(); }
  const std::vector<RistrettoPoint>& commitments() const { return commitments_; }

  // Member `i` exponentiates every ciphertext by z_i and proves it.
  // Ciphertexts fan out across the executor; proof nonces come from forked
  // per-shard streams, so the step is reproducible at any thread count.
  //
  // `input_wire`, when non-empty, must be the canonical bytes of `input`
  // from a source the caller produced or validated (previous step's
  // output_wire, a validated mix column); the proof statements then hash
  // those bytes instead of re-encoding the input points. The produced step
  // carries output_wire either way, and the transcript is byte-identical
  // with or without the threading.
  TaggingStep Apply(size_t member, const std::vector<ElGamalCiphertext>& input, Rng& rng,
                    Executor& executor = Executor::Global(),
                    std::span<const ElGamalWire> input_wire = {}) const;

  // Pre-sizes a TaggingStep for an n-ciphertext pass by `member` (output,
  // proofs, and output_wire resized; member_index set). Pair with
  // ApplyShardRange for chunk-granular scheduling.
  TaggingStep PrepareStep(size_t member, size_t n) const;

  // Fills output slots [begin, end) of a PrepareStep'd `step`: exponentiates
  // input[i] by z_member, encodes the output wire, and proves the DLEQ with
  // nonces from `child` (the forked stream for this shard). `input_wire`,
  // when non-empty, backs the statement caches exactly as in Apply;
  // `commitment_wire` is the member's pre-encoded commitment. Disjoint
  // ranges may run concurrently; the bytes produced are identical to
  // Apply's for the same shard/seed split.
  void ApplyShardRange(size_t member, std::span<const ElGamalCiphertext> input,
                       std::span<const ElGamalWire> input_wire,
                       const CompressedRistretto& commitment_wire, size_t begin, size_t end,
                       Rng& child, TaggingStep& step) const;

  // Verifies one member's step against its input and commitment, proof by
  // proof (the localization path; names the first bad index).
  static Status VerifyStep(const TaggingStep& step,
                           const std::vector<ElGamalCiphertext>& input,
                           const RistrettoPoint& commitment,
                           Executor& executor = Executor::Global());

  // Runs all members sequentially, collecting each step and threading each
  // step's wire bytes into the next statement's cache. Returns the final
  // tagged ciphertexts.
  std::vector<ElGamalCiphertext> ApplyAll(const std::vector<ElGamalCiphertext>& input,
                                          std::vector<TaggingStep>* steps, Rng& rng,
                                          Executor& executor = Executor::Global(),
                                          std::span<const ElGamalWire> input_wire = {}) const;

  // Verifies a full chain of steps (step i's input is step i-1's output).
  // All steps' proofs are checked as one batched MSM with deterministic
  // weights; on rejection the per-step path re-runs to name the offending
  // member and index.
  //
  // Wire handling: every step's output_wire (attacker data) is decoded and
  // recompared before it backs any statement cache — a stale cache is a
  // localized failure; steps without caches are encoded fresh, once per
  // chain instead of once per proof. `input_wire` optionally supplies
  // already-validated bytes for the chain input (the verifier threads the
  // mix column caches VerifyRpcMixCascade checked).
  static Status VerifyChain(const std::vector<ElGamalCiphertext>& input,
                            const std::vector<TaggingStep>& steps,
                            const std::vector<RistrettoPoint>& commitments,
                            Executor& executor = Executor::Global(),
                            std::span<const ElGamalWire> input_wire = {});

  // Test helper: the combined exponent Πz_t.
  Scalar CombinedExponent() const;

 private:
  std::vector<Scalar> secrets_;
  std::vector<RistrettoPoint> commitments_;
};

}  // namespace votegral

#endif  // SRC_VOTEGRAL_TAGGING_H_
