#include "src/votegral/election.h"

namespace votegral {

namespace {

TripSystem MakeTrip(const ElectionConfig& config, Rng& rng) {
  TripSystemParams params;
  params.authority_members = config.authority_members;
  params.authority_threshold = config.authority_threshold;
  params.roster = config.roster;
  params.storage = config.storage;
  return TripSystem::Create(params, rng);
}

}  // namespace

Election::Election(ElectionConfig config, Rng& rng)
    : config_(std::move(config)),
      trip_(MakeTrip(config_, rng)),
      tagging_(TaggingService::Create(config_.tagging_members, rng)),
      candidates_(config_.candidates),
      dedicated_executor_(config_.threads != 0 ? std::make_unique<Executor>(config_.threads)
                                               : nullptr) {}

Executor& Election::executor() const {
  return dedicated_executor_ != nullptr ? *dedicated_executor_ : Executor::Global();
}

Outcome<RegisteredVoter> Election::Register(const std::string& voter_id, size_t fake_count,
                                            Vsd& vsd, Rng& rng) {
  return RegisterAndActivate(trip_, voter_id, fake_count, vsd, rng);
}

std::optional<size_t> Election::CandidateIndex(const std::string& candidate) const {
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_.name(i) == candidate) {
      return i;
    }
  }
  return std::nullopt;
}

Status Election::Cast(const ActivatedCredential& credential, const std::string& candidate,
                      Rng& rng) {
  std::optional<size_t> index = CandidateIndex(candidate);
  if (!index.has_value()) {
    return Status::Error("election: unknown candidate: " + candidate);
  }
  if (config_.revoting) {
    uint64_t& next = revote_counters_[credential.credential_pk];
    RevoteBallot ballot = MakeRevoteBallot(credential, candidates_, *index,
                                           trip_.authority_pk(), next, rng);
    ++next;
    trip_.ledger().PostBallot(ballot.Serialize());
    return Status::Ok();
  }
  Ballot ballot = MakeBallot(credential, candidates_, *index, trip_.authority_pk(), rng);
  trip_.ledger().PostBallot(ballot.Serialize());
  return Status::Ok();
}

Status Election::CastRevote(const ActivatedCredential& credential, const std::string& candidate,
                            uint64_t counter, Rng& rng) {
  if (!config_.revoting) {
    return Status::Error("election: CastRevote requires config.revoting");
  }
  std::optional<size_t> index = CandidateIndex(candidate);
  if (!index.has_value()) {
    return Status::Error("election: unknown candidate: " + candidate);
  }
  RevoteBallot ballot = MakeRevoteBallot(credential, candidates_, *index,
                                         trip_.authority_pk(), counter, rng);
  trip_.ledger().PostBallot(ballot.Serialize());
  return Status::Ok();
}

TallyOutput Election::Tally(Rng& rng) const {
  // Dereferencing a failed Outcome throws ProtocolError carrying the coded
  // reason — the old abort-on-failure contract, now with localized blame.
  Outcome<TallyOutput> outcome = TryTally(rng);
  return std::move(*outcome);
}

Outcome<TallyOutput> Election::TryTally(Rng& rng) const {
  TallyService service(trip_.authority(), tagging_, config_.mix_pairs, executor(),
                       config_.retry_policy, config_.tally_engine, config_.revoting,
                       config_.revote_padding);
  return service.Run(trip_.ledger(), candidates_, trip_.authorized_kiosks(), rng);
}

Status Election::Verify(const TallyOutput& output) const {
  return VerifyElection(trip_.ledger(), verifier_params(), candidates_, output, executor());
}

VerifierParams Election::verifier_params() const {
  VerifierParams params;
  params.authority_pk = trip_.authority_pk();
  for (size_t i = 0; i < trip_.authority().size(); ++i) {
    params.authority_shares.push_back(trip_.authority().member(i).public_share);
  }
  params.authority_threshold =
      trip_.authority().is_threshold() ? trip_.authority().threshold() : 0;
  params.tagging_commitments = tagging_.commitments();
  params.authorized_kiosks = trip_.authorized_kiosks();
  params.authorized_officials = trip_.authorized_officials();
  params.revoting = config_.revoting;
  params.revote_padding = config_.revote_padding;
  return params;
}

}  // namespace votegral
