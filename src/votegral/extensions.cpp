#include "src/votegral/extensions.h"

#include "src/common/serde.h"

namespace votegral {

// ---------------------------------------------------------------------------
// C.1 — Voting history
// ---------------------------------------------------------------------------

void VotingHistory::Record(const CompressedRistretto& credential_pk,
                           const std::string& candidate, uint64_t ledger_index,
                           const Bytes& ballot_payload) {
  HistoryEntry entry;
  entry.credential_pk = credential_pk;
  entry.candidate = candidate;
  entry.ledger_index = ledger_index;
  entry.ballot_hash = Sha256::Hash(ballot_payload);
  entries_.push_back(std::move(entry));
}

std::vector<HistoryEntry> VotingHistory::ForCredential(
    const CompressedRistretto& credential_pk) const {
  std::vector<HistoryEntry> out;
  for (const HistoryEntry& entry : entries_) {
    if (entry.credential_pk == credential_pk) {
      out.push_back(entry);
    }
  }
  return out;
}

Status VotingHistory::VerifyAgainstLedger(const PublicLedger& ledger) const {
  // One cursor for the whole pass: history entries are usually clustered,
  // so segment pins get reused across seeks.
  LedgerCursor cursor = ledger.BallotCursor();
  LedgerEntryView view;
  for (const HistoryEntry& entry : entries_) {
    if (entry.ledger_index >= ledger.BallotCount()) {
      return Status::Error("history: recorded ballot index beyond ledger");
    }
    cursor.Seek(entry.ledger_index);
    Require(cursor.Next(&view), "history: ballot cursor read failed");
    auto hash = Sha256::Hash(view.payload);
    if (hash != entry.ballot_hash) {
      return Status::Error("history: ledger ballot differs from recorded cast");
    }
  }
  return Status::Ok();
}

Outcome<HistoryDecryption> DecryptOwnVote(const ElectionAuthority& authority,
                                          const PublicLedger& ledger,
                                          const ActivatedCredential& credential,
                                          uint64_t ledger_index, Rng& rng) {
  using Out = Outcome<HistoryDecryption>;
  if (ledger_index >= ledger.BallotCount()) {
    return Out::Fail("history: no such ballot on the ledger");
  }
  LedgerCursor cursor = ledger.BallotCursor(ledger_index, ledger_index + 1);
  LedgerEntryView entry_view;
  Require(cursor.Next(&entry_view), "history: ballot cursor read failed");
  auto ballot = Ballot::Parse(entry_view.payload);
  if (!ballot.has_value()) {
    return Out::Fail("history: ledger entry is not a ballot");
  }
  // Ownership proof: the requester must control the credential that cast
  // this ballot (sign a fresh context binding the request).
  if (!(ballot->credential_pk == credential.credential_pk)) {
    return Out::Fail("history: ballot was cast with a different credential");
  }
  SchnorrKeyPair key = SchnorrKeyPair::FromSecret(credential.credential_sk);
  ByteWriter w;
  w.Str("votegral/ext/history-request/v1");
  w.U64(ledger_index);
  auto request_sig = key.Sign(w.bytes(), rng);
  if (!SchnorrVerify(credential.credential_pk, w.bytes(), request_sig).ok()) {
    return Out::Fail("history: ownership proof failed");
  }
  // Each authority member returns a verifiable share; the device combines
  // locally, so no member learns the vote.
  HistoryDecryption result;
  for (size_t m = 0; m < authority.size(); ++m) {
    auto share = authority.ComputeShare(m, ballot->encrypted_vote, rng);
    if (!authority.VerifyShare(ballot->encrypted_vote, share).ok()) {
      return Out::Fail("history: authority returned an invalid share");
    }
    result.shares.push_back(std::move(share));
  }
  result.vote_point = authority.CombineShares(ballot->encrypted_vote, result.shares);
  return Out::Ok(std::move(result));
}

// ---------------------------------------------------------------------------
// C.2 — Credential rotation
// ---------------------------------------------------------------------------

Bytes CredentialTransfer::SignedPayload() const {
  ByteWriter w;
  w.Str("votegral/ext/credential-transfer/v1");
  w.Fixed(old_pk);
  w.Fixed(new_pk);
  return w.Take();
}

RotatedCredential RotateCredential(const ActivatedCredential& credential, Rng& rng) {
  SchnorrKeyPair old_key = SchnorrKeyPair::FromSecret(credential.credential_sk);
  SchnorrKeyPair new_key = SchnorrKeyPair::Generate(rng);

  RotatedCredential rotated;
  rotated.transfer.old_pk = old_key.public_bytes();
  rotated.transfer.new_pk = new_key.public_bytes();
  rotated.transfer.transfer_sig = old_key.Sign(rotated.transfer.SignedPayload(), rng);

  rotated.credential = credential;
  rotated.credential.credential_sk = new_key.secret();
  rotated.credential.credential_pk = new_key.public_bytes();
  // The kiosk certificate still covers the *original* key; ballot validation
  // resolves through the transfer table (ValidateWithTransfers).
  return rotated;
}

Status TransferRegistry::Register(const CredentialTransfer& transfer) {
  Status sig = SchnorrVerify(transfer.old_pk, transfer.SignedPayload(), transfer.transfer_sig);
  if (!sig.ok()) {
    return Status::Error("transfer: signature by old key invalid");
  }
  if (rotated_old_keys_.count(transfer.old_pk) > 0) {
    return Status::Error("transfer: old key already rotated (replay?)");
  }
  if (by_new_pk_.count(transfer.new_pk) > 0) {
    return Status::Error("transfer: new key already registered");
  }
  by_new_pk_[transfer.new_pk] = transfer;
  rotated_old_keys_.insert(transfer.old_pk);
  return Status::Ok();
}

CompressedRistretto TransferRegistry::ResolveToOriginal(const CompressedRistretto& pk) const {
  CompressedRistretto current = pk;
  // Follow rotation chains (device -> newer device -> ...), bounded to avoid
  // malicious cycles.
  for (int hops = 0; hops < 16; ++hops) {
    auto it = by_new_pk_.find(current);
    if (it == by_new_pk_.end()) {
      return current;
    }
    current = it->second.old_pk;
  }
  return current;
}

std::vector<Ballot> ValidateWithTransfers(
    const PublicLedger& ledger, const std::set<CompressedRistretto>& authorized_kiosks,
    const TransferRegistry& registry, TallyDiscards* discards) {
  Require(discards != nullptr, "extensions: discards output required");
  std::map<CompressedRistretto, Ballot> latest;
  std::map<CompressedRistretto, size_t> first_seen_order;
  size_t order = 0;
  LedgerCursor cursor = ledger.BallotCursor();
  LedgerEntryView view;
  while (cursor.Next(&view)) {
    auto ballot = Ballot::Parse(view.payload);
    if (!ballot.has_value()) {
      ++discards->invalid_structure;
      continue;
    }
    // The credential signature is checked against the *casting* key; the
    // kiosk certificate against the resolved original key.
    if (authorized_kiosks.count(ballot->kiosk_pk) == 0 ||
        !SchnorrVerify(ballot->credential_pk, ballot->SignedPayload(),
                       ballot->credential_sig)
             .ok()) {
      ++discards->invalid_signature;
      continue;
    }
    CompressedRistretto original = registry.ResolveToOriginal(ballot->credential_pk);
    Status cert = SchnorrVerify(
        ballot->kiosk_pk, ResponseSegment::SignedPayload(original, ballot->kiosk_cert_hash),
        ballot->kiosk_cert);
    if (!cert.ok()) {
      ++discards->invalid_signature;
      continue;
    }
    // Rewrite to the original key so the tag join sees kiosk-issued keys.
    Ballot resolved = *ballot;
    resolved.credential_pk = original;
    auto [it, inserted] = latest.insert_or_assign(original, resolved);
    if (inserted) {
      first_seen_order[original] = order++;
    } else {
      ++discards->superseded;
    }
  }
  std::vector<Ballot> accepted(latest.size());
  for (const auto& [credential, ballot] : latest) {
    accepted[first_seen_order.at(credential)] = ballot;
  }
  return accepted;
}

// ---------------------------------------------------------------------------
// C.3 — Delegation
// ---------------------------------------------------------------------------

DelegationKiosk::DelegationKiosk(SchnorrKeyPair key, Bytes mac_key,
                                 RistrettoPoint authority_pk)
    : Kiosk(std::move(key), std::move(mac_key), authority_pk) {}

Status DelegationKiosk::DelegateSession(const RistrettoPoint& party_pk, Rng& rng) {
  if (!in_session_) {
    return Status::Error("delegation: no active session");
  }
  if (real_issued_ || delegated_) {
    return Status::Error("delegation: session already issued a credential");
  }
  // c_pc encrypts the *party's* public key; the kiosk never needs the
  // party's private key (Appendix C.3).
  ElGamalCiphertext c_pc = ElGamalEncrypt(authority_pk_, party_pk, rng);

  checkout_.voter_id = voter_id_;
  checkout_.public_credential = c_pc;
  checkout_.kiosk_pk = key_.public_bytes();
  checkout_.kiosk_sig = SignCheckout(checkout_, rng);

  // Fake credentials issued from here on reference the delegated c_pc.
  real_issued_ = true;
  delegated_ = true;
  session_public_credential_ = c_pc;
  session_checkout_ = checkout_;
  RecordAction(KioskAction::kPrintedCheckoutAndResponse);
  return Status::Ok();
}

Outcome<CheckOutSegment> DelegationKiosk::delegated_checkout() const {
  if (!delegated_) {
    return Outcome<CheckOutSegment>::Fail("delegation: session did not delegate");
  }
  return Outcome<CheckOutSegment>::Ok(checkout_);
}

}  // namespace votegral
