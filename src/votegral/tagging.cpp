#include "src/votegral/tagging.h"

#include "src/crypto/batch.h"
#include "src/crypto/drbg.h"

namespace votegral {

namespace {

constexpr std::string_view kTagDomain = "votegral/tagging/step/v1";
constexpr std::string_view kChainWeightDomain = "votegral/tagging/chain-batch-weights/v1";

DleqStatement TagStatement(const ElGamalCiphertext& input, const ElGamalCiphertext& output,
                           const RistrettoPoint& commitment) {
  DleqStatement statement;
  statement.bases = {RistrettoPoint::Base(), input.c1, input.c2};
  statement.publics = {commitment, output.c1, output.c2};
  return statement;
}

}  // namespace

TaggingService TaggingService::Create(size_t members, Rng& rng) {
  Require(members >= 1, "tagging: need at least one member");
  TaggingService service;
  service.secrets_.reserve(members);
  service.commitments_.reserve(members);
  for (size_t i = 0; i < members; ++i) {
    Scalar z = Scalar::Random(rng);
    service.secrets_.push_back(z);
    service.commitments_.push_back(RistrettoPoint::MulBase(z));
  }
  return service;
}

TaggingStep TaggingService::Apply(size_t member, const std::vector<ElGamalCiphertext>& input,
                                  Rng& rng, Executor& executor) const {
  const Scalar& z = secrets_.at(member);
  Executor::Scope scope(executor);
  TaggingStep step;
  step.member_index = member;
  step.output.resize(input.size());
  step.proofs.resize(input.size());
  // Each ciphertext costs two exponentiations plus a 3-element proof (three
  // more scalar multiplications): the per-ballot hot loop of the tagging
  // stage. Shards are fixed by input size; nonces come from forked streams.
  auto shards = Executor::Shards(input.size(), Executor::kRngShards);
  auto seeds = ForkRngSeeds(rng, shards.size());
  executor.ParallelForEach(shards.size(), [&](size_t s) {
    ChaChaRng child(seeds[s]);
    for (size_t i = shards[s].first; i < shards[s].second; ++i) {
      ElGamalCiphertext out = input[i].ExponentiateBy(z);
      step.proofs[i] = ProveDleqFs(
          kTagDomain, TagStatement(input[i], out, commitments_[member]), z, child);
      step.output[i] = out;
    }
  });
  return step;
}

Status TaggingService::VerifyStep(const TaggingStep& step,
                                  const std::vector<ElGamalCiphertext>& input,
                                  const RistrettoPoint& commitment, Executor& executor) {
  if (step.output.size() != input.size() || step.proofs.size() != input.size()) {
    return Status::Error("tagging: step size mismatch");
  }
  if (auto i = ParallelFirstFailure(executor, input.size(), [&](size_t i) {
        return VerifyDleqFs(kTagDomain, TagStatement(input[i], step.output[i], commitment),
                            step.proofs[i])
            .ok();
      });
      i.has_value()) {
    // Re-run the single failing item for its exact reason string.
    Status ok = VerifyDleqFs(kTagDomain,
                             TagStatement(input[*i], step.output[*i], commitment),
                             step.proofs[*i]);
    return Status::Error("tagging: proof " + std::to_string(*i) +
                         " invalid: " + ok.reason());
  }
  return Status::Ok();
}

std::vector<ElGamalCiphertext> TaggingService::ApplyAll(
    const std::vector<ElGamalCiphertext>& input, std::vector<TaggingStep>* steps, Rng& rng,
    Executor& executor) const {
  Require(steps != nullptr, "tagging: steps output required");
  steps->clear();
  std::vector<ElGamalCiphertext> current = input;
  for (size_t member = 0; member < secrets_.size(); ++member) {
    TaggingStep step = Apply(member, current, rng, executor);
    current = step.output;
    steps->push_back(std::move(step));
  }
  return current;
}

Status TaggingService::VerifyChain(const std::vector<ElGamalCiphertext>& input,
                                   const std::vector<TaggingStep>& steps,
                                   const std::vector<RistrettoPoint>& commitments,
                                   Executor& executor) {
  if (steps.size() != commitments.size()) {
    return Status::Error("tagging: step count does not match committee size");
  }
  Executor::Scope scope(executor);  // the batched MSM below follows this pool
  // Structural pass, then every proof of every step into one DLEQ batch.
  const std::vector<ElGamalCiphertext>* current = &input;
  std::vector<DleqBatchEntry> batch;
  batch.reserve(steps.size() * input.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].member_index != i) {
      return Status::Error("tagging: steps out of order");
    }
    if (steps[i].output.size() != current->size() ||
        steps[i].proofs.size() != current->size()) {
      return Status::Error("tagging: step size mismatch");
    }
    for (size_t j = 0; j < current->size(); ++j) {
      DleqBatchEntry entry;
      entry.domain = std::string(kTagDomain);
      entry.statement = TagStatement((*current)[j], steps[i].output[j], commitments[i]);
      entry.transcript = steps[i].proofs[j];
      batch.push_back(std::move(entry));
    }
    current = &steps[i].output;
  }
  ChaChaRng weights(DleqBatchWeightSeed(kChainWeightDomain, batch));
  if (BatchVerifyDleq(batch, weights).ok()) {
    return Status::Ok();
  }
  // Localize: re-verify step by step, item by item.
  current = &input;
  for (size_t i = 0; i < steps.size(); ++i) {
    Status ok = VerifyStep(steps[i], *current, commitments[i], executor);
    if (!ok.ok()) {
      return ok;
    }
    current = &steps[i].output;
  }
  return Status::Error("tagging: batched chain check failed");
}

Scalar TaggingService::CombinedExponent() const {
  Scalar product = Scalar::One();
  for (const Scalar& z : secrets_) {
    product = product * z;
  }
  return product;
}

}  // namespace votegral
