#include "src/votegral/tagging.h"

namespace votegral {

namespace {

constexpr std::string_view kTagDomain = "votegral/tagging/step/v1";

DleqStatement TagStatement(const ElGamalCiphertext& input, const ElGamalCiphertext& output,
                           const RistrettoPoint& commitment) {
  DleqStatement statement;
  statement.bases = {RistrettoPoint::Base(), input.c1, input.c2};
  statement.publics = {commitment, output.c1, output.c2};
  return statement;
}

}  // namespace

TaggingService TaggingService::Create(size_t members, Rng& rng) {
  Require(members >= 1, "tagging: need at least one member");
  TaggingService service;
  service.secrets_.reserve(members);
  service.commitments_.reserve(members);
  for (size_t i = 0; i < members; ++i) {
    Scalar z = Scalar::Random(rng);
    service.secrets_.push_back(z);
    service.commitments_.push_back(RistrettoPoint::MulBase(z));
  }
  return service;
}

TaggingStep TaggingService::Apply(size_t member, const std::vector<ElGamalCiphertext>& input,
                                  Rng& rng) const {
  const Scalar& z = secrets_.at(member);
  TaggingStep step;
  step.member_index = member;
  step.output.reserve(input.size());
  step.proofs.reserve(input.size());
  for (const ElGamalCiphertext& ct : input) {
    ElGamalCiphertext out = ct.ExponentiateBy(z);
    step.proofs.push_back(
        ProveDleqFs(kTagDomain, TagStatement(ct, out, commitments_[member]), z, rng));
    step.output.push_back(out);
  }
  return step;
}

Status TaggingService::VerifyStep(const TaggingStep& step,
                                  const std::vector<ElGamalCiphertext>& input,
                                  const RistrettoPoint& commitment) {
  if (step.output.size() != input.size() || step.proofs.size() != input.size()) {
    return Status::Error("tagging: step size mismatch");
  }
  for (size_t i = 0; i < input.size(); ++i) {
    Status ok = VerifyDleqFs(kTagDomain, TagStatement(input[i], step.output[i], commitment),
                             step.proofs[i]);
    if (!ok.ok()) {
      return Status::Error("tagging: proof " + std::to_string(i) +
                           " invalid: " + ok.reason());
    }
  }
  return Status::Ok();
}

std::vector<ElGamalCiphertext> TaggingService::ApplyAll(
    const std::vector<ElGamalCiphertext>& input, std::vector<TaggingStep>* steps,
    Rng& rng) const {
  Require(steps != nullptr, "tagging: steps output required");
  steps->clear();
  std::vector<ElGamalCiphertext> current = input;
  for (size_t member = 0; member < secrets_.size(); ++member) {
    TaggingStep step = Apply(member, current, rng);
    current = step.output;
    steps->push_back(std::move(step));
  }
  return current;
}

Status TaggingService::VerifyChain(const std::vector<ElGamalCiphertext>& input,
                                   const std::vector<TaggingStep>& steps,
                                   const std::vector<RistrettoPoint>& commitments) {
  if (steps.size() != commitments.size()) {
    return Status::Error("tagging: step count does not match committee size");
  }
  const std::vector<ElGamalCiphertext>* current = &input;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].member_index != i) {
      return Status::Error("tagging: steps out of order");
    }
    Status ok = VerifyStep(steps[i], *current, commitments[i]);
    if (!ok.ok()) {
      return ok;
    }
    current = &steps[i].output;
  }
  return Status::Ok();
}

Scalar TaggingService::CombinedExponent() const {
  Scalar product = Scalar::One();
  for (const Scalar& z : secrets_) {
    product = product * z;
  }
  return product;
}

}  // namespace votegral
