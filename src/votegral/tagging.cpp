#include "src/votegral/tagging.h"

#include <algorithm>

#include "src/crypto/batch.h"
#include "src/crypto/drbg.h"

namespace votegral {

namespace {

constexpr std::string_view kTagDomain = "votegral/tagging/step/v1";
constexpr std::string_view kChainWeightDomain = "votegral/tagging/chain-batch-weights/v1";

DleqStatement TagStatement(const ElGamalCiphertext& input, const ElGamalCiphertext& output,
                           const RistrettoPoint& commitment) {
  DleqStatement statement;
  statement.bases = {RistrettoPoint::Base(), input.c1, input.c2};
  statement.publics = {commitment, output.c1, output.c2};
  return statement;
}

// Wire-carrying statement: same points, plus the canonical bytes every
// challenge hash would otherwise recompute (one inverse sqrt per point).
// Callers vouch for the bytes (producer-local trust, src/crypto/dleq.h).
DleqStatement TagStatementWire(const ElGamalCiphertext& input, const ElGamalWire& input_wire,
                               const ElGamalCiphertext& output,
                               const ElGamalWire& output_wire,
                               const RistrettoPoint& commitment,
                               const CompressedRistretto& commitment_wire) {
  DleqStatement statement = TagStatement(input, output, commitment);
  statement.base_wire = {RistrettoPoint::BaseWire(), ElGamalWireHalf(input_wire, 0),
                         ElGamalWireHalf(input_wire, 1)};
  statement.public_wire = {commitment_wire, ElGamalWireHalf(output_wire, 0),
                           ElGamalWireHalf(output_wire, 1)};
  return statement;
}

}  // namespace

TaggingService TaggingService::Create(size_t members, Rng& rng) {
  Require(members >= 1, "tagging: need at least one member");
  TaggingService service;
  service.secrets_.reserve(members);
  service.commitments_.reserve(members);
  for (size_t i = 0; i < members; ++i) {
    Scalar z = Scalar::Random(rng);
    service.secrets_.push_back(z);
    service.commitments_.push_back(RistrettoPoint::MulBase(z));
  }
  return service;
}

TaggingStep TaggingService::PrepareStep(size_t member, size_t n) const {
  Require(member < secrets_.size(), "tagging: member out of range");
  TaggingStep step;
  step.member_index = member;
  step.output.resize(n);
  step.proofs.resize(n);
  step.output_wire.resize(n);
  return step;
}

void TaggingService::ApplyShardRange(size_t member, std::span<const ElGamalCiphertext> input,
                                     std::span<const ElGamalWire> input_wire,
                                     const CompressedRistretto& commitment_wire, size_t begin,
                                     size_t end, Rng& child, TaggingStep& step) const {
  const Scalar& z = secrets_.at(member);
  Require(end <= input.size() && step.output.size() == input.size(),
          "tagging: shard range outside prepared step");
  Require(input_wire.empty() || input_wire.size() == input.size(),
          "tagging: input wire size mismatch");
  for (size_t i = begin; i < end; ++i) {
    ElGamalCiphertext out = input[i].ExponentiateBy(z);
    // Output bytes are encoded here, once, while the points are hot; the
    // proof hashes them now and the step retains them for the next
    // member's input statements and the decrypt stage.
    ElGamalWire out_wire = out.Wire();
    ElGamalWire in_wire = input_wire.empty() ? input[i].Wire() : input_wire[i];
    step.proofs[i] = ProveDleqFs(
        kTagDomain,
        TagStatementWire(input[i], in_wire, out, out_wire, commitments_[member],
                         commitment_wire),
        z, child);
    step.output[i] = out;
    step.output_wire[i] = out_wire;
  }
}

TaggingStep TaggingService::Apply(size_t member, const std::vector<ElGamalCiphertext>& input,
                                  Rng& rng, Executor& executor,
                                  std::span<const ElGamalWire> input_wire) const {
  Require(input_wire.empty() || input_wire.size() == input.size(),
          "tagging: input wire size mismatch");
  Executor::Scope scope(executor);
  TaggingStep step = PrepareStep(member, input.size());
  // The commitment appears in every statement of the step: encode it once
  // here instead of once per ciphertext inside the challenge hash.
  const CompressedRistretto commitment_wire = commitments_[member].Encode();
  // Each ciphertext costs two exponentiations plus a 3-element proof (three
  // more scalar multiplications): the per-ballot hot loop of the tagging
  // stage. Shards are fixed by input size; nonces come from forked streams.
  auto shards = Executor::Shards(input.size(), Executor::kRngShards);
  auto seeds = ForkRngSeeds(rng, shards.size());
  executor.ParallelForEach(shards.size(), [&](size_t s) {
    ChaChaRng child(seeds[s]);
    ApplyShardRange(member, input, input_wire, commitment_wire, shards[s].first,
                    shards[s].second, child, step);
  });
  return step;
}

Status TaggingService::VerifyStep(const TaggingStep& step,
                                  const std::vector<ElGamalCiphertext>& input,
                                  const RistrettoPoint& commitment, Executor& executor) {
  if (step.output.size() != input.size() || step.proofs.size() != input.size()) {
    return Status::Error("tagging: step size mismatch");
  }
  if (auto i = ParallelFirstFailure(executor, input.size(), [&](size_t i) {
        return VerifyDleqFs(kTagDomain, TagStatement(input[i], step.output[i], commitment),
                            step.proofs[i])
            .ok();
      });
      i.has_value()) {
    // Re-run the single failing item for its exact reason string.
    Status ok = VerifyDleqFs(kTagDomain,
                             TagStatement(input[*i], step.output[*i], commitment),
                             step.proofs[*i]);
    return Status::Error("tagging: proof " + std::to_string(*i) +
                         " invalid: " + ok.reason());
  }
  return Status::Ok();
}

std::vector<ElGamalCiphertext> TaggingService::ApplyAll(
    const std::vector<ElGamalCiphertext>& input, std::vector<TaggingStep>* steps, Rng& rng,
    Executor& executor, std::span<const ElGamalWire> input_wire) const {
  Require(steps != nullptr, "tagging: steps output required");
  steps->clear();
  std::vector<ElGamalCiphertext> current = input;
  std::vector<ElGamalWire> current_wire(input_wire.begin(), input_wire.end());
  for (size_t member = 0; member < secrets_.size(); ++member) {
    TaggingStep step = Apply(member, current, rng, executor, current_wire);
    current = step.output;
    current_wire = step.output_wire;  // each step feeds the next one's statements
    steps->push_back(std::move(step));
  }
  return current;
}

Status TaggingService::VerifyChain(const std::vector<ElGamalCiphertext>& input,
                                   const std::vector<TaggingStep>& steps,
                                   const std::vector<RistrettoPoint>& commitments,
                                   Executor& executor,
                                   std::span<const ElGamalWire> input_wire) {
  if (steps.size() != commitments.size()) {
    return Status::Error("tagging: step count does not match committee size");
  }
  Executor::Scope scope(executor);  // the batched MSM below follows this pool
  // Structural pass.
  const std::vector<ElGamalCiphertext>* current = &input;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].member_index != i) {
      return Status::Error("tagging: steps out of order");
    }
    if (steps[i].output.size() != current->size() ||
        steps[i].proofs.size() != current->size()) {
      return Status::Error("tagging: step size mismatch");
    }
    current = &steps[i].output;
  }

  // Wire pass: produce per-step ciphertext bytes the statement caches can
  // trust. Steps carrying output_wire are attacker data — decode every
  // cached point back and recompare in one pooled pass (the MixItem rule);
  // a mismatch is a localized failure. Cacheless steps (and a cacheless
  // chain input) are encoded fresh — once per chain, where the pre-wire
  // verifier paid one encode per point per challenge hash.
  const size_t n = input.size();
  std::vector<ElGamalWire> fresh_input_wire;
  std::span<const ElGamalWire> in_wire = input_wire;
  if (in_wire.size() != n) {
    fresh_input_wire.resize(n);
    executor.ParallelForEach(n, [&](size_t j) { fresh_input_wire[j] = input[j].Wire(); });
    in_wire = fresh_input_wire;
  }
  std::vector<std::vector<ElGamalWire>> fresh_step_wire(steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].HasWire()) {
      continue;
    }
    fresh_step_wire[i].resize(n);
    executor.ParallelForEach(
        n, [&, i](size_t j) { fresh_step_wire[i][j] = steps[i].output[j].Wire(); });
  }
  {
    // Flat decode of every cached component (2 points per ciphertext).
    std::vector<CompressedRistretto> cache_bytes;
    std::vector<std::pair<size_t, size_t>> cache_slot;  // (step, item)
    for (size_t i = 0; i < steps.size(); ++i) {
      if (!steps[i].HasWire()) {
        continue;
      }
      for (size_t j = 0; j < n; ++j) {
        cache_bytes.push_back(ElGamalWireHalf(steps[i].output_wire[j], 0));
        cache_bytes.push_back(ElGamalWireHalf(steps[i].output_wire[j], 1));
        cache_slot.emplace_back(i, j);
      }
    }
    std::vector<RistrettoPoint> cache_points(cache_bytes.size());
    std::vector<uint8_t> cache_ok(cache_bytes.size(), 0);
    BatchDecodePoints(cache_bytes, cache_points, cache_ok);
    std::vector<uint8_t> bad(cache_slot.size(), 0);
    executor.ParallelForEach(cache_slot.size(), [&](size_t k) {
      auto [i, j] = cache_slot[k];
      const ElGamalCiphertext& ct = steps[i].output[j];
      if (!cache_ok[2 * k] || !cache_ok[2 * k + 1] ||
          !(cache_points[2 * k] == ct.c1) || !(cache_points[2 * k + 1] == ct.c2)) {
        bad[k] = 1;
      }
    });
    if (auto k = FirstMarked(bad); k.has_value()) {
      auto [i, j] = cache_slot[*k];
      return Status::Error("tagging: step " + std::to_string(i) +
                           " output wire cache does not match ciphertexts at index " +
                           std::to_string(j));
    }
  }

  // Every proof of every step into one DLEQ batch over wire-backed
  // statements: challenge recomputation is SHA-only.
  std::vector<DleqBatchEntry> batch;
  batch.reserve(steps.size() * n);
  current = &input;
  std::span<const ElGamalWire> current_wire = in_wire;
  for (size_t i = 0; i < steps.size(); ++i) {
    const CompressedRistretto commitment_wire = commitments[i].Encode();
    std::span<const ElGamalWire> step_wire =
        steps[i].HasWire() ? std::span<const ElGamalWire>(steps[i].output_wire)
                           : std::span<const ElGamalWire>(fresh_step_wire[i]);
    for (size_t j = 0; j < current->size(); ++j) {
      DleqBatchEntry entry;
      entry.domain = std::string(kTagDomain);
      entry.statement =
          TagStatementWire((*current)[j], current_wire[j], steps[i].output[j], step_wire[j],
                           commitments[i], commitment_wire);
      entry.transcript = steps[i].proofs[j];
      batch.push_back(std::move(entry));
    }
    current = &steps[i].output;
    current_wire = step_wire;
  }
  ChaChaRng weights(DleqBatchWeightSeed(kChainWeightDomain, batch));
  if (BatchVerifyDleq(batch, weights).ok()) {
    return Status::Ok();
  }
  // Localize: re-verify step by step, item by item.
  current = &input;
  for (size_t i = 0; i < steps.size(); ++i) {
    Status ok = VerifyStep(steps[i], *current, commitments[i], executor);
    if (!ok.ok()) {
      return ok;
    }
    current = &steps[i].output;
  }
  return Status::Error("tagging: batched chain check failed");
}

Scalar TaggingService::CombinedExponent() const {
  Scalar product = Scalar::One();
  for (const Scalar& z : secrets_) {
    product = product * z;
  }
  return product;
}

}  // namespace votegral
