// Deniable revoting: supersession dedup with cover-class padding
// (docs/REVOTING.md; the quasilinear filtering of VoteAgain, PAPERS.md,
// grafted onto the Votegral tally).
//
// Under ElectionConfig::revoting every cast posts a RevoteBallot — the
// credential and a per-credential cast counter ride encrypted — and the
// dedup stage becomes a verifiable pipeline of its own:
//
//   pad (dummy groups to the cover envelope) -> mix (width 3) ->
//   tag the credential column -> verifiably decrypt (tag, counter) ->
//   tag-sort -> last-write-wins -> hand the kept [vote, credential]
//   columns to the ordinary mix/tag/join/count pipeline
//
// Everything revealed — tags (blinded pseudonyms), counters, group sizes —
// is revealed only AFTER the revote mix, so nothing links back to board
// rows; the dummy groups lift the revealed group-size multiset to a pure
// function of the accepted-ballot count (the cover envelope), making it
// independent of who revoted. The tally server is the *padding oracle* of
// VoteAgain's trust model: trusted for privacy of the revote pattern (it
// decrypts credentials internally to size the padding), never for
// integrity — every output is replayed by the verifier.
#ifndef SRC_VOTEGRAL_REVOTE_H_
#define SRC_VOTEGRAL_REVOTE_H_

#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/crypto/dkg.h"
#include "src/ledger/subledgers.h"
#include "src/votegral/ballot.h"
#include "src/votegral/mixnet.h"
#include "src/votegral/tagging.h"

namespace votegral {

// Counters (and dummy group sizes) must decode through a fixed lookup table;
// anything >= this limit is an invalid_structure discard at selection time.
inline constexpr uint64_t kRevoteCounterLimit = 256;

// Reverse lookup of a decrypted counter point k*B; nullopt outside
// [0, kRevoteCounterLimit).
std::optional<uint64_t> DecodeCounterPoint(const CompressedRistretto& encoding);

// One dummy group's published opening: `size` members carrying counters
// 0..size-1 under the fresh (never registered) credential d*B. Members are
// trivial encryptions — Enc(.; 0) — so the opening IS the proof of what they
// decrypt to: vote = the bottom point (outside every candidate set),
// credential = d*B (drops at the tag join as unmatched). The first revote
// mix layer re-randomizes them into the crowd.
struct RevoteDummyGroup {
  Scalar credential;
  uint64_t size = 0;
};

// Member j of a dummy group as a width-3 mix item
// [Enc(bottom; 0), Enc(d*B; 0), Enc(j*B; 0)], wire cache filled.
MixItem RevoteDummyItem(const RevoteDummyGroup& group, uint64_t j);

// Batched construction of many dummy members at once, byte-identical to
// calling RevoteDummyItem(groups[slots[k].first], slots[k].second) per slot:
// the credential column costs one scalar multiplication and one (batched)
// encoding per *group* instead of per member, the counter column reads a
// static j -> (j*B, encoding) table shared with DecodeCounterPoint, and each
// item's wire cache is assembled from those bytes without re-encoding.
// `slots` is a flat (group index, member index) list into `groups`;
// out[k] receives the item for slots[k]. Both the padding producer and the
// verifier's opening check build dummies through here, so the two sides
// amortize identically.
void BuildRevoteDummyItems(std::span<const RevoteDummyGroup> groups,
                           std::span<const std::pair<size_t, uint64_t>> slots,
                           std::span<MixItem> out, Executor& executor);

// --- Cover envelope ---------------------------------------------------------
//
// For T accepted ballots the padded board must show, for every cover class
// s = 1..S(T) with S(T) = floor(log2 T) + 1, at least
// ceil(T / 2^(s-1)) groups of size s. Padding with whole dummy groups lifts
// any real group-size multiset (with per-class counts below the targets) to
// exactly the envelope — a pure function of T. Total padded items stay
// <= T + sum(s * ceil(T / 2^(s-1))) <= 5T + O(log^2 T): quasilinear.

// S(T); 0 for T = 0.
size_t RevoteCoverClasses(size_t total);

// The class-s target ceil(T / 2^(s-1)); 0 when s is out of [1, S(T)].
size_t RevoteCoverTarget(size_t total, size_t size);

// Dummy group sizes (ascending) lifting `real_group_sizes` (size -> count of
// real groups) to the envelope of `total` accepted ballots.
std::vector<uint64_t> RevotePaddingPlan(size_t total,
                                        const std::map<uint64_t, size_t>& real_group_sizes);

// --- Selection (tag-sort -> last-write-wins) --------------------------------

struct RevoteSelection {
  std::vector<uint64_t> kept;    // ascending indices of kept items
  size_t superseded = 0;         // dropped members with counters below the max
  size_t duplicate_tag = 0;      // members of groups whose max counter is tied
  size_t invalid_structure = 0;  // undecodable counter points
  // size -> number of groups over decodable members (the multiset the
  // verifier checks against the envelope).
  std::map<uint64_t, size_t> group_sizes;
};

// The production kernel: sorts indices by (tag, counter, index) and sweeps
// runs, keeping the unique-max-counter member of every tag group.
// Quasilinear; a pure function of its inputs — tally and verifier both call
// it, and any auditor can replay it from the published tags and counters.
RevoteSelection SelectLastPerTag(std::span<const CompressedRistretto> tags,
                                 std::span<const CompressedRistretto> counter_points);

// Reference implementation for the differential tests: per-item linear scan
// over the groups discovered so far (quadratic). Must match SelectLastPerTag
// byte for byte on every input.
RevoteSelection SelectLastPerTagQuadratic(std::span<const CompressedRistretto> tags,
                                          std::span<const CompressedRistretto> counter_points);

// --- Transcript -------------------------------------------------------------

// The revote section of the tally transcript (empty in legacy elections —
// the pre-revoting golden digests are untouched).
struct RevoteTranscript {
  std::vector<RevoteBallot> accepted;    // valid board ballots, ledger order
  std::vector<RevoteDummyGroup> dummies; // published padding openings
  MixBatch mix_input;                    // width 3: accepted then dummies
  MixBatch mix_output;
  MixProof mix_proof;
  std::vector<TaggingStep> tag_steps;    // over the credential column
  std::vector<std::vector<DecryptionShare>> tag_shares;
  std::vector<CompressedRistretto> tags;
  std::vector<std::vector<DecryptionShare>> counter_shares;
  std::vector<CompressedRistretto> counter_points;
  std::vector<uint64_t> kept_indices;    // into mix_output, ascending

  bool empty() const {
    return accepted.empty() && dummies.empty() && mix_input.empty();
  }
};

// Validate-stage kernel for revote mode: parses and binding-proof-checks
// ledger ballots [begin, end) off a per-shard cursor, writing positionally
// (same outcome codes as the legacy kernel; disjoint ranges may run
// concurrently).
void RevoteValidateShard(const PublicLedger& ledger, const RistrettoPoint& authority_pk,
                         size_t begin, size_t end,
                         std::vector<std::optional<RevoteBallot>>& validated,
                         std::vector<uint8_t>& outcome);

}  // namespace votegral

#endif  // SRC_VOTEGRAL_REVOTE_H_
