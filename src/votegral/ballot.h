// Ballot formation and validation (Fig. 3 "Vote" stage, Appendix M).
//
// A Votegral ballot carries: an ElGamal encryption of the vote, the casting
// credential's *public* key c_pk (real or fake — indistinguishable), the
// kiosk certificate σ_kr binding c_pk to a registrar-issued credential
// (§4.5 "Credential signing": defeats board flooding and the forged-related-
// credential attacks of [142]), and a Schnorr signature by c_sk over the
// whole ballot.
#ifndef SRC_VOTEGRAL_BALLOT_H_
#define SRC_VOTEGRAL_BALLOT_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/schnorr.h"
#include "src/trip/vsd.h"

namespace votegral {

// The election's choice set. Votes are encoded as hash-to-group points so
// decryption can be matched back by table lookup.
class CandidateList {
 public:
  explicit CandidateList(std::vector<std::string> names);

  size_t size() const { return names_.size(); }
  const std::string& name(size_t i) const { return names_.at(i); }
  const RistrettoPoint& point(size_t i) const { return points_.at(i); }

  // Reverse lookup of a decrypted vote point; nullopt for invalid votes.
  std::optional<size_t> IndexOfPoint(const RistrettoPoint& point) const;

  // Same lookup from an already-computed canonical encoding. The tally and
  // verifier pipelines encode decrypted points in parallel batches; this
  // avoids paying a second Encode inside the sequential counting loop.
  std::optional<size_t> IndexOfEncoding(const CompressedRistretto& encoding) const;

 private:
  std::vector<std::string> names_;
  std::vector<RistrettoPoint> points_;
  std::map<CompressedRistretto, size_t> by_encoding_;
};

// An encrypted ballot as posted on L_V.
struct Ballot {
  ElGamalCiphertext encrypted_vote;
  CompressedRistretto credential_pk{};
  CompressedRistretto kiosk_pk{};
  std::array<uint8_t, 32> kiosk_cert_hash{};  // H(e‖r) bound inside σ_kr
  SchnorrSignature kiosk_cert;                // σ_kr from the receipt
  SchnorrSignature credential_sig;            // by c_sk over the ballot body

  Bytes Serialize() const;
  static std::optional<Ballot> Parse(std::span<const uint8_t> bytes);

  // The byte string credential_sig covers.
  Bytes SignedPayload() const;
};

// Forms a ballot for `candidate_index` using an activated credential.
Ballot MakeBallot(const ActivatedCredential& credential, const CandidateList& candidates,
                  size_t candidate_index, const RistrettoPoint& authority_pk, Rng& rng);

// Structural/eligibility validation performed by the tally service and by
// anyone auditing L_V: credential signature, kiosk certificate, and kiosk
// authorization. Linear-time per ballot — this is the registrar-issued
// credential restriction that keeps Votegral's filtering out of Civitas'
// quadratic PET regime (§7.4).
Status CheckBallot(const Ballot& ballot, const std::set<CompressedRistretto>& authorized_kiosks);

// --- Deniable revoting (docs/REVOTING.md) ----------------------------------
//
// Under ElectionConfig::revoting a cast posts a RevoteBallot instead of a
// Ballot: the credential never appears in the clear (a cleartext c_pk would
// make any re-cast publicly linkable on L_V — exactly the channel a coercer
// watches), and the ballot carries an encrypted per-credential cast counter
// so the supersession dedup can keep the last cast without learning board
// order. Eligibility is deferred to the tag join (unregistered and dummy
// credentials drop as unmatched tags), replacing the kiosk certificate.

// The distinguished non-candidate vote plaintext dummy (padding) ballots
// encrypt: a hash-to-group point outside every candidate set.
const RistrettoPoint& RevoteBottomPoint();

// Knowledge-binding proof for a revote ballot: an Okamoto-style AND-sigma
// PoK of (r, c_sk) with C1 = r*B and C2 = r*A + c_sk*B for the encrypted
// credential (C1, C2), Fiat–Shamir over the whole ballot body. Proves the
// caster knows the credential secret *inside* the encryption — a coercer
// cannot re-randomize someone else's encrypted credential into a fresh
// ballot, and the challenge binds the vote and counter ciphertexts.
struct RevoteBindingProof {
  CompressedRistretto t1{};
  CompressedRistretto t2{};
  Scalar z1;
  Scalar z2;

  // 128-byte wire format: T1 || T2 || z1 || z2.
  Bytes Serialize() const;
  static std::optional<RevoteBindingProof> Parse(std::span<const uint8_t> bytes);
};

// An encrypted revote ballot as posted on L_V (320 bytes — length alone
// distinguishes it from a 288-byte legacy Ballot, so a mixed ledger fails
// structural validation rather than silently merging modes).
struct RevoteBallot {
  ElGamalCiphertext encrypted_vote;
  ElGamalCiphertext encrypted_credential;  // Enc_A(c_pk)
  ElGamalCiphertext encrypted_counter;     // Enc_A(counter * B)
  RevoteBindingProof proof;

  Bytes Serialize() const;
  static std::optional<RevoteBallot> Parse(std::span<const uint8_t> bytes);

  // The byte string the binding proof's challenge covers (everything but the
  // proof itself).
  Bytes BoundPayload() const;
};

// Forms a revote ballot for `candidate_index` with per-credential cast index
// `counter` (0 for the first cast; each re-cast increments).
RevoteBallot MakeRevoteBallot(const ActivatedCredential& credential,
                              const CandidateList& candidates, size_t candidate_index,
                              const RistrettoPoint& authority_pk, uint64_t counter, Rng& rng);

// Structural validation of a revote ballot: parse plus the binding proof.
// No kiosk certificate — eligibility is enforced by the tag join.
Status CheckRevoteBallot(const RevoteBallot& ballot, const RistrettoPoint& authority_pk);

}  // namespace votegral

#endif  // SRC_VOTEGRAL_BALLOT_H_
