// End-to-end election orchestrator: TRIP registration + Votegral voting and
// tallying behind one façade. This is the public API the examples and the
// Fig. 5 benchmarks drive; each method calls the real actors underneath.
#ifndef SRC_VOTEGRAL_ELECTION_H_
#define SRC_VOTEGRAL_ELECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/outcome.h"
#include "src/trip/registrar.h"
#include "src/votegral/tally.h"
#include "src/votegral/verifier.h"

namespace votegral {

// Election configuration.
struct ElectionConfig {
  std::vector<std::string> roster;
  std::vector<std::string> candidates;
  size_t authority_members = 4;
  size_t tagging_members = 4;
  size_t mix_pairs = 2;  // 4 shufflers, matching the paper's experiments
};

// A complete Votegral election instance.
class Election {
 public:
  Election(ElectionConfig config, Rng& rng);

  TripSystem& trip() { return trip_; }
  const CandidateList& candidates() const { return candidates_; }
  PublicLedger& ledger() { return trip_.ledger(); }

  // Registers `voter_id` in person (1 real + fake_count fakes) and activates
  // all credentials on the given device.
  Outcome<RegisteredVoter> Register(const std::string& voter_id, size_t fake_count, Vsd& vsd,
                                    Rng& rng);

  // Casts a ballot with an activated credential (real or fake — the ballot
  // is accepted either way; only real ones are eventually counted).
  Status Cast(const ActivatedCredential& credential, const std::string& candidate, Rng& rng);

  // Runs the tally pipeline, producing the result and its transcript.
  TallyOutput Tally(Rng& rng) const;

  // Universal verification of a published tally against the ledger.
  Status Verify(const TallyOutput& output) const;

  // Public verifier parameters (what an auditor downloads at setup).
  VerifierParams verifier_params() const;

 private:
  ElectionConfig config_;
  TripSystem trip_;
  TaggingService tagging_;
  CandidateList candidates_;
};

}  // namespace votegral

#endif  // SRC_VOTEGRAL_ELECTION_H_
