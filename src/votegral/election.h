// End-to-end election orchestrator: TRIP registration + Votegral voting and
// tallying behind one façade. This is the public API the examples and the
// Fig. 5 benchmarks drive; each method calls the real actors underneath.
#ifndef SRC_VOTEGRAL_ELECTION_H_
#define SRC_VOTEGRAL_ELECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/outcome.h"
#include "src/trip/registrar.h"
#include "src/votegral/tally.h"
#include "src/votegral/verifier.h"

namespace votegral {

// Election configuration.
struct ElectionConfig {
  std::vector<std::string> roster;
  std::vector<std::string> candidates;
  size_t authority_members = 4;
  // 0 = additive n-of-n DKG (the seed configuration; one failed member
  // aborts the tally). t in [1, authority_members] = dealerless Shamir DKG:
  // the tally degrades gracefully, succeeding with any t honest-and-live
  // members and naming the excluded ones.
  size_t authority_threshold = 0;
  size_t tagging_members = 4;
  size_t mix_pairs = 2;  // 4 shufflers, matching the paper's experiments

  // Retry/deadline policy the tally's AuthorityClient uses when collecting
  // decryption shares (simulated time; see docs/ROBUSTNESS.md).
  RetryPolicy retry_policy;

  // Worker threads for the tally pipeline and the universal verifier.
  // 0 = share the process-wide pool (sized from hardware_concurrency);
  // 1 = fully serial (the quickstart escape hatch). The transcript is
  // byte-identical at any setting — this only trades wall-clock time.
  size_t threads = 0;

  // Ledger storage backend: in-memory by default, or the file-backed
  // segmented log (set backend=kFile and a directory). The tally transcript
  // is byte-identical for either backend — this only trades resident memory
  // against segment I/O.
  LedgerStorageConfig storage;

  // Tally scheduler: the chunk-granular dataflow graph (default) or the
  // stage-wide barrier pipeline. Transcripts are byte-identical — this only
  // trades stage overlap (see src/votegral/tally.h).
  TallyEngine tally_engine = TallyEngine::kDataflow;

  // Deniable revoting (docs/REVOTING.md): casts post RevoteBallots and the
  // dedup stage becomes the verifiable supersession pipeline. revote_padding
  // adds the cover-envelope dummy groups that make the revealed group-size
  // multiset a pure function of the board size (turn it off only in the
  // security-game control arm — an unpadded board leaks the revote pattern).
  bool revoting = false;
  bool revote_padding = true;
};

// A complete Votegral election instance.
class Election {
 public:
  Election(ElectionConfig config, Rng& rng);

  TripSystem& trip() { return trip_; }
  const CandidateList& candidates() const { return candidates_; }
  PublicLedger& ledger() { return trip_.ledger(); }

  // Registers `voter_id` in person (1 real + fake_count fakes) and activates
  // all credentials on the given device.
  Outcome<RegisteredVoter> Register(const std::string& voter_id, size_t fake_count, Vsd& vsd,
                                    Rng& rng);

  // Casts a ballot with an activated credential (real or fake — the ballot
  // is accepted either way; only real ones are eventually counted). Under
  // config.revoting the per-credential cast counter auto-increments, so a
  // later Cast with the same credential supersedes the earlier one.
  Status Cast(const ActivatedCredential& credential, const std::string& candidate, Rng& rng);

  // Revote-mode cast with an explicit counter — the coercer model: whoever
  // holds a surrendered credential chooses the counter themselves and cannot
  // observe the owner's private casts. Fails outside revote mode.
  Status CastRevote(const ActivatedCredential& credential, const std::string& candidate,
                    uint64_t counter, Rng& rng);

  // Runs the tally pipeline, producing the result and its transcript.
  // Throws ProtocolError (carrying the coded reason) if the tally cannot
  // complete — the convenience form for callers that treat failure as fatal.
  TallyOutput Tally(Rng& rng) const;

  // Like Tally, but failure is a value: fewer than threshold live
  // authorities, or a faulted mix/tag stage, yields a coded localized
  // Status instead of a throw. Fault-tolerance tests and degradation-aware
  // callers use this form.
  Outcome<TallyOutput> TryTally(Rng& rng) const;

  // Universal verification of a published tally against the ledger.
  Status Verify(const TallyOutput& output) const;

  // Public verifier parameters (what an auditor downloads at setup).
  VerifierParams verifier_params() const;

  // The executor tallying and verification run on (the config's dedicated
  // pool, or the global one).
  Executor& executor() const;

 private:
  std::optional<size_t> CandidateIndex(const std::string& candidate) const;

  ElectionConfig config_;
  TripSystem trip_;
  TaggingService tagging_;
  CandidateList candidates_;
  std::unique_ptr<Executor> dedicated_executor_;  // when config.threads != 0
  // Revote mode: next cast counter per credential (the voter-side count a
  // real device would keep).
  std::map<CompressedRistretto, uint64_t> revote_counters_;
};

}  // namespace votegral

#endif  // SRC_VOTEGRAL_ELECTION_H_
