#include "src/votegral/revote.h"

#include <algorithm>

#include "src/votegral/tally_internal.h"

namespace votegral {

namespace {

// One small-counter point with its canonical encoding.
struct CounterEntry {
  RistrettoPoint point;
  CompressedRistretto wire;
};

// k -> (k*B, enc(k*B)) for k in [0, kRevoteCounterLimit). Built once via
// incremental addition plus one batched encode; both the counter decode
// table and the dummy fast path read it.
const std::vector<CounterEntry>& CounterEntries() {
  static const std::vector<CounterEntry> entries = [] {
    std::vector<RistrettoPoint> points(kRevoteCounterLimit);
    RistrettoPoint p = RistrettoPoint::MulBase(Scalar::Zero());
    for (uint64_t k = 0; k < kRevoteCounterLimit; ++k) {
      points[k] = p;
      p = p + RistrettoPoint::Base();
    }
    std::vector<CompressedRistretto> wires(kRevoteCounterLimit);
    BatchEncodePoints(points, wires);
    std::vector<CounterEntry> e(kRevoteCounterLimit);
    for (uint64_t k = 0; k < kRevoteCounterLimit; ++k) {
      e[k] = CounterEntry{points[k], wires[k]};
    }
    return e;
  }();
  return entries;
}

// encoding of k*B -> k: the counter and dummy-size decode direction.
const std::map<CompressedRistretto, uint64_t>& CounterTable() {
  static const std::map<CompressedRistretto, uint64_t> table = [] {
    std::map<CompressedRistretto, uint64_t> t;
    const std::vector<CounterEntry>& entries = CounterEntries();
    for (uint64_t k = 0; k < kRevoteCounterLimit; ++k) {
      t[entries[k].wire] = k;
    }
    return t;
  }();
  return table;
}

// Shared close of one tag group given its member (index, counter) pairs with
// the max-counter member last: last-write-wins, whole-group drop on a tied
// max. Both selection implementations fold through here so their outputs are
// structurally forced to agree.
void CloseGroup(std::span<const std::pair<uint64_t, uint64_t>> members,
                RevoteSelection& sel) {
  const size_t size = members.size();
  sel.group_sizes[size] += 1;
  const bool tied_max =
      size >= 2 && members[size - 2].second == members[size - 1].second;
  if (tied_max) {
    sel.duplicate_tag += size;
    return;
  }
  sel.kept.push_back(members[size - 1].first);
  sel.superseded += size - 1;
}

}  // namespace

std::optional<uint64_t> DecodeCounterPoint(const CompressedRistretto& encoding) {
  const auto& table = CounterTable();
  auto it = table.find(encoding);
  if (it == table.end()) {
    return std::nullopt;
  }
  return it->second;
}

MixItem RevoteDummyItem(const RevoteDummyGroup& group, uint64_t j) {
  MixItem item;
  item.cts = {ElGamalTrivialEncrypt(RevoteBottomPoint()),
              ElGamalTrivialEncrypt(RistrettoPoint::MulBase(group.credential)),
              ElGamalTrivialEncrypt(RistrettoPoint::MulBase(Scalar::FromU64(j)))};
  item.EnsureWire();
  return item;
}

void BuildRevoteDummyItems(std::span<const RevoteDummyGroup> groups,
                           std::span<const std::pair<size_t, uint64_t>> slots,
                           std::span<MixItem> out, Executor& executor) {
  Require(slots.size() == out.size(), "revote: dummy slot/output size mismatch");
  for (const auto& [g, j] : slots) {
    Require(g < groups.size() && j < kRevoteCounterLimit,
            "revote: dummy slot out of range");
  }
  Executor::Scope scope(executor);  // BatchEncodePoints follows this pool
  const std::vector<CounterEntry>& counters = CounterEntries();
  // Credential column: one scalar multiplication per group (every member of
  // a group shares d*B), encoded in one batch.
  std::vector<RistrettoPoint> cred(groups.size());
  executor.ParallelForEach(groups.size(), [&](size_t g) {
    cred[g] = RistrettoPoint::MulBase(groups[g].credential);
  });
  std::vector<CompressedRistretto> cred_wire(groups.size());
  BatchEncodePoints(cred, cred_wire);
  static const CompressedRistretto kZeroWire = RistrettoPoint::Identity().Encode();
  static const CompressedRistretto kBottomWire = RevoteBottomPoint().Encode();
  executor.ParallelForEach(slots.size(), [&](size_t k) {
    const auto& [g, j] = slots[k];
    MixItem item;
    item.cts = {ElGamalTrivialEncrypt(RevoteBottomPoint()),
                ElGamalTrivialEncrypt(cred[g]),
                ElGamalTrivialEncrypt(counters[j].point)};
    // Wire cache pasted from the shared encodings: trivial encryptions have
    // an identity c1, so the 192 bytes are
    // [0 | bottom | 0 | d*B | 0 | j*B] in 32-byte slots.
    item.wire.resize(192);
    const CompressedRistretto* slots32[6] = {&kZeroWire, &kBottomWire, &kZeroWire,
                                             &cred_wire[g], &kZeroWire,
                                             &counters[j].wire};
    for (size_t half = 0; half < 6; ++half) {
      std::copy(slots32[half]->begin(), slots32[half]->end(),
                item.wire.begin() + static_cast<ptrdiff_t>(32 * half));
    }
    out[k] = std::move(item);
  });
}

size_t RevoteCoverClasses(size_t total) {
  size_t classes = 0;
  while (total > 0) {
    ++classes;
    total >>= 1;
  }
  return classes;
}

size_t RevoteCoverTarget(size_t total, size_t size) {
  if (size < 1 || size > RevoteCoverClasses(total)) {
    return 0;
  }
  const size_t bucket = size_t{1} << (size - 1);
  return (total + bucket - 1) / bucket;
}

std::vector<uint64_t> RevotePaddingPlan(size_t total,
                                        const std::map<uint64_t, size_t>& real_group_sizes) {
  std::vector<uint64_t> plan;
  const size_t classes = RevoteCoverClasses(total);
  for (size_t s = 1; s <= classes; ++s) {
    const size_t target = RevoteCoverTarget(total, s);
    auto it = real_group_sizes.find(s);
    const size_t have = it == real_group_sizes.end() ? 0 : it->second;
    for (size_t g = have; g < target; ++g) {
      plan.push_back(s);
    }
  }
  return plan;
}

RevoteSelection SelectLastPerTag(std::span<const CompressedRistretto> tags,
                                 std::span<const CompressedRistretto> counter_points) {
  Require(tags.size() == counter_points.size(), "revote: tag/counter size mismatch");
  const size_t n = tags.size();
  RevoteSelection sel;
  std::vector<uint64_t> counter_of(n, 0);
  std::vector<uint64_t> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto counter = DecodeCounterPoint(counter_points[i]);
    if (!counter.has_value()) {
      ++sel.invalid_structure;
      continue;
    }
    counter_of[i] = *counter;
    order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
    if (tags[a] != tags[b]) return tags[a] < tags[b];
    if (counter_of[a] != counter_of[b]) return counter_of[a] < counter_of[b];
    return a < b;
  });
  std::vector<std::pair<uint64_t, uint64_t>> members;
  for (size_t run = 0; run < order.size();) {
    size_t end = run;
    while (end < order.size() && tags[order[end]] == tags[order[run]]) {
      ++end;
    }
    members.clear();
    for (size_t k = run; k < end; ++k) {
      members.emplace_back(order[k], counter_of[order[k]]);
    }
    CloseGroup(members, sel);
    run = end;
  }
  std::sort(sel.kept.begin(), sel.kept.end());
  return sel;
}

RevoteSelection SelectLastPerTagQuadratic(std::span<const CompressedRistretto> tags,
                                          std::span<const CompressedRistretto> counter_points) {
  Require(tags.size() == counter_points.size(), "revote: tag/counter size mismatch");
  const size_t n = tags.size();
  RevoteSelection sel;
  // Discover group representatives by linear scan (quadratic in the worst
  // case — this is deliberately the naive algorithm).
  std::vector<uint64_t> reps;
  std::vector<uint8_t> decodable(n, 0);
  std::vector<uint64_t> counter_of(n, 0);
  for (size_t i = 0; i < n; ++i) {
    auto counter = DecodeCounterPoint(counter_points[i]);
    if (!counter.has_value()) {
      ++sel.invalid_structure;
      continue;
    }
    decodable[i] = 1;
    counter_of[i] = *counter;
    bool seen = false;
    for (uint64_t r : reps) {
      if (tags[r] == tags[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      reps.push_back(i);
    }
  }
  // Close groups in ascending tag order (the sort-based kernel's run order)
  // so the two implementations also agree on any order-sensitive accounting.
  std::sort(reps.begin(), reps.end(),
            [&](uint64_t a, uint64_t b) { return tags[a] < tags[b]; });
  std::vector<std::pair<uint64_t, uint64_t>> members;
  for (uint64_t r : reps) {
    members.clear();
    for (size_t i = 0; i < n; ++i) {
      if (decodable[i] != 0 && tags[i] == tags[r]) {
        members.emplace_back(i, counter_of[i]);
      }
    }
    std::sort(members.begin(), members.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second < b.second;
                return a.first < b.first;
              });
    CloseGroup(members, sel);
  }
  std::sort(sel.kept.begin(), sel.kept.end());
  return sel;
}

void RevoteValidateShard(const PublicLedger& ledger, const RistrettoPoint& authority_pk,
                         size_t begin, size_t end,
                         std::vector<std::optional<RevoteBallot>>& validated,
                         std::vector<uint8_t>& outcome) {
  LedgerCursor cursor = ledger.BallotCursor(begin, end);
  LedgerEntryView view;
  for (size_t i = begin; i < end; ++i) {
    Require(cursor.Next(&view), "revote: ballot cursor ended before its shard");
    auto ballot = RevoteBallot::Parse(view.payload);
    if (!ballot.has_value()) {
      outcome[i] = tally_internal::kBallotBadStructure;
      continue;
    }
    if (!CheckRevoteBallot(*ballot, authority_pk).ok()) {
      outcome[i] = tally_internal::kBallotBadSignature;
      continue;
    }
    validated[i] = std::move(*ballot);
  }
}

namespace tally_internal {

Status RunRevoteDedup(const TallyService& service, Rng& rng, TallyPipelineState& state) {
  RevoteTranscript& rt = state.output.transcript.revote;
  TallyResult& result = state.output.result;
  Executor& executor = service.executor();

  if (Status fault = ProbeStageFault(faults::kTallyDedup, 0, "revote dedup"); !fault.ok()) {
    return fault;
  }

  // Accepted board ballots, ledger order (the verifier replays this walk).
  for (std::optional<RevoteBallot>& ballot : state.validated_revotes) {
    if (ballot.has_value()) {
      rt.accepted.push_back(std::move(*ballot));
    }
  }
  Release(state.validated_revotes);
  const size_t total = rt.accepted.size();

  // Padding-oracle step (the VoteAgain trust split): decrypt the credential
  // column *internally* to learn the real group-size multiset and plan whole
  // dummy groups lifting it to the cover envelope of `total`. Privacy-trusted
  // only — every published byte below is verifier-replayed, and the dummy
  // openings let anyone recompute the padding exactly.
  if (service.revote_padding() && total > 0) {
    std::vector<CompressedRistretto> credentials(total);
    std::vector<uint8_t> decodable(total, 0);
    executor.ParallelForEach(total, [&](size_t i) {
      credentials[i] =
          service.authority().Decrypt(rt.accepted[i].encrypted_credential).Encode();
      // Census only ballots whose counter will decode post-mix: an
      // undecodable counter drops as invalid_structure at selection, so it
      // must not count toward the group sizes the verifier's envelope check
      // replays from the revealed tags.
      decodable[i] =
          DecodeCounterPoint(service.authority().Decrypt(rt.accepted[i].encrypted_counter)
                                 .Encode())
                  .has_value()
              ? 1
              : 0;
    });
    std::map<CompressedRistretto, size_t> casts_per_credential;
    for (size_t i = 0; i < total; ++i) {
      if (decodable[i] != 0) {
        casts_per_credential[credentials[i]] += 1;
      }
    }
    std::map<uint64_t, size_t> real_group_sizes;
    for (const auto& [credential, casts] : casts_per_credential) {
      real_group_sizes[casts] += 1;
    }
    for (uint64_t size : RevotePaddingPlan(total, real_group_sizes)) {
      rt.dummies.push_back(RevoteDummyGroup{Scalar::Random(rng), size});
    }
  }

  // Width-3 mix input: the accepted ballots' ciphertext triples, then every
  // dummy member's trivial encryptions.
  size_t padded = total;
  for (const RevoteDummyGroup& group : rt.dummies) {
    padded += group.size;
  }
  rt.mix_input.resize(padded);
  executor.ParallelForEach(total, [&](size_t i) {
    const RevoteBallot& b = rt.accepted[i];
    MixItem item;
    item.cts = {b.encrypted_vote, b.encrypted_credential, b.encrypted_counter};
    item.EnsureWire();
    rt.mix_input[i] = std::move(item);
  });
  std::vector<std::pair<size_t, uint64_t>> dummy_slots;  // (group, member)
  dummy_slots.reserve(padded - total);
  for (size_t g = 0; g < rt.dummies.size(); ++g) {
    for (uint64_t j = 0; j < rt.dummies[g].size; ++j) {
      dummy_slots.emplace_back(g, j);
    }
  }
  BuildRevoteDummyItems(rt.dummies, dummy_slots,
                        std::span<MixItem>(rt.mix_input).subspan(total), executor);

  // The revote mix: after it, tags/counters/group sizes can be revealed
  // without linking anything back to board rows.
  if (Status fault = ProbeStageFault(faults::kMixShuffle, 2, "revote mix"); !fault.ok()) {
    return fault;
  }
  rt.mix_output = RunRpcMixCascade(rt.mix_input, service.authority().public_key(),
                                   service.mix_pairs(), rng, &rt.mix_proof, executor);

  // Tag the credential column, then verifiably decrypt tags and counters.
  if (Status fault = ProbeStageFault(faults::kTagApply, 2, "revote tagging"); !fault.ok()) {
    return fault;
  }
  std::vector<ElGamalCiphertext> tagged = service.tagging().ApplyAll(
      BatchColumn(rt.mix_output, 1), &rt.tag_steps, rng, executor,
      BatchColumnWire(rt.mix_output, 1));
  Status status = DecryptBatchWithShares(service, "revote tags", tagged, rng,
                                         kEpochRevoteTags, &rt.tag_shares, &rt.tags,
                                         &state.share_self_check, &state.authority_blame,
                                         TaggedWire(rt.tag_steps));
  if (!status.ok()) {
    return status;
  }
  Release(tagged);
  std::vector<ElGamalCiphertext> counters = BatchColumn(rt.mix_output, 2);
  status = DecryptBatchWithShares(service, "revote counters", counters, rng,
                                  kEpochRevoteCounters, &rt.counter_shares,
                                  &rt.counter_points, &state.share_self_check,
                                  &state.authority_blame,
                                  BatchColumnWire(rt.mix_output, 2));
  if (!status.ok()) {
    return status;
  }
  Release(counters);

  // tag-sort -> last-write-wins over the revealed (tag, counter) pairs.
  // Dummy groups contribute their size-1 supersessions by design: the board
  // observables stay a pure function of the envelope.
  RevoteSelection selection = SelectLastPerTag(rt.tags, rt.counter_points);
  rt.kept_indices = std::move(selection.kept);
  result.discards.superseded += selection.superseded;
  result.discards.duplicate_tag += selection.duplicate_tag;
  result.discards.invalid_structure += selection.invalid_structure;

  // The kept [Enc(vote), Enc(c_pk)] columns feed the ordinary ballot mix —
  // the second shuffle that decouples group membership from join outcomes.
  state.revote_kept.resize(rt.kept_indices.size());
  executor.ParallelForEach(rt.kept_indices.size(), [&](size_t i) {
    const MixItem& source = rt.mix_output[rt.kept_indices[i]];
    MixItem item;
    item.cts = {source.cts.at(0), source.cts.at(1)};
    item.EnsureWire();
    state.revote_kept[i] = std::move(item);
  });
  return Status::Ok();
}

}  // namespace tally_internal

}  // namespace votegral
