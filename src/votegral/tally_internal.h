// Internal machinery shared by the two tally engines (src/votegral/tally.cpp
// and src/votegral/tally_dataflow.cpp). Not part of the public surface.
//
// Both engines are thin schedulers over the same per-shard kernels declared
// here: the barrier engine runs them under stage-wide ParallelFor fences, the
// dataflow engine runs the identical kernels as TaskGraph nodes. Each kernel
// writes positionally into pre-sized buffers and draws randomness only from
// the forked child stream handed to it, which is what makes the two engines
// byte-identical: the bytes depend on (shard boundaries, seed assignment),
// never on when or where a kernel ran.
#ifndef SRC_VOTEGRAL_TALLY_INTERNAL_H_
#define SRC_VOTEGRAL_TALLY_INTERNAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/votegral/authority_client.h"
#include "src/votegral/tally.h"

namespace votegral {
namespace tally_internal {

// Releases a consumed inter-stage buffer immediately (the streaming
// property: a stage's input shards do not outlive the stage).
template <typename T>
void Release(T& container) {
  T().swap(container);
}

// Epoch tags distinguishing the three decrypt batches in the per-run fault
// schedule: a ciphertext's fault key is (epoch << 32) | index, unique across
// the whole run regardless of batch sizes.
enum : uint64_t {
  kEpochRosterTags = 1,
  kEpochBallotTags = 2,
  kEpochVotes = 3,
  // Revote-mode extra batches (docs/REVOTING.md): the supersession layer's
  // tag and counter decryptions.
  kEpochRevoteTags = 4,
  kEpochRevoteCounters = 5,
};

// Stage-level fault points (mix.shuffle, tag.apply): the whole sub-batch
// operation either runs cleanly or fails with a coded, localized status —
// the mix cascade and tagging chain have no per-item degradation story (a
// missing shuffler breaks the cascade), so injected faults surface as stage
// failures. An injected delay only models latency and does not fail the
// stage; an injected corruption is reported as caught (the cascade's proof
// checks would reject a tampered batch).
Status ProbeStageFault(std::string_view point, uint64_t scope, const char* what);

// The canonical bytes of a tagged ciphertext list: the last step's
// output_wire, read straight from the transcript (no copy; empty span when
// there are no steps or no caches).
std::span<const ElGamalWire> TaggedWire(const std::vector<TaggingStep>& steps);

// Validate-stage kernel: parses and signature-checks ledger ballots
// [begin, end), streaming them off a per-shard cursor (zero-copy segment
// views — at most one segment resident per shard). Writes `validated[i]`
// and an outcome code into `outcome[i]` positionally; disjoint ranges may
// run concurrently.
enum : uint8_t {
  kBallotOk = 0,
  kBallotBadStructure = 1,
  kBallotBadSignature = 2,
};
void ValidateBallotShard(const PublicLedger& ledger,
                         const std::set<CompressedRistretto>& authorized_kiosks,
                         size_t begin, size_t end,
                         std::vector<std::optional<Ballot>>& validated,
                         std::vector<uint8_t>& outcome);

// Sequential, index-ordered fold of the positional outcome codes into the
// discard counters (identical at any thread count).
void TallyValidationOutcomes(std::span<const uint8_t> outcome, TallyDiscards* discards);

// Builds one ballot's width-2 mix item [Enc(vote), Enc(c_pk)] with its wire
// cache filled (Require-fails on a bad credential point — validated ballots
// cannot have one).
MixItem BallotMixItem(const Ballot& ballot);

// Working buffers for one decrypt batch. Shards write positionally into
// these; FinalizeDecryptBatch then performs the sequential, index-ordered
// merges (blame, self-check compaction, shortfall detection) that keep the
// batch deterministic at any thread count.
struct DecryptBatchBuffers {
  size_t members = 0;
  size_t threshold = 0;
  bool armed = false;  // fault plan armed at Init time
  std::vector<std::vector<DecryptionShare>>* shares_out = nullptr;
  std::vector<CompressedRistretto>* encoded_out = nullptr;
  std::vector<DleqBatchEntry> self_check;               // n*members, positional
  std::vector<std::vector<ShareRequestReport>> failed;  // armed ? n : 0
  std::vector<uint8_t> short_of_threshold;

  void Init(const ElectionAuthority& authority, size_t n,
            std::vector<std::vector<DecryptionShare>>* shares,
            std::vector<CompressedRistretto>* encoded);
};

// Decrypt-stage kernel: collects every live authority member's verifiable
// share for ciphertexts [begin, end) through the retrying AuthorityClient,
// drawing proof nonces from `child`. Self-check entries land positionally at
// i*members + m; failures are captured per ciphertext when a fault plan is
// armed. Disjoint ranges may run concurrently.
void DecryptShareShardRange(const TallyService& service, const AuthorityClient& client,
                            std::span<const ElGamalCiphertext> cts,
                            std::span<const ElGamalWire> cts_wire, uint64_t epoch,
                            size_t begin, size_t end, Rng& child,
                            DecryptBatchBuffers& buffers);

// Sequential close of one decrypt batch: merges blame (first failure per
// member in ciphertext order), compacts the positional self-check region
// (excluded members leave empty slots the release gate must not see),
// appends it to the run-wide accumulator, and reports the first ciphertext
// short of the threshold as kUnavailable.
Status FinalizeDecryptBatch(const char* what, DecryptBatchBuffers& buffers,
                            std::vector<DleqBatchEntry>* self_check_accum,
                            std::map<size_t, Status>* blame);

// One full barrier-style decrypt batch: forks per-shard seeds, collects
// every member's verifiable share for all of `cts` (fault keys under
// `epoch`), and finalizes (blame merge, self-check compaction, shortfall
// detection). The barrier engine's tag/vote stages and the revote dedup
// share this path.
Status DecryptBatchWithShares(const TallyService& service, const char* what,
                              std::span<const ElGamalCiphertext> cts, Rng& rng,
                              uint64_t epoch,
                              std::vector<std::vector<DecryptionShare>>* shares_out,
                              std::vector<CompressedRistretto>* encoded_out,
                              std::vector<DleqBatchEntry>* self_check,
                              std::map<size_t, Status>* blame,
                              std::span<const ElGamalWire> cts_wire = {});

// The whole revote supersession dedup (docs/REVOTING.md), run at the dedup
// stage position by BOTH engines: pad -> width-3 mix -> tag credentials ->
// decrypt (tags, counters) -> tag-sort last-write-wins. Consumes
// state.validated_revotes; fills state.output.transcript.revote, the discard
// counters, and state.revote_kept (the ballot-mix input columns of the kept
// items). Internally sharded on the service executor with forked seeds —
// byte-identical at any thread count and across engines.
Status RunRevoteDedup(const TallyService& service, Rng& rng, TallyPipelineState& state);

// Join stage: hash-joins ballot tags against the roster tag multiset
// (sequential ordered-map pass; its output order is part of the transcript).
void JoinTags(TallyPipelineState& state);

// Decrypt-votes close: folds decrypted vote points into per-candidate counts
// with the join weights.
void CountVotes(const CandidateList& candidates, TallyPipelineState& state);

// Release gate: the batched self-check over every produced decryption-share
// proof. A failure is an internal fault (Require), not a verification result.
void ReleaseGate(TallyPipelineState& state, Rng& rng);

// The dataflow engine (tally_dataflow.cpp): the same pipeline as
// TallyService::Pipeline() scheduled as a chunk-granular task graph.
// Returns fully wrapped errors ("<stage> stage: <reason>"), byte-identical
// to the barrier engine's, and fills `metrics` when non-null.
Outcome<TallyOutput> RunDataflowTally(const TallyService& service, const PublicLedger& ledger,
                                      const CandidateList& candidates,
                                      const std::set<CompressedRistretto>& authorized_kiosks,
                                      Rng& rng, TallyRunMetrics* metrics);

}  // namespace tally_internal
}  // namespace votegral

#endif  // SRC_VOTEGRAL_TALLY_INTERNAL_H_
