// Verifiable re-encryption mix cascade (Fig. 3 "verifiable shuffle").
//
// Substitution (DESIGN.md §2): the paper's prototype uses Bayer–Groth shuffle
// arguments. We implement a randomized-partial-checking (RPC) mixnet
// [Jakobsson–Juels–Rivest 2002]: mix servers are paired; after both layers
// of a pair commit their outputs, a Fiat–Shamir challenge opens exactly one
// adjacent re-encryption link per middle item — never both, so end-to-end
// unlinkability is preserved, while any server modifying t items escapes
// detection with probability at most 2^-t. RPC keeps verification linear,
// preserving the asymptotic separation from Civitas' quadratic PET tally
// that Fig. 5b reports.
//
// Each mix item is a fixed-width bundle of ElGamal ciphertexts re-encrypted
// under the same permutation (width 2 for ballots: vote + credential;
// width 1 for roster tags).
//
// Parallel architecture (the staged tally pipeline):
//  * Shuffling partitions the batch into thread-count-independent shards
//    (Executor::Shards); each shard re-encrypts under its own forked DRBG
//    stream (ForkRngSeeds), so the shuffled batch, the proof, and every
//    downstream transcript byte are identical at any thread count.
//  * Each produced MixItem carries its canonical wire bytes (`wire`), filled
//    inside the same parallel region that computed the points. Challenge
//    derivation then hashes cached bytes instead of paying one ristretto
//    Encode (an inverse square root) per ciphertext component per hash —
//    the cost that made cascade verification hash-bound.
//  * The verifier treats caches as attacker-supplied: a cached item is
//    decoded and compared against its points (in parallel) before its bytes
//    may bind a challenge, so a cheating mixer cannot decouple the hashed
//    transcript from the checked group elements (which would allow grinding
//    the per-item challenge bits).
#ifndef SRC_VOTEGRAL_MIXNET_H_
#define SRC_VOTEGRAL_MIXNET_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/executor.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/elgamal.h"

namespace votegral {

// One element moving through the mixnet.
struct MixItem {
  MixItem() = default;
  MixItem(std::vector<ElGamalCiphertext> cts_in) : cts(std::move(cts_in)) {}

  std::vector<ElGamalCiphertext> cts;

  // Cached canonical wire bytes of `cts` (64 bytes per ciphertext), or empty.
  // Invariant for honest producers: when non-empty, `wire` equals the
  // concatenation of cts[c].Serialize(). Producers fill it via EnsureWire()
  // inside parallel regions; the universal verifier re-checks it (see header
  // comment) rather than trusting it. Excluded from equality: the cache is a
  // performance artifact, not protocol state.
  Bytes wire;

  // Fills `wire` from `cts` if absent; returns it.
  const Bytes& EnsureWire();

  // True when `wire` has the size a cache for `cts` must have.
  bool HasWire() const { return wire.size() == 64 * cts.size() && !cts.empty(); }

  bool operator==(const MixItem& other) const { return cts == other.cts; }
};

using MixBatch = std::vector<MixItem>;

// Hashes a batch for challenge derivation and commitment comparison. Uses
// each item's wire cache when present (trusting the producer invariant);
// encodes fresh otherwise. Prover-side use only — verifiers go through
// VerifyRpcMixCascade, which validates caches before hashing them.
std::array<uint8_t, 32> HashMixBatch(const MixBatch& batch);

// Fills missing wire caches across the batch on the pool (one parallel
// encode pass); later hashes of the batch are then SHA-only.
void EnsureWireCache(MixBatch& batch, Executor& executor);

// Extracts one ciphertext column from a fixed-width batch (tally and
// verifier hand mix outputs to the tagging stage this way).
std::vector<ElGamalCiphertext> BatchColumn(const MixBatch& batch, size_t column);

// The wire-byte companion of BatchColumn: the 64-byte cache slice of one
// column for every item, so the tagging chain's DLEQ statements can hash the
// mix batch's canonical bytes instead of re-encoding the points. Returns an
// empty vector when any item lacks a cache (callers fall back to encoding).
// Trust follows the cache: tally threads its own producer caches, the
// verifier only threads batches whose caches VerifyRpcMixCascade validated.
std::vector<ElGamalWire> BatchColumnWire(const MixBatch& batch, size_t column);

// An opened re-encryption link for one middle-layer item.
struct RpcReveal {
  // Side 0: links mid[index_in_mid] to pair input in[source_or_dest].
  // Side 1: links mid[index_in_mid] to pair output out[source_or_dest].
  uint8_t side = 0;
  uint64_t source_or_dest = 0;
  std::vector<Scalar> randomness;  // one re-encryption scalar per ciphertext
};

// Proof for one mix pair: the committed middle batch and per-item reveals.
struct RpcPairProof {
  MixBatch mid;
  MixBatch out;
  std::vector<RpcReveal> reveals;  // one per middle index
};

// Full cascade proof (one entry per pair).
struct MixProof {
  std::vector<RpcPairProof> pairs;
};

// Runs `pair_count` RPC pairs (2·pair_count mix servers) over `input`.
// Returns the final shuffled batch and fills `proof`. Shuffle re-encryption
// fans out across `executor` under forked per-shard DRBGs; the output and
// proof are byte-identical at any thread count.
MixBatch RunRpcMixCascade(const MixBatch& input, const RistrettoPoint& pk, size_t pair_count,
                          Rng& rng, MixProof* proof,
                          Executor& executor = Executor::Global());

// How the verifier checks the opened re-encryption links of a pair.
enum class MixLinkCheck {
  // All links of a pair are folded into one random-linear-combination
  // multi-scalar multiplication (weights derived Fiat–Shamir-style from the
  // pair's committed batches and its published reveals, soundness error
  // 2^-128 per link). On rejection the verifier re-runs the per-link path
  // to name the offending link.
  kBatchedMsm,
  // One re-encryption check per link (the pre-MSM path; kept for failure
  // localization and the ablation benchmarks).
  kPerLink,
};

// Verifies an RPC cascade proof against the published input/output. Wire
// caches inside the proof batches are validated (decoded and compared to
// the points) before they may bind challenge bits; link checks, cache
// validation, and the closing MSM all run on `executor`, with the first
// failing pair/index reported deterministically.
Status VerifyRpcMixCascade(const MixBatch& input, const MixBatch& output,
                           const MixProof& proof, const RistrettoPoint& pk,
                           MixLinkCheck mode = MixLinkCheck::kBatchedMsm,
                           Executor& executor = Executor::Global());

// Single mix layer (used by the cascade and by baselines): shuffles and
// re-encrypts, recording the permutation and randomness for later reveals.
//
// Two entry styles share one transcript:
//  * Shuffle() — the whole layer at once (Prepare + a ParallelFor over the
//    shards).
//  * Prepare() + ShuffleShardRange() — the dataflow tally draws the
//    permutation and per-shard seeds at graph-build time, then runs each
//    shard as its own graph node the moment its inputs exist. Both styles
//    consume identical rng bytes and produce identical batches.
class MixServer {
 public:
  // Shuffles `input`; after this call the server holds its secret records.
  // The permutation is drawn sequentially from `rng`; re-encryption
  // randomness comes from per-shard forked streams so the result is
  // reproducible at any thread count.
  MixBatch Shuffle(const MixBatch& input, const RistrettoPoint& pk, Rng& rng,
                   Executor& executor = Executor::Global());

  // Draws the Fisher-Yates permutation for an n-item layer from `rng`
  // (sequentially — the only parent-stream consumption of this layer) and
  // sizes the secret records. Shard seeds are forked by the caller
  // immediately after, preserving Shuffle()'s exact rng byte order.
  void Prepare(size_t n, Rng& rng);

  // Re-encrypts output slots [begin, end) from `input` into `output`
  // (pre-sized to n by the caller), drawing randomness from `child` — the
  // forked stream for this shard. Wire caches are filled in the same pass.
  // Safe to run concurrently for disjoint ranges.
  void ShuffleShardRange(const MixBatch& input, const RistrettoPoint& pk, size_t begin,
                         size_t end, Rng& child, MixBatch& output);

  // For output index j: the input index it came from plus the randomness.
  RpcReveal RevealLinkForOutput(uint64_t output_index) const;

  // For input index i: the output index it went to plus the randomness.
  RpcReveal RevealLinkForInput(uint64_t input_index) const;

 private:
  std::vector<uint64_t> source_;                    // output j came from input source_[j]
  std::vector<uint64_t> dest_;                      // input i went to output dest_[i]
  std::vector<std::vector<Scalar>> randomness_;     // per output index
};

// Closes one RPC pair once both layers' outputs exist: hashes mid/out,
// derives the per-item challenge bits from (h_in, h_mid, h_out, pair index),
// and fills `pair->reveals`. Writes the pair's outgoing chain hash to
// *h_out_chain. Pure function of its inputs — the cascade and the dataflow
// tally call it identically, so proofs are byte-for-byte shared.
void FinishRpcPair(const MixServer& layer_a, const MixServer& layer_b,
                   const std::array<uint8_t, 32>& h_in, size_t pair_index,
                   RpcPairProof* pair, std::array<uint8_t, 32>* h_out_chain);

}  // namespace votegral

#endif  // SRC_VOTEGRAL_MIXNET_H_
