// Verifiable re-encryption mix cascade (Fig. 3 "verifiable shuffle").
//
// Substitution (DESIGN.md §2): the paper's prototype uses Bayer–Groth shuffle
// arguments. We implement a randomized-partial-checking (RPC) mixnet
// [Jakobsson–Juels–Rivest 2002]: mix servers are paired; after both layers
// of a pair commit their outputs, a Fiat–Shamir challenge opens exactly one
// adjacent re-encryption link per middle item — never both, so end-to-end
// unlinkability is preserved, while any server modifying t items escapes
// detection with probability at most 2^-t. RPC keeps verification linear,
// preserving the asymptotic separation from Civitas' quadratic PET tally
// that Fig. 5b reports.
//
// Each mix item is a fixed-width bundle of ElGamal ciphertexts re-encrypted
// under the same permutation (width 2 for ballots: vote + credential;
// width 1 for roster tags).
#ifndef SRC_VOTEGRAL_MIXNET_H_
#define SRC_VOTEGRAL_MIXNET_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/elgamal.h"

namespace votegral {

// One element moving through the mixnet.
struct MixItem {
  std::vector<ElGamalCiphertext> cts;

  bool operator==(const MixItem& other) const { return cts == other.cts; }
};

using MixBatch = std::vector<MixItem>;

// Hashes a batch for challenge derivation and commitment comparison.
std::array<uint8_t, 32> HashMixBatch(const MixBatch& batch);

// An opened re-encryption link for one middle-layer item.
struct RpcReveal {
  // Side 0: links mid[index_in_mid] to pair input in[source_or_dest].
  // Side 1: links mid[index_in_mid] to pair output out[source_or_dest].
  uint8_t side = 0;
  uint64_t source_or_dest = 0;
  std::vector<Scalar> randomness;  // one re-encryption scalar per ciphertext
};

// Proof for one mix pair: the committed middle batch and per-item reveals.
struct RpcPairProof {
  MixBatch mid;
  MixBatch out;
  std::vector<RpcReveal> reveals;  // one per middle index
};

// Full cascade proof (one entry per pair).
struct MixProof {
  std::vector<RpcPairProof> pairs;
};

// Runs `pair_count` RPC pairs (2·pair_count mix servers) over `input`.
// Returns the final shuffled batch and fills `proof`.
MixBatch RunRpcMixCascade(const MixBatch& input, const RistrettoPoint& pk, size_t pair_count,
                          Rng& rng, MixProof* proof);

// How the verifier checks the opened re-encryption links of a pair.
enum class MixLinkCheck {
  // All links of a pair are folded into one random-linear-combination
  // multi-scalar multiplication (weights derived Fiat–Shamir-style from the
  // pair's committed batches and its published reveals, soundness error
  // 2^-128 per link). On rejection the verifier re-runs the per-link path
  // to name the offending link.
  kBatchedMsm,
  // One re-encryption check per link (the pre-MSM path; kept for failure
  // localization and the ablation benchmarks).
  kPerLink,
};

// Verifies an RPC cascade proof against the published input/output.
Status VerifyRpcMixCascade(const MixBatch& input, const MixBatch& output,
                           const MixProof& proof, const RistrettoPoint& pk,
                           MixLinkCheck mode = MixLinkCheck::kBatchedMsm);

// Single mix layer (used by the cascade and by baselines): shuffles and
// re-encrypts, recording the permutation and randomness for later reveals.
class MixServer {
 public:
  // Shuffles `input`; after this call the server holds its secret records.
  MixBatch Shuffle(const MixBatch& input, const RistrettoPoint& pk, Rng& rng);

  // For output index j: the input index it came from plus the randomness.
  RpcReveal RevealLinkForOutput(uint64_t output_index) const;

  // For input index i: the output index it went to plus the randomness.
  RpcReveal RevealLinkForInput(uint64_t input_index) const;

 private:
  std::vector<uint64_t> source_;                    // output j came from input source_[j]
  std::vector<uint64_t> dest_;                      // input i went to output dest_[i]
  std::vector<std::vector<Scalar>> randomness_;     // per output index
};

}  // namespace votegral

#endif  // SRC_VOTEGRAL_MIXNET_H_
