#include "src/votegral/authority_client.h"

namespace votegral {

namespace {

// Folds the retry attempt into the fault-schedule key so each attempt draws
// an independent decision (a timed-out request may succeed on retry).
uint64_t AttemptKey(uint64_t ct_key, size_t attempt) {
  return (ct_key << 8) | static_cast<uint64_t>(attempt & 0xFF);
}

}  // namespace

AuthorityClient::AuthorityClient(const ElectionAuthority& authority, RetryPolicy policy)
    : authority_(authority), policy_(policy) {
  Require(policy_.max_attempts >= 1, "AuthorityClient: need at least one attempt");
}

Outcome<DecryptionShare> AuthorityClient::RequestShare(
    size_t member, const ElGamalCiphertext& ct, Rng& rng, uint64_t ct_key,
    const CompressedRistretto* c1_wire, ShareRequestReport* report) const {
  VirtualClock clock;  // per-request simulated budget; never sleeps
  ShareRequestReport local;
  ShareRequestReport& rep = report != nullptr ? *report : local;
  rep.member_index = member;

  const std::string who = "authority " + std::to_string(member);
  const std::string point(faults::kAuthorityComputeShare);
  auto fail = [&](StatusCode code, std::string reason) {
    rep.status = Status::Error(code, std::move(reason));
    rep.sim_seconds = clock.Seconds();
    return Outcome<DecryptionShare>::Fail(rep.status);
  };
  auto deadline_spent = [&] {
    return clock.Seconds() * 1000.0 >= static_cast<double>(policy_.deadline_ms);
  };

  for (size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    rep.attempts = attempt + 1;
    const FaultDecision fault =
        ProbeFaultPoint(faults::kAuthorityComputeShare, member,
                        AttemptKey(ct_key, attempt));

    if (fault.kind == FaultKind::kCrash) {
      // Permanent by construction (the schedule drops the operation key for
      // crashes), so retrying is pointless: blame and move on.
      return fail(StatusCode::kUnavailable, who + ": crash injected at " + point);
    }

    if (fault.kind == FaultKind::kTimeout) {
      clock.Advance(static_cast<double>(policy_.request_timeout_ms) * 1e-3);
      if (deadline_spent()) {
        return fail(StatusCode::kTimeout, who + ": deadline exceeded at " + point);
      }
      // Deterministic exponential backoff before the next attempt.
      clock.Advance(static_cast<double>(policy_.base_backoff_ms << attempt) * 1e-3);
      if (deadline_spent()) {
        return fail(StatusCode::kTimeout, who + ": deadline exceeded at " + point);
      }
      continue;
    }

    if (fault.kind == FaultKind::kDelay) {
      clock.Advance(static_cast<double>(fault.delay_ms) * 1e-3);
      if (deadline_spent()) {
        return fail(StatusCode::kTimeout,
                    who + ": delayed response missed deadline at " + point);
      }
      // Late but within budget: the response still arrives below.
    }

    DecryptionShare share = authority_.ComputeShare(member, ct, rng, c1_wire);
    if (fault.kind == FaultKind::kCorrupt) {
      // A Byzantine member returns a well-formed but wrong partial: the DLEQ
      // statement no longer matches its proof.
      share.share = share.share + RistrettoPoint::Base();
    }

    // Arrival verification, enabled exactly when faults can occur. No-fault
    // runs keep the single batched self-check at the release gate instead of
    // paying per-share verification twice.
    if (FaultInjector::Armed()) {
      if (Status ok = authority_.VerifyShare(ct, share); !ok.ok()) {
        // A forged response is exclusion-worthy evidence, not a transient
        // failure: no retry.
        return fail(StatusCode::kInvalidProof,
                    who + ": share rejected on arrival at " + point + ": " + ok.reason());
      }
    }

    rep.status = Status::Ok();
    rep.sim_seconds = clock.Seconds();
    return Outcome<DecryptionShare>::Ok(std::move(share));
  }
  return fail(StatusCode::kExhausted, who + ": retry budget exhausted at " + point +
                                          " after " + std::to_string(rep.attempts) +
                                          " attempt(s)");
}

}  // namespace votegral
