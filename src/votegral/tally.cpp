#include "src/votegral/tally.h"

#include <algorithm>

#include "src/crypto/batch.h"
#include "src/crypto/drbg.h"

namespace votegral {

std::vector<std::optional<Ballot>> ValidateBallots(
    const PublicLedger& ledger, const std::set<CompressedRistretto>& authorized_kiosks,
    TallyDiscards* discards, Executor& executor) {
  Require(discards != nullptr, "tally: discards output required");
  const size_t n = ledger.BallotCount();
  std::vector<std::optional<Ballot>> validated(n);
  // Parse + two Schnorr verifications per ballot: the validate stage's
  // per-ballot hot loop. Each shard streams its ballot range straight off
  // the backing segments through its own cursor (zero-copy views, at most
  // one segment resident per shard), so the stage never materializes the
  // ballot log — the property that lets a file-backed ledger larger than
  // RAM tally in O(segment) memory. Shard boundaries come from
  // Executor::Shards (data-size only) and outcomes are written positionally
  // then tallied sequentially, so discard counts never depend on scheduling
  // or on the storage backend.
  enum : uint8_t { kOk = 0, kBadStructure = 1, kBadSignature = 2 };
  std::vector<uint8_t> outcome(n, kOk);
  auto shards = Executor::Shards(n, Executor::kRngShards);
  executor.ParallelForEach(shards.size(), [&](size_t s) {
    LedgerCursor cursor = ledger.BallotCursor(shards[s].first, shards[s].second);
    LedgerEntryView view;
    for (size_t i = shards[s].first; i < shards[s].second; ++i) {
      Require(cursor.Next(&view), "tally: ballot cursor ended before its shard");
      auto ballot = Ballot::Parse(view.payload);
      if (!ballot.has_value()) {
        outcome[i] = kBadStructure;
        continue;
      }
      if (!CheckBallot(*ballot, authorized_kiosks).ok()) {
        outcome[i] = kBadSignature;
        continue;
      }
      validated[i] = std::move(*ballot);
    }
  });
  for (uint8_t o : outcome) {
    if (o == kBadStructure) {
      ++discards->invalid_structure;
    } else if (o == kBadSignature) {
      ++discards->invalid_signature;
    }
  }
  return validated;
}

std::vector<Ballot> DeduplicateBallots(const std::vector<std::optional<Ballot>>& validated,
                                       TallyDiscards* discards) {
  Require(discards != nullptr, "tally: discards output required");
  // Keep the *last* valid ballot per credential key (re-voting overrides,
  // matching the JCJ-with-tags dedup rule; ledger order is cast order).
  std::map<CompressedRistretto, Ballot> latest;
  std::map<CompressedRistretto, size_t> first_seen_order;
  size_t order = 0;
  for (const std::optional<Ballot>& ballot : validated) {
    if (!ballot.has_value()) {
      continue;
    }
    auto [it, inserted] = latest.insert_or_assign(ballot->credential_pk, *ballot);
    if (inserted) {
      first_seen_order[ballot->credential_pk] = order++;
    } else {
      ++discards->superseded;
    }
  }

  // Canonical order: first-seen order of each credential (deterministic and
  // recomputable by any auditor).
  std::vector<Ballot> accepted(latest.size());
  for (const auto& [credential, ballot] : latest) {
    accepted[first_seen_order.at(credential)] = ballot;
  }
  return accepted;
}

std::vector<Ballot> ValidateAndDeduplicate(
    const PublicLedger& ledger, const std::set<CompressedRistretto>& authorized_kiosks,
    TallyDiscards* discards, Executor& executor) {
  return DeduplicateBallots(ValidateBallots(ledger, authorized_kiosks, discards, executor),
                            discards);
}

TallyService::TallyService(const ElectionAuthority& authority, const TaggingService& tagging,
                           size_t mix_pairs, Executor& executor)
    : authority_(authority), tagging_(tagging), mix_pairs_(mix_pairs), executor_(executor) {}

namespace {

// Releases a consumed inter-stage buffer immediately (the streaming
// property: a stage's input shards do not outlive the stage).
template <typename T>
void Release(T& container) {
  T().swap(container);
}

// Decrypt-stage workhorse: every authority member's verifiable share for
// every ciphertext, fanned out over fixed shards with forked DRBG streams
// for the proof nonces. Returns the canonical encodings of the combined
// plaintexts; appends one self-check DLEQ entry per share, in (ciphertext,
// member) order, for the release gate. `cts_wire`, when non-empty, supplies
// the producer's canonical bytes for `cts` (tagging output wire, mix column
// wire) so the share statements are wire-backed without re-encoding C1.
std::vector<CompressedRistretto> DecryptBatchWithShares(
    const ElectionAuthority& authority, const std::vector<ElGamalCiphertext>& cts, Rng& rng,
    Executor& executor, std::vector<std::vector<DecryptionShare>>* shares_out,
    std::vector<DleqBatchEntry>* self_check, std::span<const ElGamalWire> cts_wire = {}) {
  const size_t n = cts.size();
  const size_t members = authority.size();
  Require(cts_wire.empty() || cts_wire.size() == n, "tally: cts wire size mismatch");
  shares_out->assign(n, {});
  std::vector<CompressedRistretto> encoded(n);
  const size_t check_base = self_check->size();
  self_check->resize(check_base + n * members);
  auto shards = Executor::Shards(n, Executor::kRngShards);
  auto seeds = ForkRngSeeds(rng, shards.size());
  executor.ParallelForEach(shards.size(), [&](size_t s) {
    ChaChaRng child(seeds[s]);
    for (size_t i = shards[s].first; i < shards[s].second; ++i) {
      std::vector<DecryptionShare>& shares = (*shares_out)[i];
      shares.reserve(members);
      const CompressedRistretto c1_wire =
          cts_wire.empty() ? cts[i].c1.Encode() : ElGamalWireHalf(cts_wire[i], 0);
      for (size_t m = 0; m < members; ++m) {
        shares.push_back(authority.ComputeShare(m, cts[i], child, &c1_wire));
        const DecryptionShare& share = shares.back();
        DleqBatchEntry entry;
        entry.domain = std::string(kDecryptionShareDomain);
        entry.statement = DleqStatement::MakePairWire(
            RistrettoPoint::Base(), RistrettoPoint::BaseWire(),
            authority.member(m).public_share, authority.member(m).public_share_wire,
            cts[i].c1, c1_wire, share.share, share.share.Encode());
        entry.transcript = share.proof;
        (*self_check)[check_base + i * members + m] = std::move(entry);
      }
      encoded[i] = authority.CombineShares(cts[i], shares).Encode();
    }
  });
  return encoded;
}

void StageValidate(const TallyService& service, const PublicLedger& ledger,
                   const CandidateList&, const std::set<CompressedRistretto>& kiosks, Rng&,
                   TallyPipelineState& state) {
  state.validated_ballots =
      ValidateBallots(ledger, kiosks, &state.output.result.discards, service.executor());
}

void StageDedup(const TallyService&, const PublicLedger&, const CandidateList&,
                const std::set<CompressedRistretto>&, Rng&, TallyPipelineState& state) {
  state.output.transcript.accepted_ballots =
      DeduplicateBallots(state.validated_ballots, &state.output.result.discards);
  Release(state.validated_ballots);
}

void StageMix(const TallyService& service, const PublicLedger& ledger, const CandidateList&,
              const std::set<CompressedRistretto>&, Rng& rng, TallyPipelineState& state) {
  TallyTranscript& t = state.output.transcript;
  Executor& executor = service.executor();

  // Ballot batch: [Enc(vote), Enc(c_pk)]; wire caches are filled in the
  // same parallel pass that decodes the credential points, so every later
  // hash of these batches is SHA-only.
  t.ballot_mix_input.resize(t.accepted_ballots.size());
  executor.ParallelForEach(t.accepted_ballots.size(), [&](size_t i) {
    const Ballot& ballot = t.accepted_ballots[i];
    auto credential_point = RistrettoPoint::Decode(ballot.credential_pk);
    Require(credential_point.has_value(), "tally: validated ballot has bad credential point");
    MixItem item;
    item.cts = {ballot.encrypted_vote, ElGamalTrivialEncrypt(*credential_point)};
    item.EnsureWire();
    t.ballot_mix_input[i] = std::move(item);
  });
  t.ballot_mix_output = RunRpcMixCascade(t.ballot_mix_input, service.authority().public_key(),
                                         service.mix_pairs(), rng, &t.ballot_mix_proof,
                                         executor);

  // Roster batch: [c_pc].
  std::vector<RegistrationRecord> roster = ledger.ActiveRegistrations();
  t.roster_mix_input.resize(roster.size());
  executor.ParallelForEach(roster.size(), [&](size_t i) {
    MixItem item;
    item.cts = {roster[i].public_credential};
    item.EnsureWire();
    t.roster_mix_input[i] = std::move(item);
  });
  t.roster_mix_output = RunRpcMixCascade(t.roster_mix_input, service.authority().public_key(),
                                         service.mix_pairs(), rng, &t.roster_mix_proof,
                                         executor);

  // Hand the credential columns to the tag stage.
  state.ballot_credentials = BatchColumn(t.ballot_mix_output, 1);
  state.roster_credentials = BatchColumn(t.roster_mix_output, 0);
}

void StageTag(const TallyService& service, const PublicLedger&, const CandidateList&,
              const std::set<CompressedRistretto>&, Rng& rng, TallyPipelineState& state) {
  TallyTranscript& t = state.output.transcript;
  // Thread the mix outputs' wire caches (filled at shuffle time) into the
  // first tagging step's statements; each step then feeds the next, and the
  // final step's bytes back the decrypt stage. The transcript bytes do not
  // depend on this threading — only the encode count does.
  state.ballot_tagged = service.tagging().ApplyAll(
      state.ballot_credentials, &t.ballot_tag_steps, rng, service.executor(),
      BatchColumnWire(t.ballot_mix_output, 1));
  Release(state.ballot_credentials);
  state.roster_tagged = service.tagging().ApplyAll(
      state.roster_credentials, &t.roster_tag_steps, rng, service.executor(),
      BatchColumnWire(t.roster_mix_output, 0));
  Release(state.roster_credentials);
}

// The canonical bytes of a tagged ciphertext list: the last step's
// output_wire, read straight from the transcript (no copy; empty span when
// there are no steps or no caches).
std::span<const ElGamalWire> TaggedWire(const std::vector<TaggingStep>& steps) {
  if (steps.empty() || !steps.back().HasWire()) {
    return {};
  }
  return steps.back().output_wire;
}

void StageDecryptTags(const TallyService& service, const PublicLedger&, const CandidateList&,
                      const std::set<CompressedRistretto>&, Rng& rng,
                      TallyPipelineState& state) {
  TallyTranscript& t = state.output.transcript;
  // Roster side first (the stream order auditors replay), then ballots.
  t.roster_tags = DecryptBatchWithShares(service.authority(), state.roster_tagged, rng,
                                         service.executor(), &t.roster_tag_shares,
                                         &state.share_self_check,
                                         TaggedWire(t.roster_tag_steps));
  Release(state.roster_tagged);
  for (const CompressedRistretto& tag : t.roster_tags) {
    state.roster_tag_counts[tag] += 1;
  }
  t.ballot_tags = DecryptBatchWithShares(service.authority(), state.ballot_tagged, rng,
                                         service.executor(), &t.ballot_tag_shares,
                                         &state.share_self_check,
                                         TaggedWire(t.ballot_tag_steps));
  Release(state.ballot_tagged);
}

void StageJoin(const TallyService&, const PublicLedger&, const CandidateList&,
               const std::set<CompressedRistretto>&, Rng&, TallyPipelineState& state) {
  TallyTranscript& t = state.output.transcript;
  TallyResult& result = state.output.result;
  // Hash-join ballot tags against the roster tag multiset: at most one
  // ballot counts per tag; a tag appearing k times means k voters'
  // registrations point at the same credential (k > 1 only under the
  // delegation extension, Appendix C.3). Sequential by design — the join is
  // a cheap ordered map pass whose output order is part of the transcript.
  for (size_t i = 0; i < t.ballot_tags.size(); ++i) {
    auto it = state.roster_tag_counts.find(t.ballot_tags[i]);
    if (it == state.roster_tag_counts.end()) {
      ++result.discards.unmatched_tag;  // fake credential (or never registered)
      continue;
    }
    if (it->second == 0) {
      ++result.discards.duplicate_tag;  // tag already fully consumed
      continue;
    }
    t.counted_indices.push_back(i);
    t.counted_weights.push_back(it->second);
    it->second = 0;  // consume all matching registrations at once
  }
  Release(state.roster_tag_counts);
}

void StageDecryptVotes(const TallyService& service, const PublicLedger&,
                       const CandidateList& candidates,
                       const std::set<CompressedRistretto>&, Rng& rng,
                       TallyPipelineState& state) {
  TallyTranscript& t = state.output.transcript;
  TallyResult& result = state.output.result;
  std::vector<ElGamalCiphertext> counted_votes;
  counted_votes.reserve(t.counted_indices.size());
  for (uint64_t index : t.counted_indices) {
    counted_votes.push_back(t.ballot_mix_output[index].cts.at(0));
  }
  // Vote ciphertexts are mix outputs: their wire caches (filled at shuffle
  // time) back the decryption-share statements directly.
  std::vector<ElGamalWire> counted_wire = BatchColumnWire(t.ballot_mix_output, 0);
  std::vector<ElGamalWire> counted_votes_wire;
  if (counted_wire.size() == t.ballot_mix_output.size()) {
    counted_votes_wire.reserve(t.counted_indices.size());
    for (uint64_t index : t.counted_indices) {
      counted_votes_wire.push_back(counted_wire[index]);
    }
  }
  t.vote_points = DecryptBatchWithShares(service.authority(), counted_votes, rng,
                                         service.executor(), &t.vote_shares,
                                         &state.share_self_check, counted_votes_wire);
  for (size_t c = 0; c < t.counted_indices.size(); ++c) {
    uint64_t weight = t.counted_weights[c];
    auto candidate = candidates.IndexOfEncoding(t.vote_points[c]);
    if (!candidate.has_value()) {
      ++result.discards.invalid_vote;
      continue;
    }
    result.counts[candidates.name(*candidate)] += weight;
    result.counted += weight;
  }
}

void StageReleaseGate(const TallyService&, const PublicLedger&, const CandidateList&,
                      const std::set<CompressedRistretto>&, Rng& rng,
                      TallyPipelineState& state) {
  // Release gate: all decryption-share proofs produced above must verify as
  // one batch. A failure here is an internal fault, not a verification
  // result, hence Require rather than a Status.
  Require(BatchVerifyDleq(state.share_self_check, rng).ok(),
          "tally: produced decryption share failed batched self-check");
  Release(state.share_self_check);
}

constexpr TallyService::Stage kPipeline[] = {
    {"validate", StageValidate},
    {"dedup", StageDedup},
    {"mix", StageMix},
    {"tag", StageTag},
    {"decrypt-tags", StageDecryptTags},
    {"join", StageJoin},
    {"decrypt-votes", StageDecryptVotes},
    {"release-gate", StageReleaseGate},
};

}  // namespace

std::span<const TallyService::Stage> TallyService::Pipeline() { return kPipeline; }

TallyOutput TallyService::Run(const PublicLedger& ledger, const CandidateList& candidates,
                              const std::set<CompressedRistretto>& authorized_kiosks,
                              Rng& rng) const {
  Executor::Scope scope(executor_);  // nested crypto kernels follow this pool
  TallyPipelineState state;
  for (size_t i = 0; i < candidates.size(); ++i) {
    state.output.result.counts[candidates.name(i)] = 0;
  }
  for (const Stage& stage : Pipeline()) {
    stage.run(*this, ledger, candidates, authorized_kiosks, rng, state);
  }
  return std::move(state.output);
}

}  // namespace votegral
