#include "src/votegral/tally.h"

#include <algorithm>
#include <chrono>

#include "src/crypto/batch.h"
#include "src/crypto/drbg.h"
#include "src/votegral/tally_internal.h"

namespace votegral {

namespace tally_internal {

Status ProbeStageFault(std::string_view point, uint64_t scope, const char* what) {
  const FaultDecision fault = ProbeFaultPoint(point, scope, 0);
  switch (fault.kind) {
    case FaultKind::kNone:
    case FaultKind::kDelay:
      return Status::Ok();
    case FaultKind::kCrash:
      return Status::Error(StatusCode::kUnavailable,
                           std::string(what) + ": crash injected at " + std::string(point));
    case FaultKind::kTimeout:
      return Status::Error(StatusCode::kTimeout,
                           std::string(what) + ": timeout injected at " + std::string(point));
    case FaultKind::kCorrupt:
      return Status::Error(StatusCode::kCorrupted,
                           std::string(what) + ": output integrity check failed at " +
                               std::string(point));
  }
  return Status::Ok();
}

std::span<const ElGamalWire> TaggedWire(const std::vector<TaggingStep>& steps) {
  if (steps.empty() || !steps.back().HasWire()) {
    return {};
  }
  return steps.back().output_wire;
}

void ValidateBallotShard(const PublicLedger& ledger,
                         const std::set<CompressedRistretto>& authorized_kiosks,
                         size_t begin, size_t end,
                         std::vector<std::optional<Ballot>>& validated,
                         std::vector<uint8_t>& outcome) {
  LedgerCursor cursor = ledger.BallotCursor(begin, end);
  LedgerEntryView view;
  for (size_t i = begin; i < end; ++i) {
    Require(cursor.Next(&view), "tally: ballot cursor ended before its shard");
    auto ballot = Ballot::Parse(view.payload);
    if (!ballot.has_value()) {
      outcome[i] = kBallotBadStructure;
      continue;
    }
    if (!CheckBallot(*ballot, authorized_kiosks).ok()) {
      outcome[i] = kBallotBadSignature;
      continue;
    }
    validated[i] = std::move(*ballot);
  }
}

void TallyValidationOutcomes(std::span<const uint8_t> outcome, TallyDiscards* discards) {
  for (uint8_t o : outcome) {
    if (o == kBallotBadStructure) {
      ++discards->invalid_structure;
    } else if (o == kBallotBadSignature) {
      ++discards->invalid_signature;
    }
  }
}

MixItem BallotMixItem(const Ballot& ballot) {
  auto credential_point = RistrettoPoint::Decode(ballot.credential_pk);
  Require(credential_point.has_value(), "tally: validated ballot has bad credential point");
  MixItem item;
  item.cts = {ballot.encrypted_vote, ElGamalTrivialEncrypt(*credential_point)};
  item.EnsureWire();
  return item;
}

void DecryptBatchBuffers::Init(const ElectionAuthority& authority, size_t n,
                               std::vector<std::vector<DecryptionShare>>* shares,
                               std::vector<CompressedRistretto>* encoded) {
  members = authority.size();
  threshold = authority.threshold();
  // Failure capture, only live when a fault plan is armed (nothing can fail
  // otherwise). Reports are written positionally and merged sequentially in
  // FinalizeDecryptBatch, so blame never depends on shard scheduling.
  armed = FaultInjector::Armed();
  shares_out = shares;
  encoded_out = encoded;
  shares_out->assign(n, {});
  encoded_out->assign(n, CompressedRistretto{});
  self_check.assign(n * members, DleqBatchEntry{});
  failed.assign(armed ? n : 0, {});
  short_of_threshold.assign(n, 0);
}

void DecryptShareShardRange(const TallyService& service, const AuthorityClient& client,
                            std::span<const ElGamalCiphertext> cts,
                            std::span<const ElGamalWire> cts_wire, uint64_t epoch,
                            size_t begin, size_t end, Rng& child,
                            DecryptBatchBuffers& buffers) {
  const ElectionAuthority& authority = service.authority();
  const size_t members = buffers.members;
  for (size_t i = begin; i < end; ++i) {
    std::vector<DecryptionShare>& shares = (*buffers.shares_out)[i];
    shares.reserve(members);
    const CompressedRistretto c1_wire =
        cts_wire.empty() ? cts[i].c1.Encode() : ElGamalWireHalf(cts_wire[i], 0);
    const uint64_t ct_key = (epoch << 32) | static_cast<uint64_t>(i);
    for (size_t m = 0; m < members; ++m) {
      ShareRequestReport report;
      Outcome<DecryptionShare> requested =
          client.RequestShare(m, cts[i], child, ct_key, &c1_wire, &report);
      if (!requested.ok()) {
        if (buffers.armed) {
          buffers.failed[i].push_back(std::move(report));
        }
        continue;
      }
      const DecryptionShare& share = *requested;
      DleqBatchEntry entry;
      entry.domain = std::string(kDecryptionShareDomain);
      entry.statement = DleqStatement::MakePairWire(
          RistrettoPoint::Base(), RistrettoPoint::BaseWire(),
          authority.member(m).public_share, authority.member(m).public_share_wire,
          cts[i].c1, c1_wire, share.share, share.share.Encode());
      entry.transcript = share.proof;
      buffers.self_check[i * members + m] = std::move(entry);
      shares.push_back(std::move(*requested));
    }
    if (shares.size() < buffers.threshold) {
      buffers.short_of_threshold[i] = 1;
      continue;
    }
    (*buffers.encoded_out)[i] = authority.CombineShares(cts[i], shares).Encode();
  }
}

Status FinalizeDecryptBatch(const char* what, DecryptBatchBuffers& buffers,
                            std::vector<DleqBatchEntry>* self_check_accum,
                            std::map<size_t, Status>* blame) {
  // Sequential, index-ordered merges keep blame and failure localization
  // deterministic at any thread count.
  for (size_t i = 0; i < buffers.failed.size(); ++i) {
    for (const ShareRequestReport& report : buffers.failed[i]) {
      blame->emplace(report.member_index, report.status);
    }
  }
  if (buffers.armed) {
    // Compact this batch's self-check region: excluded members leave empty
    // positional slots that the release-gate batch verifier must not see.
    buffers.self_check.erase(
        std::remove_if(buffers.self_check.begin(), buffers.self_check.end(),
                       [](const DleqBatchEntry& e) { return e.domain.empty(); }),
        buffers.self_check.end());
  }
  self_check_accum->insert(self_check_accum->end(),
                           std::make_move_iterator(buffers.self_check.begin()),
                           std::make_move_iterator(buffers.self_check.end()));
  Release(buffers.self_check);
  for (size_t i = 0; i < buffers.short_of_threshold.size(); ++i) {
    if (buffers.short_of_threshold[i] != 0) {
      return Status::Error(
          StatusCode::kUnavailable,
          std::string(what) + ": only " + std::to_string((*buffers.shares_out)[i].size()) +
              " of " + std::to_string(buffers.members) + " authority shares for ciphertext " +
              std::to_string(i) + " (threshold " + std::to_string(buffers.threshold) + ")");
    }
  }
  return Status::Ok();
}

Status DecryptBatchWithShares(const TallyService& service, const char* what,
                              std::span<const ElGamalCiphertext> cts, Rng& rng,
                              uint64_t epoch,
                              std::vector<std::vector<DecryptionShare>>* shares_out,
                              std::vector<CompressedRistretto>* encoded_out,
                              std::vector<DleqBatchEntry>* self_check,
                              std::map<size_t, Status>* blame,
                              std::span<const ElGamalWire> cts_wire) {
  const size_t n = cts.size();
  Require(cts_wire.empty() || cts_wire.size() == n, "tally: cts wire size mismatch");
  const AuthorityClient client(service.authority(), service.retry_policy());
  DecryptBatchBuffers buffers;
  buffers.Init(service.authority(), n, shares_out, encoded_out);
  auto shards = Executor::Shards(n, Executor::kRngShards);
  auto seeds = ForkRngSeeds(rng, shards.size());
  service.executor().ParallelForEach(shards.size(), [&](size_t s) {
    ChaChaRng child(seeds[s]);
    DecryptShareShardRange(service, client, cts, cts_wire, epoch, shards[s].first,
                           shards[s].second, child, buffers);
  });
  return FinalizeDecryptBatch(what, buffers, self_check, blame);
}

void JoinTags(TallyPipelineState& state) {
  TallyTranscript& t = state.output.transcript;
  TallyResult& result = state.output.result;
  // Hash-join ballot tags against the roster tag multiset: at most one
  // ballot counts per tag; a tag appearing k times means k voters'
  // registrations point at the same credential (k > 1 only under the
  // delegation extension, Appendix C.3). Sequential by design — the join is
  // a cheap ordered map pass whose output order is part of the transcript.
  for (size_t i = 0; i < t.ballot_tags.size(); ++i) {
    auto it = state.roster_tag_counts.find(t.ballot_tags[i]);
    if (it == state.roster_tag_counts.end()) {
      ++result.discards.unmatched_tag;  // fake credential (or never registered)
      continue;
    }
    if (it->second == 0) {
      ++result.discards.duplicate_tag;  // tag already fully consumed
      continue;
    }
    t.counted_indices.push_back(i);
    t.counted_weights.push_back(it->second);
    it->second = 0;  // consume all matching registrations at once
  }
  Release(state.roster_tag_counts);
}

void CountVotes(const CandidateList& candidates, TallyPipelineState& state) {
  TallyTranscript& t = state.output.transcript;
  TallyResult& result = state.output.result;
  for (size_t c = 0; c < t.counted_indices.size(); ++c) {
    uint64_t weight = t.counted_weights[c];
    auto candidate = candidates.IndexOfEncoding(t.vote_points[c]);
    if (!candidate.has_value()) {
      ++result.discards.invalid_vote;
      continue;
    }
    result.counts[candidates.name(*candidate)] += weight;
    result.counted += weight;
  }
}

void ReleaseGate(TallyPipelineState& state, Rng& rng) {
  // Release gate: all decryption-share proofs produced above must verify as
  // one batch. A failure here is an internal fault, not a verification
  // result, hence Require rather than a Status — corrupted responses never
  // reach this batch (they are rejected on arrival and their members
  // excluded), so a failure here means *we* produced a bad proof.
  Require(BatchVerifyDleq(state.share_self_check, rng).ok(),
          "tally: produced decryption share failed batched self-check");
  Release(state.share_self_check);
}

}  // namespace tally_internal

using tally_internal::BallotMixItem;
using tally_internal::DecryptBatchBuffers;
using tally_internal::DecryptBatchWithShares;
using tally_internal::DecryptShareShardRange;
using tally_internal::FinalizeDecryptBatch;
using tally_internal::ProbeStageFault;
using tally_internal::Release;
using tally_internal::TaggedWire;

std::vector<std::optional<Ballot>> ValidateBallots(
    const PublicLedger& ledger, const std::set<CompressedRistretto>& authorized_kiosks,
    TallyDiscards* discards, Executor& executor) {
  Require(discards != nullptr, "tally: discards output required");
  const size_t n = ledger.BallotCount();
  std::vector<std::optional<Ballot>> validated(n);
  // Parse + two Schnorr verifications per ballot: the validate stage's
  // per-ballot hot loop. Each shard streams its ballot range straight off
  // the backing segments through its own cursor (zero-copy views, at most
  // one segment resident per shard), so the stage never materializes the
  // ballot log — the property that lets a file-backed ledger larger than
  // RAM tally in O(segment) memory. Shard boundaries come from
  // Executor::Shards (data-size only) and outcomes are written positionally
  // then tallied sequentially, so discard counts never depend on scheduling
  // or on the storage backend.
  std::vector<uint8_t> outcome(n, tally_internal::kBallotOk);
  auto shards = Executor::Shards(n, Executor::kRngShards);
  executor.ParallelForEach(shards.size(), [&](size_t s) {
    tally_internal::ValidateBallotShard(ledger, authorized_kiosks, shards[s].first,
                                        shards[s].second, validated, outcome);
  });
  tally_internal::TallyValidationOutcomes(outcome, discards);
  return validated;
}

std::vector<Ballot> DeduplicateBallots(const std::vector<std::optional<Ballot>>& validated,
                                       TallyDiscards* discards) {
  Require(discards != nullptr, "tally: discards output required");
  // Keep the *last* valid ballot per credential key (re-voting overrides,
  // matching the JCJ-with-tags dedup rule; ledger order is cast order).
  std::map<CompressedRistretto, Ballot> latest;
  std::map<CompressedRistretto, size_t> first_seen_order;
  size_t order = 0;
  for (const std::optional<Ballot>& ballot : validated) {
    if (!ballot.has_value()) {
      continue;
    }
    auto [it, inserted] = latest.insert_or_assign(ballot->credential_pk, *ballot);
    if (inserted) {
      first_seen_order[ballot->credential_pk] = order++;
    } else {
      ++discards->superseded;
    }
  }

  // Canonical order: first-seen order of each credential (deterministic and
  // recomputable by any auditor).
  std::vector<Ballot> accepted(latest.size());
  for (const auto& [credential, ballot] : latest) {
    accepted[first_seen_order.at(credential)] = ballot;
  }
  return accepted;
}

std::vector<Ballot> ValidateAndDeduplicate(
    const PublicLedger& ledger, const std::set<CompressedRistretto>& authorized_kiosks,
    TallyDiscards* discards, Executor& executor) {
  return DeduplicateBallots(ValidateBallots(ledger, authorized_kiosks, discards, executor),
                            discards);
}

TallyService::TallyService(const ElectionAuthority& authority, const TaggingService& tagging,
                           size_t mix_pairs, Executor& executor, RetryPolicy retry_policy,
                           TallyEngine engine, bool revoting, bool revote_padding)
    : authority_(authority), tagging_(tagging), mix_pairs_(mix_pairs), executor_(executor),
      retry_policy_(retry_policy), engine_(engine), revoting_(revoting),
      revote_padding_(revote_padding) {}

namespace {

using tally_internal::kEpochBallotTags;
using tally_internal::kEpochRosterTags;
using tally_internal::kEpochVotes;

Status StageValidate(const TallyService& service, const PublicLedger& ledger,
                     const CandidateList&, const std::set<CompressedRistretto>& kiosks, Rng&,
                     TallyPipelineState& state) {
  if (service.revoting()) {
    // Revote mode: parse + binding-proof check (no kiosk certificate —
    // eligibility is enforced by the tag join). Same shard/outcome shape as
    // the legacy kernel.
    const size_t n = ledger.BallotCount();
    state.validated_revotes.assign(n, std::nullopt);
    std::vector<uint8_t> outcome(n, tally_internal::kBallotOk);
    auto shards = Executor::Shards(n, Executor::kRngShards);
    const RistrettoPoint& pk = service.authority().public_key();
    service.executor().ParallelForEach(shards.size(), [&](size_t s) {
      RevoteValidateShard(ledger, pk, shards[s].first, shards[s].second,
                          state.validated_revotes, outcome);
    });
    tally_internal::TallyValidationOutcomes(outcome, &state.output.result.discards);
    return Status::Ok();
  }
  state.validated_ballots =
      ValidateBallots(ledger, kiosks, &state.output.result.discards, service.executor());
  return Status::Ok();
}

Status StageDedup(const TallyService& service, const PublicLedger&, const CandidateList&,
                  const std::set<CompressedRistretto>&, Rng& rng, TallyPipelineState& state) {
  if (service.revoting()) {
    return tally_internal::RunRevoteDedup(service, rng, state);
  }
  if (Status fault = ProbeStageFault(faults::kTallyDedup, 0, "dedup"); !fault.ok()) {
    return fault;
  }
  state.output.transcript.accepted_ballots =
      DeduplicateBallots(state.validated_ballots, &state.output.result.discards);
  Release(state.validated_ballots);
  return Status::Ok();
}

Status StageMix(const TallyService& service, const PublicLedger& ledger, const CandidateList&,
                const std::set<CompressedRistretto>&, Rng& rng, TallyPipelineState& state) {
  TallyTranscript& t = state.output.transcript;
  Executor& executor = service.executor();

  if (Status fault = ProbeStageFault(faults::kMixShuffle, 0, "ballot mix"); !fault.ok()) {
    return fault;
  }
  if (service.revoting()) {
    // Revote mode: the dedup stage already produced re-randomized
    // [Enc(vote), Enc(c_pk)] columns for the kept items.
    t.ballot_mix_input = std::move(state.revote_kept);
    Release(state.revote_kept);
  } else {
    // Ballot batch: [Enc(vote), Enc(c_pk)]; wire caches are filled in the
    // same parallel pass that decodes the credential points, so every later
    // hash of these batches is SHA-only.
    t.ballot_mix_input.resize(t.accepted_ballots.size());
    executor.ParallelForEach(t.accepted_ballots.size(), [&](size_t i) {
      t.ballot_mix_input[i] = BallotMixItem(t.accepted_ballots[i]);
    });
  }
  t.ballot_mix_output = RunRpcMixCascade(t.ballot_mix_input, service.authority().public_key(),
                                         service.mix_pairs(), rng, &t.ballot_mix_proof,
                                         executor);

  // Roster batch: [c_pc].
  if (Status fault = ProbeStageFault(faults::kMixShuffle, 1, "roster mix"); !fault.ok()) {
    return fault;
  }
  std::vector<RegistrationRecord> roster = ledger.ActiveRegistrations();
  t.roster_mix_input.resize(roster.size());
  executor.ParallelForEach(roster.size(), [&](size_t i) {
    MixItem item;
    item.cts = {roster[i].public_credential};
    item.EnsureWire();
    t.roster_mix_input[i] = std::move(item);
  });
  t.roster_mix_output = RunRpcMixCascade(t.roster_mix_input, service.authority().public_key(),
                                         service.mix_pairs(), rng, &t.roster_mix_proof,
                                         executor);

  // Hand the credential columns to the tag stage.
  state.ballot_credentials = BatchColumn(t.ballot_mix_output, 1);
  state.roster_credentials = BatchColumn(t.roster_mix_output, 0);
  return Status::Ok();
}

Status StageTag(const TallyService& service, const PublicLedger&, const CandidateList&,
                const std::set<CompressedRistretto>&, Rng& rng, TallyPipelineState& state) {
  TallyTranscript& t = state.output.transcript;
  if (Status fault = ProbeStageFault(faults::kTagApply, 0, "ballot tagging"); !fault.ok()) {
    return fault;
  }
  // Thread the mix outputs' wire caches (filled at shuffle time) into the
  // first tagging step's statements; each step then feeds the next, and the
  // final step's bytes back the decrypt stage. The transcript bytes do not
  // depend on this threading — only the encode count does.
  state.ballot_tagged = service.tagging().ApplyAll(
      state.ballot_credentials, &t.ballot_tag_steps, rng, service.executor(),
      BatchColumnWire(t.ballot_mix_output, 1));
  Release(state.ballot_credentials);
  if (Status fault = ProbeStageFault(faults::kTagApply, 1, "roster tagging"); !fault.ok()) {
    return fault;
  }
  state.roster_tagged = service.tagging().ApplyAll(
      state.roster_credentials, &t.roster_tag_steps, rng, service.executor(),
      BatchColumnWire(t.roster_mix_output, 0));
  Release(state.roster_credentials);
  return Status::Ok();
}

Status StageDecryptTags(const TallyService& service, const PublicLedger&, const CandidateList&,
                        const std::set<CompressedRistretto>&, Rng& rng,
                        TallyPipelineState& state) {
  TallyTranscript& t = state.output.transcript;
  // Roster side first (the stream order auditors replay), then ballots.
  Status status = DecryptBatchWithShares(service, "roster tags", state.roster_tagged, rng,
                                         kEpochRosterTags, &t.roster_tag_shares,
                                         &t.roster_tags, &state.share_self_check,
                                         &state.authority_blame,
                                         TaggedWire(t.roster_tag_steps));
  if (!status.ok()) {
    return status;
  }
  Release(state.roster_tagged);
  for (const CompressedRistretto& tag : t.roster_tags) {
    state.roster_tag_counts[tag] += 1;
  }
  status = DecryptBatchWithShares(service, "ballot tags", state.ballot_tagged, rng,
                                  kEpochBallotTags, &t.ballot_tag_shares, &t.ballot_tags,
                                  &state.share_self_check, &state.authority_blame,
                                  TaggedWire(t.ballot_tag_steps));
  if (!status.ok()) {
    return status;
  }
  Release(state.ballot_tagged);
  return Status::Ok();
}

Status StageJoin(const TallyService&, const PublicLedger&, const CandidateList&,
                 const std::set<CompressedRistretto>&, Rng&, TallyPipelineState& state) {
  tally_internal::JoinTags(state);
  return Status::Ok();
}

Status StageDecryptVotes(const TallyService& service, const PublicLedger&,
                         const CandidateList& candidates,
                         const std::set<CompressedRistretto>&, Rng& rng,
                         TallyPipelineState& state) {
  TallyTranscript& t = state.output.transcript;
  std::vector<ElGamalCiphertext> counted_votes;
  counted_votes.reserve(t.counted_indices.size());
  for (uint64_t index : t.counted_indices) {
    counted_votes.push_back(t.ballot_mix_output[index].cts.at(0));
  }
  // Vote ciphertexts are mix outputs: their wire caches (filled at shuffle
  // time) back the decryption-share statements directly.
  std::vector<ElGamalWire> counted_wire = BatchColumnWire(t.ballot_mix_output, 0);
  std::vector<ElGamalWire> counted_votes_wire;
  if (counted_wire.size() == t.ballot_mix_output.size()) {
    counted_votes_wire.reserve(t.counted_indices.size());
    for (uint64_t index : t.counted_indices) {
      counted_votes_wire.push_back(counted_wire[index]);
    }
  }
  Status status = DecryptBatchWithShares(service, "votes", counted_votes, rng, kEpochVotes,
                                         &t.vote_shares, &t.vote_points,
                                         &state.share_self_check, &state.authority_blame,
                                         counted_votes_wire);
  if (!status.ok()) {
    return status;
  }
  tally_internal::CountVotes(candidates, state);
  return Status::Ok();
}

Status StageReleaseGate(const TallyService&, const PublicLedger&, const CandidateList&,
                        const std::set<CompressedRistretto>&, Rng& rng,
                        TallyPipelineState& state) {
  tally_internal::ReleaseGate(state, rng);
  return Status::Ok();
}

constexpr TallyService::Stage kPipeline[] = {
    {"validate", StageValidate},
    {"dedup", StageDedup},
    {"mix", StageMix},
    {"tag", StageTag},
    {"decrypt-tags", StageDecryptTags},
    {"join", StageJoin},
    {"decrypt-votes", StageDecryptVotes},
    {"release-gate", StageReleaseGate},
};

}  // namespace

std::span<const TallyService::Stage> TallyService::Pipeline() { return kPipeline; }

Outcome<TallyOutput> TallyService::Run(const PublicLedger& ledger,
                                       const CandidateList& candidates,
                                       const std::set<CompressedRistretto>& authorized_kiosks,
                                       Rng& rng, TallyRunMetrics* metrics) const {
  if (engine_ == TallyEngine::kDataflow) {
    return tally_internal::RunDataflowTally(*this, ledger, candidates, authorized_kiosks, rng,
                                            metrics);
  }
  Executor::Scope scope(executor_);  // nested crypto kernels follow this pool
  const auto run_start = std::chrono::steady_clock::now();
  if (metrics != nullptr) {
    *metrics = TallyRunMetrics{};
    metrics->threads = executor_.threads();
    metrics->executor_start = executor_.Stats();
  }
  TallyPipelineState state;
  for (size_t i = 0; i < candidates.size(); ++i) {
    state.output.result.counts[candidates.name(i)] = 0;
  }
  for (const Stage& stage : Pipeline()) {
    const auto stage_start = std::chrono::steady_clock::now();
    Status status = stage.run(*this, ledger, candidates, authorized_kiosks, rng, state);
    if (metrics != nullptr) {
      metrics->stages.push_back(TallyStageBusy{
          stage.name,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - stage_start)
              .count()});
    }
    if (!status.ok()) {
      return Outcome<TallyOutput>::Fail(
          Status::Error(status.code(), std::string(stage.name) + " stage: " + status.reason()));
    }
  }
  for (const auto& [member, status] : state.authority_blame) {
    state.output.excluded_authorities.push_back(AuthorityBlame{member, status});
  }
  if (metrics != nullptr) {
    metrics->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start).count();
    metrics->executor_end = executor_.Stats();
  }
  return Outcome<TallyOutput>::Ok(std::move(state.output));
}

}  // namespace votegral
