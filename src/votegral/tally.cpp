#include "src/votegral/tally.h"

#include <algorithm>

#include "src/crypto/batch.h"

namespace votegral {

std::vector<Ballot> ValidateAndDeduplicate(
    const PublicLedger& ledger, const std::set<CompressedRistretto>& authorized_kiosks,
    TallyDiscards* discards) {
  Require(discards != nullptr, "tally: discards output required");
  std::vector<Bytes> raw = ledger.AllBallots();

  // Keep the *last* valid ballot per credential key (re-voting overrides,
  // matching the JCJ-with-tags dedup rule; ledger order is cast order).
  std::map<CompressedRistretto, Ballot> latest;
  std::map<CompressedRistretto, size_t> first_seen_order;
  size_t order = 0;
  for (const Bytes& payload : raw) {
    auto ballot = Ballot::Parse(payload);
    if (!ballot.has_value()) {
      ++discards->invalid_structure;
      continue;
    }
    if (!CheckBallot(*ballot, authorized_kiosks).ok()) {
      ++discards->invalid_signature;
      continue;
    }
    auto [it, inserted] = latest.insert_or_assign(ballot->credential_pk, *ballot);
    if (inserted) {
      first_seen_order[ballot->credential_pk] = order++;
    } else {
      ++discards->superseded;
    }
  }

  // Canonical order: first-seen order of each credential (deterministic and
  // recomputable by any auditor).
  std::vector<Ballot> accepted(latest.size());
  for (const auto& [credential, ballot] : latest) {
    accepted[first_seen_order.at(credential)] = ballot;
  }
  return accepted;
}

TallyService::TallyService(const ElectionAuthority& authority, const TaggingService& tagging,
                           size_t mix_pairs)
    : authority_(authority), tagging_(tagging), mix_pairs_(mix_pairs) {}

namespace {

// Extracts the credential ciphertexts (column 1) from a width-2 batch.
std::vector<ElGamalCiphertext> CredentialColumn(const MixBatch& batch) {
  std::vector<ElGamalCiphertext> out;
  out.reserve(batch.size());
  for (const MixItem& item : batch) {
    out.push_back(item.cts.at(1));
  }
  return out;
}

std::vector<ElGamalCiphertext> RosterColumn(const MixBatch& batch) {
  std::vector<ElGamalCiphertext> out;
  out.reserve(batch.size());
  for (const MixItem& item : batch) {
    out.push_back(item.cts.at(0));
  }
  return out;
}

}  // namespace

TallyOutput TallyService::Run(const PublicLedger& ledger, const CandidateList& candidates,
                              const std::set<CompressedRistretto>& authorized_kiosks,
                              Rng& rng) const {
  TallyOutput output;
  TallyTranscript& t = output.transcript;
  TallyResult& result = output.result;
  for (size_t i = 0; i < candidates.size(); ++i) {
    result.counts[candidates.name(i)] = 0;
  }

  // Steps 1-2: validate and deduplicate.
  t.accepted_ballots = ValidateAndDeduplicate(ledger, authorized_kiosks, &result.discards);

  // Step 3a: build and mix the ballot batch.
  t.ballot_mix_input.reserve(t.accepted_ballots.size());
  for (const Ballot& ballot : t.accepted_ballots) {
    auto credential_point = RistrettoPoint::Decode(ballot.credential_pk);
    Require(credential_point.has_value(), "tally: validated ballot has bad credential point");
    MixItem item;
    item.cts = {ballot.encrypted_vote, ElGamalTrivialEncrypt(*credential_point)};
    t.ballot_mix_input.push_back(std::move(item));
  }
  t.ballot_mix_output = RunRpcMixCascade(t.ballot_mix_input, authority_.public_key(),
                                         mix_pairs_, rng, &t.ballot_mix_proof);

  // Step 3b: build and mix the roster batch.
  for (const RegistrationRecord& record : ledger.ActiveRegistrations()) {
    MixItem item;
    item.cts = {record.public_credential};
    t.roster_mix_input.push_back(std::move(item));
  }
  t.roster_mix_output = RunRpcMixCascade(t.roster_mix_input, authority_.public_key(),
                                         mix_pairs_, rng, &t.roster_mix_proof);

  // Step 4: deterministic tagging over both credential ciphertext lists.
  std::vector<ElGamalCiphertext> ballot_credentials = CredentialColumn(t.ballot_mix_output);
  std::vector<ElGamalCiphertext> roster_credentials = RosterColumn(t.roster_mix_output);
  std::vector<ElGamalCiphertext> ballot_tagged =
      tagging_.ApplyAll(ballot_credentials, &t.ballot_tag_steps, rng);
  std::vector<ElGamalCiphertext> roster_tagged =
      tagging_.ApplyAll(roster_credentials, &t.roster_tag_steps, rng);

  // Step 5: verifiable decryption of blinded tags. Every share the service
  // produces is also queued for one batched (multi-scalar-multiplication)
  // self-check before the transcript is released: a buggy or compromised
  // member implementation must not be able to publish a transcript the
  // universal verifier would reject.
  std::vector<DleqBatchEntry> share_self_check;
  auto decrypt_with_shares = [&](const ElGamalCiphertext& ct,
                                 std::vector<DecryptionShare>* shares) {
    shares->clear();
    for (size_t m = 0; m < authority_.size(); ++m) {
      shares->push_back(authority_.ComputeShare(m, ct, rng));
      const DecryptionShare& share = shares->back();
      DleqBatchEntry entry;
      entry.domain = std::string(kDecryptionShareDomain);
      entry.statement = DleqStatement::MakePair(RistrettoPoint::Base(),
                                                authority_.member(m).public_share, ct.c1,
                                                share.share);
      entry.transcript = share.proof;
      share_self_check.push_back(std::move(entry));
    }
    return authority_.CombineShares(ct, *shares);
  };

  // Multiset of roster tags: a tag appearing k times means k voters'
  // registrations point at the same credential (k > 1 only under the
  // delegation extension, Appendix C.3).
  std::map<CompressedRistretto, uint64_t> roster_tag_counts;
  t.roster_tag_shares.resize(roster_tagged.size());
  for (size_t i = 0; i < roster_tagged.size(); ++i) {
    RistrettoPoint tag = decrypt_with_shares(roster_tagged[i], &t.roster_tag_shares[i]);
    auto encoded = tag.Encode();
    t.roster_tags.push_back(encoded);
    roster_tag_counts[encoded] += 1;
  }

  t.ballot_tag_shares.resize(ballot_tagged.size());
  for (size_t i = 0; i < ballot_tagged.size(); ++i) {
    RistrettoPoint tag = decrypt_with_shares(ballot_tagged[i], &t.ballot_tag_shares[i]);
    auto encoded = tag.Encode();
    t.ballot_tags.push_back(encoded);
    auto it = roster_tag_counts.find(encoded);
    if (it == roster_tag_counts.end()) {
      ++result.discards.unmatched_tag;  // fake credential (or never registered)
      continue;
    }
    if (it->second == 0) {
      ++result.discards.duplicate_tag;  // tag already fully consumed
      continue;
    }
    t.counted_indices.push_back(i);
    t.counted_weights.push_back(it->second);
    it->second = 0;  // consume all matching registrations at once
  }

  // Step 6-7: verifiable vote decryption for the counted ballots.
  for (size_t c = 0; c < t.counted_indices.size(); ++c) {
    uint64_t index = t.counted_indices[c];
    uint64_t weight = t.counted_weights[c];
    const ElGamalCiphertext& vote_ct = t.ballot_mix_output[index].cts.at(0);
    std::vector<DecryptionShare> shares;
    RistrettoPoint vote = decrypt_with_shares(vote_ct, &shares);
    t.vote_shares.push_back(std::move(shares));
    t.vote_points.push_back(vote.Encode());
    auto candidate = candidates.IndexOfPoint(vote);
    if (!candidate.has_value()) {
      ++result.discards.invalid_vote;
      continue;
    }
    result.counts[candidates.name(*candidate)] += weight;
    result.counted += weight;
  }

  // Release gate: all decryption-share proofs produced above must verify as
  // one batch. A failure here is an internal fault, not a verification
  // result, hence Require rather than a Status.
  Require(BatchVerifyDleq(share_self_check, rng).ok(),
          "tally: produced decryption share failed batched self-check");
  return output;
}

}  // namespace votegral
