// The Votegral tally pipeline (Fig. 3, Appendix M), restructured as an
// explicit staged, sharded, parallel pipeline:
//
//   validate -> dedup -> mix -> tag -> decrypt-tags -> join -> decrypt-votes
//                                                        (-> release gate)
//
// Stage/shard architecture:
//  * Each stage consumes the previous stage's output as sharded chunks
//    (Executor::Shards — boundaries fixed by the data size, never by the
//    thread count) and fans per-ballot work (signature validation, mix
//    re-encryption, tagging exponentiations, decryption shares) out across
//    the work pool (src/common/executor.h).
//  * Stages that consume randomness draw forked per-shard DRBG streams
//    (ForkRngSeeds) from the caller's Rng, so the transcript is
//    byte-identical at any thread count — `threads=1` and `threads=64`
//    produce the same election, bit for bit.
//  * Intermediate shards are working state, released as soon as the next
//    stage has consumed them; only what universal verification needs is
//    retained in TallyTranscript. Ballots are streamed off the ledger's
//    storage backend per shard (PublicLedger::BallotCursor — zero-copy
//    segment views, never a wholesale copy), so the validate stage works
//    unchanged against the in-memory store or a file-backed segmented log
//    larger than RAM.
//
// Everything needed for universal verification is collected in
// TallyTranscript; see src/votegral/verifier.h.
#ifndef SRC_VOTEGRAL_TALLY_H_
#define SRC_VOTEGRAL_TALLY_H_

#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/common/executor.h"
#include "src/common/faults.h"
#include "src/common/outcome.h"
#include "src/crypto/batch.h"
#include "src/crypto/dkg.h"
#include "src/ledger/subledgers.h"
#include "src/votegral/authority_client.h"
#include "src/votegral/ballot.h"
#include "src/votegral/mixnet.h"
#include "src/votegral/revote.h"
#include "src/votegral/tagging.h"

namespace votegral {

// Aggregate discard statistics (published with the result).
struct TallyDiscards {
  size_t invalid_structure = 0;  // unparseable ledger payloads
  size_t invalid_signature = 0;  // bad credential sig / kiosk cert
  size_t superseded = 0;         // earlier ballots from re-voting credentials
  size_t unmatched_tag = 0;      // fake-credential ballots (by design)
  size_t duplicate_tag = 0;      // second ballot matching an already-used tag
  size_t invalid_vote = 0;       // decrypts outside the candidate set
};

// The published election result.
struct TallyResult {
  std::map<std::string, size_t> counts;  // candidate -> votes
  size_t counted = 0;
  TallyDiscards discards;
};

// Every artifact an auditor needs to re-check the tally from the ledger.
struct TallyTranscript {
  // Validate/dedup outputs: the validated, deduplicated ballots, in
  // mix-input order (recomputable from L_V by any auditor).
  std::vector<Ballot> accepted_ballots;

  // Mix stage.
  MixBatch ballot_mix_input;   // width 2: [Enc(vote), Enc(c_pk)]
  MixBatch ballot_mix_output;
  MixProof ballot_mix_proof;
  MixBatch roster_mix_input;   // width 1: [c_pc]
  MixBatch roster_mix_output;
  MixProof roster_mix_proof;

  // Tag stage: tagging chains over the credential ciphertexts.
  std::vector<TaggingStep> ballot_tag_steps;
  std::vector<TaggingStep> roster_tag_steps;

  // Decrypt-tags stage: verifiable tag decryption.
  std::vector<std::vector<DecryptionShare>> ballot_tag_shares;  // [ct][member]
  std::vector<std::vector<DecryptionShare>> roster_tag_shares;
  std::vector<CompressedRistretto> ballot_tags;
  std::vector<CompressedRistretto> roster_tags;

  // Join / decrypt-votes stages: which mixed ballots counted, with what
  // weight (weight > 1 arises only when several roster tags decrypt to the
  // same credential — the delegation extension of Appendix C.3), and their
  // verifiable vote decryptions.
  std::vector<uint64_t> counted_indices;  // into ballot_mix_output
  std::vector<uint64_t> counted_weights;  // parallel: matching roster tags
  std::vector<std::vector<DecryptionShare>> vote_shares;  // parallel to counted_indices
  std::vector<CompressedRistretto> vote_points;

  // Deniable-revoting section (docs/REVOTING.md): the verifiable supersession
  // dedup that replaces the plaintext dedup under ElectionConfig::revoting.
  // Empty in legacy elections — the pre-revoting transcript digests are
  // unchanged.
  RevoteTranscript revote;
};

// Localized blame for an authority member excluded from the tally: the
// coded status names the member, the fault point and the failure class
// (unavailable / timeout / invalid_proof / exhausted). Recorded once per
// member with the first failure observed in ciphertext order, so the record
// is deterministic at any thread count.
struct AuthorityBlame {
  size_t member_index = 0;
  Status status = Status::Ok();
};

struct TallyOutput {
  TallyResult result;
  TallyTranscript transcript;
  // Members the decrypt stages excluded under t-of-n degradation (empty on
  // the happy path, and always empty in additive n-of-n mode — there a
  // single failed member fails the whole tally instead). Not part of the
  // transcript digest: the transcript itself records participation via each
  // share's member_index.
  std::vector<AuthorityBlame> excluded_authorities;
};

// Mutable state threaded through the stage pipeline: the output under
// construction plus inter-stage working buffers (sharded chunks a stage
// produces for the next one and that are released once consumed).
struct TallyPipelineState {
  TallyOutput output;

  // validate -> dedup: per-ledger-index validation results (nullopt =
  // discarded). Exactly one of the two vectors is populated, by mode.
  std::vector<std::optional<Ballot>> validated_ballots;
  std::vector<std::optional<RevoteBallot>> validated_revotes;
  // revote dedup -> mix: the kept [Enc(vote), Enc(c_pk)] columns, already
  // re-randomized by the revote mix; they become the ballot mix input.
  MixBatch revote_kept;
  // mix -> tag: the credential ciphertext columns of the mixed batches.
  std::vector<ElGamalCiphertext> ballot_credentials;
  std::vector<ElGamalCiphertext> roster_credentials;
  // tag -> decrypt-tags: the fully tagged ciphertext lists. Their canonical
  // wire bytes are NOT duplicated here: the decrypt stage reads the last
  // tagging step's output_wire straight out of the transcript, which stays
  // alive for the whole pipeline.
  std::vector<ElGamalCiphertext> ballot_tagged;
  std::vector<ElGamalCiphertext> roster_tagged;
  // decrypt-tags -> join: roster tag multiset.
  std::map<CompressedRistretto, uint64_t> roster_tag_counts;
  // Accumulated self-check batch for the release gate.
  std::vector<DleqBatchEntry> share_self_check;
  // Degradation bookkeeping: member -> first coded failure (ciphertext
  // order), folded into TallyOutput::excluded_authorities at the end.
  std::map<size_t, Status> authority_blame;
};

// Which scheduler runs the pipeline. Both engines execute the same
// per-shard kernels over the same shard boundaries and forked seeds, so
// their transcripts are byte-identical; they differ only in when a shard
// may start.
enum class TallyEngine {
  // Chunk-granular dataflow on a TaskGraph: stage i+1 starts on shard k the
  // moment stage i finishes it (default — strictly more overlap).
  kDataflow,
  // The stage-wide barrier pipeline (Pipeline()): every stage fully
  // completes before the next begins. Kept as the reference scheduler for
  // the byte-compat tests and per-stage latency benchmarks.
  kBarrier,
};

// Per-run scheduler observability, filled by Run() on request. Busy times
// are summed node/stage execution seconds: for the dataflow engine,
// busy/(wall*threads) per stage is the occupancy number the streaming bench
// reports; for the barrier engine each stage's busy time is its wall time.
struct TallyStageBusy {
  std::string name;
  double busy_seconds = 0.0;
};

struct TallyRunMetrics {
  double wall_seconds = 0.0;
  size_t threads = 0;
  std::vector<TallyStageBusy> stages;
  // Executor counters straddling the run (delta = this run's scheduling).
  ExecutorStats executor_start;
  ExecutorStats executor_end;
};

// The tally service: runs the pipeline with the authority's and tagging
// committee's secrets. Parallel work is dispatched to the injected
// executor; pass Executor(1) (or plumb ElectionConfig::threads = 1) for a
// fully serial run — the transcript is identical either way.
class TallyService {
 public:
  TallyService(const ElectionAuthority& authority, const TaggingService& tagging,
               size_t mix_pairs = 2, Executor& executor = Executor::Global(),
               RetryPolicy retry_policy = RetryPolicy(),
               TallyEngine engine = TallyEngine::kDataflow,
               bool revoting = false, bool revote_padding = true);

  // Runs the staged pipeline over the ledger's ballots and active roster.
  // Fails (coded, localized — never a wrong result) when fewer than
  // threshold() authorities deliver valid shares for some ciphertext, or
  // when a mix/tag stage faults; succeeds with any honest-and-live t-subset,
  // naming the excluded members in TallyOutput::excluded_authorities.
  // `metrics`, when non-null, receives wall/busy/occupancy numbers.
  Outcome<TallyOutput> Run(const PublicLedger& ledger, const CandidateList& candidates,
                           const std::set<CompressedRistretto>& authorized_kiosks,
                           Rng& rng, TallyRunMetrics* metrics = nullptr) const;

  // One named step of the pipeline; stages run in order, each fanning its
  // per-chunk work out on the executor, and the first stage failure aborts
  // the run. Exposed for tests and for the stage-latency benchmarks.
  struct Stage {
    const char* name;
    Status (*run)(const TallyService&, const PublicLedger&, const CandidateList&,
                  const std::set<CompressedRistretto>&, Rng&, TallyPipelineState&);
  };
  static std::span<const Stage> Pipeline();

  const ElectionAuthority& authority() const { return authority_; }
  const TaggingService& tagging() const { return tagging_; }
  size_t mix_pairs() const { return mix_pairs_; }
  Executor& executor() const { return executor_; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }
  TallyEngine engine() const { return engine_; }
  bool revoting() const { return revoting_; }
  bool revote_padding() const { return revote_padding_; }

 private:
  const ElectionAuthority& authority_;
  const TaggingService& tagging_;
  size_t mix_pairs_;
  Executor& executor_;
  RetryPolicy retry_policy_;
  TallyEngine engine_;
  bool revoting_;
  bool revote_padding_;
};

// Validate stage, phase 1 (shared with the universal verifier): parses and
// signature-checks every ballot on L_V in parallel chunks. Entry i of the
// result corresponds to ledger ballot i; nullopt marks a discarded ballot,
// with the reason tallied into `discards` deterministically.
std::vector<std::optional<Ballot>> ValidateBallots(
    const PublicLedger& ledger, const std::set<CompressedRistretto>& authorized_kiosks,
    TallyDiscards* discards, Executor& executor = Executor::Global());

// Dedup stage, phase 2: keeps the *last* valid ballot per credential key
// (re-voting overrides; ledger order is cast order) and returns the
// accepted ballots in first-seen credential order.
std::vector<Ballot> DeduplicateBallots(const std::vector<std::optional<Ballot>>& validated,
                                       TallyDiscards* discards);

// Convenience composition of both phases (tally, verifier, tests).
std::vector<Ballot> ValidateAndDeduplicate(const PublicLedger& ledger,
                                           const std::set<CompressedRistretto>& authorized_kiosks,
                                           TallyDiscards* discards,
                                           Executor& executor = Executor::Global());

}  // namespace votegral

#endif  // SRC_VOTEGRAL_TALLY_H_
