// The Votegral tally pipeline (Fig. 3, Appendix M):
//   1. validate ballots from L_V (signature, kiosk certificate, linear time),
//   2. deduplicate per credential key (the last cast ballot counts),
//   3. mix ballots (vote + wrapped credential) and roster tags {c_pc}
//      through the RPC cascade,
//   4. deterministic tagging: every tallier exponentiates both credential
//      ciphertext lists with per-ciphertext proofs,
//   5. verifiably decrypt the blinded tags on both sides,
//   6. hash-join: count ballots whose blinded credential matches a roster
//      tag, at most one ballot per tag (fakes never match),
//   7. verifiably decrypt the surviving votes and publish results.
//
// Everything needed for universal verification is collected in
// TallyTranscript; see src/votegral/verifier.h.
#ifndef SRC_VOTEGRAL_TALLY_H_
#define SRC_VOTEGRAL_TALLY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/outcome.h"
#include "src/crypto/dkg.h"
#include "src/ledger/subledgers.h"
#include "src/votegral/ballot.h"
#include "src/votegral/mixnet.h"
#include "src/votegral/tagging.h"

namespace votegral {

// Aggregate discard statistics (published with the result).
struct TallyDiscards {
  size_t invalid_structure = 0;  // unparseable ledger payloads
  size_t invalid_signature = 0;  // bad credential sig / kiosk cert
  size_t superseded = 0;         // earlier ballots from re-voting credentials
  size_t unmatched_tag = 0;      // fake-credential ballots (by design)
  size_t duplicate_tag = 0;      // second ballot matching an already-used tag
  size_t invalid_vote = 0;       // decrypts outside the candidate set
};

// The published election result.
struct TallyResult {
  std::map<std::string, size_t> counts;  // candidate -> votes
  size_t counted = 0;
  TallyDiscards discards;
};

// Every artifact an auditor needs to re-check the tally from the ledger.
struct TallyTranscript {
  // Step 1-2 outputs: the validated, deduplicated ballots, in mix-input
  // order (recomputable from L_V by any auditor).
  std::vector<Ballot> accepted_ballots;

  // Step 3: mixing.
  MixBatch ballot_mix_input;   // width 2: [Enc(vote), Enc(c_pk)]
  MixBatch ballot_mix_output;
  MixProof ballot_mix_proof;
  MixBatch roster_mix_input;   // width 1: [c_pc]
  MixBatch roster_mix_output;
  MixProof roster_mix_proof;

  // Step 4: tagging chains over the credential ciphertexts.
  std::vector<TaggingStep> ballot_tag_steps;
  std::vector<TaggingStep> roster_tag_steps;

  // Step 5: verifiable tag decryption.
  std::vector<std::vector<DecryptionShare>> ballot_tag_shares;  // [ct][member]
  std::vector<std::vector<DecryptionShare>> roster_tag_shares;
  std::vector<CompressedRistretto> ballot_tags;
  std::vector<CompressedRistretto> roster_tags;

  // Step 6-7: which mixed ballots counted, with what weight (weight > 1
  // arises only when several roster tags decrypt to the same credential —
  // the delegation extension of Appendix C.3), and their verifiable vote
  // decryptions.
  std::vector<uint64_t> counted_indices;  // into ballot_mix_output
  std::vector<uint64_t> counted_weights;  // parallel: matching roster tags
  std::vector<std::vector<DecryptionShare>> vote_shares;  // parallel to counted_indices
  std::vector<CompressedRistretto> vote_points;
};

struct TallyOutput {
  TallyResult result;
  TallyTranscript transcript;
};

// The tally service: runs the pipeline with the authority's and tagging
// committee's secrets.
class TallyService {
 public:
  TallyService(const ElectionAuthority& authority, const TaggingService& tagging,
               size_t mix_pairs = 2);

  // Runs the full pipeline over the ledger's ballots and active roster.
  TallyOutput Run(const PublicLedger& ledger, const CandidateList& candidates,
                  const std::set<CompressedRistretto>& authorized_kiosks, Rng& rng) const;

 private:
  const ElectionAuthority& authority_;
  const TaggingService& tagging_;
  size_t mix_pairs_;
};

// Shared between tally and verifier: validates + deduplicates the ballot
// log. Returns accepted ballots in canonical order and fills discard stats.
std::vector<Ballot> ValidateAndDeduplicate(const PublicLedger& ledger,
                                           const std::set<CompressedRistretto>& authorized_kiosks,
                                           TallyDiscards* discards);

}  // namespace votegral

#endif  // SRC_VOTEGRAL_TALLY_H_
