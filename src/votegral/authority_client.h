// AuthorityClient: the tally's fault-isolating boundary around authority
// members.
//
// The decrypt stages never call ElectionAuthority::ComputeShare directly;
// they go through this wrapper, which models the member as a remote party
// that can crash, stall, delay or lie — the failure surface a distributed
// deployment will have — and turns each request into either a verified
// DecryptionShare or a *coded, localized* Status naming the member and the
// fault point, so degradation logic upstream can exclude the member and
// recombine over the surviving t-subset.
//
// Per request:
//  * bounded retries (RetryPolicy::max_attempts) with deterministic
//    exponential backoff,
//  * a simulated per-request time budget tracked on a VirtualClock
//    (src/common/clock.h): timeouts and injected delays advance the clock,
//    never sleep, and the request fails kTimeout once the deadline is spent,
//  * when a fault plan is armed, the share's DLEQ proof is verified on
//    arrival (a corrupted response fails kInvalidProof immediately —
//    Byzantine responses are excluded, not retried); in no-fault runs
//    arrival verification is skipped and the release gate's batched
//    self-check keeps the existing single-pass cost,
//  * on the no-fault path the wrapper is transparent: one ComputeShare call,
//    identical Rng consumption, identical share bytes — the golden-digest
//    byte-compat contract.
//
// Determinism: every decision here is a pure function of (fault plan, member
// index, ct_key, attempt) and of the request's own local clock; nothing
// depends on scheduling or thread count.
#ifndef SRC_VOTEGRAL_AUTHORITY_CLIENT_H_
#define SRC_VOTEGRAL_AUTHORITY_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/common/clock.h"
#include "src/common/faults.h"
#include "src/common/outcome.h"
#include "src/common/rng.h"
#include "src/crypto/dkg.h"

namespace votegral {

// Retry/deadline policy for one share request. Times are simulated
// milliseconds on the request's VirtualClock.
struct RetryPolicy {
  size_t max_attempts = 3;
  uint64_t base_backoff_ms = 10;     // backoff before retry k is base << (k-1)
  uint64_t request_timeout_ms = 50;  // simulated cost of a timed-out attempt
  uint64_t deadline_ms = 400;        // total budget; kTimeout once exhausted
};

// Localized outcome of one share request: who was asked, what happened,
// at what cost. The failure `status` names the member and the fault point
// ("authority 3: crash injected at authority.compute_share") with a stable
// StatusCode, which is what the tally records as blame for excluded members.
struct ShareRequestReport {
  size_t member_index = 0;
  Status status = Status::Ok();
  size_t attempts = 0;
  double sim_seconds = 0.0;  // simulated time spent on this request
};

class AuthorityClient {
 public:
  explicit AuthorityClient(const ElectionAuthority& authority,
                           RetryPolicy policy = RetryPolicy());

  const RetryPolicy& policy() const { return policy_; }

  // Requests member `member`'s verifiable share for `ct`. `ct_key` is the
  // caller's stable identifier for this ciphertext (unique across the whole
  // run — the decrypt stages use epoch-tagged indices), which keys the fault
  // schedule independently of iteration order. On failure the Outcome's
  // status is coded and localized; `report`, when given, additionally
  // records attempts and simulated cost.
  Outcome<DecryptionShare> RequestShare(size_t member, const ElGamalCiphertext& ct,
                                        Rng& rng, uint64_t ct_key,
                                        const CompressedRistretto* c1_wire = nullptr,
                                        ShareRequestReport* report = nullptr) const;

 private:
  const ElectionAuthority& authority_;
  RetryPolicy policy_;
};

}  // namespace votegral

#endif  // SRC_VOTEGRAL_AUTHORITY_CLIENT_H_
