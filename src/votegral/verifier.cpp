#include "src/votegral/verifier.h"

#include <algorithm>

#include "src/crypto/batch.h"
#include "src/crypto/drbg.h"
#include "src/crypto/sha512.h"
#include "src/trip/official.h"

namespace votegral {

Status VerifyShareAgainstCommitment(const RistrettoPoint& member_share_commitment,
                                    const ElGamalCiphertext& ct,
                                    const DecryptionShare& share) {
  DleqStatement statement = DleqStatement::MakePair(
      RistrettoPoint::Base(), member_share_commitment, ct.c1, share.share);
  return VerifyDleqFs(kDecryptionShareDomain, statement, share.proof);
}

RistrettoPoint CombineSharesPublic(const ElGamalCiphertext& ct,
                                   const std::vector<DecryptionShare>& shares,
                                   size_t expected_members) {
  Require(shares.size() == expected_members, "verifier: wrong number of shares");
  RistrettoPoint sum;
  for (const DecryptionShare& share : shares) {
    sum = sum + share.share;
  }
  return ct.c2 - sum;
}

RistrettoPoint CombineSharesPublicThreshold(const ElGamalCiphertext& ct,
                                            const std::vector<DecryptionShare>& shares) {
  Require(!shares.empty(), "verifier: no shares to combine");
  std::vector<size_t> points;
  points.reserve(shares.size());
  for (const DecryptionShare& share : shares) {
    points.push_back(share.member_index + 1);
  }
  RistrettoPoint blinding;  // Σ λ_j * S_j = F(0) * C1
  for (const DecryptionShare& share : shares) {
    blinding = blinding + LagrangeAtZero(points, share.member_index + 1) * share.share;
  }
  return ct.c2 - blinding;
}

namespace {

constexpr std::string_view kShareWeightDomain = "votegral/verifier/share-batch-weights/v2";

// Verifies a list of per-ciphertext share vectors and returns the decrypted
// points; fails on any bad proof.
//
// The DLEQ share proofs — the dominant group-operation cost of universal
// verification — are checked as ONE random-linear-combination multi-scalar
// multiplication over all ciphertexts and members, with entry preparation,
// share combination and point encoding fanned out across the pool. Weights
// are derived deterministically from the proofs themselves (Fiat–Shamir
// style; the per-proof challenge binds statement and commitments), so the
// check stays reproducible for auditors while remaining unpredictable to
// whoever produced the transcript. On rejection the per-item path re-runs
// to name the offending share.
//
// Wire bytes: the verifier backs every statement with bytes it produced or
// already validated — B and the member commitments from standing caches
// (encoded once per call, not once per share), C1 from `cts_wire` when the
// caller threads validated bytes (mix caches checked by VerifyRpcMixCascade,
// tagging wires checked by VerifyChain) or one fresh encode otherwise, and
// the share point itself encoded once. The proofs' own commit caches are
// attacker data; BatchVerifyDleq decodes and recompares them before hashing.
Status VerifyAndDecryptAll(const std::vector<ElGamalCiphertext>& cts,
                           const std::vector<std::vector<DecryptionShare>>& shares,
                           const VerifierParams& params, Executor& executor,
                           std::vector<CompressedRistretto>* out,
                           const std::string& what,
                           std::span<const ElGamalWire> cts_wire = {}) {
  if (shares.size() != cts.size()) {
    return Status::Error("verifier: " + what + ": share list size mismatch");
  }
  if (cts_wire.size() != cts.size()) {
    cts_wire = {};
  }
  const size_t members = params.authority_shares.size();
  // Additive mode demands the full member set per ciphertext; threshold mode
  // accepts each ciphertext's recorded participant subset of >= t distinct
  // members (what the tally produced under degradation).
  const bool threshold_mode = params.authority_threshold != 0;
  const size_t need = threshold_mode ? params.authority_threshold : members;
  std::vector<CompressedRistretto> member_wire(members);
  BatchEncodePoints(params.authority_shares, member_wire);
  std::vector<DleqBatchEntry> batch(cts.size() * members);
  std::vector<CompressedRistretto> decrypted(cts.size());
  std::vector<uint8_t> bad_count(cts.size(), 0);
  std::vector<uint8_t> bad_member(cts.size(), 0);
  executor.ParallelForEach(cts.size(), [&](size_t i) {
    const size_t count = shares[i].size();
    if (threshold_mode ? (count < need || count > members) : (count != members)) {
      bad_count[i] = 1;
      return;
    }
    const CompressedRistretto c1_wire =
        cts_wire.empty() ? cts[i].c1.Encode() : ElGamalWireHalf(cts_wire[i], 0);
    std::vector<bool> seen(members, false);
    for (size_t m = 0; m < count; ++m) {
      const DecryptionShare& share = shares[i][m];
      if (share.member_index >= members || seen[share.member_index]) {
        bad_member[i] = 1;
        return;
      }
      seen[share.member_index] = true;
      DleqBatchEntry entry;
      entry.domain = std::string(kDecryptionShareDomain);
      entry.statement = DleqStatement::MakePairWire(
          RistrettoPoint::Base(), RistrettoPoint::BaseWire(),
          params.authority_shares[share.member_index], member_wire[share.member_index],
          cts[i].c1, c1_wire, share.share, share.share.Encode());
      entry.transcript = share.proof;
      batch[i * members + m] = std::move(entry);
    }
    decrypted[i] = threshold_mode
                       ? CombineSharesPublicThreshold(cts[i], shares[i]).Encode()
                       : CombineSharesPublic(cts[i], shares[i], members).Encode();
  });
  if (auto i = FirstMarked(bad_count); i.has_value()) {
    return Status::Error("verifier: " + what + ": wrong share count at " +
                         std::to_string(*i));
  }
  if (FirstMarked(bad_member).has_value()) {
    return Status::Error("verifier: " + what + ": bad share member index");
  }
  *out = std::move(decrypted);

  if (threshold_mode) {
    // Sub-full participant subsets leave empty positional slots; compact
    // sequentially (stable order) before deriving the batch weights.
    batch.erase(std::remove_if(batch.begin(), batch.end(),
                               [](const DleqBatchEntry& e) { return e.domain.empty(); }),
                batch.end());
  }
  ChaChaRng weights(DleqBatchWeightSeed(kShareWeightDomain, batch));
  if (BatchVerifyDleq(batch, weights).ok()) {
    return Status::Ok();
  }
  // Localize: re-check share by share with the exact per-item verifier.
  auto all_shares_ok = [&](size_t i) {
    for (const DecryptionShare& share : shares[i]) {
      if (!VerifyShareAgainstCommitment(params.authority_shares[share.member_index], cts[i],
                                        share)
               .ok()) {
        return false;
      }
    }
    return true;
  };
  if (auto i = ParallelFirstFailure(executor, cts.size(), all_shares_ok); i.has_value()) {
    for (const DecryptionShare& share : shares[*i]) {
      Status ok = VerifyShareAgainstCommitment(params.authority_shares[share.member_index],
                                               cts[*i], share);
      if (!ok.ok()) {
        return Status::Error("verifier: " + what + ": share proof invalid at " +
                             std::to_string(*i) + ": " + ok.reason());
      }
    }
  }
  return Status::Error("verifier: " + what + ": batched share check failed");
}

// Field-wise revote ballot equality (no re-encoding: point equality is
// cheaper than Serialize for a 6-point ballot, and this runs once per ledger
// entry).
bool SameRevoteBallot(const RevoteBallot& a, const RevoteBallot& b) {
  return a.encrypted_vote == b.encrypted_vote &&
         a.encrypted_credential == b.encrypted_credential &&
         a.encrypted_counter == b.encrypted_counter && a.proof.t1 == b.proof.t1 &&
         a.proof.t2 == b.proof.t2 && a.proof.z1 == b.proof.z1 && a.proof.z2 == b.proof.z2;
}

// Replays the whole supersession section (docs/REVOTING.md): revalidates the
// board off L_V, recomputes the dummy padding from the published openings,
// re-verifies the revote mix / tagging / decryptions, replays the tag-sort
// last-write-wins selection, enforces the cover envelope, and checks that
// the main ballot mix consumed exactly the kept columns. Every failure is
// localized — a dropped valid ballot is named by its exact ledger index.
Status VerifyRevoteSection(const PublicLedger& ledger, const VerifierParams& params,
                           const TallyTranscript& t, Executor& executor) {
  const RevoteTranscript& rt = t.revote;

  // Board revalidation (parse + binding proof), sharded like the tally.
  const size_t n = ledger.BallotCount();
  std::vector<std::optional<RevoteBallot>> validated(n);
  std::vector<uint8_t> outcome(n, 0);
  const auto shards = Executor::Shards(n, Executor::kRngShards);
  executor.ParallelForEach(shards.size(), [&](size_t s) {
    RevoteValidateShard(ledger, params.authority_pk, shards[s].first, shards[s].second,
                        validated, outcome);
  });

  // The published accepted list must be exactly the valid ballots in ledger
  // order. A tally that drops or alters a non-superseded ballot is caught
  // here, localized to the exact ledger index (supersession happens only
  // later, post-mix, where the selection replay pins it).
  std::vector<size_t> valid_indices;
  valid_indices.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (validated[i].has_value()) {
      valid_indices.push_back(i);
    }
  }
  const size_t common = std::min(valid_indices.size(), rt.accepted.size());
  std::vector<uint8_t> differs(common, 0);
  executor.ParallelForEach(common, [&](size_t p) {
    if (!SameRevoteBallot(*validated[valid_indices[p]], rt.accepted[p])) {
      differs[p] = 1;
    }
  });
  if (auto p = FirstMarked(differs); p.has_value()) {
    return Status::Error("verifier: revote accepted set alters the ballot at ledger index " +
                         std::to_string(valid_indices[*p]));
  }
  if (rt.accepted.size() < valid_indices.size()) {
    return Status::Error("verifier: revote accepted set drops the valid ballot at ledger index " +
                         std::to_string(valid_indices[rt.accepted.size()]));
  }
  if (rt.accepted.size() > valid_indices.size()) {
    return Status::Error("verifier: revote accepted set contains " +
                         std::to_string(rt.accepted.size() - valid_indices.size()) +
                         " ballot(s) not validly on the ledger");
  }
  const size_t total = rt.accepted.size();

  // Dummy openings: structural bounds, then the padded mix input must be the
  // accepted triples followed by exactly the openings' trivial encryptions —
  // that the dummies decrypt to (bottom, d*B, j*B) holds by construction
  // once these bytes match (a forged opening cannot produce them).
  std::vector<std::pair<size_t, uint64_t>> dummy_slots;
  for (size_t g = 0; g < rt.dummies.size(); ++g) {
    if (rt.dummies[g].size == 0 || rt.dummies[g].size >= kRevoteCounterLimit) {
      return Status::Error("verifier: revote dummy group " + std::to_string(g) +
                           " has an out-of-range size");
    }
    for (uint64_t j = 0; j < rt.dummies[g].size; ++j) {
      dummy_slots.emplace_back(g, j);
    }
  }
  if (rt.mix_input.size() != total + dummy_slots.size()) {
    return Status::Error("verifier: revote mix input size mismatch");
  }
  {
    // Dummy openings are recomputed through the same batched fast path the
    // tally used (one MulBase + encode per group, static counter table)
    // instead of per-member RevoteDummyItem calls. Published items that
    // carry a wire cache compare as one 192-byte memcmp — sound because the
    // mix cascade's input validation below re-checks every cache against its
    // points, so a stale cache cannot smuggle mismatched ciphertexts past
    // this check; it just moves the failure to the cascade.
    std::vector<MixItem> expected_dummies(dummy_slots.size());
    BuildRevoteDummyItems(rt.dummies, dummy_slots, expected_dummies, executor);
    std::vector<uint8_t> input_differs(rt.mix_input.size(), 0);
    executor.ParallelForEach(rt.mix_input.size(), [&](size_t i) {
      if (i < total) {
        const RevoteBallot& b = rt.accepted[i];
        MixItem expected;
        expected.cts = {b.encrypted_vote, b.encrypted_credential, b.encrypted_counter};
        if (!(expected == rt.mix_input[i])) {
          input_differs[i] = 1;
        }
      } else {
        const MixItem& expected = expected_dummies[i - total];
        const MixItem& got = rt.mix_input[i];
        const bool same =
            got.HasWire() ? got.wire == expected.wire : expected == got;
        if (!same) {
          input_differs[i] = 1;
        }
      }
    });
    if (auto i = FirstMarked(input_differs); i.has_value()) {
      if (*i < total) {
        return Status::Error("verifier: revote mix input " + std::to_string(*i) +
                             " differs from the accepted ballot");
      }
      return Status::Error("verifier: revote dummy opening does not match mix input (group " +
                           std::to_string(dummy_slots[*i - total].first) + ")");
    }
  }

  // The revote mix cascade.
  if (Status s = VerifyRpcMixCascade(rt.mix_input, rt.mix_output, rt.mix_proof,
                                     params.authority_pk, MixLinkCheck::kBatchedMsm, executor);
      !s.ok()) {
    return Status::Error("verifier: revote mix: " + s.reason());
  }

  // Tagging chain over the credential column, then the two verifiable
  // decryptions (tags, counters).
  std::vector<ElGamalCiphertext> credentials = BatchColumn(rt.mix_output, 1);
  std::vector<ElGamalWire> credentials_wire = BatchColumnWire(rt.mix_output, 1);
  if (Status s = TaggingService::VerifyChain(credentials, rt.tag_steps,
                                             params.tagging_commitments, executor,
                                             credentials_wire);
      !s.ok()) {
    return Status::Error("verifier: revote tagging: " + s.reason());
  }
  const std::vector<ElGamalCiphertext>& tagged =
      rt.tag_steps.empty() ? credentials : rt.tag_steps.back().output;
  std::span<const ElGamalWire> tagged_wire;
  if (rt.tag_steps.empty()) {
    tagged_wire = credentials_wire;
  } else if (rt.tag_steps.back().HasWire()) {
    tagged_wire = rt.tag_steps.back().output_wire;
  }
  std::vector<CompressedRistretto> tags;
  if (Status s = VerifyAndDecryptAll(tagged, rt.tag_shares, params, executor, &tags,
                                     "revote tags", tagged_wire);
      !s.ok()) {
    return s;
  }
  if (tags != rt.tags) {
    return Status::Error("verifier: published revote tags do not match decryptions");
  }
  std::vector<ElGamalCiphertext> counters = BatchColumn(rt.mix_output, 2);
  std::vector<CompressedRistretto> counter_points;
  if (Status s = VerifyAndDecryptAll(counters, rt.counter_shares, params, executor,
                                     &counter_points, "revote counters",
                                     BatchColumnWire(rt.mix_output, 2));
      !s.ok()) {
    return s;
  }
  if (counter_points != rt.counter_points) {
    return Status::Error("verifier: published revote counters do not match decryptions");
  }

  // Selection replay: tag-sort -> last-write-wins is a pure function of the
  // now-verified tags and counters. A tally that kept a superseded item (or
  // dropped a winner) diverges here.
  RevoteSelection selection = SelectLastPerTag(rt.tags, rt.counter_points);
  if (selection.kept != rt.kept_indices) {
    size_t p = 0;
    while (p < selection.kept.size() && p < rt.kept_indices.size() &&
           selection.kept[p] == rt.kept_indices[p]) {
      ++p;
    }
    return Status::Error("verifier: revote kept set differs from the replayed selection at position " +
                         std::to_string(p));
  }

  // Cover envelope: with padding on, the revealed group-size multiset must
  // dominate the envelope of the (public) accepted count — miscounted
  // dummies land here.
  if (params.revote_padding) {
    for (size_t s = 1; s <= RevoteCoverClasses(total); ++s) {
      auto it = selection.group_sizes.find(s);
      const size_t have = it == selection.group_sizes.end() ? 0 : it->second;
      if (have < RevoteCoverTarget(total, s)) {
        return Status::Error("verifier: revote board below the cover envelope for group size " +
                             std::to_string(s));
      }
    }
  }

  // The main ballot mix must consume exactly the kept [vote, credential]
  // columns.
  if (t.ballot_mix_input.size() != rt.kept_indices.size()) {
    return Status::Error("verifier: ballot mix input size mismatch");
  }
  if (auto i = ParallelFirstFailure(executor, rt.kept_indices.size(), [&](size_t i) {
        const MixItem& source = rt.mix_output.at(rt.kept_indices[i]);
        return t.ballot_mix_input[i].cts.size() == 2 &&
               t.ballot_mix_input[i].cts[0] == source.cts.at(0) &&
               t.ballot_mix_input[i].cts[1] == source.cts.at(1);
      });
      i.has_value()) {
    return Status::Error("verifier: ballot mix input " + std::to_string(*i) +
                         " is not the kept revote item");
  }
  return Status::Ok();
}

}  // namespace

Status VerifyElection(const PublicLedger& ledger, const VerifierParams& params,
                      const CandidateList& candidates, const TallyOutput& output,
                      Executor& executor) {
  Executor::Scope scope(executor);  // nested crypto kernels follow this pool
  const TallyTranscript& t = output.transcript;

  // Step 0: the ledger itself must be intact.
  if (Status s = ledger.VerifyChains(); !s.ok()) {
    return s;
  }

  // Validate/dedup replay: recompute the accepted ballot set from L_V
  // (ballot parsing and signature checks fan out in chunks). Revote mode
  // replaces this whole section (and the ballot-mix-input check below) with
  // the supersession replay; a legacy transcript must not smuggle one in.
  std::vector<Ballot> accepted;
  if (params.revoting) {
    if (!t.accepted_ballots.empty()) {
      return Status::Error("verifier: unexpected legacy accepted set in revote mode");
    }
    if (Status s = VerifyRevoteSection(ledger, params, t, executor); !s.ok()) {
      return s;
    }
  } else {
    if (!t.revote.empty()) {
      return Status::Error("verifier: unexpected revote section");
    }
    TallyDiscards recomputed_discards;
    accepted = ValidateAndDeduplicate(ledger, params.authorized_kiosks, &recomputed_discards,
                                      executor);
    if (accepted.size() != t.accepted_ballots.size()) {
      return Status::Error("verifier: accepted ballot set size mismatch");
    }
    if (auto i = ParallelFirstFailure(executor, accepted.size(), [&](size_t i) {
          return accepted[i].Serialize() == t.accepted_ballots[i].Serialize();
        });
        i.has_value()) {
      return Status::Error("verifier: accepted ballot " + std::to_string(*i) + " differs");
    }
  }

  // Every registration record's signature chain must verify (independent
  // per record; first failure reported by roster position).
  std::vector<RegistrationRecord> roster = ledger.ActiveRegistrations();
  if (auto i = ParallelFirstFailure(executor, roster.size(), [&](size_t i) {
        return VerifyRegistrationRecord(roster[i], params.authorized_kiosks,
                                        params.authorized_officials)
            .ok();
      });
      i.has_value()) {
    return VerifyRegistrationRecord(roster[*i], params.authorized_kiosks,
                                    params.authorized_officials);
  }

  // Mix stage replay: inputs must match the accepted ballots / active
  // roster (credential decode per ballot runs in parallel). In revote mode
  // the ballot mix input was already pinned to the kept supersession items.
  if (!params.revoting) {
    if (t.ballot_mix_input.size() != accepted.size()) {
      return Status::Error("verifier: ballot mix input size mismatch");
    }
    std::vector<uint8_t> undecodable(accepted.size(), 0);
    std::vector<uint8_t> differs(accepted.size(), 0);
    executor.ParallelForEach(accepted.size(), [&](size_t i) {
      auto credential_point = RistrettoPoint::Decode(accepted[i].credential_pk);
      if (!credential_point.has_value()) {
        undecodable[i] = 1;
        return;
      }
      MixItem expected;
      expected.cts = {accepted[i].encrypted_vote, ElGamalTrivialEncrypt(*credential_point)};
      if (!(expected == t.ballot_mix_input[i])) {
        differs[i] = 1;
      }
    });
    if (FirstMarked(undecodable).has_value()) {
      return Status::Error("verifier: accepted ballot credential undecodable");
    }
    if (auto i = FirstMarked(differs); i.has_value()) {
      return Status::Error("verifier: ballot mix input " + std::to_string(*i) + " differs");
    }
  }
  if (t.roster_mix_input.size() != roster.size()) {
    return Status::Error("verifier: roster mix input size mismatch");
  }
  if (auto i = ParallelFirstFailure(executor, roster.size(), [&](size_t i) {
        return t.roster_mix_input[i].cts.at(0) == roster[i].public_credential;
      });
      i.has_value()) {
    return Status::Error("verifier: roster mix input " + std::to_string(*i) + " differs");
  }

  // Mix proofs: the two cascades are independent; verify them as two pool
  // tasks (each internally parallel — nested submission is safe). Failure
  // reporting keeps the ballot-then-roster order.
  {
    Status cascade_status[2] = {Status::Ok(), Status::Ok()};
    executor.ParallelForEach(2, [&](size_t which) {
      if (which == 0) {
        cascade_status[0] =
            VerifyRpcMixCascade(t.ballot_mix_input, t.ballot_mix_output, t.ballot_mix_proof,
                                params.authority_pk, MixLinkCheck::kBatchedMsm, executor);
      } else {
        cascade_status[1] =
            VerifyRpcMixCascade(t.roster_mix_input, t.roster_mix_output, t.roster_mix_proof,
                                params.authority_pk, MixLinkCheck::kBatchedMsm, executor);
      }
    });
    if (!cascade_status[0].ok()) {
      return Status::Error("verifier: ballot mix: " + cascade_status[0].reason());
    }
    if (!cascade_status[1].ok()) {
      return Status::Error("verifier: roster mix: " + cascade_status[1].reason());
    }
  }

  // Tag stage replay: both chains, each one batched MSM over every step's
  // Chaum–Pedersen proofs. The mix columns' wire caches were validated by
  // VerifyRpcMixCascade above, so they may back the chain-input statements;
  // each step's own output_wire is validated inside VerifyChain before use.
  std::vector<ElGamalCiphertext> ballot_credentials = BatchColumn(t.ballot_mix_output, 1);
  std::vector<ElGamalCiphertext> roster_credentials = BatchColumn(t.roster_mix_output, 0);
  std::vector<ElGamalWire> ballot_credentials_wire = BatchColumnWire(t.ballot_mix_output, 1);
  std::vector<ElGamalWire> roster_credentials_wire = BatchColumnWire(t.roster_mix_output, 0);
  if (Status s = TaggingService::VerifyChain(ballot_credentials, t.ballot_tag_steps,
                                             params.tagging_commitments, executor,
                                             ballot_credentials_wire);
      !s.ok()) {
    return Status::Error("verifier: ballot tagging: " + s.reason());
  }
  if (Status s = TaggingService::VerifyChain(roster_credentials, t.roster_tag_steps,
                                             params.tagging_commitments, executor,
                                             roster_credentials_wire);
      !s.ok()) {
    return Status::Error("verifier: roster tagging: " + s.reason());
  }

  // Decrypt-tags replay. The tagged lists' bytes are the last tagging step's
  // output_wire — validated by VerifyChain just above (or the validated mix
  // column when there are no steps).
  const std::vector<ElGamalCiphertext>& ballot_tagged =
      t.ballot_tag_steps.empty() ? ballot_credentials : t.ballot_tag_steps.back().output;
  const std::vector<ElGamalCiphertext>& roster_tagged =
      t.roster_tag_steps.empty() ? roster_credentials : t.roster_tag_steps.back().output;
  auto tagged_wire = [](const std::vector<TaggingStep>& steps,
                        const std::vector<ElGamalWire>& column_wire)
      -> std::span<const ElGamalWire> {
    if (steps.empty()) {
      return column_wire;
    }
    return steps.back().HasWire() ? std::span<const ElGamalWire>(steps.back().output_wire)
                                  : std::span<const ElGamalWire>{};
  };
  std::vector<CompressedRistretto> ballot_tags;
  std::vector<CompressedRistretto> roster_tags;
  if (Status s = VerifyAndDecryptAll(ballot_tagged, t.ballot_tag_shares, params, executor,
                                     &ballot_tags, "ballot tags",
                                     tagged_wire(t.ballot_tag_steps, ballot_credentials_wire));
      !s.ok()) {
    return s;
  }
  if (Status s = VerifyAndDecryptAll(roster_tagged, t.roster_tag_shares, params, executor,
                                     &roster_tags, "roster tags",
                                     tagged_wire(t.roster_tag_steps, roster_credentials_wire));
      !s.ok()) {
    return s;
  }
  if (ballot_tags != t.ballot_tags || roster_tags != t.roster_tags) {
    return Status::Error("verifier: published tags do not match decryptions");
  }

  // Join replay: the weighted join (weights > 1 arise only under the
  // Appendix C.3 delegation extension).
  std::map<CompressedRistretto, uint64_t> roster_counts;
  for (const CompressedRistretto& tag : roster_tags) {
    roster_counts[tag] += 1;
  }
  std::vector<uint64_t> counted;
  std::vector<uint64_t> weights;
  for (size_t i = 0; i < ballot_tags.size(); ++i) {
    auto it = roster_counts.find(ballot_tags[i]);
    if (it == roster_counts.end() || it->second == 0) {
      continue;
    }
    counted.push_back(i);
    weights.push_back(it->second);
    it->second = 0;
  }
  if (counted != t.counted_indices || weights != t.counted_weights) {
    return Status::Error("verifier: counted ballot set differs from published");
  }

  // Decrypt-votes replay and final counts. Vote ciphertexts are mix outputs,
  // so their (cascade-validated) wire caches back the share statements.
  std::vector<ElGamalCiphertext> counted_votes;
  for (uint64_t index : t.counted_indices) {
    counted_votes.push_back(t.ballot_mix_output.at(index).cts.at(0));
  }
  std::vector<ElGamalWire> vote_column_wire = BatchColumnWire(t.ballot_mix_output, 0);
  std::vector<ElGamalWire> counted_votes_wire;
  if (vote_column_wire.size() == t.ballot_mix_output.size()) {
    counted_votes_wire.reserve(t.counted_indices.size());
    for (uint64_t index : t.counted_indices) {
      counted_votes_wire.push_back(vote_column_wire.at(index));
    }
  }
  std::vector<CompressedRistretto> vote_points;
  if (Status s = VerifyAndDecryptAll(counted_votes, t.vote_shares, params, executor,
                                     &vote_points, "votes", counted_votes_wire);
      !s.ok()) {
    return s;
  }
  if (vote_points != t.vote_points) {
    return Status::Error("verifier: published vote points do not match decryptions");
  }
  std::map<std::string, size_t> counts;
  for (size_t i = 0; i < candidates.size(); ++i) {
    counts[candidates.name(i)] = 0;
  }
  size_t total_counted = 0;
  for (size_t i = 0; i < vote_points.size(); ++i) {
    // vote_points[i] is a canonical encoding the verifier itself computed
    // from the combined shares, so the candidate lookup works directly on
    // the bytes (no re-decode / re-encode round trip).
    auto candidate = candidates.IndexOfEncoding(vote_points[i]);
    if (!candidate.has_value()) {
      continue;  // invalid vote, matches the tally's discard rule
    }
    uint64_t weight = t.counted_weights.at(i);
    counts[candidates.name(*candidate)] += weight;
    total_counted += weight;
  }
  if (counts != output.result.counts || total_counted != output.result.counted) {
    return Status::Error("verifier: final counts do not match published result");
  }
  return Status::Ok();
}

}  // namespace votegral
