#include "src/votegral/verifier.h"

#include <algorithm>

#include "src/crypto/batch.h"
#include "src/crypto/drbg.h"
#include "src/crypto/sha512.h"
#include "src/trip/official.h"

namespace votegral {

Status VerifyShareAgainstCommitment(const RistrettoPoint& member_share_commitment,
                                    const ElGamalCiphertext& ct,
                                    const DecryptionShare& share) {
  DleqStatement statement = DleqStatement::MakePair(
      RistrettoPoint::Base(), member_share_commitment, ct.c1, share.share);
  return VerifyDleqFs(kDecryptionShareDomain, statement, share.proof);
}

RistrettoPoint CombineSharesPublic(const ElGamalCiphertext& ct,
                                   const std::vector<DecryptionShare>& shares,
                                   size_t expected_members) {
  Require(shares.size() == expected_members, "verifier: wrong number of shares");
  RistrettoPoint sum;
  for (const DecryptionShare& share : shares) {
    sum = sum + share.share;
  }
  return ct.c2 - sum;
}

RistrettoPoint CombineSharesPublicThreshold(const ElGamalCiphertext& ct,
                                            const std::vector<DecryptionShare>& shares) {
  Require(!shares.empty(), "verifier: no shares to combine");
  std::vector<size_t> points;
  points.reserve(shares.size());
  for (const DecryptionShare& share : shares) {
    points.push_back(share.member_index + 1);
  }
  RistrettoPoint blinding;  // Σ λ_j * S_j = F(0) * C1
  for (const DecryptionShare& share : shares) {
    blinding = blinding + LagrangeAtZero(points, share.member_index + 1) * share.share;
  }
  return ct.c2 - blinding;
}

namespace {

constexpr std::string_view kShareWeightDomain = "votegral/verifier/share-batch-weights/v2";

// Verifies a list of per-ciphertext share vectors and returns the decrypted
// points; fails on any bad proof.
//
// The DLEQ share proofs — the dominant group-operation cost of universal
// verification — are checked as ONE random-linear-combination multi-scalar
// multiplication over all ciphertexts and members, with entry preparation,
// share combination and point encoding fanned out across the pool. Weights
// are derived deterministically from the proofs themselves (Fiat–Shamir
// style; the per-proof challenge binds statement and commitments), so the
// check stays reproducible for auditors while remaining unpredictable to
// whoever produced the transcript. On rejection the per-item path re-runs
// to name the offending share.
//
// Wire bytes: the verifier backs every statement with bytes it produced or
// already validated — B and the member commitments from standing caches
// (encoded once per call, not once per share), C1 from `cts_wire` when the
// caller threads validated bytes (mix caches checked by VerifyRpcMixCascade,
// tagging wires checked by VerifyChain) or one fresh encode otherwise, and
// the share point itself encoded once. The proofs' own commit caches are
// attacker data; BatchVerifyDleq decodes and recompares them before hashing.
Status VerifyAndDecryptAll(const std::vector<ElGamalCiphertext>& cts,
                           const std::vector<std::vector<DecryptionShare>>& shares,
                           const VerifierParams& params, Executor& executor,
                           std::vector<CompressedRistretto>* out,
                           const std::string& what,
                           std::span<const ElGamalWire> cts_wire = {}) {
  if (shares.size() != cts.size()) {
    return Status::Error("verifier: " + what + ": share list size mismatch");
  }
  if (cts_wire.size() != cts.size()) {
    cts_wire = {};
  }
  const size_t members = params.authority_shares.size();
  // Additive mode demands the full member set per ciphertext; threshold mode
  // accepts each ciphertext's recorded participant subset of >= t distinct
  // members (what the tally produced under degradation).
  const bool threshold_mode = params.authority_threshold != 0;
  const size_t need = threshold_mode ? params.authority_threshold : members;
  std::vector<CompressedRistretto> member_wire(members);
  BatchEncodePoints(params.authority_shares, member_wire);
  std::vector<DleqBatchEntry> batch(cts.size() * members);
  std::vector<CompressedRistretto> decrypted(cts.size());
  std::vector<uint8_t> bad_count(cts.size(), 0);
  std::vector<uint8_t> bad_member(cts.size(), 0);
  executor.ParallelForEach(cts.size(), [&](size_t i) {
    const size_t count = shares[i].size();
    if (threshold_mode ? (count < need || count > members) : (count != members)) {
      bad_count[i] = 1;
      return;
    }
    const CompressedRistretto c1_wire =
        cts_wire.empty() ? cts[i].c1.Encode() : ElGamalWireHalf(cts_wire[i], 0);
    std::vector<bool> seen(members, false);
    for (size_t m = 0; m < count; ++m) {
      const DecryptionShare& share = shares[i][m];
      if (share.member_index >= members || seen[share.member_index]) {
        bad_member[i] = 1;
        return;
      }
      seen[share.member_index] = true;
      DleqBatchEntry entry;
      entry.domain = std::string(kDecryptionShareDomain);
      entry.statement = DleqStatement::MakePairWire(
          RistrettoPoint::Base(), RistrettoPoint::BaseWire(),
          params.authority_shares[share.member_index], member_wire[share.member_index],
          cts[i].c1, c1_wire, share.share, share.share.Encode());
      entry.transcript = share.proof;
      batch[i * members + m] = std::move(entry);
    }
    decrypted[i] = threshold_mode
                       ? CombineSharesPublicThreshold(cts[i], shares[i]).Encode()
                       : CombineSharesPublic(cts[i], shares[i], members).Encode();
  });
  if (auto i = FirstMarked(bad_count); i.has_value()) {
    return Status::Error("verifier: " + what + ": wrong share count at " +
                         std::to_string(*i));
  }
  if (FirstMarked(bad_member).has_value()) {
    return Status::Error("verifier: " + what + ": bad share member index");
  }
  *out = std::move(decrypted);

  if (threshold_mode) {
    // Sub-full participant subsets leave empty positional slots; compact
    // sequentially (stable order) before deriving the batch weights.
    batch.erase(std::remove_if(batch.begin(), batch.end(),
                               [](const DleqBatchEntry& e) { return e.domain.empty(); }),
                batch.end());
  }
  ChaChaRng weights(DleqBatchWeightSeed(kShareWeightDomain, batch));
  if (BatchVerifyDleq(batch, weights).ok()) {
    return Status::Ok();
  }
  // Localize: re-check share by share with the exact per-item verifier.
  auto all_shares_ok = [&](size_t i) {
    for (const DecryptionShare& share : shares[i]) {
      if (!VerifyShareAgainstCommitment(params.authority_shares[share.member_index], cts[i],
                                        share)
               .ok()) {
        return false;
      }
    }
    return true;
  };
  if (auto i = ParallelFirstFailure(executor, cts.size(), all_shares_ok); i.has_value()) {
    for (const DecryptionShare& share : shares[*i]) {
      Status ok = VerifyShareAgainstCommitment(params.authority_shares[share.member_index],
                                               cts[*i], share);
      if (!ok.ok()) {
        return Status::Error("verifier: " + what + ": share proof invalid at " +
                             std::to_string(*i) + ": " + ok.reason());
      }
    }
  }
  return Status::Error("verifier: " + what + ": batched share check failed");
}

}  // namespace

Status VerifyElection(const PublicLedger& ledger, const VerifierParams& params,
                      const CandidateList& candidates, const TallyOutput& output,
                      Executor& executor) {
  Executor::Scope scope(executor);  // nested crypto kernels follow this pool
  const TallyTranscript& t = output.transcript;

  // Step 0: the ledger itself must be intact.
  if (Status s = ledger.VerifyChains(); !s.ok()) {
    return s;
  }

  // Validate/dedup replay: recompute the accepted ballot set from L_V
  // (ballot parsing and signature checks fan out in chunks).
  TallyDiscards recomputed_discards;
  std::vector<Ballot> accepted =
      ValidateAndDeduplicate(ledger, params.authorized_kiosks, &recomputed_discards,
                             executor);
  if (accepted.size() != t.accepted_ballots.size()) {
    return Status::Error("verifier: accepted ballot set size mismatch");
  }
  if (auto i = ParallelFirstFailure(executor, accepted.size(), [&](size_t i) {
        return accepted[i].Serialize() == t.accepted_ballots[i].Serialize();
      });
      i.has_value()) {
    return Status::Error("verifier: accepted ballot " + std::to_string(*i) + " differs");
  }

  // Every registration record's signature chain must verify (independent
  // per record; first failure reported by roster position).
  std::vector<RegistrationRecord> roster = ledger.ActiveRegistrations();
  if (auto i = ParallelFirstFailure(executor, roster.size(), [&](size_t i) {
        return VerifyRegistrationRecord(roster[i], params.authorized_kiosks,
                                        params.authorized_officials)
            .ok();
      });
      i.has_value()) {
    return VerifyRegistrationRecord(roster[*i], params.authorized_kiosks,
                                    params.authorized_officials);
  }

  // Mix stage replay: inputs must match the accepted ballots / active
  // roster (credential decode per ballot runs in parallel).
  if (t.ballot_mix_input.size() != accepted.size()) {
    return Status::Error("verifier: ballot mix input size mismatch");
  }
  {
    std::vector<uint8_t> undecodable(accepted.size(), 0);
    std::vector<uint8_t> differs(accepted.size(), 0);
    executor.ParallelForEach(accepted.size(), [&](size_t i) {
      auto credential_point = RistrettoPoint::Decode(accepted[i].credential_pk);
      if (!credential_point.has_value()) {
        undecodable[i] = 1;
        return;
      }
      MixItem expected;
      expected.cts = {accepted[i].encrypted_vote, ElGamalTrivialEncrypt(*credential_point)};
      if (!(expected == t.ballot_mix_input[i])) {
        differs[i] = 1;
      }
    });
    if (FirstMarked(undecodable).has_value()) {
      return Status::Error("verifier: accepted ballot credential undecodable");
    }
    if (auto i = FirstMarked(differs); i.has_value()) {
      return Status::Error("verifier: ballot mix input " + std::to_string(*i) + " differs");
    }
  }
  if (t.roster_mix_input.size() != roster.size()) {
    return Status::Error("verifier: roster mix input size mismatch");
  }
  if (auto i = ParallelFirstFailure(executor, roster.size(), [&](size_t i) {
        return t.roster_mix_input[i].cts.at(0) == roster[i].public_credential;
      });
      i.has_value()) {
    return Status::Error("verifier: roster mix input " + std::to_string(*i) + " differs");
  }

  // Mix proofs: the two cascades are independent; verify them as two pool
  // tasks (each internally parallel — nested submission is safe). Failure
  // reporting keeps the ballot-then-roster order.
  {
    Status cascade_status[2] = {Status::Ok(), Status::Ok()};
    executor.ParallelForEach(2, [&](size_t which) {
      if (which == 0) {
        cascade_status[0] =
            VerifyRpcMixCascade(t.ballot_mix_input, t.ballot_mix_output, t.ballot_mix_proof,
                                params.authority_pk, MixLinkCheck::kBatchedMsm, executor);
      } else {
        cascade_status[1] =
            VerifyRpcMixCascade(t.roster_mix_input, t.roster_mix_output, t.roster_mix_proof,
                                params.authority_pk, MixLinkCheck::kBatchedMsm, executor);
      }
    });
    if (!cascade_status[0].ok()) {
      return Status::Error("verifier: ballot mix: " + cascade_status[0].reason());
    }
    if (!cascade_status[1].ok()) {
      return Status::Error("verifier: roster mix: " + cascade_status[1].reason());
    }
  }

  // Tag stage replay: both chains, each one batched MSM over every step's
  // Chaum–Pedersen proofs. The mix columns' wire caches were validated by
  // VerifyRpcMixCascade above, so they may back the chain-input statements;
  // each step's own output_wire is validated inside VerifyChain before use.
  std::vector<ElGamalCiphertext> ballot_credentials = BatchColumn(t.ballot_mix_output, 1);
  std::vector<ElGamalCiphertext> roster_credentials = BatchColumn(t.roster_mix_output, 0);
  std::vector<ElGamalWire> ballot_credentials_wire = BatchColumnWire(t.ballot_mix_output, 1);
  std::vector<ElGamalWire> roster_credentials_wire = BatchColumnWire(t.roster_mix_output, 0);
  if (Status s = TaggingService::VerifyChain(ballot_credentials, t.ballot_tag_steps,
                                             params.tagging_commitments, executor,
                                             ballot_credentials_wire);
      !s.ok()) {
    return Status::Error("verifier: ballot tagging: " + s.reason());
  }
  if (Status s = TaggingService::VerifyChain(roster_credentials, t.roster_tag_steps,
                                             params.tagging_commitments, executor,
                                             roster_credentials_wire);
      !s.ok()) {
    return Status::Error("verifier: roster tagging: " + s.reason());
  }

  // Decrypt-tags replay. The tagged lists' bytes are the last tagging step's
  // output_wire — validated by VerifyChain just above (or the validated mix
  // column when there are no steps).
  const std::vector<ElGamalCiphertext>& ballot_tagged =
      t.ballot_tag_steps.empty() ? ballot_credentials : t.ballot_tag_steps.back().output;
  const std::vector<ElGamalCiphertext>& roster_tagged =
      t.roster_tag_steps.empty() ? roster_credentials : t.roster_tag_steps.back().output;
  auto tagged_wire = [](const std::vector<TaggingStep>& steps,
                        const std::vector<ElGamalWire>& column_wire)
      -> std::span<const ElGamalWire> {
    if (steps.empty()) {
      return column_wire;
    }
    return steps.back().HasWire() ? std::span<const ElGamalWire>(steps.back().output_wire)
                                  : std::span<const ElGamalWire>{};
  };
  std::vector<CompressedRistretto> ballot_tags;
  std::vector<CompressedRistretto> roster_tags;
  if (Status s = VerifyAndDecryptAll(ballot_tagged, t.ballot_tag_shares, params, executor,
                                     &ballot_tags, "ballot tags",
                                     tagged_wire(t.ballot_tag_steps, ballot_credentials_wire));
      !s.ok()) {
    return s;
  }
  if (Status s = VerifyAndDecryptAll(roster_tagged, t.roster_tag_shares, params, executor,
                                     &roster_tags, "roster tags",
                                     tagged_wire(t.roster_tag_steps, roster_credentials_wire));
      !s.ok()) {
    return s;
  }
  if (ballot_tags != t.ballot_tags || roster_tags != t.roster_tags) {
    return Status::Error("verifier: published tags do not match decryptions");
  }

  // Join replay: the weighted join (weights > 1 arise only under the
  // Appendix C.3 delegation extension).
  std::map<CompressedRistretto, uint64_t> roster_counts;
  for (const CompressedRistretto& tag : roster_tags) {
    roster_counts[tag] += 1;
  }
  std::vector<uint64_t> counted;
  std::vector<uint64_t> weights;
  for (size_t i = 0; i < ballot_tags.size(); ++i) {
    auto it = roster_counts.find(ballot_tags[i]);
    if (it == roster_counts.end() || it->second == 0) {
      continue;
    }
    counted.push_back(i);
    weights.push_back(it->second);
    it->second = 0;
  }
  if (counted != t.counted_indices || weights != t.counted_weights) {
    return Status::Error("verifier: counted ballot set differs from published");
  }

  // Decrypt-votes replay and final counts. Vote ciphertexts are mix outputs,
  // so their (cascade-validated) wire caches back the share statements.
  std::vector<ElGamalCiphertext> counted_votes;
  for (uint64_t index : t.counted_indices) {
    counted_votes.push_back(t.ballot_mix_output.at(index).cts.at(0));
  }
  std::vector<ElGamalWire> vote_column_wire = BatchColumnWire(t.ballot_mix_output, 0);
  std::vector<ElGamalWire> counted_votes_wire;
  if (vote_column_wire.size() == t.ballot_mix_output.size()) {
    counted_votes_wire.reserve(t.counted_indices.size());
    for (uint64_t index : t.counted_indices) {
      counted_votes_wire.push_back(vote_column_wire.at(index));
    }
  }
  std::vector<CompressedRistretto> vote_points;
  if (Status s = VerifyAndDecryptAll(counted_votes, t.vote_shares, params, executor,
                                     &vote_points, "votes", counted_votes_wire);
      !s.ok()) {
    return s;
  }
  if (vote_points != t.vote_points) {
    return Status::Error("verifier: published vote points do not match decryptions");
  }
  std::map<std::string, size_t> counts;
  for (size_t i = 0; i < candidates.size(); ++i) {
    counts[candidates.name(i)] = 0;
  }
  size_t total_counted = 0;
  for (size_t i = 0; i < vote_points.size(); ++i) {
    // vote_points[i] is a canonical encoding the verifier itself computed
    // from the combined shares, so the candidate lookup works directly on
    // the bytes (no re-decode / re-encode round trip).
    auto candidate = candidates.IndexOfEncoding(vote_points[i]);
    if (!candidate.has_value()) {
      continue;  // invalid vote, matches the tally's discard rule
    }
    uint64_t weight = t.counted_weights.at(i);
    counts[candidates.name(*candidate)] += weight;
    total_counted += weight;
  }
  if (counts != output.result.counts || total_counted != output.result.counted) {
    return Status::Error("verifier: final counts do not match published result");
  }
  return Status::Ok();
}

}  // namespace votegral
