#include "src/votegral/verifier.h"

#include "src/crypto/batch.h"
#include "src/crypto/drbg.h"
#include "src/crypto/sha512.h"
#include "src/trip/official.h"

namespace votegral {

Status VerifyShareAgainstCommitment(const RistrettoPoint& member_share_commitment,
                                    const ElGamalCiphertext& ct,
                                    const DecryptionShare& share) {
  DleqStatement statement = DleqStatement::MakePair(
      RistrettoPoint::Base(), member_share_commitment, ct.c1, share.share);
  return VerifyDleqFs(kDecryptionShareDomain, statement, share.proof);
}

RistrettoPoint CombineSharesPublic(const ElGamalCiphertext& ct,
                                   const std::vector<DecryptionShare>& shares,
                                   size_t expected_members) {
  Require(shares.size() == expected_members, "verifier: wrong number of shares");
  RistrettoPoint sum;
  for (const DecryptionShare& share : shares) {
    sum = sum + share.share;
  }
  return ct.c2 - sum;
}

namespace {

// Verifies a list of per-ciphertext share vectors and returns the decrypted
// points; fails on any bad proof.
//
// The DLEQ share proofs — the dominant group-operation cost of universal
// verification — are checked as ONE random-linear-combination multi-scalar
// multiplication over all ciphertexts and members. Weights are derived
// deterministically from the verified data itself (Fiat–Shamir style), so
// the check stays reproducible for auditors while remaining unpredictable
// to whoever produced the transcript. On rejection the per-item path
// re-runs to name the offending share.
Status VerifyAndDecryptAll(const std::vector<ElGamalCiphertext>& cts,
                           const std::vector<std::vector<DecryptionShare>>& shares,
                           const VerifierParams& params,
                           std::vector<CompressedRistretto>* out,
                           const std::string& what) {
  if (shares.size() != cts.size()) {
    return Status::Error("verifier: " + what + ": share list size mismatch");
  }
  out->clear();
  out->reserve(cts.size());
  std::vector<DleqBatchEntry> batch;
  batch.reserve(cts.size() * params.authority_shares.size());
  Sha512 weight_seed;
  weight_seed.Update(AsBytes("votegral/verifier/share-batch-weights/v1"));
  for (size_t i = 0; i < cts.size(); ++i) {
    if (shares[i].size() != params.authority_shares.size()) {
      return Status::Error("verifier: " + what + ": wrong share count at " +
                           std::to_string(i));
    }
    std::vector<bool> seen(params.authority_shares.size(), false);
    weight_seed.Update(cts[i].Serialize());  // once per ciphertext, not per share
    for (const DecryptionShare& share : shares[i]) {
      if (share.member_index >= params.authority_shares.size() || seen[share.member_index]) {
        return Status::Error("verifier: " + what + ": bad share member index");
      }
      seen[share.member_index] = true;
      DleqBatchEntry entry;
      entry.domain = std::string(kDecryptionShareDomain);
      entry.statement =
          DleqStatement::MakePair(RistrettoPoint::Base(),
                                  params.authority_shares[share.member_index], cts[i].c1,
                                  share.share);
      entry.transcript = share.proof;
      // Every attacker-supplied field of the share must bind the weights —
      // including member_index, which selects the statement being proved.
      uint8_t member_bytes[8];
      StoreLe64(member_bytes, share.member_index);
      weight_seed.Update(member_bytes);
      weight_seed.Update(share.share.Encode());
      weight_seed.Update(share.proof.Serialize());
      batch.push_back(std::move(entry));
    }
    out->push_back(
        CombineSharesPublic(cts[i], shares[i], params.authority_shares.size()).Encode());
  }
  ChaChaRng weights(weight_seed.Finalize());
  if (BatchVerifyDleq(batch, weights).ok()) {
    return Status::Ok();
  }
  // Localize: re-check share by share with the exact per-item verifier.
  for (size_t i = 0; i < cts.size(); ++i) {
    for (const DecryptionShare& share : shares[i]) {
      Status ok = VerifyShareAgainstCommitment(params.authority_shares[share.member_index],
                                               cts[i], share);
      if (!ok.ok()) {
        return Status::Error("verifier: " + what + ": share proof invalid at " +
                             std::to_string(i) + ": " + ok.reason());
      }
    }
  }
  return Status::Error("verifier: " + what + ": batched share check failed");
}

std::vector<ElGamalCiphertext> Column(const MixBatch& batch, size_t column) {
  std::vector<ElGamalCiphertext> out;
  out.reserve(batch.size());
  for (const MixItem& item : batch) {
    out.push_back(item.cts.at(column));
  }
  return out;
}

}  // namespace

Status VerifyElection(const PublicLedger& ledger, const VerifierParams& params,
                      const CandidateList& candidates, const TallyOutput& output) {
  const TallyTranscript& t = output.transcript;

  // Step 0: the ledger itself must be intact.
  if (Status s = ledger.VerifyChains(); !s.ok()) {
    return s;
  }

  // Step 1-2: recompute the accepted ballot set from L_V.
  TallyDiscards recomputed_discards;
  std::vector<Ballot> accepted =
      ValidateAndDeduplicate(ledger, params.authorized_kiosks, &recomputed_discards);
  if (accepted.size() != t.accepted_ballots.size()) {
    return Status::Error("verifier: accepted ballot set size mismatch");
  }
  for (size_t i = 0; i < accepted.size(); ++i) {
    if (accepted[i].Serialize() != t.accepted_ballots[i].Serialize()) {
      return Status::Error("verifier: accepted ballot " + std::to_string(i) + " differs");
    }
  }

  // Every registration record's signature chain must verify.
  for (const RegistrationRecord& record : ledger.ActiveRegistrations()) {
    Status ok = VerifyRegistrationRecord(record, params.authorized_kiosks,
                                         params.authorized_officials);
    if (!ok.ok()) {
      return ok;
    }
  }

  // Step 3: mix inputs must match the accepted ballots / active roster.
  if (t.ballot_mix_input.size() != accepted.size()) {
    return Status::Error("verifier: ballot mix input size mismatch");
  }
  for (size_t i = 0; i < accepted.size(); ++i) {
    auto credential_point = RistrettoPoint::Decode(accepted[i].credential_pk);
    if (!credential_point.has_value()) {
      return Status::Error("verifier: accepted ballot credential undecodable");
    }
    MixItem expected;
    expected.cts = {accepted[i].encrypted_vote, ElGamalTrivialEncrypt(*credential_point)};
    if (!(expected == t.ballot_mix_input[i])) {
      return Status::Error("verifier: ballot mix input " + std::to_string(i) + " differs");
    }
  }
  auto roster = ledger.ActiveRegistrations();
  if (t.roster_mix_input.size() != roster.size()) {
    return Status::Error("verifier: roster mix input size mismatch");
  }
  for (size_t i = 0; i < roster.size(); ++i) {
    if (!(t.roster_mix_input[i].cts.at(0) == roster[i].public_credential)) {
      return Status::Error("verifier: roster mix input " + std::to_string(i) + " differs");
    }
  }

  // Mix proofs.
  if (Status s = VerifyRpcMixCascade(t.ballot_mix_input, t.ballot_mix_output,
                                     t.ballot_mix_proof, params.authority_pk);
      !s.ok()) {
    return Status::Error("verifier: ballot mix: " + s.reason());
  }
  if (Status s = VerifyRpcMixCascade(t.roster_mix_input, t.roster_mix_output,
                                     t.roster_mix_proof, params.authority_pk);
      !s.ok()) {
    return Status::Error("verifier: roster mix: " + s.reason());
  }

  // Step 4: tagging chains.
  std::vector<ElGamalCiphertext> ballot_credentials = Column(t.ballot_mix_output, 1);
  std::vector<ElGamalCiphertext> roster_credentials = Column(t.roster_mix_output, 0);
  if (Status s = TaggingService::VerifyChain(ballot_credentials, t.ballot_tag_steps,
                                             params.tagging_commitments);
      !s.ok()) {
    return Status::Error("verifier: ballot tagging: " + s.reason());
  }
  if (Status s = TaggingService::VerifyChain(roster_credentials, t.roster_tag_steps,
                                             params.tagging_commitments);
      !s.ok()) {
    return Status::Error("verifier: roster tagging: " + s.reason());
  }

  // Step 5: tag decryptions.
  const std::vector<ElGamalCiphertext>& ballot_tagged =
      t.ballot_tag_steps.empty() ? ballot_credentials : t.ballot_tag_steps.back().output;
  const std::vector<ElGamalCiphertext>& roster_tagged =
      t.roster_tag_steps.empty() ? roster_credentials : t.roster_tag_steps.back().output;
  std::vector<CompressedRistretto> ballot_tags;
  std::vector<CompressedRistretto> roster_tags;
  if (Status s = VerifyAndDecryptAll(ballot_tagged, t.ballot_tag_shares, params, &ballot_tags,
                                     "ballot tags");
      !s.ok()) {
    return s;
  }
  if (Status s = VerifyAndDecryptAll(roster_tagged, t.roster_tag_shares, params, &roster_tags,
                                     "roster tags");
      !s.ok()) {
    return s;
  }
  if (ballot_tags != t.ballot_tags || roster_tags != t.roster_tags) {
    return Status::Error("verifier: published tags do not match decryptions");
  }

  // Step 6: replay the weighted join (weights > 1 arise only under the
  // Appendix C.3 delegation extension).
  std::map<CompressedRistretto, uint64_t> roster_counts;
  for (const CompressedRistretto& tag : roster_tags) {
    roster_counts[tag] += 1;
  }
  std::vector<uint64_t> counted;
  std::vector<uint64_t> weights;
  for (size_t i = 0; i < ballot_tags.size(); ++i) {
    auto it = roster_counts.find(ballot_tags[i]);
    if (it == roster_counts.end() || it->second == 0) {
      continue;
    }
    counted.push_back(i);
    weights.push_back(it->second);
    it->second = 0;
  }
  if (counted != t.counted_indices || weights != t.counted_weights) {
    return Status::Error("verifier: counted ballot set differs from published");
  }

  // Step 7: vote decryptions and final counts.
  std::vector<ElGamalCiphertext> counted_votes;
  for (uint64_t index : t.counted_indices) {
    counted_votes.push_back(t.ballot_mix_output.at(index).cts.at(0));
  }
  std::vector<CompressedRistretto> vote_points;
  if (Status s =
          VerifyAndDecryptAll(counted_votes, t.vote_shares, params, &vote_points, "votes");
      !s.ok()) {
    return s;
  }
  if (vote_points != t.vote_points) {
    return Status::Error("verifier: published vote points do not match decryptions");
  }
  std::map<std::string, size_t> counts;
  for (size_t i = 0; i < candidates.size(); ++i) {
    counts[candidates.name(i)] = 0;
  }
  size_t total_counted = 0;
  for (size_t i = 0; i < vote_points.size(); ++i) {
    auto point = RistrettoPoint::Decode(vote_points[i]);
    if (!point.has_value()) {
      return Status::Error("verifier: vote point undecodable");
    }
    auto candidate = candidates.IndexOfPoint(*point);
    if (!candidate.has_value()) {
      continue;  // invalid vote, matches the tally's discard rule
    }
    uint64_t weight = t.counted_weights.at(i);
    counts[candidates.name(*candidate)] += weight;
    total_counted += weight;
  }
  if (counts != output.result.counts || total_counted != output.result.counted) {
    return Status::Error("verifier: final counts do not match published result");
  }
  return Status::Ok();
}

}  // namespace votegral
