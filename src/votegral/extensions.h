// Optional extensions to the base Votegral system (§4.5, Appendix C).
//
//  C.1 Voting-history review: devices keep an auditable record of cast
//      ballots; the voter can later verify each against the ledger and ask
//      the authority for verifiable decryptions of their own past votes.
//      Coercion-safe because a fake credential fabricates an equally
//      plausible history.
//
//  C.2 Reducing the credential-exposure window: the device rotates the
//      kiosk-issued key pair (c_sk, c_pk) to a device-generated (ĉ_sk, ĉ_pk)
//      by publishing a transfer certificate — the old key signs the new one.
//      Ballots cast with ĉ are linked back to c_pk through the public
//      transfer table before mixing, so the tally pipeline (and the blinded
//      tag join) is unchanged. The kiosk-held key becomes useless to a
//      registrar-side thief the moment the voter activates and rotates.
//
//  C.3 Resisting extreme coercion: a voter who cannot safely hold any real
//      credential delegates in the booth — the kiosk encrypts a political
//      party's public key as the registration's c_pc, and the voter leaves
//      holding only fake credentials. The party's ballots then match the
//      voter's roster tag.
#ifndef SRC_VOTEGRAL_EXTENSIONS_H_
#define SRC_VOTEGRAL_EXTENSIONS_H_

#include <map>
#include <string>
#include <vector>

#include "src/trip/kiosk.h"
#include "src/votegral/tally.h"

namespace votegral {

// ---------------------------------------------------------------------------
// C.1 — Voting history
// ---------------------------------------------------------------------------

// One remembered cast.
struct HistoryEntry {
  CompressedRistretto credential_pk{};
  std::string candidate;
  uint64_t ledger_index = 0;
  std::array<uint8_t, 32> ballot_hash{};
};

// The device-side history store.
class VotingHistory {
 public:
  // Records a cast ballot (called by the device right after posting).
  void Record(const CompressedRistretto& credential_pk, const std::string& candidate,
              uint64_t ledger_index, const Bytes& ballot_payload);

  // All records for one credential, oldest first.
  std::vector<HistoryEntry> ForCredential(const CompressedRistretto& credential_pk) const;

  // Checks every record against the ledger: the referenced entry must exist
  // and hash to the remembered value. Detects device/ledger divergence.
  Status VerifyAgainstLedger(const PublicLedger& ledger) const;

  size_t size() const { return entries_.size(); }

 private:
  std::vector<HistoryEntry> entries_;
};

// Authority-assisted history decryption: the voter proves ownership of the
// credential (a signature over a fresh context), then receives verifiable
// decryption shares of their own recorded ballots and reconstructs the votes
// locally (no authority member learns the vote).
struct HistoryDecryption {
  std::vector<DecryptionShare> shares;
  RistrettoPoint vote_point;
};
Outcome<HistoryDecryption> DecryptOwnVote(const ElectionAuthority& authority,
                                          const PublicLedger& ledger,
                                          const ActivatedCredential& credential,
                                          uint64_t ledger_index, Rng& rng);

// ---------------------------------------------------------------------------
// C.2 — Credential rotation (exposure-window reduction)
// ---------------------------------------------------------------------------

// A public transfer certificate: the kiosk-issued key signs the new key.
struct CredentialTransfer {
  CompressedRistretto old_pk{};
  CompressedRistretto new_pk{};
  SchnorrSignature transfer_sig;  // by old_sk over (old_pk ‖ new_pk)

  Bytes SignedPayload() const;
};

// Rotates an activated credential to a fresh device-generated key and
// returns both the updated credential and the public certificate.
struct RotatedCredential {
  ActivatedCredential credential;  // with the new key material
  CredentialTransfer transfer;
};
RotatedCredential RotateCredential(const ActivatedCredential& credential, Rng& rng);

// The public transfer table (would live on the ledger in deployment).
class TransferRegistry {
 public:
  // Registers a certificate after verifying the old key's signature and
  // rejecting re-rotation of an already-rotated key.
  Status Register(const CredentialTransfer& transfer);

  // Maps a ballot's credential key back to the original kiosk-issued key
  // (identity when no transfer exists). Follows chains of rotations.
  CompressedRistretto ResolveToOriginal(const CompressedRistretto& pk) const;

  size_t size() const { return by_new_pk_.size(); }

 private:
  std::map<CompressedRistretto, CredentialTransfer> by_new_pk_;
  std::set<CompressedRistretto> rotated_old_keys_;
};

// Ballot validation that accepts rotated credentials: resolves each ballot's
// key through `registry`, verifies the chain, and checks the kiosk
// certificate against the *original* key. Returns accepted ballots whose
// credential_pk has been rewritten to the original key so the unchanged
// tally pipeline can consume them.
std::vector<Ballot> ValidateWithTransfers(const PublicLedger& ledger,
                                          const std::set<CompressedRistretto>& authorized_kiosks,
                                          const TransferRegistry& registry,
                                          TallyDiscards* discards);

// ---------------------------------------------------------------------------
// C.3 — In-booth delegation under extreme coercion
// ---------------------------------------------------------------------------

// A kiosk capable of the delegation flow. The voter leaves with only fake
// credentials; the registration's c_pc encrypts the chosen party's public
// key, so ballots cast by the party's credential match the voter's tag.
class DelegationKiosk : public Kiosk {
 public:
  DelegationKiosk(SchnorrKeyPair key, Bytes mac_key, RistrettoPoint authority_pk);

  // Runs the delegation step: encrypts `party_pk` as this session's public
  // credential and fabricates the session check-out ticket. Subsequent
  // CreateFakeCredential calls issue the voter's take-home fakes. The party
  // must already hold a kiosk-certified credential (its own registration).
  Status DelegateSession(const RistrettoPoint& party_pk, Rng& rng);

  // The check-out segment for the delegated session.
  Outcome<CheckOutSegment> delegated_checkout() const;

 private:
  bool delegated_ = false;
  CheckOutSegment checkout_;
};

}  // namespace votegral

#endif  // SRC_VOTEGRAL_EXTENSIONS_H_
