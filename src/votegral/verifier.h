// Universal verification (§3.3, §5.1): anyone holding the public ledger and
// the published tally transcript can re-check the entire pipeline — no
// secrets required. The verifier recomputes the validated ballot set,
// re-verifies every mix, tagging and decryption proof, replays the tag join,
// and recounts.
//
// Parallel architecture: the expensive sections — ballot revalidation,
// registration-record checks, mix-pair link RLCs, tagging-step DLEQ batches
// and decryption-share batches — are independent multi-scalar
// multiplications and per-item proof checks, dispatched to the injected
// executor (the two mix cascades verify concurrently; every batch's entry
// preparation and closing MSM fan out further). Failure localization is
// preserved: parallel passes record positional flags and the lowest failing
// pair/index is re-derived exactly, so the verdict and its reason string
// are identical at any thread count.
#ifndef SRC_VOTEGRAL_VERIFIER_H_
#define SRC_VOTEGRAL_VERIFIER_H_

#include <set>

#include "src/crypto/dkg.h"
#include "src/ledger/subledgers.h"
#include "src/votegral/tally.h"

namespace votegral {

// Public election parameters the verifier needs (all published at setup).
struct VerifierParams {
  RistrettoPoint authority_pk;
  std::vector<RistrettoPoint> authority_shares;   // members' public shares
  // 0 = additive n-of-n authority: every ciphertext must carry exactly one
  // share per member. t >= 1 = Shamir threshold authority: each ciphertext's
  // recorded participant subset is accepted when it holds >= t distinct,
  // individually proven shares (Lagrange recombination) — the verifier
  // checks the transcript that *was* produced under degradation, while any
  // forged share in the subset still rejects.
  size_t authority_threshold = 0;
  std::vector<RistrettoPoint> tagging_commitments;  // Z_t commitments
  std::set<CompressedRistretto> authorized_kiosks;
  std::set<CompressedRistretto> authorized_officials;
  // Deniable-revoting mode (docs/REVOTING.md): the ledger carries
  // RevoteBallots and the transcript must contain a valid supersession
  // section. With revote_padding the verifier additionally enforces the
  // cover-envelope lower bound on the revealed group-size multiset.
  bool revoting = false;
  bool revote_padding = true;
};

// Re-checks the published tally against the ledger. Returns the first
// discrepancy found, or OK when the election verifies end-to-end.
Status VerifyElection(const PublicLedger& ledger, const VerifierParams& params,
                      const CandidateList& candidates, const TallyOutput& output,
                      Executor& executor = Executor::Global());

// Verifies a decryption share against a member's public share without an
// ElectionAuthority instance (auditors have only public data).
Status VerifyShareAgainstCommitment(const RistrettoPoint& member_share_commitment,
                                    const ElGamalCiphertext& ct, const DecryptionShare& share);

// Combines decryption shares publicly (after verifying each): additive
// n-of-n (exactly `expected_members` shares, plain sum).
RistrettoPoint CombineSharesPublic(const ElGamalCiphertext& ct,
                                   const std::vector<DecryptionShare>& shares,
                                   size_t expected_members);

// Threshold variant: Lagrange-recombines any recorded participant subset
// over the members' evaluation points (member_index + 1). The caller must
// have checked distinctness and the >= t count; each share's proof is
// verified separately.
RistrettoPoint CombineSharesPublicThreshold(const ElGamalCiphertext& ct,
                                            const std::vector<DecryptionShare>& shares);

}  // namespace votegral

#endif  // SRC_VOTEGRAL_VERIFIER_H_
