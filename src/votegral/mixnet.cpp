#include "src/votegral/mixnet.h"

#include <algorithm>

#include "src/crypto/drbg.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"

namespace votegral {

namespace {

constexpr std::string_view kChallengeDomain = "votegral/mixnet/rpc-challenge/v1";

// Applies a re-encryption with the given per-ciphertext randomness.
MixItem ReEncryptItem(const MixItem& item, const RistrettoPoint& pk,
                      const std::vector<Scalar>& randomness) {
  Require(item.cts.size() == randomness.size(), "mixnet: randomness width mismatch");
  MixItem out;
  out.cts.reserve(item.cts.size());
  for (size_t c = 0; c < item.cts.size(); ++c) {
    out.cts.push_back(item.cts[c].ReRandomize(pk, randomness[c]));
  }
  return out;
}

// Derives one challenge bit per middle index from the pair's commitments.
std::vector<uint8_t> DeriveChallengeBits(const MixBatch& input, const MixBatch& mid,
                                         const MixBatch& out, size_t pair_index) {
  auto h_in = HashMixBatch(input);
  auto h_mid = HashMixBatch(mid);
  auto h_out = HashMixBatch(out);
  uint8_t index_byte = static_cast<uint8_t>(pair_index);
  auto seed = Sha512::HashParts({AsBytes(kChallengeDomain), h_in, h_mid, h_out,
                                 {&index_byte, 1}});
  ChaChaRng bit_source(seed);
  std::vector<uint8_t> bits(mid.size());
  for (auto& bit : bits) {
    bit = static_cast<uint8_t>(bit_source.Uniform(2));
  }
  return bits;
}

}  // namespace

std::array<uint8_t, 32> HashMixBatch(const MixBatch& batch) {
  Sha256 h;
  uint8_t width = batch.empty() ? 0 : static_cast<uint8_t>(batch[0].cts.size());
  h.Update({&width, 1});
  for (const MixItem& item : batch) {
    for (const ElGamalCiphertext& ct : item.cts) {
      h.Update(ct.Serialize());
    }
  }
  return h.Finalize();
}

MixBatch MixServer::Shuffle(const MixBatch& input, const RistrettoPoint& pk, Rng& rng) {
  const size_t n = input.size();
  source_.resize(n);
  dest_.resize(n);
  randomness_.assign(n, {});

  // Fisher-Yates permutation: source_[j] = which input lands at output j.
  std::vector<uint64_t> perm(n);
  for (size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  for (size_t i = n; i > 1; --i) {
    size_t j = rng.Uniform(i);
    std::swap(perm[i - 1], perm[j]);
  }

  MixBatch output(n);
  for (size_t j = 0; j < n; ++j) {
    source_[j] = perm[j];
    dest_[perm[j]] = j;
    const MixItem& src = input[perm[j]];
    std::vector<Scalar> randomness;
    randomness.reserve(src.cts.size());
    for (size_t c = 0; c < src.cts.size(); ++c) {
      randomness.push_back(Scalar::Random(rng));
    }
    output[j] = ReEncryptItem(src, pk, randomness);
    randomness_[j] = std::move(randomness);
  }
  return output;
}

RpcReveal MixServer::RevealLinkForOutput(uint64_t output_index) const {
  Require(output_index < source_.size(), "mixnet: reveal index out of range");
  RpcReveal reveal;
  reveal.side = 0;
  reveal.source_or_dest = source_[output_index];
  reveal.randomness = randomness_[output_index];
  return reveal;
}

RpcReveal MixServer::RevealLinkForInput(uint64_t input_index) const {
  Require(input_index < dest_.size(), "mixnet: reveal index out of range");
  RpcReveal reveal;
  reveal.side = 1;
  reveal.source_or_dest = dest_[input_index];
  reveal.randomness = randomness_[dest_[input_index]];
  return reveal;
}

MixBatch RunRpcMixCascade(const MixBatch& input, const RistrettoPoint& pk, size_t pair_count,
                          Rng& rng, MixProof* proof) {
  Require(pair_count >= 1, "mixnet: need at least one pair");
  Require(proof != nullptr, "mixnet: proof output required");
  proof->pairs.clear();
  MixBatch current = input;
  for (size_t p = 0; p < pair_count; ++p) {
    MixServer layer_a;
    MixServer layer_b;
    RpcPairProof pair;
    pair.mid = layer_a.Shuffle(current, pk, rng);
    pair.out = layer_b.Shuffle(pair.mid, pk, rng);

    std::vector<uint8_t> bits = DeriveChallengeBits(current, pair.mid, pair.out, p);
    pair.reveals.resize(pair.mid.size());
    for (size_t j = 0; j < pair.mid.size(); ++j) {
      pair.reveals[j] =
          bits[j] == 0 ? layer_a.RevealLinkForOutput(j) : layer_b.RevealLinkForInput(j);
    }
    current = pair.out;
    proof->pairs.push_back(std::move(pair));
  }
  return current;
}

Status VerifyRpcMixCascade(const MixBatch& input, const MixBatch& output,
                           const MixProof& proof, const RistrettoPoint& pk) {
  if (proof.pairs.empty()) {
    return Status::Error("mixnet: empty proof");
  }
  const MixBatch* current = &input;
  for (size_t p = 0; p < proof.pairs.size(); ++p) {
    const RpcPairProof& pair = proof.pairs[p];
    if (pair.mid.size() != current->size() || pair.out.size() != current->size()) {
      return Status::Error("mixnet: batch size change in pair " + std::to_string(p));
    }
    std::vector<uint8_t> bits = DeriveChallengeBits(*current, pair.mid, pair.out, p);
    if (pair.reveals.size() != pair.mid.size()) {
      return Status::Error("mixnet: reveal count mismatch in pair " + std::to_string(p));
    }
    // Injectivity tracking: each revealed source (left) and destination
    // (right) may be used at most once.
    std::vector<bool> left_used(current->size(), false);
    std::vector<bool> right_used(current->size(), false);
    for (size_t j = 0; j < pair.mid.size(); ++j) {
      const RpcReveal& reveal = pair.reveals[j];
      if (reveal.side != bits[j]) {
        return Status::Error("mixnet: reveal side does not match challenge bit");
      }
      if (reveal.source_or_dest >= current->size()) {
        return Status::Error("mixnet: reveal index out of range");
      }
      if (reveal.side == 0) {
        // mid[j] must be a re-encryption of input[source].
        if (left_used[reveal.source_or_dest]) {
          return Status::Error("mixnet: duplicate left link (not a permutation)");
        }
        left_used[reveal.source_or_dest] = true;
        MixItem expected =
            ReEncryptItem((*current)[reveal.source_or_dest], pk, reveal.randomness);
        if (!(expected == pair.mid[j])) {
          return Status::Error("mixnet: left re-encryption check failed at pair " +
                               std::to_string(p) + " index " + std::to_string(j));
        }
      } else {
        // out[dest] must be a re-encryption of mid[j].
        if (right_used[reveal.source_or_dest]) {
          return Status::Error("mixnet: duplicate right link (not a permutation)");
        }
        right_used[reveal.source_or_dest] = true;
        MixItem expected = ReEncryptItem(pair.mid[j], pk, reveal.randomness);
        if (!(expected == pair.out[reveal.source_or_dest])) {
          return Status::Error("mixnet: right re-encryption check failed at pair " +
                               std::to_string(p) + " index " + std::to_string(j));
        }
      }
    }
    current = &pair.out;
  }
  if (!(HashMixBatch(*current) == HashMixBatch(output))) {
    return Status::Error("mixnet: final batch does not match published output");
  }
  return Status::Ok();
}

}  // namespace votegral
