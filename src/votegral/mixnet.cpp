#include "src/votegral/mixnet.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "src/common/bytes.h"
#include "src/crypto/batch.h"
#include "src/crypto/drbg.h"
#include "src/crypto/msm.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"

namespace votegral {

namespace {

constexpr std::string_view kChallengeDomain = "votegral/mixnet/rpc-challenge/v1";
constexpr std::string_view kLinkWeightDomain = "votegral/mixnet/link-rlc-weights/v1";

// Applies a re-encryption with the given per-ciphertext randomness.
MixItem ReEncryptItem(const MixItem& item, const RistrettoPoint& pk,
                      const std::vector<Scalar>& randomness) {
  Require(item.cts.size() == randomness.size(), "mixnet: randomness width mismatch");
  MixItem out;
  out.cts.reserve(item.cts.size());
  for (size_t c = 0; c < item.cts.size(); ++c) {
    out.cts.push_back(item.cts[c].ReRandomize(pk, randomness[c]));
  }
  return out;
}

Bytes SerializeItem(const MixItem& item) {
  Bytes wire;
  wire.reserve(64 * item.cts.size());
  for (const ElGamalCiphertext& ct : item.cts) {
    Bytes part = ct.Serialize();
    wire.insert(wire.end(), part.begin(), part.end());
  }
  return wire;
}

// Derives one challenge bit per middle index from the pair's commitment
// hashes. Batch hashes are passed in rather than recomputed; with wire
// caches each batch is serialized exactly once, in parallel, by whoever
// produced or validated it.
std::vector<uint8_t> DeriveChallengeBits(const std::array<uint8_t, 32>& h_in,
                                         const std::array<uint8_t, 32>& h_mid,
                                         const std::array<uint8_t, 32>& h_out,
                                         size_t mid_size, size_t pair_index) {
  uint8_t index_byte = static_cast<uint8_t>(pair_index);
  auto seed = Sha512::HashParts({AsBytes(kChallengeDomain), h_in, h_mid, h_out,
                                 {&index_byte, 1}});
  ChaChaRng bit_source(seed);
  std::vector<uint8_t> bits(mid_size);
  for (auto& bit : bits) {
    bit = static_cast<uint8_t>(bit_source.Uniform(2));
  }
  return bits;
}

}  // namespace

const Bytes& MixItem::EnsureWire() {
  if (!HasWire()) {
    wire = SerializeItem(*this);
  }
  return wire;
}

std::array<uint8_t, 32> HashMixBatch(const MixBatch& batch) {
  Sha256 h;
  uint8_t width = batch.empty() ? 0 : static_cast<uint8_t>(batch[0].cts.size());
  h.Update({&width, 1});
  for (const MixItem& item : batch) {
    if (item.HasWire()) {
      h.Update(item.wire);
    } else {
      h.Update(SerializeItem(item));
    }
  }
  return h.Finalize();
}

void EnsureWireCache(MixBatch& batch, Executor& executor) {
  executor.ParallelForEach(batch.size(), [&](size_t i) { batch[i].EnsureWire(); });
}

std::vector<ElGamalCiphertext> BatchColumn(const MixBatch& batch, size_t column) {
  std::vector<ElGamalCiphertext> out;
  out.reserve(batch.size());
  for (const MixItem& item : batch) {
    out.push_back(item.cts.at(column));
  }
  return out;
}

std::vector<ElGamalWire> BatchColumnWire(const MixBatch& batch, size_t column) {
  std::vector<ElGamalWire> out;
  out.reserve(batch.size());
  for (const MixItem& item : batch) {
    Require(column < item.cts.size(), "mixnet: column out of range");
    if (!item.HasWire()) {
      return {};
    }
    ElGamalWire wire;
    std::copy(item.wire.begin() + static_cast<ptrdiff_t>(64 * column),
              item.wire.begin() + static_cast<ptrdiff_t>(64 * (column + 1)), wire.begin());
    out.push_back(wire);
  }
  return out;
}

void MixServer::Prepare(size_t n, Rng& rng) {
  source_.resize(n);
  dest_.resize(n);
  randomness_.assign(n, {});

  // Fisher-Yates permutation: source_[j] = which input lands at output j.
  // Drawn sequentially from the parent stream, like the per-shard seeds
  // forked right after, so the server's transcript never depends on
  // scheduling.
  std::vector<uint64_t> perm(n);
  for (size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  for (size_t i = n; i > 1; --i) {
    size_t j = rng.Uniform(i);
    std::swap(perm[i - 1], perm[j]);
  }
  for (size_t j = 0; j < n; ++j) {
    source_[j] = perm[j];
    dest_[perm[j]] = j;
  }
}

void MixServer::ShuffleShardRange(const MixBatch& input, const RistrettoPoint& pk,
                                  size_t begin, size_t end, Rng& child, MixBatch& output) {
  Require(end <= source_.size() && output.size() == source_.size(),
          "mixnet: shard range outside prepared layer");
  for (size_t j = begin; j < end; ++j) {
    const MixItem& src = input[source_[j]];
    std::vector<Scalar> randomness;
    randomness.reserve(src.cts.size());
    for (size_t c = 0; c < src.cts.size(); ++c) {
      randomness.push_back(Scalar::Random(child));
    }
    output[j] = ReEncryptItem(src, pk, randomness);
    output[j].EnsureWire();  // encode while the points are hot
    randomness_[j] = std::move(randomness);
  }
}

MixBatch MixServer::Shuffle(const MixBatch& input, const RistrettoPoint& pk, Rng& rng,
                            Executor& executor) {
  const size_t n = input.size();
  Prepare(n, rng);

  // Re-encryption: the expensive part (two scalar multiplications plus one
  // canonical encoding per ciphertext component) fans out across fixed
  // shards, each drawing randomness from its own forked child stream.
  auto shards = Executor::Shards(n, Executor::kRngShards);
  auto seeds = ForkRngSeeds(rng, shards.size());
  MixBatch output(n);
  executor.ParallelForEach(shards.size(), [&](size_t s) {
    ChaChaRng child(seeds[s]);
    ShuffleShardRange(input, pk, shards[s].first, shards[s].second, child, output);
  });
  return output;
}

RpcReveal MixServer::RevealLinkForOutput(uint64_t output_index) const {
  Require(output_index < source_.size(), "mixnet: reveal index out of range");
  RpcReveal reveal;
  reveal.side = 0;
  reveal.source_or_dest = source_[output_index];
  reveal.randomness = randomness_[output_index];
  return reveal;
}

RpcReveal MixServer::RevealLinkForInput(uint64_t input_index) const {
  Require(input_index < dest_.size(), "mixnet: reveal index out of range");
  RpcReveal reveal;
  reveal.side = 1;
  reveal.source_or_dest = dest_[input_index];
  reveal.randomness = randomness_[dest_[input_index]];
  return reveal;
}

void FinishRpcPair(const MixServer& layer_a, const MixServer& layer_b,
                   const std::array<uint8_t, 32>& h_in, size_t pair_index,
                   RpcPairProof* pair, std::array<uint8_t, 32>* h_out_chain) {
  std::array<uint8_t, 32> h_mid = HashMixBatch(pair->mid);
  std::array<uint8_t, 32> h_out = HashMixBatch(pair->out);
  std::vector<uint8_t> bits =
      DeriveChallengeBits(h_in, h_mid, h_out, pair->mid.size(), pair_index);
  pair->reveals.resize(pair->mid.size());
  for (size_t j = 0; j < pair->mid.size(); ++j) {
    pair->reveals[j] =
        bits[j] == 0 ? layer_a.RevealLinkForOutput(j) : layer_b.RevealLinkForInput(j);
  }
  *h_out_chain = h_out;
}

MixBatch RunRpcMixCascade(const MixBatch& input, const RistrettoPoint& pk, size_t pair_count,
                          Rng& rng, MixProof* proof, Executor& executor) {
  Require(pair_count >= 1, "mixnet: need at least one pair");
  Require(proof != nullptr, "mixnet: proof output required");
  Executor::Scope scope(executor);  // nested crypto kernels follow this pool
  proof->pairs.clear();
  MixBatch current = input;
  EnsureWireCache(current, executor);  // one parallel encode; hashes are SHA-only after
  std::array<uint8_t, 32> h_current = HashMixBatch(current);
  for (size_t p = 0; p < pair_count; ++p) {
    MixServer layer_a;
    MixServer layer_b;
    RpcPairProof pair;
    pair.mid = layer_a.Shuffle(current, pk, rng, executor);
    pair.out = layer_b.Shuffle(pair.mid, pk, rng, executor);
    FinishRpcPair(layer_a, layer_b, h_current, p, &pair, &h_current);
    current = pair.out;
    proof->pairs.push_back(std::move(pair));
  }
  return current;
}

namespace {

// One structurally validated opened link of a pair: dst must be a
// re-encryption of src under `randomness`.
struct ResolvedLink {
  const MixItem* src = nullptr;
  const MixItem* dst = nullptr;
  const std::vector<Scalar>* randomness = nullptr;
  size_t mid_index = 0;  // for error messages
  uint8_t side = 0;
};

// Exact per-link re-encryption check (the pre-MSM path); names the first
// offending link. Checks run on the pool; "first" is by position in `links`
// (middle-index order), so the report is deterministic.
Status CheckLinksPerItem(std::span<const ResolvedLink> links, const RistrettoPoint& pk,
                         size_t pair_index, Executor& executor) {
  if (auto i = ParallelFirstFailure(executor, links.size(), [&](size_t i) {
        const ResolvedLink& link = links[i];
        return ReEncryptItem(*link.src, pk, *link.randomness) == *link.dst;
      });
      i.has_value()) {
    const ResolvedLink& link = links[*i];
    return Status::Error(std::string("mixnet: ") + (link.side == 0 ? "left" : "right") +
                         " re-encryption check failed at pair " +
                         std::to_string(pair_index) + " index " +
                         std::to_string(link.mid_index));
  }
  return Status::Ok();
}

// Batched check: every link equation
//   dst.c1 - src.c1 - r*B == 0   and   dst.c2 - src.c2 - r*pk == 0
// is weighted by an independent 128-bit scalar and folded into one flat
// multi-scalar multiplication that must be the identity. The weight seed
// must bind the *entire* pair transcript — committed batches AND the
// reveals themselves — so that a cheating mixer cannot first learn the
// weights and then solve for reveal randomness that cancels a tamper (the
// reveals are published after the commitments, so a seed over commitments
// alone would be known to the mixer while the randomness values are still
// free variables). On rejection the per-link path localizes the error.
//
// Weights are pre-drawn sequentially (the stream a serial verifier sees);
// the per-component difference points and weighted scalars are then written
// positionally by shard, with each shard folding partial coefficients of B
// and pk that are merged in shard order.
Status CheckLinksBatched(std::span<const ResolvedLink> links, const RistrettoPoint& pk,
                         size_t pair_index, std::span<const uint8_t> weight_seed,
                         Executor& executor) {
  std::vector<size_t> offset(links.size() + 1, 0);  // component offsets
  for (size_t i = 0; i < links.size(); ++i) {
    if (links[i].dst->cts.size() != links[i].src->cts.size()) {
      // Width forgery: localize.
      return CheckLinksPerItem(links, pk, pair_index, executor);
    }
    offset[i + 1] = offset[i] + links[i].src->cts.size();
  }
  const size_t components = offset[links.size()];
  ChaChaRng weight_rng(weight_seed);
  std::vector<Scalar> w1(components);
  std::vector<Scalar> w2(components);
  for (size_t c = 0; c < components; ++c) {
    w1[c] = RandomRlcWeight(weight_rng);
    w2[c] = RandomRlcWeight(weight_rng);
  }

  std::vector<Scalar> scalars(2 * components + 1);
  std::vector<RistrettoPoint> points(2 * components + 1);
  auto shards = Executor::Shards(links.size(), Executor::kRngShards);
  struct Partial {
    Scalar base_acc = Scalar::Zero();  // accumulated coefficient of B
    Scalar pk_acc = Scalar::Zero();    // accumulated coefficient of pk
  };
  std::vector<Partial> partials = executor.ParallelMap<Partial>(
      shards.size(), [&](size_t s) {
        Partial acc;
        for (size_t i = shards[s].first; i < shards[s].second; ++i) {
          const ResolvedLink& link = links[i];
          for (size_t c = 0; c < link.src->cts.size(); ++c) {
            const ElGamalCiphertext& src = link.src->cts[c];
            const ElGamalCiphertext& dst = link.dst->cts[c];
            const Scalar& r = (*link.randomness)[c];
            size_t at = offset[i] + c;
            scalars[2 * at] = w1[at];
            points[2 * at] = dst.c1 - src.c1;
            scalars[2 * at + 1] = w2[at];
            points[2 * at + 1] = dst.c2 - src.c2;
            acc.base_acc = acc.base_acc + w1[at] * r;
            acc.pk_acc = acc.pk_acc + w2[at] * r;
          }
        }
        return acc;
      });
  Scalar base_acc = Scalar::Zero();
  Scalar pk_acc = Scalar::Zero();
  for (const Partial& p : partials) {
    base_acc = base_acc + p.base_acc;
    pk_acc = pk_acc + p.pk_acc;
  }
  scalars[2 * components] = -pk_acc;
  points[2 * components] = pk;
  if (MultiScalarMulWithBase(-base_acc, scalars, points).IsIdentity()) {
    return Status::Ok();
  }
  // Re-run link by link so auditors get the exact failing index.
  Status localized = CheckLinksPerItem(links, pk, pair_index, executor);
  if (!localized.ok()) {
    return localized;
  }
  return Status::Error("mixnet: batched link check failed at pair " +
                       std::to_string(pair_index));
}

// Verifier-grade batch hash: an item's wire cache is attacker-supplied, so
// before its bytes may bind challenge bits the cache is checked against the
// item's ciphertexts. The check is one BatchValidateEncodings accumulator
// pass over every cached (point, 32-byte slice) pair: a slice passes iff it
// is the canonical encoding of its point (ristretto encodings are unique, so
// this is exactly the old parse-and-compare), at ~8 field multiplications
// per pair instead of a decode's inverse square root. A mismatched or
// malformed cache is a verification failure — otherwise a cheating mixer
// could grind the hashed bytes independently of the checked group elements
// to steer the per-item challenge bits. Cacheless items are encoded fresh in
// the same pass.
Status ValidatedBatchHash(const MixBatch& batch, Executor& executor,
                          const std::string& what, std::array<uint8_t, 32>* out) {
  std::vector<uint8_t> bad(batch.size(), 0);
  // Per-item bytes for cacheless items; empty when the (validated) cache
  // will be hashed directly.
  std::vector<Bytes> fresh(batch.size());
  // Flat gather of every cached item's (point, wire-slice) pairs, at fixed
  // offsets so the fill can run on the pool.
  std::vector<size_t> pair_at(batch.size() + 1, 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    const MixItem& item = batch[i];
    size_t pairs = item.HasWire() ? 2 * item.cts.size() : 0;
    pair_at[i + 1] = pair_at[i] + pairs;
  }
  std::vector<RistrettoPoint> cached_points(pair_at.back());
  std::vector<CompressedRistretto> cached_bytes(pair_at.back());
  executor.ParallelForEach(batch.size(), [&](size_t i) {
    const MixItem& item = batch[i];
    if (item.wire.empty()) {
      fresh[i] = SerializeItem(item);
      return;
    }
    if (item.wire.size() != 64 * item.cts.size()) {
      bad[i] = 1;
      return;
    }
    for (size_t c = 0; c < item.cts.size(); ++c) {
      size_t at = pair_at[i] + 2 * c;
      cached_points[at] = item.cts[c].c1;
      cached_points[at + 1] = item.cts[c].c2;
      std::memcpy(cached_bytes[at].data(), item.wire.data() + 64 * c, 32);
      std::memcpy(cached_bytes[at + 1].data(), item.wire.data() + 64 * c + 32, 32);
    }
  });
  std::vector<uint8_t> pair_ok(cached_points.size(), 0);
  if (BatchValidateEncodings(cached_points, cached_bytes, pair_ok) != 0) {
    for (size_t i = 0; i < batch.size(); ++i) {
      for (size_t k = pair_at[i]; k < pair_at[i + 1]; ++k) {
        if (!pair_ok[k]) {
          bad[i] = 1;
          break;
        }
      }
    }
  }
  if (auto i = FirstMarked(bad); i.has_value()) {
    return Status::Error("mixnet: " + what + ": wire cache does not match points at index " +
                         std::to_string(*i));
  }
  Sha256 h;
  uint8_t width = batch.empty() ? 0 : static_cast<uint8_t>(batch[0].cts.size());
  h.Update({&width, 1});
  for (size_t i = 0; i < batch.size(); ++i) {
    h.Update(fresh[i].empty() ? batch[i].wire : fresh[i]);
  }
  *out = h.Finalize();
  return Status::Ok();
}

}  // namespace

Status VerifyRpcMixCascade(const MixBatch& input, const MixBatch& output,
                           const MixProof& proof, const RistrettoPoint& pk,
                           MixLinkCheck mode, Executor& executor) {
  Executor::Scope scope(executor);  // nested crypto kernels follow this pool
  if (proof.pairs.empty()) {
    return Status::Error("mixnet: empty proof");
  }
  const MixBatch* current = &input;
  std::array<uint8_t, 32> h_current;
  if (Status s = ValidatedBatchHash(input, executor, "input", &h_current); !s.ok()) {
    return s;
  }
  for (size_t p = 0; p < proof.pairs.size(); ++p) {
    const RpcPairProof& pair = proof.pairs[p];
    if (pair.mid.size() != current->size() || pair.out.size() != current->size()) {
      return Status::Error("mixnet: batch size change in pair " + std::to_string(p));
    }
    std::array<uint8_t, 32> h_mid;
    std::array<uint8_t, 32> h_out;
    std::string pair_name = "pair " + std::to_string(p);
    if (Status s = ValidatedBatchHash(pair.mid, executor, pair_name + " mid", &h_mid);
        !s.ok()) {
      return s;
    }
    if (Status s = ValidatedBatchHash(pair.out, executor, pair_name + " out", &h_out);
        !s.ok()) {
      return s;
    }
    std::vector<uint8_t> bits =
        DeriveChallengeBits(h_current, h_mid, h_out, pair.mid.size(), p);
    if (pair.reveals.size() != pair.mid.size()) {
      return Status::Error("mixnet: reveal count mismatch in pair " + std::to_string(p));
    }
    // Injectivity tracking: each revealed source (left) and destination
    // (right) may be used at most once.
    std::vector<bool> left_used(current->size(), false);
    std::vector<bool> right_used(current->size(), false);
    std::vector<ResolvedLink> links;
    links.reserve(pair.mid.size());
    for (size_t j = 0; j < pair.mid.size(); ++j) {
      const RpcReveal& reveal = pair.reveals[j];
      if (reveal.side != bits[j]) {
        return Status::Error("mixnet: reveal side does not match challenge bit");
      }
      if (reveal.source_or_dest >= current->size()) {
        return Status::Error("mixnet: reveal index out of range");
      }
      // Proof data with the wrong randomness width is a verification
      // failure (a Status), not an internal invariant violation: the
      // reveal is attacker-supplied.
      if (reveal.randomness.size() !=
          (reveal.side == 0 ? (*current)[reveal.source_or_dest] : pair.mid[j]).cts.size()) {
        return Status::Error("mixnet: reveal randomness width mismatch at pair " +
                             std::to_string(p) + " index " + std::to_string(j));
      }
      ResolvedLink link;
      link.mid_index = j;
      link.side = reveal.side;
      link.randomness = &reveal.randomness;
      if (reveal.side == 0) {
        // mid[j] must be a re-encryption of input[source].
        if (left_used[reveal.source_or_dest]) {
          return Status::Error("mixnet: duplicate left link (not a permutation)");
        }
        left_used[reveal.source_or_dest] = true;
        link.src = &(*current)[reveal.source_or_dest];
        link.dst = &pair.mid[j];
      } else {
        // out[dest] must be a re-encryption of mid[j].
        if (right_used[reveal.source_or_dest]) {
          return Status::Error("mixnet: duplicate right link (not a permutation)");
        }
        right_used[reveal.source_or_dest] = true;
        link.src = &pair.mid[j];
        link.dst = &pair.out[reveal.source_or_dest];
      }
      links.push_back(link);
    }
    Status link_status = Status::Ok();
    if (mode == MixLinkCheck::kBatchedMsm) {
      // Weight seed binds the committed batches (hashes reused, not
      // recomputed), the pair index, AND every reveal. Binding the reveals
      // is load-bearing: they are published after the commitments, so
      // weights derived from commitments alone would be predictable to the
      // mixer while its reveal randomness is still a free variable.
      Sha512 seed_hash;
      seed_hash.Update(AsBytes(kLinkWeightDomain));
      seed_hash.Update(h_current);
      seed_hash.Update(h_mid);
      seed_hash.Update(h_out);
      uint8_t index_byte = static_cast<uint8_t>(p);
      seed_hash.Update({&index_byte, 1});
      for (const RpcReveal& reveal : pair.reveals) {
        uint8_t side = reveal.side;
        seed_hash.Update({&side, 1});
        uint8_t index_bytes[8];
        StoreLe64(index_bytes, reveal.source_or_dest);
        seed_hash.Update(index_bytes);
        for (const Scalar& r : reveal.randomness) {
          seed_hash.Update(r.ToBytes());
        }
      }
      auto seed = seed_hash.Finalize();
      link_status = CheckLinksBatched(links, pk, p, seed, executor);
    } else {
      link_status = CheckLinksPerItem(links, pk, p, executor);
    }
    if (!link_status.ok()) {
      return link_status;
    }
    current = &pair.out;
    h_current = h_out;
  }
  std::array<uint8_t, 32> h_output;
  if (Status s = ValidatedBatchHash(output, executor, "published output", &h_output);
      !s.ok()) {
    return s;
  }
  if (!(h_current == h_output)) {
    return Status::Error("mixnet: final batch does not match published output");
  }
  return Status::Ok();
}

}  // namespace votegral
