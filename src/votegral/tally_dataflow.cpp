// The dataflow tally engine: TallyService::Pipeline()'s stages scheduled as
// a chunk-granular task graph instead of stage-wide barriers.
//
// Scheduling shape (one flow per mixed list, ballots and roster, running
// concurrently):
//
//   validate[s] ─┐ (wave 1: ballots stream off per-shard LedgerCursors)
//                ├─ dedup ── mix-input[s] ── shuffle[layer][s] ── ... ──
//                                            tag[member][s] ── decrypt[s]
//
// A shuffle layer is all-to-all (output j reads input source_[j]), so each
// layer joins on the previous one; everywhere else dependencies are per
// shard: tagging member 0 starts on shard k the moment the final shuffle
// layer finishes shard k, member m+1 follows member m shard by shard, and
// share decryption follows the last tagging member the same way. The ballot
// and roster flows never wait for each other before the (sequential) join.
//
// Determinism (the reproducibility contract, made normative here): every
// randomness-consuming node gets its forked DRBG seed assigned at
// graph-BUILD time, drawn from the parent stream in exactly the order the
// barrier engine draws them (cascade layers, then tagging members, then
// decrypt batches — ballots before roster for mixing/tagging, roster before
// ballots for decryption, matching Pipeline()); shard boundaries come from
// Executor::Shards (data-size only); nodes commit results positionally.
// Scheduling therefore decides only *when* a node runs, never what it
// computes — transcripts are byte-identical to the barrier engine at every
// thread count, which tests/test_parallel_tally.cpp pins against the golden
// digest.
//
// Failure parity: the four stage-level fault probes are pure PRF decisions,
// evaluated at build time in the barrier engine's probe order (stopping at
// the first failure, so injection counts match); decrypt shortfalls are
// detected in the barrier's sequential finalize order (roster tags, ballot
// tags, votes). A failed run reports the same coded status either way.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/crypto/batch.h"
#include "src/crypto/drbg.h"
#include "src/votegral/tally_internal.h"

namespace votegral {
namespace tally_internal {
namespace {

enum StageIdx : size_t {
  kSValidate = 0,
  kSDedup,
  kSMix,
  kSTag,
  kSDecryptTags,
  kSJoin,
  kSDecryptVotes,
  kSReleaseGate,
  kNumStages,
};

constexpr const char* kStageNames[kNumStages] = {
    "validate", "dedup",         "mix",  "tag",
    "decrypt-tags", "join", "decrypt-votes", "release-gate",
};

// Per-stage busy-time accumulators (relaxed: summed once after Wait).
struct BusyClock {
  std::array<std::atomic<uint64_t>, kNumStages> nanos{};

  template <typename F>
  void Timed(size_t stage, F&& f) {
    const auto start = std::chrono::steady_clock::now();
    f();
    nanos[stage].fetch_add(
        static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() - start)
                                  .count()),
        std::memory_order_relaxed);
  }
};

Status WrapStage(const char* stage, const Status& status) {
  return Status::Error(status.code(), std::string(stage) + " stage: " + status.reason());
}

// One mix -> tag -> decrypt chain (ballots or roster): the pre-drawn
// randomness, the layer servers, and the working buffers its graph nodes
// write into. Everything here is sized and seeded at build time; nodes only
// fill positional slots.
struct ChainFlow {
  size_t n = 0;
  std::vector<std::pair<size_t, size_t>> shards;  // Shards(n, kRngShards)

  // Mix cascade: layers[2p] / layers[2p+1] are pair p's A/B servers
  // (permutations drawn at build); proof->pairs pre-sized with mid/out
  // batches; h[p] is the chain hash entering pair p (h[0] = input hash).
  MixBatch* input = nullptr;
  MixProof* proof = nullptr;
  std::vector<MixServer> layers;
  std::vector<std::vector<std::array<uint8_t, 32>>> layer_seeds;  // [layer][shard]
  std::vector<std::array<uint8_t, 32>> h;

  // Tag chain over one column of the final mix output.
  size_t column = 0;
  std::vector<TaggingStep>* steps = nullptr;  // pre-sized, one per member
  std::vector<std::vector<std::array<uint8_t, 32>>> tag_seeds;  // [member][shard]
  std::vector<CompressedRistretto> commitment_wires;
  std::vector<ElGamalCiphertext> tag_input;  // extracted column (per-shard)
  std::vector<ElGamalWire> tag_input_wire;

  // Share decryption of the fully tagged list.
  uint64_t epoch = 0;
  std::vector<std::array<uint8_t, 32>> decrypt_seeds;
  DecryptBatchBuffers buffers;
};

// Draws one chain's cascade randomness in the barrier engine's exact order:
// per pair, layer A's permutation then its shard seeds, then layer B's.
void DrawCascadeRandomness(ChainFlow& flow, size_t pairs, Rng& rng) {
  flow.layers.resize(2 * pairs);
  flow.layer_seeds.resize(2 * pairs);
  flow.h.resize(pairs + 1);
  flow.proof->pairs.resize(pairs);
  for (size_t p = 0; p < pairs; ++p) {
    flow.proof->pairs[p].mid.resize(flow.n);
    flow.proof->pairs[p].out.resize(flow.n);
    for (size_t half = 0; half < 2; ++half) {
      const size_t l = 2 * p + half;
      flow.layers[l].Prepare(flow.n, rng);
      flow.layer_seeds[l] = ForkRngSeeds(rng, flow.shards.size());
    }
  }
}

// Draws one chain's tagging randomness: per member, the shard seeds.
void DrawTagRandomness(ChainFlow& flow, const TaggingService& tagging, Rng& rng) {
  const size_t members = tagging.size();
  flow.tag_seeds.resize(members);
  flow.commitment_wires.resize(members);
  flow.steps->clear();
  flow.steps->reserve(members);
  for (size_t m = 0; m < members; ++m) {
    flow.tag_seeds[m] = ForkRngSeeds(rng, flow.shards.size());
    flow.commitment_wires[m] = tagging.commitments()[m].Encode();
    flow.steps->push_back(tagging.PrepareStep(m, flow.n));
  }
  flow.tag_input.resize(flow.n);
  flow.tag_input_wire.resize(flow.n);
}

// Submits one chain's wave-2 nodes: mix-input build, the shuffle layers,
// pair finalization, the tagging chain, and share decryption. `build_item`
// fills mix-input slot i. Returns nothing to wait on — callers Wait() on
// the whole graph.
void SubmitChainNodes(TaskGraph& graph, const TallyService& service, ChainFlow& flow,
                      const AuthorityClient& client, BusyClock& clock,
                      const std::function<void(size_t)>& build_item) {
  const RistrettoPoint& pk = service.authority().public_key();
  const size_t pairs = service.mix_pairs();
  const size_t members = service.tagging().size();
  const size_t shard_count = flow.shards.size();

  // Mix input: positional item builds, then the incoming chain hash.
  std::vector<TaskGraph::NodeId> input_nodes;
  input_nodes.reserve(shard_count);
  for (size_t s = 0; s < shard_count; ++s) {
    const auto [begin, end] = flow.shards[s];
    // build_item is copied per node: the caller's std::function is a
    // temporary that does not outlive this call, but the nodes do.
    input_nodes.push_back(graph.Submit([&, build_item, begin, end] {
      clock.Timed(kSMix, [&] {
        for (size_t i = begin; i < end; ++i) {
          build_item(i);
        }
      });
    }));
  }
  const TaskGraph::NodeId input_done =
      graph.Submit([] {}, std::span<const TaskGraph::NodeId>(input_nodes));
  const TaskGraph::NodeId input_hash = graph.Submit(
      [&] { clock.Timed(kSMix, [&] { flow.h[0] = HashMixBatch(*flow.input); }); },
      {input_done});

  // Shuffle layers: shard nodes joined per layer (a shuffle is all-to-all);
  // pair p finalizes once its B layer and the previous pair's challenge
  // chain are done. The last layer's shard nodes are remembered so the tag
  // chain can start per shard without waiting for the layer join.
  TaskGraph::NodeId prev_layer_done = input_done;
  TaskGraph::NodeId prev_finalize = input_hash;
  std::vector<TaskGraph::NodeId> last_layer_nodes;
  for (size_t p = 0; p < pairs; ++p) {
    RpcPairProof& pair = flow.proof->pairs[p];
    for (size_t half = 0; half < 2; ++half) {
      const size_t l = 2 * p + half;
      const MixBatch* in_batch = half == 0
                                     ? (p == 0 ? flow.input : &flow.proof->pairs[p - 1].out)
                                     : &pair.mid;
      MixBatch* out_batch = half == 0 ? &pair.mid : &pair.out;
      std::vector<TaskGraph::NodeId> layer_nodes;
      layer_nodes.reserve(shard_count);
      for (size_t s = 0; s < shard_count; ++s) {
        const auto [begin, end] = flow.shards[s];
        layer_nodes.push_back(graph.Submit(
            [&, l, s, begin, end, in_batch, out_batch] {
              clock.Timed(kSMix, [&] {
                ChaChaRng child(flow.layer_seeds[l][s]);
                flow.layers[l].ShuffleShardRange(*in_batch, pk, begin, end, child,
                                                 *out_batch);
              });
            },
            {prev_layer_done}));
      }
      prev_layer_done =
          graph.Submit([] {}, std::span<const TaskGraph::NodeId>(layer_nodes));
      if (p + 1 == pairs && half == 1) {
        last_layer_nodes = std::move(layer_nodes);
      }
    }
    prev_finalize = graph.Submit(
        [&, p] {
          clock.Timed(kSMix, [&] {
            FinishRpcPair(flow.layers[2 * p], flow.layers[2 * p + 1], flow.h[p], p,
                          &flow.proof->pairs[p], &flow.h[p + 1]);
          });
        },
        {prev_layer_done, prev_finalize});
  }

  // Tag chain, chunk-granular: member 0's shard node extracts its column
  // slice from the final shuffle output (points + 64-byte wire slices) and
  // applies the member; member m+1 follows member m shard by shard.
  std::vector<TaskGraph::NodeId> prev_member(shard_count);
  const MixBatch& final_out = flow.proof->pairs[pairs - 1].out;
  for (size_t s = 0; s < shard_count; ++s) {
    const auto [begin, end] = flow.shards[s];
    prev_member[s] = graph.Submit(
        [&, s, begin, end] {
          clock.Timed(kSTag, [&] {
            for (size_t i = begin; i < end; ++i) {
              const MixItem& item = final_out[i];
              flow.tag_input[i] = item.cts.at(flow.column);
              std::copy(item.wire.begin() + static_cast<ptrdiff_t>(64 * flow.column),
                        item.wire.begin() + static_cast<ptrdiff_t>(64 * (flow.column + 1)),
                        flow.tag_input_wire[i].begin());
            }
            ChaChaRng child(flow.tag_seeds[0][s]);
            service.tagging().ApplyShardRange(0, flow.tag_input, flow.tag_input_wire,
                                              flow.commitment_wires[0], begin, end, child,
                                              (*flow.steps)[0]);
          });
        },
        {last_layer_nodes[s]});
  }
  for (size_t m = 1; m < members; ++m) {
    for (size_t s = 0; s < shard_count; ++s) {
      const auto [begin, end] = flow.shards[s];
      prev_member[s] = graph.Submit(
          [&, m, s, begin, end] {
            clock.Timed(kSTag, [&] {
              ChaChaRng child(flow.tag_seeds[m][s]);
              service.tagging().ApplyShardRange(m, (*flow.steps)[m - 1].output,
                                                (*flow.steps)[m - 1].output_wire,
                                                flow.commitment_wires[m], begin, end, child,
                                                (*flow.steps)[m]);
            });
          },
          {prev_member[s]});
    }
  }

  // Share decryption follows the last tagging member, shard by shard.
  for (size_t s = 0; s < shard_count; ++s) {
    const auto [begin, end] = flow.shards[s];
    graph.Submit(
        [&, s, begin, end] {
          clock.Timed(kSDecryptTags, [&] {
            const TaggingStep& last = flow.steps->back();
            ChaChaRng child(flow.decrypt_seeds[s]);
            DecryptShareShardRange(service, client, last.output, last.output_wire,
                                   flow.epoch, begin, end, child, flow.buffers);
          });
        },
        {prev_member[s]});
  }
}

}  // namespace

Outcome<TallyOutput> RunDataflowTally(const TallyService& service, const PublicLedger& ledger,
                                      const CandidateList& candidates,
                                      const std::set<CompressedRistretto>& authorized_kiosks,
                                      Rng& rng, TallyRunMetrics* metrics) {
  Executor& executor = service.executor();
  Executor::Scope scope(executor);  // nested crypto kernels follow this pool
  const auto run_start = std::chrono::steady_clock::now();
  ExecutorStats stats_start;
  if (metrics != nullptr) {
    stats_start = executor.Stats();
  }
  BusyClock clock;

  TallyPipelineState state;
  TallyTranscript& t = state.output.transcript;
  for (size_t i = 0; i < candidates.size(); ++i) {
    state.output.result.counts[candidates.name(i)] = 0;
  }

  auto finish = [&](Outcome<TallyOutput> outcome) {
    if (metrics != nullptr) {
      *metrics = TallyRunMetrics{};
      metrics->threads = executor.threads();
      metrics->executor_start = stats_start;
      metrics->executor_end = executor.Stats();
      metrics->wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
              .count();
      for (size_t i = 0; i < kNumStages; ++i) {
        metrics->stages.push_back(TallyStageBusy{
            kStageNames[i],
            static_cast<double>(clock.nanos[i].load(std::memory_order_relaxed)) * 1e-9});
      }
    }
    return outcome;
  };

  TaskGraph graph(executor);

  // ---- Wave 1: validate (ballots stream off per-shard ledger cursors). ----
  const size_t ledger_n = ledger.BallotCount();
  std::vector<uint8_t> validate_outcome(ledger_n, kBallotOk);
  const auto validate_shards = Executor::Shards(ledger_n, Executor::kRngShards);
  if (service.revoting()) {
    state.validated_revotes.assign(ledger_n, std::nullopt);
    const RistrettoPoint& authority_pk = service.authority().public_key();
    for (const auto& [begin, end] : validate_shards) {
      graph.Submit([&, begin = begin, end = end] {
        clock.Timed(kSValidate, [&] {
          RevoteValidateShard(ledger, authority_pk, begin, end, state.validated_revotes,
                              validate_outcome);
        });
      });
    }
  } else {
    state.validated_ballots.assign(ledger_n, std::nullopt);
    for (const auto& [begin, end] : validate_shards) {
      graph.Submit([&, begin = begin, end = end] {
        clock.Timed(kSValidate, [&] {
          ValidateBallotShard(ledger, authorized_kiosks, begin, end, state.validated_ballots,
                              validate_outcome);
        });
      });
    }
  }
  graph.Wait();
  clock.Timed(kSDedup,
              [&] { TallyValidationOutcomes(validate_outcome, &state.output.result.discards); });
  if (service.revoting()) {
    // The whole supersession pipeline runs at the dedup position, barrier
    // style (it is internally sharded on the same executor); its rng draws
    // land exactly where the barrier engine makes them.
    Status dedup_status = Status::Ok();
    clock.Timed(kSDedup, [&] { dedup_status = RunRevoteDedup(service, rng, state); });
    if (!dedup_status.ok()) {
      return finish(Outcome<TallyOutput>::Fail(WrapStage("dedup", dedup_status)));
    }
  } else {
    if (Status fault = ProbeStageFault(faults::kTallyDedup, 0, "dedup"); !fault.ok()) {
      return finish(Outcome<TallyOutput>::Fail(WrapStage("dedup", fault)));
    }
    clock.Timed(kSDedup, [&] {
      t.accepted_ballots =
          DeduplicateBallots(state.validated_ballots, &state.output.result.discards);
      Release(state.validated_ballots);
    });
  }

  // The roster is rng-free ledger state: fetching it before the mix draws
  // is transcript-neutral (the barrier engine fetches it mid-mix-stage).
  const std::vector<RegistrationRecord> roster = ledger.ActiveRegistrations();

  // ---- Build-time randomness + fault probes, in barrier order. ----
  Require(service.mix_pairs() >= 1, "mixnet: need at least one pair");

  ChainFlow ballots;
  ballots.n = service.revoting() ? state.revote_kept.size() : t.accepted_ballots.size();
  ballots.shards = Executor::Shards(ballots.n, Executor::kRngShards);
  ballots.input = &t.ballot_mix_input;
  ballots.proof = &t.ballot_mix_proof;
  ballots.column = 1;
  ballots.steps = &t.ballot_tag_steps;
  ballots.epoch = kEpochBallotTags;

  ChainFlow roster_flow;
  roster_flow.n = roster.size();
  roster_flow.shards = Executor::Shards(roster_flow.n, Executor::kRngShards);
  roster_flow.input = &t.roster_mix_input;
  roster_flow.proof = &t.roster_mix_proof;
  roster_flow.column = 0;
  roster_flow.steps = &t.roster_tag_steps;
  roster_flow.epoch = kEpochRosterTags;

  // Probe order matches the barrier stages exactly (the probes are the only
  // fault points between the draws, and the PRF decisions are identical
  // wherever they are evaluated).
  if (Status fault = ProbeStageFault(faults::kMixShuffle, 0, "ballot mix"); !fault.ok()) {
    return finish(Outcome<TallyOutput>::Fail(WrapStage("mix", fault)));
  }
  DrawCascadeRandomness(ballots, service.mix_pairs(), rng);
  if (Status fault = ProbeStageFault(faults::kMixShuffle, 1, "roster mix"); !fault.ok()) {
    return finish(Outcome<TallyOutput>::Fail(WrapStage("mix", fault)));
  }
  DrawCascadeRandomness(roster_flow, service.mix_pairs(), rng);
  if (Status fault = ProbeStageFault(faults::kTagApply, 0, "ballot tagging"); !fault.ok()) {
    return finish(Outcome<TallyOutput>::Fail(WrapStage("tag", fault)));
  }
  DrawTagRandomness(ballots, service.tagging(), rng);
  if (Status fault = ProbeStageFault(faults::kTagApply, 1, "roster tagging"); !fault.ok()) {
    return finish(Outcome<TallyOutput>::Fail(WrapStage("tag", fault)));
  }
  DrawTagRandomness(roster_flow, service.tagging(), rng);
  // Decrypt-tags seeds: roster batch first, then ballots (Pipeline() order).
  roster_flow.decrypt_seeds = ForkRngSeeds(rng, roster_flow.shards.size());
  ballots.decrypt_seeds = ForkRngSeeds(rng, ballots.shards.size());

  t.ballot_mix_input.resize(ballots.n);
  t.roster_mix_input.resize(roster_flow.n);
  roster_flow.buffers.Init(service.authority(), roster_flow.n, &t.roster_tag_shares,
                           &t.roster_tags);
  ballots.buffers.Init(service.authority(), ballots.n, &t.ballot_tag_shares,
                       &t.ballot_tags);
  const AuthorityClient client(service.authority(), service.retry_policy());

  // ---- Wave 2: both chains, chunk-granular, fully concurrent. ----
  SubmitChainNodes(graph, service, ballots, client, clock, [&](size_t i) {
    if (service.revoting()) {
      t.ballot_mix_input[i] = std::move(state.revote_kept[i]);
    } else {
      t.ballot_mix_input[i] = BallotMixItem(t.accepted_ballots[i]);
    }
  });
  SubmitChainNodes(graph, service, roster_flow, client, clock, [&](size_t i) {
    MixItem item;
    item.cts = {roster[i].public_credential};
    item.EnsureWire();
    t.roster_mix_input[i] = std::move(item);
  });
  graph.Wait();

  // Publish the final mixed batches (the barrier engine's cascade-return
  // copies), then close the decrypt batches in its sequential order.
  clock.Timed(kSMix, [&] {
    t.ballot_mix_output = ballots.proof->pairs.back().out;
    t.roster_mix_output = roster_flow.proof->pairs.back().out;
  });
  Release(state.revote_kept);
  Status status = Status::Ok();
  clock.Timed(kSDecryptTags, [&] {
    status = FinalizeDecryptBatch("roster tags", roster_flow.buffers,
                                  &state.share_self_check, &state.authority_blame);
  });
  if (!status.ok()) {
    return finish(Outcome<TallyOutput>::Fail(WrapStage("decrypt-tags", status)));
  }
  for (const CompressedRistretto& tag : t.roster_tags) {
    state.roster_tag_counts[tag] += 1;
  }
  clock.Timed(kSDecryptTags, [&] {
    status = FinalizeDecryptBatch("ballot tags", ballots.buffers, &state.share_self_check,
                                  &state.authority_blame);
  });
  if (!status.ok()) {
    return finish(Outcome<TallyOutput>::Fail(WrapStage("decrypt-tags", status)));
  }

  // ---- Join (sequential: its output order is part of the transcript). ----
  clock.Timed(kSJoin, [&] { JoinTags(state); });

  // ---- Wave 3: decrypt the counted votes. ----
  std::vector<ElGamalCiphertext> counted_votes;
  std::vector<ElGamalWire> counted_votes_wire;
  clock.Timed(kSDecryptVotes, [&] {
    counted_votes.reserve(t.counted_indices.size());
    for (uint64_t index : t.counted_indices) {
      counted_votes.push_back(t.ballot_mix_output[index].cts.at(0));
    }
    std::vector<ElGamalWire> counted_wire = BatchColumnWire(t.ballot_mix_output, 0);
    if (counted_wire.size() == t.ballot_mix_output.size()) {
      counted_votes_wire.reserve(t.counted_indices.size());
      for (uint64_t index : t.counted_indices) {
        counted_votes_wire.push_back(counted_wire[index]);
      }
    }
  });
  const auto vote_shards = Executor::Shards(counted_votes.size(), Executor::kRngShards);
  const auto vote_seeds = ForkRngSeeds(rng, vote_shards.size());
  DecryptBatchBuffers vote_buffers;
  vote_buffers.Init(service.authority(), counted_votes.size(), &t.vote_shares,
                    &t.vote_points);
  const AuthorityClient vote_client(service.authority(), service.retry_policy());
  for (size_t s = 0; s < vote_shards.size(); ++s) {
    const auto [begin, end] = vote_shards[s];
    graph.Submit([&, s, begin, end] {
      clock.Timed(kSDecryptVotes, [&] {
        ChaChaRng child(vote_seeds[s]);
        DecryptShareShardRange(service, vote_client, counted_votes, counted_votes_wire,
                               kEpochVotes, begin, end, child, vote_buffers);
      });
    });
  }
  graph.Wait();
  clock.Timed(kSDecryptVotes, [&] {
    status = FinalizeDecryptBatch("votes", vote_buffers, &state.share_self_check,
                                  &state.authority_blame);
  });
  if (!status.ok()) {
    return finish(Outcome<TallyOutput>::Fail(WrapStage("decrypt-votes", status)));
  }
  clock.Timed(kSDecryptVotes, [&] { CountVotes(candidates, state); });

  // ---- Release gate (consumes the parent stream last, as the barrier
  // engine does). ----
  clock.Timed(kSReleaseGate, [&] { ReleaseGate(state, rng); });

  for (const auto& [member, blame_status] : state.authority_blame) {
    state.output.excluded_authorities.push_back(AuthorityBlame{member, blame_status});
  }
  return finish(Outcome<TallyOutput>::Ok(std::move(state.output)));
}

}  // namespace tally_internal
}  // namespace votegral
