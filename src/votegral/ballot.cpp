#include "src/votegral/ballot.h"

#include "src/common/serde.h"
#include "src/trip/messages.h"

namespace votegral {

namespace {

constexpr std::string_view kCandidateDomain = "votegral/candidate/v1";
constexpr std::string_view kBallotDomain = "votegral/ballot/v1";

}  // namespace

CandidateList::CandidateList(std::vector<std::string> names) : names_(std::move(names)) {
  Require(!names_.empty(), "CandidateList: need at least one candidate");
  points_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    RistrettoPoint point = RistrettoPoint::HashToGroup(kCandidateDomain, AsBytes(names_[i]));
    by_encoding_[point.Encode()] = i;
    points_.push_back(point);
  }
  Require(by_encoding_.size() == names_.size(), "CandidateList: duplicate candidate");
}

std::optional<size_t> CandidateList::IndexOfPoint(const RistrettoPoint& point) const {
  return IndexOfEncoding(point.Encode());
}

std::optional<size_t> CandidateList::IndexOfEncoding(const CompressedRistretto& encoding) const {
  auto it = by_encoding_.find(encoding);
  if (it == by_encoding_.end()) {
    return std::nullopt;
  }
  return it->second;
}

Bytes Ballot::SignedPayload() const {
  ByteWriter w;
  w.Str(kBallotDomain);
  w.Fixed(encrypted_vote.Serialize());
  w.Fixed(credential_pk);
  w.Fixed(kiosk_pk);
  w.Fixed(kiosk_cert_hash);
  w.Fixed(kiosk_cert.Serialize());
  return w.Take();
}

Bytes Ballot::Serialize() const {
  ByteWriter w;
  w.Fixed(encrypted_vote.Serialize());
  w.Fixed(credential_pk);
  w.Fixed(kiosk_pk);
  w.Fixed(kiosk_cert_hash);
  w.Fixed(kiosk_cert.Serialize());
  w.Fixed(credential_sig.Serialize());
  return w.Take();
}

std::optional<Ballot> Ballot::Parse(std::span<const uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    Ballot b;
    auto vote = ElGamalCiphertext::Parse(r.Fixed(64));
    Bytes cred_pk = r.Fixed(32);
    Bytes kiosk_pk = r.Fixed(32);
    Bytes cert_hash = r.Fixed(32);
    auto cert = SchnorrSignature::Parse(r.Fixed(64));
    auto sig = SchnorrSignature::Parse(r.Fixed(64));
    r.ExpectEnd();
    if (!vote || !cert || !sig) {
      return std::nullopt;
    }
    b.encrypted_vote = *vote;
    std::copy(cred_pk.begin(), cred_pk.end(), b.credential_pk.begin());
    std::copy(kiosk_pk.begin(), kiosk_pk.end(), b.kiosk_pk.begin());
    std::copy(cert_hash.begin(), cert_hash.end(), b.kiosk_cert_hash.begin());
    b.kiosk_cert = *cert;
    b.credential_sig = *sig;
    return b;
  } catch (const ProtocolError&) {
    return std::nullopt;
  }
}

Ballot MakeBallot(const ActivatedCredential& credential, const CandidateList& candidates,
                  size_t candidate_index, const RistrettoPoint& authority_pk, Rng& rng) {
  Ballot ballot;
  ballot.encrypted_vote =
      ElGamalEncrypt(authority_pk, candidates.point(candidate_index), rng);
  ballot.credential_pk = credential.credential_pk;
  ballot.kiosk_pk = credential.kiosk_pk;
  ballot.kiosk_cert_hash = credential.challenge_response_hash;
  ballot.kiosk_cert = credential.kiosk_response_sig;
  SchnorrKeyPair key = SchnorrKeyPair::FromSecret(credential.credential_sk);
  ballot.credential_sig = key.Sign(ballot.SignedPayload(), rng);
  return ballot;
}

Status CheckBallot(const Ballot& ballot,
                   const std::set<CompressedRistretto>& authorized_kiosks) {
  if (authorized_kiosks.count(ballot.kiosk_pk) == 0) {
    return Status::Error("ballot: kiosk not authorized");
  }
  // Kiosk certificate: σ_kr over (c_pk ‖ H(e‖r)) — proves the credential was
  // issued by a registrar kiosk (real or fake, deliberately indistinct).
  Status cert = SchnorrVerify(
      ballot.kiosk_pk,
      ResponseSegment::SignedPayload(ballot.credential_pk, ballot.kiosk_cert_hash),
      ballot.kiosk_cert);
  if (!cert.ok()) {
    return Status::Error("ballot: kiosk certificate invalid");
  }
  Status sig = SchnorrVerify(ballot.credential_pk, ballot.SignedPayload(),
                             ballot.credential_sig);
  if (!sig.ok()) {
    return Status::Error("ballot: credential signature invalid");
  }
  return Status::Ok();
}

}  // namespace votegral
