#include "src/votegral/ballot.h"

#include "src/common/serde.h"
#include "src/crypto/sha512.h"
#include "src/trip/messages.h"

namespace votegral {

namespace {

constexpr std::string_view kCandidateDomain = "votegral/candidate/v1";
constexpr std::string_view kBallotDomain = "votegral/ballot/v1";
constexpr std::string_view kRevoteBallotDomain = "votegral/revote/ballot/v1";
constexpr std::string_view kRevoteBindingDomain = "votegral/revote/binding/v1";
constexpr std::string_view kRevoteBottomDomain = "votegral/revote/bottom/v1";

// Fiat–Shamir challenge for the binding proof: SHA-512 over the domain, the
// ballot body bytes, and both commitments, reduced mod L.
Scalar BindingChallenge(std::span<const uint8_t> body, const CompressedRistretto& t1,
                        const CompressedRistretto& t2) {
  Sha512 h;
  h.Update(AsBytes(kRevoteBindingDomain));
  h.Update(body);
  h.Update(t1);
  h.Update(t2);
  return Scalar::FromBytesWide(h.Finalize());
}

}  // namespace

CandidateList::CandidateList(std::vector<std::string> names) : names_(std::move(names)) {
  Require(!names_.empty(), "CandidateList: need at least one candidate");
  points_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    RistrettoPoint point = RistrettoPoint::HashToGroup(kCandidateDomain, AsBytes(names_[i]));
    by_encoding_[point.Encode()] = i;
    points_.push_back(point);
  }
  Require(by_encoding_.size() == names_.size(), "CandidateList: duplicate candidate");
}

std::optional<size_t> CandidateList::IndexOfPoint(const RistrettoPoint& point) const {
  return IndexOfEncoding(point.Encode());
}

std::optional<size_t> CandidateList::IndexOfEncoding(const CompressedRistretto& encoding) const {
  auto it = by_encoding_.find(encoding);
  if (it == by_encoding_.end()) {
    return std::nullopt;
  }
  return it->second;
}

Bytes Ballot::SignedPayload() const {
  ByteWriter w;
  w.Str(kBallotDomain);
  w.Fixed(encrypted_vote.Serialize());
  w.Fixed(credential_pk);
  w.Fixed(kiosk_pk);
  w.Fixed(kiosk_cert_hash);
  w.Fixed(kiosk_cert.Serialize());
  return w.Take();
}

Bytes Ballot::Serialize() const {
  ByteWriter w;
  w.Fixed(encrypted_vote.Serialize());
  w.Fixed(credential_pk);
  w.Fixed(kiosk_pk);
  w.Fixed(kiosk_cert_hash);
  w.Fixed(kiosk_cert.Serialize());
  w.Fixed(credential_sig.Serialize());
  return w.Take();
}

std::optional<Ballot> Ballot::Parse(std::span<const uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    Ballot b;
    auto vote = ElGamalCiphertext::Parse(r.Fixed(64));
    Bytes cred_pk = r.Fixed(32);
    Bytes kiosk_pk = r.Fixed(32);
    Bytes cert_hash = r.Fixed(32);
    auto cert = SchnorrSignature::Parse(r.Fixed(64));
    auto sig = SchnorrSignature::Parse(r.Fixed(64));
    r.ExpectEnd();
    if (!vote || !cert || !sig) {
      return std::nullopt;
    }
    b.encrypted_vote = *vote;
    std::copy(cred_pk.begin(), cred_pk.end(), b.credential_pk.begin());
    std::copy(kiosk_pk.begin(), kiosk_pk.end(), b.kiosk_pk.begin());
    std::copy(cert_hash.begin(), cert_hash.end(), b.kiosk_cert_hash.begin());
    b.kiosk_cert = *cert;
    b.credential_sig = *sig;
    return b;
  } catch (const ProtocolError&) {
    return std::nullopt;
  }
}

Ballot MakeBallot(const ActivatedCredential& credential, const CandidateList& candidates,
                  size_t candidate_index, const RistrettoPoint& authority_pk, Rng& rng) {
  Ballot ballot;
  ballot.encrypted_vote =
      ElGamalEncrypt(authority_pk, candidates.point(candidate_index), rng);
  ballot.credential_pk = credential.credential_pk;
  ballot.kiosk_pk = credential.kiosk_pk;
  ballot.kiosk_cert_hash = credential.challenge_response_hash;
  ballot.kiosk_cert = credential.kiosk_response_sig;
  SchnorrKeyPair key = SchnorrKeyPair::FromSecret(credential.credential_sk);
  ballot.credential_sig = key.Sign(ballot.SignedPayload(), rng);
  return ballot;
}

const RistrettoPoint& RevoteBottomPoint() {
  static const RistrettoPoint bottom =
      RistrettoPoint::HashToGroup(kRevoteBottomDomain, {});
  return bottom;
}

Bytes RevoteBindingProof::Serialize() const {
  ByteWriter w;
  w.Fixed(t1);
  w.Fixed(t2);
  w.Fixed(z1.ToBytes());
  w.Fixed(z2.ToBytes());
  return w.Take();
}

std::optional<RevoteBindingProof> RevoteBindingProof::Parse(std::span<const uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    RevoteBindingProof p;
    Bytes t1 = r.Fixed(32);
    Bytes t2 = r.Fixed(32);
    Bytes z1 = r.Fixed(32);
    Bytes z2 = r.Fixed(32);
    r.ExpectEnd();
    std::copy(t1.begin(), t1.end(), p.t1.begin());
    std::copy(t2.begin(), t2.end(), p.t2.begin());
    auto s1 = Scalar::FromCanonicalBytes(z1);
    auto s2 = Scalar::FromCanonicalBytes(z2);
    if (!s1 || !s2) {
      return std::nullopt;
    }
    p.z1 = *s1;
    p.z2 = *s2;
    return p;
  } catch (const ProtocolError&) {
    return std::nullopt;
  }
}

Bytes RevoteBallot::BoundPayload() const {
  ByteWriter w;
  w.Str(kRevoteBallotDomain);
  w.Fixed(encrypted_vote.Serialize());
  w.Fixed(encrypted_credential.Serialize());
  w.Fixed(encrypted_counter.Serialize());
  return w.Take();
}

Bytes RevoteBallot::Serialize() const {
  ByteWriter w;
  w.Fixed(encrypted_vote.Serialize());
  w.Fixed(encrypted_credential.Serialize());
  w.Fixed(encrypted_counter.Serialize());
  w.Fixed(proof.Serialize());
  return w.Take();
}

std::optional<RevoteBallot> RevoteBallot::Parse(std::span<const uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    RevoteBallot b;
    auto vote = ElGamalCiphertext::Parse(r.Fixed(64));
    auto credential = ElGamalCiphertext::Parse(r.Fixed(64));
    auto counter = ElGamalCiphertext::Parse(r.Fixed(64));
    auto proof = RevoteBindingProof::Parse(r.Fixed(128));
    r.ExpectEnd();
    if (!vote || !credential || !counter || !proof) {
      return std::nullopt;
    }
    b.encrypted_vote = *vote;
    b.encrypted_credential = *credential;
    b.encrypted_counter = *counter;
    b.proof = *proof;
    return b;
  } catch (const ProtocolError&) {
    return std::nullopt;
  }
}

RevoteBallot MakeRevoteBallot(const ActivatedCredential& credential,
                              const CandidateList& candidates, size_t candidate_index,
                              const RistrettoPoint& authority_pk, uint64_t counter,
                              Rng& rng) {
  RevoteBallot ballot;
  ballot.encrypted_vote =
      ElGamalEncrypt(authority_pk, candidates.point(candidate_index), rng);
  Scalar credential_r;
  ballot.encrypted_credential =
      ElGamalEncrypt(authority_pk, RistrettoPoint::MulBase(credential.credential_sk), rng,
                     &credential_r);
  ballot.encrypted_counter = ElGamalEncrypt(
      authority_pk, RistrettoPoint::MulBase(Scalar::FromU64(counter)), rng);
  // Okamoto AND-sigma for (r, c_sk): T1 = a*B, T2 = a*A + b*B.
  const Scalar a = Scalar::Random(rng);
  const Scalar b = Scalar::Random(rng);
  ballot.proof.t1 = RistrettoPoint::MulBase(a).Encode();
  ballot.proof.t2 = (a * authority_pk + RistrettoPoint::MulBase(b)).Encode();
  const Scalar e = BindingChallenge(ballot.BoundPayload(), ballot.proof.t1, ballot.proof.t2);
  ballot.proof.z1 = a + e * credential_r;
  ballot.proof.z2 = b + e * credential.credential_sk;
  return ballot;
}

Status CheckRevoteBallot(const RevoteBallot& ballot, const RistrettoPoint& authority_pk) {
  const Scalar e = BindingChallenge(ballot.BoundPayload(), ballot.proof.t1, ballot.proof.t2);
  const ElGamalCiphertext& c = ballot.encrypted_credential;
  // z1*B == T1 + e*C1  and  z1*A + z2*B == T2 + e*C2.
  auto t1 = RistrettoPoint::Decode(ballot.proof.t1);
  auto t2 = RistrettoPoint::Decode(ballot.proof.t2);
  if (!t1.has_value() || !t2.has_value()) {
    return Status::Error("revote ballot: binding proof commitment undecodable");
  }
  const RistrettoPoint lhs1 = RistrettoPoint::DoubleScalarMulBase(-e, c.c1, ballot.proof.z1);
  if (!(lhs1 == *t1)) {
    return Status::Error("revote ballot: binding proof first equation failed");
  }
  const RistrettoPoint lhs2 =
      ballot.proof.z1 * authority_pk + RistrettoPoint::MulBase(ballot.proof.z2) - e * c.c2;
  if (!(lhs2 == *t2)) {
    return Status::Error("revote ballot: binding proof second equation failed");
  }
  return Status::Ok();
}

Status CheckBallot(const Ballot& ballot,
                   const std::set<CompressedRistretto>& authorized_kiosks) {
  if (authorized_kiosks.count(ballot.kiosk_pk) == 0) {
    return Status::Error("ballot: kiosk not authorized");
  }
  // Kiosk certificate: σ_kr over (c_pk ‖ H(e‖r)) — proves the credential was
  // issued by a registrar kiosk (real or fake, deliberately indistinct).
  Status cert = SchnorrVerify(
      ballot.kiosk_pk,
      ResponseSegment::SignedPayload(ballot.credential_pk, ballot.kiosk_cert_hash),
      ballot.kiosk_cert);
  if (!cert.ok()) {
    return Status::Error("ballot: kiosk certificate invalid");
  }
  Status sig = SchnorrVerify(ballot.credential_pk, ballot.SignedPayload(),
                             ballot.credential_sig);
  if (!sig.ok()) {
    return Status::Error("ballot: credential signature invalid");
  }
  return Status::Ok();
}

}  // namespace votegral
