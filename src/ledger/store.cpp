#include "src/ledger/store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "src/common/faults.h"
#include "src/common/serde.h"

namespace votegral {

namespace fs = std::filesystem;

namespace {

// Segment file header: magic, segment number, first entry index, capacity,
// flags. v02 added the flags word (bit 0 = sealed) so a segment carries its
// own durability state: frames are flushed as they append, and sealing
// rewrites the completed segment — sealed flag set — to a temp file followed
// by an atomic rename, so a crash mid-seal leaves either the old unsealed
// file (recovery re-seals it) or the new sealed one, never a half-updated
// header over live frames.
constexpr char kSegmentMagic[8] = {'V', 'G', 'L', 'S', 'E', 'G', '0', '2'};
constexpr size_t kSegmentHeaderBytes = sizeof(kSegmentMagic) + 8 + 8 + 4 + 4;
constexpr uint32_t kSegmentSealedFlag = 1u << 0;
constexpr const char* kSealTempSuffix = ".tmp";

std::string SegmentFileName(uint64_t segment) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08llu.log",
                static_cast<unsigned long long>(segment));
  return name;
}

Bytes EncodeSegmentHeader(uint64_t segment, uint64_t first_index,
                          uint32_t segment_entries, uint32_t flags) {
  Bytes out;
  out.insert(out.end(), kSegmentMagic, kSegmentMagic + sizeof(kSegmentMagic));
  out.resize(kSegmentHeaderBytes);
  StoreLe64(out.data() + 8, segment);
  StoreLe64(out.data() + 16, first_index);
  StoreLe32(out.data() + 24, segment_entries);
  StoreLe32(out.data() + 28, flags);
  return out;
}

// Parses one length-prefixed frame as zero-copy views into `bytes`.
// Returns: 1 on success (offset advanced), 0 on a torn/incomplete frame
// (offset untouched), -1 on a structurally bad frame.
int ParseFrameView(std::span<const uint8_t> bytes, size_t* offset,
                   LedgerEntryView* out) {
  size_t pos = *offset;
  if (bytes.size() - pos < 4) {
    return 0;
  }
  uint32_t frame_len = LoadLe32(bytes.data() + pos);
  pos += 4;
  if (bytes.size() - pos < frame_len) {
    return 0;
  }
  std::span<const uint8_t> frame = bytes.subspan(pos, frame_len);
  // Frame layout: u64 index | u32 topic_len | topic | u32 payload_len |
  // payload | 32B prev_hash | 32B entry_hash.
  size_t p = 0;
  if (frame.size() < 12) {
    return -1;
  }
  out->index = LoadLe64(frame.data());
  uint32_t topic_len = LoadLe32(frame.data() + 8);
  p = 12;
  if (frame.size() - p < topic_len) {
    return -1;
  }
  out->topic = std::string_view(reinterpret_cast<const char*>(frame.data() + p), topic_len);
  p += topic_len;
  if (frame.size() - p < 4) {
    return -1;
  }
  uint32_t payload_len = LoadLe32(frame.data() + p);
  p += 4;
  // size_t arithmetic: a crafted payload_len near UINT32_MAX must not wrap
  // the right-hand side into passing the check (attacker-supplied frames
  // reach this from snapshot import).
  if (frame.size() - p != size_t{payload_len} + 64) {
    return -1;
  }
  out->payload = frame.subspan(p, payload_len);
  p += payload_len;
  std::copy_n(frame.data() + p, 32, out->prev_hash.begin());
  std::copy_n(frame.data() + p + 32, 32, out->entry_hash.begin());
  *offset = pos + frame_len;
  return 1;
}

Outcome<Bytes> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Outcome<Bytes>::Fail("ledger store: cannot open " + path);
  }
  Bytes bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return Outcome<Bytes>::Ok(std::move(bytes));
}

// Strict "seg-XXXXXXXX.log" parse (8 decimal digits); returns false for
// anything else so stray files in the directory are ignored, not misread.
bool ParseSegmentFileName(const std::string& name, uint64_t* segment) {
  if (name.size() != 16 || name.rfind("seg-", 0) != 0 ||
      name.compare(12, 4, ".log") != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 4; i < 12; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *segment = value;
  return true;
}

}  // namespace

LedgerHash HashLedgerEntry(uint64_t index, std::string_view topic,
                           std::span<const uint8_t> payload, const LedgerHash& prev) {
  ByteWriter w;
  w.U64(index);
  w.Str(topic);
  w.Var(payload);
  w.Fixed(prev);
  return Sha256::Hash(w.bytes());
}

LedgerStorageConfig LedgerStorageConfig::ForSubLog(const char* name) const {
  LedgerStorageConfig config = *this;
  if (config.backend == Backend::kFile) {
    config.directory = (fs::path(directory) / name).string();
  }
  return config;
}

namespace {

void AppendEntryFrameParts(Bytes* out, uint64_t index, std::string_view topic,
                           std::span<const uint8_t> payload, const LedgerHash& prev,
                           const LedgerHash& entry_hash) {
  ByteWriter w;
  w.U64(index);
  w.Str(topic);
  w.Var(payload);
  w.Fixed(prev);
  w.Fixed(entry_hash);
  Bytes frame = w.Take();
  size_t base = out->size();
  out->resize(base + 4);
  StoreLe32(out->data() + base, static_cast<uint32_t>(frame.size()));
  out->insert(out->end(), frame.begin(), frame.end());
}

}  // namespace

void AppendEntryFrame(Bytes* out, const LedgerEntry& entry) {
  AppendEntryFrameParts(out, entry.index, entry.topic, entry.payload, entry.prev_hash,
                        entry.entry_hash);
}

void AppendEntryFrame(Bytes* out, const LedgerEntryView& view) {
  AppendEntryFrameParts(out, view.index, view.topic, view.payload, view.prev_hash,
                        view.entry_hash);
}

Outcome<LedgerEntry> DecodeEntryFrame(std::span<const uint8_t> bytes, size_t* offset) {
  LedgerEntryView view;
  int parsed = ParseFrameView(bytes, offset, &view);
  if (parsed <= 0) {
    return Outcome<LedgerEntry>::Fail(parsed == 0 ? "ledger store: truncated entry frame"
                                                  : "ledger store: malformed entry frame");
  }
  return Outcome<LedgerEntry>::Ok(view.Materialize());
}

// --- InMemoryLedgerStore -----------------------------------------------------

InMemoryLedgerStore::InMemoryLedgerStore(size_t segment_entries)
    : segment_entries_(segment_entries) {
  Require(segment_entries_ > 0 && (segment_entries_ & (segment_entries_ - 1)) == 0,
          "ledger store: segment_entries must be a power of two");
}

uint64_t InMemoryLedgerStore::Append(const LedgerEntry& entry) {
  Require(entry.index == entries_.size(), "ledger store: append index out of sequence");
  entries_.push_back(entry);
  return entry.index;
}

PinnedSegment InMemoryLedgerStore::Pin(uint64_t segment) const {
  Require(segment < SegmentCount(), "ledger store: pin of nonexistent segment");
  PinnedSegment pin;
  pin.first_index_ = segment * segment_entries_;
  pin.count_ = std::min<uint64_t>(segment_entries_, entries_.size() - pin.first_index_);
  pin.views_.reserve(pin.count_);
  for (size_t i = 0; i < pin.count_; ++i) {
    const LedgerEntry& entry = entries_[pin.first_index_ + i];
    pin.views_.push_back(LedgerEntryView{entry.index, entry.topic, entry.payload,
                                         entry.prev_hash, entry.entry_hash});
  }
  return pin;
}

void InMemoryLedgerStore::TamperWithPayloadForTest(uint64_t index, Bytes payload) {
  Require(index < entries_.size(), "ledger store: tamper index out of range");
  entries_[index].payload = std::move(payload);
}

// --- FileLedgerStore ---------------------------------------------------------

FileLedgerStore::FileLedgerStore(std::string directory, size_t segment_entries)
    : directory_(std::move(directory)), segment_entries_(segment_entries) {}

std::string FileLedgerStore::SegmentPath(uint64_t segment) const {
  return (fs::path(directory_) / SegmentFileName(segment)).string();
}

Outcome<std::unique_ptr<FileLedgerStore>> FileLedgerStore::Open(
    std::string directory, size_t segment_entries) {
  using Out = Outcome<std::unique_ptr<FileLedgerStore>>;
  if (segment_entries == 0 || (segment_entries & (segment_entries - 1)) != 0) {
    return Out::Fail("ledger store: segment_entries must be a power of two");
  }
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Out::Fail("ledger store: cannot create directory " + directory + ": " +
                     ec.message());
  }
  auto store = std::unique_ptr<FileLedgerStore>(
      new FileLedgerStore(std::move(directory), segment_entries));
  if (Status recovered = store->RecoverFromDisk(); !recovered.ok()) {
    return Out::Fail(recovered.reason());
  }
  return Out::Ok(std::move(store));
}

Status FileLedgerStore::RecoverFromDisk() {
  // Enumerate segment files; numbering must be contiguous from zero — a gap
  // means a segment file went missing and the chain cannot be replayed.
  // Stray seal temp files (a crash between writing `<seg>.tmp` and the
  // atomic rename) are discarded first: the live, unsealed file is still the
  // source of truth and gets re-sealed below.
  std::vector<uint64_t> present;
  std::vector<fs::path> stale_temps;
  for (const fs::directory_entry& entry : fs::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    uint64_t segment = 0;
    if (ParseSegmentFileName(name, &segment)) {
      present.push_back(segment);
    } else if (name.size() > 4 && name.compare(name.size() - 4, 4, kSealTempSuffix) == 0 &&
               ParseSegmentFileName(name.substr(0, name.size() - 4), &segment)) {
      stale_temps.push_back(entry.path());
    }
  }
  for (const fs::path& temp : stale_temps) {
    std::error_code rm_ec;
    fs::remove(temp, rm_ec);
    if (rm_ec) {
      return Status::Error("ledger store: cannot remove stale seal temp " +
                           temp.string() + ": " + rm_ec.message());
    }
    recovery_stats_.removed_seal_temp = true;
  }
  std::sort(present.begin(), present.end());
  for (size_t s = 0; s < present.size(); ++s) {
    if (present[s] != s) {
      return Status::Error("ledger store: missing segment file " +
                           SegmentFileName(s) + " in " + directory_);
    }
  }

  LedgerHash prev = {};
  uint64_t expected_index = 0;
  bool tail_sealed = false;
  for (size_t s = 0; s < present.size(); ++s) {
    const bool last = (s + 1 == present.size());
    const std::string path = SegmentPath(s);
    auto bytes = ReadWholeFile(path);
    if (!bytes.ok()) {
      return bytes.status;
    }
    auto fail = [&](uint64_t entry_in_segment, const std::string& what) {
      return Status::Error("ledger store: segment " + std::to_string(s) + " entry " +
                           std::to_string(entry_in_segment) + ": " + what + " (" + path +
                           ")");
    };
    if (bytes->size() < kSegmentHeaderBytes) {
      // A crash between creating the next segment file and flushing its
      // first frame leaves a zero-byte or partial-header file. That is a
      // torn tail, recoverable only at the very end of the log.
      if (last && s > 0) {
        std::error_code rm_ec;
        fs::remove(path, rm_ec);
        if (rm_ec) {
          return Status::Error("ledger store: segment " + std::to_string(s) +
                               ": cannot remove torn tail segment: " + rm_ec.message());
        }
        recovery_stats_.truncated_tail = true;
        recovery_stats_.dropped_bytes = bytes->size();
        break;
      }
      if (last && bytes->empty()) {  // sole, empty segment file: a fresh log
        std::error_code rm_ec;
        fs::remove(path, rm_ec);
        recovery_stats_.truncated_tail = true;
        break;
      }
      return Status::Error("ledger store: segment " + std::to_string(s) +
                           ": truncated header (" + path + ")");
    }
    if (!std::equal(kSegmentMagic, kSegmentMagic + sizeof(kSegmentMagic), bytes->begin())) {
      return Status::Error("ledger store: segment " + std::to_string(s) +
                           ": bad header magic (" + path + ")");
    }
    const uint64_t header_segment = LoadLe64(bytes->data() + 8);
    const uint64_t header_first = LoadLe64(bytes->data() + 16);
    const uint32_t header_capacity = LoadLe32(bytes->data() + 24);
    const uint32_t header_flags = LoadLe32(bytes->data() + 28);
    const bool sealed = (header_flags & kSegmentSealedFlag) != 0;
    if ((header_flags & ~kSegmentSealedFlag) != 0) {
      return Status::Error("ledger store: segment " + std::to_string(s) +
                           ": unknown header flags (" + path + ")");
    }
    if (!sealed && !last) {
      return Status::Error("ledger store: segment " + std::to_string(s) +
                           ": unsealed segment is not the log tail (" + path + ")");
    }
    if (s == 0) {
      // The on-disk log's geometry wins over the caller's, but it must
      // satisfy the same power-of-two invariant the caller's value did.
      if (header_capacity == 0 || (header_capacity & (header_capacity - 1)) != 0) {
        return Status::Error("ledger store: segment 0: header capacity " +
                             std::to_string(header_capacity) +
                             " is not a power of two (" + path + ")");
      }
      segment_entries_ = header_capacity;
    }
    if (header_segment != s || header_first != expected_index ||
        header_capacity != segment_entries_) {
      return Status::Error("ledger store: segment " + std::to_string(s) +
                           ": header does not match its position in the log (" + path +
                           ")");
    }

    size_t offset = kSegmentHeaderBytes;
    uint64_t in_segment = 0;
    while (offset < bytes->size()) {
      LedgerEntryView view;
      int parsed = ParseFrameView(*bytes, &offset, &view);
      if (parsed == 0) {
        // Torn tail frame: recoverable only in the unsealed tail segment (a
        // crash mid-append); inside a sealed segment it is corruption.
        if (sealed) {
          return fail(in_segment, "torn entry frame inside a sealed segment");
        }
        std::error_code trunc_ec;
        fs::resize_file(path, offset, trunc_ec);
        if (trunc_ec) {
          return fail(in_segment, "cannot truncate torn tail: " + trunc_ec.message());
        }
        recovery_stats_.truncated_tail = true;
        recovery_stats_.dropped_bytes = bytes->size() - offset;
        bytes->resize(offset);
        break;
      }
      if (parsed < 0) {
        return fail(in_segment, "malformed entry frame");
      }
      if (in_segment >= segment_entries_) {
        return fail(in_segment, "more entries than the segment capacity");
      }
      if (view.index != expected_index) {
        return fail(in_segment, "entry index breaks the sequence");
      }
      if (view.prev_hash != prev) {
        return fail(in_segment, "hash chain break");
      }
      LedgerHash recomputed =
          HashLedgerEntry(view.index, view.topic, view.payload, view.prev_hash);
      if (recomputed != view.entry_hash) {
        return fail(in_segment, "entry hash mismatch (payload or header tampered)");
      }
      prev = view.entry_hash;
      ++expected_index;
      ++in_segment;
      if (last) {
        active_.push_back(view.Materialize());
      }
    }
    if (sealed && in_segment != segment_entries_) {
      return Status::Error("ledger store: segment " + std::to_string(s) +
                           ": sealed segment holds " + std::to_string(in_segment) +
                           " entries, expected " + std::to_string(segment_entries_) + " (" +
                           path + ")");
    }
    if (last) {
      tail_sealed = sealed;
    }
  }
  size_ = expected_index;
  recovery_stats_.recovered_entries = size_;
  if (tail_sealed) {
    active_.clear();  // tail segment is complete and committed
  } else if (!active_.empty() && active_.size() == segment_entries_) {
    // The tail is full but its seal never committed (crash after the last
    // frame flush, before the atomic rename). Finish the seal now.
    SealActiveSegment();
    recovery_stats_.resealed_tail = true;
  }
  active_first_ = (size_ / segment_entries_) * segment_entries_;
  return Status::Ok();
}

void FileLedgerStore::OpenActiveStream() {
  const uint64_t segment = size_ / segment_entries_;
  const std::string path = SegmentPath(segment);
  const bool fresh = !fs::exists(path);
  active_out_.open(path, std::ios::binary | std::ios::app);
  Require(static_cast<bool>(active_out_),
          "ledger store: cannot open active segment for append");
  if (fresh) {
    // New segments open unsealed (flags = 0); the sealed flag is only ever
    // committed by the atomic rename in SealActiveSegment.
    Bytes header = EncodeSegmentHeader(segment, size_,
                                       static_cast<uint32_t>(segment_entries_), 0);
    active_out_.write(reinterpret_cast<const char*>(header.data()),
                      static_cast<std::streamsize>(header.size()));
  }
}

uint64_t FileLedgerStore::Append(const LedgerEntry& entry) {
  Require(entry.index == size_, "ledger store: append index out of sequence");
  if (!active_out_.is_open()) {
    OpenActiveStream();
  }
  Bytes frame;
  AppendEntryFrame(&frame, entry);
  const uint64_t segment = size_ / segment_entries_;
  const FaultDecision fault = ProbeFaultPoint(faults::kLedgerAppend, segment, entry.index);
  if (fault.kind == FaultKind::kCrash) {
    // Torn write: only a prefix of the frame reaches disk before the
    // process "dies". Recovery truncates it away and the tally resumes
    // from the previous entry.
    active_out_.write(reinterpret_cast<const char*>(frame.data()),
                      static_cast<std::streamsize>(frame.size() / 2));
    active_out_.flush();
    active_out_.close();
    throw InjectedCrash("ledger store: crash injected at " +
                        std::string(faults::kLedgerAppend) + " (entry " +
                        std::to_string(entry.index) + ")");
  }
  if (fault.kind == FaultKind::kCorrupt) {
    // Silent media corruption: the frame lands on disk with a flipped byte
    // while the in-memory copy stays intact. Caught by the hash chain on
    // the next recovery, not by this process.
    frame.back() ^= 0x01;
  }
  active_out_.write(reinterpret_cast<const char*>(frame.data()),
                    static_cast<std::streamsize>(frame.size()));
  active_out_.flush();
  Require(static_cast<bool>(active_out_), "ledger store: segment write failed");
  active_.push_back(entry);
  ++size_;
  if (active_.size() == segment_entries_) {
    SealActiveSegment();
  }
  return entry.index;
}

void FileLedgerStore::SealActiveSegment() {
  Require(!active_.empty() && active_.size() == segment_entries_,
          "ledger store: seal of a non-full segment");
  const uint64_t first_index = active_.front().index;
  const uint64_t segment = first_index / segment_entries_;
  if (active_out_.is_open()) {
    active_out_.flush();  // every frame is on disk before the seal starts
    active_out_.close();
  }
  // Build the sealed image and commit it with write-to-temp + atomic rename:
  // a crash at any point leaves either the old unsealed file (re-sealed on
  // the next open) or the complete sealed one — never a live file with a
  // half-updated header.
  Bytes image = EncodeSegmentHeader(segment, first_index,
                                    static_cast<uint32_t>(segment_entries_),
                                    kSegmentSealedFlag);
  for (const LedgerEntry& entry : active_) {
    AppendEntryFrame(&image, entry);
  }
  const std::string path = SegmentPath(segment);
  const std::string temp = path + kSealTempSuffix;
  const FaultDecision fault = ProbeFaultPoint(faults::kLedgerSeal, segment, first_index);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    Require(static_cast<bool>(out), "ledger store: cannot open seal temp file");
    if (fault.kind == FaultKind::kCrash) {
      // Partial seal: the temp file is half-written when the process
      // "dies". The live segment file is untouched (still unsealed, full);
      // recovery discards the temp and finishes the seal.
      out.write(reinterpret_cast<const char*>(image.data()),
                static_cast<std::streamsize>(image.size() / 2));
      out.flush();
      out.close();
      throw InjectedCrash("ledger store: crash injected at " +
                          std::string(faults::kLedgerSeal) + " (segment " +
                          std::to_string(segment) + ")");
    }
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    out.flush();
    Require(static_cast<bool>(out), "ledger store: seal temp write failed");
  }
  std::error_code ec;
  fs::rename(temp, path, ec);
  Require(!ec, "ledger store: atomic seal rename failed");
  active_.clear();
  active_first_ = size_;
}

PinnedSegment FileLedgerStore::Pin(uint64_t segment) const {
  Require(segment < SegmentCount(), "ledger store: pin of nonexistent segment");
  PinnedSegment pin;
  pin.first_index_ = segment * segment_entries_;
  pin.count_ = std::min<uint64_t>(segment_entries_, size_ - pin.first_index_);
  pin.views_.reserve(pin.count_);
  if (!active_.empty() && pin.first_index_ == active_first_) {
    // Active segment: view the in-memory entries directly.
    for (const LedgerEntry& entry : active_) {
      pin.views_.push_back(LedgerEntryView{entry.index, entry.topic, entry.payload,
                                           entry.prev_hash, entry.entry_hash});
    }
    return pin;
  }
  auto bytes = ReadWholeFile(SegmentPath(segment));
  Require(bytes.ok(), "ledger store: sealed segment vanished under a reader");
  auto buffer = std::make_shared<Bytes>(std::move(*bytes));
  const uint64_t buffer_bytes = buffer->size();
  uint64_t now = pinned_bytes_.fetch_add(buffer_bytes) + buffer_bytes;
  uint64_t peak = peak_pinned_bytes_.load();
  while (now > peak && !peak_pinned_bytes_.compare_exchange_weak(peak, now)) {
  }
  // Release accounting travels with the buffer: when the last view drops it,
  // the pinned-byte gauge goes back down.
  std::shared_ptr<const void> backing(
      buffer.get(), [buffer, buffer_bytes, this](const void*) mutable {
        pinned_bytes_.fetch_sub(buffer_bytes);
        buffer.reset();
      });
  size_t offset = kSegmentHeaderBytes;
  for (size_t i = 0; i < pin.count_; ++i) {
    LedgerEntryView view;
    Require(ParseFrameView(*buffer, &offset, &view) == 1,
            "ledger store: sealed segment changed since recovery");
    pin.views_.push_back(view);
  }
  pin.backing_ = std::move(backing);
  return pin;
}

void FileLedgerStore::TamperWithPayloadForTest(uint64_t index, Bytes payload) {
  Require(index < size_, "ledger store: tamper index out of range");
  const uint64_t segment = SegmentOf(index);
  if (!active_.empty() && index >= active_first_) {
    active_[index - active_first_].payload = payload;
  }
  // Rewrite the whole segment file with the tampered frame (keeping the
  // stored hashes untouched — that is the point of the simulation).
  const std::string path = SegmentPath(segment);
  auto bytes = ReadWholeFile(path);
  Require(bytes.ok(), "ledger store: tamper target segment unreadable");
  Bytes rewritten(bytes->begin(), bytes->begin() + kSegmentHeaderBytes);
  size_t offset = kSegmentHeaderBytes;
  LedgerEntryView view;
  while (offset < bytes->size() && ParseFrameView(*bytes, &offset, &view) == 1) {
    LedgerEntry entry = view.Materialize();
    if (entry.index == index) {
      entry.payload = payload;
    }
    AppendEntryFrame(&rewritten, entry);
  }
  const bool was_active = active_out_.is_open() && segment == size_ / segment_entries_;
  if (was_active) {
    active_out_.close();
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(rewritten.data()),
            static_cast<std::streamsize>(rewritten.size()));
  out.flush();
  Require(static_cast<bool>(out), "ledger store: tamper rewrite failed");
  out.close();
  if (was_active) {
    active_out_.open(path, std::ios::binary | std::ios::app);
  }
}

std::unique_ptr<LedgerStore> CreateFreshStore(const LedgerStorageConfig& config) {
  if (config.backend == LedgerStorageConfig::Backend::kMemory) {
    return std::make_unique<InMemoryLedgerStore>(config.segment_entries);
  }
  Require(!config.directory.empty(), "ledger store: file backend needs a directory");
  auto store = FileLedgerStore::Open(config.directory, config.segment_entries);
  Require(store.ok(), "ledger store: cannot open file backend (recover corrupt logs "
                      "via Ledger::Open, which reports failures as values)");
  Require((*store)->Size() == 0,
          "ledger store: directory already holds a ledger; use PublicLedger::Open");
  return std::move(*store);
}

}  // namespace votegral
