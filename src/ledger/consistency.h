// RFC 6962-style Merkle consistency proofs over the ledger commitment tree.
//
// A consistency proof convinces a verifier holding the root of the first
// `old_size` entries that a tree of `new_size` entries with a given root is an
// *append-only extension* of the one it knows: the old leaves are a prefix of
// the new ones, nothing was rewritten. Replication followers check one of
// these against every signed leader checkpoint before applying a single new
// frame, which is what turns "the leader sent me bytes" into "the leader is
// still serving the same history it committed to" (docs/REPLICATION.md).
//
// Shape: the proof is the Certificate-Transparency SUBPROOF(m, D[n], true)
// node list (RFC 6962 §2.1.2) over the same split rule the commitment tree
// already uses, so proofs recombine with MerkleCommitmentTree::HashInternal
// and nothing new touches the hash domain. The prover assembles the node list
// from the append-time frontier (stored complete aligned subtrees plus
// ephemeral right-spine recombinations) — O(log n) nodes, O(log n) hash
// invocations, and *zero segment reads*, the same bound MerkleRoot() enjoys
// (pinned by the hash-invocation-counter tests in tests/test_consistency.cpp).
//
// Edge conventions (asserted by tests, relied on by the replica layer):
//  * old_size == new_size  -> empty path; verify additionally requires
//    old_root == new_root.
//  * old_size == 0         -> empty path; any tree extends the empty tree,
//    but the claimed old root must be the zero hash (the empty-ledger root).
//  * Proofs never shrink: new_size < old_size fails as a value.
#ifndef SRC_LEDGER_CONSISTENCY_H_
#define SRC_LEDGER_CONSISTENCY_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/outcome.h"
#include "src/common/status.h"
#include "src/ledger/merkle.h"

namespace votegral {

// Proof that the tree of `old_size` leaves is a prefix of the tree of
// `new_size` leaves. `path` is the RFC 6962 subproof node list.
struct ConsistencyProof {
  uint64_t old_size = 0;
  uint64_t new_size = 0;
  std::vector<LedgerHash> path;

  // Wire form: u64 old_size | u64 new_size | u32 count | count * 32B nodes.
  Bytes Serialize() const;
  static Outcome<ConsistencyProof> Parse(std::span<const uint8_t> bytes);
};

// Builds the consistency proof old_size -> new_size from the commitment
// tree's frontier. Fails as a value when old_size > new_size or
// new_size > tree.size(); old_size == 0 and old_size == new_size yield empty
// proofs. Never reads ledger segments.
Outcome<ConsistencyProof> ProveConsistency(const MerkleCommitmentTree& tree,
                                           uint64_t old_size, uint64_t new_size);

// Verifies that `proof` links `old_root` (over proof.old_size leaves) to
// `new_root` (over proof.new_size leaves). Failures are localized Status
// values (kInvalidProof): which root failed to recombine, or which structural
// rule the proof broke.
Status VerifyConsistency(const LedgerHash& old_root, const LedgerHash& new_root,
                         const ConsistencyProof& proof);

}  // namespace votegral

#endif  // SRC_LEDGER_CONSISTENCY_H_
