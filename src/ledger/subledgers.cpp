#include "src/ledger/subledgers.h"

#include "src/common/serde.h"

namespace votegral {

namespace {

constexpr std::string_view kRosterTopic = "roster-member";
constexpr std::string_view kRegistrationTopic = "registration";
constexpr std::string_view kEnvelopeTopic = "envelope-commitment";
constexpr std::string_view kChallengeTopic = "envelope-challenge";
constexpr std::string_view kBallotTopic = "ballot";

std::array<uint8_t, 32> HashChallenge(const Scalar& challenge) {
  return Sha256::Hash(challenge.ToBytes());
}

}  // namespace

Bytes RegistrationRecord::Serialize() const {
  ByteWriter w;
  w.Str(voter_id);
  w.Var(public_credential.Serialize());
  w.Fixed(kiosk_pk);
  w.Var(kiosk_sig.Serialize());
  w.Fixed(official_pk);
  w.Var(official_sig.Serialize());
  return w.Take();
}

std::optional<RegistrationRecord> RegistrationRecord::Parse(std::span<const uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    RegistrationRecord record;
    record.voter_id = r.Str();
    auto ct = ElGamalCiphertext::Parse(r.Var());
    if (!ct.has_value()) {
      return std::nullopt;
    }
    record.public_credential = *ct;
    Bytes kiosk_pk = r.Fixed(32);
    std::copy(kiosk_pk.begin(), kiosk_pk.end(), record.kiosk_pk.begin());
    auto kiosk_sig = SchnorrSignature::Parse(r.Var());
    if (!kiosk_sig.has_value()) {
      return std::nullopt;
    }
    record.kiosk_sig = *kiosk_sig;
    Bytes official_pk = r.Fixed(32);
    std::copy(official_pk.begin(), official_pk.end(), record.official_pk.begin());
    auto official_sig = SchnorrSignature::Parse(r.Var());
    if (!official_sig.has_value()) {
      return std::nullopt;
    }
    record.official_sig = *official_sig;
    r.ExpectEnd();
    return record;
  } catch (const ProtocolError&) {
    return std::nullopt;
  }
}

Bytes EnvelopeCommitment::Serialize() const {
  ByteWriter w;
  w.Fixed(printer_pk);
  w.Fixed(challenge_hash);
  w.Var(printer_sig.Serialize());
  return w.Take();
}

std::optional<EnvelopeCommitment> EnvelopeCommitment::Parse(std::span<const uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    EnvelopeCommitment c;
    Bytes pk = r.Fixed(32);
    std::copy(pk.begin(), pk.end(), c.printer_pk.begin());
    Bytes hash = r.Fixed(32);
    std::copy(hash.begin(), hash.end(), c.challenge_hash.begin());
    auto sig = SchnorrSignature::Parse(r.Var());
    if (!sig.has_value()) {
      return std::nullopt;
    }
    c.printer_sig = *sig;
    r.ExpectEnd();
    return c;
  } catch (const ProtocolError&) {
    return std::nullopt;
  }
}

PublicLedger::PublicLedger(const LedgerStorageConfig& storage)
    : roster_log_(storage.ForSubLog("roster")),
      registration_log_(storage.ForSubLog("registration")),
      envelope_log_(storage.ForSubLog("envelope")),
      ballot_log_(storage.ForSubLog("ballot")) {}

std::span<const PublicLedger::SubLogSpec> PublicLedger::SubLogs() {
  static constexpr SubLogSpec kLogs[] = {
      {"roster", &PublicLedger::roster_log_},
      {"registration", &PublicLedger::registration_log_},
      {"envelope", &PublicLedger::envelope_log_},
      {"ballot", &PublicLedger::ballot_log_},
  };
  return kLogs;
}

Outcome<PublicLedger> PublicLedger::Open(const LedgerStorageConfig& storage) {
  using Out = Outcome<PublicLedger>;
  PublicLedger ledger;
  for (const SubLogSpec& spec : SubLogs()) {
    auto opened = Ledger::Open(storage.ForSubLog(spec.name));
    if (!opened.ok()) {
      return Out::Fail("ledger: " + std::string(spec.name) + " log: " +
                       opened.status.reason());
    }
    ledger.*spec.member = std::move(*opened);
  }
  if (Status derived = ledger.RebuildDerivedState(); !derived.ok()) {
    return Out::Fail(derived.reason());
  }
  return Out::Ok(std::move(ledger));
}

Status PublicLedger::RebuildDerivedState() {
  eligible_.clear();
  registrations_by_voter_.clear();
  envelope_hashes_.clear();
  revealed_challenges_.clear();

  LedgerEntryView view;
  for (LedgerCursor cursor = roster_log_.Scan(); cursor.Next(&view);) {
    if (view.topic != kRosterTopic) {
      return Status::Error("ledger: unknown roster-log topic at index " +
                           std::to_string(view.index));
    }
    eligible_.insert(std::string(reinterpret_cast<const char*>(view.payload.data()),
                                 view.payload.size()));
  }

  for (LedgerCursor cursor = envelope_log_.Scan(); cursor.Next(&view);) {
    if (view.topic == kEnvelopeTopic) {
      auto commitment = EnvelopeCommitment::Parse(view.payload);
      if (!commitment.has_value()) {
        return Status::Error("ledger: corrupt envelope commitment at index " +
                             std::to_string(view.index));
      }
      envelope_hashes_.insert(commitment->challenge_hash);
    } else if (view.topic == kChallengeTopic) {
      auto challenge = Scalar::FromCanonicalBytes(view.payload);
      if (!challenge.has_value()) {
        return Status::Error("ledger: corrupt challenge reveal at index " +
                             std::to_string(view.index));
      }
      auto hash = HashChallenge(*challenge);
      if (envelope_hashes_.count(hash) == 0 || !revealed_challenges_.insert(hash).second) {
        return Status::Error("ledger: challenge reveal at index " +
                             std::to_string(view.index) +
                             " violates the commitment/duplicate rules");
      }
    } else {
      return Status::Error("ledger: unknown envelope-log topic at index " +
                           std::to_string(view.index));
    }
  }

  for (LedgerCursor cursor = registration_log_.Scan(); cursor.Next(&view);) {
    if (view.topic != kRegistrationTopic) {
      return Status::Error("ledger: unknown registration-log topic at index " +
                           std::to_string(view.index));
    }
    auto record = RegistrationRecord::Parse(view.payload);
    if (!record.has_value()) {
      return Status::Error("ledger: corrupt registration record at index " +
                           std::to_string(view.index));
    }
    if (!IsEligible(record->voter_id)) {
      return Status::Error("ledger: registration at index " + std::to_string(view.index) +
                           " for a voter not on the roster");
    }
    registrations_by_voter_[record->voter_id].push_back(view.index);
  }

  for (LedgerCursor cursor = ballot_log_.Scan(); cursor.Next(&view);) {
    if (view.topic != kBallotTopic) {
      return Status::Error("ledger: unknown ballot-log topic at index " +
                           std::to_string(view.index));
    }
  }
  return Status::Ok();
}

void PublicLedger::AddEligibleVoter(const std::string& voter_id) {
  if (eligible_.insert(voter_id).second) {
    roster_log_.Append(kRosterTopic, Bytes(voter_id.begin(), voter_id.end()));
  }
}

bool PublicLedger::IsEligible(const std::string& voter_id) const {
  return eligible_.count(voter_id) > 0;
}

Status PublicLedger::PostRegistration(const RegistrationRecord& record) {
  if (!IsEligible(record.voter_id)) {
    return Status::Error("ledger: voter not on the electoral roll: " + record.voter_id);
  }
  uint64_t index = registration_log_.Append(kRegistrationTopic, record.Serialize());
  registrations_by_voter_[record.voter_id].push_back(index);
  return Status::Ok();
}

std::optional<RegistrationRecord> PublicLedger::ActiveRegistration(
    const std::string& voter_id) const {
  auto it = registrations_by_voter_.find(voter_id);
  if (it == registrations_by_voter_.end() || it->second.empty()) {
    return std::nullopt;
  }
  // The most recent record supersedes all prior ones (§3.1).
  LedgerCursor cursor = registration_log_.Scan(it->second.back(), it->second.back() + 1);
  LedgerEntryView view;
  Require(cursor.Next(&view), "ledger: registration index points past the log");
  return RegistrationRecord::Parse(view.payload);
}

std::vector<RegistrationRecord> PublicLedger::ActiveRegistrations() const {
  std::vector<RegistrationRecord> out;
  out.reserve(registrations_by_voter_.size());
  // One cursor for the whole pass: voters' latest indices are read in voter
  // order, and the cursor's segment pin is reused whenever consecutive
  // records share a segment.
  LedgerCursor cursor = registration_log_.Scan();
  LedgerEntryView view;
  for (const auto& [voter_id, indices] : registrations_by_voter_) {
    if (indices.empty()) {
      continue;
    }
    cursor.Seek(indices.back());
    Require(cursor.Next(&view), "ledger: registration index points past the log");
    auto record = RegistrationRecord::Parse(view.payload);
    Require(record.has_value(), "ledger: stored registration record is corrupt");
    out.push_back(std::move(*record));
  }
  return out;
}

size_t PublicLedger::RegistrationEventCount(const std::string& voter_id) const {
  auto it = registrations_by_voter_.find(voter_id);
  return it == registrations_by_voter_.end() ? 0 : it->second.size();
}

void PublicLedger::PostEnvelopeCommitment(const EnvelopeCommitment& commitment) {
  envelope_log_.Append(kEnvelopeTopic, commitment.Serialize());
  envelope_hashes_.insert(commitment.challenge_hash);
}

bool PublicLedger::HasEnvelopeCommitment(const std::array<uint8_t, 32>& challenge_hash) const {
  return envelope_hashes_.count(challenge_hash) > 0;
}

Status PublicLedger::RevealEnvelopeChallenge(const Scalar& challenge) {
  auto hash = HashChallenge(challenge);
  if (!HasEnvelopeCommitment(hash)) {
    return Status::Error("ledger: challenge has no printer commitment (forged envelope?)");
  }
  if (revealed_challenges_.count(hash) > 0) {
    return Status::Error("ledger: duplicate envelope challenge (possible envelope stuffing)");
  }
  revealed_challenges_.insert(hash);
  auto challenge_bytes = challenge.ToBytes();
  envelope_log_.Append(kChallengeTopic, Bytes(challenge_bytes.begin(), challenge_bytes.end()));
  return Status::Ok();
}

uint64_t PublicLedger::PostBallot(Bytes ballot_payload) {
  return ballot_log_.Append(kBallotTopic, std::move(ballot_payload));
}

std::vector<Bytes> PublicLedger::AllBallots() const {
  std::vector<Bytes> out;
  out.reserve(ballot_log_.TopicIndices(kBallotTopic).size());
  LedgerEntryView view;
  for (TopicCursor cursor = ballot_log_.ScanTopic(kBallotTopic); cursor.Next(&view);) {
    out.emplace_back(view.payload.begin(), view.payload.end());
  }
  return out;
}

Status PublicLedger::VerifyChains() const {
  return roster_log_.VerifyChain()
      .And(registration_log_.VerifyChain())
      .And(envelope_log_.VerifyChain())
      .And(ballot_log_.VerifyChain());
}

}  // namespace votegral
