// Streaming access to a LedgerStore: the replacement for index-poke reads.
//
// A LedgerCursor walks entries [begin, end) in order, pinning one segment at
// a time; the views it hands out alias the pinned segment, so at most one
// segment's bytes are resident per cursor regardless of ledger size. Seek()
// reuses the current pin when the target lands in the same segment, so
// mostly-clustered random access (e.g. the registration index) stays cheap.
//
// Contract (the tally pipeline's reproducibility depends on it):
//  * Views returned by Next() are valid until the next Next()/Seek() that
//    crosses a segment boundary, and never outlive the cursor.
//  * Iteration order is ledger order — identical for every backend and
//    thread count. Parallel consumers give each shard its own cursor over
//    its Executor::Shards range; cursors share nothing mutable.
//  * Cursors are read-only and must not be used concurrently with appends.
//
// TopicCursor walks only the entries of one topic, driven by the per-topic
// index the Ledger maintains at append time (no scanning).
#ifndef SRC_LEDGER_CURSOR_H_
#define SRC_LEDGER_CURSOR_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/ledger/store.h"

namespace votegral {

class LedgerCursor {
 public:
  static constexpr uint64_t kEnd = std::numeric_limits<uint64_t>::max();

  // Cursor over entries [begin, min(end, store.Size())).
  explicit LedgerCursor(const LedgerStore& store, uint64_t begin = 0, uint64_t end = kEnd);

  // Reads the entry at the current position into `*out` and advances.
  // Returns false at the end of the range.
  bool Next(LedgerEntryView* out);

  // Repositions to `index`, clamped into the construction-time [begin, end)
  // range at both ends. The current segment pin is kept when `index` lands
  // inside it.
  void Seek(uint64_t index);

  // Index the next Next() will read.
  uint64_t position() const { return pos_; }
  uint64_t end() const { return end_; }

 private:
  const LedgerStore* store_;
  uint64_t begin_;
  uint64_t pos_;
  uint64_t end_;
  PinnedSegment pin_;
};

// Iterates the entries of one topic in append order. Built from the topic
// index, so it never visits (or pins) segments holding no matching entries.
class TopicCursor {
 public:
  TopicCursor(const LedgerStore& store, std::span<const uint64_t> indices);

  bool Next(LedgerEntryView* out);
  size_t remaining() const { return indices_.size() - next_; }

 private:
  const LedgerStore* store_;
  std::span<const uint64_t> indices_;
  size_t next_ = 0;
  PinnedSegment pin_;
};

}  // namespace votegral

#endif  // SRC_LEDGER_CURSOR_H_
