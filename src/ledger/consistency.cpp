#include "src/ledger/consistency.h"

#include <bit>

#include "src/common/serde.h"

namespace votegral {

namespace {

constexpr LedgerHash kZeroHash = {};

// Largest power of two strictly below `size` (size >= 2) — the RFC 6962
// split point, identical to the commitment tree's.
uint64_t SplitPoint(uint64_t size) {
  uint64_t split = 1;
  while (split * 2 < size) {
    split *= 2;
  }
  return split;
}

// SUBPROOF(old, [lo, hi), complete) from RFC 6962 §2.1.2, with `old` kept as
// an absolute leaf count. Invariant: lo < old <= hi. `complete` is true while
// the old tree is a full prefix of every range visited so far (its root is
// known to the verifier and omitted from the proof).
void SubProof(const MerkleCommitmentTree& tree, uint64_t old_size, uint64_t lo,
              uint64_t hi, bool complete, std::vector<LedgerHash>* path) {
  if (old_size == hi) {
    if (!complete) {
      path->push_back(tree.RangeHash(lo, hi));
    }
    return;
  }
  const uint64_t mid = lo + SplitPoint(hi - lo);
  if (old_size <= mid) {
    SubProof(tree, old_size, lo, mid, complete, path);
    path->push_back(tree.RangeHash(mid, hi));
  } else {
    SubProof(tree, old_size, mid, hi, false, path);
    path->push_back(tree.RangeHash(lo, mid));
  }
}

Status Invalid(std::string reason) {
  return Status::Error(StatusCode::kInvalidProof, std::move(reason));
}

}  // namespace

Bytes ConsistencyProof::Serialize() const {
  ByteWriter w;
  w.U64(old_size);
  w.U64(new_size);
  w.U32(static_cast<uint32_t>(path.size()));
  for (const LedgerHash& node : path) {
    w.Fixed(node);
  }
  return w.Take();
}

Outcome<ConsistencyProof> ConsistencyProof::Parse(std::span<const uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    ConsistencyProof proof;
    proof.old_size = r.U64();
    proof.new_size = r.U64();
    const uint32_t count = r.U32();
    // A valid proof carries at most ~2 log2(new_size) nodes; anything past 64
    // levels per side is structurally impossible and rejected before the
    // allocation it asks for.
    if (count > 128) {
      return Outcome<ConsistencyProof>::Fail(
          StatusCode::kInvalidProof, "consistency proof: implausible node count");
    }
    proof.path.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      Bytes node = r.Fixed(32);
      LedgerHash hash;
      std::copy(node.begin(), node.end(), hash.begin());
      proof.path.push_back(hash);
    }
    r.ExpectEnd();
    return Outcome<ConsistencyProof>::Ok(std::move(proof));
  } catch (const ProtocolError& e) {
    return Outcome<ConsistencyProof>::Fail(
        StatusCode::kCorrupted, std::string("consistency proof: ") + e.what());
  }
}

Outcome<ConsistencyProof> ProveConsistency(const MerkleCommitmentTree& tree,
                                           uint64_t old_size, uint64_t new_size) {
  using Out = Outcome<ConsistencyProof>;
  if (new_size < old_size) {
    return Out::Fail("consistency proof: new size " + std::to_string(new_size) +
                     " smaller than old size " + std::to_string(old_size));
  }
  if (new_size > tree.size()) {
    return Out::Fail("consistency proof: new size " + std::to_string(new_size) +
                     " beyond tree size " + std::to_string(tree.size()));
  }
  ConsistencyProof proof;
  proof.old_size = old_size;
  proof.new_size = new_size;
  if (old_size != 0 && old_size != new_size) {
    SubProof(tree, old_size, 0, new_size, /*complete=*/true, &proof.path);
  }
  return Out::Ok(std::move(proof));
}

Status VerifyConsistency(const LedgerHash& old_root, const LedgerHash& new_root,
                         const ConsistencyProof& proof) {
  const uint64_t m = proof.old_size;
  const uint64_t n = proof.new_size;
  if (n < m) {
    return Invalid("consistency proof: tree shrank (" + std::to_string(m) + " -> " +
                   std::to_string(n) + ")");
  }
  if (m == n) {
    if (!proof.path.empty()) {
      return Invalid("consistency proof: non-empty path for equal sizes");
    }
    if (old_root != new_root) {
      return Invalid("consistency proof: roots differ at equal size " +
                     std::to_string(n));
    }
    return Status::Ok();
  }
  if (m == 0) {
    if (!proof.path.empty()) {
      return Invalid("consistency proof: non-empty path from the empty tree");
    }
    if (old_root != kZeroHash) {
      return Invalid("consistency proof: old root of an empty tree must be zero");
    }
    return Status::Ok();
  }

  // 0 < m < n. Recombine both roots from the node list (the iterative form of
  // RFC 6962 §2.1.4.2): walk up from the last old leaf (index m-1) inside the
  // new tree of n leaves. `inner` levels lie below the node where the paths
  // to leaf m-1 in the two trees diverge; above that the old path hangs off
  // the new tree's left border.
  const uint64_t last = m - 1;
  uint64_t inner = static_cast<uint64_t>(std::bit_width(last ^ (n - 1)));
  const uint64_t border = static_cast<uint64_t>(std::popcount(last >> inner));
  const uint64_t shift = static_cast<uint64_t>(std::countr_zero(m));
  inner -= shift;  // the old tree's complete subtree of 2^shift leaves needs no nodes

  // When m is a power of two the old root itself is a node of the new tree
  // and seeds the recombination; otherwise the first proof node does.
  size_t start = 0;
  LedgerHash seed;
  if (m == (uint64_t{1} << shift)) {
    seed = old_root;
  } else {
    if (proof.path.empty()) {
      return Invalid("consistency proof: empty path");
    }
    seed = proof.path[0];
    start = 1;
  }
  if (proof.path.size() != start + inner + border) {
    return Invalid("consistency proof: path holds " +
                   std::to_string(proof.path.size()) + " nodes, expected " +
                   std::to_string(start + inner + border));
  }
  const uint64_t mask = last >> shift;  // leaf position within the seed subtree's level

  // Old root: only the levels where leaf m-1 is a right child contribute
  // (left siblings), then the left-border chain.
  LedgerHash acc = seed;
  for (uint64_t i = 0; i < inner; ++i) {
    if ((mask >> i) & 1) {
      acc = MerkleCommitmentTree::HashInternal(proof.path[start + i], acc);
    }
  }
  for (uint64_t i = 0; i < border; ++i) {
    acc = MerkleCommitmentTree::HashInternal(proof.path[start + inner + i], acc);
  }
  if (acc != old_root) {
    return Invalid("consistency proof: old root does not recombine (size " +
                   std::to_string(m) + ")");
  }

  // New root: every inner level contributes, with the mask giving the side.
  acc = seed;
  for (uint64_t i = 0; i < inner; ++i) {
    if ((mask >> i) & 1) {
      acc = MerkleCommitmentTree::HashInternal(proof.path[start + i], acc);
    } else {
      acc = MerkleCommitmentTree::HashInternal(acc, proof.path[start + i]);
    }
  }
  for (uint64_t i = 0; i < border; ++i) {
    acc = MerkleCommitmentTree::HashInternal(proof.path[start + inner + i], acc);
  }
  if (acc != new_root) {
    return Invalid("consistency proof: new root does not recombine (size " +
                   std::to_string(n) + ")");
  }
  return Status::Ok();
}

}  // namespace votegral
