// Append-only, tamper-evident public ledger (the paper's L, §D.1), modeled
// after hash-chained tamper-evident logs [Crosby & Wallach]. The paper
// idealizes the ledger as globally consistent with detectable tampering;
// we implement exactly that contract: a SHA-256 hash chain over entries plus
// Merkle inclusion proofs so light clients (VSDs) can check membership
// without holding the full log.
#ifndef SRC_LEDGER_LEDGER_H_
#define SRC_LEDGER_LEDGER_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/sha256.h"

namespace votegral {

using LedgerHash = std::array<uint8_t, 32>;

// One immutable ledger entry.
struct LedgerEntry {
  uint64_t index = 0;
  std::string topic;     // namespacing, e.g. "registration", "envelope", "ballot"
  Bytes payload;
  LedgerHash prev_hash;  // hash of the preceding entry (zero for the first)
  LedgerHash entry_hash; // H(index || topic || payload || prev_hash)
};

// Merkle inclusion proof for one entry against a root.
struct InclusionProof {
  uint64_t index = 0;
  uint64_t tree_size = 0;
  std::vector<LedgerHash> path;  // sibling hashes, leaf to root
};

// The append-only log.
class Ledger {
 public:
  // Appends a payload under `topic`; returns the new entry's index.
  uint64_t Append(std::string_view topic, Bytes payload);

  size_t size() const { return entries_.size(); }
  const LedgerEntry& At(uint64_t index) const;

  // Head commitment: hash of the latest entry (zero hash when empty).
  LedgerHash Head() const;

  // Recomputes the whole hash chain; detects any in-place tampering.
  Status VerifyChain() const;

  // Merkle root over all entry hashes (RFC 6962-style tree).
  LedgerHash MerkleRoot() const;

  // Inclusion proof for entry `index` against the current tree.
  InclusionProof ProveInclusion(uint64_t index) const;

  // Verifies an inclusion proof for `leaf` against `root`.
  static Status VerifyInclusion(const LedgerHash& root, const LedgerHash& leaf,
                                const InclusionProof& proof);

  // Indices of all entries with the given topic, in append order.
  std::vector<uint64_t> IndicesWithTopic(std::string_view topic) const;

  // Test hook: mutates a stored payload in place, simulating a compromised
  // ledger replica. Production code has no business calling this.
  void TamperWithPayloadForTest(uint64_t index, Bytes new_payload);

 private:
  static LedgerHash HashEntry(uint64_t index, std::string_view topic,
                              std::span<const uint8_t> payload, const LedgerHash& prev);
  static LedgerHash HashInternal(const LedgerHash& left, const LedgerHash& right);
  LedgerHash SubtreeRoot(uint64_t lo, uint64_t hi) const;  // [lo, hi)
  void SubtreePath(uint64_t lo, uint64_t hi, uint64_t index,
                   std::vector<LedgerHash>& path) const;

  std::vector<LedgerEntry> entries_;
};

}  // namespace votegral

#endif  // SRC_LEDGER_LEDGER_H_
