// Append-only, tamper-evident public ledger (the paper's L, §D.1), modeled
// after hash-chained tamper-evident logs [Crosby & Wallach] — now layered
// over a pluggable storage backend so the same contract holds whether the
// log lives in memory or as a file-backed segmented log larger than RAM.
//
// Layering:
//  * LedgerStore (src/ledger/store.h) persists raw, fully-hashed entries in
//    fixed-capacity segments. Backends: InMemoryLedgerStore and the
//    crash-recovering FileLedgerStore.
//  * Ledger (this file) is the integrity facade: it computes the SHA-256
//    hash chain on Append, maintains the per-topic index and the incremental
//    Merkle commitment tree (src/ledger/merkle.h), and answers commitment
//    queries without touching stored payloads:
//      - Head() is O(1) (cached chain head),
//      - MerkleRoot() is O(log n) hashes off the append-time frontier,
//      - ProveInclusion() is O(log^2 n) hashes and reads no segments.
//  * LedgerCursor/TopicCursor (src/ledger/cursor.h) are the read path:
//    forward streams and seeks that keep at most one segment pinned.
//    Random-access reads went away with the PR-3 cursor migration; code
//    scans (the only path that bounds resident payload memory).
//
// The paper idealizes the ledger as globally consistent with detectable
// tampering; VerifyChain() re-derives every entry hash by streaming the
// segments, and Merkle inclusion proofs let light clients (VSDs) check
// membership without holding the full log. Verification failures are Status
// values (per DESIGN.md §4): a forged proof, an out-of-range proof index or
// a broken chain each yield a descriptive, localized reason, never UB.
#ifndef SRC_LEDGER_LEDGER_H_
#define SRC_LEDGER_LEDGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/outcome.h"
#include "src/common/status.h"
#include "src/crypto/sha256.h"
#include "src/ledger/consistency.h"
#include "src/ledger/cursor.h"
#include "src/ledger/merkle.h"
#include "src/ledger/store.h"

namespace votegral {

// Merkle inclusion proof for one entry against a root.
struct InclusionProof {
  uint64_t index = 0;
  uint64_t tree_size = 0;
  std::vector<LedgerHash> path;  // sibling hashes, leaf to root
};

// The append-only log. Move-only (it owns its storage backend).
class Ledger {
 public:
  // In-memory backend with default segment geometry.
  Ledger();
  // Fresh (empty) backend per `config`; throws ProtocolError when the file
  // backend's directory already holds entries — recovery is Open()'s job.
  explicit Ledger(const LedgerStorageConfig& config);
  // Takes ownership of an *empty* store.
  explicit Ledger(std::unique_ptr<LedgerStore> store);

  // Attaches a recovered (possibly non-empty) store: streams it once to
  // rebuild the head, Merkle frontier and topic index. Store-side corruption
  // has already been localized by the backend's own Open.
  static Outcome<Ledger> Open(std::unique_ptr<LedgerStore> store);
  static Outcome<Ledger> Open(const LedgerStorageConfig& config);

  Ledger(Ledger&&) = default;
  Ledger& operator=(Ledger&&) = default;

  // Appends a payload under `topic`; returns the new entry's index.
  // Invalidates outstanding cursors over this ledger.
  uint64_t Append(std::string_view topic, Bytes payload);

  size_t size() const { return store_->Size(); }

  // Head commitment: hash of the latest entry (zero hash when empty). O(1).
  LedgerHash Head() const { return head_; }

  // Streams every segment, recomputing the whole hash chain; detects any
  // in-place tampering. O(segment) resident memory.
  Status VerifyChain() const;

  // Merkle root over all entry hashes (RFC 6962-style tree), from the
  // incremental frontier — O(log n) hashes, no segment reads.
  LedgerHash MerkleRoot() const;

  // Historical Merkle root over the first `n` entries (the root a replica
  // that stopped at size n would have computed). O(log n) hashes, no segment
  // reads. Require()s n <= size().
  LedgerHash MerkleRootAt(uint64_t n) const { return merkle_.RootAt(n); }

  // Consistency proof that the first old_size entries are a prefix of the
  // first new_size entries (RFC 6962; see src/ledger/consistency.h). Fails as
  // a value when old_size > new_size or new_size > size(). No segment reads.
  Outcome<ConsistencyProof> ProveConsistency(uint64_t old_size,
                                             uint64_t new_size) const {
    return votegral::ProveConsistency(merkle_, old_size, new_size);
  }

  // Entry hash of leaf `index` from the commitment index (O(1), no segment
  // reads). Require()s index < size().
  const LedgerHash& LeafHash(uint64_t index) const { return merkle_.Leaf(index); }

  // Inclusion proof for entry `index` against the current tree. Fails (as a
  // value) on an empty ledger or index >= size().
  Outcome<InclusionProof> ProveInclusion(uint64_t index) const;

  // Verifies an inclusion proof for `leaf` against `root`.
  static Status VerifyInclusion(const LedgerHash& root, const LedgerHash& leaf,
                                const InclusionProof& proof);

  // --- Streaming read path ---------------------------------------------------

  // Forward cursor over entries [begin, min(end, size())).
  LedgerCursor Scan(uint64_t begin = 0, uint64_t end = LedgerCursor::kEnd) const {
    return LedgerCursor(*store_, begin, end);
  }

  // Cursor over all entries with `topic`, in append order (topic-index
  // driven; pins only segments that hold matching entries).
  TopicCursor ScanTopic(std::string_view topic) const {
    return TopicCursor(*store_, TopicIndices(topic));
  }

  // Indices of all entries with `topic`, maintained at append time (no
  // scan). The reference is invalidated by the next Append.
  const std::vector<uint64_t>& TopicIndices(std::string_view topic) const;

  // The storage backend (segment geometry, backend description, stats).
  const LedgerStore& store() const { return *store_; }

  // Test hook: mutates a stored payload in place, simulating a compromised
  // ledger replica. Production code has no business calling this.
  void TamperWithPayloadForTest(uint64_t index, Bytes new_payload);

  // Internal-hash counter of the commitment tree; tests assert the
  // incremental O(log n) bound per MerkleRoot/ProveInclusion call.
  uint64_t MerkleHashInvocationsForTest() const { return merkle_.hash_invocations(); }

 private:
  std::unique_ptr<LedgerStore> store_;
  MerkleCommitmentTree merkle_;
  LedgerHash head_ = {};
  std::map<std::string, std::vector<uint64_t>, std::less<>> topic_index_;
};

}  // namespace votegral

#endif  // SRC_LEDGER_LEDGER_H_
