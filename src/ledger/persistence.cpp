#include "src/ledger/persistence.h"

#include <fstream>

#include "src/common/serde.h"

namespace votegral {

namespace {

constexpr std::string_view kMagic = "votegral-ledger/v1";

constexpr std::string_view kRegistrationTopic = "registration";
constexpr std::string_view kEnvelopeTopic = "envelope-commitment";
constexpr std::string_view kChallengeTopic = "envelope-challenge";
constexpr std::string_view kBallotTopic = "ballot";

}  // namespace

Bytes SerializeLedger(const Ledger& ledger) {
  ByteWriter w;
  w.U64(ledger.size());
  for (uint64_t i = 0; i < ledger.size(); ++i) {
    const LedgerEntry& entry = ledger.At(i);
    w.Str(entry.topic);
    w.Var(entry.payload);
  }
  w.Fixed(ledger.Head());
  return w.Take();
}

Outcome<Ledger> ParseLedger(std::span<const uint8_t> bytes) {
  try {
    ByteReader r(bytes);
    uint64_t count = r.U64();
    Ledger ledger;
    for (uint64_t i = 0; i < count; ++i) {
      std::string topic = r.Str();
      Bytes payload = r.Var();
      ledger.Append(topic, std::move(payload));
    }
    Bytes head = r.Fixed(32);
    r.ExpectEnd();
    // Re-appending recomputes every hash; the stored head must match.
    if (!ConstantTimeEqual(ledger.Head(), head)) {
      return Outcome<Ledger>::Fail("persistence: ledger head mismatch (file tampered?)");
    }
    if (Status chain = ledger.VerifyChain(); !chain.ok()) {
      return Outcome<Ledger>::Fail(chain.reason());
    }
    return Outcome<Ledger>::Ok(std::move(ledger));
  } catch (const ProtocolError& error) {
    return Outcome<Ledger>::Fail(std::string("persistence: ") + error.what());
  }
}

Bytes SerializePublicLedger(const PublicLedger& ledger) {
  ByteWriter w;
  w.Str(kMagic);
  auto roster = ledger.EligibleVoters();
  w.U64(roster.size());
  for (const std::string& voter : roster) {
    w.Str(voter);
  }
  w.Var(SerializeLedger(ledger.registration_log()));
  w.Var(SerializeLedger(ledger.envelope_log()));
  w.Var(SerializeLedger(ledger.ballot_log()));
  return w.Take();
}

Outcome<PublicLedger> ParsePublicLedger(std::span<const uint8_t> bytes) {
  using Out = Outcome<PublicLedger>;
  try {
    ByteReader r(bytes);
    if (r.Str() != kMagic) {
      return Out::Fail("persistence: bad magic");
    }
    PublicLedger ledger;
    uint64_t roster_size = r.U64();
    for (uint64_t i = 0; i < roster_size; ++i) {
      ledger.AddEligibleVoter(r.Str());
    }
    Bytes reg_bytes = r.Var();
    Bytes env_bytes = r.Var();
    Bytes ballot_bytes = r.Var();
    r.ExpectEnd();

    auto registration = ParseLedger(reg_bytes);
    auto envelope = ParseLedger(env_bytes);
    auto ballots = ParseLedger(ballot_bytes);
    if (!registration.ok() || !envelope.ok() || !ballots.ok()) {
      return Out::Fail("persistence: sub-ledger corrupt");
    }

    // Replay every entry through the typed APIs so the derived indices
    // (active registrations, used challenges, ...) are rebuilt, and the
    // regenerated hash chains coincide with the verified ones.
    for (uint64_t i = 0; i < envelope->size(); ++i) {
      const LedgerEntry& entry = envelope->At(i);
      if (entry.topic == kEnvelopeTopic) {
        auto commitment = EnvelopeCommitment::Parse(entry.payload);
        if (!commitment.has_value()) {
          return Out::Fail("persistence: corrupt envelope commitment");
        }
        ledger.PostEnvelopeCommitment(*commitment);
      } else if (entry.topic == kChallengeTopic) {
        auto challenge = Scalar::FromCanonicalBytes(entry.payload);
        if (!challenge.has_value() ||
            !ledger.RevealEnvelopeChallenge(*challenge).ok()) {
          return Out::Fail("persistence: corrupt challenge reveal");
        }
      } else {
        return Out::Fail("persistence: unknown envelope-log topic");
      }
    }
    for (uint64_t i = 0; i < registration->size(); ++i) {
      const LedgerEntry& entry = registration->At(i);
      if (entry.topic != kRegistrationTopic) {
        return Out::Fail("persistence: unknown registration-log topic");
      }
      auto record = RegistrationRecord::Parse(entry.payload);
      if (!record.has_value() || !ledger.PostRegistration(*record).ok()) {
        return Out::Fail("persistence: corrupt registration record");
      }
    }
    for (uint64_t i = 0; i < ballots->size(); ++i) {
      const LedgerEntry& entry = ballots->At(i);
      if (entry.topic != kBallotTopic) {
        return Out::Fail("persistence: unknown ballot-log topic");
      }
      ledger.PostBallot(entry.payload);
    }

    // Replay must reproduce the exact chains.
    if (!ConstantTimeEqual(ledger.registration_log().Head(), registration->Head()) ||
        !ConstantTimeEqual(ledger.envelope_log().Head(), envelope->Head()) ||
        !ConstantTimeEqual(ledger.ballot_log().Head(), ballots->Head())) {
      return Out::Fail("persistence: replay diverged from stored chains");
    }
    return Out::Ok(std::move(ledger));
  } catch (const ProtocolError& error) {
    return Out::Fail(std::string("persistence: ") + error.what());
  }
}

Status SavePublicLedger(const PublicLedger& ledger, const std::string& path) {
  Bytes bytes = SerializePublicLedger(ledger);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Error("persistence: cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::Error("persistence: write to " + path + " failed");
  }
  return Status::Ok();
}

Outcome<PublicLedger> LoadPublicLedger(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Outcome<PublicLedger>::Fail("persistence: cannot open " + path);
  }
  Bytes bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return ParsePublicLedger(bytes);
}

}  // namespace votegral
