#include "src/ledger/persistence.h"

#include <fstream>

#include "src/common/serde.h"

namespace votegral {

namespace {

constexpr std::string_view kMagic = "votegral-ledger/v2";

}  // namespace

Bytes SerializeLedger(const Ledger& ledger) {
  ByteWriter w;
  w.U64(ledger.size());
  // Streamed export: one frame per entry, one segment pinned at a time.
  Bytes frame;
  LedgerEntryView view;
  for (LedgerCursor cursor = ledger.Scan(); cursor.Next(&view);) {
    frame.clear();
    AppendEntryFrame(&frame, view);
    w.Fixed(frame);
  }
  w.Fixed(ledger.Head());
  return w.Take();
}

Outcome<Ledger> ParseLedger(std::span<const uint8_t> bytes,
                            const LedgerStorageConfig& storage) {
  using Out = Outcome<Ledger>;
  try {
    if (bytes.size() < 8) {
      return Out::Fail("persistence: serialized ledger shorter than its header");
    }
    const uint64_t count = LoadLe64(bytes.data());
    size_t offset = 8;
    Ledger ledger(storage);
    for (uint64_t i = 0; i < count; ++i) {
      auto entry = DecodeEntryFrame(bytes, &offset);
      if (!entry.ok()) {
        return Out::Fail("persistence: entry " + std::to_string(i) + ": " +
                         entry.status.reason());
      }
      // Re-appending re-derives every hash; the stored frame must agree in
      // full — the chain link too, so a flipped byte anywhere in the frame
      // (even in the redundant prev-hash field) is rejected.
      if (!ConstantTimeEqual(ledger.Head(), entry->prev_hash)) {
        return Out::Fail("persistence: entry " + std::to_string(i) +
                         " chain link mismatch (file tampered?)");
      }
      uint64_t index = ledger.Append(entry->topic, std::move(entry->payload));
      if (index != entry->index || !ConstantTimeEqual(ledger.Head(), entry->entry_hash)) {
        return Out::Fail("persistence: entry " + std::to_string(i) +
                         " hash mismatch (file tampered?)");
      }
    }
    if (bytes.size() - offset != 32) {
      return Out::Fail("persistence: bad trailer length");
    }
    if (!ConstantTimeEqual(ledger.Head(), bytes.subspan(offset, 32))) {
      return Out::Fail("persistence: ledger head mismatch (file tampered?)");
    }
    return Out::Ok(std::move(ledger));
  } catch (const ProtocolError& error) {
    return Out::Fail(std::string("persistence: ") + error.what());
  }
}

Bytes SerializePublicLedger(const PublicLedger& ledger) {
  ByteWriter w;
  w.Str(kMagic);
  // Sub-logs in SubLogs() order — the import loop reads them back the same
  // way, so the two lists cannot drift apart.
  w.Var(SerializeLedger(ledger.roster_log()));
  w.Var(SerializeLedger(ledger.registration_log()));
  w.Var(SerializeLedger(ledger.envelope_log()));
  w.Var(SerializeLedger(ledger.ballot_log()));
  return w.Take();
}

Outcome<PublicLedger> ParsePublicLedger(std::span<const uint8_t> bytes,
                                        const LedgerStorageConfig& storage) {
  using Out = Outcome<PublicLedger>;
  try {
    ByteReader r(bytes);
    if (r.Str() != kMagic) {
      return Out::Fail("persistence: bad magic");
    }
    PublicLedger ledger;
    for (const PublicLedger::SubLogSpec& spec : PublicLedger::SubLogs()) {
      Bytes wire = r.Var();  // sub-logs appear in SubLogs() order
      auto parsed = ParseLedger(wire, storage.ForSubLog(spec.name));
      if (!parsed.ok()) {
        return Out::Fail(std::string(spec.name) + " log: " + parsed.status.reason());
      }
      ledger.*spec.member = std::move(*parsed);
    }
    r.ExpectEnd();
    // Rebuild the derived lookup state by streaming the verified logs —
    // same path as recovering a segment directory via PublicLedger::Open.
    if (Status derived = ledger.RebuildDerivedState(); !derived.ok()) {
      return Out::Fail(derived.reason());
    }
    return Out::Ok(std::move(ledger));
  } catch (const ProtocolError& error) {
    return Out::Fail(std::string("persistence: ") + error.what());
  }
}

Outcome<PublicLedger> ParsePublicLedger(std::span<const uint8_t> bytes) {
  return ParsePublicLedger(bytes, LedgerStorageConfig{});
}

Status SavePublicLedger(const PublicLedger& ledger, const std::string& path) {
  Bytes bytes = SerializePublicLedger(ledger);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Error("persistence: cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::Error("persistence: write to " + path + " failed");
  }
  return Status::Ok();
}

Outcome<PublicLedger> LoadPublicLedger(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Outcome<PublicLedger>::Fail("persistence: cannot open " + path);
  }
  Bytes bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return ParsePublicLedger(bytes);
}

}  // namespace votegral
