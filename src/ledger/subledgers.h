// Typed views over the public ledger: the registration sub-ledger L_R, the
// envelope-commitment sub-ledger L_E and the ballot sub-ledger L_V (§D.1),
// plus a tamper-evident roster log for the electoral roll V.
//
// Key semantics implemented here, straight from the paper:
//  * L_R: one *active* record per voter identity; a new registration
//    supersedes and invalidates all prior records for that voter (§3.1).
//  * L_E: at setup, envelope printers publish (printer_pk, H(e), σ_p) for
//    every envelope; at activation, VSDs publish the revealed challenge e
//    and reject duplicates — the duplicate-envelope defense of App. F.3.5.
//  * L_V: append-only encrypted ballots.
//
// Storage: every sub-log sits on a LedgerStore backend selected by the
// LedgerStorageConfig the PublicLedger is constructed with — in-memory by
// default, or a file-backed segmented log (one subdirectory per sub-log)
// for ledgers larger than RAM. The derived lookup state (active
// registrations, used challenges, the eligibility set) is an index over the
// logs, rebuilt by streaming them on Open(); consumers read entries through
// cursors (BallotCursor / the logs' Scan/ScanTopic), never by index pokes.
#ifndef SRC_LEDGER_SUBLEDGERS_H_
#define SRC_LEDGER_SUBLEDGERS_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/outcome.h"
#include "src/common/status.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/schnorr.h"
#include "src/ledger/ledger.h"

namespace votegral {

// A voter's registration record as posted at check-out (Fig. 10):
// L_R[V_id] <- (c_pc, K_pk, σ_kot, O_pk, σ_o).
struct RegistrationRecord {
  std::string voter_id;
  ElGamalCiphertext public_credential;  // c_pc = Enc_A(c_pk of the real credential)
  CompressedRistretto kiosk_pk{};
  SchnorrSignature kiosk_sig;           // σ_kot over (V_id || c_pc)
  CompressedRistretto official_pk{};
  SchnorrSignature official_sig;        // σ_o over (V_id || c_pc || σ_kot)

  Bytes Serialize() const;
  static std::optional<RegistrationRecord> Parse(std::span<const uint8_t> bytes);
};

// An envelope commitment published at setup (Fig. 7, line 5):
// (P_pk, H(e), Sig(P_sk, H(e))).
struct EnvelopeCommitment {
  CompressedRistretto printer_pk{};
  std::array<uint8_t, 32> challenge_hash{};
  SchnorrSignature printer_sig;

  Bytes Serialize() const;
  static std::optional<EnvelopeCommitment> Parse(std::span<const uint8_t> bytes);
};

// The sub-ledgers plus the eligibility roster, bundled as the paper's
// single logical ledger L. All mutations go through typed methods that also
// append to the underlying tamper-evident logs. Move-only (it owns the
// storage backends).
class PublicLedger {
 public:
  // In-memory backend.
  PublicLedger() : PublicLedger(LedgerStorageConfig{}) {}
  // Fresh (empty) logs on the configured backend; throws ProtocolError when
  // a file backend directory already holds a ledger — recovery is Open().
  explicit PublicLedger(const LedgerStorageConfig& storage);

  // Recovers an existing ledger from its backend (file: crash-safe segment
  // recovery per sub-log) and rebuilds all derived indices by streaming the
  // logs. Corruption yields a localized, named failure.
  static Outcome<PublicLedger> Open(const LedgerStorageConfig& storage);

  PublicLedger(PublicLedger&&) = default;
  PublicLedger& operator=(PublicLedger&&) = default;

  // --- Roster (electoral roll V, populated at setup) -----------------------
  void AddEligibleVoter(const std::string& voter_id);
  bool IsEligible(const std::string& voter_id) const;
  size_t eligible_count() const { return eligible_.size(); }
  // The roster in sorted order (for audits and persistence).
  std::vector<std::string> EligibleVoters() const {
    return std::vector<std::string>(eligible_.begin(), eligible_.end());
  }

  // --- L_R ------------------------------------------------------------------
  // Posts a registration record; supersedes any previous record for the
  // voter. Fails if the voter is not on the roster.
  Status PostRegistration(const RegistrationRecord& record);

  // The voter's currently active record, if any.
  std::optional<RegistrationRecord> ActiveRegistration(const std::string& voter_id) const;

  // All currently active records (one per registered voter).
  std::vector<RegistrationRecord> ActiveRegistrations() const;

  // How many times this voter has (re-)registered — the registration-event
  // notification feed of Appendix J.
  size_t RegistrationEventCount(const std::string& voter_id) const;

  // --- L_E ------------------------------------------------------------------
  // Setup-time: record an envelope commitment.
  void PostEnvelopeCommitment(const EnvelopeCommitment& commitment);
  size_t envelope_commitment_count() const { return envelope_hashes_.size(); }

  // True when some printer committed to H(e).
  bool HasEnvelopeCommitment(const std::array<uint8_t, 32>& challenge_hash) const;

  // Activation-time: reveal a challenge. Fails if e was already revealed
  // (duplicate envelope) or if no commitment to H(e) exists.
  Status RevealEnvelopeChallenge(const Scalar& challenge);

  // Number of challenges revealed so far (the coercer-visible aggregate the
  // coercion-resistance proof reasons about).
  size_t revealed_challenge_count() const { return revealed_challenges_.size(); }

  // --- L_V ------------------------------------------------------------------
  // Appends an opaque ballot payload; returns its ledger index.
  uint64_t PostBallot(Bytes ballot_payload);
  std::vector<Bytes> AllBallots() const;

  // Streaming, zero-copy iteration for the sharded tally pipeline: stages
  // open one cursor per Executor::Shards range and stream ballots straight
  // off the backing segments — at most one segment resident per cursor,
  // instead of a materialized copy of the whole ballot log.
  size_t BallotCount() const { return ballot_log_.size(); }
  LedgerCursor BallotCursor(uint64_t begin = 0,
                            uint64_t end = LedgerCursor::kEnd) const {
    return ballot_log_.Scan(begin, end);
  }

  // --- Integrity -------------------------------------------------------------
  // Verifies all underlying hash chains (streamed per segment).
  Status VerifyChains() const;

  // Raw log access (audits, tests).
  const Ledger& roster_log() const { return roster_log_; }
  const Ledger& registration_log() const { return registration_log_; }
  const Ledger& envelope_log() const { return envelope_log_; }
  const Ledger& ballot_log() const { return ballot_log_; }
  Ledger& mutable_registration_log() { return registration_log_; }

 private:
  // Streams all logs, validating topics/payloads and rebuilding the derived
  // lookup state (roster set, registration index, envelope hashes, revealed
  // challenges). Used by Open() and the persistence import.
  Status RebuildDerivedState();

  // The sub-logs as one table (storage subdirectory name + member), so the
  // recovery paths — Open() and the persistence import — iterate the same
  // list and a future sub-log cannot be added to one but not the other.
  struct SubLogSpec {
    const char* name;
    Ledger PublicLedger::* member;
  };
  static std::span<const SubLogSpec> SubLogs();

  friend Outcome<PublicLedger> ParsePublicLedger(std::span<const uint8_t> bytes,
                                                 const LedgerStorageConfig& storage);

  std::set<std::string> eligible_;
  Ledger roster_log_;
  Ledger registration_log_;
  Ledger envelope_log_;
  Ledger ballot_log_;

  // Index: voter id -> ledger indices of their registration records.
  std::map<std::string, std::vector<uint64_t>> registrations_by_voter_;
  std::set<std::array<uint8_t, 32>> envelope_hashes_;
  std::set<std::array<uint8_t, 32>> revealed_challenges_;  // keyed by H(e)
};

}  // namespace votegral

#endif  // SRC_LEDGER_SUBLEDGERS_H_
