#include "src/ledger/cursor.h"

#include <algorithm>

namespace votegral {

LedgerCursor::LedgerCursor(const LedgerStore& store, uint64_t begin, uint64_t end)
    : store_(&store),
      begin_(begin),
      pos_(begin),
      end_(std::min<uint64_t>(end, store.Size())) {}

bool LedgerCursor::Next(LedgerEntryView* out) {
  if (pos_ >= end_) {
    return false;
  }
  if (!pin_.Contains(pos_)) {
    pin_ = PinnedSegment();  // release before pinning: one segment resident
    pin_ = store_->Pin(store_->SegmentOf(pos_));
  }
  *out = pin_.View(pos_);
  ++pos_;
  return true;
}

void LedgerCursor::Seek(uint64_t index) {
  // Clamp into the construction-time range at both ends: a consumer must
  // not be able to wander into another shard's entries.
  pos_ = std::min<uint64_t>(std::max<uint64_t>(index, begin_), end_);
}

TopicCursor::TopicCursor(const LedgerStore& store, std::span<const uint64_t> indices)
    : store_(&store), indices_(indices) {}

bool TopicCursor::Next(LedgerEntryView* out) {
  if (next_ >= indices_.size()) {
    return false;
  }
  uint64_t index = indices_[next_];
  Require(index < store_->Size(), "TopicCursor: topic index beyond store");
  if (!pin_.Contains(index)) {
    pin_ = PinnedSegment();  // release before pinning: one segment resident
    pin_ = store_->Pin(store_->SegmentOf(index));
  }
  *out = pin_.View(index);
  ++next_;
  return true;
}

}  // namespace votegral
