// Incremental Merkle commitments over ledger entry hashes.
//
// The tree shape is the RFC 6962 / Certificate-Transparency one the seed
// computed recursively: split a range at the largest power of two strictly
// below its size. Instead of recomputing that recursion over every leaf on
// each call, this index is maintained *at append time*:
//
//  * levels_[0] holds every leaf hash; levels_[j][i] is the internal hash of
//    the complete aligned block [i·2^j, (i+1)·2^j) and is computed exactly
//    once, when its right child completes (the binary-counter "frontier"
//    update — amortized one hash per append, n-1 internal hashes total).
//  * The only nodes NOT stored are the ephemeral right-spine nodes covering
//    incomplete ranges [lo, n); Root() and Path() re-derive those from at
//    most log n stored nodes per spine level.
//
// Consequences the ledger layer relies on: Root() costs O(log n) hashes,
// Path() O(log^2 n), and neither ever touches entry payloads — so Merkle
// commitments over a file-backed segmented log never read cold segments.
// hash_invocations() exposes the internal-hash counter so tests can assert
// the incremental bound instead of trusting this comment.
#ifndef SRC_LEDGER_MERKLE_H_
#define SRC_LEDGER_MERKLE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/crypto/sha256.h"

namespace votegral {

using LedgerHash = std::array<uint8_t, 32>;

class MerkleCommitmentTree {
 public:
  // Appends one leaf (a ledger entry hash). Amortized O(1) internal hashes.
  void Append(const LedgerHash& leaf);

  uint64_t size() const { return levels_.empty() ? 0 : levels_[0].size(); }

  // Root over all leaves (zero hash when empty). O(log n) internal hashes.
  LedgerHash Root() const;

  // Historical root over the first `n` leaves, as if the tree had stopped
  // growing at size n (zero hash for n == 0). Require()s n <= size(). Every
  // node it needs is either stored frontier state or an ephemeral right-spine
  // recombination, so like Root() it costs O(log n) hashes and reads nothing
  // but the in-memory index — the property the replication checkpoints rely
  // on for proving old-root ⊆ new-root without touching segments.
  LedgerHash RootAt(uint64_t n) const;

  // Root of the leaf range [lo, hi) under the RFC 6962 split rule.
  // Require()s lo < hi <= size(). The consistency-proof builder
  // (src/ledger/consistency.h) assembles proofs out of exactly these nodes.
  LedgerHash RangeHash(uint64_t lo, uint64_t hi) const;

  // Stored leaf hash; Require()s index < size().
  const LedgerHash& Leaf(uint64_t index) const;

  // Sibling path for `index` against the current tree, leaf to root.
  // Require()s index < size().
  void Path(uint64_t index, std::vector<LedgerHash>* out) const;

  // Internal-node hash (RFC 6962 domain separation). Shared with the
  // verification side so proofs recombine identically.
  static LedgerHash HashInternal(const LedgerHash& left, const LedgerHash& right);

  // Total internal-hash invocations by this instance (appends + roots +
  // paths). Tests assert O(log n) deltas per query against this counter.
  uint64_t hash_invocations() const { return hash_count_; }

 private:
  LedgerHash CountedHash(const LedgerHash& left, const LedgerHash& right) const;
  // Root of [lo, hi): stored lookup for complete aligned blocks, right-spine
  // recursion otherwise.
  LedgerHash RangeRoot(uint64_t lo, uint64_t hi) const;
  void RangePath(uint64_t lo, uint64_t hi, uint64_t index,
                 std::vector<LedgerHash>* path) const;

  std::vector<std::vector<LedgerHash>> levels_;
  mutable uint64_t hash_count_ = 0;
};

}  // namespace votegral

#endif  // SRC_LEDGER_MERKLE_H_
