#include "src/ledger/merkle.h"

namespace votegral {

namespace {

constexpr LedgerHash kZeroHash = {};

// Largest power of two strictly below `size` (size >= 2) — the RFC 6962
// split point.
uint64_t SplitPoint(uint64_t size) {
  uint64_t split = 1;
  while (split * 2 < size) {
    split *= 2;
  }
  return split;
}

}  // namespace

LedgerHash MerkleCommitmentTree::HashInternal(const LedgerHash& left,
                                              const LedgerHash& right) {
  uint8_t prefix = 1;
  return Sha256::HashParts({{&prefix, 1}, left, right});
}

LedgerHash MerkleCommitmentTree::CountedHash(const LedgerHash& left,
                                             const LedgerHash& right) const {
  ++hash_count_;
  return HashInternal(left, right);
}

void MerkleCommitmentTree::Append(const LedgerHash& leaf) {
  if (levels_.empty()) {
    levels_.emplace_back();
  }
  levels_[0].push_back(leaf);
  // Binary-counter carry: each time the new node is a right child, its
  // parent's block just completed; fold upward until a left child remains.
  size_t level = 0;
  uint64_t index = levels_[0].size() - 1;
  while (index % 2 == 1) {
    LedgerHash parent = CountedHash(levels_[level][index - 1], levels_[level][index]);
    if (levels_.size() <= level + 1) {
      levels_.emplace_back();
    }
    levels_[level + 1].push_back(parent);
    index = levels_[level + 1].size() - 1;
    ++level;
  }
}

const LedgerHash& MerkleCommitmentTree::Leaf(uint64_t index) const {
  Require(index < size(), "merkle: leaf index out of range");
  return levels_[0][index];
}

LedgerHash MerkleCommitmentTree::RangeRoot(uint64_t lo, uint64_t hi) const {
  uint64_t range = hi - lo;
  if (range == 1) {
    return levels_[0][lo];
  }
  // Complete aligned blocks are stored nodes (every such block inside the
  // tree is, by the append-time fold above).
  if ((range & (range - 1)) == 0 && lo % range == 0) {
    size_t level = 0;
    for (uint64_t r = range; r > 1; r >>= 1) {
      ++level;
    }
    return levels_[level][lo / range];
  }
  uint64_t split = SplitPoint(range);
  return CountedHash(RangeRoot(lo, lo + split), RangeRoot(lo + split, hi));
}

LedgerHash MerkleCommitmentTree::Root() const {
  if (size() == 0) {
    return kZeroHash;
  }
  return RangeRoot(0, size());
}

LedgerHash MerkleCommitmentTree::RootAt(uint64_t n) const {
  Require(n <= size(), "merkle: historical root beyond tree size");
  if (n == 0) {
    return kZeroHash;
  }
  return RangeRoot(0, n);
}

LedgerHash MerkleCommitmentTree::RangeHash(uint64_t lo, uint64_t hi) const {
  Require(lo < hi && hi <= size(), "merkle: range hash out of bounds");
  return RangeRoot(lo, hi);
}

void MerkleCommitmentTree::RangePath(uint64_t lo, uint64_t hi, uint64_t index,
                                     std::vector<LedgerHash>* path) const {
  if (hi - lo == 1) {
    return;
  }
  uint64_t split = SplitPoint(hi - lo);
  if (index < lo + split) {
    RangePath(lo, lo + split, index, path);
    path->push_back(RangeRoot(lo + split, hi));
  } else {
    RangePath(lo + split, hi, index, path);
    path->push_back(RangeRoot(lo, lo + split));
  }
}

void MerkleCommitmentTree::Path(uint64_t index, std::vector<LedgerHash>* out) const {
  Require(index < size(), "merkle: path index out of range");
  out->clear();
  RangePath(0, size(), index, out);
}

}  // namespace votegral
